// Lossy links: running B-Neck outside its comfort zone.
//
// The paper assumes links deliver control packets reliably and in order.
// This example injects packet loss to show (a) that the bare protocol
// wedges when the assumption is violated, and (b) that the library's
// go-back-N link layer (BneckConfig::reliable_links) restores exact
// convergence — and quiescence — up to heavy loss rates, at the cost of
// retransmissions.
//
//   $ ./examples/lossy_network [loss%]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/bneck.hpp"
#include "core/maxmin.hpp"
#include "net/routing.hpp"
#include "stats/table.hpp"
#include "topo/canonical.hpp"

using namespace bneck;

namespace {

struct Outcome {
  bool exact = false;
  std::uint64_t packets = 0;
  std::uint64_t retransmissions = 0;
  TimeNs last_packet = 0;
};

Outcome run(const net::Network& n, double loss, bool reliable,
            std::uint64_t seed) {
  const net::PathFinder paths(n);
  sim::Simulator sim;
  core::BneckConfig cfg;
  cfg.loss_probability = loss;
  cfg.reliable_links = reliable;
  cfg.loss_seed = seed;
  core::BneckProtocol bneck(sim, n, cfg);
  for (int i = 0; i < 4; ++i) {
    bneck.join(SessionId{i},
               *paths.shortest_path(n.hosts()[static_cast<std::size_t>(i)],
                                    n.hosts()[static_cast<std::size_t>(i + 4)]),
               kRateInfinity);
  }
  sim.run_until_idle();
  const auto specs = bneck.active_specs();
  const auto sol = core::solve_waterfill(n, specs);
  Outcome out;
  out.exact = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto got = bneck.notified_rate(specs[i].id);
    if (!got.has_value() || std::abs(*got - sol.rates[i]) > 1e-6) {
      out.exact = false;
    }
  }
  out.packets = bneck.packets_sent();
  out.retransmissions = bneck.retransmissions();
  out.last_packet = bneck.last_packet_time();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double loss =
      argc > 1 ? std::atof(argv[1]) / 100.0 : 0.20;  // default 20%
  const net::Network n = topo::make_dumbbell(4, 100.0);
  std::printf(
      "4 sessions over a 100 Mbps dumbbell, %.0f%% packet loss injected\n\n",
      loss * 100);

  stats::Table table({"configuration", "exact rates", "packets",
                      "retransmissions", "last packet at"});
  const auto row = [&](const char* label, double p, bool reliable) {
    const Outcome o = run(n, p, reliable, /*seed=*/42);
    table.add_row({label, o.exact ? "yes" : "NO",
                   stats::Table::integer(static_cast<std::int64_t>(o.packets)),
                   stats::Table::integer(
                       static_cast<std::int64_t>(o.retransmissions)),
                   format_time(o.last_packet)});
  };
  row("lossless (paper model)", 0.0, false);
  row("lossy, bare protocol", loss, false);
  row("lossy + ARQ link layer", loss, true);
  table.print(std::cout);

  std::printf(
      "\nThe bare protocol has no retransmissions: a lost Response or\n"
      "Update silently strands its session (the run still terminates —\n"
      "that is the dark side of quiescence).  With the ARQ layer every\n"
      "hop is exactly-once in-order, convergence is exact again, and the\n"
      "network still goes fully silent afterwards.\n");
  return 0;
}
