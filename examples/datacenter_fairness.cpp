// Datacenter fairness: bandwidth arbitration for bulk transfers.
//
// Scenario from the paper's motivation: long-running bulk flows (backup,
// replication, analytics shuffles) share an oversubscribed aggregation
// layer and must split it max-min fairly, with some flows capping their
// own demand.  B-Neck computes the allocation with a handful of control
// packets and then goes silent; when a flow changes its demand
// (API.Change) only the affected part of the network reactivates.
//
//   $ ./examples/datacenter_fairness
#include <cstdio>
#include <vector>

#include "core/bneck.hpp"
#include "core/maxmin.hpp"
#include "net/routing.hpp"

using namespace bneck;

namespace {

void print_allocation(const core::BneckProtocol& bneck,
                      const std::vector<SessionId>& sessions,
                      const std::vector<const char*>& labels) {
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto r = bneck.notified_rate(sessions[i]);
    std::printf("  %-28s %s\n", labels[i],
                r ? format_rate(*r).c_str() : "(no rate yet)");
  }
}

}  // namespace

int main() {
  // Leaf-spine fragment: two racks (leaf switches) behind one spine.
  // Rack uplinks are 400 Mbps; the spine-to-border link (the shared
  // aggregation bottleneck) is 250 Mbps; servers have 1 Gbps NICs.
  net::Network dc;
  const NodeId leaf_a = dc.add_router();
  const NodeId leaf_b = dc.add_router();
  const NodeId spine = dc.add_router();
  const NodeId border = dc.add_router();
  dc.add_link_pair(leaf_a, spine, 400.0, microseconds(2));
  dc.add_link_pair(leaf_b, spine, 400.0, microseconds(2));
  dc.add_link_pair(spine, border, 250.0, microseconds(2));

  // Servers: three per rack plus three archive targets at the border.
  std::vector<NodeId> rack_a, rack_b, archive;
  for (int i = 0; i < 3; ++i) rack_a.push_back(dc.add_host(leaf_a, 1000.0, microseconds(1)));
  for (int i = 0; i < 3; ++i) rack_b.push_back(dc.add_host(leaf_b, 1000.0, microseconds(1)));
  for (int i = 0; i < 6; ++i) archive.push_back(dc.add_host(border, 1000.0, microseconds(1)));
  const net::PathFinder paths(dc);

  sim::Simulator sim;
  core::BneckProtocol bneck(sim, dc);

  const std::vector<const char*> labels{
      "backup rack-a #1",      "backup rack-a #2",
      "replication rack-a",    "backup rack-b #1",
      "shuffle rack-b (60M cap)", "shuffle rack-b (40M cap)",
  };
  std::vector<SessionId> sessions;
  const auto join = [&](int id, NodeId src, NodeId dst, Rate demand) {
    bneck.join(SessionId{id}, *paths.shortest_path(src, dst), demand);
    sessions.push_back(SessionId{id});
  };

  std::printf("phase 1: six bulk flows start across the 250M border link\n");
  join(0, rack_a[0], archive[0], kRateInfinity);
  join(1, rack_a[1], archive[1], kRateInfinity);
  join(2, rack_a[2], archive[2], kRateInfinity);
  join(3, rack_b[0], archive[3], kRateInfinity);
  join(4, rack_b[1], archive[4], 60.0);
  join(5, rack_b[2], archive[5], 40.0);
  TimeNs t = sim.run_until_idle();
  std::printf("quiescent at %s; allocation:\n", format_time(t).c_str());
  print_allocation(bneck, sessions, labels);

  std::printf(
      "\nphase 2: the 40M-capped shuffle finishes its cap negotiation and\n"
      "asks for unlimited bandwidth (API.Change)\n");
  bneck.change(SessionId{5}, kRateInfinity);
  t = sim.run_until_idle();
  std::printf("quiescent again at %s; allocation:\n", format_time(t).c_str());
  print_allocation(bneck, sessions, labels);

  std::printf("\nphase 3: rack-a backup #1 completes (API.Leave)\n");
  bneck.leave(SessionId{0});
  t = sim.run_until_idle();
  std::printf("quiescent again at %s; allocation:\n", format_time(t).c_str());
  print_allocation(bneck, {sessions.begin() + 1, sessions.end()},
                   {labels.begin() + 1, labels.end()});

  std::printf("\ntotal control packets for all three phases: %llu\n",
              static_cast<unsigned long long>(bneck.packets_sent()));
  std::printf("(and zero packets from now on: B-Neck is quiescent)\n");
  return 0;
}
