// Quickstart: the B-Neck library in ~60 lines.
//
// Builds a small network, starts three sessions through the distributed
// B-Neck protocol, lets the protocol run to quiescence, and checks the
// computed rates against the centralized water-filling solver.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/bneck.hpp"
#include "core/maxmin.hpp"
#include "net/routing.hpp"
#include "topo/canonical.hpp"

using namespace bneck;

int main() {
  // A 90 Mbps dumbbell: three senders on the left, three receivers on
  // the right, 100 Mbps access links.
  const net::Network network = topo::make_dumbbell(/*n_pairs=*/3, 90.0);
  const net::PathFinder paths(network);

  sim::Simulator sim;
  core::BneckProtocol bneck(sim, network);

  // API.Rate notifications arrive through a callback.
  bneck.set_rate_callback([](SessionId s, Rate r, TimeNs t) {
    std::printf("  t=%-10s API.Rate(session %d, %s)\n",
                format_time(t).c_str(), s.value(), format_rate(r).c_str());
  });

  std::printf("joining 3 sessions (session 0 caps its demand at 10 Mbps)\n");
  for (int i = 0; i < 3; ++i) {
    const NodeId src = network.hosts()[static_cast<std::size_t>(i)];
    const NodeId dst = network.hosts()[static_cast<std::size_t>(i + 3)];
    bneck.join(SessionId{i}, *paths.shortest_path(src, dst),
               i == 0 ? 10.0 : kRateInfinity);
  }

  // B-Neck is quiescent: once the rates are computed the event queue
  // simply drains.  No polling, no control traffic, nothing to stop.
  const TimeNs quiescent_at = sim.run_until_idle();
  std::printf("quiescent after %s, %llu control packets total\n",
              format_time(quiescent_at).c_str(),
              static_cast<unsigned long long>(bneck.packets_sent()));

  // Cross-check against the centralized solver.
  const auto specs = bneck.active_specs();
  const auto solution = core::solve_waterfill(network, specs);
  std::printf("\n%-10s %14s %14s\n", "session", "B-Neck", "centralized");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::printf("%-10d %14s %14s\n", specs[i].id.value(),
                format_rate(bneck.notified_rate(specs[i].id).value()).c_str(),
                format_rate(solution.rates[i]).c_str());
  }
  return 0;
}
