// Protocol comparison: quiescent vs non-quiescent on the same workload.
//
// Runs B-Neck, BFYZ, CG and RCP on an identical session set and prints,
// per protocol: when it reached the max-min rates (within tolerance) and
// how much control traffic it generated while converging — and, the
// point of the paper, how much it keeps generating *after* convergence.
//
//   $ ./examples/protocol_comparison [sessions] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "proto/bfyz.hpp"
#include "proto/bneck_driver.hpp"
#include "proto/cg.hpp"
#include "proto/rcp.hpp"
#include "stats/table.hpp"
#include "topo/transit_stub.hpp"
#include "workload/experiment.hpp"

using namespace bneck;

namespace {

struct Row {
  std::string name;
  std::optional<TimeNs> converged;
  std::uint64_t packets_at_convergence = 0;
  std::uint64_t packets_after = 0;  // in the 30ms after convergence
};

Row run_one(const std::string& kind, const net::Network& network,
            const std::vector<workload::SessionPlan>& plans) {
  sim::Simulator sim;
  std::unique_ptr<proto::FairShareProtocol> p;
  if (kind == "B-Neck") {
    p = std::make_unique<proto::BneckDriver>(sim, network);
  } else if (kind == "BFYZ") {
    p = std::make_unique<proto::Bfyz>(sim, network);
  } else if (kind == "CG") {
    p = std::make_unique<proto::CobbGouda>(sim, network);
  } else {
    p = std::make_unique<proto::Rcp>(sim, network);
  }
  workload::schedule_joins(sim, *p, plans);

  workload::TrackedConfig cfg;
  cfg.horizon = milliseconds(150);
  cfg.sample_interval = microseconds(250);
  cfg.tolerance_percent = 1.0;
  workload::ErrorSampler sampler(network, *p);
  Row row{kind, std::nullopt, 0, 0};
  for (TimeNs t = cfg.sample_interval; t <= cfg.horizon;
       t += cfg.sample_interval) {
    sim.run_until(t);
    const auto s = sampler.sample(t);
    if (s.sessions > 0 && s.max_abs_error <= cfg.tolerance_percent) {
      row.converged = t;
      row.packets_at_convergence = p->packets_sent();
      break;
    }
  }
  if (row.converged) {
    sim.run_until(*row.converged + milliseconds(30));
    row.packets_after = p->packets_sent() - row.packets_at_convergence;
  }
  p->shutdown();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int32_t sessions = argc > 1 ? std::atoi(argv[1]) : 100;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  auto params = topo::small_params();
  params.hosts = sessions * 3;
  Rng rng(seed);
  const net::Network network = topo::make_transit_stub(params, rng);
  const net::PathFinder paths(network);
  workload::WorkloadConfig wcfg;
  wcfg.sessions = sessions;
  const auto plans = workload::generate_sessions(network, paths, wcfg, rng);

  std::printf(
      "%d sessions join a %d-router LAN transit-stub within 1 ms;\n"
      "convergence = all rates within 1%% of the max-min solution\n\n",
      sessions, network.router_count());

  stats::Table table({"protocol", "converged at", "packets to converge",
                      "packets in next 30ms"});
  for (const char* kind : {"B-Neck", "BFYZ", "CG", "RCP"}) {
    const Row row = run_one(kind, network, plans);
    table.add_row(
        {row.name,
         row.converged ? format_time(*row.converged) : "not in 150ms",
         row.converged ? stats::Table::integer(
                             static_cast<std::int64_t>(row.packets_at_convergence))
                       : "-",
         row.converged ? stats::Table::integer(
                             static_cast<std::int64_t>(row.packets_after))
                       : "-"});
  }
  table.print(std::cout);
  std::printf(
      "\nB-Neck's 'packets in next 30ms' is only the in-flight tail of the\n"
      "last certification pass, then silence — it is quiescent; the other\n"
      "protocols keep their full control-packet plateau forever.\n");
  return 0;
}
