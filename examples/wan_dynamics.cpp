// WAN dynamics: session churn on an Internet-like topology.
//
// Reproduces the flavour of the paper's Experiment 2 interactively: a
// transit-stub WAN (1-10 ms link delays), waves of sessions joining,
// leaving and renegotiating their demands, with B-Neck requiescing after
// every wave.  Prints per-phase convergence time, control traffic and
// the verification against the centralized solver.
//
//   $ ./examples/wan_dynamics [sessions] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "stats/table.hpp"
#include "topo/transit_stub.hpp"
#include "workload/experiment.hpp"

using namespace bneck;

int main(int argc, char** argv) {
  const std::int32_t base_sessions = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  auto params = topo::small_params();
  params.hosts = base_sessions * 3;
  params.delay_model = topo::DelayModel::Wan;
  Rng rng(seed);
  const net::Network wan = topo::make_transit_stub(params, rng);
  std::printf("WAN: %d routers, %d hosts, %d directed links (1-10ms delays)\n",
              wan.router_count(), wan.host_count(), wan.link_count());

  workload::DynamicsRunner runner(wan, rng);
  stats::Table table({"phase", "events", "active", "time-to-quiescence",
                      "packets", "max rate error"});

  const auto run = [&](const char* name, workload::PhaseSpec spec,
                       const char* events) {
    const auto r = runner.run_phase(spec);
    table.add_row({name, events, stats::Table::integer(
                                     static_cast<std::int64_t>(r.active_sessions)),
                   format_time(r.duration()),
                   stats::Table::integer(static_cast<std::int64_t>(r.packets)),
                   stats::Table::num(runner.max_rate_error() * 100, 6) + "%"});
  };

  workload::PhaseSpec joins;
  joins.joins = base_sessions;
  run("1: mass join", joins, "+N");

  workload::PhaseSpec leaves;
  leaves.leaves = base_sessions / 5;
  run("2: departures", leaves, "-N/5");

  workload::PhaseSpec changes;
  changes.changes = base_sessions / 5;
  run("3: renegotiation", changes, "~N/5");

  workload::PhaseSpec more;
  more.joins = base_sessions / 5;
  run("4: second wave", more, "+N/5");

  workload::PhaseSpec mixed;
  mixed.joins = base_sessions / 10;
  mixed.leaves = base_sessions / 10;
  mixed.changes = base_sessions / 10;
  run("5: mixed churn", mixed, "+-~N/10");

  std::printf("\n");
  table.print(std::cout);
  return 0;
}
