// bneck_check — property-based fuzzing CLI for the B-Neck state machines.
//
// Runs randomized join/leave/change schedules over randomized topologies
// under the online invariant checker (src/check/), fans seed blocks over
// a thread pool, and shrinks failures to minimal reproducers.  About a
// third of the generated scenarios carry non-uniform max-min weights
// (including mid-run weight changes), validating the weighted protocol
// against the weighted centralized solver; replay specs accept an
// optional :w<weight> field on join/change events.
//
//   bneck_check --seeds 0..500                 # fuzz a seed block
//   bneck_check --seeds 0..5000 --threads 8    # long campaign
//   bneck_check --seeds 0..200 --shrink        # minimize any failure
//   bneck_check --replay "<spec>"              # re-run an emitted spec
//   bneck_check --inject-fault single-kick ... # harness self-validation
//
// Exit code: 0 when every seed passes, 1 on any invariant violation (the
// failing seeds, their violations and — with --shrink — a minimal spec,
// a replay command line and a C++ regression snippet are printed).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/codec_fuzz.hpp"
#include "check/compliance.hpp"
#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--seeds A..B | --replay \"<spec>\"] [options]\n"
      "  --seeds A..B          seed range, inclusive (default 0..100)\n"
      "  --codec-seeds A..B    fuzz the wire codec instead (src/wire):\n"
      "                        round-trips + mutated/garbage datagrams\n"
      "  --compliance A..B     live-network mode: replay each seed's\n"
      "                        scenario against a forked bneckd over\n"
      "                        127.0.0.1 and check rates vs the solver\n"
      "  --compliance-threaded run the daemon on a thread, not a fork\n"
      "                        (in-process; what the ASan CI cell uses)\n"
      "  --compliance-timeout MS  convergence budget per seed (5000;\n"
      "                        15000 when faults are armed)\n"
      "  --faults [SPEC]       compliance under a deterministic lossy\n"
      "                        network on both egress paths; SPEC is\n"
      "                        \"key=value,...\" (seed, drop, dup, reorder,\n"
      "                        corrupt, delay, delay-min-ms, delay-max-ms),\n"
      "                        default = the standard ~11%%-loss preset;\n"
      "                        seed 0 derives from the scenario seed\n"
      "  --threads N           worker threads (0 = all cores, default)\n"
      "  --shrink              minimize failures to a minimal reproducer\n"
      "  --max-shrink-runs N   candidate re-runs per shrink (default 4000)\n"
      "  --replay \"<spec>\"     run one scenario spec (from the shrinker)\n"
      "  --expect-fail         with --replay: exit 0 only when the spec\n"
      "                        still reproduces a failure (regression\n"
      "                        pinning; a now-passing replay exits 1)\n"
      "  --inject-fault NAME   arm a documented protocol mutation\n"
      "                        (none | single-kick) to validate the harness\n"
      "  --audit-stride N      audit link tables every N events (default 256)\n"
      "  --quiescence-slack X  quiescence-bound multiplier, <=0 off (default 32)\n"
      "  --packet-slack X      packet-budget multiplier, <=0 off (default 64)\n"
      "  --max-events N        per-scenario event budget (default 2e7)\n"
      "  -v                    per-seed progress\n",
      argv0);
}

struct Args {
  std::uint64_t seed_first = 0;
  std::uint64_t seed_last = 100;
  bool codec_mode = false;
  bool compliance_mode = false;
  bneck::check::ComplianceOptions compliance;
  bool timeout_set = false;
  std::size_t threads = 0;
  bool do_shrink = false;
  std::size_t max_shrink_runs = 4000;
  std::string replay;
  bool expect_fail = false;
  bool verbose = false;
  bneck::check::CheckOptions check;
};

bool parse_seed_range(const char* text, std::uint64_t* first,
                      std::uint64_t* last) {
  const char* dots = std::strstr(text, "..");
  char* end = nullptr;
  if (dots == nullptr) {
    *first = *last = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
  }
  *first = std::strtoull(text, &end, 10);
  if (end != dots) return false;
  const char* tail = dots + 2;
  *last = std::strtoull(tail, &end, 10);
  return end != tail && *end == '\0' && *first <= *last;
}

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_seed_range(v, &a->seed_first, &a->seed_last)) {
        std::fprintf(stderr, "bad --seeds (want A..B or N)\n");
        return false;
      }
    } else if (std::strcmp(argv[i], "--codec-seeds") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_seed_range(v, &a->seed_first, &a->seed_last)) {
        std::fprintf(stderr, "bad --codec-seeds (want A..B or N)\n");
        return false;
      }
      a->codec_mode = true;
    } else if (std::strcmp(argv[i], "--compliance") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_seed_range(v, &a->seed_first, &a->seed_last)) {
        std::fprintf(stderr, "bad --compliance (want A..B or N)\n");
        return false;
      }
      a->compliance_mode = true;
    } else if (std::strcmp(argv[i], "--compliance-threaded") == 0) {
      a->compliance.threaded = true;
    } else if (std::strcmp(argv[i], "--compliance-timeout") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->compliance.timeout_ms = std::atoi(v);
      a->timeout_set = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      // Optional value: a "key=value,..." spec, else the standard preset.
      if (i + 1 < argc && std::strchr(argv[i + 1], '=') != nullptr) {
        std::string err;
        const auto cfg = bneck::transport::FaultConfig::parse(argv[++i], &err);
        if (!cfg) {
          std::fprintf(stderr, "bad --faults spec: %s\n", err.c_str());
          return false;
        }
        a->compliance.faults = *cfg;
      } else {
        a->compliance.faults = bneck::transport::FaultConfig::standard(0);
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->threads = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--shrink") == 0) {
      a->do_shrink = true;
    } else if (std::strcmp(argv[i], "--max-shrink-runs") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->max_shrink_runs =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->replay = v;
    } else if (std::strcmp(argv[i], "--expect-fail") == 0) {
      a->expect_fail = true;
    } else if (std::strcmp(argv[i], "--inject-fault") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "single-kick") == 0) {
        a->check.fault_single_kick = true;
      } else if (std::strcmp(v, "none") != 0) {
        std::fprintf(stderr, "unknown fault '%s' (none | single-kick)\n", v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--audit-stride") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->check.audit_stride =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--quiescence-slack") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->check.quiescence_slack = std::atof(v);
    } else if (std::strcmp(argv[i], "--packet-slack") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->check.packet_slack = std::atof(v);
    } else if (std::strcmp(argv[i], "--max-events") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->check.max_events = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "-v") == 0) {
      a->verbose = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

void print_failure_details(const bneck::check::Scenario& scenario,
                           const bneck::check::CheckResult& result,
                           const Args& args) {
  std::printf("[FAIL] seed %" PRIu64 ": %s\n", result.seed,
              result.message.c_str());
  std::printf("       replay: bneck_check --replay \"%s\"%s\n",
              bneck::check::format_spec(scenario).c_str(),
              args.check.fault_single_kick ? " --inject-fault single-kick"
                                          : "");
  if (!args.do_shrink) return;

  bneck::check::ShrinkOptions sopt;
  sopt.max_runs = args.max_shrink_runs;
  sopt.check = args.check;
  const auto shrunk = bneck::check::shrink(scenario, sopt);
  std::printf(
      "       shrunk %zu -> %zu events in %zu runs; minimal violation: %s\n",
      shrunk.original_events, shrunk.minimal_events, shrunk.runs,
      shrunk.failure.c_str());
  std::printf("       minimal replay: bneck_check --replay \"%s\"%s\n",
              bneck::check::format_spec(shrunk.minimal).c_str(),
              args.check.fault_single_kick ? " --inject-fault single-kick"
                                          : "");
  const std::string name = "Seed" + std::to_string(result.seed);
  std::printf("----- C++ reproducer -----\n%s--------------------------\n",
              bneck::check::cpp_snippet(shrunk.minimal, name,
                                        args.check.fault_single_kick)
                  .c_str());
}

}  // namespace

int run(const Args& args);

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    usage(argv[0]);
    return 2;
  }
  try {
    return run(args);
  } catch (const bneck::InvariantError& e) {
    // Malformed replay specs and unbuildable scenarios land here; report
    // them as a usage error instead of std::terminate.
    std::fprintf(stderr, "bneck_check: %s\n", e.what());
    return 2;
  }
}

int run(const Args& args) {
  if (args.codec_mode) {
    int failures = 0;
    std::uint64_t frames = 0, mutations = 0, rejected = 0;
    for (std::uint64_t s = args.seed_first; s <= args.seed_last; ++s) {
      const auto r = bneck::check::run_codec_seed(s);
      frames += r.frames;
      mutations += r.mutations;
      rejected += r.rejected;
      if (!r.ok()) {
        ++failures;
        std::printf("[FAIL] codec seed %" PRIu64 ": %s\n", s,
                    r.failure.c_str());
        std::printf("       replay: bneck_check --codec-seeds %" PRIu64 "\n",
                    s);
      } else if (args.verbose) {
        std::printf("[ ok ] codec seed %" PRIu64 ": %" PRIu64
                    " round-trips, %" PRIu64 " mutations (%" PRIu64
                    " rejected)\n",
                    s, r.frames, r.mutations, r.rejected);
      }
    }
    std::printf("bneck_check: codec fuzz, %" PRIu64 " seeds, %" PRIu64
                " round-trips, %" PRIu64 " mutated/garbage frames (%" PRIu64
                " rejected), %d failure(s)\n",
                args.seed_last - args.seed_first + 1, frames, mutations,
                rejected, failures);
    return failures > 0 ? 1 : 0;
  }

  if (args.compliance_mode) {
    // Sequential on purpose: each seed forks (or threads) its own
    // daemon; parallelizing would multiplex signals and sockets for no
    // coverage gain.
    const bool faulted =
        args.compliance.faults && args.compliance.faults->any();
    bneck::check::ComplianceOptions copt = args.compliance;
    // Repairing a lossy wire takes retransmission round-trips; give the
    // faulted runs a bigger default budget.
    if (faulted && !args.timeout_set) copt.timeout_ms = 15000;
    if (faulted) {
      std::printf("bneck_check: faults armed: %s\n",
                  copt.faults->to_string().c_str());
    }
    int failures = 0;
    std::uint64_t sessions = 0, frames = 0, retx = 0, dropped = 0;
    for (std::uint64_t s = args.seed_first; s <= args.seed_last; ++s) {
      const auto r = bneck::check::run_compliance_seed(s, copt);
      sessions += r.sessions_checked;
      frames += r.wire_frames;
      retx += r.retransmissions;
      dropped += r.client_faults.dropped + r.client_faults.corrupted;
      if (!r.ok) {
        ++failures;
        std::printf("[FAIL] compliance seed %" PRIu64 ": %s\n", s,
                    r.failure.c_str());
        std::printf("       replay: bneck_check --compliance %" PRIu64 "%s%s\n",
                    s, faulted ? " --faults " : "",
                    faulted ? copt.faults->to_string().c_str() : "");
      } else if (args.verbose) {
        std::printf("[ ok ] compliance seed %" PRIu64 ": %u session(s), "
                    "%" PRIu64 " datagrams, %" PRIu64 " retx, %d nudge(s)\n",
                    s, r.sessions_checked, r.wire_frames, r.retransmissions,
                    r.nudges);
      }
    }
    if (faulted) {
      std::printf("bneck_check: compliance under faults, %" PRIu64
                  " seeds, %" PRIu64 " sessions checked, %" PRIu64
                  " datagrams, %" PRIu64 " client frames dropped/corrupted, "
                  "%" PRIu64 " retransmissions, %d failure(s)\n",
                  args.seed_last - args.seed_first + 1, sessions, frames,
                  dropped, retx, failures);
    } else {
      std::printf("bneck_check: compliance, %" PRIu64 " seeds, %" PRIu64
                  " sessions checked, %" PRIu64 " datagrams, %d failure(s)\n",
                  args.seed_last - args.seed_first + 1, sessions, frames,
                  failures);
    }
    return failures > 0 ? 1 : 0;
  }

  if (!args.replay.empty()) {
    const auto scenario = bneck::check::parse_spec(args.replay);
    const auto result = bneck::check::run_scenario(scenario, args.check);
    if (args.expect_fail) {
      // Regression pinning: the spec documents a known failure, so a
      // replay that no longer reproduces it is itself the failure.
      if (!result.ok) {
        std::printf("[ ok ] replay still fails as expected: %s\n",
                    result.message.c_str());
        return 0;
      }
      std::printf("[FAIL] replay expected to fail but passed: %d quiescent "
                  "phase(s), %" PRIu64 " events, %" PRIu64 " packets\n",
                  result.quiescent_phases, result.events_processed,
                  result.packets_sent);
      return 1;
    }
    if (result.ok) {
      std::printf("[ ok ] replay: %d quiescent phase(s), %" PRIu64
                  " events, %" PRIu64 " packets\n",
                  result.quiescent_phases, result.events_processed,
                  result.packets_sent);
      return 0;
    }
    print_failure_details(scenario, result, args);
    return 1;
  }

  if (args.verbose) {
    // Sequential verbose mode: per-seed lines, still deterministic.
    int failures = 0;
    for (std::uint64_t s = args.seed_first; s <= args.seed_last; ++s) {
      const auto result = bneck::check::run_seed(s, args.check);
      if (result.ok) {
        std::printf("[ ok ] seed %" PRIu64 ": %zu schedule events, %d "
                    "phase(s), %" PRIu64 " sim events\n",
                    s, result.schedule_events, result.quiescent_phases,
                    result.events_processed);
        continue;
      }
      ++failures;
      print_failure_details(bneck::check::generate_scenario(s), result, args);
    }
    return failures > 0 ? 1 : 0;
  }

  const auto campaign = bneck::check::run_seed_range(
      args.seed_first, args.seed_last, args.threads, args.check);
  std::printf("bneck_check: %" PRIu64 " seeds, %" PRIu64
              " quiescent phases, %" PRIu64 " sim events, %" PRIu64
              " packets, %zu failure(s)\n",
              campaign.seeds_run, campaign.quiescent_phases,
              campaign.events_processed, campaign.packets_sent,
              campaign.failures.size());
  for (const auto& failure : campaign.failures) {
    print_failure_details(bneck::check::generate_scenario(failure.seed),
                          failure, args);
  }
  return campaign.ok() ? 0 : 1;
}
