// bneck_mc — exhaustive small-model checker for the B-Neck protocol.
//
// Explores EVERY packet-delivery interleaving of tiny instances (line
// topologies, 1..3 routers, 1..4 sessions, join/leave/change timelines
// from check::generate_small_scenario or an explicit spec) under the
// full invariant checker: every same-instant delivery race is branched,
// every quiescent state is validated against the centralized solver, and
// the exact maxima over all schedules — time to quiescence, protocol
// packets — are reported, replacing the fuzzer's calibrated slack bounds
// with enumerated facts on these instances (docs/model_checking.md).
//
//   bneck_mc                                # canonical 2-router/2-session
//   bneck_mc --routers 3 --sessions 3       # bigger small model
//   bneck_mc --seeds 0..19                  # a family of instances
//   bneck_mc --spec "<spec>" --dpor off     # one scenario, no reduction
//   bneck_mc --inject-fault single-kick     # hunt a minimal witness
//
// --dpor both (the default) runs every instance twice — once as a raw
// schedule enumeration (no reductions: the baseline, authoritative for
// the exact maxima) and once under sleep-set DPOR with visited-state
// merging — and fails unless both agree on the verdict, the reachable
// quiescent-state fingerprints and the exact maxima.
//
// Exit code: 0 all instances pass and agree; 1 on a DPOR disagreement or
// an incomplete exploration (a cap was hit); 2 when some schedule
// violates an invariant (the witness schedule is printed).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/scenario.hpp"
#include "mc/explorer.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --routers N          line-topology routers, 1..3 (default 2)\n"
      "  --sessions K         sessions in the join burst, 1..4 (default 2)\n"
      "  --extra E            events after the join burst (default 2)\n"
      "  --seeds A..B         small-model seeds, inclusive (default 0..0)\n"
      "  --spec \"<spec>\"      explore one bneck_check scenario spec\n"
      "                       (must be loss-free and non-shared)\n"
      "  --dpor on|off|both   off = raw enumeration, on = sleep sets +\n"
      "                       state merging (default both: run twice,\n"
      "                       fail unless results agree)\n"
      "  --depth D            max deliveries per schedule (default 100000)\n"
      "  --max-states N       visited-state cap (default 2e6)\n"
      "  --max-events N       per-schedule simulator budget (default 2e6)\n"
      "  --inject-fault NAME  none | single-kick (arms the documented\n"
      "                       harness mutation and hunts a minimal witness)\n"
      "  -v                   per-instance detail and full witnesses\n",
      argv0);
}

struct Args {
  bneck::check::SmallModelParams small;
  std::uint64_t seed_first = 0;
  std::uint64_t seed_last = 0;
  std::string spec;
  int dpor_mode = 2;  // 0 = off, 1 = on, 2 = both
  bneck::mc::McOptions mc;
  bool verbose = false;
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--routers") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->small.routers = static_cast<std::int32_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->small.sessions = static_cast<std::int32_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--extra") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->small.extra_events = static_cast<std::int32_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      char* end = nullptr;
      a->seed_first = std::strtoull(v, &end, 10);
      if (end != nullptr && end[0] == '.' && end[1] == '.') {
        a->seed_last = std::strtoull(end + 2, nullptr, 10);
      } else {
        a->seed_last = a->seed_first;
      }
      if (a->seed_last < a->seed_first) return false;
    } else if (std::strcmp(argv[i], "--spec") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->spec = v;
    } else if (std::strcmp(argv[i], "--dpor") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "off") == 0) {
        a->dpor_mode = 0;
      } else if (std::strcmp(v, "on") == 0) {
        a->dpor_mode = 1;
      } else if (std::strcmp(v, "both") == 0) {
        a->dpor_mode = 2;
      } else {
        std::fprintf(stderr, "unknown --dpor '%s' (on | off | both)\n", v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--depth") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->mc.max_depth = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-states") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->mc.max_states = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-events") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      a->mc.world.max_events = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--inject-fault") == 0) {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "single-kick") == 0) {
        a->mc.world.fault_single_kick = true;
        a->mc.minimal_witness = true;
      } else if (std::strcmp(v, "none") != 0) {
        std::fprintf(stderr, "unknown fault '%s' (none | single-kick)\n", v);
        return false;
      }
    } else if (std::strcmp(argv[i], "-v") == 0) {
      a->verbose = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

void print_result(const char* label, const bneck::mc::McResult& r) {
  std::printf(
      "  dpor=%-4s states=%" PRIu64 " transitions=%" PRIu64
      " branches=%" PRIu64 " executions=%" PRIu64 " sleep_skips=%" PRIu64
      " visited_skips=%" PRIu64 "\n"
      "            max_quiescence=%lldns max_packets=%" PRIu64
      " quiescent_states=%" PRIu64 " (xor %016" PRIx64 ")%s\n",
      label, r.states, r.transitions, r.branch_points, r.executions,
      r.sleep_skips, r.visited_skips,
      static_cast<long long>(r.max_quiescence_time), r.max_total_packets,
      r.quiescent_states, r.quiescent_fp_xor,
      r.complete ? "" : " [INCOMPLETE]");
}

void print_witness(const bneck::mc::McResult& r, bool verbose) {
  std::printf("  violation after %zu deliveries: %s\n", r.witness_len,
              r.message.c_str());
  const std::size_t show = verbose ? r.witness.size()
                                   : std::min<std::size_t>(r.witness.size(), 12);
  for (std::size_t i = 0; i < show; ++i) {
    std::printf("    #%zu %s\n", i + 1, r.witness[i].c_str());
  }
  if (show < r.witness.size()) {
    std::printf("    ... (%zu more; -v for the full schedule)\n",
                r.witness.size() - show);
  }
}

/// 0 = pass, 1 = incomplete/mismatch, 2 = violation.
int check_instance(const bneck::check::Scenario& sc, const Args& args) {
  std::printf("instance %s\n", bneck::check::format_spec(sc).c_str());
  int rc = 0;

  bneck::mc::McResult off;
  bneck::mc::McResult on;
  const bool run_off = args.dpor_mode != 1;
  const bool run_on = args.dpor_mode != 0;
  if (run_off) {
    bneck::mc::McOptions o = args.mc;
    o.dpor = false;
    o.state_merge = false;  // the raw schedule-enumeration baseline
    off = bneck::mc::explore(sc, o);
    print_result("off", off);
    if (!off.complete) rc = std::max(rc, 1);
    if (!off.ok) {
      print_witness(off, args.verbose);
      rc = 2;
    }
  }
  if (run_on) {
    bneck::mc::McOptions o = args.mc;
    o.dpor = true;
    on = bneck::mc::explore(sc, o);
    print_result("on", on);
    if (!on.complete) rc = std::max(rc, 1);
    if (!on.ok) {
      if (!run_off) print_witness(on, args.verbose);
      rc = 2;
    }
  }
  if (run_off && run_on) {
    const bool agree = off.ok == on.ok &&
                       off.quiescent_states == on.quiescent_states &&
                       off.quiescent_fp_xor == on.quiescent_fp_xor &&
                       off.max_quiescence_time == on.max_quiescence_time &&
                       off.max_total_packets == on.max_total_packets;
    if (!agree) {
      std::printf("  [FAIL] DPOR on/off disagree\n");
      rc = std::max(rc, 1);
    } else if (on.states > 0) {
      std::printf("  reduction: %.2fx states, %.2fx transitions, agree\n",
                  static_cast<double>(off.states) /
                      static_cast<double>(on.states),
                  static_cast<double>(off.transitions) /
                      static_cast<double>(std::max<std::uint64_t>(
                          on.transitions, 1)));
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    usage(argv[0]);
    return 1;
  }

  int rc = 0;
  if (!args.spec.empty()) {
    rc = check_instance(bneck::check::parse_spec(args.spec), args);
  } else {
    for (std::uint64_t s = args.seed_first; s <= args.seed_last; ++s) {
      rc = std::max(
          rc, check_instance(
                  bneck::check::generate_small_scenario(s, args.small), args));
    }
  }
  if (rc == 0) std::printf("bneck_mc: all instances pass\n");
  return rc;
}
