// bneckd — the B-Neck router plane as a standalone daemon.
//
// Serves one network's RouterLink tasks plus the destination echo over
// UDP loopback (src/wire format, one frame per datagram); source-node
// clients (transport/client.hpp) drive sessions against it with
// Join/Probe/Leave.  The topology comes from a scenario spec — the same
// `v1 topo=... a=... ...` string bneck_check emits and replays — whose
// event list, if any, is ignored: bneckd only builds the network.
//
//   bneckd --topo "v1 topo=dumbbell a=3"            # ephemeral port
//   bneckd --topo "v1 topo=parkinglot a=4" --port 47000
//
// The daemon prints one `listening on 127.0.0.1:PORT` line to stdout
// once bound (scripts parse it to find an ephemeral port), serves until
// a Shutdown frame or SIGINT/SIGTERM, then prints ingress statistics
// and exits 0 — with every socket closed, which the ASan CI cell
// checks on the compliance path.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "check/scenario.hpp"
#include "transport/daemon.hpp"

namespace {

bneck::transport::Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s --topo \"<scenario spec>\" [--port N] [--expiry-ms N]\n"
      "       [--summary-ms N] [--faults SPEC]\n"
      "  --topo SPEC     topology, as a bneck_check scenario spec\n"
      "                  (e.g. \"v1 topo=dumbbell a=3\"; events ignored)\n"
      "  --port N        UDP port on 127.0.0.1 (default 0 = ephemeral)\n"
      "  --expiry-ms N   reap sessions of clients silent N ms (default\n"
      "                  2000; 0 disables liveness expiry)\n"
      "  --summary-ms N  print a counter summary to stderr every N ms\n"
      "                  (default 5000; 0 disables)\n"
      "  --faults SPEC   serve behind a deterministic lossy wire, e.g.\n"
      "                  \"seed=7,drop=0.1,dup=0.05\" (see bneck_check\n"
      "                  --help for the full key list)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec;
  int port = 0;
  int expiry_ms = 2000;
  int summary_ms = 5000;
  std::optional<bneck::transport::FaultConfig> faults;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--topo") == 0) {
      const char* v = next();
      if (v == nullptr) {
        usage(argv[0]);
        return 2;
      }
      spec = v;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      const char* v = next();
      if (v == nullptr) {
        usage(argv[0]);
        return 2;
      }
      port = std::atoi(v);
    } else if (std::strcmp(argv[i], "--expiry-ms") == 0) {
      const char* v = next();
      if (v == nullptr || (expiry_ms = std::atoi(v)) < 0) {
        usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--summary-ms") == 0) {
      const char* v = next();
      if (v == nullptr || (summary_ms = std::atoi(v)) < 0) {
        usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      const char* v = next();
      std::string error;
      if (v == nullptr ||
          !(faults = bneck::transport::FaultConfig::parse(v, &error))) {
        std::fprintf(stderr, "bneckd: bad --faults spec: %s\n",
                     error.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }
  if (spec.empty() || port < 0 || port > 65535) {
    usage(argv[0]);
    return 2;
  }

  try {
    const bneck::check::Scenario sc = bneck::check::parse_spec(spec);
    const bneck::net::Network net = bneck::check::build_network(sc.topo);
    bneck::transport::DaemonOptions opts;
    opts.port = static_cast<std::uint16_t>(port);
    opts.session_expiry = bneck::milliseconds(expiry_ms);
    opts.summary_period = bneck::milliseconds(summary_ms);
    opts.faults = faults;
    bneck::transport::Daemon daemon(net, opts);
    g_daemon = &daemon;
    ::signal(SIGINT, on_signal);
    ::signal(SIGTERM, on_signal);

    std::printf("bneckd: listening on %s (%s, %d links, %d hosts)\n",
                daemon.endpoint().to_string().c_str(),
                bneck::check::topo_kind_name(sc.topo.kind), net.link_count(),
                net.host_count());
    std::fflush(stdout);

    daemon.serve();
    g_daemon = nullptr;

    const auto& st = daemon.stats();
    std::printf("bneckd: exiting; %llu frames accepted, %llu rejected, "
                "%llu invariant trips, %llu status requests, "
                "%llu retransmissions, %u expired sessions\n",
                static_cast<unsigned long long>(st.frames_accepted),
                static_cast<unsigned long long>(st.frames_rejected),
                static_cast<unsigned long long>(st.invariant_trips),
                static_cast<unsigned long long>(st.status_requests),
                static_cast<unsigned long long>(
                    daemon.transport().retransmissions()),
                st.expired_sessions);
    const bneck::wire::StatusReply snap = daemon.status_reply();
    for (int i = 0; i < bneck::wire::kRejectReasonCount; ++i) {
      const std::uint32_t n = snap.rejects[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      std::printf("bneckd:   rejects[%s] = %u\n",
                  bneck::wire::reject_reason_name(
                      static_cast<bneck::wire::RejectReason>(i)),
                  n);
    }
    if (!daemon.last_reject().empty()) {
      std::printf("bneckd: last rejection: %s\n",
                  daemon.last_reject().c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bneckd: %s\n", e.what());
    return 1;
  }
}
