// bneckd — the B-Neck router plane as a standalone daemon.
//
// Serves one network's RouterLink tasks plus the destination echo over
// UDP loopback (src/wire format, one frame per datagram); source-node
// clients (transport/client.hpp) drive sessions against it with
// Join/Probe/Leave.  The topology comes from a scenario spec — the same
// `v1 topo=... a=... ...` string bneck_check emits and replays — whose
// event list, if any, is ignored: bneckd only builds the network.
//
//   bneckd --topo "v1 topo=dumbbell a=3"            # ephemeral port
//   bneckd --topo "v1 topo=parkinglot a=4" --port 47000
//
// The daemon prints one `listening on 127.0.0.1:PORT` line to stdout
// once bound (scripts parse it to find an ephemeral port), serves until
// a Shutdown frame or SIGINT/SIGTERM, then prints ingress statistics
// and exits 0 — with every socket closed, which the ASan CI cell
// checks on the compliance path.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "check/scenario.hpp"
#include "transport/daemon.hpp"

namespace {

bneck::transport::Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s --topo \"<scenario spec>\" [--port N]\n"
      "  --topo SPEC   topology, as a bneck_check scenario spec\n"
      "                (e.g. \"v1 topo=dumbbell a=3\"; events ignored)\n"
      "  --port N      UDP port on 127.0.0.1 (default 0 = ephemeral)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec;
  int port = 0;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--topo") == 0) {
      const char* v = next();
      if (v == nullptr) {
        usage(argv[0]);
        return 2;
      }
      spec = v;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      const char* v = next();
      if (v == nullptr) {
        usage(argv[0]);
        return 2;
      }
      port = std::atoi(v);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }
  if (spec.empty() || port < 0 || port > 65535) {
    usage(argv[0]);
    return 2;
  }

  try {
    const bneck::check::Scenario sc = bneck::check::parse_spec(spec);
    const bneck::net::Network net = bneck::check::build_network(sc.topo);
    bneck::transport::Daemon daemon(net,
                                    static_cast<std::uint16_t>(port));
    g_daemon = &daemon;
    ::signal(SIGINT, on_signal);
    ::signal(SIGTERM, on_signal);

    std::printf("bneckd: listening on %s (%s, %d links, %d hosts)\n",
                daemon.endpoint().to_string().c_str(),
                bneck::check::topo_kind_name(sc.topo.kind), net.link_count(),
                net.host_count());
    std::fflush(stdout);

    daemon.serve();
    g_daemon = nullptr;

    const auto& st = daemon.stats();
    std::printf("bneckd: exiting; %llu frames accepted, %llu rejected, "
                "%llu invariant trips, %llu status requests\n",
                static_cast<unsigned long long>(st.frames_accepted),
                static_cast<unsigned long long>(st.frames_rejected),
                static_cast<unsigned long long>(st.invariant_trips),
                static_cast<unsigned long long>(st.status_requests));
    if (!daemon.last_reject().empty()) {
      std::printf("bneckd: last rejection: %s\n",
                  daemon.last_reject().c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bneckd: %s\n", e.what());
    return 1;
  }
}
