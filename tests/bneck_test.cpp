// Tests for the distributed B-Neck protocol.
//
// Strategy: every scenario runs the real protocol on the real simulator,
// drives it with API primitives, lets it quiesce (run_until_idle — which
// only returns because B-Neck *is* quiescent) and then checks
//   (a) the notified rates equal the centralized max-min solution,
//   (b) the network is stable in the sense of the paper's Definition 2,
//   (c) protocol-specific claims (conservative transients, packet counts,
//       reactivation on dynamics).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "core/bneck.hpp"
#include "core/maxmin.hpp"
#include "core/text_trace.hpp"
#include "net/routing.hpp"
#include "topo/canonical.hpp"
#include "topo/transit_stub.hpp"

namespace bneck::core {
namespace {

using net::Network;
using net::PathFinder;
using topo::CanonicalOptions;

// Test fixture bundling simulator + protocol + rate log.
struct Harness {
  explicit Harness(const Network& network, BneckConfig cfg = {})
      : net(network), bneck(sim, net, cfg) {
    bneck.set_rate_callback([this](SessionId s, Rate r, TimeNs t) {
      notifications.push_back({t, s, r});
    });
  }

  net::Path path_between(NodeId src, NodeId dst) const {
    const PathFinder pf(net);
    auto p = pf.shortest_path(src, dst);
    EXPECT_TRUE(p.has_value());
    return std::move(*p);
  }

  void join_now(std::int32_t id, NodeId src, NodeId dst,
                Rate demand = kRateInfinity) {
    bneck.join(SessionId{id}, path_between(src, dst), demand);
  }

  /// Runs to quiescence and asserts Definition-2 stability.
  TimeNs quiesce() {
    const TimeNs t = sim.run_until_idle();
    EXPECT_TRUE(bneck.all_tasks_stable())
        << "network quiescent but not stable";
    return t;
  }

  /// Asserts every active session's notified rate matches the
  /// centralized max-min solution for the current session set.
  void expect_maxmin(double tol = 1e-6) {
    const auto specs = bneck.active_specs();
    const auto sol = solve_waterfill(net, specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto got = bneck.notified_rate(specs[i].id);
      ASSERT_TRUE(got.has_value())
          << "session " << specs[i].id << " never got a rate";
      EXPECT_NEAR(*got, sol.rates[i], tol * std::max(1.0, sol.rates[i]))
          << "session " << specs[i].id;
    }
  }

  struct Notification {
    TimeNs t;
    SessionId s;
    Rate r;
  };

  const Network& net;
  sim::Simulator sim;
  BneckProtocol bneck;
  std::vector<Notification> notifications;
};

// ---- single-session basics ----

TEST(Bneck, SingleSessionGetsAccessLinkRate) {
  const auto n = topo::make_line(2);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[1]);
  const TimeNs t = h.quiesce();
  EXPECT_GT(t, 0);
  ASSERT_TRUE(h.bneck.notified_rate(SessionId{0}).has_value());
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 100.0, 1e-9);
  h.expect_maxmin();
}

TEST(Bneck, SingleSessionDemandCap) {
  const auto n = topo::make_line(2);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[1], 12.5);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 12.5, 1e-9);
}

TEST(Bneck, SingleSessionIsQuiescentAfterFewPackets) {
  // One session over a 2-router line: Join travels 3 links down, the
  // Response 3 links up, then SetBottleneck 3 links down: 9 crossings.
  const auto n = topo::make_line(2);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[1]);
  h.quiesce();
  EXPECT_EQ(h.bneck.packets_sent(), 9u);
}

TEST(Bneck, NotificationHappensExactlyOnceWhenStatic) {
  const auto n = topo::make_line(2);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[1]);
  h.quiesce();
  EXPECT_EQ(h.notifications.size(), 1u);
}

// ---- multi-session convergence on hand-checkable topologies ----

TEST(Bneck, DumbbellEqualShares) {
  const auto n = topo::make_dumbbell(3, 90.0);
  Harness h(n);
  for (int i = 0; i < 3; ++i) {
    h.join_now(i, n.hosts()[static_cast<std::size_t>(i)],
               n.hosts()[static_cast<std::size_t>(i + 3)]);
  }
  h.quiesce();
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(*h.bneck.notified_rate(SessionId{i}), 30.0, 1e-6);
  }
}

TEST(Bneck, DumbbellWithDemandCap) {
  const auto n = topo::make_dumbbell(3, 90.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[3], 10.0);
  h.join_now(1, n.hosts()[1], n.hosts()[4]);
  h.join_now(2, n.hosts()[2], n.hosts()[5]);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 10.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 40.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{2}), 40.0, 1e-6);
}

TEST(Bneck, TwoLevelBottleneckChain) {
  // Same instance as MaxMin.TwoLevelBottleneckChain: rates 15,15,42.5,42.5.
  Network n;
  const NodeId r0 = n.add_router();
  const NodeId r1 = n.add_router();
  const NodeId r2 = n.add_router();
  n.add_link_pair(r0, r1, 30.0, microseconds(1));
  n.add_link_pair(r1, r2, 100.0, microseconds(1));
  const NodeId a0 = n.add_host(r0, 1000.0, 0);
  const NodeId a1 = n.add_host(r0, 1000.0, 0);
  const NodeId b0 = n.add_host(r1, 1000.0, 0);
  const NodeId b1 = n.add_host(r1, 1000.0, 0);
  const NodeId b2 = n.add_host(r1, 1000.0, 0);
  const NodeId c0 = n.add_host(r2, 1000.0, 0);
  const NodeId c1 = n.add_host(r2, 1000.0, 0);
  const NodeId c2 = n.add_host(r2, 1000.0, 0);
  Harness h(n);
  h.join_now(0, a0, b0);
  h.join_now(1, a1, c0);
  h.join_now(2, b1, c1);
  h.join_now(3, b2, c2);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 15.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 15.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{2}), 42.5, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{3}), 42.5, 1e-6);
  h.expect_maxmin();
}

TEST(Bneck, ParkingLot) {
  CanonicalOptions opt;
  opt.router_capacity = 200.0;
  opt.access_capacity = 1000.0;
  const auto n = topo::make_parking_lot(4, opt);
  const auto& hs = n.hosts();
  BneckConfig cfg;
  cfg.shared_access_links = true;  // host 0 sources two sessions
  Harness h(n, cfg);
  h.join_now(0, hs[0], hs[4]);
  for (int i = 0; i < 4; ++i) {
    h.join_now(i + 1, hs[static_cast<std::size_t>(i)],
               hs[static_cast<std::size_t>(i + 1)]);
  }
  h.quiesce();
  h.expect_maxmin();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 100.0, 1e-6);
}

TEST(Bneck, StaggeredJoinsConverge) {
  // Joins spread over time rather than simultaneous.
  const auto n = topo::make_dumbbell(4, 100.0);
  Harness h(n);
  for (int i = 0; i < 4; ++i) {
    h.sim.schedule_at(milliseconds(i), [&h, &n, i] {
      h.join_now(i, n.hosts()[static_cast<std::size_t>(i)],
                 n.hosts()[static_cast<std::size_t>(i + 4)]);
    });
  }
  h.quiesce();
  h.expect_maxmin();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(*h.bneck.notified_rate(SessionId{i}), 25.0, 1e-6);
  }
}

TEST(Bneck, LateJoinerTriggersRenegotiation) {
  // Session 0 stabilizes alone at 100; session 1 joins later and both
  // must end at 50 (the Join must reactivate the quiescent session 0).
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 100.0, 1e-6);
  h.join_now(1, n.hosts()[1], n.hosts()[3]);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 50.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 50.0, 1e-6);
}

// ---- dynamics: leave / change ----

TEST(Bneck, LeaveRedistributesBandwidth) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  h.join_now(1, n.hosts()[1], n.hosts()[3]);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 50.0, 1e-6);
  h.bneck.leave(SessionId{1});
  h.quiesce();
  EXPECT_FALSE(h.bneck.is_active(SessionId{1}));
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 100.0, 1e-6);
  h.expect_maxmin();
}

TEST(Bneck, LeaveOfAllSessionsLeavesCleanNetwork) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  h.join_now(1, n.hosts()[1], n.hosts()[3]);
  h.quiesce();
  h.bneck.leave(SessionId{0});
  h.bneck.leave(SessionId{1});
  h.quiesce();
  EXPECT_EQ(h.bneck.active_sessions(), 0u);
  // Every router link table must be empty.
  for (std::int32_t i = 0; i < n.link_count(); ++i) {
    const RouterLink* rl = h.bneck.router_link(LinkId{i});
    if (rl != nullptr) {
      EXPECT_EQ(rl->table().size(), 0u);
    }
  }
}

TEST(Bneck, ChangeLowersOwnRateAndBoostsOthers) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  h.join_now(1, n.hosts()[1], n.hosts()[3]);
  h.quiesce();
  h.bneck.change(SessionId{0}, 20.0);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 20.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 80.0, 1e-6);
  h.expect_maxmin();
}

TEST(Bneck, ChangeRaisesRateBack) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2], 20.0);
  h.join_now(1, n.hosts()[1], n.hosts()[3]);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 80.0, 1e-6);
  h.bneck.change(SessionId{0}, kRateInfinity);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 50.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 50.0, 1e-6);
}

TEST(Bneck, RapidJoinLeaveChurnEndsConsistent) {
  const auto n = topo::make_dumbbell(8, 100.0);
  Harness h(n);
  // 8 join at t in [0,1ms); 4 leave shortly after; 2 change demand.
  for (int i = 0; i < 8; ++i) {
    h.sim.schedule_at(microseconds(i * 100), [&h, &n, i] {
      h.join_now(i, n.hosts()[static_cast<std::size_t>(i)],
                 n.hosts()[static_cast<std::size_t>(i + 8)]);
    });
  }
  for (int i = 0; i < 4; ++i) {
    h.sim.schedule_at(microseconds(1200 + i * 50),
                      [&h, i] { h.bneck.leave(SessionId{i}); });
  }
  h.sim.schedule_at(microseconds(1500),
                    [&h] { h.bneck.change(SessionId{4}, 5.0); });
  h.sim.schedule_at(microseconds(1600),
                    [&h] { h.bneck.change(SessionId{5}, 7.5); });
  h.quiesce();
  h.expect_maxmin();
  EXPECT_EQ(h.bneck.active_sessions(), 4u);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{4}), 5.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{5}), 7.5, 1e-6);
}

TEST(Bneck, LeaveWhileProbeInFlight) {
  // Leave racing the session's own probe cycle: nothing may wedge.
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  // Leave almost immediately: the Join/Response cycle is still running.
  h.sim.schedule_at(microseconds(2), [&h] { h.bneck.leave(SessionId{0}); });
  h.quiesce();
  EXPECT_EQ(h.bneck.active_sessions(), 0u);
}

TEST(Bneck, JoinLeaveStormSameBottleneck) {
  const auto n = topo::make_dumbbell(16, 64.0);
  Harness h(n);
  for (int i = 0; i < 16; ++i) {
    h.sim.schedule_at(microseconds(i * 7), [&h, &n, i] {
      h.join_now(i, n.hosts()[static_cast<std::size_t>(i)],
                 n.hosts()[static_cast<std::size_t>(i + 16)]);
    });
  }
  for (int i = 0; i < 8; ++i) {
    h.sim.schedule_at(microseconds(40 + i * 11),
                      [&h, i] { h.bneck.leave(SessionId{i * 2}); });
  }
  h.quiesce();
  h.expect_maxmin();
  EXPECT_EQ(h.bneck.active_sessions(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(*h.bneck.notified_rate(SessionId{i * 2 + 1}), 8.0, 1e-6);
  }
}

// ---- API misuse ----

TEST(Bneck, SessionIdsAreSingleUse) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  EXPECT_THROW(h.join_now(0, n.hosts()[1], n.hosts()[3]), InvariantError);
}

TEST(Bneck, LeaveInactiveThrows) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  EXPECT_THROW(h.bneck.leave(SessionId{5}), InvariantError);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  h.bneck.leave(SessionId{0});
  EXPECT_THROW(h.bneck.leave(SessionId{0}), InvariantError);
}

TEST(Bneck, ChangeInactiveThrows) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  EXPECT_THROW(h.bneck.change(SessionId{0}, 10.0), InvariantError);
}

TEST(Bneck, PathMustConnectHosts) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  net::Path bogus;  // empty
  EXPECT_THROW(h.bneck.join(SessionId{0}, bogus, 10.0), InvariantError);
}

// ---- conservative transients (paper §I-B, Fig. 7 claim) ----

TEST(Bneck, TransientsConservativeOnSharedBottleneck) {
  // Simultaneous joins over one shared bottleneck: no notification may
  // exceed the session's final max-min rate (B-Neck under-approximates
  // while converging; this is what keeps the link from overloading).
  const auto n = topo::make_dumbbell(16, 100.0);
  Harness h(n);
  for (int i = 0; i < 16; ++i) {
    h.join_now(i, n.hosts()[static_cast<std::size_t>(i)],
               n.hosts()[static_cast<std::size_t>(i + 16)]);
  }
  h.quiesce();
  const auto specs = h.bneck.active_specs();
  const auto sol = solve_waterfill(n, specs);
  std::map<std::int32_t, Rate> final_rate;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    final_rate[specs[i].id.value()] = sol.rates[i];
  }
  for (const auto& note : h.notifications) {
    EXPECT_LE(note.r, final_rate[note.s.value()] + 1e-6)
        << "transient above final rate for session " << note.s;
  }
}

TEST(Bneck, TransientsConservativeOnceJoinsHaveDrained) {
  // On multi-bottleneck topologies a short session may legitimately
  // stabilize *high* before a longer session's Join reaches its links
  // (the premature-bottleneck case of paper §III-C).  The conservative
  // property therefore applies to notifications issued after the last
  // Join packet crossed the network; earlier overshoot is repaired by
  // Update-triggered re-probes.
  struct JoinWatcher : TraceSink {
    TimeNs last_join = 0;
    void on_packet_sent(TimeNs t, const Packet& p, LinkId) override {
      if (p.type == PacketType::Join) last_join = std::max(last_join, t);
    }
  };
  topo::CanonicalOptions opt;
  opt.access_capacity = 1000.0;
  const auto n = topo::make_parking_lot(6, opt);
  const auto& hs = n.hosts();
  sim::Simulator sim;
  JoinWatcher watcher;
  BneckConfig cfg;
  cfg.shared_access_links = true;  // host 0 sources two sessions
  BneckProtocol bneck(sim, n, cfg, &watcher);
  std::vector<std::tuple<TimeNs, SessionId, Rate>> notes;
  bneck.set_rate_callback([&](SessionId s, Rate r, TimeNs t) {
    notes.push_back({t, s, r});
  });
  const PathFinder pf(n);
  int id = 0;
  bneck.join(SessionId{id++}, *pf.shortest_path(hs[0], hs[6]));
  for (int i = 0; i < 6; ++i) {
    bneck.join(SessionId{id++},
               *pf.shortest_path(hs[static_cast<std::size_t>(i)],
                                 hs[static_cast<std::size_t>(i + 1)]));
  }
  sim.run_until_idle();
  const auto specs = bneck.active_specs();
  const auto sol = solve_waterfill(n, specs);
  std::map<std::int32_t, Rate> final_rate;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    final_rate[specs[i].id.value()] = sol.rates[i];
  }
  bool checked_any = false;
  for (const auto& [t, s, r] : notes) {
    if (t <= watcher.last_join) continue;  // pre-drain overshoot allowed
    checked_any = true;
    EXPECT_LE(r, final_rate[s.value()] + 1e-6)
        << "post-drain transient above final rate for session " << s;
  }
  EXPECT_TRUE(checked_any);
}

// ---- random sweep: distributed == centralized ----

struct ProtoSweepParam {
  std::uint64_t seed;
  std::int32_t routers;
  std::int32_t sessions;
  bool wan;
  bool with_demands;
  bool churn;  // leave/change a third of the sessions mid-run
};

class BneckSweep : public ::testing::TestWithParam<ProtoSweepParam> {};

TEST_P(BneckSweep, ConvergesToCentralizedRates) {
  const auto p = GetParam();
  Rng rng(p.seed);
  CanonicalOptions opt;
  if (p.wan) opt.router_delay = milliseconds(2);
  const std::int32_t hosts = p.sessions * 2;
  const auto n =
      topo::make_random(p.routers, p.routers / 2, hosts, rng, opt);
  Harness h(n);

  const auto sources = sample_distinct(rng, hosts, p.sessions);
  for (std::int32_t i = 0; i < p.sessions; ++i) {
    const NodeId src =
        n.hosts()[static_cast<std::size_t>(sources[static_cast<std::size_t>(i)])];
    NodeId dst = src;
    while (dst == src) {
      dst = n.hosts()[static_cast<std::size_t>(rng.uniform_int(0, hosts - 1))];
    }
    const Rate demand = p.with_demands && rng.chance(0.5)
                            ? rng.uniform_real(1.0, 120.0)
                            : kRateInfinity;
    const TimeNs when = rng.uniform_int(0, milliseconds(1));
    h.sim.schedule_at(when, [&h, i, src, dst, demand] {
      h.join_now(i, src, dst, demand);
    });
  }
  if (p.churn) {
    for (std::int32_t i = 0; i < p.sessions; i += 3) {
      const TimeNs when = milliseconds(1) + rng.uniform_int(0, milliseconds(1));
      if (i % 6 == 0) {
        h.sim.schedule_at(when, [&h, i] { h.bneck.leave(SessionId{i}); });
      } else {
        const Rate d = rng.uniform_real(1.0, 80.0);
        h.sim.schedule_at(when, [&h, i, d] { h.bneck.change(SessionId{i}, d); });
      }
    }
  }
  h.quiesce();
  h.expect_maxmin();
}

std::vector<ProtoSweepParam> proto_sweep_params() {
  std::vector<ProtoSweepParam> out;
  std::uint64_t seed = 9000;
  for (const bool churn : {false, true}) {
    for (const bool demands : {false, true}) {
      for (const bool wan : {false, true}) {
        for (const std::int32_t routers : {4, 12, 30}) {
          for (const std::int32_t sessions : {3, 12, 40}) {
            out.push_back({seed++, routers, sessions, wan, demands, churn});
          }
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, BneckSweep,
                         ::testing::ValuesIn(proto_sweep_params()));

// ---- transit-stub integration ----

TEST(Bneck, TransitStubSmallLanIntegration) {
  auto params = topo::small_params();
  params.hosts = 120;
  Rng rng(4242);
  const auto n = topo::make_transit_stub(params, rng);
  Harness h(n);
  const std::int32_t sessions = 60;
  const auto sources = sample_distinct(rng, params.hosts, sessions);
  for (std::int32_t i = 0; i < sessions; ++i) {
    const NodeId src =
        n.hosts()[static_cast<std::size_t>(sources[static_cast<std::size_t>(i)])];
    NodeId dst = src;
    while (dst == src) {
      dst = n.hosts()[static_cast<std::size_t>(
          rng.uniform_int(0, params.hosts - 1))];
    }
    const TimeNs when = rng.uniform_int(0, milliseconds(1));
    h.sim.schedule_at(when, [&h, i, src, dst] { h.join_now(i, src, dst); });
  }
  const TimeNs t = h.quiesce();
  h.expect_maxmin();
  EXPECT_GT(t, 0);
  EXPECT_GT(h.bneck.packets_sent(), 0u);
}

TEST(Bneck, TransitStubWanIntegration) {
  auto params = topo::small_params();
  params.hosts = 80;
  params.delay_model = topo::DelayModel::Wan;
  Rng rng(777);
  const auto n = topo::make_transit_stub(params, rng);
  Harness h(n);
  const std::int32_t sessions = 40;
  const auto sources = sample_distinct(rng, params.hosts, sessions);
  for (std::int32_t i = 0; i < sessions; ++i) {
    const NodeId src =
        n.hosts()[static_cast<std::size_t>(sources[static_cast<std::size_t>(i)])];
    NodeId dst = src;
    while (dst == src) {
      dst = n.hosts()[static_cast<std::size_t>(
          rng.uniform_int(0, params.hosts - 1))];
    }
    h.sim.schedule_at(rng.uniform_int(0, milliseconds(1)),
                      [&h, i, src, dst] { h.join_now(i, src, dst); });
  }
  h.quiesce();
  h.expect_maxmin();
}

// ---- shared source hosts (extension; see BneckConfig) ----

TEST(BneckShared, OneSessionPerHostEnforcedByDefault) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  EXPECT_THROW(h.join_now(1, n.hosts()[0], n.hosts()[3]), InvariantError);
}

TEST(BneckShared, TwoSessionsSplitTheAccessLink) {
  BneckConfig cfg;
  cfg.shared_access_links = true;
  const auto n = topo::make_dumbbell(2, 1000.0);  // fat core, 100M access
  Harness h(n, cfg);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  h.join_now(1, n.hosts()[0], n.hosts()[3]);  // same source host!
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 50.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 50.0, 1e-6);
  h.expect_maxmin();
}

TEST(BneckShared, DemandCapsStillHonored) {
  BneckConfig cfg;
  cfg.shared_access_links = true;
  const auto n = topo::make_dumbbell(2, 1000.0);
  Harness h(n, cfg);
  h.join_now(0, n.hosts()[0], n.hosts()[2], 10.0);
  h.join_now(1, n.hosts()[0], n.hosts()[3]);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 10.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 90.0, 1e-6);
}

TEST(BneckShared, DedicatedWorkloadsStillExactInSharedMode) {
  // Shared mode on a one-session-per-host workload must give identical
  // rates to dedicated mode (it is a strict generalization).
  BneckConfig cfg;
  cfg.shared_access_links = true;
  const auto n = topo::make_dumbbell(3, 90.0);
  Harness h(n, cfg);
  h.join_now(0, n.hosts()[0], n.hosts()[3], 10.0);
  h.join_now(1, n.hosts()[1], n.hosts()[4]);
  h.join_now(2, n.hosts()[2], n.hosts()[5]);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 10.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 40.0, 1e-6);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{2}), 40.0, 1e-6);
}

TEST(BneckShared, LeaveFreesTheHostSlot) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);  // dedicated mode
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  h.quiesce();
  h.bneck.leave(SessionId{0});
  h.quiesce();
  // The host is free again: a new session (new id) may claim it.
  h.join_now(7, n.hosts()[0], n.hosts()[2]);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{7}), 100.0, 1e-6);
}

TEST(BneckShared, ChurnWithSharedSourcesMatchesCentralized) {
  BneckConfig cfg;
  cfg.shared_access_links = true;
  const auto n = topo::make_dumbbell(3, 120.0);
  Harness h(n, cfg);
  // Nine sessions from three hosts, staggered; three leave; one change.
  int id = 0;
  for (int host = 0; host < 3; ++host) {
    for (int k = 0; k < 3; ++k) {
      const int i = id++;
      h.sim.schedule_at(microseconds(i * 37), [&h, &n, i, host] {
        h.join_now(i, n.hosts()[static_cast<std::size_t>(host)],
                   n.hosts()[static_cast<std::size_t>(3 + (i % 3))]);
      });
    }
  }
  for (int i = 0; i < 3; ++i) {
    h.sim.schedule_at(microseconds(500 + i * 41),
                      [&h, i] { h.bneck.leave(SessionId{i * 3}); });
  }
  h.sim.schedule_at(microseconds(700),
                    [&h] { h.bneck.change(SessionId{1}, 7.0); });
  h.quiesce();
  h.expect_maxmin();
  EXPECT_EQ(h.bneck.active_sessions(), 6u);
}

struct SharedSweepParam {
  std::uint64_t seed;
  std::int32_t routers;
  std::int32_t hosts;
  std::int32_t sessions;
};

class BneckSharedSweep : public ::testing::TestWithParam<SharedSweepParam> {};

TEST_P(BneckSharedSweep, RandomSharedSourcesMatchCentralized) {
  const auto p = GetParam();
  Rng rng(p.seed);
  const auto n = topo::make_random(p.routers, p.routers / 2, p.hosts, rng);
  BneckConfig cfg;
  cfg.shared_access_links = true;
  Harness h(n, cfg);
  for (std::int32_t i = 0; i < p.sessions; ++i) {
    // Sources sampled WITH replacement: hosts carry several sessions.
    const NodeId src = n.hosts()[static_cast<std::size_t>(
        rng.uniform_int(0, p.hosts - 1))];
    NodeId dst = src;
    while (dst == src) {
      dst = n.hosts()[static_cast<std::size_t>(
          rng.uniform_int(0, p.hosts - 1))];
    }
    const Rate demand =
        rng.chance(0.3) ? rng.uniform_real(1.0, 80.0) : kRateInfinity;
    const TimeNs when = rng.uniform_int(0, microseconds(500));
    h.sim.schedule_at(when, [&h, i, src, dst, demand] {
      h.join_now(i, src, dst, demand);
    });
  }
  h.quiesce();
  h.expect_maxmin();
}

INSTANTIATE_TEST_SUITE_P(
    RandomSharedNetworks, BneckSharedSweep,
    ::testing::Values(SharedSweepParam{21000, 4, 3, 8},
                      SharedSweepParam{21001, 8, 5, 15},
                      SharedSweepParam{21002, 12, 6, 25},
                      SharedSweepParam{21003, 20, 10, 40},
                      SharedSweepParam{21004, 6, 2, 12},
                      SharedSweepParam{21005, 30, 8, 30}));

// ---- quiescence-specific assertions ----

TEST(Bneck, NoTrafficAfterQuiescence) {
  const auto n = topo::make_dumbbell(4, 100.0);
  Harness h(n);
  for (int i = 0; i < 4; ++i) {
    h.join_now(i, n.hosts()[static_cast<std::size_t>(i)],
               n.hosts()[static_cast<std::size_t>(i + 4)]);
  }
  h.quiesce();
  const auto sent = h.bneck.packets_sent();
  // Let (virtual) time pass: no event may fire, no packet may be sent.
  h.sim.run_until(h.sim.now() + seconds(10));
  EXPECT_EQ(h.bneck.packets_sent(), sent);
  EXPECT_TRUE(h.sim.idle());
}

TEST(Bneck, PacketCountScalesModestly) {
  // The paper reports a few packets per session per hop; allow a
  // generous constant but catch superlinear blowups.
  const auto n = topo::make_dumbbell(32, 100.0);
  Harness h(n);
  for (int i = 0; i < 32; ++i) {
    h.sim.schedule_at(microseconds(i * 31 % 1000), [&h, &n, i] {
      h.join_now(i, n.hosts()[static_cast<std::size_t>(i)],
                 n.hosts()[static_cast<std::size_t>(i + 32)]);
    });
  }
  h.quiesce();
  h.expect_maxmin();
  // 32 sessions x 3 hops x (join+response+setbneck+reprobes): bound at
  // 60 crossings per session on this single-bottleneck topology.
  EXPECT_LT(h.bneck.packets_sent(), 32u * 60u);
}

TEST(Bneck, TraceSinkSeesEveryCrossing) {
  struct Counter : TraceSink {
    std::uint64_t packets = 0;
    std::uint64_t rates = 0;
    void on_packet_sent(TimeNs, const Packet&, LinkId) override { ++packets; }
    void on_rate_notified(TimeNs, SessionId, Rate) override { ++rates; }
  };
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Counter counter;
  BneckProtocol bneck(sim, n, {}, &counter);
  const PathFinder pf(n);
  bneck.join(SessionId{0}, *pf.shortest_path(n.hosts()[0], n.hosts()[2]), 50.0);
  bneck.join(SessionId{1}, *pf.shortest_path(n.hosts()[1], n.hosts()[3]), 50.0);
  sim.run_until_idle();
  EXPECT_EQ(counter.packets, bneck.packets_sent());
  EXPECT_EQ(counter.rates, 2u);
}

TEST(Bneck, ProbeCycleAccounting) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  h.quiesce();
  // Alone: exactly one cycle (the Join).
  EXPECT_EQ(h.bneck.probe_cycles(SessionId{0}), 1u);
  h.join_now(1, n.hosts()[1], n.hosts()[3]);
  h.quiesce();
  // The arrival forced session 0 to re-probe at least once.
  EXPECT_GE(h.bneck.probe_cycles(SessionId{0}), 2u);
  EXPECT_GE(h.bneck.probe_cycles(SessionId{1}), 1u);
  EXPECT_EQ(h.bneck.total_probe_cycles(),
            h.bneck.probe_cycles(SessionId{0}) +
                h.bneck.probe_cycles(SessionId{1}));
  EXPECT_EQ(h.bneck.probe_cycles(SessionId{42}), 0u);
}

TEST(Bneck, PacketsByTypeSumToTotal) {
  const auto n = topo::make_dumbbell(3, 90.0);
  Harness h(n);
  for (int i = 0; i < 3; ++i) {
    h.join_now(i, n.hosts()[static_cast<std::size_t>(i)],
               n.hosts()[static_cast<std::size_t>(i + 3)]);
  }
  h.quiesce();
  std::uint64_t sum = 0;
  for (const auto c : h.bneck.packets_by_type()) sum += c;
  EXPECT_EQ(sum, h.bneck.packets_sent());
  EXPECT_GT(h.bneck.packets_by_type()[static_cast<std::size_t>(PacketType::Join)], 0u);
  EXPECT_GT(h.bneck.packets_by_type()[static_cast<std::size_t>(PacketType::Response)], 0u);
  EXPECT_EQ(h.bneck.packets_by_type()[static_cast<std::size_t>(PacketType::Leave)], 0u);
}

TEST(Bneck, TextTracerRendersProtocolActivity) {
  std::ostringstream os;
  TextTracer tracer(os);
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  BneckProtocol bneck(sim, n, {}, &tracer);
  const PathFinder pf(n);
  bneck.join(SessionId{0}, *pf.shortest_path(n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  sim.run_until_idle();
  const std::string out = os.str();
  EXPECT_NE(out.find("Join"), std::string::npos);
  EXPECT_NE(out.find("Response"), std::string::npos);
  EXPECT_NE(out.find("SetBottleneck"), std::string::npos);
  EXPECT_NE(out.find("API.Rate"), std::string::npos);
  EXPECT_EQ(tracer.lines(), bneck.packets_sent() + 1);  // + one API.Rate
}

TEST(Bneck, TextTracerSessionFilter) {
  std::ostringstream os;
  TextTracer tracer(os, SessionId{1});
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  BneckProtocol bneck(sim, n, {}, &tracer);
  const PathFinder pf(n);
  bneck.join(SessionId{0}, *pf.shortest_path(n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  bneck.join(SessionId{1}, *pf.shortest_path(n.hosts()[1], n.hosts()[3]),
             kRateInfinity);
  sim.run_until_idle();
  EXPECT_EQ(os.str().find("s=0"), std::string::npos);
  EXPECT_NE(os.str().find("s=1"), std::string::npos);
}

TEST(Bneck, DisablingTransmissionTimeStillConverges) {
  BneckConfig cfg;
  cfg.model_transmission = false;
  const auto n = topo::make_dumbbell(3, 90.0);
  Harness h(n, cfg);
  for (int i = 0; i < 3; ++i) {
    h.join_now(i, n.hosts()[static_cast<std::size_t>(i)],
               n.hosts()[static_cast<std::size_t>(i + 3)]);
  }
  h.quiesce();
  h.expect_maxmin();
}

}  // namespace
}  // namespace bneck::core
