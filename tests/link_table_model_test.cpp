// Model-based differential test for LinkSessionTable.
//
// The table maintains ordered indexes and running aggregates so protocol
// predicates run in O(log n); this test drives it with long random
// operation sequences alongside a deliberately naive reference model
// (plain map, every query a full scan) and requires every observable to
// agree after every operation.  Catches index-maintenance bugs that
// individual unit tests miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "base/rng.hpp"
#include "core/link_table.hpp"

namespace bneck::core {
namespace {

/// The obviously-correct reference: answers every query by scanning.
class NaiveTable {
 public:
  explicit NaiveTable(Rate capacity) : capacity_(capacity) {}

  struct Rec {
    Mu mu = Mu::WaitingResponse;
    Rate lambda = 0;
    bool in_r = true;
  };

  void insert_R(SessionId s) { recs_[s] = Rec{}; }
  void erase(SessionId s) { recs_.erase(s); }
  void move_to_R(SessionId s) { recs_.at(s).in_r = true; }
  void move_to_F(SessionId s) { recs_.at(s).in_r = false; }
  void set_mu(SessionId s, Mu m) { recs_.at(s).mu = m; }
  void set_idle_with_lambda(SessionId s, Rate l) {
    recs_.at(s).mu = Mu::Idle;
    recs_.at(s).lambda = l;
  }

  [[nodiscard]] Rate be() const {
    std::size_t r = 0;
    double fsum = 0;
    for (const auto& [s, rec] : recs_) {
      if (rec.in_r) {
        ++r;
      } else {
        fsum += rec.lambda;
      }
    }
    if (r == 0) return kRateInfinity;
    return (capacity_ - fsum) / static_cast<double>(r);
  }

  [[nodiscard]] bool all_R_idle_at_be() const {
    const Rate b = be();
    std::size_t r = 0;
    for (const auto& [s, rec] : recs_) {
      if (!rec.in_r) continue;
      ++r;
      if (rec.mu != Mu::Idle || !rate_eq(rec.lambda, b)) return false;
    }
    return r > 0;
  }

  [[nodiscard]] bool exists_F_ge_be() const {
    const Rate b = be();
    for (const auto& [s, rec] : recs_) {
      if (!rec.in_r && rate_ge(rec.lambda, b)) return true;
    }
    return false;
  }

  [[nodiscard]] std::optional<Rate> max_F_lambda() const {
    std::optional<Rate> best;
    for (const auto& [s, rec] : recs_) {
      if (!rec.in_r && (!best || rec.lambda > *best)) best = rec.lambda;
    }
    return best;
  }

  [[nodiscard]] std::vector<SessionId> F_at(Rate v) const {
    std::vector<SessionId> out;
    for (const auto& [s, rec] : recs_) {
      if (!rec.in_r && rate_eq(rec.lambda, v)) out.push_back(s);
    }
    return out;
  }

  [[nodiscard]] std::vector<SessionId> idle_R_above(Rate t) const {
    std::vector<SessionId> out;
    for (const auto& [s, rec] : recs_) {
      if (rec.in_r && rec.mu == Mu::Idle && rate_gt(rec.lambda, t)) {
        out.push_back(s);
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<SessionId> idle_R_at(Rate v, SessionId ex) const {
    std::vector<SessionId> out;
    for (const auto& [s, rec] : recs_) {
      if (s != ex && rec.in_r && rec.mu == Mu::Idle && rate_eq(rec.lambda, v)) {
        out.push_back(s);
      }
    }
    return out;
  }

  [[nodiscard]] bool stable() const {
    const Rate b = be();
    std::size_t r = 0;
    for (const auto& [s, rec] : recs_) {
      if (rec.in_r) ++r;
    }
    for (const auto& [s, rec] : recs_) {
      if (rec.mu != Mu::Idle) return false;
      if (rec.in_r && !rate_eq(rec.lambda, b)) return false;
      if (!rec.in_r && r > 0 && !rate_lt(rec.lambda, b)) return false;
    }
    return true;
  }

  [[nodiscard]] const std::map<SessionId, Rec>& recs() const { return recs_; }

 private:
  Rate capacity_;
  std::map<SessionId, Rec> recs_;
};

std::vector<SessionId> sorted(std::vector<SessionId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class LinkTableModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkTableModel, LongRandomOperationSequencesAgree) {
  Rng rng(GetParam());
  const Rate capacity = rng.uniform_real(10.0, 1000.0);
  LinkSessionTable table(capacity);
  NaiveTable naive(capacity);

  std::vector<SessionId> present;   // all sessions in the table
  std::int32_t next_id = 0;

  // A small palette of rates makes exact collisions (ties) frequent,
  // which is where the indexes can go wrong.
  const std::vector<Rate> palette{1.0, 2.5, capacity / 7.0, capacity / 3.0,
                                  capacity / 2.0, capacity};

  for (int op = 0; op < 600; ++op) {
    const double dice = rng.uniform_real(0, 1);
    if (dice < 0.25 || present.empty()) {
      const SessionId s{next_id++};
      table.insert_R(s, 1);
      naive.insert_R(s);
      present.push_back(s);
    } else {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(present.size()) - 1));
      const SessionId s = present[pick];
      const bool in_r = table.in_R(s);
      const Mu mu = table.mu(s);
      if (dice < 0.35) {
        table.erase(s);
        naive.erase(s);
        present.erase(present.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (dice < 0.55) {
        const Rate l = rng.pick(palette);
        table.set_idle_with_lambda(s, l);
        naive.set_idle_with_lambda(s, l);
      } else if (dice < 0.7) {
        const Mu m = static_cast<Mu>(rng.uniform_int(0, 2));
        // Moving a never-assigned session to Idle would index a
        // meaningless lambda; the protocol never does that, and neither
        // do we: only flip between the waiting states in that case.
        if (m == Mu::Idle && mu == Mu::WaitingResponse && !in_r) {
          continue;
        }
        table.set_mu(s, m);
        naive.set_mu(s, m);
      } else if (dice < 0.85) {
        if (in_r && mu == Mu::Idle) {  // protocol moves only idle sessions
          table.move_to_F(s);
          naive.move_to_F(s);
        }
      } else {
        if (!in_r) {
          table.move_to_R(s);
          naive.move_to_R(s);
        }
      }
    }

    // Compare every observable.
    ASSERT_EQ(table.size(), naive.recs().size());
    const Rate nb = naive.be();
    if (std::isinf(nb)) {
      EXPECT_TRUE(std::isinf(table.be()));
    } else {
      ASSERT_NEAR(table.be(), nb, 1e-9 * std::max(1.0, std::fabs(nb)));
    }
    ASSERT_EQ(table.all_R_idle_at_be(), naive.all_R_idle_at_be()) << "op " << op;
    ASSERT_EQ(table.exists_F_ge_be(), naive.exists_F_ge_be()) << "op " << op;
    const auto nmax = naive.max_F_lambda();
    if (nmax.has_value()) {
      ASSERT_EQ(table.f_size() > 0, true);
      ASSERT_DOUBLE_EQ(table.max_F_lambda(), *nmax);
      ASSERT_EQ(sorted(table.F_at(*nmax)), sorted(naive.F_at(*nmax)));
    } else {
      ASSERT_EQ(table.f_size(), 0u);
    }
    const Rate probe = rng.pick(palette);
    ASSERT_EQ(sorted(table.idle_R_above(probe)), sorted(naive.idle_R_above(probe)))
        << "op " << op;
    ASSERT_EQ(sorted(table.idle_R_at(probe, SessionId{})),
              sorted(naive.idle_R_at(probe, SessionId{})))
        << "op " << op;
    if (!present.empty()) {
      const SessionId ex = present[0];
      ASSERT_EQ(sorted(table.idle_R_at(probe, ex)),
                sorted(naive.idle_R_at(probe, ex)));
    }
    ASSERT_EQ(table.stable(), naive.stable()) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkTableModel,
                         ::testing::Range<std::uint64_t>(4000, 4024));

}  // namespace
}  // namespace bneck::core
