// Tests for summary statistics, binned time series and table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "base/expect.hpp"
#include "base/time.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/time_series.hpp"

namespace bneck::stats {
namespace {

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{3, 1, 4, 1, 5, 9, 2, 6};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.5), 2.5);
}

TEST(Percentile, MedianOddCount) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 0.5), 3.0);
}

TEST(Percentile, LinearInterpolation) {
  // 0..10: p25 over 11 points lands exactly on 2.5.
  std::vector<double> v;
  for (int i = 0; i <= 10; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.90), 9.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 0.5), 5.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), InvariantError);
}

TEST(Percentile, OutOfRangeQThrows) {
  EXPECT_THROW(percentile({1.0}, -0.1), InvariantError);
  EXPECT_THROW(percentile({1.0}, 1.1), InvariantError);
}

TEST(Summarize, Basics) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Summarize, EmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, NegativeValues) {
  const Summary s = summarize({-10, -5, 0, 5, 10});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -10.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(Accumulator, TracksMinMaxMeanCount) {
  Accumulator a;
  for (double x : {4.0, -2.0, 10.0}) a.add(x);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Accumulator, EmptyIsZeroed) {
  const Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(BinnedCounter, CountsFallIntoRightBins) {
  BinnedCounter c(milliseconds(5), {"a", "b"});
  c.add(milliseconds(1), 0);
  c.add(milliseconds(4), 0);
  c.add(milliseconds(5), 0);   // next bin boundary
  c.add(milliseconds(12), 1);
  EXPECT_EQ(c.at(0, 0), 2u);
  EXPECT_EQ(c.at(1, 0), 1u);
  EXPECT_EQ(c.at(2, 1), 1u);
  EXPECT_EQ(c.at(2, 0), 0u);
}

TEST(BinnedCounter, Totals) {
  BinnedCounter c(10, {"x", "y"});
  c.add(0, 0, 3);
  c.add(5, 1, 2);
  c.add(25, 0);
  EXPECT_EQ(c.bin_total(0), 5u);
  EXPECT_EQ(c.bin_total(2), 1u);
  EXPECT_EQ(c.category_total(0), 4u);
  EXPECT_EQ(c.category_total(1), 2u);
  EXPECT_EQ(c.total(), 6u);
}

TEST(BinnedCounter, UntouchedBinsReadZero) {
  BinnedCounter c(10, {"x"});
  EXPECT_EQ(c.at(99, 0), 0u);
  EXPECT_EQ(c.bin_total(99), 0u);
  EXPECT_EQ(c.bin_count(), 0u);
}

TEST(BinnedCounter, BinStart) {
  BinnedCounter c(milliseconds(3), {"x"});
  EXPECT_EQ(c.bin_start(0), 0);
  EXPECT_EQ(c.bin_start(4), milliseconds(12));
}

TEST(BinnedCounter, BadCategoryThrows) {
  BinnedCounter c(10, {"x"});
  EXPECT_THROW(c.add(0, 1), InvariantError);
  EXPECT_THROW((void)c.at(0, 1), InvariantError);
}

TEST(BinnedCounter, NegativeTimeThrows) {
  BinnedCounter c(10, {"x"});
  EXPECT_THROW(c.add(-1, 0), InvariantError);
}

TEST(Table, FixedWidthRendering) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(1234567), "1234567");
  EXPECT_EQ(Table::integer(-42), "-42");
}

}  // namespace
}  // namespace bneck::stats
