// Tests for the network graph and shortest-path routing.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/routing.hpp"

namespace bneck::net {
namespace {

TEST(Network, AddRouterAndHostCounts) {
  Network n;
  const NodeId r = n.add_router();
  const NodeId h = n.add_host(r, 100.0, microseconds(1));
  EXPECT_EQ(n.node_count(), 2);
  EXPECT_EQ(n.router_count(), 1);
  EXPECT_EQ(n.host_count(), 1);
  EXPECT_EQ(n.kind(r), NodeKind::Router);
  EXPECT_EQ(n.kind(h), NodeKind::Host);
  EXPECT_TRUE(n.is_host(h));
  EXPECT_FALSE(n.is_host(r));
}

TEST(Network, LinkPairsAreMutualTwins) {
  Network n;
  const NodeId a = n.add_router();
  const NodeId b = n.add_router();
  const LinkId f = n.add_link_pair(a, b, 200.0, microseconds(5));
  const Link& fwd = n.link(f);
  const Link& rev = n.link(fwd.reverse);
  EXPECT_EQ(fwd.src, a);
  EXPECT_EQ(fwd.dst, b);
  EXPECT_EQ(rev.src, b);
  EXPECT_EQ(rev.dst, a);
  EXPECT_EQ(rev.reverse, f);
  EXPECT_DOUBLE_EQ(fwd.capacity, 200.0);
  EXPECT_EQ(fwd.prop_delay, microseconds(5));
  n.validate();
}

TEST(Network, AsymmetricCapacities) {
  Network n;
  const NodeId a = n.add_router();
  const NodeId b = n.add_router();
  const LinkId f = n.add_link_pair(a, b, 100.0, 50.0, microseconds(1));
  EXPECT_DOUBLE_EQ(n.link(f).capacity, 100.0);
  EXPECT_DOUBLE_EQ(n.link(n.link(f).reverse).capacity, 50.0);
  n.validate();
}

TEST(Network, HostAccessors) {
  Network n;
  const NodeId r1 = n.add_router();
  const NodeId r2 = n.add_router();
  n.add_link_pair(r1, r2, 100.0, 0);
  const NodeId h1 = n.add_host(r1, 100.0, microseconds(1));
  const NodeId h2 = n.add_host(r2, 80.0, microseconds(2));
  EXPECT_EQ(n.host_router(h1), r1);
  EXPECT_EQ(n.host_router(h2), r2);
  const Link& up = n.link(n.host_uplink(h2));
  EXPECT_EQ(up.src, h2);
  EXPECT_EQ(up.dst, r2);
  EXPECT_DOUBLE_EQ(up.capacity, 80.0);
  const Link& down = n.link(n.host_downlink(h2));
  EXPECT_EQ(down.src, r2);
  EXPECT_EQ(down.dst, h2);
  EXPECT_EQ(n.hosts().size(), 2u);
}

TEST(Network, SelfLoopRejected) {
  Network n;
  const NodeId a = n.add_router();
  EXPECT_THROW(n.add_link_pair(a, a, 100.0, 0), InvariantError);
}

TEST(Network, NonPositiveCapacityRejected) {
  Network n;
  const NodeId a = n.add_router();
  const NodeId b = n.add_router();
  EXPECT_THROW(n.add_link_pair(a, b, 0.0, 0), InvariantError);
  EXPECT_THROW(n.add_link_pair(a, b, -5.0, 0), InvariantError);
}

TEST(Network, HostsAttachToRoutersOnly) {
  Network n;
  const NodeId r = n.add_router();
  const NodeId h = n.add_host(r, 100.0, 0);
  EXPECT_THROW(n.add_host(h, 100.0, 0), InvariantError);
}

TEST(Network, HostRouterOfNonHostThrows) {
  Network n;
  const NodeId r = n.add_router();
  EXPECT_THROW((void)n.host_router(r), InvariantError);
}

TEST(Network, LinksFromIsDeterministic) {
  Network n;
  const NodeId a = n.add_router();
  const NodeId b = n.add_router();
  const NodeId c = n.add_router();
  const LinkId ab = n.add_link_pair(a, b, 100.0, 0);
  const LinkId ac = n.add_link_pair(a, c, 100.0, 0);
  const auto out = n.links_from(a);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], ab);
  EXPECT_EQ(out[1], ac);
}

// ---- routing ----

// Chain topology: h0 - r0 - r1 - r2 - h1, plus a host on r1.
class ChainRouting : public ::testing::Test {
 protected:
  ChainRouting() {
    for (int i = 0; i < 3; ++i) r.push_back(n.add_router());
    n.add_link_pair(r[0], r[1], 200.0, microseconds(10));
    n.add_link_pair(r[1], r[2], 200.0, microseconds(10));
    h0 = n.add_host(r[0], 100.0, microseconds(1));
    h1 = n.add_host(r[2], 100.0, microseconds(1));
    hm = n.add_host(r[1], 100.0, microseconds(1));
  }
  Network n;
  std::vector<NodeId> r;
  NodeId h0, h1, hm;
};

TEST_F(ChainRouting, EndToEndPath) {
  const PathFinder pf(n);
  const auto p = pf.shortest_path(h0, h1);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->links.size(), 4u);  // uplink + 2 router hops + downlink
  EXPECT_EQ(n.link(p->links.front()).src, h0);
  EXPECT_EQ(n.link(p->links.back()).dst, h1);
  // Consecutive links chain: dst of one is src of the next.
  for (std::size_t i = 0; i + 1 < p->links.size(); ++i) {
    EXPECT_EQ(n.link(p->links[i]).dst, n.link(p->links[i + 1]).src);
  }
}

TEST_F(ChainRouting, PathDelayAccumulates) {
  const PathFinder pf(n);
  const auto p = pf.shortest_path(h0, h1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(pf.path_delay(*p), microseconds(1 + 10 + 10 + 1));
}

TEST_F(ChainRouting, SameRouterHosts) {
  const NodeId h2 = n.add_host(r[1], 100.0, microseconds(1));
  const PathFinder pf(n);
  const auto p = pf.shortest_path(hm, h2);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->links.size(), 2u);  // uplink + downlink only
  EXPECT_EQ(n.link(p->links[0]).src, hm);
  EXPECT_EQ(n.link(p->links[1]).dst, h2);
}

TEST_F(ChainRouting, ReversePathUsesReverseLinks) {
  const PathFinder pf(n);
  const auto fwd = pf.shortest_path(h0, h1);
  const auto rev = pf.shortest_path(h1, h0);
  ASSERT_TRUE(fwd.has_value() && rev.has_value());
  ASSERT_EQ(fwd->links.size(), rev->links.size());
  // rev is the link-wise reverse of fwd.
  for (std::size_t i = 0; i < fwd->links.size(); ++i) {
    EXPECT_EQ(n.link(fwd->links[i]).reverse,
              rev->links[rev->links.size() - 1 - i]);
  }
}

TEST_F(ChainRouting, SameEndpointsThrow) {
  const PathFinder pf(n);
  EXPECT_THROW((void)pf.shortest_path(h0, h0), InvariantError);
}

TEST_F(ChainRouting, NonHostEndpointsThrow) {
  const PathFinder pf(n);
  EXPECT_THROW((void)pf.shortest_path(r[0], h1), InvariantError);
}

TEST(Routing, UnreachableReturnsNullopt) {
  Network n;
  const NodeId a = n.add_router();
  const NodeId b = n.add_router();  // no link between a and b
  const NodeId ha = n.add_host(a, 100.0, 0);
  const NodeId hb = n.add_host(b, 100.0, 0);
  const PathFinder pf(n);
  EXPECT_FALSE(pf.shortest_path(ha, hb).has_value());
  EXPECT_FALSE(pf.min_delay_path(ha, hb).has_value());
}

TEST(Routing, PicksFewestHops) {
  // Square with a diagonal: r0-r1-r3 vs r0-r3 direct.
  Network n;
  std::vector<NodeId> r;
  for (int i = 0; i < 4; ++i) r.push_back(n.add_router());
  n.add_link_pair(r[0], r[1], 100.0, microseconds(1));
  n.add_link_pair(r[1], r[3], 100.0, microseconds(1));
  n.add_link_pair(r[0], r[2], 100.0, microseconds(1));
  n.add_link_pair(r[2], r[3], 100.0, microseconds(1));
  n.add_link_pair(r[0], r[3], 100.0, microseconds(100));  // direct but slow
  const NodeId h0 = n.add_host(r[0], 100.0, 0);
  const NodeId h3 = n.add_host(r[3], 100.0, 0);
  const PathFinder pf(n);
  const auto p = pf.shortest_path(h0, h3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->links.size(), 3u);  // uplink + direct + downlink
}

TEST(Routing, MinDelayAvoidsSlowDirectLink) {
  Network n;
  std::vector<NodeId> r;
  for (int i = 0; i < 3; ++i) r.push_back(n.add_router());
  n.add_link_pair(r[0], r[2], 100.0, milliseconds(50));     // direct, slow
  n.add_link_pair(r[0], r[1], 100.0, microseconds(1));      // detour, fast
  n.add_link_pair(r[1], r[2], 100.0, microseconds(1));
  const NodeId h0 = n.add_host(r[0], 100.0, 0);
  const NodeId h2 = n.add_host(r[2], 100.0, 0);
  const PathFinder pf(n);
  const auto hops = pf.shortest_path(h0, h2);
  const auto fast = pf.min_delay_path(h0, h2);
  ASSERT_TRUE(hops.has_value() && fast.has_value());
  EXPECT_EQ(hops->links.size(), 3u);  // via the direct link
  EXPECT_EQ(fast->links.size(), 4u);  // via the detour
  EXPECT_LT(pf.path_delay(*fast), pf.path_delay(*hops));
}

TEST(Routing, DeterministicTieBreak) {
  // Two equal-hop routes; BFS must always pick the same one.
  Network n;
  std::vector<NodeId> r;
  for (int i = 0; i < 4; ++i) r.push_back(n.add_router());
  n.add_link_pair(r[0], r[1], 100.0, 0);
  n.add_link_pair(r[0], r[2], 100.0, 0);
  n.add_link_pair(r[1], r[3], 100.0, 0);
  n.add_link_pair(r[2], r[3], 100.0, 0);
  const NodeId h0 = n.add_host(r[0], 100.0, 0);
  const NodeId h3 = n.add_host(r[3], 100.0, 0);
  const PathFinder pf(n);
  const auto p1 = pf.shortest_path(h0, h3);
  const auto p2 = pf.shortest_path(h0, h3);
  ASSERT_TRUE(p1.has_value() && p2.has_value());
  EXPECT_EQ(p1->links, p2->links);
  // Links are visited in creation order, so the r1 route wins.
  EXPECT_EQ(n.link(p1->links[1]).dst, r[1]);
}

TEST(Routing, HostsAreNeverTransit) {
  // h_mid hangs off r1; route r0->r2 must not detour through a host.
  Network n;
  std::vector<NodeId> r;
  for (int i = 0; i < 3; ++i) r.push_back(n.add_router());
  n.add_link_pair(r[0], r[1], 100.0, 0);
  n.add_link_pair(r[1], r[2], 100.0, 0);
  const NodeId h0 = n.add_host(r[0], 100.0, 0);
  const NodeId h2 = n.add_host(r[2], 100.0, 0);
  n.add_host(r[1], 100.0, 0);
  const PathFinder pf(n);
  const auto p = pf.shortest_path(h0, h2);
  ASSERT_TRUE(p.has_value());
  for (std::size_t i = 1; i + 1 < p->links.size(); ++i) {
    EXPECT_FALSE(n.is_host(n.link(p->links[i]).src));
    EXPECT_FALSE(n.is_host(n.link(p->links[i]).dst));
  }
}

}  // namespace
}  // namespace bneck::net
