// Tests for the SessionHandle access path of LinkSessionTable (and the
// epoch machinery of base/flat_hash.hpp underneath it): handles must
// survive unrelated mutations within a handler run, the id-keyed
// wrappers must agree with the handle path on arbitrary operation
// sequences, and the audits must catch handles that went stale or
// desynced.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "base/flat_hash.hpp"
#include "core/link_table.hpp"

namespace bneck::core {
namespace {

using SessionHandle = LinkSessionTable::SessionHandle;

SessionId S(int i) { return SessionId{i}; }

// ---- FlatIdMap epoch contract ----

TEST(FlatIdMapEpoch, NonGrowingInsertKeepsEpoch) {
  FlatIdMap<SessionTag, int> m;
  m[S(1)] = 10;  // initial table of 16 slots
  const std::uint64_t e = m.epoch();
  m[S(2)] = 20;  // fits: no rehash
  EXPECT_EQ(m.epoch(), e);
  EXPECT_EQ(*m.find(S(1)), 10);
}

TEST(FlatIdMapEpoch, GrowAndEraseBumpEpoch) {
  FlatIdMap<SessionTag, int> m;
  m[S(1)] = 10;
  std::uint64_t e = m.epoch();
  for (int i = 2; i < 40; ++i) m[S(i)] = i;  // forces at least one rehash
  EXPECT_GT(m.epoch(), e);
  e = m.epoch();
  EXPECT_TRUE(m.erase(S(1)));
  EXPECT_GT(m.epoch(), e);
  e = m.epoch();
  EXPECT_FALSE(m.erase(S(1)));  // miss: nothing moved
  EXPECT_EQ(m.epoch(), e);
}

TEST(FlatIdMapEpoch, PointerValidWhileEpochUnchanged) {
  FlatIdMap<SessionTag, int> m;
  for (int i = 0; i < 100; ++i) m[S(i)] = i;
  const std::uint64_t e = m.epoch();
  int* p = m.find(S(42));
  ASSERT_NE(p, nullptr);
  *p = 1000;  // value writes never move slots
  ASSERT_EQ(m.epoch(), e);
  EXPECT_EQ(m.find(S(42)), p);
}

TEST(FlatIdMapAudit, CleanMapAuditsClean) {
  FlatIdMap<SessionTag, int> m;
  EXPECT_EQ(m.audit(), "");
  for (int i = 0; i < 200; ++i) m[S(i)] = i;
  for (int i = 0; i < 200; i += 3) m.erase(S(i));
  EXPECT_EQ(m.audit(), "");
}

// ---- handle stability across in-handler mutations ----

TEST(SessionHandleStability, SurvivesInsertAndEraseOfOtherSessions) {
  LinkSessionTable t(100.0);
  for (int i = 0; i < 8; ++i) t.insert_R(S(i), i);
  SessionHandle h3 = t.find(S(3));
  SessionHandle h5 = t.find(S(5));
  ASSERT_TRUE(h3.valid() && h5.valid());

  // Unrelated mutations of every kind: state flips, inserts (growing
  // the map past its initial capacity) and erases.
  t.set_idle_with_lambda(S(3), 12.5);
  for (int i = 8; i < 40; ++i) t.insert_R(S(i), i);
  t.erase(S(0));
  t.erase(S(7));
  t.set_idle_with_lambda(S(5), 20.0);
  t.move_to_F(S(5));

  // The handles still read the correct records.
  EXPECT_EQ(t.mu(h3), Mu::Idle);
  EXPECT_DOUBLE_EQ(t.lambda(h3), 12.5);
  EXPECT_EQ(t.hop(h3), 3);
  EXPECT_FALSE(t.in_R(h5));
  EXPECT_DOUBLE_EQ(t.lambda(h5), 20.0);
  EXPECT_EQ(t.hop(h5), 5);

  // And mutating through them still updates the table's indexes.
  t.set_mu(h3, Mu::WaitingProbe);
  EXPECT_EQ(t.mu(S(3)), Mu::WaitingProbe);
  t.move_to_R(h5);
  EXPECT_TRUE(t.in_R(S(5)));
  EXPECT_EQ(t.audit(), "");
}

TEST(SessionHandleStability, InsertReturnsUsableHandle) {
  LinkSessionTable t(100.0);
  SessionHandle h = t.insert_R(S(9), 2, 2.0);
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.id(), S(9));
  EXPECT_EQ(t.mu(h), Mu::WaitingResponse);
  EXPECT_DOUBLE_EQ(t.weight(h), 2.0);
  t.set_idle_with_lambda(h, 7.0);
  EXPECT_DOUBLE_EQ(t.rate_of(h), 14.0);
}

TEST(SessionHandleStability, UsingHandleAfterOwnEraseThrows) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  SessionHandle h = t.find(S(1));
  t.erase(S(1));
  EXPECT_THROW((void)t.mu(h), InvariantError);
}

TEST(SessionHandleStability, NullHandleThrows) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  SessionHandle miss = t.find(S(2));
  EXPECT_FALSE(miss.valid());
  EXPECT_THROW((void)t.lambda(miss), InvariantError);
}

// ---- id-wrapper equivalence on randomized operation sequences ----

TEST(SessionHandleEquivalence, IdPathAndHandlePathAgreeUnderRandomOps) {
  std::mt19937 rng(20260730);
  for (int round = 0; round < 20; ++round) {
    LinkSessionTable t(200.0);
    std::vector<SessionId> live;
    int next = 0;
    for (int op = 0; op < 300; ++op) {
      const int dice = static_cast<int>(rng() % 100);
      if (dice < 30 || live.empty()) {
        const SessionId s = S(next++);
        t.insert_R(s, static_cast<std::int32_t>(live.size()),
                   1.0 + static_cast<double>(rng() % 8) / 2.0);
        live.push_back(s);
        continue;
      }
      const SessionId s = live[rng() % live.size()];
      // Mutate through the *handle* path...
      SessionHandle h = t.find(s);
      ASSERT_TRUE(h.valid());
      if (dice < 45) {
        t.set_idle_with_lambda(h, static_cast<Rate>(rng() % 50) + 0.5);
      } else if (dice < 60) {
        t.set_mu(h, dice % 2 == 0 ? Mu::WaitingProbe : Mu::WaitingResponse);
      } else if (dice < 70 && t.in_R(h) && t.r_size() > 0) {
        t.move_to_F(h);
      } else if (dice < 80 && !t.in_R(h)) {
        t.move_to_R(h);
      } else if (dice < 90) {
        t.set_weight(h, 1.0 + static_cast<double>(rng() % 8) / 2.0);
      } else {
        t.erase(h);
        live.erase(std::find(live.begin(), live.end(), s));
        continue;
      }
      // ... and cross-check every read against the id wrappers.
      SessionHandle g = t.find(s);
      ASSERT_TRUE(g.valid());
      EXPECT_EQ(t.mu(g), t.mu(s));
      EXPECT_EQ(t.in_R(g), t.in_R(s));
      EXPECT_DOUBLE_EQ(t.lambda(g), t.lambda(s));
      EXPECT_DOUBLE_EQ(t.weight(g), t.weight(s));
      EXPECT_DOUBLE_EQ(t.rate_of(g), t.rate_of(s));
      EXPECT_EQ(t.hop(g), t.hop(s));
    }
    // The audit performs the full handle-vs-id cross-validation sweep.
    EXPECT_EQ(t.audit(), "");
  }
}

TEST(SessionHandleEquivalence, HandleQueriesMatchIdQueries) {
  LinkSessionTable t(100.0);
  for (int i = 0; i < 10; ++i) {
    t.insert_R(S(i), 0);
    t.set_idle_with_lambda(S(i), i < 5 ? 10.0 : 25.0);
  }
  for (int i = 0; i < 3; ++i) t.move_to_F(S(i));

  std::vector<SessionHandle> handles;
  std::vector<SessionId> ids;

  t.F_at(10.0, handles);
  t.F_at(10.0, ids);
  ASSERT_EQ(handles.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(handles[i].id(), ids[i]);
  }

  t.idle_R_above(15.0, handles);
  t.idle_R_above(15.0, ids);
  ASSERT_EQ(handles.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(handles[i].id(), ids[i]);
  }

  t.idle_R_at(25.0, S(6), handles);
  t.idle_R_at(25.0, S(6), ids);
  ASSERT_EQ(handles.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(handles[i].id(), ids[i]);
  }

  t.idle_R_all(SessionId{}, handles);
  t.idle_R_all(SessionId{}, ids);
  ASSERT_EQ(handles.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(handles[i].id(), ids[i]);
  }
}

// ---- audits catching stale / desynced handles ----

TEST(SessionHandleAudit, CatchesHandleHeldAcrossOwnErase) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  SessionHandle h = t.find(S(1));
  EXPECT_EQ(t.audit_handle(h), "");
  t.erase(S(1));
  const std::string err = t.audit_handle(h);
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("no longer contains"), std::string::npos);
}

TEST(SessionHandleAudit, NullHandleReported) {
  LinkSessionTable t(100.0);
  EXPECT_NE(t.audit_handle(SessionHandle{}), "");
}

TEST(SessionHandleAudit, StaleButRevalidatableHandlePasses) {
  // An epoch-stale handle whose session still exists is *not* desynced:
  // the next access revalidates it.  audit_handle must accept it.
  LinkSessionTable t(100.0);
  for (int i = 0; i < 8; ++i) t.insert_R(S(i), 0);
  SessionHandle h = t.find(S(3));
  t.erase(S(0));  // bumps the epoch, may shift slots
  EXPECT_EQ(t.audit_handle(h), "");
  EXPECT_EQ(t.hop(h), 0);  // revalidates and reads fine
}

}  // namespace
}  // namespace bneck::core
