// Tests for the deterministic network partitioner feeding the sharded
// engine (net/partition.hpp): shard assignment is a pure function of
// the network and config, hosts always follow their router, the cut
// never severs an access link, lookahead is derived from the actual
// cut, and on delay-heterogeneous topologies the max-spacing clustering
// keeps fast links interior so the cut is made of slow ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/partition.hpp"
#include "topo/canonical.hpp"
#include "topo/transit_stub.hpp"

namespace bneck::net {
namespace {

net::Network wan_transit_stub(std::uint64_t seed) {
  auto params = topo::small_params();
  params.delay_model = topo::DelayModel::Wan;
  params.hosts = 200;
  Rng rng(seed);
  return topo::make_transit_stub(params, rng);
}

TEST(Partition, SingleShardIsTrivial) {
  const net::Network n = topo::make_parking_lot(3);
  PartitionConfig cfg;
  cfg.shards = 1;
  const NetPartition p = partition_network(n, cfg);
  EXPECT_EQ(p.shard_count, 1);
  EXPECT_EQ(p.lookahead, kTimeNever);
  EXPECT_TRUE(p.cut_links.empty());
  for (std::int32_t node = 0; node < n.node_count(); ++node) {
    EXPECT_EQ(p.shard_of(NodeId{node}), 0);
  }
}

TEST(Partition, ShardCountCappedByRouterCount) {
  const net::Network n = topo::make_parking_lot(3);  // 4 routers
  PartitionConfig cfg;
  cfg.shards = 64;
  const NetPartition p = partition_network(n, cfg);
  EXPECT_EQ(p.shard_count, n.router_count());
}

TEST(Partition, HostsFollowTheirRouter) {
  const net::Network n = wan_transit_stub(7);
  PartitionConfig cfg;
  cfg.shards = 4;
  const NetPartition p = partition_network(n, cfg);
  for (const NodeId h : n.hosts()) {
    EXPECT_EQ(p.shard_of(h), p.shard_of(n.host_router(h)));
  }
}

TEST(Partition, DeterministicAcrossCalls) {
  PartitionConfig cfg;
  cfg.shards = 4;
  const net::Network a = wan_transit_stub(7);
  const net::Network b = wan_transit_stub(7);
  const NetPartition pa = partition_network(a, cfg);
  const NetPartition pb = partition_network(b, cfg);
  EXPECT_EQ(pa.node_shard, pb.node_shard);
  EXPECT_EQ(pa.lookahead, pb.lookahead);
  EXPECT_EQ(pa.cut_links, pb.cut_links);
}

TEST(Partition, EveryShardPopulatedAndBalanceCapRespected) {
  const net::Network n = wan_transit_stub(11);
  PartitionConfig cfg;
  cfg.shards = 4;
  cfg.balance_slack = 1.25;
  const NetPartition p = partition_network(n, cfg);
  const std::vector<std::int32_t> counts = p.routers_per_shard(n);
  ASSERT_EQ(counts.size(), 4u);
  const auto cap = static_cast<std::int32_t>(
      cfg.balance_slack * n.router_count() / cfg.shards + 1);
  for (const std::int32_t c : counts) {
    EXPECT_GT(c, 0);
    EXPECT_LE(c, cap);
  }
}

TEST(Partition, CutNeverSeversAccessLinksAndLookaheadIsMinCutDelay) {
  const net::Network n = wan_transit_stub(3);
  PartitionConfig cfg;
  cfg.shards = 4;
  const NetPartition p = partition_network(n, cfg);
  ASSERT_FALSE(p.cut_links.empty());
  TimeNs min_cut = kTimeNever;
  for (std::int32_t e = 0; e < n.link_count(); ++e) {
    const Link& l = n.link(LinkId{e});
    if (!p.crosses(l)) continue;
    EXPECT_FALSE(n.is_host(l.src) || n.is_host(l.dst));
    EXPECT_GT(l.prop_delay, 0);
    min_cut = std::min(min_cut, l.prop_delay);
    EXPECT_TRUE(std::find(p.cut_links.begin(), p.cut_links.end(), LinkId{e}) !=
                p.cut_links.end());
  }
  EXPECT_EQ(p.lookahead, min_cut);
}

TEST(Partition, FastLinksStayInteriorOnDelayHeterogeneousTopology) {
  // Two tight clusters (1 us internal links) joined by a single slow
  // 5 ms link: the max-spacing clustering must cut exactly the slow
  // bridge, giving a millisecond-scale lookahead instead of the 1 us a
  // naive cut through a cluster would leave.
  net::Network n;
  std::vector<NodeId> left, right;
  for (int i = 0; i < 4; ++i) left.push_back(n.add_router());
  for (int i = 0; i < 4; ++i) right.push_back(n.add_router());
  for (int i = 1; i < 4; ++i) {
    n.add_link_pair(left[0], left[static_cast<std::size_t>(i)], 200.0,
                    microseconds(1));
    n.add_link_pair(right[0], right[static_cast<std::size_t>(i)], 200.0,
                    microseconds(1));
  }
  n.add_link_pair(left[3], right[3], 500.0, milliseconds(5));
  for (int i = 0; i < 4; ++i) {
    n.add_host(left[static_cast<std::size_t>(i)], 100.0, microseconds(1));
    n.add_host(right[static_cast<std::size_t>(i)], 100.0, microseconds(1));
  }

  PartitionConfig cfg;
  cfg.shards = 2;
  const NetPartition p = partition_network(n, cfg);
  EXPECT_EQ(p.shard_count, 2);
  EXPECT_EQ(p.lookahead, milliseconds(5));
  ASSERT_EQ(p.cut_links.size(), 2u);  // the bridge, both directions
  for (const LinkId e : p.cut_links) {
    EXPECT_EQ(n.link(e).prop_delay, milliseconds(5));
  }
  // Each cluster lands whole on one shard.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(p.shard_of(left[static_cast<std::size_t>(i)]),
              p.shard_of(left[0]));
    EXPECT_EQ(p.shard_of(right[static_cast<std::size_t>(i)]),
              p.shard_of(right[0]));
  }
  EXPECT_NE(p.shard_of(left[0]), p.shard_of(right[0]));
}

TEST(Partition, MediumLanNetworkSplitsWithPositiveLookahead) {
  // The exp2 configuration: uniform 1 us LAN delays.  There is no slow
  // cut to find, but the partition must still balance and report the
  // LAN delay as lookahead.
  auto params = topo::medium_params();
  params.hosts = 500;
  Rng rng(1);
  const net::Network n = topo::make_transit_stub(params, rng);
  PartitionConfig cfg;
  cfg.shards = 4;
  const NetPartition p = partition_network(n, cfg);
  EXPECT_EQ(p.shard_count, 4);
  EXPECT_EQ(p.lookahead, microseconds(1));
  EXPECT_FALSE(p.cut_links.empty());
  for (const std::int32_t c : p.routers_per_shard(n)) EXPECT_GT(c, 0);
}

}  // namespace
}  // namespace bneck::net
