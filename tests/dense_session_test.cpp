// Regression coverage for the dense session table of BneckProtocol (the
// slot-indexed runtime vector + id→slot resolution that replaced the
// unordered_map lookups) and for the end-to-end determinism of the typed
// event core.
//
// The golden values in RandomizedScheduleMatchesGoldenCounts were
// captured from the pre-refactor implementation (std::priority_queue of
// std::function events, unordered_map session state) on the identical
// schedule: the refactored stack must reproduce the run bit for bit —
// same quiescence instant, same per-type packet bins, same rates.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/bneck.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"
#include "topo/canonical.hpp"

namespace bneck::core {
namespace {

using net::PathFinder;

// ---- golden end-to-end schedule --------------------------------------

struct GoldenRun {
  TimeNs quiescent_at = 0;
  std::uint64_t packets = 0;
  std::array<std::uint64_t, kPacketTypeCount> by_type{};
  std::size_t active = 0;
  std::int32_t next_id = 0;
  double rate_sum = 0;
};

// A 300-step randomized join/leave/change schedule (fixed seed) on a
// 12-router random topology; mirrors the generator used to capture the
// golden numbers.
GoldenRun run_randomized_schedule() {
  Rng rng(9021);
  const auto n = topo::make_random(12, 12, 36, rng);
  const PathFinder paths(n);

  sim::Simulator sim;
  BneckProtocol bneck(sim, n);

  struct Live {
    std::int32_t id;
    std::int32_t source;
  };
  std::vector<Live> live;
  std::vector<bool> host_used(36, false);
  std::int32_t next_id = 0;
  TimeNs clock = 0;

  for (std::int32_t e = 0; e < 300; ++e) {
    clock += rng.uniform_int(0, microseconds(150));
    const double dice = rng.uniform_real(0.0, 1.0);
    if (dice < 0.55 || live.empty()) {
      std::vector<std::int32_t> free;
      for (std::int32_t h = 0; h < 36; ++h) {
        if (!host_used[static_cast<std::size_t>(h)]) free.push_back(h);
      }
      if (free.empty()) continue;
      const std::int32_t src_idx = free[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(free.size()) - 1))];
      host_used[static_cast<std::size_t>(src_idx)] = true;
      NodeId src = n.hosts()[static_cast<std::size_t>(src_idx)];
      NodeId dst = src;
      while (dst == src) {
        dst = n.hosts()[static_cast<std::size_t>(rng.uniform_int(0, 35))];
      }
      auto path = paths.shortest_path(src, dst);
      const Rate demand =
          rng.chance(0.4) ? rng.uniform_real(0.5, 150.0) : kRateInfinity;
      const std::int32_t id = next_id++;
      const auto pp = *path;
      sim.schedule_at(clock, [&bneck, id, pp, demand] {
        bneck.join(SessionId{id}, pp, demand);
      });
      live.push_back({id, src_idx});
    } else if (dice < 0.8) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const std::int32_t id = live[k].id;
      host_used[static_cast<std::size_t>(live[k].source)] = false;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      sim.schedule_at(clock, [&bneck, id] { bneck.leave(SessionId{id}); });
    } else {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const std::int32_t id = live[k].id;
      const Rate demand =
          rng.chance(0.3) ? kRateInfinity : rng.uniform_real(0.5, 150.0);
      sim.schedule_at(clock, [&bneck, id, demand] {
        bneck.change(SessionId{id}, demand);
      });
    }
  }

  GoldenRun out;
  out.quiescent_at = sim.run_until_idle();
  out.packets = bneck.packets_sent();
  out.by_type = bneck.packets_by_type();
  out.active = bneck.active_specs().size();
  out.next_id = next_id;
  for (const auto& spec : bneck.active_specs()) {
    out.rate_sum += bneck.notified_rate(spec.id).value_or(-1.0);
  }
  return out;
}

TEST(DenseSessionTable, RandomizedScheduleMatchesGoldenCounts) {
  const GoldenRun r = run_randomized_schedule();
  // Captured from the seed implementation (see file comment).
  EXPECT_EQ(r.quiescent_at, 22058217);
  EXPECT_EQ(r.packets, 5219u);
  EXPECT_EQ(r.by_type[static_cast<std::size_t>(PacketType::Join)], 397u);
  EXPECT_EQ(r.by_type[static_cast<std::size_t>(PacketType::Probe)], 1056u);
  EXPECT_EQ(r.by_type[static_cast<std::size_t>(PacketType::Response)], 1452u);
  EXPECT_EQ(r.by_type[static_cast<std::size_t>(PacketType::Update)], 450u);
  EXPECT_EQ(r.by_type[static_cast<std::size_t>(PacketType::Bottleneck)], 300u);
  EXPECT_EQ(r.by_type[static_cast<std::size_t>(PacketType::SetBottleneck)],
            1294u);
  EXPECT_EQ(r.by_type[static_cast<std::size_t>(PacketType::Leave)], 270u);
  EXPECT_EQ(r.active, 36u);
  EXPECT_EQ(r.next_id, 108);
  EXPECT_NEAR(r.rate_sum, 2403.809632231, 1e-6);
}

TEST(DenseSessionTable, RandomizedScheduleIsRunToRunDeterministic) {
  const GoldenRun a = run_randomized_schedule();
  const GoldenRun b = run_randomized_schedule();
  EXPECT_EQ(a.quiescent_at, b.quiescent_at);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.by_type, b.by_type);
  EXPECT_EQ(a.rate_sum, b.rate_sum);
}

// ---- dense table semantics -------------------------------------------

struct Net {
  net::Network n = topo::make_star(4);
  PathFinder paths{n};

  net::Path path(std::size_t a, std::size_t b) const {
    return *paths.shortest_path(n.hosts()[a], n.hosts()[b]);
  }
};

TEST(DenseSessionTable, IdReuseAfterLeaveIsStillRejected) {
  Net net;
  sim::Simulator sim;
  BneckProtocol bneck(sim, net.n);
  bneck.join(SessionId{7}, net.path(0, 1));
  sim.run_until_idle();
  bneck.leave(SessionId{7});
  sim.run_until_idle();
  EXPECT_FALSE(bneck.is_active(SessionId{7}));
  // The slot survives as a tombstone: the id stays single-use.
  EXPECT_THROW(bneck.join(SessionId{7}, net.path(0, 1)), InvariantError);
}

TEST(DenseSessionTable, JoinOfUnknownThenLeaveThrows) {
  Net net;
  sim::Simulator sim;
  BneckProtocol bneck(sim, net.n);
  EXPECT_THROW(bneck.leave(SessionId{3}), InvariantError);
  EXPECT_THROW(bneck.change(SessionId{3}, 10.0), InvariantError);
  EXPECT_FALSE(bneck.is_active(SessionId{3}));
  EXPECT_EQ(bneck.notified_rate(SessionId{3}), std::nullopt);
}

TEST(DenseSessionTable, ActiveSpecsStayOrderedByIdNotJoinOrder) {
  Net net;
  sim::Simulator sim;
  BneckProtocol bneck(sim, net.n);
  // Join out of id order; slots are allocated in join order, but
  // active_specs() must stay ascending by session id.
  bneck.join(SessionId{42}, net.path(0, 1));
  bneck.join(SessionId{7}, net.path(1, 2));
  bneck.join(SessionId{19}, net.path(2, 3));
  sim.run_until_idle();
  const auto specs = bneck.active_specs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].id, SessionId{7});
  EXPECT_EQ(specs[1].id, SessionId{19});
  EXPECT_EQ(specs[2].id, SessionId{42});

  bneck.leave(SessionId{19});
  sim.run_until_idle();
  const auto after = bneck.active_specs();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].id, SessionId{7});
  EXPECT_EQ(after[1].id, SessionId{42});
}

TEST(DenseSessionTable, SparseIdsBeyondDenseLimitWork) {
  Net net;
  sim::Simulator sim;
  BneckProtocol bneck(sim, net.n);
  // Ids far above the dense id→slot window fall back to the sparse map;
  // behaviour must be indistinguishable.
  const SessionId big{2'000'000'000};
  bneck.join(big, net.path(0, 1));
  bneck.join(SessionId{0}, net.path(1, 2));
  sim.run_until_idle();
  EXPECT_TRUE(bneck.is_active(big));
  ASSERT_TRUE(bneck.notified_rate(big).has_value());
  const auto specs = bneck.active_specs();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].id, SessionId{0});
  EXPECT_EQ(specs[1].id, big);
  bneck.leave(big);
  sim.run_until_idle();
  EXPECT_FALSE(bneck.is_active(big));
  EXPECT_THROW(bneck.join(big, net.path(0, 1)), InvariantError);
}

}  // namespace
}  // namespace bneck::core
