// Tests for the sharded conservative parallel engine: the barrier
// scheduler's mailbox ordering and lifecycle (sim/sharded.hpp), and the
// full ShardedBneck engine A/B'd against the single-thread protocol on
// the PR-4 golden-trace scenario (core/sharded_bneck.hpp).
//
// The determinism statements pinned here, in decreasing strength:
//   * one shard: byte-identical to the single-thread engine (the trace
//     strings are compared verbatim);
//   * K shards: each shard's trace is exactly the single-thread trace
//     restricted to the lines that shard owns (so timestamps, packet
//     contents and per-shard order all survive parallelization), and
//     the protocol outcomes (rates, active sets, quiescence instant)
//     are identical;
//   * any K: repeated runs are byte-identical to each other.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/bneck.hpp"
#include "core/sharded_bneck.hpp"
#include "core/text_trace.hpp"
#include "net/routing.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "topo/canonical.hpp"
#include "transport/sim_transport.hpp"

namespace bneck {
namespace {

// ---- ShardedScheduler: mailbox ordering and lifecycle ----

struct Rig {
  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<sim::Simulator*> ptrs;
  // One log per shard, appended only from that shard's worker.
  std::vector<std::vector<std::pair<TimeNs, int>>> logs;
  std::unique_ptr<sim::ShardedScheduler<int>> sched;

  explicit Rig(std::size_t k, TimeNs lookahead) : logs(k) {
    for (std::size_t i = 0; i < k; ++i) {
      sims.push_back(std::make_unique<sim::Simulator>());
      ptrs.push_back(sims.back().get());
    }
    sched = std::make_unique<sim::ShardedScheduler<int>>(
        ptrs, lookahead, [this](std::int32_t dst, TimeNs t, const int& v) {
          sims[static_cast<std::size_t>(dst)]->schedule_at(
              t, [this, dst, t, v] {
                logs[static_cast<std::size_t>(dst)].emplace_back(t, v);
              });
        });
  }
};

TEST(ShardedScheduler, PingPongRunsToGlobalQuiescence) {
  Rig rig(2, 10);
  // Shard 0 seeds a token that bounces between the shards, one hop per
  // conservative window (hop delay == lookahead).
  std::function<void(std::int32_t, int)> bounce =
      [&](std::int32_t me, int v) {
        rig.logs[static_cast<std::size_t>(me)].emplace_back(
            rig.sims[static_cast<std::size_t>(me)]->now(), v);
        if (v > 0) {
          rig.sched->post(me, 1 - me,
                          rig.sims[static_cast<std::size_t>(me)]->now() + 10,
                          v - 1);
        }
      };
  rig.sched = std::make_unique<sim::ShardedScheduler<int>>(
      rig.ptrs, 10, [&](std::int32_t dst, TimeNs t, const int& v) {
        rig.sims[static_cast<std::size_t>(dst)]->schedule_at(
            t, [&bounce, dst, v] { bounce(dst, v); });
      });
  rig.sims[0]->schedule_at(0, [&] { bounce(0, 8); });
  rig.sched->run_until_idle();
  // 9 deliveries alternate between the shards; timestamps step by the
  // hop delay.
  ASSERT_EQ(rig.logs[0].size(), 5u);
  ASSERT_EQ(rig.logs[1].size(), 4u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.logs[0][i], std::make_pair(TimeNs{20 * (TimeNs)i}, 8 - 2 * (int)i));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.logs[1][i],
              std::make_pair(TimeNs{10 + 20 * (TimeNs)i}, 7 - 2 * (int)i));
  }
  EXPECT_EQ(rig.sched->messages_posted(), 8u);
  EXPECT_GE(rig.sched->windows_run(), 8u);
}

TEST(ShardedScheduler, SameInstantArrivalsFollowShardThenSeqOrder) {
  Rig rig(3, 10);
  // Shards 1 and 2 each post two messages arriving on shard 0 at the
  // same instant; delivery (insertion) order must be (time, src shard,
  // per-source seq).
  rig.sims[1]->schedule_at(0, [&] {
    rig.sched->post(1, 0, 100, 10);
    rig.sched->post(1, 0, 100, 11);
    rig.sched->post(1, 0, 50, 12);
  });
  rig.sims[2]->schedule_at(0, [&] {
    rig.sched->post(2, 0, 100, 20);
    rig.sched->post(2, 0, 50, 21);
  });
  rig.sched->run_until_idle();
  ASSERT_EQ(rig.logs[0].size(), 5u);
  EXPECT_EQ(rig.logs[0][0], std::make_pair(TimeNs{50}, 12));
  EXPECT_EQ(rig.logs[0][1], std::make_pair(TimeNs{50}, 21));
  EXPECT_EQ(rig.logs[0][2], std::make_pair(TimeNs{100}, 10));
  EXPECT_EQ(rig.logs[0][3], std::make_pair(TimeNs{100}, 11));
  EXPECT_EQ(rig.logs[0][4], std::make_pair(TimeNs{100}, 20));
}

TEST(ShardedScheduler, SingleShardFastPathRunsInline) {
  Rig rig(1, 10);
  int fired = 0;
  rig.sims[0]->schedule_at(5, [&] { ++fired; });
  rig.sched->run_until_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(rig.sched->windows_run(), 0u);
}

TEST(ShardedScheduler, DisconnectedShardsRunDetached) {
  // lookahead == kTimeNever means no link crosses shards: every shard
  // drains independently, with no barrier windows at all.
  Rig rig(2, kTimeNever);
  int a = 0, b = 0;
  rig.sims[0]->schedule_at(5, [&] { ++a; });
  rig.sims[1]->schedule_at(7, [&] { ++b; });
  rig.sched->run_until_idle();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(rig.sched->windows_run(), 0u);
}

TEST(ShardedScheduler, ReusableAcrossPhases) {
  Rig rig(2, 10);
  rig.sims[0]->schedule_at(0, [&] { rig.sched->post(0, 1, 10, 1); });
  rig.sched->run_until_idle();
  ASSERT_EQ(rig.logs[1].size(), 1u);
  const std::uint64_t w1 = rig.sched->windows_run();
  EXPECT_GE(w1, 1u);
  // Second phase, seeded on the other shard, well past the first run.
  rig.sims[1]->schedule_at(1000, [&] { rig.sched->post(1, 0, 1010, 2); });
  rig.sched->run_until_idle();
  ASSERT_EQ(rig.logs[0].size(), 1u);
  EXPECT_EQ(rig.logs[0][0], std::make_pair(TimeNs{1010}, 2));
  EXPECT_GT(rig.sched->windows_run(), w1);
  EXPECT_EQ(rig.sched->messages_posted(), 2u);
}

TEST(ShardedScheduler, WorkerExceptionPropagatesAfterDraining) {
  Rig rig(2, 10);
  rig.sims[0]->schedule_at(0, [&] { rig.sched->post(0, 1, 10, 1); });
  rig.sims[1]->schedule_at(10, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(rig.sched->run_until_idle(), std::runtime_error);
}

TEST(ShardedScheduler, PostInsideTheWindowViolatesLookahead) {
  // An arrival earlier than the current horizon would be a causality
  // violation; the conservative invariant makes it impossible for real
  // transports, and the scheduler turns an attempt into an error.
  Rig rig(2, 10);
  rig.sims[0]->schedule_at(0, [&] { rig.sched->post(0, 1, 5, 1); });
  EXPECT_THROW(rig.sched->run_until_idle(), InvariantError);
}

// ---- ShardedBneck vs the single-thread engine on the golden scenario ----

net::Network golden_net() {
  topo::CanonicalOptions opt;
  opt.router_capacity = 100.0;
  opt.access_capacity = 60.0;
  return topo::make_parking_lot(3, opt);
}

struct SingleRun {
  std::string trace;
  TimeNs quiescence;
  std::uint64_t packets;
  std::vector<std::pair<SessionId, Rate>> rates;
};

/// The transport_equiv_test golden scenario (joins/change/leave over
/// four quiescent phases) on the classic single-thread engine.
SingleRun run_single() {
  const net::Network n = golden_net();
  const net::PathFinder pf(n);
  const auto& h = n.hosts();
  sim::Simulator sim;
  std::ostringstream os;
  core::TextTracer tracer(os);
  core::BneckProtocol bneck(sim, n, {}, &tracer);
  bneck.join(SessionId{0}, *pf.shortest_path(h[0], h[3]));
  bneck.join(SessionId{1}, *pf.shortest_path(h[1], h[2]), 45.0);
  sim.run_until_idle();
  bneck.join(SessionId{2}, *pf.shortest_path(h[2], h[0]), 80.0);
  sim.run_until_idle();
  bneck.change(SessionId{1}, 10.0);
  sim.run_until_idle();
  bneck.leave(SessionId{0});
  const TimeNs q = sim.run_until_idle();
  SingleRun out{os.str(), q, bneck.packets_sent(), {}};
  for (const std::int32_t s : {1, 2}) {
    out.rates.emplace_back(SessionId{s}, *bneck.notified_rate(SessionId{s}));
  }
  return out;
}

struct ShardedRun {
  std::vector<std::string> traces;  // one per effective shard
  TimeNs quiescence;
  std::uint64_t packets;
  std::vector<std::pair<SessionId, Rate>> rates;
  net::NetPartition partition;
  std::array<std::int32_t, 3> home;
};

/// The same scenario through ShardedBneck with `shards` workers.
ShardedRun run_sharded(std::int32_t shards) {
  const net::Network n = golden_net();
  const net::PathFinder pf(n);
  const auto& h = n.hosts();
  core::ShardedConfig cfg;
  cfg.shards = shards;
  const std::int32_t effective =
      std::min(shards, n.router_count());
  std::vector<std::ostringstream> os(static_cast<std::size_t>(effective));
  std::vector<std::unique_ptr<core::TextTracer>> tracers;
  std::vector<core::TraceSink*> sinks;
  for (auto& s : os) {
    tracers.push_back(std::make_unique<core::TextTracer>(s));
    sinks.push_back(tracers.back().get());
  }
  core::ShardedBneck engine(n, cfg, sinks);
  engine.schedule_join(0, SessionId{0}, *pf.shortest_path(h[0], h[3]));
  engine.schedule_join(0, SessionId{1}, *pf.shortest_path(h[1], h[2]), 45.0);
  engine.run_until_idle();
  engine.schedule_join(engine.now(), SessionId{2},
                       *pf.shortest_path(h[2], h[0]), 80.0);
  engine.run_until_idle();
  engine.schedule_change(engine.now(), SessionId{1}, 10.0);
  engine.run_until_idle();
  engine.schedule_leave(engine.now(), SessionId{0});
  const TimeNs q = engine.run_until_idle();
  ShardedRun out;
  for (auto& s : os) out.traces.push_back(s.str());
  out.quiescence = q;
  out.packets = engine.packets_sent();
  for (const std::int32_t s : {1, 2}) {
    out.rates.emplace_back(SessionId{s},
                           *engine.notified_rate(SessionId{s}));
  }
  out.partition = engine.partition();
  for (const std::int32_t s : {0, 1, 2}) {
    out.home[static_cast<std::size_t>(s)] = engine.home_shard(SessionId{s});
  }
  return out;
}

/// Shard owning a trace line: wire lines carry the sending link
/// (shard of the link's source node); API.Rate lines fire on the
/// session's home shard.
std::int32_t line_shard(const std::string& line, const net::Network& n,
                        const ShardedRun& run) {
  const auto lp = line.find("link=");
  if (lp != std::string::npos) {
    const auto link = static_cast<std::int32_t>(
        std::atoi(line.c_str() + lp + 5));
    return run.partition.shard_of(n.link(LinkId{link}).src);
  }
  const auto sp = line.find("s=");
  EXPECT_NE(sp, std::string::npos) << line;
  return run.home[static_cast<std::size_t>(
      std::atoi(line.c_str() + sp + 2))];
}

/// Splits the single-thread trace into the per-shard subsequences the
/// sharded engine should produce.
std::vector<std::string> project_trace(const std::string& full,
                                       const net::Network& n,
                                       const ShardedRun& run) {
  std::vector<std::string> out(run.traces.size());
  std::istringstream is(full);
  std::string line;
  while (std::getline(is, line)) {
    out[static_cast<std::size_t>(line_shard(line, n, run))] += line + "\n";
  }
  return out;
}

TEST(ShardedBneck, OneShardIsByteIdenticalToSingleThreadEngine) {
  const SingleRun single = run_single();
  const ShardedRun sharded = run_sharded(1);
  ASSERT_EQ(sharded.traces.size(), 1u);
  EXPECT_EQ(sharded.traces[0], single.trace);
  EXPECT_EQ(sharded.quiescence, single.quiescence);
  EXPECT_EQ(sharded.packets, single.packets);
  EXPECT_EQ(sharded.rates, single.rates);
}

class ShardedBneckAB : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ShardedBneckAB, ShardTracesAreTheSingleThreadTraceRestricted) {
  const net::Network n = golden_net();
  const SingleRun single = run_single();
  const ShardedRun sharded = run_sharded(GetParam());
  const std::vector<std::string> expect = project_trace(single.trace, n, sharded);
  ASSERT_EQ(sharded.traces.size(), expect.size());
  for (std::size_t k = 0; k < expect.size(); ++k) {
    EXPECT_EQ(sharded.traces[k], expect[k]) << "shard " << k;
  }
  EXPECT_EQ(sharded.quiescence, single.quiescence);
  EXPECT_EQ(sharded.packets, single.packets);
  EXPECT_EQ(sharded.rates, single.rates);
}

TEST_P(ShardedBneckAB, RepeatedRunsAreByteIdentical) {
  const ShardedRun a = run_sharded(GetParam());
  const ShardedRun b = run_sharded(GetParam());
  EXPECT_EQ(a.traces, b.traces);
  EXPECT_EQ(a.quiescence, b.quiescence);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedBneckAB,
                         ::testing::Values(1, 2, 4));

TEST(ShardedBneck, HomeShardTracksTheSourceRouter) {
  const ShardedRun run = run_sharded(4);
  const net::Network n = golden_net();
  const auto& h = n.hosts();
  EXPECT_EQ(run.home[0], run.partition.shard_of(n.host_router(h[0])));
  EXPECT_EQ(run.home[1], run.partition.shard_of(n.host_router(h[1])));
  EXPECT_EQ(run.home[2], run.partition.shard_of(n.host_router(h[2])));
  EXPECT_EQ(run.partition.shard_count, 4);
}

TEST(ShardedBneck, CrossShardTrafficIsCountedWhenSplit) {
  const net::Network n = golden_net();
  core::ShardedConfig cfg;
  cfg.shards = 2;
  const net::PathFinder pf(n);
  const auto& h = n.hosts();
  core::ShardedBneck engine(n, cfg);
  engine.schedule_join(0, SessionId{0}, *pf.shortest_path(h[0], h[3]));
  engine.run_until_idle();
  EXPECT_GT(engine.cross_shard_packets(), 0u);
  EXPECT_GT(engine.windows_run(), 0u);
  EXPECT_EQ(engine.active_sessions(), 1u);
}

}  // namespace
}  // namespace bneck
