// Tests for the discrete-event simulator and the FIFO link channel.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace bneck::sim {
namespace {

TEST(Simulator, StartsIdleAtTimeZero) {
  Simulator s;
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.run_until_idle(), 0);
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(Simulator, ProcessesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NowAdvancesDuringProcessing) {
  Simulator s;
  TimeNs seen = -1;
  s.schedule_at(123, [&] { seen = s.now(); });
  s.run_until_idle();
  EXPECT_EQ(seen, 123);
  EXPECT_EQ(s.last_event_time(), 123);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_at(10, [&] {
    s.schedule_in(5, [&] { ++fired; });
    s.schedule_at(100, [&] { ++fired; });
  });
  EXPECT_EQ(s.run_until_idle(), 100);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.events_processed(), 3u);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator s;
  s.schedule_at(50, [] {});
  s.run_until_idle();
  EXPECT_THROW(s.schedule_at(10, [] {}), InvariantError);
}

TEST(Simulator, ZeroDelaySelfScheduleAllowed) {
  Simulator s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) s.schedule_in(0, tick);
  };
  s.schedule_at(7, tick);
  s.run_until_idle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 7);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  std::vector<TimeNs> fired;
  for (TimeNs t : {10, 20, 30, 40}) {
    s.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  s.run_until(25);
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 20}));
  EXPECT_EQ(s.now(), 25);
  EXPECT_EQ(s.pending(), 2u);
  s.run_until_idle();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator s;
  bool fired = false;
  s.schedule_at(25, [&] { fired = true; });
  s.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilHonorsEventsSpawnedWithinWindow) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(10, [&] {
    order.push_back(1);
    s.schedule_at(15, [&] { order.push_back(2); });
  });
  s.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, StepProcessesSingleEvent) {
  Simulator s;
  int n = 0;
  s.schedule_at(1, [&] { ++n; });
  s.schedule_at(2, [&] { ++n; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(n, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, MaxEventsBudgetThrows) {
  Simulator s;
  s.set_max_events(100);
  std::function<void()> forever = [&] { s.schedule_in(1, forever); };
  s.schedule_at(0, forever);
  EXPECT_THROW(s.run_until_idle(), InvariantError);
}

TEST(Simulator, RunUntilIdleReturnsLastEventTime) {
  Simulator s;
  s.schedule_at(10, [] {});
  s.schedule_at(99, [] {});
  EXPECT_EQ(s.run_until_idle(), 99);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto run = [] {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      s.schedule_at(i % 7, [&order, i] { order.push_back(i); });
    }
    s.run_until_idle();
    return order;
  };
  EXPECT_EQ(run(), run());
}

// Regression suite for the determinism contract in sim/simulator.hpp:
// (time, insertion-sequence) ordering, run_until horizon semantics, and
// the max_events bound turning runaway schedules into exceptions.
TEST(SimulatorDeterminismContract, SameTimestampFiresInInsertionOrder) {
  // Ties break by insertion order even when events are inserted from
  // inside a running event at the current instant: the zero-delay
  // follow-ups queue behind the same-timestamp events scheduled earlier.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(5, [&] {
    order.push_back(1);
    s.schedule_in(0, [&] { order.push_back(4); });
    s.schedule_in(0, [&] { order.push_back(5); });
  });
  s.schedule_at(5, [&] { order.push_back(2); });
  s.schedule_at(5, [&] { order.push_back(3); });
  s.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(SimulatorDeterminismContract, RunUntilHonorsHorizonCascades) {
  // A cascade scheduled during processing is honored while it lands
  // within the horizon, excluded once it passes it, and now() ends at
  // the horizon regardless.
  Simulator s;
  std::vector<TimeNs> fired;
  std::function<void()> cascade = [&] {
    fired.push_back(s.now());
    s.schedule_in(10, cascade);
  };
  s.schedule_at(5, cascade);
  s.run_until(30);
  EXPECT_EQ(fired, (std::vector<TimeNs>{5, 15, 25}));
  EXPECT_EQ(s.now(), 30);
  EXPECT_EQ(s.pending(), 1u);  // the t=35 event survives for the next run
  s.run_until(35);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorDeterminismContract, RunUntilThrowsInsteadOfHanging) {
  // A protocol bug that schedules forever within the horizon must hit
  // the max_events bound and throw rather than spin run_until.
  Simulator s;
  s.set_max_events(1000);
  std::function<void()> forever = [&] { s.schedule_in(0, forever); };
  s.schedule_at(1, forever);
  EXPECT_THROW(s.run_until(2), InvariantError);
}

TEST(SimulatorDeterminismContract, HeapOrdersArbitraryTimesWithTies) {
  // Stress for the owned 4-ary heap that replaced std::priority_queue
  // (and its const_cast move out of top()): many events at random
  // timestamps with heavy ties must fire exactly in (time, insertion-
  // sequence) order — verified against a stable sort of the schedule.
  std::mt19937_64 rng(2024);
  Simulator s;
  std::vector<std::pair<TimeNs, int>> scheduled;  // (t, schedule index)
  std::vector<int> fired;
  for (int i = 0; i < 20000; ++i) {
    const TimeNs t = static_cast<TimeNs>(rng() % 257);  // dense ties
    scheduled.emplace_back(t, i);
    s.schedule_at(t, [&fired, i] { fired.push_back(i); });
  }
  s.run_until_idle();
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(fired.size(), scheduled.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], scheduled[i].second) << "at position " << i;
  }
}

TEST(Simulator, RunUntilIdleAfterTrailingRunUntilReturnsHorizon) {
  // Regression: run_until(t) advances now() past the last processed
  // event; a following run_until_idle() that finds the queue empty must
  // report t (the current time), not the stale pre-run_until event time.
  Simulator s;
  s.schedule_at(10, [] {});
  s.run_until(50);
  EXPECT_EQ(s.last_event_time(), 10);
  EXPECT_EQ(s.run_until_idle(), 50);
  EXPECT_EQ(s.now(), 50);
}

// ---- the queue seam: heap vs ladder A/B gate ----
//
// BasicSimulator<HeapQueue> is the PR-2 reference simulator; the
// production Simulator runs on the ladder queue.  Any queue obeying the
// (time, insertion-seq) contract must fire byte-identically, so these
// tests replay the same scenario through both and compare the full
// (time, id) fire sequences.  The scenarios deliberately hit every
// ladder path: bulk driver scheduling in arbitrary time order between
// run_until() phases (bottom spill), same-instant kick bursts (batch
// drain), schedule-during-fire at and after the current instant
// (deferred refill), and partial horizons that leave events pending.

template <class Sim>
std::vector<std::pair<TimeNs, int>> replay_scripted_scenario(
    std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Sim s;
  std::vector<std::pair<TimeNs, int>> fired;
  int next_id = 0;
  // Handlers draw from the scenario rng in fire order, so the two
  // replays see identical draws exactly as long as they fire in the
  // same order — any divergence cascades into the compared sequences.
  std::function<void(int)> fire = [&](int id) {
    fired.emplace_back(s.now(), id);
    if (rng() % 10 < 3) {
      const int kids = 1 + static_cast<int>(rng() % 2);
      for (int k = 0; k < kids; ++k) {
        const TimeNs delay = static_cast<TimeNs>(rng() % 3 ? rng() % 40 : 0);
        const int kid = next_id++;
        s.schedule_in(delay, [&fire, kid] { fire(kid); });
      }
    }
  };
  for (int phase = 0; phase < 5; ++phase) {
    // Bulk driver scheduling in arbitrary time order...
    for (int i = 0; i < 400; ++i) {
      const TimeNs t = s.now() + static_cast<TimeNs>(rng() % 1000);
      const int id = next_id++;
      s.schedule_at(t, [&fire, id] { fire(id); });
    }
    // ...plus a same-instant kick burst...
    const TimeNs burst_at = s.now() + static_cast<TimeNs>(rng() % 200);
    for (int i = 0; i < 300; ++i) {
      const int id = next_id++;
      s.schedule_at(burst_at, [&fire, id] { fire(id); });
    }
    // ...then a partial horizon that leaves the tail pending.
    s.run_until(s.now() + 600);
  }
  s.run_until_idle();
  return fired;
}

TEST(QueueAB, RandomizedSchedulesFireIdenticallyOnHeapAndLadder) {
  for (const std::uint64_t seed : {11ULL, 222ULL, 3333ULL}) {
    const auto heap = replay_scripted_scenario<HeapSimulator>(seed);
    const auto ladder = replay_scripted_scenario<Simulator>(seed);
    ASSERT_EQ(heap.size(), ladder.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.size(); ++i) {
      ASSERT_EQ(heap[i], ladder[i]) << "seed " << seed << " position " << i;
    }
  }
}

template <class Sim>
std::vector<int> replay_kick_burst() {
  // Protocol-kick shape: thousands of events at one instant, where the
  // first wave schedules zero-delay follow-ups from inside the burst.
  // The whole run must fire in insertion order (the batch-drain fast
  // path inherits seq order without sorting).
  Sim s;
  std::vector<int> fired;
  constexpr int kBurst = 5000;
  for (int i = 0; i < kBurst; ++i) {
    s.schedule_at(100, [&fired, &s, i] {
      fired.push_back(i);
      if (i < 1000) {
        s.schedule_in(0, [&fired, i] { fired.push_back(kBurst + i); });
      }
    });
  }
  s.run_until_idle();
  return fired;
}

TEST(QueueAB, KickBurstDrainsInInsertionOrderOnBothQueues) {
  std::vector<int> expect;
  for (int i = 0; i < 5000; ++i) expect.push_back(i);
  for (int i = 0; i < 1000; ++i) expect.push_back(5000 + i);
  EXPECT_EQ(replay_kick_burst<HeapSimulator>(), expect);
  EXPECT_EQ(replay_kick_burst<Simulator>(), expect);
}

TEST(QueueAB, InterleavedBurstsAndStragglersMatchStableSort) {
  // Dense same-timestamp runs at a handful of instants, interleaved
  // with sparse stragglers, scheduled in shuffled order: both queues
  // must reproduce the stable sort of the schedule.
  std::mt19937_64 rng(99);
  std::vector<std::pair<TimeNs, int>> scheduled;
  for (int i = 0; i < 8000; ++i) {
    // ~75% pile onto 4 hot instants; the rest spread thin.
    const TimeNs t = rng() % 4 != 0
                         ? static_cast<TimeNs>(1000 * (1 + rng() % 4))
                         : static_cast<TimeNs>(rng() % 5000);
    scheduled.emplace_back(t, i);
  }
  const auto replay = [&](auto sim) {
    std::vector<int> fired;
    for (const auto& [t, id] : scheduled) {
      sim.schedule_at(t, [&fired, id = id] { fired.push_back(id); });
    }
    sim.run_until_idle();
    return fired;
  };
  const auto heap = replay(HeapSimulator{});
  const auto ladder = replay(Simulator{});
  auto expect = scheduled;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(heap.size(), expect.size());
  ASSERT_EQ(ladder.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(heap[i], expect[i].second) << "heap at " << i;
    ASSERT_EQ(ladder[i], expect[i].second) << "ladder at " << i;
  }
}

// ---- snapshot/restore round-trips (the model checker's seam) ----

template <class Sim>
std::vector<std::vector<std::pair<TimeNs, int>>> replay_snapshot_mid_drain(
    std::uint64_t seed) {
  // Handlers are deterministic functions of their id (no rng draws at
  // fire time): a restored run re-executes the same closures, so any
  // fire-time draw would desync the replays by construction.
  std::mt19937_64 rng(seed);
  Sim s;
  std::vector<std::pair<TimeNs, int>> fired;
  std::function<void(int)> fire = [&](int id) {
    fired.emplace_back(s.now(), id);
    if (id < 10000 && id % 5 == 0) {
      const TimeNs delay = static_cast<TimeNs>(id % 3 == 0 ? 0 : id % 37);
      s.schedule_in(delay, [&fire, id] { fire(10000 + id); });
    }
  };
  for (int i = 0; i < 400; ++i) {
    const TimeNs t = static_cast<TimeNs>(rng() % 1000);
    s.schedule_at(t, [&fire, i] { fire(i); });
  }
  for (int i = 400; i < 700; ++i) {
    s.schedule_at(500, [&fire, i] { fire(i); });  // same-instant burst
  }
  // Drain partway — deliberately into the middle of the t=500 burst —
  // then snapshot with the queue mid-flight.
  for (int i = 0; i < 550 && !s.idle(); ++i) s.step();
  const SimSnapshot snap = s.snapshot();
  std::vector<std::vector<std::pair<TimeNs, int>>> tails;
  fired.clear();
  s.run_until_idle();
  tails.push_back(fired);
  // Rewind and finish twice more: a snapshot clones its entries, so it
  // stays valid across restores, and every replay must fire the exact
  // same (time, id) sequence.
  for (int round = 0; round < 2; ++round) {
    fired.clear();
    s.restore(snap);
    s.run_until_idle();
    tails.push_back(fired);
  }
  return tails;
}

TEST(QueueAB, SnapshotMidDrainRestoresIdenticalFireOrderOnBothQueues) {
  for (const std::uint64_t seed : {7ULL, 77ULL, 777ULL}) {
    const auto heap = replay_snapshot_mid_drain<HeapSimulator>(seed);
    const auto ladder = replay_snapshot_mid_drain<Simulator>(seed);
    ASSERT_FALSE(heap[0].empty()) << "seed " << seed;
    // Every restore replays the original completion...
    EXPECT_EQ(heap[1], heap[0]) << "heap restore diverged, seed " << seed;
    EXPECT_EQ(heap[2], heap[0]) << "heap re-restore diverged, seed " << seed;
    EXPECT_EQ(ladder[1], ladder[0]) << "ladder restore diverged, seed " << seed;
    EXPECT_EQ(ladder[2], ladder[0])
        << "ladder re-restore diverged, seed " << seed;
    // ...and both queue policies agree on what that completion is.
    EXPECT_EQ(heap[0], ladder[0]) << "heap vs ladder diverged, seed " << seed;
  }
}

TEST(QueueAB, RestoreSkipSeqPlusFireNowReplaysTheChosenCandidateFirst) {
  // The model checker's branch step: restore(snap, seq) pulls one
  // pending entry out of the rebuilt queue and fire_now executes it
  // ahead of its (time, seq) turn; the remaining drain must equal the
  // original drain minus that entry, on both queue policies.
  const auto run = [](auto sim) {
    std::vector<int> fired;
    for (int i = 0; i < 8; ++i) {
      sim.schedule_at(10 + (i % 2), [&fired, i] { fired.push_back(i); });
    }
    const SimSnapshot snap = sim.snapshot();
    // Baseline completion.
    sim.run_until_idle();
    const std::vector<int> baseline = fired;
    // Pick the LAST same-instant candidate at t=10 (ids 0,2,4,6 live
    // there; choose id 6, the highest seq of the first window).
    const auto& chosen = snap.entries[3];
    fired.clear();
    sim.restore(snap, chosen.seq);
    sim.fire_now(chosen.t, chosen.ev.clone());
    sim.run_until_idle();
    return std::make_tuple(baseline, fired, chosen.t);
  };
  const auto [hb, hf, ht] = run(HeapSimulator{});
  const auto [lb, lf, lt] = run(Simulator{});
  EXPECT_EQ(hb, (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
  EXPECT_EQ(hf, (std::vector<int>{6, 0, 2, 4, 1, 3, 5, 7}));
  EXPECT_EQ(hb, lb);
  EXPECT_EQ(hf, lf);
  EXPECT_EQ(ht, 10);
  EXPECT_EQ(lt, 10);
}

// ---- typed delivery events (sim/event.hpp) ----

struct IntPayload {
  std::int64_t value;
};

struct Collector final : DeliveryHandlerOf<Collector, IntPayload> {
  std::vector<std::int64_t> seen;
  void on_delivery(const IntPayload& p) { seen.push_back(p.value); }
};

TEST(TypedEvents, DeliveryCarriesPayloadByValue) {
  Simulator s;
  Collector c;
  IntPayload p{41};
  s.schedule_delivery_at(10, c, p);
  p.value = 99;  // the event must have captured a copy
  s.schedule_delivery_in(20, c, p);
  s.run_until_idle();
  EXPECT_EQ(c.seen, (std::vector<std::int64_t>{41, 99}));
}

TEST(TypedEvents, DeliveriesAndCallbacksShareOneOrdering) {
  // The determinism contract spans both event kinds: a delivery and a
  // callback scheduled for the same instant fire in schedule order.
  Simulator s;
  Collector c;
  std::vector<std::int64_t> order;
  s.schedule_delivery_at(5, c, IntPayload{1});
  s.schedule_at(5, [&] { order.push_back(2); });
  s.schedule_delivery_at(5, c, IntPayload{3});
  s.schedule_at(5, [&] { order.push_back(4); });
  s.run_until_idle();
  EXPECT_EQ(c.seen, (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(order, (std::vector<std::int64_t>{2, 4}));
  EXPECT_EQ(s.events_processed(), 4u);
}

TEST(TypedEvents, DeliveryHandlerMayScheduleMoreDeliveries) {
  struct Chain final : DeliveryHandlerOf<Chain, IntPayload> {
    Simulator* sim = nullptr;
    int fired = 0;
    void on_delivery(const IntPayload& p) {
      ++fired;
      if (p.value > 0) sim->schedule_delivery_in(1, *this, IntPayload{p.value - 1});
    }
  };
  Simulator s;
  Chain chain;
  chain.sim = &s;
  s.schedule_delivery_at(0, chain, IntPayload{4});
  EXPECT_EQ(s.run_until_idle(), 4);
  EXPECT_EQ(chain.fired, 5);
}

TEST(TypedEvents, SchedulingDeliveryIntoThePastThrows) {
  Simulator s;
  Collector c;
  s.schedule_at(50, [] {});
  s.run_until_idle();
  EXPECT_THROW(s.schedule_delivery_at(10, c, IntPayload{1}), InvariantError);
}

// ---- equal-timestamp interleaving of cold callbacks and inline
// deliveries (the tie-break contract the scenario fuzzer relies on) ----

/// Delivery handler appending into a sequence shared with callbacks, so
/// one vector witnesses the interleaved order of both event kinds.
struct SharedOrder final : DeliveryHandlerOf<SharedOrder, IntPayload> {
  std::vector<std::int64_t>* order = nullptr;
  void on_delivery(const IntPayload& p) { order->push_back(p.value); }
};

TEST(TypedEvents, MixedKindsAtOneInstantFireInExactInsertionOrder) {
  // Alternating callback / delivery / callback ... at a single
  // timestamp: the shared sequence must come out exactly in insertion
  // order, with no bias between the two representations.
  Simulator s;
  std::vector<std::int64_t> order;
  SharedOrder h;
  h.order = &order;
  std::vector<std::int64_t> want;
  for (std::int64_t i = 0; i < 40; ++i) {
    if (i % 2 == 0) {
      s.schedule_at(7, [&order, i] { order.push_back(i); });
    } else {
      s.schedule_delivery_at(7, h, IntPayload{i});
    }
    want.push_back(i);
  }
  s.run_until_idle();
  EXPECT_EQ(order, want);
}

TEST(TypedEvents, HandlersSchedulingAtTheCurrentInstantRunAfterQueuedPeers) {
  // An event firing at time t that schedules more work *at t* (zero
  // delay) gets a larger insertion sequence than everything already
  // queued for t — across kinds: a callback spawning a delivery and a
  // delivery's handler spawning a callback both append, never preempt.
  Simulator s;
  std::vector<std::int64_t> order;
  SharedOrder h;
  h.order = &order;

  struct Spawner final : DeliveryHandlerOf<Spawner, IntPayload> {
    Simulator* sim = nullptr;
    std::vector<std::int64_t>* order = nullptr;
    void on_delivery(const IntPayload& p) {
      order->push_back(p.value);
      if (p.value == 1) {
        sim->schedule_in(0, [this] { order->push_back(100); });
      }
    }
  };
  Spawner spawner;
  spawner.sim = &s;
  spawner.order = &order;

  s.schedule_at(5, [&] {
    order.push_back(0);
    // Spawned at the current instant: must run after values 1 and 2,
    // which were queued for t=5 first.
    s.schedule_delivery_in(0, h, IntPayload{10});
    s.schedule_in(0, [&order] { order.push_back(11); });
  });
  s.schedule_delivery_at(5, spawner, IntPayload{1});  // spawns callback 100
  s.schedule_at(5, [&order] { order.push_back(2); });
  s.run_until_idle();
  EXPECT_EQ(s.now(), 5);
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 10, 11, 100}));
}

TEST(TypedEvents, MixedTieBreakSurvivesHeapStress) {
  // Heavy-tie stress with *both* kinds in one heap: the analogue of
  // HeapOrdersArbitraryTimesWithTies for the tagged-union representation.
  std::mt19937_64 rng(77);
  Simulator s;
  std::vector<std::int64_t> order;
  SharedOrder h;
  h.order = &order;
  std::vector<std::pair<TimeNs, std::int64_t>> scheduled;
  for (std::int64_t i = 0; i < 20000; ++i) {
    const TimeNs t = static_cast<TimeNs>(rng() % 97);  // dense ties
    scheduled.emplace_back(t, i);
    if (rng() % 2 == 0) {
      s.schedule_delivery_at(t, h, IntPayload{i});
    } else {
      s.schedule_at(t, [&order, i] { order.push_back(i); });
    }
  }
  s.run_until_idle();
  std::stable_sort(
      scheduled.begin(), scheduled.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(order.size(), scheduled.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(order[i], scheduled[i].second) << "at position " << i;
  }
}

TEST(TypedEvents, NextEventTimeTracksTheHeapHead) {
  // The checker hook added for the property harness: next_event_time()
  // is the head timestamp across both event kinds and kTimeNever when
  // idle, and run_until() leaves exactly the future events pending.
  Simulator s;
  Collector c;
  EXPECT_EQ(s.next_event_time(), kTimeNever);
  s.schedule_at(30, [] {});
  EXPECT_EQ(s.next_event_time(), 30);
  s.schedule_delivery_at(10, c, IntPayload{1});
  EXPECT_EQ(s.next_event_time(), 10);
  while (s.next_event_time() <= 10) {
    ASSERT_TRUE(s.step());
  }
  EXPECT_EQ(s.next_event_time(), 30);
  s.run_until_idle();
  EXPECT_EQ(s.next_event_time(), kTimeNever);
}

// ---- run_before: the sharded engine's window primitive ----

TEST(Simulator, RunBeforeStopsStrictlyBelowHorizonWithoutAdvancingNow) {
  // Unlike run_until, run_before must leave now() at the last *fired*
  // event: the sharded barrier loop takes the global quiescence instant
  // as max over shards of now(), which only matches the single-thread
  // engine if idle shards do not coast forward to their horizon.
  Simulator s;
  std::vector<TimeNs> fired;
  for (TimeNs t : {10, 20, 30}) {
    s.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  s.run_before(20);
  EXPECT_EQ(fired, (std::vector<TimeNs>{10}));  // 20 is outside (strict <)
  EXPECT_EQ(s.now(), 10);
  EXPECT_EQ(s.pending(), 2u);
  s.run_before(31);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, RunBeforeOnIdleQueueIsANoOp) {
  Simulator s;
  s.run_before(100);
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, RunBeforeHonorsEventsSpawnedInsideTheWindow) {
  Simulator s;
  std::vector<TimeNs> fired;
  s.schedule_at(5, [&] {
    fired.push_back(5);
    s.schedule_at(15, [&] { fired.push_back(15); });
    s.schedule_at(25, [&] { fired.push_back(25); });
  });
  s.run_before(20);
  EXPECT_EQ(fired, (std::vector<TimeNs>{5, 15}));
  EXPECT_EQ(s.next_event_time(), 25);
}

// ---- min_time(): the barrier polling primitive, pinned on both queue
// policies through their structural edge cases ----

/// Drains the queue checking min_time() against a reference sorted
/// multiset after every prepared pop; returns the fire sequence.
template <class Queue>
std::vector<TimeNs> drain_checking_min(Queue& q, std::vector<TimeNs> ref) {
  std::sort(ref.begin(), ref.end());
  std::vector<TimeNs> fired;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(q.min_time(), ref[i]) << "before pop " << i;
    TimeNs t = -1;
    (void)q.pop(&t);
    fired.push_back(t);
    q.prepare();
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.min_time(), kTimeNever);
  return fired;
}

template <class Queue>
void min_time_empty_queue() {
  Queue q;
  EXPECT_EQ(q.min_time(), kTimeNever);
  q.push(42, 0, Event([] {}));
  EXPECT_EQ(q.min_time(), 42);
  TimeNs t = -1;
  (void)q.pop(&t);
  q.prepare();
  EXPECT_EQ(t, 42);
  EXPECT_EQ(q.min_time(), kTimeNever);
}

TEST(QueueMinTime, EmptyQueueReportsNeverOnBothQueues) {
  min_time_empty_queue<LadderQueue>();
  min_time_empty_queue<HeapQueue>();
}

template <class Queue>
void min_time_batch_drain() {
  // A straggler at t=5 anchors bottom; a same-timestamp burst at t=100
  // larger than LadderQueue::kBottomThreshold lands in top and comes
  // back through the batch-drain refill path, with a tail run at t=200
  // behind it.  min_time must track 5, then 100 across the whole batch,
  // then 200, then never.
  Queue q;
  std::uint64_t seq = 0;
  std::vector<TimeNs> ref;
  const auto push = [&](TimeNs t) {
    q.push(t, seq++, Event([] {}));
    ref.push_back(t);
  };
  push(5);
  for (int i = 0; i < 1500; ++i) push(100);
  for (int i = 0; i < 3; ++i) push(200);
  const std::vector<TimeNs> fired = drain_checking_min(q, ref);
  std::vector<TimeNs> want = ref;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(fired, want);
}

TEST(QueueMinTime, SurvivesBatchDrainOnBothQueues) {
  min_time_batch_drain<LadderQueue>();
  min_time_batch_drain<HeapQueue>();
}

template <class Queue>
void min_time_spill_guard() {
  // Descending pushes grow bottom into a sorted working set and each
  // insert lands at its front; once the splice depth passes
  // LadderQueue::kSpliceDepth the pending run spills into a fresh rung
  // (the quadratic-insert guard).  min_time must stay the true minimum
  // through the spill and the drain that follows.
  Queue q;
  std::uint64_t seq = 0;
  std::vector<TimeNs> ref;
  for (TimeNs t = 2000; t > 1800; --t) {  // > kSpliceDepth descending pushes
    q.push(t, seq++, Event([] {}));
    ref.push_back(t);
    EXPECT_EQ(q.min_time(), t);
  }
  const std::vector<TimeNs> fired = drain_checking_min(q, ref);
  std::vector<TimeNs> want = ref;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(fired, want);
}

TEST(QueueMinTime, SurvivesSpillGuardDemotionOnBothQueues) {
  min_time_spill_guard<LadderQueue>();
  min_time_spill_guard<HeapQueue>();
}

TEST(FifoChannel, IdleLinkDeliversAfterTxPlusProp) {
  FifoChannel ch;
  EXPECT_EQ(ch.transmit(100, 10, 1000), 1110);
  EXPECT_EQ(ch.busy_until(), 110);
}

TEST(FifoChannel, BackToBackPacketsSerialize) {
  FifoChannel ch;
  const TimeNs a1 = ch.transmit(0, 10, 1000);
  const TimeNs a2 = ch.transmit(0, 10, 1000);
  const TimeNs a3 = ch.transmit(0, 10, 1000);
  EXPECT_EQ(a1, 1010);
  EXPECT_EQ(a2, 1020);  // waits for the first transmission
  EXPECT_EQ(a3, 1030);
}

TEST(FifoChannel, PreservesFifoOrder) {
  FifoChannel ch;
  TimeNs prev = -1;
  for (TimeNs t : {0, 5, 5, 7, 30}) {
    const TimeNs a = ch.transmit(t, 10, 100);
    EXPECT_GT(a, prev);  // later sends never arrive earlier
    prev = a;
  }
}

TEST(FifoChannel, IdleGapResetsQueueing) {
  FifoChannel ch;
  (void)ch.transmit(0, 10, 100);
  // Link is free again at t=10; a packet at t=50 goes straight through.
  EXPECT_EQ(ch.transmit(50, 10, 100), 160);
}

TEST(FifoChannel, ZeroTransmissionTimeStillFifo) {
  FifoChannel ch;
  EXPECT_EQ(ch.transmit(5, 0, 100), 105);
  EXPECT_EQ(ch.transmit(5, 0, 100), 105);  // same instant, order by queue
}

TEST(FifoChannel, NegativeDelayThrows) {
  FifoChannel ch;
  EXPECT_THROW(ch.transmit(0, -1, 0), InvariantError);
  EXPECT_THROW(ch.transmit(0, 0, -1), InvariantError);
}

TEST(FifoChannel, ResetClearsBusyHorizon) {
  FifoChannel ch;
  (void)ch.transmit(0, 1000, 0);
  ch.reset();
  EXPECT_EQ(ch.busy_until(), 0);
  EXPECT_EQ(ch.transmit(0, 10, 0), 10);
}

}  // namespace
}  // namespace bneck::sim
