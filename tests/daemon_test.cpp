// Loopback daemon tests: a transport::Daemon served on a background
// thread, driven by SourceClient over real UDP datagrams in the same
// process.  Threaded mode (no fork) keeps these meaningful under
// AddressSanitizer — leaked sockets or use-after-free on the shutdown
// path fail here, not just in the CI compliance smoke.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "check/compliance.hpp"
#include "check/scenario.hpp"
#include "net/routing.hpp"
#include "topo/canonical.hpp"
#include "transport/client.hpp"
#include "transport/daemon.hpp"

namespace bneck::transport {
namespace {

using check::ComplianceOptions;
using check::ComplianceResult;

ComplianceOptions threaded_options() {
  ComplianceOptions opt;
  opt.threaded = true;
  opt.timeout_ms = 10000;
  return opt;
}

ComplianceResult run_spec(const std::string& spec) {
  return check::run_compliance_scenario(check::parse_spec(spec),
                                        threaded_options());
}

// One scenario per topology family the CI smoke also exercises.
TEST(DaemonCompliance, LineTopologyConverges) {
  const auto r = run_spec(
      "v1 topo=line a=4 ev=j@0:s0:h0>h3:d50;j@1:s1:h1>h3:dinf");
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GE(r.sessions_checked, 2);
}

TEST(DaemonCompliance, DumbbellTopologyConverges) {
  const auto r = run_spec(
      "v1 topo=dumbbell a=3 "
      "ev=j@0:s0:h0>h3:dinf;j@1:s1:h1>h4:dinf:w2;j@2:s2:h2>h5:d20");
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.sessions_checked, 3);
}

TEST(DaemonCompliance, ParkingLotWithChurnConverges) {
  // Change + leave exercise the re-probe path and session tombstones.
  const auto r = run_spec(
      "v1 topo=parking_lot a=4 "
      "ev=j@0:s0:h0>h4:dinf;j@1:s1:h1>h2:d40;c@2:s1:d10;"
      "j@3:s2:h2>h3:dinf;l@4:s0");
  EXPECT_TRUE(r.ok) << r.failure;
}

TEST(DaemonCompliance, RandomSeedsConverge) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto r = check::run_compliance_seed(seed, threaded_options());
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
  }
}

// Direct client/daemon exercises below bypass the compliance harness to
// pin specific daemon behaviors.

net::Network make_net() {
  topo::CanonicalOptions opt;
  opt.router_capacity = 100.0;
  opt.access_capacity = 60.0;
  return topo::make_parking_lot(3, opt);
}

struct LoopbackFixture {
  net::Network net;
  Daemon daemon;
  std::thread server;
  SourceClient client;

  explicit LoopbackFixture(net::Network n)
      : net(std::move(n)),
        daemon(net, 0),
        server([this] { daemon.serve(); }),
        client(net, daemon.endpoint()) {}

  ~LoopbackFixture() {
    client.shutdown_daemon();
    daemon.request_stop();
    server.join();
  }

  net::Path path_between(std::size_t src_host, std::size_t dst_host) {
    return *net::PathFinder(net).shortest_path(net.hosts()[src_host],
                                               net.hosts()[dst_host]);
  }
};

TEST(DaemonLoopback, StatusReplyTracksSessions) {
  LoopbackFixture fx(make_net());
  auto st = fx.client.query_status(1000);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->active_sessions, 0u);

  fx.client.join(SessionId{0}, fx.path_between(0, 3), kRateInfinity);
  for (int i = 0; i < 200 && !fx.client.sources_stable(); ++i) {
    fx.client.poll(1);
  }
  EXPECT_TRUE(fx.client.sources_stable());
  st = fx.client.query_status(1000);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->active_sessions, 1u);
  EXPECT_TRUE(st->stable);

  fx.client.leave(SessionId{0});
  for (int i = 0; i < 50; ++i) fx.client.poll(1);
  st = fx.client.query_status(1000);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->active_sessions, 0u);
}

TEST(DaemonLoopback, SingleSessionGetsFullBottleneckRate) {
  LoopbackFixture fx(make_net());
  fx.client.join(SessionId{7}, fx.path_between(0, 3), kRateInfinity);
  for (int i = 0; i < 200 && !fx.client.sources_stable(); ++i) {
    fx.client.poll(1);
  }
  ASSERT_TRUE(fx.client.sources_stable());
  // Alone on the path, the session gets the tightest capacity: the
  // 60 Mbps access links.
  EXPECT_TRUE(rate_eq(fx.client.rate_of(SessionId{7}), 60.0));
}

TEST(DaemonLoopback, RejectsHostileIngress) {
  LoopbackFixture fx(make_net());
  const net::Path path = fx.path_between(0, 3);
  fx.client.join(SessionId{0}, path, kRateInfinity);
  for (int i = 0; i < 200 && !fx.client.sources_stable(); ++i) {
    fx.client.poll(1);
  }
  ASSERT_TRUE(fx.client.sources_stable());

  // A raw socket lobbing hostile frames at the daemon: unknown session,
  // out-of-range hop, upstream type from outside, re-join of a live id.
  UdpSocket raw(0);
  std::vector<std::uint8_t> buf;
  core::Packet p;
  p.type = core::PacketType::Probe;
  p.session = SessionId{999};
  p.hop = 1;
  p.weight = 1.0;
  wire::encode_packet(p, buf);
  raw.send_to(fx.daemon.endpoint(), buf);

  buf.clear();
  p.session = SessionId{0};
  p.hop = 2000;  // decode-legal, but beyond this session's path
  wire::encode_packet(p, buf);
  raw.send_to(fx.daemon.endpoint(), buf);

  buf.clear();
  p.type = core::PacketType::Response;  // upstream-only type
  p.hop = 1;
  wire::encode_packet(p, buf);
  raw.send_to(fx.daemon.endpoint(), buf);

  buf.clear();
  p.type = core::PacketType::Join;  // re-join of a live session
  p.hop = 1;
  wire::encode_packet(p, path.links, buf);
  raw.send_to(fx.daemon.endpoint(), buf);

  buf.assign({0x42, 0x4E, 77, 0});  // bad version
  raw.send_to(fx.daemon.endpoint(), buf);

  // The daemon must drop all of it and stay converged, and the status
  // snapshot must attribute each drop to its reason.
  const std::uint64_t rejected_before = fx.daemon.stats().frames_rejected;
  for (int i = 0; i < 100; ++i) fx.client.poll(1);
  EXPECT_GE(fx.daemon.stats().frames_rejected, rejected_before);
  const auto st = fx.client.query_status(1000);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->active_sessions, 1u);
  EXPECT_TRUE(st->stable);
  EXPECT_TRUE(rate_eq(fx.client.rate_of(SessionId{0}), 60.0));

  using wire::RejectReason;
  const auto count = [&st](RejectReason r) {
    return st->rejects[static_cast<std::size_t>(r)];
  };
  EXPECT_GE(count(RejectReason::UnknownSession), 1u);
  EXPECT_GE(count(RejectReason::BadHop), 1u);
  EXPECT_GE(count(RejectReason::UpstreamType), 1u);
  EXPECT_GE(count(RejectReason::ReJoin), 1u);
  EXPECT_GE(count(RejectReason::DecodeError), 1u);  // the bad-version frame
  EXPECT_GE(st->total_rejects(), 5u);
}

TEST(DaemonLoopback, ExpiresSessionsOfSilentClients) {
  net::Network net = make_net();
  DaemonOptions dopt;
  dopt.session_expiry = milliseconds(100);
  Daemon daemon(net, dopt);
  std::thread server([&daemon] { daemon.serve(); });

  const net::Path path = *net::PathFinder(net).shortest_path(
      net.hosts()[0], net.hosts()[3]);
  {
    // This client joins, converges, then vanishes without a Leave — the
    // crashed-source scenario.  Its destructor closes the socket; no
    // heartbeat ever arrives again.
    SourceClient client(net, daemon.endpoint());
    client.join(SessionId{0}, path, kRateInfinity);
    for (int i = 0; i < 200 && !client.sources_stable(); ++i) {
      client.poll(1);
    }
    ASSERT_TRUE(client.sources_stable());
    const auto st = client.query_status(1000);
    ASSERT_TRUE(st.has_value());
    ASSERT_EQ(st->active_sessions, 1u);
  }

  // The liveness sweep must reap the orphaned session and report it.
  SourceClient probe(net, daemon.endpoint());
  bool reaped = false;
  for (int i = 0; i < 100 && !reaped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto st = probe.query_status(500);
    if (st && st->active_sessions == 0) {
      EXPECT_GE(st->expired_sessions, 1u);
      reaped = true;
    }
  }
  EXPECT_TRUE(reaped);

  probe.shutdown_daemon();
  daemon.request_stop();
  server.join();
}

}  // namespace
}  // namespace bneck::transport
