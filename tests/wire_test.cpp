// Wire-codec tests: round-trips over every packet type, exhaustive
// truncation, and field-by-field malformed-input rejection (the daemon
// ingress hardening contract: decode() trusts nothing and never
// throws).  The seeded fuzz campaigns behind `bneck_check
// --codec-seeds` run here too, so a codec regression fails ctest before
// any fuzzing infrastructure is involved.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "check/codec_fuzz.hpp"
#include "core/packet.hpp"
#include "wire/codec.hpp"

namespace bneck::wire {
namespace {

using core::Packet;
using core::PacketType;
using core::ResponseTag;

Packet sample_packet(PacketType t) {
  Packet p;
  p.type = t;
  p.tag = t == PacketType::Response ? ResponseTag::Bottleneck
                                    : ResponseTag::Response;
  p.beta = t == PacketType::SetBottleneck;
  p.session = SessionId{41};
  p.eta = LinkId{7};
  p.hop = 3;
  p.lambda = 12.5;
  p.weight = 2.25;
  return p;
}

std::vector<LinkId> sample_path() {
  return {LinkId{0}, LinkId{4}, LinkId{9}, LinkId{2}};
}

std::vector<std::uint8_t> encode_one(const Packet& p,
                                     std::vector<LinkId> path = {}) {
  std::vector<std::uint8_t> buf;
  encode_packet(p, path, buf);
  return buf;
}

TEST(WireCodec, FrameSizes) {
  const auto probe = encode_one(sample_packet(PacketType::Probe));
  EXPECT_EQ(probe.size(), kPacketFrameBytes);

  Packet join = sample_packet(PacketType::Join);
  join.hop = 1;
  const auto path = sample_path();
  const auto frame = encode_one(join, path);
  EXPECT_EQ(frame.size(), kPacketFrameBytes + 4 * path.size());

  std::vector<std::uint8_t> buf;
  encode_status_request(buf);
  EXPECT_EQ(buf.size(), kControlFrameBytes);
  buf.clear();
  encode_status_reply({}, buf);
  EXPECT_EQ(buf.size(), kStatusReplyBytes);
  buf.clear();
  encode_shutdown(buf);
  EXPECT_EQ(buf.size(), kControlFrameBytes);
  buf.clear();
  encode_ack(7, buf);
  EXPECT_EQ(buf.size(), kAckFrameBytes);
  buf.clear();
  encode_heartbeat(3, buf);
  EXPECT_EQ(buf.size(), kHeartbeatFrameBytes);
  buf.clear();
  encode_data(1, probe, buf);
  EXPECT_EQ(buf.size(), kDataPrefixBytes + probe.size() + kChecksumBytes);
}

TEST(WireCodec, RoundTripsEveryPacketType) {
  for (int t = 0; t < core::kPacketTypeCount; ++t) {
    Packet p = sample_packet(static_cast<PacketType>(t));
    std::vector<LinkId> path;
    if (p.type == PacketType::Join) {
      p.hop = 1;
      path = sample_path();
    }
    const auto buf = encode_one(p, path);
    const DecodeResult r = decode(buf);
    ASSERT_TRUE(r.ok()) << core::packet_type_name(p.type) << ": " << r.error;
    EXPECT_EQ(r.frame.kind, FrameKind::Packet);
    EXPECT_EQ(r.frame.packet.type, p.type);
    EXPECT_EQ(r.frame.packet.tag, p.tag);
    EXPECT_EQ(r.frame.packet.beta, p.beta);
    EXPECT_EQ(r.frame.packet.session, p.session);
    EXPECT_EQ(r.frame.packet.eta, p.eta);
    EXPECT_EQ(r.frame.packet.hop, p.hop);
    EXPECT_EQ(r.frame.packet.lambda, p.lambda);
    EXPECT_EQ(r.frame.packet.weight, p.weight);
    EXPECT_EQ(r.frame.path, path);
  }
}

TEST(WireCodec, RoundTripsBoundaryValues) {
  Packet p = sample_packet(PacketType::Update);
  p.eta = LinkId{-1};   // "no restricting link"
  p.hop = -1;           // shared-access source hop
  p.lambda = kRateInfinity;
  const auto r = decode(encode_one(p));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.frame.packet.eta, LinkId{-1});
  EXPECT_EQ(r.frame.packet.hop, -1);
  EXPECT_EQ(r.frame.packet.lambda, kRateInfinity);
}

TEST(WireCodec, RoundTripsStatusReply) {
  StatusReply s;
  s.stable = true;
  s.active_sessions = 1234;
  s.packets_seen = 0xdeadbeef012345ull;
  s.retransmissions = 0x1122334455ull;
  s.expired_sessions = 9;
  for (int i = 0; i < kRejectReasonCount; ++i) {
    s.rejects[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>(100 + i);
  }
  std::vector<std::uint8_t> buf;
  encode_status_reply(s, buf);
  const DecodeResult r = decode(buf);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.frame.kind, FrameKind::StatusReply);
  EXPECT_EQ(r.frame.status, s);
  EXPECT_EQ(r.frame.status.total_rejects(),
            std::uint64_t{100} * kRejectReasonCount +
                kRejectReasonCount * (kRejectReasonCount - 1) / 2);
}

TEST(WireCodec, RoundTripsDataAckHeartbeat) {
  // Data: a seq-wrapped Join frame, path suffix and all.
  Packet join = sample_packet(PacketType::Join);
  join.hop = 1;
  const auto path = sample_path();
  const auto inner = encode_one(join, path);
  std::vector<std::uint8_t> buf;
  encode_data(0xfeedfacecafe01ull, inner, buf);
  DecodeResult r = decode(buf);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.frame.kind, FrameKind::Data);
  EXPECT_EQ(r.frame.seq, 0xfeedfacecafe01ull);
  EXPECT_EQ(r.frame.packet.type, PacketType::Join);
  EXPECT_EQ(r.frame.packet.session, join.session);
  EXPECT_EQ(r.frame.path, path);

  buf.clear();
  encode_ack(~std::uint64_t{0}, buf);  // wraparound boundary value
  r = decode(buf);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.frame.kind, FrameKind::Ack);
  EXPECT_EQ(r.frame.seq, ~std::uint64_t{0});

  buf.clear();
  encode_heartbeat(41, buf);
  r = decode(buf);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.frame.kind, FrameKind::Heartbeat);
  EXPECT_EQ(r.frame.heartbeat_sessions, 41u);
}

TEST(WireCodec, RejectsChecksumMismatchOnEveryReliableFrame) {
  // Flip one bit anywhere in a checksummed frame: decode must reject.
  // This is the defense against UDP's weak checksum — a corrupted
  // cumulative ack must not slide the go-back-N window.
  std::vector<std::vector<std::uint8_t>> frames;
  auto& ack = frames.emplace_back();
  encode_ack(123456, ack);
  auto& hb = frames.emplace_back();
  encode_heartbeat(2, hb);
  auto& sreq = frames.emplace_back();
  encode_status_request(sreq);
  auto& srep = frames.emplace_back();
  encode_status_reply({}, srep);
  auto& data = frames.emplace_back();
  const auto inner = encode_one(sample_packet(PacketType::Probe));
  encode_data(5, inner, data);

  for (const auto& frame : frames) {
    // Skip the 2 magic bytes (their corruption trips "bad magic"
    // first, also a rejection, but test the checksum path precisely).
    for (std::size_t i = 2; i < frame.size(); ++i) {
      for (int bit = 0; bit < 8; bit += 3) {
        auto mutated = frame;
        mutated[i] ^= static_cast<std::uint8_t>(1u << bit);
        EXPECT_FALSE(decode(mutated).ok())
            << "accepted a flip at byte " << i << " bit " << bit;
      }
    }
  }
}

TEST(WireCodec, RejectsBadDataFrames) {
  const auto inner = encode_one(sample_packet(PacketType::Probe));
  std::vector<std::uint8_t> buf;

  // Data wrapping a truncated inner frame.
  encode_data(1, {inner.data(), inner.size() - 1}, buf);
  EXPECT_FALSE(decode(buf).ok());

  // Data wrapping a non-Packet frame (no nesting).
  std::vector<std::uint8_t> control;
  encode_status_request(control);
  buf.clear();
  encode_data(1, control, buf);
  EXPECT_FALSE(decode(buf).ok());

  // Data too short to hold even an empty wrapped frame.
  buf.clear();
  encode_data(1, inner, buf);
  buf.resize(kDataPrefixBytes);
  EXPECT_FALSE(decode(buf).ok());
}

TEST(WireCodec, RejectsEveryTruncation) {
  Packet join = sample_packet(PacketType::Join);
  join.hop = 1;
  const auto buf = encode_one(join, sample_path());
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const DecodeResult r =
        decode({buf.data(), len});
    EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix";
  }
}

TEST(WireCodec, RejectsTrailingBytes) {
  for (const bool control : {false, true}) {
    std::vector<std::uint8_t> buf;
    if (control) {
      encode_status_request(buf);
    } else {
      encode_packet(sample_packet(PacketType::Probe), buf);
    }
    buf.push_back(0);
    EXPECT_FALSE(decode(buf).ok());
  }
}

TEST(WireCodec, RejectsBadHeader) {
  auto buf = encode_one(sample_packet(PacketType::Probe));
  auto mutated = buf;
  mutated[0] = 'X';
  EXPECT_STREQ(decode(mutated).error, "bad magic");
  mutated = buf;
  mutated[2] = kWireVersion + 1;
  EXPECT_STREQ(decode(mutated).error, "unsupported wire version");
  mutated = buf;
  mutated[3] = 9;
  EXPECT_STREQ(decode(mutated).error, "unknown frame kind");
}

// Field offsets below follow the layout table in wire/codec.hpp.
TEST(WireCodec, RejectsOutOfRangeEnumsAndFlags) {
  const auto buf = encode_one(sample_packet(PacketType::Probe));
  auto mutated = buf;
  mutated[4] = static_cast<std::uint8_t>(core::kPacketTypeCount);
  EXPECT_FALSE(decode(mutated).ok());  // packet type out of range
  mutated = buf;
  mutated[5] = 3;
  EXPECT_FALSE(decode(mutated).ok());  // response tag out of range
  mutated = buf;
  mutated[6] = 0x02;
  EXPECT_FALSE(decode(mutated).ok());  // non-beta flag bit set
  mutated = buf;
  mutated[7] = 1;
  EXPECT_FALSE(decode(mutated).ok());  // reserved byte nonzero
}

TEST(WireCodec, RejectsBadIdsAndHops) {
  Packet p = sample_packet(PacketType::Probe);
  p.session = SessionId{-1};
  EXPECT_FALSE(decode(encode_one(p)).ok());

  p = sample_packet(PacketType::Probe);
  p.eta = LinkId{-2};
  EXPECT_FALSE(decode(encode_one(p)).ok());

  p = sample_packet(PacketType::Probe);
  p.hop = -2;
  EXPECT_FALSE(decode(encode_one(p)).ok());

  p = sample_packet(PacketType::Probe);
  p.hop = kMaxHop + 1;
  EXPECT_FALSE(decode(encode_one(p)).ok());
}

TEST(WireCodec, RejectsBadFloats) {
  Packet p = sample_packet(PacketType::Probe);
  p.lambda = std::nan("");
  EXPECT_FALSE(decode(encode_one(p)).ok());

  p = sample_packet(PacketType::Probe);
  p.lambda = -1.0;
  EXPECT_FALSE(decode(encode_one(p)).ok());

  for (const double w : {0.0, -2.0, std::nan(""), kRateInfinity}) {
    p = sample_packet(PacketType::Probe);
    p.weight = w;
    EXPECT_FALSE(decode(encode_one(p)).ok()) << "weight " << w;
  }
}

TEST(WireCodec, RejectsBadPaths) {
  // Path suffix on a non-Join.
  auto buf = encode_one(sample_packet(PacketType::Probe));
  buf[20] = 1;  // path-length field
  buf.push_back(5);
  buf.push_back(0);
  buf.push_back(0);
  buf.push_back(0);
  EXPECT_FALSE(decode(buf).ok());

  // Path length field disagreeing with the actual suffix.
  Packet join = sample_packet(PacketType::Join);
  join.hop = 1;
  buf = encode_one(join, sample_path());
  buf[20] += 1;
  EXPECT_FALSE(decode(buf).ok());

  // Negative link id inside the suffix.
  buf = encode_one(join, sample_path());
  std::memset(buf.data() + kPacketFrameBytes, 0xff, 4);
  EXPECT_FALSE(decode(buf).ok());

  // Join without any path.
  EXPECT_FALSE(decode(encode_one(join)).ok());

  // Path length beyond the ingress bound.
  std::vector<LinkId> huge(kMaxPathLinks + 1, LinkId{1});
  buf = encode_one(join, huge);
  EXPECT_FALSE(decode(buf).ok());
}

TEST(WireCodec, RejectsBadStatusReply) {
  std::vector<std::uint8_t> buf;
  encode_status_reply({}, buf);
  auto mutated = buf;
  mutated[4] = 2;
  EXPECT_FALSE(decode(mutated).ok());  // stable flag out of range
  mutated = buf;
  mutated[6] = 1;
  EXPECT_FALSE(decode(mutated).ok());  // reserved byte nonzero
  mutated = buf;
  mutated.pop_back();
  EXPECT_FALSE(decode(mutated).ok());  // short frame
}

TEST(WireCodec, SeededFuzzCampaignsPass) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const auto r = check::run_codec_seed(seed);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.failure;
    EXPECT_GT(r.frames, 0u);
    EXPECT_GT(r.rejected, 0u);  // mutations must actually get rejected
  }
}

}  // namespace
}  // namespace bneck::wire
