// Tests for workload generation and the experiment harness.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "base/expect.hpp"
#include "proto/bfyz.hpp"
#include "proto/bneck_driver.hpp"
#include "topo/canonical.hpp"
#include "topo/transit_stub.hpp"
#include "workload/experiment.hpp"
#include "workload/load_monitor.hpp"
#include "workload/parallel.hpp"
#include "workload/workload.hpp"

namespace bneck::workload {
namespace {

using net::Network;
using net::PathFinder;

Network test_network() {
  auto params = topo::small_params();
  params.hosts = 60;
  Rng rng(555);
  return topo::make_transit_stub(params, rng);
}

TEST(Workload, GeneratesRequestedCount) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(1);
  WorkloadConfig cfg;
  cfg.sessions = 25;
  const auto plans = generate_sessions(n, pf, cfg, rng);
  EXPECT_EQ(plans.size(), 25u);
}

TEST(Workload, SourcesAreDistinctHosts) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(2);
  WorkloadConfig cfg;
  cfg.sessions = 40;
  const auto plans = generate_sessions(n, pf, cfg, rng);
  std::set<std::int32_t> sources;
  for (const auto& p : plans) {
    EXPECT_GE(p.source_host_index, 0);
    sources.insert(p.source_host_index);
  }
  EXPECT_EQ(sources.size(), 40u);
}

TEST(Workload, JoinTimesInsideWindow) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(3);
  WorkloadConfig cfg;
  cfg.sessions = 30;
  cfg.window_start = milliseconds(7);
  cfg.join_window = milliseconds(1);
  const auto plans = generate_sessions(n, pf, cfg, rng);
  for (const auto& p : plans) {
    EXPECT_GE(p.join_at, milliseconds(7));
    EXPECT_LT(p.join_at, milliseconds(8));
  }
}

TEST(Workload, DemandFractionRespected) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(4);
  WorkloadConfig cfg;
  cfg.sessions = 50;
  cfg.demand_fraction = 1.0;
  cfg.demand_min = 5.0;
  cfg.demand_max = 10.0;
  const auto plans = generate_sessions(n, pf, cfg, rng);
  for (const auto& p : plans) {
    EXPECT_GE(p.demand, 5.0);
    EXPECT_LE(p.demand, 10.0);
  }
  cfg.demand_fraction = 0.0;
  std::vector<bool> used;
  const auto plans2 = generate_sessions(n, pf, cfg, rng, used, 100);
  for (const auto& p : plans2) EXPECT_TRUE(std::isinf(p.demand));
}

TEST(Workload, IdsAllocatedFromFirstId) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(5);
  WorkloadConfig cfg;
  cfg.sessions = 5;
  std::vector<bool> used;
  const auto plans = generate_sessions(n, pf, cfg, rng, used, 42);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(plans[static_cast<std::size_t>(i)].id, SessionId{42 + i});
  }
}

TEST(Workload, UsedSourcesAreNotReused) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(6);
  WorkloadConfig cfg;
  cfg.sessions = 20;
  std::vector<bool> used;
  const auto a = generate_sessions(n, pf, cfg, rng, used, 0);
  const auto b = generate_sessions(n, pf, cfg, rng, used, 20);
  std::set<std::int32_t> sources;
  for (const auto& p : a) sources.insert(p.source_host_index);
  for (const auto& p : b) sources.insert(p.source_host_index);
  EXPECT_EQ(sources.size(), 40u);
}

TEST(Workload, TooManySessionsThrows) {
  const auto n = topo::make_dumbbell(2, 100.0);  // 4 hosts
  const PathFinder pf(n);
  Rng rng(7);
  WorkloadConfig cfg;
  cfg.sessions = 5;
  EXPECT_THROW(generate_sessions(n, pf, cfg, rng), InvariantError);
}

TEST(Workload, DeterministicPerSeed) {
  const auto n = test_network();
  const PathFinder pf(n);
  WorkloadConfig cfg;
  cfg.sessions = 15;
  Rng r1(99), r2(99);
  const auto a = generate_sessions(n, pf, cfg, r1);
  const auto b = generate_sessions(n, pf, cfg, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].join_at, b[i].join_at);
    EXPECT_EQ(a[i].path.links, b[i].path.links);
  }
}

TEST(Workload, ScheduleJoinsRunsProtocol) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(8);
  WorkloadConfig cfg;
  cfg.sessions = 10;
  const auto plans = generate_sessions(n, pf, cfg, rng);
  sim::Simulator sim;
  proto::BneckDriver driver(sim, n);
  schedule_joins(sim, driver, plans);
  sim.run_until_idle();
  EXPECT_EQ(driver.active_specs().size(), 10u);
  for (const auto& p : plans) {
    EXPECT_GT(driver.current_rate(p.id), 0.0);
  }
}

// ---- Poisson open-system churn ----

TEST(PoissonChurn, GeneratesChronologicalArrivals) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(21);
  ChurnConfig cfg;
  cfg.arrivals_per_ms = 2.0;
  cfg.horizon = milliseconds(50);
  const auto plans = generate_poisson_churn(n, pf, cfg, rng);
  EXPECT_GT(plans.size(), 20u);  // ~100 expected
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_GT(plans[i].join_at, plans[i - 1].join_at);
  }
  for (const auto& p : plans) {
    EXPECT_LT(p.join_at, cfg.horizon);
    if (p.leave_at != kTimeNever) {
      EXPECT_GT(p.leave_at, p.join_at);
      EXPECT_LT(p.leave_at, cfg.horizon);
    }
  }
}

TEST(PoissonChurn, RespectsSourceExclusivityOverTime) {
  const auto n = topo::make_dumbbell(3, 100.0);  // only 6 hosts
  const PathFinder pf(n);
  Rng rng(22);
  ChurnConfig cfg;
  cfg.arrivals_per_ms = 5.0;  // heavy: hosts will saturate
  cfg.mean_lifetime = milliseconds(10);
  cfg.horizon = milliseconds(60);
  const auto plans = generate_poisson_churn(n, pf, cfg, rng);
  // Replay host occupancy: no overlapping use of one source host.
  std::map<std::int32_t, TimeNs> busy_until;
  for (const auto& p : plans) {
    const auto it = busy_until.find(p.source_host_index);
    if (it != busy_until.end()) {
      EXPECT_GE(p.join_at, it->second) << "host reused while busy";
    }
    busy_until[p.source_host_index] =
        p.leave_at == kTimeNever ? kTimeNever : p.leave_at;
  }
}

TEST(PoissonChurn, MeanLifetimeRoughlyHonored) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(23);
  ChurnConfig cfg;
  cfg.arrivals_per_ms = 3.0;
  cfg.mean_lifetime = milliseconds(5);
  cfg.horizon = milliseconds(300);
  const auto plans = generate_poisson_churn(n, pf, cfg, rng);
  double sum = 0;
  int finite = 0;
  for (const auto& p : plans) {
    if (p.leave_at == kTimeNever) continue;
    sum += to_millis(p.leave_at - p.join_at);
    ++finite;
  }
  ASSERT_GT(finite, 100);
  EXPECT_NEAR(sum / finite, 5.0, 1.5);  // exponential mean, loose bound
}

TEST(PoissonChurn, BneckStaysExactUnderSteadyChurn) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(24);
  ChurnConfig cfg;
  cfg.arrivals_per_ms = 1.0;
  cfg.mean_lifetime = milliseconds(15);
  cfg.horizon = milliseconds(80);
  cfg.demand_fraction = 0.3;
  const auto plans = generate_poisson_churn(n, pf, cfg, rng);
  sim::Simulator sim;
  proto::BneckDriver driver(sim, n);
  schedule_churn(sim, driver, plans);
  sim.run_until_idle();
  // Whoever survived the churn holds exactly the max-min rates.
  const auto specs = driver.active_specs();
  EXPECT_GT(specs.size(), 0u);
  const auto sol = core::solve_waterfill(n, specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_NEAR(driver.current_rate(specs[i].id), sol.rates[i],
                1e-6 * std::max(1.0, sol.rates[i]));
  }
}

// ---- PacketBinner ----

TEST(PacketBinner, BinsByPacketType) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  PacketBinner binner(milliseconds(5));
  proto::BneckDriver driver(sim, n, {}, &binner);
  const PathFinder pf(n);
  driver.join(SessionId{0}, *pf.shortest_path(n.hosts()[0], n.hosts()[2]),
              kRateInfinity);
  sim.run_until_idle();
  const auto& bins = binner.bins();
  // 3 Join crossings, 3 Response crossings, 3 SetBottleneck crossings.
  EXPECT_EQ(bins.category_total(static_cast<std::size_t>(core::PacketType::Join)), 3u);
  EXPECT_EQ(bins.category_total(static_cast<std::size_t>(core::PacketType::Response)), 3u);
  EXPECT_EQ(bins.category_total(static_cast<std::size_t>(core::PacketType::SetBottleneck)), 3u);
  EXPECT_EQ(bins.total(), driver.packets_sent());
}

TEST(PacketBinner, ListenerCountsCells) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  proto::Bfyz bfyz(sim, n);
  PacketBinner binner(milliseconds(1));
  bfyz.set_packet_listener(binner.listener());
  const PathFinder pf(n);
  bfyz.join(SessionId{0}, *pf.shortest_path(n.hosts()[0], n.hosts()[2]),
            kRateInfinity);
  sim.run_until(milliseconds(10));
  EXPECT_EQ(binner.bins().total(), bfyz.packets_sent());
  EXPECT_EQ(binner.bins().category_total(
                static_cast<std::size_t>(core::kPacketTypeCount)),
            bfyz.packets_sent());
  bfyz.shutdown();
}

// ---- ErrorSampler ----

TEST(ErrorSampler, ZeroErrorAfterBneckQuiescence) {
  const auto n = topo::make_dumbbell(3, 90.0);
  sim::Simulator sim;
  proto::BneckDriver driver(sim, n);
  const PathFinder pf(n);
  for (int i = 0; i < 3; ++i) {
    driver.join(SessionId{i},
                *pf.shortest_path(n.hosts()[static_cast<std::size_t>(i)],
                                  n.hosts()[static_cast<std::size_t>(i + 3)]),
                kRateInfinity);
  }
  sim.run_until_idle();
  ErrorSampler sampler(n, driver);
  const auto s = sampler.sample(sim.now());
  EXPECT_EQ(s.sessions, 3u);
  EXPECT_NEAR(s.max_abs_error, 0.0, 1e-6);
  EXPECT_NEAR(s.source_error.mean, 0.0, 1e-6);
  EXPECT_NEAR(s.link_error.mean, 0.0, 1e-6);
}

TEST(ErrorSampler, MinusHundredBeforeAnyAssignment) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  proto::BneckDriver driver(sim, n);
  const PathFinder pf(n);
  driver.join(SessionId{0}, *pf.shortest_path(n.hosts()[0], n.hosts()[2]),
              kRateInfinity);
  // Sample immediately: no rate notified yet.
  ErrorSampler sampler(n, driver);
  const auto s = sampler.sample(0);
  EXPECT_EQ(s.sessions, 1u);
  EXPECT_NEAR(s.source_error.mean, -100.0, 1e-9);
}

TEST(ErrorSampler, LinkStressSeesOverload) {
  // Force BFYZ's initial overshoot and check the link error is positive.
  const auto n = topo::make_dumbbell(4, 100.0);
  sim::Simulator sim;
  proto::Bfyz bfyz(sim, n);
  const PathFinder pf(n);
  bfyz.join(SessionId{0}, *pf.shortest_path(n.hosts()[0], n.hosts()[4]),
            kRateInfinity);
  sim.run_until(milliseconds(20));  // session 0 now holds ~100
  for (int i = 1; i < 4; ++i) {
    bfyz.join(SessionId{i},
              *pf.shortest_path(n.hosts()[static_cast<std::size_t>(i)],
                                n.hosts()[static_cast<std::size_t>(i + 4)]),
              kRateInfinity);
  }
  // Sample right after the new sessions' first cells echoed (the links
  // still advertise full capacity) but before the next recompute round
  // corrects the offers.
  sim.run_until(sim.now() + microseconds(100));
  ErrorSampler sampler(n, bfyz);
  const auto s = sampler.sample(sim.now());
  EXPECT_GT(s.source_error.max, 1.0);  // someone above their fair rate
  bfyz.shutdown();
}

// ---- LinkLoadMonitor ----

TEST(LoadMonitor, TracksAggregateLoadAndPeak) {
  const auto n = topo::make_dumbbell(2, 100.0);
  const PathFinder pf(n);
  LinkLoadMonitor mon(n);
  const auto p0 = *pf.shortest_path(n.hosts()[0], n.hosts()[2]);
  const auto p1 = *pf.shortest_path(n.hosts()[1], n.hosts()[3]);
  mon.register_session(SessionId{0}, p0);
  mon.register_session(SessionId{1}, p1);
  mon.set_rate(SessionId{0}, 60.0, microseconds(10));
  mon.set_rate(SessionId{1}, 30.0, microseconds(20));
  // The shared bottleneck link is the middle link of both paths.
  const LinkId shared = p0.links[1];
  EXPECT_EQ(p1.links[1], shared);
  auto load = mon.load(shared);
  EXPECT_DOUBLE_EQ(load.current, 90.0);
  EXPECT_DOUBLE_EQ(load.peak, 90.0);
  EXPECT_EQ(load.overloaded_for, 0);
  mon.set_rate(SessionId{0}, 10.0, microseconds(30));
  load = mon.load(shared);
  EXPECT_DOUBLE_EQ(load.current, 40.0);
  EXPECT_DOUBLE_EQ(load.peak, 90.0);
}

TEST(LoadMonitor, AccountsOverloadTime) {
  const auto n = topo::make_dumbbell(2, 100.0);
  const PathFinder pf(n);
  LinkLoadMonitor mon(n);
  const auto p0 = *pf.shortest_path(n.hosts()[0], n.hosts()[2]);
  const auto p1 = *pf.shortest_path(n.hosts()[1], n.hosts()[3]);
  mon.register_session(SessionId{0}, p0);
  mon.register_session(SessionId{1}, p1);
  // 80 + 80 = 160 > 100 from t=10us until t=35us.
  mon.set_rate(SessionId{0}, 80.0, microseconds(5));
  mon.set_rate(SessionId{1}, 80.0, microseconds(10));
  mon.set_rate(SessionId{1}, 20.0, microseconds(35));
  mon.finalize(microseconds(100));
  const LinkId shared = p0.links[1];
  EXPECT_EQ(mon.load(shared).overloaded_for, microseconds(25));
  EXPECT_NEAR(mon.max_utilization(), 1.6, 1e-9);
  EXPECT_EQ(mon.worst_overload(), microseconds(25));
  EXPECT_EQ(mon.overloaded_links().size(), 1u);
  EXPECT_EQ(mon.overloaded_links()[0], shared);
}

TEST(LoadMonitor, LeaveDropsLoadToZero) {
  const auto n = topo::make_dumbbell(2, 100.0);
  const PathFinder pf(n);
  LinkLoadMonitor mon(n);
  const auto p0 = *pf.shortest_path(n.hosts()[0], n.hosts()[2]);
  mon.register_session(SessionId{0}, p0);
  mon.set_rate(SessionId{0}, 50.0, microseconds(1));
  mon.set_rate(SessionId{0}, 0.0, microseconds(2));
  for (const LinkId e : p0.links) {
    EXPECT_DOUBLE_EQ(mon.load(e).current, 0.0);
  }
}

TEST(LoadMonitor, MisuseRejected) {
  const auto n = topo::make_dumbbell(2, 100.0);
  const PathFinder pf(n);
  LinkLoadMonitor mon(n);
  EXPECT_THROW(mon.set_rate(SessionId{0}, 1.0, 0), InvariantError);
  const auto p0 = *pf.shortest_path(n.hosts()[0], n.hosts()[2]);
  mon.register_session(SessionId{0}, p0);
  EXPECT_THROW(mon.register_session(SessionId{0}, p0), InvariantError);
  EXPECT_THROW(mon.set_rate(SessionId{0}, -1.0, 0), InvariantError);
  mon.set_rate(SessionId{0}, 1.0, microseconds(5));
  EXPECT_THROW(mon.set_rate(SessionId{0}, 2.0, microseconds(1)),
               InvariantError);  // time went backwards
}

TEST(LoadMonitor, BneckNeverOverloadsSharedBottleneck) {
  // Single shared bottleneck + simultaneous joins: B-Neck's assigned
  // rates never oversubscribe the link at any instant.
  const auto n = topo::make_dumbbell(8, 100.0);
  const PathFinder pf(n);
  sim::Simulator sim;
  proto::BneckDriver driver(sim, n);
  LinkLoadMonitor mon(n);
  for (int i = 0; i < 8; ++i) {
    auto path = *pf.shortest_path(n.hosts()[static_cast<std::size_t>(i)],
                                  n.hosts()[static_cast<std::size_t>(i + 8)]);
    mon.register_session(SessionId{i}, path);
    driver.join(SessionId{i}, std::move(path), kRateInfinity);
  }
  driver.protocol().set_rate_callback(
      [&](SessionId s, Rate r, TimeNs t) { mon.set_rate(s, r, t); });
  sim.run_until_idle();
  mon.finalize(sim.now());
  EXPECT_LE(mon.max_utilization(), 1.0 + 1e-9);
  EXPECT_EQ(mon.worst_overload(), 0);
}

// ---- DynamicsRunner (Experiment 2 machinery) ----

TEST(DynamicsRunner, JoinPhaseConvergesAndCounts) {
  const auto n = test_network();
  Rng rng(11);
  DynamicsRunner runner(n, rng);
  PhaseSpec phase;
  phase.joins = 30;
  const auto result = runner.run_phase(phase);
  EXPECT_EQ(result.active_sessions, 30u);
  EXPECT_GT(result.quiescent_at, result.started_at);
  EXPECT_GT(result.packets, 0u);
  EXPECT_LT(runner.max_rate_error(), 1e-6);
}

TEST(DynamicsRunner, FivePhaseExperimentTwoShape) {
  // Scaled-down Experiment 2: join / leave / change / join / mixed.
  const auto n = test_network();
  Rng rng(12);
  DynamicsRunner runner(n, rng);
  PhaseSpec p1;
  p1.joins = 24;
  const auto r1 = runner.run_phase(p1);
  EXPECT_EQ(r1.active_sessions, 24u);

  PhaseSpec p2;
  p2.leaves = 6;
  const auto r2 = runner.run_phase(p2);
  EXPECT_EQ(r2.active_sessions, 18u);
  EXPECT_LT(runner.max_rate_error(), 1e-6);

  PhaseSpec p3;
  p3.changes = 6;
  const auto r3 = runner.run_phase(p3);
  EXPECT_EQ(r3.active_sessions, 18u);
  EXPECT_LT(runner.max_rate_error(), 1e-6);

  PhaseSpec p4;
  p4.joins = 6;
  const auto r4 = runner.run_phase(p4);
  EXPECT_EQ(r4.active_sessions, 24u);

  PhaseSpec p5;
  p5.joins = 6;
  p5.leaves = 6;
  p5.changes = 6;
  const auto r5 = runner.run_phase(p5);
  EXPECT_EQ(r5.active_sessions, 24u);
  EXPECT_LT(runner.max_rate_error(), 1e-6);

  // Phases happen in order.
  EXPECT_LE(r1.quiescent_at, r2.started_at);
  EXPECT_LE(r4.quiescent_at, r5.started_at);
}

TEST(DynamicsRunner, SourceHostsRecycledAfterLeave) {
  // 4-host dumbbell: join 2, leave 2, join 2 again -- only possible if
  // the freed source hosts are reused.
  const auto n = topo::make_dumbbell(2, 100.0);
  Rng rng(13);
  DynamicsRunner runner(n, rng);
  PhaseSpec join2;
  join2.joins = 2;
  runner.run_phase(join2);
  PhaseSpec leave2;
  leave2.leaves = 2;
  runner.run_phase(leave2);
  const auto r = runner.run_phase(join2);
  EXPECT_EQ(r.active_sessions, 2u);
  EXPECT_LT(runner.max_rate_error(), 1e-6);
}

// ---- run_tracked (Experiment 3 machinery) ----

TEST(RunTracked, BneckConvergesAndStopsSending) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(14);
  WorkloadConfig wcfg;
  wcfg.sessions = 20;
  const auto plans = generate_sessions(n, pf, wcfg, rng);
  sim::Simulator sim;
  proto::BneckDriver driver(sim, n);
  schedule_joins(sim, driver, plans);
  TrackedConfig tcfg;
  tcfg.horizon = milliseconds(30);
  const auto result = run_tracked(sim, driver, n, tcfg);
  ASSERT_TRUE(result.converged_at.has_value());
  EXPECT_EQ(result.samples.size(), 10u);
  // Errors are -100-heavy early, 0 late.
  EXPECT_NEAR(result.samples.back().max_abs_error, 0.0, 0.5);
}

TEST(RunTracked, SamplesCarryTimestamps) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  proto::BneckDriver driver(sim, n);
  const PathFinder pf(n);
  driver.join(SessionId{0}, *pf.shortest_path(n.hosts()[0], n.hosts()[2]),
              kRateInfinity);
  TrackedConfig tcfg;
  tcfg.horizon = milliseconds(9);
  tcfg.sample_interval = milliseconds(3);
  const auto result = run_tracked(sim, driver, n, tcfg);
  ASSERT_EQ(result.samples.size(), 3u);
  EXPECT_EQ(result.samples[0].t, milliseconds(3));
  EXPECT_EQ(result.samples[2].t, milliseconds(9));
}

TEST(ScheduleLeaves, LeavesHappenAfterJoins) {
  const auto n = test_network();
  const PathFinder pf(n);
  Rng rng(15);
  WorkloadConfig wcfg;
  wcfg.sessions = 10;
  const auto plans = generate_sessions(n, pf, wcfg, rng);
  sim::Simulator sim;
  proto::BneckDriver driver(sim, n);
  schedule_joins(sim, driver, plans);
  schedule_leaves(sim, driver, plans, 0, 5, milliseconds(5), rng);
  sim.run_until_idle();  // would throw if a leave preceded its join
  EXPECT_EQ(driver.active_specs().size(), 5u);
}

// ---- $BNECK_THREADS parsing (workload/parallel.cpp) ----

/// Restores the pre-test $BNECK_THREADS on scope exit so the test can
/// mutate the environment freely.
class ScopedThreadsEnv {
 public:
  ScopedThreadsEnv() {
    if (const char* v = std::getenv("BNECK_THREADS")) saved_ = v;
  }
  ~ScopedThreadsEnv() {
    if (saved_) {
      ::setenv("BNECK_THREADS", saved_->c_str(), 1);
    } else {
      ::unsetenv("BNECK_THREADS");
    }
  }

 private:
  std::optional<std::string> saved_;
};

TEST(Parallelism, HonorsExplicitThreadCount) {
  const ScopedThreadsEnv guard;
  ::setenv("BNECK_THREADS", "3", 1);
  EXPECT_EQ(default_parallelism(), 3u);
}

TEST(Parallelism, UnsetOrEmptyFallsBackToHardware) {
  const ScopedThreadsEnv guard;
  ::unsetenv("BNECK_THREADS");
  EXPECT_GE(default_parallelism(), 1u);
  // The `BNECK_THREADS= cmd` idiom means unset, not zero.
  ::setenv("BNECK_THREADS", "", 1);
  EXPECT_GE(default_parallelism(), 1u);
}

TEST(Parallelism, GarbageThreadCountIsAnErrorNotAFallback) {
  // A silent fallback would make scaling benchmarks lie about their
  // worker count, so every unusable value must throw.
  const ScopedThreadsEnv guard;
  for (const char* bad : {"abc", "4x", "x4", "3.5"}) {
    ::setenv("BNECK_THREADS", bad, 1);
    EXPECT_THROW((void)default_parallelism(), InvariantError) << bad;
  }
}

TEST(Parallelism, NonPositiveOrOverflowingThreadCountThrows) {
  const ScopedThreadsEnv guard;
  for (const char* bad : {"0", "-1", "-42", "999999999999999999999999"}) {
    ::setenv("BNECK_THREADS", bad, 1);
    EXPECT_THROW((void)default_parallelism(), InvariantError) << bad;
  }
}

}  // namespace
}  // namespace bneck::workload
