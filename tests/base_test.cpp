// Tests for the base module: strong ids, time, tolerant rate comparison,
// deterministic RNG.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "base/expect.hpp"
#include "base/flat_hash.hpp"
#include "base/ids.hpp"
#include "base/rate.hpp"
#include "base/rng.hpp"
#include "base/time.hpp"

namespace bneck {
namespace {

TEST(Ids, DefaultIsInvalid) {
  SessionId s;
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(s.value(), -1);
}

TEST(Ids, ComparisonAndOrdering) {
  NodeId a{1}, b{2}, c{1};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LE(a, c);
  EXPECT_GT(b, a);
  EXPECT_GE(c, a);
}

TEST(Ids, Hashable) {
  std::unordered_set<LinkId> set;
  set.insert(LinkId{3});
  set.insert(LinkId{3});
  set.insert(LinkId{4});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, LinkId>);
  static_assert(!std::is_same_v<SessionId, LinkId>);
}

TEST(Time, UnitHelpers) {
  EXPECT_EQ(microseconds(1), 1'000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(2), 2'000'000'000);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(42)), 42.0);
  EXPECT_DOUBLE_EQ(to_micros(microseconds(7)), 7.0);
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(nanoseconds(5)), "5ns");
  EXPECT_EQ(format_time(microseconds(2)), "2.000us");
  EXPECT_EQ(format_time(milliseconds(3)), "3.000ms");
  EXPECT_EQ(format_time(seconds(1)), "1.000s");
}

TEST(Rate, ExactEquality) {
  EXPECT_TRUE(rate_eq(10.0, 10.0));
  EXPECT_TRUE(rate_eq(kRateInfinity, kRateInfinity));
  EXPECT_FALSE(rate_eq(kRateInfinity, 10.0));
  EXPECT_FALSE(rate_eq(10.0, 11.0));
}

TEST(Rate, RelativeTolerance) {
  // One part in 1e12 at scale 100: well inside the default 1e-9 window.
  EXPECT_TRUE(rate_eq(100.0, 100.0 + 1e-10));
  EXPECT_FALSE(rate_eq(100.0, 100.0 + 1e-5));
  // Large magnitudes scale the window.
  EXPECT_TRUE(rate_eq(1e9, 1e9 * (1 + 1e-10)));
}

TEST(Rate, StrictComparisons) {
  EXPECT_TRUE(rate_lt(1.0, 2.0));
  EXPECT_FALSE(rate_lt(2.0, 1.0));
  EXPECT_FALSE(rate_lt(100.0, 100.0 + 1e-10));  // equal within eps
  EXPECT_TRUE(rate_gt(2.0, 1.0));
  EXPECT_FALSE(rate_gt(100.0 + 1e-10, 100.0));
}

TEST(Rate, WeakComparisons) {
  EXPECT_TRUE(rate_le(1.0, 2.0));
  EXPECT_TRUE(rate_le(100.0 + 1e-10, 100.0));
  EXPECT_FALSE(rate_le(2.0, 1.0));
  EXPECT_TRUE(rate_ge(2.0, 1.0));
  EXPECT_TRUE(rate_ge(100.0, 100.0 + 1e-10));
  EXPECT_FALSE(rate_ge(1.0, 2.0));
}

TEST(Rate, WaterFillingArithmeticSurvivesReordering) {
  // The exact situation the tolerance exists for: the same bottleneck
  // rate computed as capacity minus a sum accumulated in two different
  // orders must still compare equal.
  const double a = 100.0 / 3.0, b = 100.0 / 7.0, c = 100.0 / 11.0;
  const double s1 = ((a + b) + c);
  const double s2 = ((c + b) + a);
  EXPECT_TRUE(rate_eq((500.0 - s1) / 7.0, (500.0 - s2) / 7.0));
}

TEST(Rate, Format) {
  EXPECT_EQ(format_rate(12.5), "12.50 Mbps");
  EXPECT_EQ(format_rate(kRateInfinity), "inf");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-3, 4);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 4);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(x, 0.25);
    EXPECT_LT(x, 0.75);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, PickFromVector) {
  Rng rng(3);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(11);
  Rng child = parent.fork();
  // Child draws must not disturb the parent stream.
  Rng parent2(11);
  (void)parent2.fork();
  for (int i = 0; i < 10; ++i) (void)child.uniform_int(0, 100);
  EXPECT_EQ(parent.uniform_int(0, 1'000'000),
            parent2.uniform_int(0, 1'000'000));
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, 4.0, 0.2);
  EXPECT_THROW(rng.exponential(0.0), InvariantError);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, SampleDistinctSparse) {
  Rng rng(13);
  const auto s = sample_distinct(rng, 1'000'000, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<std::int32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleDistinctDense) {
  Rng rng(13);
  const auto s = sample_distinct(rng, 10, 10);
  std::set<std::int32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  EXPECT_EQ(*uniq.begin(), 0);
  EXPECT_EQ(*uniq.rbegin(), 9);
}

TEST(Rng, SampleDistinctEmpty) {
  Rng rng(1);
  EXPECT_TRUE(sample_distinct(rng, 5, 0).empty());
}

TEST(Expect, ThrowsInvariantError) {
  EXPECT_THROW(BNECK_EXPECT(false, "boom"), InvariantError);
  EXPECT_NO_THROW(BNECK_EXPECT(true, "fine"));
}

TEST(Expect, MessageContainsContext) {
  try {
    BNECK_EXPECT(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("math broke"), std::string::npos);
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
  }
}

// ---- FlatIdMap (base/flat_hash.hpp) ----

TEST(FlatIdMap, BasicInsertFindErase) {
  FlatIdMap<SessionTag, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(SessionId{3}), nullptr);
  EXPECT_FALSE(m.erase(SessionId{3}));

  EXPECT_TRUE(m.try_emplace(SessionId{3}, 30).second);
  EXPECT_FALSE(m.try_emplace(SessionId{3}, 99).second);  // no overwrite
  ASSERT_NE(m.find(SessionId{3}), nullptr);
  EXPECT_EQ(*m.find(SessionId{3}), 30);
  EXPECT_EQ(m.size(), 1u);

  m[SessionId{4}] = 40;
  EXPECT_EQ(*m.find(SessionId{4}), 40);
  EXPECT_TRUE(m.erase(SessionId{3}));
  EXPECT_EQ(m.find(SessionId{3}), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatIdMap, MatchesUnorderedMapUnderRandomChurn) {
  // Exercises growth, collisions and the backward-shift deletion against
  // a reference std::unordered_map.
  std::mt19937_64 rng(77);
  FlatIdMap<SessionTag, int> fm;
  std::unordered_map<std::int32_t, int> um;
  for (int op = 0; op < 20000; ++op) {
    const auto k = static_cast<std::int32_t>(rng() % 512);
    switch (rng() % 3) {
      case 0:
        fm.try_emplace(SessionId{k}, op);
        um.try_emplace(k, op);
        break;
      case 1:
        EXPECT_EQ(fm.erase(SessionId{k}), um.erase(k) > 0);
        break;
      default: {
        const int* p = fm.find(SessionId{k});
        const auto it = um.find(k);
        ASSERT_EQ(p != nullptr, it != um.end());
        if (p != nullptr) {
          EXPECT_EQ(*p, it->second);
        }
      }
    }
    ASSERT_EQ(fm.size(), um.size());
  }
  fm.for_each([&](SessionId s, const int& v) {
    const auto it = um.find(s.value());
    ASSERT_NE(it, um.end());
    EXPECT_EQ(it->second, v);
  });
}

TEST(FlatIdMap, InvalidIdNeverMatchesEmptySlots) {
  // SessionId{} is -1, the same representation as the empty-slot
  // sentinel: lookups with it must miss, not alias an empty slot.
  FlatIdMap<SessionTag, int> m;
  m.try_emplace(SessionId{1}, 10);
  EXPECT_EQ(m.find(SessionId{}), nullptr);
  EXPECT_FALSE(m.contains(SessionId{}));
  EXPECT_FALSE(m.erase(SessionId{}));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_THROW(m.try_emplace(SessionId{}, 0), InvariantError);
}

TEST(FlatIdMap, TryEmplaceOfExistingKeyKeepsPointersStable) {
  // A non-inserting try_emplace must not rehash: pointers stay valid
  // "until the next insert".
  FlatIdMap<SessionTag, int> m;
  for (int i = 0; i < 13; ++i) m.try_emplace(SessionId{i}, i);  // near 7/8 load
  const int* p = m.find(SessionId{5});
  for (int i = 0; i < 13; ++i) {
    const auto [q, inserted] = m.try_emplace(SessionId{i}, -1);
    EXPECT_FALSE(inserted);
    if (i == 5) {
      EXPECT_EQ(q, p);
    }
  }
  EXPECT_EQ(m.find(SessionId{5}), p);
  EXPECT_EQ(*p, 5);
}

TEST(FlatIdMap, ForEachVisitsEveryEntryOnce) {
  FlatIdMap<SessionTag, int> m;
  for (int i = 0; i < 100; ++i) m.try_emplace(SessionId{i * 7}, i);
  int visits = 0;
  m.for_each([&](SessionId s, const int& v) {
    EXPECT_EQ(s.value(), v * 7);
    ++visits;
  });
  EXPECT_EQ(visits, 100);
}

}  // namespace
}  // namespace bneck
