// Tests for the property harness (src/check/): scenario generation and
// normalization, spec round-trips, the invariant checker on known-good
// and known-bad protocols, and the shrinker end to end.
//
// The "known-bad protocol" is the documented harness-validation mutation
// BneckConfig::fault_single_kick (RouterLink re-probes only the first
// session of each kick batch).  The harness must (a) catch it on a small
// seed block and (b) shrink a failing schedule to a handful of events —
// this is the acceptance test that the fuzzer finds real ordering bugs
// rather than vacuously passing.
#include <gtest/gtest.h>

#include <algorithm>

#include <string>

#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"

namespace bneck::check {
namespace {

// ---- scenario generation ----

TEST(Scenario, GenerationIsDeterministic) {
  for (const std::uint64_t seed : {0u, 7u, 99u}) {
    const Scenario a = generate_scenario(seed);
    const Scenario b = generate_scenario(seed);
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(a.topo.kind, b.topo.kind);
    EXPECT_EQ(a.loss_probability, b.loss_probability);
  }
}

TEST(Scenario, GeneratedSchedulesAreAlreadyNormalized) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Scenario sc = generate_scenario(seed);
    const auto before = sc.events;
    EXPECT_EQ(normalize(sc), 0u) << "seed " << seed;
    EXPECT_EQ(sc.events, before) << "seed " << seed;
  }
}

TEST(Scenario, GeneratorCoversEveryTopologyFamily) {
  bool seen[7] = {};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    seen[static_cast<int>(generate_scenario(seed).topo.kind)] = true;
  }
  for (int k = 0; k < 7; ++k) {
    EXPECT_TRUE(seen[k]) << topo_kind_name(static_cast<TopoKind>(k));
  }
}

TEST(Scenario, BuildNetworkProducesValidTopologies) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const Scenario sc = generate_scenario(seed);
    const net::Network n = build_network(sc.topo);  // validates internally
    EXPECT_GE(n.host_count(), 2) << "seed " << seed;
  }
}

// ---- normalization of invalid event lists ----

TEST(Scenario, NormalizeDropsInvalidEvents) {
  Scenario sc;
  sc.topo.kind = TopoKind::Dumbbell;
  sc.topo.a = 2;  // hosts 0,1 senders; 2,3 receivers
  sc.events = {
      {0, EventKind::Join, 0, 0, 2, kRateInfinity},     // ok
      {0, EventKind::Join, 0, 1, 3, kRateInfinity},     // dup session id
      {10, EventKind::Join, 1, 0, 3, kRateInfinity},    // source host busy
      {20, EventKind::Join, 2, 1, 1, kRateInfinity},    // src == dst
      {30, EventKind::Join, 3, 9, 0, kRateInfinity},    // host out of range
      {40, EventKind::Join, 4, 1, 2, -5.0},             // bad demand
      {50, EventKind::Change, 7, -1, -1, 10.0},         // unknown session
      {60, EventKind::Leave, 0, -1, -1, kRateInfinity}, // ok
      {70, EventKind::Leave, 0, -1, -1, kRateInfinity}, // double leave
      {80, EventKind::Change, 0, -1, -1, 10.0},         // change after leave
      {90, EventKind::Join, 5, 0, 2, 25.0},             // host free again: ok
  };
  EXPECT_EQ(normalize(sc), 8u);
  ASSERT_EQ(sc.events.size(), 3u);
  EXPECT_EQ(sc.events[0].session, 0);
  EXPECT_EQ(sc.events[1].kind, EventKind::Leave);
  EXPECT_EQ(sc.events[2].session, 5);
}

TEST(Scenario, NormalizeSortsByTimeStably) {
  Scenario sc;
  sc.topo.kind = TopoKind::Dumbbell;
  sc.topo.a = 3;
  sc.events = {
      {100, EventKind::Join, 1, 1, 4, kRateInfinity},
      {0, EventKind::Join, 0, 0, 3, kRateInfinity},
      {100, EventKind::Leave, 0, -1, -1, kRateInfinity},
  };
  EXPECT_EQ(normalize(sc), 0u);
  EXPECT_EQ(sc.events[0].session, 0);
  EXPECT_EQ(sc.events[1].session, 1);  // stable order within t=100
  EXPECT_EQ(sc.events[2].kind, EventKind::Leave);
}

// ---- spec round-trip ----

TEST(Scenario, SpecRoundTripsExactly) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const Scenario sc = generate_scenario(seed);
    const std::string spec = format_spec(sc);
    const Scenario back = parse_spec(spec);
    EXPECT_EQ(back.events, sc.events) << "seed " << seed << "\n" << spec;
    EXPECT_EQ(back.topo.kind, sc.topo.kind);
    EXPECT_EQ(back.topo.a, sc.topo.a);
    EXPECT_EQ(back.topo.b, sc.topo.b);
    EXPECT_EQ(back.topo.hpr, sc.topo.hpr);
    EXPECT_EQ(back.topo.hosts, sc.topo.hosts);
    EXPECT_EQ(back.topo.seed, sc.topo.seed);
    EXPECT_EQ(back.topo.router_capacity, sc.topo.router_capacity);
    EXPECT_EQ(back.topo.access_capacity, sc.topo.access_capacity);
    EXPECT_EQ(back.topo.wan, sc.topo.wan);
    EXPECT_EQ(back.loss_probability, sc.loss_probability);
    EXPECT_EQ(back.seed, sc.seed);
    EXPECT_EQ(format_spec(back), spec);
  }
}

TEST(Scenario, GeneratorEmitsWeightedScenarios) {
  // The fuzz stream must actually exercise non-uniform weights: over a
  // seed block, some joins/changes carry w != 1 (weighted scenarios) and
  // some scenarios stay fully unweighted.
  int weighted = 0;
  int unweighted = 0;
  for (std::uint64_t seed = 0; seed < 128; ++seed) {
    const Scenario sc = generate_scenario(seed);
    const bool any = std::any_of(
        sc.events.begin(), sc.events.end(),
        [](const ScheduleEvent& ev) { return ev.weight != 1.0; });
    (any ? weighted : unweighted)++;
  }
  EXPECT_GT(weighted, 16);
  EXPECT_GT(unweighted, 32);
}

TEST(Scenario, PreWeightSpecsParseWithUnitWeights) {
  // Replay specs emitted before the weighted extension carry no :w
  // fields; they must parse to weight-1 events (bit-for-bit the old
  // semantics).
  const Scenario sc = parse_spec(
      "v1 topo=dumbbell a=2 b=0 hpr=1 hosts=6 tseed=0 rcap=200 acap=100 "
      "wan=0 loss=0 seed=7 ev=j@0:s0:h0>h2:dinf;c@10:s0:d50;l@20:s0");
  ASSERT_EQ(sc.events.size(), 3u);
  for (const auto& ev : sc.events) EXPECT_EQ(ev.weight, 1.0);
}

TEST(Scenario, WeightedSpecRoundTripsExactly) {
  Scenario sc;
  sc.topo.kind = TopoKind::Dumbbell;
  sc.topo.a = 2;
  ScheduleEvent j;
  j.kind = EventKind::Join;
  j.session = 0;
  j.src_host = 0;
  j.dst_host = 2;
  j.weight = 2.7182818284590451;
  ScheduleEvent c;
  c.at = 10;
  c.kind = EventKind::Change;
  c.session = 0;
  c.demand = 50.0;
  c.weight = 0.125;
  sc.events = {j, c};
  const Scenario back = parse_spec(format_spec(sc));
  EXPECT_EQ(back.events, sc.events);
}

TEST(Scenario, ParseSpecRejectsMalformedInput) {
  EXPECT_THROW((void)parse_spec("v0 topo=line"), InvariantError);
  EXPECT_THROW((void)parse_spec("v1 nonsense"), InvariantError);
  EXPECT_THROW((void)parse_spec("v1 topo=klein_bottle"), InvariantError);
  EXPECT_THROW((void)parse_spec("v1 ev=x@0:s0"), InvariantError);
  EXPECT_THROW((void)parse_spec("v1 ev=j@0:s0"), InvariantError);
  // stoll/stod failures surface as the documented InvariantError too.
  EXPECT_THROW((void)parse_spec("v1 a=zz"), InvariantError);
  EXPECT_THROW((void)parse_spec("v1 a=99999999999999999999"), InvariantError);
  EXPECT_THROW((void)parse_spec("v1 rcap=1e999999"), InvariantError);
}

// ---- the checker on the correct protocol ----

TEST(CheckRunner, FixedSeedBlockPassesClean) {
  const CampaignResult campaign = run_seed_range(0, 150, 0, CheckOptions{});
  EXPECT_EQ(campaign.seeds_run, 151u);
  for (const CheckResult& f : campaign.failures) {
    ADD_FAILURE() << "seed " << f.seed << ": " << f.message;
  }
  EXPECT_GT(campaign.quiescent_phases, 151u);  // multi-phase scenarios exist
  EXPECT_GT(campaign.packets_sent, 0u);
}

TEST(CheckRunner, CampaignIsIndependentOfWorkerCount) {
  const CampaignResult seq = run_seed_range(0, 40, 1, CheckOptions{});
  const CampaignResult par = run_seed_range(0, 40, 4, CheckOptions{});
  EXPECT_EQ(seq.events_processed, par.events_processed);
  EXPECT_EQ(seq.packets_sent, par.packets_sent);
  EXPECT_EQ(seq.quiescent_phases, par.quiescent_phases);
  EXPECT_EQ(seq.failures.size(), par.failures.size());
}

TEST(CheckRunner, HandBuiltScenarioReportsPhases) {
  Scenario sc;
  sc.topo.kind = TopoKind::Dumbbell;
  sc.topo.a = 2;
  sc.topo.router_capacity = 100.0;
  sc.events = {
      {0, EventKind::Join, 0, 0, 2, kRateInfinity},
      {0, EventKind::Join, 1, 1, 3, kRateInfinity},
      {milliseconds(5), EventKind::Leave, 0, -1, -1, kRateInfinity},
  };
  const CheckResult r = run_scenario(sc, CheckOptions{});
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.quiescent_phases, 2);
  EXPECT_EQ(r.schedule_events, 3u);
  EXPECT_GT(r.events_processed, 0u);
}

// ---- the checker on the broken protocol (fault injection) ----

CheckOptions fault_options() {
  CheckOptions opt;
  opt.fault_single_kick = true;
  return opt;
}

TEST(CheckFault, SingleKickMutationIsCaughtOnASmallSeedBlock) {
  const CampaignResult campaign = run_seed_range(0, 50, 0, fault_options());
  EXPECT_FALSE(campaign.ok())
      << "the single-kick mutation escaped 51 fuzzed schedules";
}

TEST(CheckFault, ShrinkerReducesAFailureToAHandfulOfEvents) {
  // First failing seed of the block — deliberately re-discovered here so
  // the test tracks generator changes instead of hardcoding one seed.
  const CampaignResult campaign = run_seed_range(0, 50, 0, fault_options());
  ASSERT_FALSE(campaign.ok());
  const std::uint64_t seed = campaign.failures.front().seed;

  ShrinkOptions sopt;
  sopt.check = fault_options();
  const ShrinkResult shrunk = shrink(generate_scenario(seed), sopt);

  EXPECT_FALSE(shrunk.failure.empty());
  EXPECT_LE(shrunk.minimal_events, 10u)
      << "shrinker left " << shrunk.minimal_events << " of "
      << shrunk.original_events << " events";
  EXPECT_LE(shrunk.minimal_events, shrunk.original_events);

  // The minimal scenario still fails with the fault armed...
  const CheckResult bad = run_scenario(shrunk.minimal, fault_options());
  EXPECT_FALSE(bad.ok);
  // ... still fails after a spec round-trip (replayability) ...
  const CheckResult replay =
      run_scenario(parse_spec(format_spec(shrunk.minimal)), fault_options());
  EXPECT_FALSE(replay.ok);
  // ... and passes on the correct protocol (the failure is the fault's).
  const CheckResult good = run_scenario(shrunk.minimal, CheckOptions{});
  EXPECT_TRUE(good.ok) << good.message;
}

TEST(CheckFault, ShrinkOfAPassingScenarioThrows) {
  Scenario sc;
  sc.topo.kind = TopoKind::Dumbbell;
  sc.topo.a = 2;
  sc.events = {{0, EventKind::Join, 0, 0, 2, kRateInfinity}};
  EXPECT_THROW((void)shrink(sc, ShrinkOptions{}), InvariantError);
}

// ---- reproducer emission ----

TEST(CheckEmission, CppSnippetMentionsEverythingNeededToReproduce) {
  Scenario sc;
  sc.topo.kind = TopoKind::ParkingLot;
  sc.topo.a = 4;
  sc.topo.router_capacity = 50.0;
  sc.events = {
      {0, EventKind::Join, 0, 0, 2, kRateInfinity},
      {10, EventKind::Change, 0, -1, -1, 12.5},
      {20, EventKind::Leave, 0, -1, -1, kRateInfinity},
  };
  const std::string code = cpp_snippet(sc, "Example", true);
  EXPECT_NE(code.find("TEST(BneckCheckRepro, Example)"), std::string::npos);
  EXPECT_NE(code.find("TopoKind::ParkingLot"), std::string::npos);
  EXPECT_NE(code.find("EventKind::Change"), std::string::npos);
  EXPECT_NE(code.find("opt.fault_single_kick = true;"), std::string::npos);
  EXPECT_NE(code.find("bneck_check --replay"), std::string::npos);
  // The embedded replay line is itself a parseable spec.
  const auto from = code.find("--replay \"") + 10;
  const auto to = code.find('"', from);
  const Scenario back = parse_spec(code.substr(from, to - from));
  EXPECT_EQ(back.events, sc.events);
  // Without the fault flag the options stay default.
  const std::string clean = cpp_snippet(sc, "Example", false);
  EXPECT_EQ(clean.find("fault_single_kick"), std::string::npos);
}

}  // namespace
}  // namespace bneck::check
