// Tests for the small-model checker (src/mc/): pinned exact bounds on
// the canonical 2-router/2-session join/leave instance, DPOR-vs-raw
// enumeration agreement, cross-validation against the fuzzer's
// canonical schedules, and the fault-injection witness hunt.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/bounds.hpp"
#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"
#include "core/bneck.hpp"
#include "core/maxmin.hpp"
#include "mc/explorer.hpp"
#include "net/routing.hpp"

namespace bneck::mc {
namespace {

using check::CheckOptions;
using check::CheckResult;
using check::EventKind;
using check::Scenario;

// The pinned small model: two line routers, two sessions joining in the
// same opening burst (opposite directions, so their control packets
// race at both routers), both leaving later.  Pinned as a spec string —
// not a generator seed — so the regression values below survive
// generator drift (generate_small_scenario(0) first produced it).
constexpr const char* kPinnedSpec =
    "v1 topo=line a=2 b=0 hpr=2 hosts=6 tseed=0 rcap=100 acap=50 wan=0 "
    "loss=0 seed=0 ev=j@0:s0:h0>h2:d96.426500552166971;"
    "j@0:s1:h3>h0:d66.81386364297731;l@31254:s1;l@50956:s0";

// Exact enumerated facts about kPinnedSpec, over EVERY delivery
// schedule (raw enumeration, no reductions — re-derived and re-checked
// by the tests below, then pinned as equalities).
constexpr TimeNs kPinnedMaxQuiescence = 79556;      // ns, worst schedule
constexpr std::uint64_t kPinnedMaxPackets = 17;     // worst schedule
constexpr std::uint64_t kPinnedQuiescentStates = 1; // all schedules agree

// A small model (generate_small_scenario(21) originally) on which the
// single-kick harness mutation produces an invariant violation on every
// canonical schedule; pinned as a spec for the witness-hunt test.
constexpr const char* kSingleKickSpec =
    "v1 topo=line a=2 b=0 hpr=2 hosts=6 tseed=0 rcap=200 acap=100 wan=0 "
    "loss=0 seed=21 ev=j@0:s0:h1>h2:dinf;"
    "j@4038:s1:h0>h1:dinf:w1.4878569188546868;j@8873:s2:h3>h1:dinf;"
    "j@40123:s3:h2>h1:d117.43183533083712:w1.7656079429989657";

McOptions raw_options() {
  McOptions o;
  o.dpor = false;
  o.state_merge = false;  // raw schedule enumeration, no reductions
  return o;
}

McOptions dpor_options() {
  return McOptions{};  // sleep sets + visited-state merging
}

/// The slack-free checker configuration the World runs under — the
/// right-hand side for comparing run_scenario against canonical_run.
CheckOptions world_equivalent_options() {
  CheckOptions opt;
  opt.audit_stride = 1;
  opt.quiescence_slack = 0.0;
  opt.packet_slack = 0.0;
  return opt;
}

TEST(McGenerator, SmallScenariosAreDeterministicAndValidated) {
  const Scenario a = check::generate_small_scenario(7);
  const Scenario b = check::generate_small_scenario(7);
  EXPECT_EQ(check::format_spec(a), check::format_spec(b));
  EXPECT_NE(check::format_spec(a),
            check::format_spec(check::generate_small_scenario(8)));

  check::SmallModelParams p;
  p.routers = 0;
  EXPECT_THROW((void)check::generate_small_scenario(0, p), InvariantError);
  p.routers = 2;
  p.sessions = 5;
  EXPECT_THROW((void)check::generate_small_scenario(0, p), InvariantError);
}

TEST(McPinned, ExhaustiveEnumerationPinsTheExactBounds) {
  const Scenario sc = check::parse_spec(kPinnedSpec);
  const McResult raw = explore(sc, raw_options());
  ASSERT_TRUE(raw.ok) << raw.message;
  ASSERT_TRUE(raw.complete);
  EXPECT_GT(raw.branch_points, 0u) << "instance has no delivery races";
  EXPECT_GT(raw.executions, 1u);

  // The checker-derived exact bounds, replacing the calibrated slack
  // envelope on this instance: over EVERY schedule, quiescence is
  // reached at exactly this worst-case instant with exactly this
  // worst-case packet count, and all schedules land in one final state.
  EXPECT_EQ(raw.max_quiescence_time, kPinnedMaxQuiescence);
  EXPECT_EQ(raw.max_total_packets, kPinnedMaxPackets);
  EXPECT_EQ(raw.quiescent_states, kPinnedQuiescentStates);
}

TEST(McPinned, DporReducesTheSearchAtLeastFiveFoldAndAgrees) {
  const Scenario sc = check::parse_spec(kPinnedSpec);
  const McResult raw = explore(sc, raw_options());
  const McResult red = explore(sc, dpor_options());
  ASSERT_TRUE(raw.ok) << raw.message;
  ASSERT_TRUE(red.ok) << red.message;
  ASSERT_TRUE(raw.complete && red.complete);

  // Identical verdicts: same reachable quiescent states, same exact
  // maxima (per-class invariance — trace-equivalent schedules share
  // timestamps and packet multisets, so the reduced search loses
  // nothing).
  EXPECT_EQ(red.quiescent_states, raw.quiescent_states);
  EXPECT_EQ(red.quiescent_fp_xor, raw.quiescent_fp_xor);
  EXPECT_EQ(red.max_quiescence_time, raw.max_quiescence_time);
  EXPECT_EQ(red.max_total_packets, raw.max_total_packets);

  // The acceptance gate: >= 5x state reduction on this instance.
  ASSERT_GT(red.states, 0u);
  const double ratio = static_cast<double>(raw.states) /
                       static_cast<double>(red.states);
  EXPECT_GE(ratio, 5.0) << "raw " << raw.states << " vs reduced "
                        << red.states;
  EXPECT_GT(red.sleep_skips, 0u);
}

TEST(McPinned, ExactBoundsSitFarInsideTheCalibratedEnvelope) {
  // Reconstructs the invariant checker's calibrated opening-phase
  // envelope (invariants.cpp recompute_phase_bounds) for the pinned
  // instance and shows the enumerated exact bounds beat it by an order
  // of magnitude — the proof replacing the slack.
  const Scenario sc = check::parse_spec(kPinnedSpec);
  const McResult raw = explore(sc, raw_options());
  ASSERT_TRUE(raw.ok && raw.complete);

  const net::Network net = check::build_network(sc.topo);
  const net::PathFinder paths(net);
  const core::BneckConfig cfg;
  std::vector<core::SessionSpec> specs;
  std::size_t hops = 0;
  TimeNs max_rtt = 0;
  TimeNs max_tx = 0;
  for (const auto& ev : sc.events) {
    if (ev.kind != EventKind::Join) continue;
    const auto p = paths.shortest_path(
        net.hosts()[static_cast<std::size_t>(ev.src_host)],
        net.hosts()[static_cast<std::size_t>(ev.dst_host)]);
    ASSERT_TRUE(p.has_value());
    TimeNs rtt = 0;
    for (const LinkId e : p->links) {
      const net::Link& l = net.link(e);
      const net::Link& rev = net.link(l.reverse);
      rtt += l.prop_delay + cfg.control_tx_time(l);
      rtt += rev.prop_delay + cfg.control_tx_time(rev);
      max_tx = std::max(
          {max_tx, cfg.control_tx_time(l), cfg.control_tx_time(rev)});
    }
    max_rtt = std::max(max_rtt, rtt);
    hops += p->links.size();
    specs.push_back(
        core::SessionSpec{SessionId{ev.session}, *p, ev.demand, ev.weight});
  }
  ASSERT_EQ(specs.size(), 2u);
  auto rates = core::solve_waterfill(net, specs).rates;
  std::sort(rates.begin(), rates.end());
  std::size_t levels = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (i == 0 || rates[i] != rates[i - 1]) ++levels;
  }

  const double span = check::kQuiescenceSlack *
                      static_cast<double>(levels + 2) *
                      (static_cast<double>(max_rtt) +
                       static_cast<double>(hops) *
                           static_cast<double>(max_tx));
  const TimeNs envelope = static_cast<TimeNs>(span) + microseconds(10);
  const auto packet_envelope = static_cast<std::uint64_t>(
      check::kPacketSlack * static_cast<double>(levels + 2) *
      static_cast<double>(std::max<std::size_t>(hops, 8)));

  // The exact bounds hold the envelope with >= 10x to spare.
  EXPECT_LT(raw.max_quiescence_time * 10, envelope);
  EXPECT_LT(raw.max_total_packets * 10, packet_envelope);
}

TEST(McAgreement, DporMatchesRawEnumerationAcrossSmallSeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Scenario sc = check::generate_small_scenario(seed);
    const McResult raw = explore(sc, raw_options());
    const McResult red = explore(sc, dpor_options());
    ASSERT_TRUE(raw.complete && red.complete) << "seed " << seed;
    EXPECT_EQ(raw.ok, red.ok) << "seed " << seed;
    EXPECT_EQ(raw.quiescent_states, red.quiescent_states)
        << "seed " << seed;
    EXPECT_EQ(raw.quiescent_fp_xor, red.quiescent_fp_xor)
        << "seed " << seed;
    EXPECT_EQ(raw.max_quiescence_time, red.max_quiescence_time)
        << "seed " << seed;
    EXPECT_EQ(raw.max_total_packets, red.max_total_packets)
        << "seed " << seed;
  }
}

TEST(McCrossValidation, CanonicalSchedulesAreVisitedStatesWithMatchingStats) {
  // Twenty small seeds: the production (canonical) schedule must be a
  // path in the model checker's state graph — every fingerprint it
  // passes through is a state the full enumeration visited — and its
  // end-of-run statistics must equal run_scenario under the same
  // slack-free checker options the World forces.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Scenario sc = check::generate_small_scenario(seed);

    const CanonicalRun canon = canonical_run(sc);
    ASSERT_TRUE(canon.ok) << "seed " << seed << ": " << canon.message;
    ASSERT_FALSE(canon.fingerprints.empty()) << "seed " << seed;

    McOptions o;
    o.dpor = false;       // merging only: every reachable state recorded
    o.record_visited = true;
    const McResult full = explore(sc, o);
    ASSERT_TRUE(full.ok && full.complete) << "seed " << seed;
    for (const std::uint64_t fp : canon.fingerprints) {
      EXPECT_TRUE(full.visited.count(fp) > 0)
          << "seed " << seed << ": canonical state " << fp
          << " never visited by the exhaustive exploration";
    }

    const CheckResult prod = run_scenario(sc, world_equivalent_options());
    ASSERT_TRUE(prod.ok) << "seed " << seed << ": " << prod.message;
    EXPECT_EQ(canon.packets_sent, prod.packets_sent) << "seed " << seed;
    EXPECT_EQ(canon.quiesced_at, prod.quiesced_at) << "seed " << seed;
    EXPECT_EQ(canon.quiescent_phases, prod.quiescent_phases)
        << "seed " << seed;
  }
}

TEST(McFault, SingleKickCaughtWithADeliveryMinimalSchedule) {
  const Scenario sc = check::parse_spec(kSingleKickSpec);

  // Sound protocol: every schedule of this instance passes.
  const McResult clean = explore(sc, dpor_options());
  ASSERT_TRUE(clean.ok) << clean.message;
  ASSERT_TRUE(clean.complete);

  // Armed mutation: the checker must find a violating schedule and,
  // under minimal_witness, the shortest one over ALL interleavings.
  McOptions fo = dpor_options();
  fo.world.fault_single_kick = true;
  fo.minimal_witness = true;
  const McResult bad = explore(sc, fo);
  ASSERT_FALSE(bad.ok) << "single-kick mutation escaped the enumeration";
  ASSERT_FALSE(bad.witness.empty());
  EXPECT_EQ(bad.witness_len, bad.witness.size());
  EXPECT_EQ(bad.witness_len, 39u);  // pinned minimal schedule length

  // The fuzzer-side pipeline on the same instance: fail, shrink,
  // replay the minimal reproducer.
  CheckOptions fuzz;
  fuzz.fault_single_kick = true;
  ASSERT_FALSE(run_scenario(sc, fuzz).ok);
  check::ShrinkOptions sopt;
  sopt.check = fuzz;
  const check::ShrinkResult shrunk = check::shrink(sc, sopt);
  ASSERT_FALSE(shrunk.failure.empty());
  ASSERT_LT(shrunk.minimal_events, shrunk.original_events);
  const CheckResult replay = run_scenario(shrunk.minimal, fuzz);
  ASSERT_FALSE(replay.ok);

  // The checker localizes the bug in fewer simulated deliveries than
  // the shrinker's candidate-replay search spends finding its
  // reproducer (each of its `runs` candidates is a full replay)...
  ASSERT_GT(shrunk.runs, 1u);
  EXPECT_LT(bad.transitions, shrunk.runs * replay.events_processed)
      << "the witness hunt should beat the shrinker's search cost";

  // ...and the checker's minimal schedule on the shrinker's own
  // reproducer is never longer than the shrinker's replay.  (Here the
  // enumeration proves them exactly equal: the delivery count to this
  // violation is interleaving-invariant, i.e. the shrinker's repro is
  // already delivery-minimal — a fact only the exhaustive search can
  // establish.)
  const McResult minimal = explore(shrunk.minimal, fo);
  ASSERT_FALSE(minimal.ok);
  ASSERT_TRUE(minimal.complete);
  EXPECT_LE(minimal.witness_len, replay.events_processed);
}

TEST(McWitness, ViolationStopsEagerlyWithoutMinimalWitnessHunt) {
  const Scenario sc = check::parse_spec(kSingleKickSpec);
  McOptions fo = dpor_options();
  fo.world.fault_single_kick = true;
  fo.minimal_witness = false;  // first counterexample wins
  const McResult bad = explore(sc, fo);
  ASSERT_FALSE(bad.ok);
  ASSERT_FALSE(bad.witness.empty());
  // The eager stop cannot find a SHORTER witness than the exhaustive
  // minimal hunt.
  EXPECT_GE(bad.witness_len, 39u);
}

}  // namespace
}  // namespace bneck::mc
