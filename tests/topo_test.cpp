// Tests for canonical topologies and the transit-stub generator.
#include <gtest/gtest.h>

#include <set>

#include "net/routing.hpp"
#include "topo/canonical.hpp"
#include "topo/transit_stub.hpp"

namespace bneck::topo {
namespace {

TEST(Canonical, LineStructure) {
  const auto n = make_line(4);
  EXPECT_EQ(n.router_count(), 4);
  EXPECT_EQ(n.host_count(), 4);
  n.validate();
  // 3 router pairs + 4 access pairs = 14 directed links.
  EXPECT_EQ(n.link_count(), 14);
}

TEST(Canonical, LineHostOrderFollowsRouters) {
  CanonicalOptions opt;
  opt.hosts_per_router = 2;
  const auto n = make_line(3, opt);
  ASSERT_EQ(n.host_count(), 6);
  for (int i = 0; i < 6; ++i) {
    const NodeId router = n.host_router(n.hosts()[static_cast<std::size_t>(i)]);
    EXPECT_EQ(router.value(), i / 2);  // routers were created first: ids 0..2
  }
}

TEST(Canonical, StarStructure) {
  const auto n = make_star(5);
  EXPECT_EQ(n.router_count(), 6);
  n.validate();
  const net::PathFinder pf(n);
  const auto p = pf.shortest_path(n.hosts()[1], n.hosts()[2]);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->links.size(), 4u);  // leaf -> hub -> leaf
}

TEST(Canonical, DumbbellStructure) {
  const auto n = make_dumbbell(3, 100.0);
  EXPECT_EQ(n.router_count(), 2);
  EXPECT_EQ(n.host_count(), 6);
  n.validate();
  // First 3 hosts on the left router, last 3 on the right.
  const NodeId left = n.host_router(n.hosts()[0]);
  const NodeId right = n.host_router(n.hosts()[3]);
  EXPECT_NE(left, right);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(n.host_router(n.hosts()[static_cast<std::size_t>(i)]), left);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(n.host_router(n.hosts()[static_cast<std::size_t>(i)]), right);
}

TEST(Canonical, TreeStructure) {
  const auto n = make_tree(3);
  EXPECT_EQ(n.router_count(), 15);  // complete binary tree depth 3
  EXPECT_EQ(n.host_count(), 8);     // hosts on the 8 leaves
  n.validate();
}

TEST(Canonical, TreeDepthZero) {
  const auto n = make_tree(0);
  EXPECT_EQ(n.router_count(), 1);
  EXPECT_EQ(n.host_count(), 1);
}

TEST(Canonical, RingStructure) {
  const auto n = make_ring(6);
  EXPECT_EQ(n.router_count(), 6);
  n.validate();
  // Ring: 6 router pairs + 6 access pairs = 24 directed links.
  EXPECT_EQ(n.link_count(), 24);
}

TEST(Canonical, ParkingLotPaths) {
  const auto n = make_parking_lot(3);
  EXPECT_EQ(n.router_count(), 4);
  EXPECT_EQ(n.host_count(), 4);
  const net::PathFinder pf(n);
  // The long session crosses all 3 router links.
  const auto p = pf.shortest_path(n.hosts().front(), n.hosts().back());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->links.size(), 5u);
}

TEST(Canonical, RandomIsConnected) {
  Rng rng(7);
  const auto n = make_random(50, 30, 25, rng);
  EXPECT_EQ(n.router_count(), 50);
  EXPECT_EQ(n.host_count(), 25);
  n.validate();
  const net::PathFinder pf(n);
  for (std::size_t i = 1; i < n.hosts().size(); ++i) {
    EXPECT_TRUE(pf.shortest_path(n.hosts()[0], n.hosts()[i]).has_value());
  }
}

TEST(Canonical, RandomDeterministicPerSeed) {
  Rng a(42), b(42);
  const auto na = make_random(20, 10, 5, a);
  const auto nb = make_random(20, 10, 5, b);
  EXPECT_EQ(na.link_count(), nb.link_count());
  for (std::int32_t i = 0; i < na.link_count(); ++i) {
    EXPECT_EQ(na.link(LinkId{i}).src, nb.link(LinkId{i}).src);
    EXPECT_EQ(na.link(LinkId{i}).dst, nb.link(LinkId{i}).dst);
  }
}

TEST(TransitStub, PresetRouterCounts) {
  EXPECT_EQ(small_params().total_routers(), 110);
  EXPECT_EQ(medium_params().total_routers(), 1100);
  EXPECT_EQ(big_params().total_routers(), 11000);
}

TEST(TransitStub, PresetByName) {
  EXPECT_EQ(params_by_name("small").total_routers(), 110);
  EXPECT_EQ(params_by_name("medium").total_routers(), 1100);
  EXPECT_EQ(params_by_name("big").total_routers(), 11000);
  EXPECT_THROW(params_by_name("huge"), InvariantError);
}

TEST(TransitStub, SmallBuildMatchesPreset) {
  auto p = small_params();
  p.hosts = 50;
  Rng rng(1);
  const auto n = make_transit_stub(p, rng);
  EXPECT_EQ(n.router_count(), 110);
  EXPECT_EQ(n.host_count(), 50);
  n.validate();
}

TEST(TransitStub, AllHostPairsConnected) {
  auto p = small_params();
  p.hosts = 20;
  Rng rng(3);
  const auto n = make_transit_stub(p, rng);
  const net::PathFinder pf(n);
  for (std::size_t i = 1; i < n.hosts().size(); ++i) {
    EXPECT_TRUE(pf.shortest_path(n.hosts()[0], n.hosts()[i]).has_value());
  }
}

TEST(TransitStub, CapacityClasses) {
  auto p = small_params();
  p.hosts = 10;
  Rng rng(5);
  const auto n = make_transit_stub(p, rng);
  std::set<double> caps;
  for (std::int32_t i = 0; i < n.link_count(); ++i) {
    caps.insert(n.link(LinkId{i}).capacity);
  }
  // Exactly the paper's three classes.
  EXPECT_EQ(caps, (std::set<double>{100.0, 200.0, 500.0}));
}

TEST(TransitStub, LanDelaysAreOneMicrosecond) {
  auto p = small_params();
  p.hosts = 5;
  p.delay_model = DelayModel::Lan;
  Rng rng(5);
  const auto n = make_transit_stub(p, rng);
  for (std::int32_t i = 0; i < n.link_count(); ++i) {
    EXPECT_EQ(n.link(LinkId{i}).prop_delay, microseconds(1));
  }
}

TEST(TransitStub, WanDelaysInRangeAndHostLinksLan) {
  auto p = small_params();
  p.hosts = 5;
  p.delay_model = DelayModel::Wan;
  Rng rng(5);
  const auto n = make_transit_stub(p, rng);
  bool saw_wan = false;
  for (std::int32_t i = 0; i < n.link_count(); ++i) {
    const auto& l = n.link(LinkId{i});
    if (n.is_host(l.src) || n.is_host(l.dst)) {
      EXPECT_EQ(l.prop_delay, microseconds(1));
    } else {
      EXPECT_GE(l.prop_delay, milliseconds(1));
      EXPECT_LE(l.prop_delay, milliseconds(10));
      saw_wan = true;
    }
  }
  EXPECT_TRUE(saw_wan);
}

TEST(TransitStub, HostsLandOnStubRouters) {
  auto p = small_params();
  p.hosts = 40;
  Rng rng(9);
  const auto n = make_transit_stub(p, rng);
  // Stub routers were created after the 10 transit routers, so their node
  // ids are >= 10 (hosts come last).
  for (const NodeId h : n.hosts()) {
    EXPECT_GE(n.host_router(h).value(), 10);
  }
}

TEST(TransitStub, MediumBuildIsSane) {
  auto p = medium_params();
  p.hosts = 100;
  Rng rng(11);
  const auto n = make_transit_stub(p, rng);
  EXPECT_EQ(n.router_count(), 1100);
  n.validate();
  const net::PathFinder pf(n);
  EXPECT_TRUE(pf.shortest_path(n.hosts().front(), n.hosts().back()).has_value());
}

TEST(TransitStub, DeterministicPerSeed) {
  auto p = small_params();
  p.hosts = 30;
  Rng a(123), b(123);
  const auto na = make_transit_stub(p, a);
  const auto nb = make_transit_stub(p, b);
  EXPECT_EQ(na.link_count(), nb.link_count());
  for (std::int32_t i = 0; i < na.link_count(); ++i) {
    EXPECT_EQ(na.link(LinkId{i}).prop_delay, nb.link(LinkId{i}).prop_delay);
  }
}

}  // namespace
}  // namespace bneck::topo
