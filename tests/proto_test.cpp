// Tests for the baseline protocols (BFYZ, CG, RCP) and the common
// cell-protocol machinery: convergence towards the max-min rates,
// non-quiescence (control traffic never stops), transient overshoot for
// BFYZ, and the adapter interface.
#include <gtest/gtest.h>

#include <cmath>

#include "core/maxmin.hpp"
#include "proto/bfyz.hpp"
#include "proto/bneck_driver.hpp"
#include "proto/cg.hpp"
#include "proto/rcp.hpp"
#include "topo/canonical.hpp"

namespace bneck::proto {
namespace {

using core::SessionSpec;
using net::Network;
using net::PathFinder;

net::Path path_between(const Network& n, NodeId a, NodeId b) {
  const PathFinder pf(n);
  auto p = pf.shortest_path(a, b);
  EXPECT_TRUE(p.has_value());
  return std::move(*p);
}

/// Advances the simulator until every active session's rate is within
/// tol (relative) of the centralized max-min rate, or until `horizon`.
/// Returns the convergence time (or nullopt).
std::optional<TimeNs> poll_convergence(sim::Simulator& sim,
                                       FairShareProtocol& proto,
                                       const Network& n, TimeNs horizon,
                                       double tol = 0.02,
                                       TimeNs step = microseconds(500)) {
  for (TimeNs t = sim.now() + step; t <= horizon; t += step) {
    sim.run_until(t);
    const auto specs = proto.active_specs();
    if (specs.empty()) continue;
    const auto sol = core::solve_waterfill(n, specs);
    bool ok = true;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const Rate a = proto.current_rate(specs[i].id);
      if (std::fabs(a - sol.rates[i]) > tol * std::max(1.0, sol.rates[i])) {
        ok = false;
        break;
      }
    }
    if (ok) return t;
  }
  return std::nullopt;
}

// ---- BFYZ ----

TEST(Bfyz, ConvergesOnSingleBottleneck) {
  const auto n = topo::make_dumbbell(4, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  for (int i = 0; i < 4; ++i) {
    proto.join(SessionId{i},
               path_between(n, n.hosts()[static_cast<std::size_t>(i)],
                            n.hosts()[static_cast<std::size_t>(i + 4)]),
               kRateInfinity);
  }
  const auto converged = poll_convergence(sim, proto, n, milliseconds(50));
  ASSERT_TRUE(converged.has_value());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(proto.current_rate(SessionId{i}), 25.0, 0.5);
  }
  proto.shutdown();
}

TEST(Bfyz, ConvergesOnTwoLevelChain) {
  Network n;
  const NodeId r0 = n.add_router();
  const NodeId r1 = n.add_router();
  const NodeId r2 = n.add_router();
  n.add_link_pair(r0, r1, 30.0, microseconds(1));
  n.add_link_pair(r1, r2, 100.0, microseconds(1));
  const NodeId a0 = n.add_host(r0, 1000.0, 0);
  const NodeId a1 = n.add_host(r0, 1000.0, 0);
  const NodeId b0 = n.add_host(r1, 1000.0, 0);
  const NodeId b1 = n.add_host(r1, 1000.0, 0);
  const NodeId b2 = n.add_host(r1, 1000.0, 0);
  const NodeId c0 = n.add_host(r2, 1000.0, 0);
  const NodeId c1 = n.add_host(r2, 1000.0, 0);
  const NodeId c2 = n.add_host(r2, 1000.0, 0);
  (void)b0;
  sim::Simulator sim;
  Bfyz proto(sim, n);
  proto.join(SessionId{0}, path_between(n, a0, b0), kRateInfinity);
  proto.join(SessionId{1}, path_between(n, a1, c0), kRateInfinity);
  proto.join(SessionId{2}, path_between(n, b1, c1), kRateInfinity);
  proto.join(SessionId{3}, path_between(n, b2, c2), kRateInfinity);
  const auto converged = poll_convergence(sim, proto, n, milliseconds(100));
  ASSERT_TRUE(converged.has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 15.0, 0.5);
  EXPECT_NEAR(proto.current_rate(SessionId{1}), 15.0, 0.5);
  EXPECT_NEAR(proto.current_rate(SessionId{2}), 42.5, 1.0);
  EXPECT_NEAR(proto.current_rate(SessionId{3}), 42.5, 1.0);
  proto.shutdown();
}

TEST(Bfyz, HonorsDemandCaps) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]), 20.0);
  proto.join(SessionId{1}, path_between(n, n.hosts()[1], n.hosts()[3]),
             kRateInfinity);
  const auto converged = poll_convergence(sim, proto, n, milliseconds(50));
  ASSERT_TRUE(converged.has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 20.0, 0.5);
  EXPECT_NEAR(proto.current_rate(SessionId{1}), 80.0, 1.0);
  proto.shutdown();
}

TEST(Bfyz, IsNotQuiescent) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  proto.join(SessionId{1}, path_between(n, n.hosts()[1], n.hosts()[3]),
             kRateInfinity);
  ASSERT_TRUE(poll_convergence(sim, proto, n, milliseconds(50)).has_value());
  // Converged -- but the cells keep flowing.
  const auto before = proto.packets_sent();
  sim.run_until(sim.now() + milliseconds(10));
  EXPECT_GT(proto.packets_sent(), before + 20);
  proto.shutdown();
}

TEST(Bfyz, ShutdownDrainsEventQueue) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  sim.run_until(milliseconds(5));
  proto.shutdown();
  sim.run_until_idle();  // must terminate
  EXPECT_TRUE(sim.idle());
}

TEST(Bfyz, OvershootsBeforeConvergence) {
  // A link advertises its full capacity until told otherwise, so an
  // early session transiently holds more than its final share --
  // exactly the overestimation Fig. 7 shows for BFYZ.
  const auto n = topo::make_dumbbell(4, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  // Session 0 joins alone and grabs ~100 Mbps.
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[4]),
             kRateInfinity);
  ASSERT_TRUE(poll_convergence(sim, proto, n, milliseconds(50)).has_value());
  EXPECT_GT(proto.current_rate(SessionId{0}), 90.0);
  // Three more join: session 0's held rate (100) now exceeds its final
  // share (25) until the next cells bring it down.
  for (int i = 1; i < 4; ++i) {
    proto.join(SessionId{i},
               path_between(n, n.hosts()[static_cast<std::size_t>(i)],
                            n.hosts()[static_cast<std::size_t>(i + 4)]),
               kRateInfinity);
  }
  EXPECT_GT(proto.current_rate(SessionId{0}), 25.0 + 1.0);  // overshoot now
  ASSERT_TRUE(poll_convergence(sim, proto, n, milliseconds(50)).has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 25.0, 0.5);
  proto.shutdown();
}

TEST(Bfyz, LeaveFreesBandwidth) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  proto.join(SessionId{1}, path_between(n, n.hosts()[1], n.hosts()[3]),
             kRateInfinity);
  ASSERT_TRUE(poll_convergence(sim, proto, n, milliseconds(50)).has_value());
  proto.leave(SessionId{1});
  ASSERT_TRUE(poll_convergence(sim, proto, n, sim.now() + milliseconds(50))
                  .has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 100.0, 1.0);
  EXPECT_EQ(proto.current_rate(SessionId{1}), 0.0);
  proto.shutdown();
}

// ---- CG ----

// ---- weighted baselines (per-unit-weight offers) ----
//
// poll_convergence validates against solve_waterfill on active_specs(),
// which carries the weights — so these also pin the weighted solver
// agreement end to end.

TEST(Bfyz, ConvergesWithWeights) {
  // Weights 1 and 3 over a 100 Mbps bottleneck: 25 / 75.
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity, 1.0);
  proto.join(SessionId{1}, path_between(n, n.hosts()[1], n.hosts()[3]),
             kRateInfinity, 3.0);
  ASSERT_TRUE(poll_convergence(sim, proto, n, milliseconds(50)).has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 25.0, 0.5);
  EXPECT_NEAR(proto.current_rate(SessionId{1}), 75.0, 1.0);
  proto.shutdown();
}

TEST(CobbGouda, ConvergesWithWeights) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  CobbGouda proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity, 1.0);
  proto.join(SessionId{1}, path_between(n, n.hosts()[1], n.hosts()[3]),
             kRateInfinity, 3.0);
  ASSERT_TRUE(
      poll_convergence(sim, proto, n, milliseconds(200), 0.05).has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 25.0, 2.0);
  EXPECT_NEAR(proto.current_rate(SessionId{1}), 75.0, 4.0);
  proto.shutdown();
}

TEST(Rcp, ConvergesWithWeights) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Rcp proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity, 1.0);
  proto.join(SessionId{1}, path_between(n, n.hosts()[1], n.hosts()[3]),
             kRateInfinity, 3.0);
  ASSERT_TRUE(
      poll_convergence(sim, proto, n, milliseconds(300), 0.05).has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 25.0, 2.0);
  EXPECT_NEAR(proto.current_rate(SessionId{1}), 75.0, 4.0);
  proto.shutdown();
}

TEST(CobbGouda, LightWeightSessionStillFillsTheLink) {
  // One session with weight 0.25: its fair rate is the full capacity, so
  // the per-unit-weight offer must be allowed to exceed the rate-space
  // capacity (regression: the old clamp at C pinned the session at C/4).
  const auto n = topo::make_dumbbell(1, 100.0);
  sim::Simulator sim;
  CobbGouda proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[1]),
             kRateInfinity, 0.25);
  ASSERT_TRUE(
      poll_convergence(sim, proto, n, milliseconds(300), 0.05).has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 100.0, 5.0);
  proto.shutdown();
}

TEST(Rcp, LightWeightSessionStillFillsTheLink) {
  const auto n = topo::make_dumbbell(1, 100.0);
  sim::Simulator sim;
  Rcp proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[1]),
             kRateInfinity, 0.25);
  ASSERT_TRUE(
      poll_convergence(sim, proto, n, milliseconds(500), 0.05).has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 100.0, 5.0);
  proto.shutdown();
}

TEST(CobbGouda, ConvergesOnSmallInstance) {
  const auto n = topo::make_dumbbell(3, 90.0);
  sim::Simulator sim;
  CobbGouda proto(sim, n);
  for (int i = 0; i < 3; ++i) {
    proto.join(SessionId{i},
               path_between(n, n.hosts()[static_cast<std::size_t>(i)],
                            n.hosts()[static_cast<std::size_t>(i + 3)]),
               kRateInfinity);
  }
  // CG is slow: allow a generous horizon and tolerance.
  const auto converged =
      poll_convergence(sim, proto, n, milliseconds(200), 0.05);
  ASSERT_TRUE(converged.has_value());
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(proto.current_rate(SessionId{i}), 30.0, 2.0);
  }
  proto.shutdown();
}

TEST(CobbGouda, IsNotQuiescent) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  CobbGouda proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  sim.run_until(milliseconds(20));
  const auto before = proto.packets_sent();
  sim.run_until(milliseconds(30));
  EXPECT_GT(proto.packets_sent(), before);
  proto.shutdown();
}

TEST(CobbGouda, KeepsConstantStateOnly) {
  // Structural property: CG has no per-session container; we can only
  // check behaviour -- rates still approach fairness after a leave even
  // though the link kept no record of the departed session.
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  CobbGouda proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  proto.join(SessionId{1}, path_between(n, n.hosts()[1], n.hosts()[3]),
             kRateInfinity);
  ASSERT_TRUE(
      poll_convergence(sim, proto, n, milliseconds(200), 0.05).has_value());
  proto.leave(SessionId{1});
  ASSERT_TRUE(poll_convergence(sim, proto, n, sim.now() + milliseconds(200),
                               0.05)
                  .has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 100.0, 5.0);
  proto.shutdown();
}

// ---- RCP ----

TEST(Rcp, ConvergesOnSingleBottleneck) {
  const auto n = topo::make_dumbbell(4, 100.0);
  sim::Simulator sim;
  Rcp proto(sim, n);
  for (int i = 0; i < 4; ++i) {
    proto.join(SessionId{i},
               path_between(n, n.hosts()[static_cast<std::size_t>(i)],
                            n.hosts()[static_cast<std::size_t>(i + 4)]),
               kRateInfinity);
  }
  const auto converged =
      poll_convergence(sim, proto, n, milliseconds(300), 0.05);
  ASSERT_TRUE(converged.has_value());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(proto.current_rate(SessionId{i}), 25.0, 2.0);
  }
  proto.shutdown();
}

TEST(Rcp, StartsAtLineRate) {
  // RCP's defining transient: the first session is offered the full
  // capacity immediately (and is throttled later as load appears).
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Rcp proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  sim.run_until(milliseconds(1));
  EXPECT_GT(proto.current_rate(SessionId{0}), 90.0);
  proto.shutdown();
}

TEST(Rcp, IsNotQuiescent) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Rcp proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  sim.run_until(milliseconds(50));
  const auto before = proto.packets_sent();
  sim.run_until(milliseconds(60));
  EXPECT_GT(proto.packets_sent(), before);
  proto.shutdown();
}

// ---- common cell machinery ----

TEST(CellProtocol, PacketListenerCountsEveryCrossing) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  std::uint64_t listened = 0;
  proto.set_packet_listener([&](TimeNs) { ++listened; });
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  sim.run_until(milliseconds(5));
  EXPECT_EQ(listened, proto.packets_sent());
  EXPECT_GT(listened, 0u);
  proto.shutdown();
}

TEST(CellProtocol, ChangeAdjustsDemand) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  ASSERT_TRUE(poll_convergence(sim, proto, n, milliseconds(50)).has_value());
  proto.change(SessionId{0}, 10.0);
  ASSERT_TRUE(poll_convergence(sim, proto, n, sim.now() + milliseconds(50))
                  .has_value());
  EXPECT_NEAR(proto.current_rate(SessionId{0}), 10.0, 0.5);
  proto.shutdown();
}

TEST(CellProtocol, DuplicateJoinThrows) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  proto.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  EXPECT_THROW(proto.join(SessionId{0},
                          path_between(n, n.hosts()[1], n.hosts()[3]),
                          kRateInfinity),
               InvariantError);
  proto.shutdown();
}

TEST(CellProtocol, LeaveInactiveThrows) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Bfyz proto(sim, n);
  EXPECT_THROW(proto.leave(SessionId{0}), InvariantError);
}

TEST(CellProtocol, ActiveSpecsTracksMembership) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  Rcp proto(sim, n);
  proto.join(SessionId{3}, path_between(n, n.hosts()[0], n.hosts()[2]), 42.0);
  proto.join(SessionId{1}, path_between(n, n.hosts()[1], n.hosts()[3]),
             kRateInfinity);
  auto specs = proto.active_specs();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].id, SessionId{1});  // ascending order
  EXPECT_EQ(specs[1].id, SessionId{3});
  EXPECT_DOUBLE_EQ(specs[1].demand, 42.0);
  proto.leave(SessionId{1});
  EXPECT_EQ(proto.active_specs().size(), 1u);
  proto.shutdown();
}

// ---- BneckDriver adapter ----

TEST(BneckDriver, DrivesBneckThroughCommonInterface) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  BneckDriver driver(sim, n);
  EXPECT_EQ(driver.name(), "B-Neck");
  driver.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
              kRateInfinity);
  driver.join(SessionId{1}, path_between(n, n.hosts()[1], n.hosts()[3]),
              kRateInfinity);
  sim.run_until_idle();  // B-Neck quiesces on its own
  EXPECT_NEAR(driver.current_rate(SessionId{0}), 50.0, 1e-6);
  EXPECT_NEAR(driver.current_rate(SessionId{1}), 50.0, 1e-6);
  EXPECT_GT(driver.packets_sent(), 0u);
}

TEST(BneckDriver, PacketListenerAndQuiescence) {
  const auto n = topo::make_dumbbell(2, 100.0);
  sim::Simulator sim;
  BneckDriver driver(sim, n);
  std::uint64_t listened = 0;
  driver.set_packet_listener([&](TimeNs) { ++listened; });
  driver.join(SessionId{0}, path_between(n, n.hosts()[0], n.hosts()[2]),
              kRateInfinity);
  sim.run_until_idle();
  EXPECT_EQ(listened, driver.packets_sent());
  // Quiescent: no more packets ever.
  const auto frozen = listened;
  sim.run_until(sim.now() + seconds(1));
  EXPECT_EQ(listened, frozen);
}

TEST(BneckDriver, ConvergesFasterThanBfyzOnSameWorkload) {
  // The paper's headline comparison (Fig. 7): B-Neck reaches the exact
  // rates before BFYZ does on an identical workload.
  const auto n = topo::make_dumbbell(8, 100.0);
  const auto run = [&n](FairShareProtocol& p, sim::Simulator& sim) {
    for (int i = 0; i < 8; ++i) {
      p.join(SessionId{i},
             path_between(n, n.hosts()[static_cast<std::size_t>(i)],
                          n.hosts()[static_cast<std::size_t>(i + 8)]),
             kRateInfinity);
    }
    const auto t = poll_convergence(sim, p, n, milliseconds(100), 0.001,
                                    microseconds(50));
    p.shutdown();
    return t;
  };
  sim::Simulator sim_b;
  BneckDriver bneck(sim_b, n);
  const auto t_bneck = run(bneck, sim_b);
  sim::Simulator sim_f;
  Bfyz bfyz(sim_f, n);
  const auto t_bfyz = run(bfyz, sim_f);
  ASSERT_TRUE(t_bneck.has_value());
  ASSERT_TRUE(t_bfyz.has_value());
  EXPECT_LT(*t_bneck, *t_bfyz);
}

}  // namespace
}  // namespace bneck::proto
