// SimTransport equivalence: the transport-seam refactor must not move
// a single byte of observable behavior.
//
// Three scenarios pinned from the pre-seam tree (each trace captured at
// the commit before src/transport existed, when BneckProtocol talked to
// the Simulator directly):
//
//   * the PR 4 unweighted 94-line golden trace (also pinned, against
//     the same constant, in weighted_protocol_test.cpp),
//   * a weighted variant (non-uniform weights, a weight change),
//   * a shared-access variant (three sessions on one source host).
//
// Each runs twice: through the implicit constructor (the protocol owns
// its SimTransport — every pre-seam caller compiles into this path) and
// through the seam constructor with an externally owned SimTransport.
// All six traces must equal the pre-seam bytes exactly: same packets,
// same order, same timestamps, same loss-RNG draws.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/bneck.hpp"
#include "core/text_trace.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"
#include "topo/canonical.hpp"
#include "transport/sim_transport.hpp"

namespace bneck::core {
namespace {

constexpr const char kGoldenUnweightedTrace[] =
    R"trace(0ns  Join  s=0  link=6  hop=1  lambda=60.00 Mbps  eta=6
0ns  Join  s=1  link=8  hop=1  lambda=45.00 Mbps  eta=8
9.533us  Join  s=0  link=0  hop=2  lambda=60.00 Mbps  eta=6
9.533us  Join  s=1  link=2  hop=2  lambda=45.00 Mbps  eta=8
15.653us  Join  s=0  link=2  hop=3  lambda=50.00 Mbps  eta=2
15.653us  Join  s=1  link=11  hop=3  lambda=45.00 Mbps  eta=8
21.773us  Join  s=0  link=4  hop=4  lambda=50.00 Mbps  eta=2
25.186us  Response  s=1  link=10  hop=2  tau=RESPONSE  lambda=45.00 Mbps  eta=8
27.893us  Join  s=0  link=13  hop=5  lambda=50.00 Mbps  eta=2
34.719us  Response  s=1  link=3  hop=1  tau=RESPONSE  lambda=45.00 Mbps  eta=8
37.426us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=50.00 Mbps  eta=2
40.839us  Response  s=1  link=9  hop=0  tau=RESPONSE  lambda=45.00 Mbps  eta=8
46.959us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=50.00 Mbps  eta=2
50.372us  API.Rate  s=1  rate=45.00 Mbps
50.372us  SetBottleneck  s=1  link=8  hop=1  beta=true
53.079us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=50.00 Mbps  eta=2
59.199us  Response  s=0  link=1  hop=1  tau=RESPONSE  lambda=50.00 Mbps  eta=2
59.905us  Update  s=0  link=1  hop=1
59.905us  SetBottleneck  s=1  link=2  hop=2  beta=true
65.319us  Response  s=0  link=7  hop=0  tau=RESPONSE  lambda=50.00 Mbps  eta=2
66.025us  SetBottleneck  s=1  link=11  hop=3  beta=true
70.439us  Update  s=0  link=7  hop=0
83.385us  Probe  s=0  link=6  hop=1  lambda=60.00 Mbps  eta=6
92.918us  Probe  s=0  link=0  hop=2  lambda=60.00 Mbps  eta=6
99.038us  Probe  s=0  link=2  hop=3  lambda=55.00 Mbps  eta=2
105.158us  Probe  s=0  link=4  hop=4  lambda=55.00 Mbps  eta=2
111.278us  Probe  s=0  link=13  hop=5  lambda=55.00 Mbps  eta=2
120.811us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=55.00 Mbps  eta=2
130.344us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=55.00 Mbps  eta=2
136.464us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=55.00 Mbps  eta=2
142.584us  Response  s=0  link=1  hop=1  tau=BOTTLENECK  lambda=55.00 Mbps  eta=2
148.704us  Response  s=0  link=7  hop=0  tau=BOTTLENECK  lambda=55.00 Mbps  eta=2
158.237us  API.Rate  s=0  rate=55.00 Mbps
158.237us  SetBottleneck  s=0  link=6  hop=1  beta=false
167.770us  SetBottleneck  s=0  link=0  hop=2  beta=false
173.890us  SetBottleneck  s=0  link=2  hop=3  beta=true
180.010us  SetBottleneck  s=0  link=4  hop=4  beta=true
186.130us  SetBottleneck  s=0  link=13  hop=5  beta=true
195.663us  Join  s=2  link=10  hop=1  lambda=60.00 Mbps  eta=10
205.196us  Join  s=2  link=3  hop=2  lambda=60.00 Mbps  eta=10
211.316us  Join  s=2  link=1  hop=3  lambda=60.00 Mbps  eta=10
217.436us  Join  s=2  link=7  hop=4  lambda=60.00 Mbps  eta=10
226.969us  Response  s=2  link=6  hop=3  tau=RESPONSE  lambda=60.00 Mbps  eta=10
236.502us  Response  s=2  link=0  hop=2  tau=BOTTLENECK  lambda=60.00 Mbps  eta=7
242.622us  Response  s=2  link=2  hop=1  tau=BOTTLENECK  lambda=60.00 Mbps  eta=7
248.742us  Response  s=2  link=11  hop=0  tau=BOTTLENECK  lambda=60.00 Mbps  eta=7
258.275us  API.Rate  s=2  rate=60.00 Mbps
258.275us  SetBottleneck  s=2  link=10  hop=1  beta=true
267.808us  SetBottleneck  s=2  link=3  hop=2  beta=true
273.928us  SetBottleneck  s=2  link=1  hop=3  beta=true
280.048us  SetBottleneck  s=2  link=7  hop=4  beta=true
289.581us  Probe  s=1  link=8  hop=1  lambda=10.00 Mbps  eta=8
299.114us  Update  s=0  link=1  hop=1
299.114us  Probe  s=1  link=2  hop=2  lambda=10.00 Mbps  eta=8
305.234us  Update  s=0  link=7  hop=0
305.234us  Probe  s=1  link=11  hop=3  lambda=10.00 Mbps  eta=8
314.767us  Probe  s=0  link=6  hop=1  lambda=60.00 Mbps  eta=6
314.767us  Response  s=1  link=10  hop=2  tau=RESPONSE  lambda=10.00 Mbps  eta=8
324.300us  Probe  s=0  link=0  hop=2  lambda=60.00 Mbps  eta=6
324.300us  Response  s=1  link=3  hop=1  tau=RESPONSE  lambda=10.00 Mbps  eta=8
330.420us  Probe  s=0  link=2  hop=3  lambda=50.00 Mbps  eta=2
330.420us  Response  s=1  link=9  hop=0  tau=RESPONSE  lambda=10.00 Mbps  eta=8
336.540us  Probe  s=0  link=4  hop=4  lambda=50.00 Mbps  eta=2
339.953us  API.Rate  s=1  rate=10.00 Mbps
339.953us  SetBottleneck  s=1  link=8  hop=1  beta=true
342.660us  Probe  s=0  link=13  hop=5  lambda=50.00 Mbps  eta=2
349.486us  SetBottleneck  s=1  link=2  hop=2  beta=true
352.193us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=50.00 Mbps  eta=2
355.606us  SetBottleneck  s=1  link=11  hop=3  beta=true
361.726us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=50.00 Mbps  eta=2
367.846us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=50.00 Mbps  eta=2
373.966us  Response  s=0  link=1  hop=1  tau=UPDATE  lambda=50.00 Mbps  eta=2
380.086us  Response  s=0  link=7  hop=0  tau=UPDATE  lambda=50.00 Mbps  eta=2
389.619us  Probe  s=0  link=6  hop=1  lambda=60.00 Mbps  eta=6
399.152us  Probe  s=0  link=0  hop=2  lambda=60.00 Mbps  eta=6
405.272us  Probe  s=0  link=2  hop=3  lambda=60.00 Mbps  eta=6
411.392us  Probe  s=0  link=4  hop=4  lambda=60.00 Mbps  eta=6
417.512us  Probe  s=0  link=13  hop=5  lambda=60.00 Mbps  eta=6
427.045us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=60.00 Mbps  eta=6
436.578us  Response  s=0  link=5  hop=3  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13
442.698us  Response  s=0  link=3  hop=2  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13
448.818us  Response  s=0  link=1  hop=1  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13
454.938us  Response  s=0  link=7  hop=0  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13
464.471us  API.Rate  s=0  rate=60.00 Mbps
464.471us  SetBottleneck  s=0  link=6  hop=1  beta=true
474.004us  SetBottleneck  s=0  link=0  hop=2  beta=true
480.124us  SetBottleneck  s=0  link=2  hop=3  beta=true
486.244us  SetBottleneck  s=0  link=4  hop=4  beta=true
492.364us  SetBottleneck  s=0  link=13  hop=5  beta=true
501.897us  Leave  s=0  link=6  hop=1
511.430us  Leave  s=0  link=0  hop=2
517.550us  Leave  s=0  link=2  hop=3
523.670us  Leave  s=0  link=4  hop=4
529.790us  Leave  s=0  link=13  hop=5
)trace";

constexpr const char kGoldenWeightedTrace[] =
    R"trace(0ns  Join  s=0  link=6  hop=1  lambda=30.00 Mbps  eta=6
0ns  Join  s=1  link=8  hop=1  lambda=90.00 Mbps  eta=8
9.533us  Join  s=0  link=0  hop=2  lambda=30.00 Mbps  eta=6
9.533us  Join  s=1  link=2  hop=2  lambda=90.00 Mbps  eta=8
15.653us  Join  s=0  link=2  hop=3  lambda=30.00 Mbps  eta=6
15.653us  Join  s=1  link=11  hop=3  lambda=90.00 Mbps  eta=8
21.773us  Join  s=0  link=4  hop=4  lambda=30.00 Mbps  eta=6
25.186us  Response  s=1  link=10  hop=2  tau=RESPONSE  lambda=90.00 Mbps  eta=8
27.893us  Join  s=0  link=13  hop=5  lambda=30.00 Mbps  eta=6
34.719us  Response  s=1  link=3  hop=1  tau=RESPONSE  lambda=90.00 Mbps  eta=8
37.426us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=30.00 Mbps  eta=6
40.839us  Response  s=1  link=9  hop=0  tau=UPDATE  lambda=90.00 Mbps  eta=8
46.959us  Response  s=0  link=5  hop=3  tau=BOTTLENECK  lambda=30.00 Mbps  eta=13
50.372us  Probe  s=1  link=8  hop=1  lambda=90.00 Mbps  eta=8
53.079us  Response  s=0  link=3  hop=2  tau=BOTTLENECK  lambda=30.00 Mbps  eta=13
59.199us  Response  s=0  link=1  hop=1  tau=BOTTLENECK  lambda=30.00 Mbps  eta=13
59.905us  Probe  s=1  link=2  hop=2  lambda=40.00 Mbps  eta=2
65.319us  Response  s=0  link=7  hop=0  tau=BOTTLENECK  lambda=30.00 Mbps  eta=13
66.025us  Probe  s=1  link=11  hop=3  lambda=40.00 Mbps  eta=2
74.852us  API.Rate  s=0  rate=60.00 Mbps
74.852us  SetBottleneck  s=0  link=6  hop=1  beta=true
75.558us  Response  s=1  link=10  hop=2  tau=RESPONSE  lambda=40.00 Mbps  eta=2
84.385us  SetBottleneck  s=0  link=0  hop=2  beta=true
85.091us  Response  s=1  link=3  hop=1  tau=RESPONSE  lambda=40.00 Mbps  eta=2
90.505us  SetBottleneck  s=0  link=2  hop=3  beta=true
91.211us  Response  s=1  link=9  hop=0  tau=UPDATE  lambda=40.00 Mbps  eta=2
96.625us  SetBottleneck  s=0  link=4  hop=4  beta=true
100.744us  Probe  s=1  link=8  hop=1  lambda=90.00 Mbps  eta=8
102.745us  SetBottleneck  s=0  link=13  hop=5  beta=true
110.277us  Probe  s=1  link=2  hop=2  lambda=80.00 Mbps  eta=2
116.397us  Probe  s=1  link=11  hop=3  lambda=80.00 Mbps  eta=2
125.930us  Response  s=1  link=10  hop=2  tau=RESPONSE  lambda=80.00 Mbps  eta=2
135.463us  Response  s=1  link=3  hop=1  tau=RESPONSE  lambda=80.00 Mbps  eta=2
141.583us  Response  s=1  link=9  hop=0  tau=BOTTLENECK  lambda=80.00 Mbps  eta=2
151.116us  API.Rate  s=1  rate=40.00 Mbps
151.116us  SetBottleneck  s=1  link=8  hop=1  beta=false
160.649us  SetBottleneck  s=1  link=2  hop=2  beta=true
166.769us  SetBottleneck  s=1  link=11  hop=3  beta=true
176.302us  Join  s=2  link=10  hop=1  lambda=20.00 Mbps  eta=10
185.835us  Join  s=2  link=3  hop=2  lambda=20.00 Mbps  eta=10
191.955us  Join  s=2  link=1  hop=3  lambda=20.00 Mbps  eta=10
198.075us  Join  s=2  link=7  hop=4  lambda=20.00 Mbps  eta=10
207.608us  Response  s=2  link=6  hop=3  tau=RESPONSE  lambda=20.00 Mbps  eta=10
217.141us  Response  s=2  link=0  hop=2  tau=BOTTLENECK  lambda=20.00 Mbps  eta=7
223.261us  Response  s=2  link=2  hop=1  tau=BOTTLENECK  lambda=20.00 Mbps  eta=7
229.381us  Response  s=2  link=11  hop=0  tau=BOTTLENECK  lambda=20.00 Mbps  eta=7
238.914us  API.Rate  s=2  rate=60.00 Mbps
238.914us  SetBottleneck  s=2  link=10  hop=1  beta=true
248.447us  SetBottleneck  s=2  link=3  hop=2  beta=true
254.567us  SetBottleneck  s=2  link=1  hop=3  beta=true
260.687us  SetBottleneck  s=2  link=7  hop=4  beta=true
270.220us  Probe  s=1  link=8  hop=1  lambda=6.67 Mbps  eta=8
279.753us  Update  s=0  link=1  hop=1
279.753us  Probe  s=1  link=2  hop=2  lambda=6.67 Mbps  eta=8
285.873us  Update  s=0  link=7  hop=0
285.873us  Probe  s=1  link=11  hop=3  lambda=6.67 Mbps  eta=8
295.406us  Probe  s=0  link=6  hop=1  lambda=30.00 Mbps  eta=6
295.406us  Response  s=1  link=10  hop=2  tau=RESPONSE  lambda=6.67 Mbps  eta=8
304.939us  Probe  s=0  link=0  hop=2  lambda=30.00 Mbps  eta=6
304.939us  Response  s=1  link=3  hop=1  tau=RESPONSE  lambda=6.67 Mbps  eta=8
311.059us  Probe  s=0  link=2  hop=3  lambda=28.57 Mbps  eta=2
311.059us  Response  s=1  link=9  hop=0  tau=RESPONSE  lambda=6.67 Mbps  eta=8
317.179us  Probe  s=0  link=4  hop=4  lambda=28.57 Mbps  eta=2
320.592us  API.Rate  s=1  rate=10.00 Mbps
320.592us  SetBottleneck  s=1  link=8  hop=1  beta=true
323.299us  Probe  s=0  link=13  hop=5  lambda=28.57 Mbps  eta=2
330.125us  SetBottleneck  s=1  link=2  hop=2  beta=true
332.832us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=28.57 Mbps  eta=2
336.245us  SetBottleneck  s=1  link=11  hop=3  beta=true
342.365us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=28.57 Mbps  eta=2
348.485us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=28.57 Mbps  eta=2
354.605us  Response  s=0  link=1  hop=1  tau=UPDATE  lambda=28.57 Mbps  eta=2
360.725us  Response  s=0  link=7  hop=0  tau=UPDATE  lambda=28.57 Mbps  eta=2
370.258us  Probe  s=0  link=6  hop=1  lambda=30.00 Mbps  eta=6
379.791us  Probe  s=0  link=0  hop=2  lambda=30.00 Mbps  eta=6
385.911us  Probe  s=0  link=2  hop=3  lambda=30.00 Mbps  eta=6
392.031us  Probe  s=0  link=4  hop=4  lambda=30.00 Mbps  eta=6
398.151us  Probe  s=0  link=13  hop=5  lambda=30.00 Mbps  eta=6
407.684us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=30.00 Mbps  eta=6
417.217us  Response  s=0  link=5  hop=3  tau=BOTTLENECK  lambda=30.00 Mbps  eta=13
423.337us  Response  s=0  link=3  hop=2  tau=BOTTLENECK  lambda=30.00 Mbps  eta=13
429.457us  Response  s=0  link=1  hop=1  tau=BOTTLENECK  lambda=30.00 Mbps  eta=13
435.577us  Response  s=0  link=7  hop=0  tau=BOTTLENECK  lambda=30.00 Mbps  eta=13
445.110us  API.Rate  s=0  rate=60.00 Mbps
445.110us  SetBottleneck  s=0  link=6  hop=1  beta=true
454.643us  SetBottleneck  s=0  link=0  hop=2  beta=true
460.763us  SetBottleneck  s=0  link=2  hop=3  beta=true
466.883us  SetBottleneck  s=0  link=4  hop=4  beta=true
473.003us  SetBottleneck  s=0  link=13  hop=5  beta=true
482.536us  Leave  s=0  link=6  hop=1
492.069us  Leave  s=0  link=0  hop=2
498.189us  Leave  s=0  link=2  hop=3
504.309us  Leave  s=0  link=4  hop=4
510.429us  Leave  s=0  link=13  hop=5
)trace";

constexpr const char kGoldenSharedTrace[] =
    R"trace(0ns  Join  s=0  link=6  hop=1  lambda=60.00 Mbps  eta=6
0ns  Join  s=1  link=6  hop=1  lambda=30.00 Mbps  eta=6
9.533us  Join  s=0  link=0  hop=2  lambda=60.00 Mbps  eta=6
15.653us  Join  s=0  link=2  hop=3  lambda=60.00 Mbps  eta=6
18.066us  Join  s=1  link=0  hop=2  lambda=30.00 Mbps  eta=6
21.773us  Join  s=0  link=4  hop=4  lambda=60.00 Mbps  eta=6
24.186us  Join  s=1  link=2  hop=3  lambda=30.00 Mbps  eta=6
27.893us  Join  s=0  link=13  hop=5  lambda=60.00 Mbps  eta=6
30.306us  Join  s=1  link=11  hop=4  lambda=30.00 Mbps  eta=6
37.426us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=60.00 Mbps  eta=6
39.839us  Response  s=1  link=10  hop=3  tau=RESPONSE  lambda=30.00 Mbps  eta=6
46.959us  Response  s=0  link=5  hop=3  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13
49.372us  Response  s=1  link=3  hop=2  tau=RESPONSE  lambda=30.00 Mbps  eta=6
53.079us  Response  s=0  link=3  hop=2  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13
55.492us  Response  s=1  link=1  hop=1  tau=RESPONSE  lambda=30.00 Mbps  eta=6
60.612us  Response  s=0  link=1  hop=1  tau=UPDATE  lambda=60.00 Mbps  eta=13
61.612us  Response  s=1  link=7  hop=0  tau=RESPONSE  lambda=30.00 Mbps  eta=6
66.732us  Response  s=0  link=7  hop=0  tau=UPDATE  lambda=60.00 Mbps  eta=13
79.678us  Probe  s=0  link=6  hop=1  lambda=30.00 Mbps  eta=6
89.211us  Probe  s=0  link=0  hop=2  lambda=30.00 Mbps  eta=6
95.331us  Probe  s=0  link=2  hop=3  lambda=30.00 Mbps  eta=6
101.451us  Probe  s=0  link=4  hop=4  lambda=30.00 Mbps  eta=6
107.571us  Probe  s=0  link=13  hop=5  lambda=30.00 Mbps  eta=6
117.104us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=30.00 Mbps  eta=6
126.637us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=30.00 Mbps  eta=6
132.757us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=30.00 Mbps  eta=6
138.877us  Response  s=0  link=1  hop=1  tau=RESPONSE  lambda=30.00 Mbps  eta=6
144.997us  Response  s=0  link=7  hop=0  tau=RESPONSE  lambda=30.00 Mbps  eta=6
154.530us  API.Rate  s=1  rate=30.00 Mbps
154.530us  API.Rate  s=0  rate=30.00 Mbps
154.530us  SetBottleneck  s=1  link=6  hop=1  beta=true
154.530us  SetBottleneck  s=0  link=6  hop=1  beta=true
164.063us  SetBottleneck  s=1  link=0  hop=2  beta=true
170.183us  SetBottleneck  s=1  link=2  hop=3  beta=true
172.596us  SetBottleneck  s=0  link=0  hop=2  beta=true
176.303us  SetBottleneck  s=1  link=11  hop=4  beta=true
178.716us  SetBottleneck  s=0  link=2  hop=3  beta=true
184.836us  SetBottleneck  s=0  link=4  hop=4  beta=true
190.956us  SetBottleneck  s=0  link=13  hop=5  beta=true
200.489us  Join  s=2  link=6  hop=1  lambda=15.00 Mbps  eta=6
200.489us  Probe  s=0  link=6  hop=1  lambda=15.00 Mbps  eta=6
200.489us  Probe  s=1  link=6  hop=1  lambda=15.00 Mbps  eta=6
210.022us  Update  s=0  link=7  hop=0
210.022us  Update  s=1  link=7  hop=0
210.022us  Join  s=2  link=0  hop=2  lambda=15.00 Mbps  eta=6
216.142us  Join  s=2  link=9  hop=3  lambda=15.00 Mbps  eta=6
218.555us  Probe  s=0  link=0  hop=2  lambda=15.00 Mbps  eta=6
224.675us  Probe  s=0  link=2  hop=3  lambda=15.00 Mbps  eta=6
225.675us  Response  s=2  link=8  hop=2  tau=RESPONSE  lambda=15.00 Mbps  eta=6
227.088us  Probe  s=1  link=0  hop=2  lambda=15.00 Mbps  eta=6
230.795us  Probe  s=0  link=4  hop=4  lambda=15.00 Mbps  eta=6
233.208us  Probe  s=1  link=2  hop=3  lambda=15.00 Mbps  eta=6
235.208us  Response  s=2  link=1  hop=1  tau=RESPONSE  lambda=15.00 Mbps  eta=6
236.915us  Probe  s=0  link=13  hop=5  lambda=15.00 Mbps  eta=6
239.328us  Probe  s=1  link=11  hop=4  lambda=15.00 Mbps  eta=6
241.328us  Response  s=2  link=7  hop=0  tau=RESPONSE  lambda=15.00 Mbps  eta=6
246.448us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=15.00 Mbps  eta=6
248.861us  Response  s=1  link=10  hop=3  tau=RESPONSE  lambda=15.00 Mbps  eta=6
255.981us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=15.00 Mbps  eta=6
258.394us  Response  s=1  link=3  hop=2  tau=RESPONSE  lambda=15.00 Mbps  eta=6
262.101us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=15.00 Mbps  eta=6
264.514us  Response  s=1  link=1  hop=1  tau=RESPONSE  lambda=15.00 Mbps  eta=6
269.634us  Response  s=0  link=1  hop=1  tau=RESPONSE  lambda=15.00 Mbps  eta=6
270.634us  Response  s=1  link=7  hop=0  tau=RESPONSE  lambda=15.00 Mbps  eta=6
275.754us  Response  s=0  link=7  hop=0  tau=RESPONSE  lambda=15.00 Mbps  eta=6
288.700us  API.Rate  s=1  rate=15.00 Mbps
288.700us  API.Rate  s=2  rate=30.00 Mbps
288.700us  API.Rate  s=0  rate=15.00 Mbps
288.700us  SetBottleneck  s=1  link=6  hop=1  beta=true
288.700us  SetBottleneck  s=2  link=6  hop=1  beta=true
288.700us  SetBottleneck  s=0  link=6  hop=1  beta=true
298.233us  SetBottleneck  s=1  link=0  hop=2  beta=true
304.353us  SetBottleneck  s=1  link=2  hop=3  beta=true
306.766us  SetBottleneck  s=2  link=0  hop=2  beta=true
310.473us  SetBottleneck  s=1  link=11  hop=4  beta=true
312.886us  SetBottleneck  s=2  link=9  hop=3  beta=true
315.299us  SetBottleneck  s=0  link=0  hop=2  beta=true
321.419us  SetBottleneck  s=0  link=2  hop=3  beta=true
327.539us  SetBottleneck  s=0  link=4  hop=4  beta=true
333.659us  SetBottleneck  s=0  link=13  hop=5  beta=true
343.192us  Leave  s=1  link=6  hop=1
343.192us  Probe  s=0  link=6  hop=1  lambda=20.00 Mbps  eta=6
343.192us  Probe  s=2  link=6  hop=1  lambda=20.00 Mbps  eta=6
352.725us  Leave  s=1  link=0  hop=2
358.845us  Leave  s=1  link=2  hop=3
361.258us  Probe  s=0  link=0  hop=2  lambda=20.00 Mbps  eta=6
364.965us  Leave  s=1  link=11  hop=4
367.378us  Probe  s=0  link=2  hop=3  lambda=20.00 Mbps  eta=6
369.791us  Probe  s=2  link=0  hop=2  lambda=20.00 Mbps  eta=6
373.498us  Probe  s=0  link=4  hop=4  lambda=20.00 Mbps  eta=6
375.911us  Probe  s=2  link=9  hop=3  lambda=20.00 Mbps  eta=6
379.618us  Probe  s=0  link=13  hop=5  lambda=20.00 Mbps  eta=6
385.444us  Response  s=2  link=8  hop=2  tau=RESPONSE  lambda=20.00 Mbps  eta=6
389.151us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=20.00 Mbps  eta=6
394.977us  Response  s=2  link=1  hop=1  tau=RESPONSE  lambda=20.00 Mbps  eta=6
398.684us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=20.00 Mbps  eta=6
401.097us  Response  s=2  link=7  hop=0  tau=RESPONSE  lambda=20.00 Mbps  eta=6
404.804us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=20.00 Mbps  eta=6
410.924us  Response  s=0  link=1  hop=1  tau=RESPONSE  lambda=20.00 Mbps  eta=6
417.044us  Response  s=0  link=7  hop=0  tau=RESPONSE  lambda=20.00 Mbps  eta=6
426.577us  API.Rate  s=2  rate=40.00 Mbps
426.577us  API.Rate  s=0  rate=20.00 Mbps
426.577us  SetBottleneck  s=2  link=6  hop=1  beta=true
426.577us  SetBottleneck  s=0  link=6  hop=1  beta=true
436.110us  SetBottleneck  s=2  link=0  hop=2  beta=true
442.230us  SetBottleneck  s=2  link=9  hop=3  beta=true
444.643us  SetBottleneck  s=0  link=0  hop=2  beta=true
450.763us  SetBottleneck  s=0  link=2  hop=3  beta=true
456.883us  SetBottleneck  s=0  link=4  hop=4  beta=true
463.003us  SetBottleneck  s=0  link=13  hop=5  beta=true
)trace";

// All three scenarios run on the same 3-link parking lot.
net::Network make_net() {
  topo::CanonicalOptions opt;
  opt.router_capacity = 100.0;
  opt.access_capacity = 60.0;
  return topo::make_parking_lot(3, opt);
}

template <class Driver>
std::string run_trace(BneckConfig cfg, bool external_transport,
                      Driver&& drive) {
  const net::Network n = make_net();
  const net::PathFinder pf(n);
  sim::Simulator sim;
  std::ostringstream os;
  TextTracer tracer(os);
  if (external_transport) {
    transport::SimTransport transport(sim, n, cfg.wire());
    BneckProtocol bneck(transport, n, cfg, &tracer);
    drive(bneck, sim, pf, n.hosts());
  } else {
    BneckProtocol bneck(sim, n, cfg, &tracer);
    drive(bneck, sim, pf, n.hosts());
  }
  return os.str();
}

void drive_unweighted(BneckProtocol& bneck, sim::Simulator& sim,
                      const net::PathFinder& pf,
                      const std::vector<NodeId>& h) {
  bneck.join(SessionId{0}, *pf.shortest_path(h[0], h[3]));
  bneck.join(SessionId{1}, *pf.shortest_path(h[1], h[2]), 45.0);
  sim.run_until_idle();
  bneck.join(SessionId{2}, *pf.shortest_path(h[2], h[0]), 80.0);
  sim.run_until_idle();
  bneck.change(SessionId{1}, 10.0);
  sim.run_until_idle();
  bneck.leave(SessionId{0});
  sim.run_until_idle();
}

void drive_weighted(BneckProtocol& bneck, sim::Simulator& sim,
                    const net::PathFinder& pf,
                    const std::vector<NodeId>& h) {
  bneck.join(SessionId{0}, *pf.shortest_path(h[0], h[3]), kRateInfinity, 2.0);
  bneck.join(SessionId{1}, *pf.shortest_path(h[1], h[2]), 45.0, 0.5);
  sim.run_until_idle();
  bneck.join(SessionId{2}, *pf.shortest_path(h[2], h[0]), 80.0, 3.0);
  sim.run_until_idle();
  bneck.change(SessionId{1}, 10.0, 1.5);
  sim.run_until_idle();
  bneck.leave(SessionId{0});
  sim.run_until_idle();
}

void drive_shared(BneckProtocol& bneck, sim::Simulator& sim,
                  const net::PathFinder& pf,
                  const std::vector<NodeId>& h) {
  bneck.join(SessionId{0}, *pf.shortest_path(h[0], h[3]));
  bneck.join(SessionId{1}, *pf.shortest_path(h[0], h[2]), 45.0);
  sim.run_until_idle();
  bneck.join(SessionId{2}, *pf.shortest_path(h[0], h[1]), 80.0, 2.0);
  sim.run_until_idle();
  bneck.leave(SessionId{1});
  sim.run_until_idle();
}

TEST(TransportEquiv, UnweightedGoldenTraceImplicitTransport) {
  EXPECT_EQ(run_trace({}, false, drive_unweighted), kGoldenUnweightedTrace);
}

TEST(TransportEquiv, UnweightedGoldenTraceExplicitTransport) {
  EXPECT_EQ(run_trace({}, true, drive_unweighted), kGoldenUnweightedTrace);
}

TEST(TransportEquiv, WeightedGoldenTraceImplicitTransport) {
  EXPECT_EQ(run_trace({}, false, drive_weighted), kGoldenWeightedTrace);
}

TEST(TransportEquiv, WeightedGoldenTraceExplicitTransport) {
  EXPECT_EQ(run_trace({}, true, drive_weighted), kGoldenWeightedTrace);
}

TEST(TransportEquiv, SharedAccessGoldenTraceImplicitTransport) {
  BneckConfig cfg;
  cfg.shared_access_links = true;
  EXPECT_EQ(run_trace(cfg, false, drive_shared), kGoldenSharedTrace);
}

TEST(TransportEquiv, SharedAccessGoldenTraceExplicitTransport) {
  BneckConfig cfg;
  cfg.shared_access_links = true;
  EXPECT_EQ(run_trace(cfg, true, drive_shared), kGoldenSharedTrace);
}

// The two construction paths must agree in the lossy + ARQ regime too:
// the seam moved the loss RNG and the ArqChannel arena into
// SimTransport, and identical seeding must survive the move.
TEST(TransportEquiv, LossyArqTraceSameThroughBothConstructors) {
  BneckConfig cfg;
  cfg.reliable_links = true;
  cfg.loss_probability = 0.2;
  const std::string implicit_trace = run_trace(cfg, false, drive_unweighted);
  const std::string explicit_trace = run_trace(cfg, true, drive_unweighted);
  EXPECT_FALSE(implicit_trace.empty());
  EXPECT_EQ(implicit_trace, explicit_trace);
}

}  // namespace
}  // namespace bneck::core
