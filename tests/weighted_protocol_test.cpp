// Whole-protocol tests for the weighted max-min extension.
//
// The distributed B-Neck protocol now converges to the *weighted*
// max-min allocation (core/bneck.hpp); the centralized solvers in
// core/maxmin.hpp are its ground truth.  Strategy:
//   (a) closed-form weighted scenarios (dumbbell splits, demand caps,
//       runtime weight changes) checked against hand-computed rates AND
//       the solver,
//   (b) the golden random instances of tests/maxmin_test.cpp
//       (WeightedMaxMin.GoldenRandomInstancesKeepTheirRates) driven
//       through the full protocol-on-simulator stack: the notified rates
//       must reproduce the pinned allocations exactly,
//   (c) a weight = 1 equivalence pin: the full packet trace of a mixed
//       join/change/leave scenario was captured on the unweighted
//       implementation (pre-weight tree) and must stay byte-identical,
//       proving the weighted refactor is a strict extension.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "core/bneck.hpp"
#include "core/maxmin.hpp"
#include "core/text_trace.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"
#include "topo/canonical.hpp"

namespace bneck::core {
namespace {

using net::Network;
using net::PathFinder;

constexpr const char* kGoldenUnweightedTrace =
    "0ns  Join  s=0  link=6  hop=1  lambda=60.00 Mbps  eta=6\n"
    "0ns  Join  s=1  link=8  hop=1  lambda=45.00 Mbps  eta=8\n"
    "9.533us  Join  s=0  link=0  hop=2  lambda=60.00 Mbps  eta=6\n"
    "9.533us  Join  s=1  link=2  hop=2  lambda=45.00 Mbps  eta=8\n"
    "15.653us  Join  s=0  link=2  hop=3  lambda=50.00 Mbps  eta=2\n"
    "15.653us  Join  s=1  link=11  hop=3  lambda=45.00 Mbps  eta=8\n"
    "21.773us  Join  s=0  link=4  hop=4  lambda=50.00 Mbps  eta=2\n"
    "25.186us  Response  s=1  link=10  hop=2  tau=RESPONSE  lambda=45.00 Mbps  eta=8\n"
    "27.893us  Join  s=0  link=13  hop=5  lambda=50.00 Mbps  eta=2\n"
    "34.719us  Response  s=1  link=3  hop=1  tau=RESPONSE  lambda=45.00 Mbps  eta=8\n"
    "37.426us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=50.00 Mbps  eta=2\n"
    "40.839us  Response  s=1  link=9  hop=0  tau=RESPONSE  lambda=45.00 Mbps  eta=8\n"
    "46.959us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=50.00 Mbps  eta=2\n"
    "50.372us  API.Rate  s=1  rate=45.00 Mbps\n"
    "50.372us  SetBottleneck  s=1  link=8  hop=1  beta=true\n"
    "53.079us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=50.00 Mbps  eta=2\n"
    "59.199us  Response  s=0  link=1  hop=1  tau=RESPONSE  lambda=50.00 Mbps  eta=2\n"
    "59.905us  Update  s=0  link=1  hop=1\n"
    "59.905us  SetBottleneck  s=1  link=2  hop=2  beta=true\n"
    "65.319us  Response  s=0  link=7  hop=0  tau=RESPONSE  lambda=50.00 Mbps  eta=2\n"
    "66.025us  SetBottleneck  s=1  link=11  hop=3  beta=true\n"
    "70.439us  Update  s=0  link=7  hop=0\n"
    "83.385us  Probe  s=0  link=6  hop=1  lambda=60.00 Mbps  eta=6\n"
    "92.918us  Probe  s=0  link=0  hop=2  lambda=60.00 Mbps  eta=6\n"
    "99.038us  Probe  s=0  link=2  hop=3  lambda=55.00 Mbps  eta=2\n"
    "105.158us  Probe  s=0  link=4  hop=4  lambda=55.00 Mbps  eta=2\n"
    "111.278us  Probe  s=0  link=13  hop=5  lambda=55.00 Mbps  eta=2\n"
    "120.811us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=55.00 Mbps  eta=2\n"
    "130.344us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=55.00 Mbps  eta=2\n"
    "136.464us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=55.00 Mbps  eta=2\n"
    "142.584us  Response  s=0  link=1  hop=1  tau=BOTTLENECK  lambda=55.00 Mbps  eta=2\n"
    "148.704us  Response  s=0  link=7  hop=0  tau=BOTTLENECK  lambda=55.00 Mbps  eta=2\n"
    "158.237us  API.Rate  s=0  rate=55.00 Mbps\n"
    "158.237us  SetBottleneck  s=0  link=6  hop=1  beta=false\n"
    "167.770us  SetBottleneck  s=0  link=0  hop=2  beta=false\n"
    "173.890us  SetBottleneck  s=0  link=2  hop=3  beta=true\n"
    "180.010us  SetBottleneck  s=0  link=4  hop=4  beta=true\n"
    "186.130us  SetBottleneck  s=0  link=13  hop=5  beta=true\n"
    "195.663us  Join  s=2  link=10  hop=1  lambda=60.00 Mbps  eta=10\n"
    "205.196us  Join  s=2  link=3  hop=2  lambda=60.00 Mbps  eta=10\n"
    "211.316us  Join  s=2  link=1  hop=3  lambda=60.00 Mbps  eta=10\n"
    "217.436us  Join  s=2  link=7  hop=4  lambda=60.00 Mbps  eta=10\n"
    "226.969us  Response  s=2  link=6  hop=3  tau=RESPONSE  lambda=60.00 Mbps  eta=10\n"
    "236.502us  Response  s=2  link=0  hop=2  tau=BOTTLENECK  lambda=60.00 Mbps  eta=7\n"
    "242.622us  Response  s=2  link=2  hop=1  tau=BOTTLENECK  lambda=60.00 Mbps  eta=7\n"
    "248.742us  Response  s=2  link=11  hop=0  tau=BOTTLENECK  lambda=60.00 Mbps  eta=7\n"
    "258.275us  API.Rate  s=2  rate=60.00 Mbps\n"
    "258.275us  SetBottleneck  s=2  link=10  hop=1  beta=true\n"
    "267.808us  SetBottleneck  s=2  link=3  hop=2  beta=true\n"
    "273.928us  SetBottleneck  s=2  link=1  hop=3  beta=true\n"
    "280.048us  SetBottleneck  s=2  link=7  hop=4  beta=true\n"
    "289.581us  Probe  s=1  link=8  hop=1  lambda=10.00 Mbps  eta=8\n"
    "299.114us  Update  s=0  link=1  hop=1\n"
    "299.114us  Probe  s=1  link=2  hop=2  lambda=10.00 Mbps  eta=8\n"
    "305.234us  Update  s=0  link=7  hop=0\n"
    "305.234us  Probe  s=1  link=11  hop=3  lambda=10.00 Mbps  eta=8\n"
    "314.767us  Probe  s=0  link=6  hop=1  lambda=60.00 Mbps  eta=6\n"
    "314.767us  Response  s=1  link=10  hop=2  tau=RESPONSE  lambda=10.00 Mbps  eta=8\n"
    "324.300us  Probe  s=0  link=0  hop=2  lambda=60.00 Mbps  eta=6\n"
    "324.300us  Response  s=1  link=3  hop=1  tau=RESPONSE  lambda=10.00 Mbps  eta=8\n"
    "330.420us  Probe  s=0  link=2  hop=3  lambda=50.00 Mbps  eta=2\n"
    "330.420us  Response  s=1  link=9  hop=0  tau=RESPONSE  lambda=10.00 Mbps  eta=8\n"
    "336.540us  Probe  s=0  link=4  hop=4  lambda=50.00 Mbps  eta=2\n"
    "339.953us  API.Rate  s=1  rate=10.00 Mbps\n"
    "339.953us  SetBottleneck  s=1  link=8  hop=1  beta=true\n"
    "342.660us  Probe  s=0  link=13  hop=5  lambda=50.00 Mbps  eta=2\n"
    "349.486us  SetBottleneck  s=1  link=2  hop=2  beta=true\n"
    "352.193us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=50.00 Mbps  eta=2\n"
    "355.606us  SetBottleneck  s=1  link=11  hop=3  beta=true\n"
    "361.726us  Response  s=0  link=5  hop=3  tau=RESPONSE  lambda=50.00 Mbps  eta=2\n"
    "367.846us  Response  s=0  link=3  hop=2  tau=RESPONSE  lambda=50.00 Mbps  eta=2\n"
    "373.966us  Response  s=0  link=1  hop=1  tau=UPDATE  lambda=50.00 Mbps  eta=2\n"
    "380.086us  Response  s=0  link=7  hop=0  tau=UPDATE  lambda=50.00 Mbps  eta=2\n"
    "389.619us  Probe  s=0  link=6  hop=1  lambda=60.00 Mbps  eta=6\n"
    "399.152us  Probe  s=0  link=0  hop=2  lambda=60.00 Mbps  eta=6\n"
    "405.272us  Probe  s=0  link=2  hop=3  lambda=60.00 Mbps  eta=6\n"
    "411.392us  Probe  s=0  link=4  hop=4  lambda=60.00 Mbps  eta=6\n"
    "417.512us  Probe  s=0  link=13  hop=5  lambda=60.00 Mbps  eta=6\n"
    "427.045us  Response  s=0  link=12  hop=4  tau=RESPONSE  lambda=60.00 Mbps  eta=6\n"
    "436.578us  Response  s=0  link=5  hop=3  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13\n"
    "442.698us  Response  s=0  link=3  hop=2  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13\n"
    "448.818us  Response  s=0  link=1  hop=1  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13\n"
    "454.938us  Response  s=0  link=7  hop=0  tau=BOTTLENECK  lambda=60.00 Mbps  eta=13\n"
    "464.471us  API.Rate  s=0  rate=60.00 Mbps\n"
    "464.471us  SetBottleneck  s=0  link=6  hop=1  beta=true\n"
    "474.004us  SetBottleneck  s=0  link=0  hop=2  beta=true\n"
    "480.124us  SetBottleneck  s=0  link=2  hop=3  beta=true\n"
    "486.244us  SetBottleneck  s=0  link=4  hop=4  beta=true\n"
    "492.364us  SetBottleneck  s=0  link=13  hop=5  beta=true\n"
    "501.897us  Leave  s=0  link=6  hop=1\n"
    "511.430us  Leave  s=0  link=0  hop=2\n"
    "517.550us  Leave  s=0  link=2  hop=3\n"
    "523.670us  Leave  s=0  link=4  hop=4\n"
    "529.790us  Leave  s=0  link=13  hop=5\n";


struct Harness {
  explicit Harness(const Network& network, BneckConfig cfg = {},
                   TraceSink* trace = nullptr)
      : net(network), bneck(sim, net, cfg, trace) {}

  net::Path path_between(NodeId src, NodeId dst) const {
    const PathFinder pf(net);
    auto p = pf.shortest_path(src, dst);
    EXPECT_TRUE(p.has_value());
    return std::move(*p);
  }

  void join_now(std::int32_t id, NodeId src, NodeId dst,
                Rate demand = kRateInfinity, double weight = 1.0) {
    bneck.join(SessionId{id}, path_between(src, dst), demand, weight);
  }

  /// Runs to quiescence and asserts Definition-2 stability.
  TimeNs quiesce() {
    const TimeNs t = sim.run_until_idle();
    EXPECT_TRUE(bneck.all_tasks_stable())
        << "network quiescent but not stable";
    return t;
  }

  /// Asserts every active session's notified rate matches the
  /// centralized weighted max-min solution for the current session set.
  void expect_weighted_maxmin(double tol = 1e-6) {
    const auto specs = bneck.active_specs();
    const auto sol = solve_waterfill(net, specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto got = bneck.notified_rate(specs[i].id);
      ASSERT_TRUE(got.has_value())
          << "session " << specs[i].id << " never got a rate";
      EXPECT_NEAR(*got, sol.rates[i], tol * std::max(1.0, sol.rates[i]))
          << "session " << specs[i].id << " (weight " << specs[i].weight
          << ")";
    }
    EXPECT_EQ(check_maxmin_invariants(net, specs, sol.rates), "");
  }

  const Network& net;
  sim::Simulator sim;
  BneckProtocol bneck;
};

// ---- closed-form weighted scenarios ----

TEST(WeightedProtocol, DumbbellSplitsBottleneckByWeight) {
  // Two sessions across a 100 Mbps bottleneck with weights 1 and 3:
  // levels equalize at 25, rates 25 / 75.
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2], kRateInfinity, 1.0);
  h.join_now(1, n.hosts()[1], n.hosts()[3], kRateInfinity, 3.0);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 25.0, 1e-9);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 75.0, 1e-9);
  h.expect_weighted_maxmin(1e-9);
}

TEST(WeightedProtocol, DemandCapRedistributesByWeight) {
  // Weights 2 and 1 over a 90 Mbps bottleneck would split 60/30, but the
  // heavy session caps itself at 24: the rest goes to the light one.
  const auto n = topo::make_dumbbell(2, 90.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2], 24.0, 2.0);
  h.join_now(1, n.hosts()[1], n.hosts()[3], kRateInfinity, 1.0);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 24.0, 1e-9);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 66.0, 1e-9);
  h.expect_weighted_maxmin(1e-9);
}

TEST(WeightedProtocol, WeightChangeReconverges) {
  // Start symmetric (50/50); tripling one weight must re-split 25/75,
  // reverting must restore 50/50 — the API.Change(s, r, w) path end to
  // end (the links learn the new weight from the re-probe).
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2]);
  h.join_now(1, n.hosts()[1], n.hosts()[3]);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 50.0, 1e-9);

  h.bneck.change(SessionId{1}, kRateInfinity, 3.0);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 25.0, 1e-9);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 75.0, 1e-9);
  h.expect_weighted_maxmin(1e-9);

  h.bneck.change(SessionId{1}, kRateInfinity, 1.0);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 50.0, 1e-9);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 50.0, 1e-9);
  h.expect_weighted_maxmin(1e-9);
}

TEST(WeightedProtocol, MultiBottleneckParkingLotByWeight) {
  // Parking lot: the long session (weight 2) competes on every chain
  // link; short one-hop sessions (weight 1) fill the rest.  Validated
  // purely against the solver (the closed form is the solver's job).
  const auto n = topo::make_parking_lot(4);
  Harness h(n);
  const auto& hosts = n.hosts();
  h.join_now(0, hosts[0], hosts[4], kRateInfinity, 2.0);
  for (std::int32_t i = 1; i < 4; ++i) {
    h.join_now(i, hosts[static_cast<std::size_t>(i)],
               hosts[static_cast<std::size_t>(i + 1)], kRateInfinity,
               static_cast<double>(i));
  }
  h.quiesce();
  h.expect_weighted_maxmin();
}

TEST(WeightedProtocol, SharedAccessLinksCarryWeights) {
  // Weighted sessions sharing one source host (shared-access extension):
  // the host access link is itself a weighted bottleneck.
  BneckConfig cfg;
  cfg.shared_access_links = true;
  const auto n = topo::make_line(2);
  Harness h(n, cfg);
  h.join_now(0, n.hosts()[0], n.hosts()[1], kRateInfinity, 1.0);
  h.join_now(1, n.hosts()[0], n.hosts()[1], kRateInfinity, 4.0);
  h.quiesce();
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{0}), 20.0, 1e-9);
  EXPECT_NEAR(*h.bneck.notified_rate(SessionId{1}), 80.0, 1e-9);
  h.expect_weighted_maxmin(1e-9);
}

TEST(WeightedProtocol, ActiveSpecsCarryWeights) {
  const auto n = topo::make_dumbbell(2, 100.0);
  Harness h(n);
  h.join_now(0, n.hosts()[0], n.hosts()[2], 42.0, 2.5);
  h.quiesce();
  const auto specs = h.bneck.active_specs();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].weight, 2.5);
  h.bneck.change(SessionId{0}, 42.0, 0.5);
  h.quiesce();
  EXPECT_EQ(h.bneck.active_specs()[0].weight, 0.5);
}

TEST(WeightedProtocol, InvalidWeightsRejected) {
  const auto n = topo::make_line(2);
  Harness h(n);
  EXPECT_THROW(
      h.bneck.join(SessionId{0}, h.path_between(n.hosts()[0], n.hosts()[1]),
                   kRateInfinity, 0.0),
      InvariantError);
  EXPECT_THROW(
      h.bneck.join(SessionId{1}, h.path_between(n.hosts()[0], n.hosts()[1]),
                   kRateInfinity, -1.0),
      InvariantError);
  EXPECT_THROW(
      h.bneck.join(SessionId{2}, h.path_between(n.hosts()[0], n.hosts()[1]),
                   kRateInfinity, kRateInfinity),
      InvariantError);
}

// ---- golden random instances through the whole protocol ----

// Mirrors weighted_instance() of tests/maxmin_test.cpp: same RNG
// consumption order, so the same seeds produce the same instances whose
// exact allocations are pinned in
// WeightedMaxMin.GoldenRandomInstancesKeepTheirRates.
std::vector<SessionSpec> weighted_instance(const Network& n, Rng& rng,
                                           std::int32_t count) {
  const PathFinder pf(n);
  std::vector<SessionSpec> specs;
  const auto sources = sample_distinct(rng, n.host_count(), count);
  for (std::int32_t i = 0; i < count; ++i) {
    const NodeId src = n.hosts()[static_cast<std::size_t>(
        sources[static_cast<std::size_t>(i)])];
    NodeId dst = src;
    while (dst == src) {
      dst = n.hosts()[static_cast<std::size_t>(
          rng.uniform_int(0, n.host_count() - 1))];
    }
    SessionSpec spec{SessionId{i}, *pf.shortest_path(src, dst),
                     rng.chance(0.3) ? rng.uniform_real(1.0, 100.0)
                                     : kRateInfinity};
    spec.weight = rng.uniform_real(0.25, 4.0);
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(WeightedProtocol, GoldenRandomInstancesReproducedByProtocol) {
  // The protocol must reproduce the pinned solver allocations on the
  // golden instances — the solver-only regression upgraded to a
  // whole-protocol guarantee.
  const std::vector<std::pair<std::uint64_t, std::vector<Rate>>> golden = {
      {601,
       {74.7719580432, 69.0279161007, 21.4339875286, 25.0781396436, 100,
        95.0779020001, 100, 23.2081367708, 44.2627585494, 100, 38.0566488243,
        55.7372414506, 100, 100, 13.6570747612, 100}},
      {602,
       {34.1202756651, 65.8797243349, 18.1237117847, 83.4331518268, 100, 100,
        100, 100, 38.3297905543, 100, 100, 84.9254664986, 16.5668481732,
        38.3297905543, 95.7904851109, 100}},
  };
  for (const auto& [seed, want] : golden) {
    Rng rng(seed);
    const auto n = topo::make_random(10, 6, 24, rng);
    const auto specs = weighted_instance(n, rng, 16);
    Harness h(n);
    for (const auto& spec : specs) {
      h.bneck.join(spec.id, spec.path, spec.demand, spec.weight);
    }
    h.quiesce();
    for (std::size_t i = 0; i < want.size(); ++i) {
      const auto got = h.bneck.notified_rate(specs[i].id);
      ASSERT_TRUE(got.has_value()) << "seed " << seed << " session " << i;
      EXPECT_NEAR(*got, want[i], 1e-6 * std::max(1.0, want[i]))
          << "seed " << seed << " session " << i;
    }
    h.expect_weighted_maxmin();
  }
}

TEST(WeightedProtocol, RandomInstancesAgreeWithBothSolvers) {
  for (std::uint64_t seed = 901; seed <= 908; ++seed) {
    Rng rng(seed);
    const auto n = topo::make_random(8, 5, 20, rng);
    const auto specs = weighted_instance(n, rng, 12);
    Harness h(n);
    for (const auto& spec : specs) {
      h.bneck.join(spec.id, spec.path, spec.demand, spec.weight);
    }
    h.quiesce();
    const auto ref = solve_reference(n, specs);
    const auto fast = solve_waterfill(n, specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto got = h.bneck.notified_rate(specs[i].id);
      ASSERT_TRUE(got.has_value()) << "seed " << seed << " session " << i;
      EXPECT_NEAR(*got, ref.rates[i], 1e-6 * std::max(1.0, ref.rates[i]))
          << "seed " << seed << " session " << i;
      EXPECT_NEAR(*got, fast.rates[i], 1e-6 * std::max(1.0, fast.rates[i]))
          << "seed " << seed << " session " << i;
    }
  }
}

// ---- regression: runtime weight change on a shared path ----

TEST(BneckCheckRepro, WeightChangeLeavesNetworkStable) {
  // Shrunk by the property harness from fuzz seed 8: two unit-weight
  // sessions share a parking-lot chain link; re-weighting one via
  // API.Change moved the link's Be without re-probing the session pinned
  // at the old Be, leaving the network unstable at quiescence.
  using bneck::check::EventKind;
  bneck::check::Scenario sc;
  sc.topo.kind = bneck::check::TopoKind::ParkingLot;
  sc.topo.a = 3;
  sc.topo.hpr = 1;
  sc.topo.router_capacity = 400;
  sc.topo.access_capacity = 1000;
  sc.events = {
      {0, EventKind::Join, 0, 2, 3, kRateInfinity, 1},
      {32040, EventKind::Join, 6, 0, 3, kRateInfinity, 1},
      {43232, EventKind::Change, 0, -1, -1, kRateInfinity,
       3.4058183619912765},
  };
  const auto r = bneck::check::run_scenario(sc, bneck::check::CheckOptions{});
  EXPECT_TRUE(r.ok) << r.message;
}

// ---- weight = 1 equivalence: pinned unweighted trace ----

TEST(WeightedProtocol, UnitWeightTraceMatchesUnweightedGolden) {
  // Captured on the pre-weight implementation (commit c381ae1) with the
  // exact program below; the weighted protocol with w = 1 must reproduce
  // it byte for byte — levels, packet schedule, timestamps, rates.
  topo::CanonicalOptions opt;
  opt.router_capacity = 100.0;
  opt.access_capacity = 60.0;
  const auto n = topo::make_parking_lot(3, opt);
  const PathFinder pf(n);
  sim::Simulator sim;
  std::ostringstream os;
  TextTracer tracer(os);
  BneckProtocol bneck(sim, n, {}, &tracer);
  const auto& h = n.hosts();
  bneck.join(SessionId{0}, *pf.shortest_path(h[0], h[3]));
  bneck.join(SessionId{1}, *pf.shortest_path(h[1], h[2]), 45.0);
  sim.run_until_idle();
  bneck.join(SessionId{2}, *pf.shortest_path(h[2], h[0]), 80.0);
  sim.run_until_idle();
  bneck.change(SessionId{1}, 10.0);
  sim.run_until_idle();
  bneck.leave(SessionId{0});
  sim.run_until_idle();
  EXPECT_EQ(os.str(), kGoldenUnweightedTrace);
}

}  // namespace
}  // namespace bneck::core
