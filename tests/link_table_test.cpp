// Tests for LinkSessionTable, the indexed per-link state of RouterLink.
// Every protocol predicate (Be, bottleneck condition, ProcessNewRestricted
// queries, Update triggers) is exercised directly here, so protocol-level
// failures can be localized.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "core/link_table.hpp"

namespace bneck::core {
namespace {

SessionId S(int i) { return SessionId{i}; }

TEST(LinkTable, EmptyTable) {
  LinkSessionTable t(100.0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.r_size(), 0u);
  EXPECT_EQ(t.f_size(), 0u);
  EXPECT_TRUE(std::isinf(t.be()));
  EXPECT_FALSE(t.contains(S(1)));
  EXPECT_FALSE(t.all_R_idle_at_be());
  EXPECT_FALSE(t.exists_F_ge_be());
  EXPECT_TRUE(t.stable());
}

TEST(LinkTable, NonPositiveCapacityThrows) {
  EXPECT_THROW(LinkSessionTable(0.0), InvariantError);
  EXPECT_THROW(LinkSessionTable(-1.0), InvariantError);
}

TEST(LinkTable, InsertStartsWaitingResponseInR) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 3);
  EXPECT_TRUE(t.contains(S(1)));
  EXPECT_TRUE(t.in_R(S(1)));
  EXPECT_EQ(t.mu(S(1)), Mu::WaitingResponse);
  EXPECT_EQ(t.hop(S(1)), 3);
  EXPECT_EQ(t.r_size(), 1u);
  EXPECT_DOUBLE_EQ(t.be(), 100.0);
}

TEST(LinkTable, DuplicateInsertThrows) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  EXPECT_THROW(t.insert_R(S(1), 0), InvariantError);
}

TEST(LinkTable, BeSplitsCapacityAcrossR) {
  LinkSessionTable t(100.0);
  for (int i = 0; i < 4; ++i) t.insert_R(S(i), 0);
  EXPECT_DOUBLE_EQ(t.be(), 25.0);
}

TEST(LinkTable, BeDiscountsFrozenSessions) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  t.set_idle_with_lambda(S(1), 10.0);
  t.move_to_F(S(1));
  // Fe = {s1@10}, Re = {s2}: Be = (100-10)/1.
  EXPECT_DOUBLE_EQ(t.be(), 90.0);
  EXPECT_EQ(t.f_size(), 1u);
  EXPECT_EQ(t.r_size(), 1u);
}

TEST(LinkTable, EraseFromR) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  t.erase(S(1));
  EXPECT_FALSE(t.contains(S(1)));
  EXPECT_DOUBLE_EQ(t.be(), 100.0);
}

TEST(LinkTable, EraseFromF) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  t.set_idle_with_lambda(S(1), 20.0);
  t.move_to_F(S(1));
  t.erase(S(1));
  EXPECT_DOUBLE_EQ(t.be(), 100.0);
  EXPECT_EQ(t.f_size(), 0u);
}

TEST(LinkTable, EraseUnknownThrows) {
  LinkSessionTable t(100.0);
  EXPECT_THROW(t.erase(S(9)), InvariantError);
}

TEST(LinkTable, MoveRoundTripPreservesLambdaAndMu) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  t.set_idle_with_lambda(S(1), 12.5);
  t.move_to_F(S(1));
  EXPECT_FALSE(t.in_R(S(1)));
  EXPECT_DOUBLE_EQ(t.lambda(S(1)), 12.5);
  EXPECT_EQ(t.mu(S(1)), Mu::Idle);
  t.move_to_R(S(1));
  EXPECT_TRUE(t.in_R(S(1)));
  EXPECT_DOUBLE_EQ(t.lambda(S(1)), 12.5);
  EXPECT_EQ(t.mu(S(1)), Mu::Idle);
}

TEST(LinkTable, MoveToFRequiresR) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.set_idle_with_lambda(S(1), 10.0);
  t.move_to_F(S(1));
  EXPECT_THROW(t.move_to_F(S(1)), InvariantError);
}

TEST(LinkTable, MoveToRRequiresF) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  EXPECT_THROW(t.move_to_R(S(1)), InvariantError);
}

TEST(LinkTable, AllRIdleAtBe) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  EXPECT_FALSE(t.all_R_idle_at_be());  // both waiting
  t.set_idle_with_lambda(S(1), 50.0);
  EXPECT_FALSE(t.all_R_idle_at_be());  // s2 still waiting
  t.set_idle_with_lambda(S(2), 50.0);
  EXPECT_TRUE(t.all_R_idle_at_be());   // both idle at Be=50
}

TEST(LinkTable, AllRIdleAtBeRejectsWrongRate) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  t.set_idle_with_lambda(S(1), 50.0);
  t.set_idle_with_lambda(S(2), 40.0);  // below Be
  EXPECT_FALSE(t.all_R_idle_at_be());
}

TEST(LinkTable, AllRIdleAtBeToleratesRounding) {
  LinkSessionTable t(100.0);
  for (int i = 0; i < 3; ++i) t.insert_R(S(i), 0);
  const Rate third = 100.0 / 3.0;
  for (int i = 0; i < 3; ++i) t.set_idle_with_lambda(S(i), third);
  EXPECT_TRUE(t.all_R_idle_at_be());
}

TEST(LinkTable, ExistsFGeBe) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  t.set_idle_with_lambda(S(2), 30.0);
  t.move_to_F(S(2));
  // Be = 70; F has 30 -> no.
  EXPECT_FALSE(t.exists_F_ge_be());
  t.erase(S(1));
  // Re empty: Be = inf -> no F >= Be.
  EXPECT_FALSE(t.exists_F_ge_be());
}

TEST(LinkTable, ExistsFGeBeTriggersWhenBeDrops) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  t.set_idle_with_lambda(S(2), 45.0);
  t.move_to_F(S(2));      // Be = (100-45)/1 = 55
  EXPECT_FALSE(t.exists_F_ge_be());
  // Two more sessions join: Be = (100-45)/3 = 18.3 < 45.
  t.insert_R(S(3), 0);
  t.insert_R(S(4), 0);
  EXPECT_TRUE(t.exists_F_ge_be());
  EXPECT_DOUBLE_EQ(t.max_F_lambda(), 45.0);
  EXPECT_EQ(t.F_at(45.0), (std::vector<SessionId>{S(2)}));
}

TEST(LinkTable, MaxFLambdaOnEmptyThrows) {
  LinkSessionTable t(100.0);
  EXPECT_THROW((void)t.max_F_lambda(), InvariantError);
}

TEST(LinkTable, FAtGroupsEqualRates) {
  LinkSessionTable t(100.0);
  for (int i = 1; i <= 4; ++i) {
    t.insert_R(S(i), 0);
  }
  t.set_idle_with_lambda(S(1), 10.0);
  t.set_idle_with_lambda(S(2), 10.0);
  t.set_idle_with_lambda(S(3), 20.0);
  t.move_to_F(S(1));
  t.move_to_F(S(2));
  t.move_to_F(S(3));
  auto at10 = t.F_at(10.0);
  std::sort(at10.begin(), at10.end());
  EXPECT_EQ(at10, (std::vector<SessionId>{S(1), S(2)}));
  EXPECT_EQ(t.F_at(20.0), (std::vector<SessionId>{S(3)}));
  EXPECT_TRUE(t.F_at(15.0).empty());
}

TEST(LinkTable, IdleRAboveFindsOnlyStrictlyAbove) {
  LinkSessionTable t(100.0);
  for (int i = 1; i <= 3; ++i) t.insert_R(S(i), 0);
  t.set_idle_with_lambda(S(1), 40.0);
  t.set_idle_with_lambda(S(2), 33.0);
  // s3 still waiting; Be = 100/3.
  const auto above = t.idle_R_above(t.be());
  EXPECT_EQ(above, (std::vector<SessionId>{S(1)}));
}

TEST(LinkTable, IdleRAboveIgnoresNonIdle) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  t.set_idle_with_lambda(S(1), 90.0);
  t.set_mu(S(1), Mu::WaitingProbe);  // no longer idle
  EXPECT_TRUE(t.idle_R_above(10.0).empty());
}

TEST(LinkTable, IdleRAtExcludesAndMatches) {
  LinkSessionTable t(100.0);
  for (int i = 1; i <= 3; ++i) t.insert_R(S(i), 0);
  t.set_idle_with_lambda(S(1), 25.0);
  t.set_idle_with_lambda(S(2), 25.0);
  t.set_idle_with_lambda(S(3), 50.0);
  auto at = t.idle_R_at(25.0);
  std::sort(at.begin(), at.end());
  EXPECT_EQ(at, (std::vector<SessionId>{S(1), S(2)}));
  EXPECT_EQ(t.idle_R_at(25.0, S(1)), (std::vector<SessionId>{S(2)}));
  EXPECT_TRUE(t.idle_R_at(99.0).empty());
}

TEST(LinkTable, IdleRAllExcludes) {
  LinkSessionTable t(100.0);
  for (int i = 1; i <= 3; ++i) t.insert_R(S(i), 0);
  for (int i = 1; i <= 3; ++i) t.set_idle_with_lambda(S(i), 10.0 * i);
  auto all = t.idle_R_all(S(2));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<SessionId>{S(1), S(3)}));
}

TEST(LinkTable, SetMuMovesInAndOutOfIdleIndex) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.set_idle_with_lambda(S(1), 100.0);
  EXPECT_EQ(t.idle_R_at(100.0).size(), 1u);
  t.set_mu(S(1), Mu::WaitingProbe);
  EXPECT_TRUE(t.idle_R_at(100.0).empty());
  t.set_mu(S(1), Mu::Idle);  // lambda retained
  EXPECT_EQ(t.idle_R_at(100.0).size(), 1u);
}

TEST(LinkTable, StabilityDefinition) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  EXPECT_FALSE(t.stable());  // waiting sessions
  t.set_idle_with_lambda(S(1), 50.0);
  t.set_idle_with_lambda(S(2), 50.0);
  EXPECT_TRUE(t.stable());
  // An F session must sit strictly below Be for stability.
  t.insert_R(S(3), 0);
  t.set_idle_with_lambda(S(3), 30.0);
  t.move_to_F(S(3));
  // Now Be = (100-30)/2 = 35 but R rates are 50: unstable.
  EXPECT_FALSE(t.stable());
}

TEST(LinkTable, StableWithEmptyRAndFrozenSessions) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.set_idle_with_lambda(S(1), 40.0);
  t.move_to_F(S(1));
  // Re empty: the Fe < Be condition is waived (Definition 2).
  EXPECT_TRUE(t.stable());
}

TEST(LinkTable, ForEachVisitsAll) {
  LinkSessionTable t(100.0);
  t.insert_R(S(1), 0);
  t.insert_R(S(2), 0);
  t.set_idle_with_lambda(S(2), 50.0);
  t.move_to_F(S(2));
  int count = 0;
  t.for_each([&](SessionId, bool, Mu, Rate) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(LinkTable, ManySessionsKeepAggregatesConsistent) {
  // Stress the running Fe sum and the indexes through a long random-ish
  // mutation sequence; verify against a brute-force recomputation.
  LinkSessionTable t(1000.0);
  std::vector<int> in_f;
  for (int i = 0; i < 200; ++i) {
    t.insert_R(S(i), 0);
    t.set_idle_with_lambda(S(i), 1.0 + (i % 7));
    if (i % 3 == 0) {
      t.move_to_F(S(i));
      in_f.push_back(i);
    }
  }
  // Brute-force Be.
  double fsum = 0;
  for (const int i : in_f) fsum += 1.0 + (i % 7);
  const double want_be = (1000.0 - fsum) / static_cast<double>(200 - in_f.size());
  EXPECT_NEAR(t.be(), want_be, 1e-9);
  // Erase every other F session and re-check.
  for (std::size_t k = 0; k < in_f.size(); k += 2) {
    t.erase(S(in_f[k]));
    fsum -= 1.0 + (in_f[k] % 7);
  }
  const double want_be2 =
      (1000.0 - fsum) / static_cast<double>(200 - in_f.size());
  EXPECT_NEAR(t.be(), want_be2, 1e-9);
}

// ---- RateIndex (core/rate_index.hpp), the table's ordered index ----

TEST(RateIndex, KeepsMultisetIterationOrder) {
  // The index must iterate in (rate ascending, id ascending) order —
  // exactly what std::multiset<pair<Rate, SessionId>> gave; the protocol
  // broadcast order (and with it the packet sequence) depends on it.
  RateIndex idx;
  idx.insert(5.0, S(9));
  idx.insert(1.0, S(4));
  idx.insert(5.0, S(2));
  idx.insert(3.0, S(7));
  idx.insert(5.0, S(5));
  std::vector<std::pair<Rate, SessionId>> seen;
  idx.for_each([&](Rate r, SessionId s) { seen.emplace_back(r, s); });
  const std::vector<std::pair<Rate, SessionId>> want{
      {1.0, S(4)}, {3.0, S(7)}, {5.0, S(2)}, {5.0, S(5)}, {5.0, S(9)}};
  EXPECT_EQ(seen, want);
  EXPECT_EQ(idx.min_rate(), 1.0);
  EXPECT_EQ(idx.max_rate(), 5.0);
  EXPECT_EQ(idx.size(), 5u);
}

TEST(RateIndex, EraseCollapsesEmptyLevels) {
  RateIndex idx;
  idx.insert(2.0, S(1));
  idx.insert(2.0, S(2));
  idx.insert(4.0, S(3));
  idx.erase(4.0, S(3));
  EXPECT_EQ(idx.max_rate(), 2.0);
  idx.erase(2.0, S(1));
  idx.erase(2.0, S(2));
  EXPECT_TRUE(idx.empty());
  EXPECT_THROW(idx.erase(2.0, S(1)), InvariantError);
}

TEST(RateIndex, WindowAndFromQueries) {
  RateIndex idx;
  for (int i = 0; i < 10; ++i) idx.insert(static_cast<Rate>(i), S(i));
  std::vector<std::int32_t> got;
  idx.for_window(3.0, 6.0, [&](Rate, SessionId s) { got.push_back(s.value()); });
  EXPECT_EQ(got, (std::vector<std::int32_t>{3, 4, 5, 6}));
  got.clear();
  idx.for_from(7.0, [&](Rate, SessionId s) { got.push_back(s.value()); });
  EXPECT_EQ(got, (std::vector<std::int32_t>{7, 8, 9}));
}

TEST(RateIndex, MatchesMultisetUnderRandomChurn) {
  std::mt19937_64 rng(31);
  RateIndex idx;
  std::multiset<std::pair<Rate, SessionId>> ref;
  const auto rate_of = [](std::uint64_t r) {
    return static_cast<Rate>(r % 17) * 0.5;
  };
  for (int op = 0; op < 20000; ++op) {
    const auto id = S(static_cast<int>(rng() % 64));
    const Rate r = rate_of(rng());
    // Entries are unique per session in the real table; emulate that by
    // tracking the session's current rate in the reference.
    const auto it = std::find_if(ref.begin(), ref.end(), [&](const auto& e) {
      return e.second == id;
    });
    if (rng() % 2 == 0) {
      if (it != ref.end()) continue;
      ref.insert({r, id});
      idx.insert(r, id);
    } else if (it != ref.end()) {
      idx.erase(it->first, id);
      ref.erase(it);
    }
    ASSERT_EQ(idx.size(), ref.size());
  }
  std::vector<std::pair<Rate, SessionId>> seen;
  idx.for_each([&](Rate r, SessionId s) { seen.emplace_back(r, s); });
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), ref.begin(), ref.end()));
}

}  // namespace
}  // namespace bneck::core
