// Tests for the socket-facing reliability sublayer and the fault
// injector behind compliance-under-faults: ReliableChannel's go-back-N
// state machine driven by explicit clocks (window, backoff, jitter
// determinism, retry-budget failure, sequence wraparound), the
// FaultInjector's replayable schedules, and the end-to-end properties —
// a client facing a dead daemon fails fast instead of hanging, and a
// live daemon behind a faulty wire still converges to the solver rates.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "check/compliance.hpp"
#include "core/packet.hpp"
#include "net/routing.hpp"
#include "topo/canonical.hpp"
#include "transport/client.hpp"
#include "transport/fault.hpp"
#include "transport/reliable.hpp"
#include "transport/udp.hpp"
#include "wire/codec.hpp"

namespace bneck::transport {
namespace {

std::vector<std::uint8_t> probe_frame(int session) {
  core::Packet p;
  p.type = core::PacketType::Probe;
  p.session = SessionId{session};
  p.hop = 1;
  p.weight = 1.0;
  std::vector<std::uint8_t> buf;
  wire::encode_packet(p, buf);
  return buf;
}

// Unit harness: one ReliableChannel whose raw sends are captured for
// inspection instead of hitting a socket.
struct ChannelHarness {
  std::vector<std::vector<std::uint8_t>> sent;
  bool accept = true;  // false simulates a refusing kernel
  ReliableChannel ch;

  explicit ChannelHarness(const ReliableConfig& cfg)
      : ch(cfg, [this](std::span<const std::uint8_t> bytes) {
          if (accept) sent.emplace_back(bytes.begin(), bytes.end());
          return accept;
        }) {}

  /// Sequence number of the i-th captured Data frame.
  std::uint64_t seq_of(std::size_t i) {
    const wire::DecodeResult r = wire::decode(sent.at(i));
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.frame.kind, wire::FrameKind::Data);
    return r.frame.seq;
  }
};

ReliableConfig no_jitter_config() {
  ReliableConfig cfg;
  cfg.jitter = 0.0;
  cfg.rto_initial = milliseconds(1);
  cfg.rto_max = milliseconds(4);
  return cfg;
}

TEST(ReliableChannel, WindowLimitsInFlightAndAcksSlideIt) {
  ReliableConfig cfg = no_jitter_config();
  cfg.window = 4;
  ChannelHarness h(cfg);
  const auto frame = probe_frame(0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(h.ch.send(frame, 0));
  ASSERT_EQ(h.sent.size(), 4u);  // only the window is on the wire
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h.seq_of(i), i);

  h.ch.on_ack(4, 0);  // first four delivered
  ASSERT_EQ(h.sent.size(), 8u);  // next four admitted
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(h.seq_of(i), i);

  h.ch.on_ack(8, 0);  // window slides again: the last two go out
  ASSERT_EQ(h.sent.size(), 10u);
  h.ch.on_ack(10, 0);
  EXPECT_TRUE(h.ch.idle());
  EXPECT_EQ(h.ch.next_deadline(), kTimeNever);  // quiescent: no timer
  EXPECT_EQ(h.ch.retransmissions(), 0u);
}

TEST(ReliableChannel, RetransmitBackoffGrowsAndCaps) {
  ChannelHarness h(no_jitter_config());
  ASSERT_TRUE(h.ch.send(probe_frame(0), 0));
  ASSERT_EQ(h.sent.size(), 1u);

  // No acks: deadlines must space out 1ms, 2ms, 4ms, 4ms (capped).
  const TimeNs expected_gaps[] = {milliseconds(1), milliseconds(2),
                                  milliseconds(4), milliseconds(4)};
  TimeNs now = 0;
  for (const TimeNs gap : expected_gaps) {
    const TimeNs deadline = h.ch.next_deadline();
    EXPECT_EQ(deadline, now + gap);
    EXPECT_EQ(h.ch.poll(deadline - 1), 0u);  // not due yet
    EXPECT_EQ(h.ch.poll(deadline), 1u);      // retransmits the frame
    now = deadline;
  }
  EXPECT_EQ(h.ch.retransmissions(), 4u);

  // Ack progress resets the backoff to the initial RTO.
  ASSERT_TRUE(h.ch.send(probe_frame(1), now));
  h.ch.on_ack(1, now);
  EXPECT_EQ(h.ch.next_deadline(), now + milliseconds(1));
}

TEST(ReliableChannel, JitterScheduleIsDeterministicPerSeed) {
  ReliableConfig cfg = no_jitter_config();
  cfg.jitter = 0.4;
  cfg.seed = 1234;
  ChannelHarness a(cfg);
  ChannelHarness b(cfg);
  cfg.seed = 99;
  ChannelHarness c(cfg);

  const auto frame = probe_frame(0);
  std::vector<TimeNs> da, db, dc;
  TimeNs now = 0;
  ASSERT_TRUE(a.ch.send(frame, now));
  ASSERT_TRUE(b.ch.send(frame, now));
  ASSERT_TRUE(c.ch.send(frame, now));
  for (int round = 0; round < 5; ++round) {
    da.push_back(a.ch.next_deadline());
    db.push_back(b.ch.next_deadline());
    dc.push_back(c.ch.next_deadline());
    now = std::max({da.back(), db.back(), dc.back()});
    a.ch.poll(now);
    b.ch.poll(now);
    c.ch.poll(now);
    // Jittered deadlines stay within 1 +/- jitter of the nominal RTO.
    EXPECT_GT(da.back(), 0);
  }
  EXPECT_EQ(da, db);  // same seed, same schedule: replayable
  EXPECT_NE(da, dc);  // different seed decorrelates the timers
}

TEST(ReliableChannel, FailsAfterRetryBudgetInsteadOfRetryingForever) {
  ReliableConfig cfg = no_jitter_config();
  cfg.max_retries = 3;
  ChannelHarness h(cfg);
  ASSERT_TRUE(h.ch.send(probe_frame(0), 0));

  TimeNs now = 0;
  int rounds = 0;
  while (!h.ch.failed() && rounds < 100) {
    now = h.ch.next_deadline();
    ASSERT_NE(now, kTimeNever);
    h.ch.poll(now);
    ++rounds;
  }
  EXPECT_TRUE(h.ch.failed());
  EXPECT_EQ(rounds, cfg.max_retries + 1);  // budget, then the verdict
  EXPECT_EQ(h.ch.next_deadline(), kTimeNever);
  EXPECT_FALSE(h.ch.send(probe_frame(1), now));  // terminal: sends drop
}

TEST(ReliableChannel, AckProgressResetsTheFailureCountdown) {
  ReliableConfig cfg = no_jitter_config();
  cfg.max_retries = 2;
  ChannelHarness h(cfg);
  ASSERT_TRUE(h.ch.send(probe_frame(0), 0));
  ASSERT_TRUE(h.ch.send(probe_frame(1), 0));

  // Burn the budget down to its last round, then make progress.
  TimeNs now = h.ch.next_deadline();
  h.ch.poll(now);
  now = h.ch.next_deadline();
  h.ch.poll(now);
  ASSERT_FALSE(h.ch.failed());
  h.ch.on_ack(1, now);  // one frame acked: the peer is alive

  // A fresh full budget must elapse before the channel gives up.
  int rounds = 0;
  while (!h.ch.failed() && rounds < 100) {
    now = h.ch.next_deadline();
    ASSERT_NE(now, kTimeNever);
    h.ch.poll(now);
    ++rounds;
  }
  EXPECT_EQ(rounds, cfg.max_retries + 1);
}

TEST(ReliableChannel, ReceiverDedupsAndSuppressesOutOfOrder) {
  ChannelHarness h(no_jitter_config());
  EXPECT_TRUE(h.ch.on_data(0));   // in order: deliver
  EXPECT_FALSE(h.ch.on_data(0));  // duplicate: drop, re-ack
  EXPECT_FALSE(h.ch.on_data(2));  // gap: go-back-N drops it
  EXPECT_EQ(h.ch.expected(), 1u);
  EXPECT_TRUE(h.ch.on_data(1));
  EXPECT_TRUE(h.ch.on_data(2));
  EXPECT_EQ(h.ch.expected(), 3u);
  EXPECT_EQ(h.ch.duplicates_dropped(), 2u);
}

TEST(ReliableChannel, SequenceNumbersWrapThroughZero) {
  ReliableConfig cfg = no_jitter_config();
  cfg.first_seq = ~std::uint64_t{0} - 1;  // 2^64 - 2
  cfg.window = 8;
  ChannelHarness h(cfg);
  const auto frame = probe_frame(0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(h.ch.send(frame, 0));
  ASSERT_EQ(h.sent.size(), 5u);
  EXPECT_EQ(h.seq_of(0), ~std::uint64_t{0} - 1);
  EXPECT_EQ(h.seq_of(1), ~std::uint64_t{0});
  EXPECT_EQ(h.seq_of(2), 0u);
  EXPECT_EQ(h.seq_of(3), 1u);

  // Cumulative ack from across the wrap point retires pre-wrap frames.
  h.ch.on_ack(1, 0);
  EXPECT_FALSE(h.ch.idle());
  h.ch.on_ack(3, 0);
  EXPECT_TRUE(h.ch.idle());

  // Receiver side wraps the same way.
  ReliableConfig rcfg = no_jitter_config();
  rcfg.first_seq = ~std::uint64_t{0};
  ChannelHarness rx(rcfg);
  EXPECT_TRUE(rx.ch.on_data(~std::uint64_t{0}));
  EXPECT_TRUE(rx.ch.on_data(0));
  EXPECT_TRUE(rx.ch.on_data(1));
  EXPECT_FALSE(rx.ch.on_data(0));  // wrapped duplicate still suppressed
  EXPECT_EQ(rx.ch.expected(), 2u);
}

TEST(ReliableChannel, IgnoresStaleAndFutureAcks) {
  ReliableConfig cfg = no_jitter_config();
  cfg.first_seq = 5;
  ChannelHarness h(cfg);
  ASSERT_TRUE(h.ch.send(probe_frame(0), 0));
  ASSERT_TRUE(h.ch.send(probe_frame(1), 0));

  h.ch.on_ack(5, 0);    // stale: acks nothing new
  h.ch.on_ack(4, 0);    // stale: behind the window
  h.ch.on_ack(100, 0);  // hostile: acks frames never sent
  EXPECT_FALSE(h.ch.idle());

  // The timer still guards both frames: a due poll retransmits them.
  const TimeNs deadline = h.ch.next_deadline();
  ASSERT_NE(deadline, kTimeNever);
  EXPECT_EQ(h.ch.poll(deadline), 2u);
}

TEST(ReliableChannel, RefusedDatagramsAreRepairedByTheTimer) {
  ChannelHarness h(no_jitter_config());
  h.accept = false;  // kernel refuses the first transmission
  ASSERT_TRUE(h.ch.send(probe_frame(0), 0));
  EXPECT_TRUE(h.sent.empty());
  h.accept = true;
  const TimeNs deadline = h.ch.next_deadline();
  ASSERT_NE(deadline, kTimeNever);
  EXPECT_EQ(h.ch.poll(deadline), 1u);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.seq_of(0), 0u);
}

// ---- fault injector ----

struct Emitted {
  Endpoint to;
  std::vector<std::uint8_t> bytes;

  friend bool operator==(const Emitted&, const Emitted&) = default;
};

std::vector<Emitted> run_schedule(FaultInjector& inj, int frames) {
  std::vector<Emitted> trace;
  const FaultInjector::Emit emit =
      [&trace](const Endpoint& to, std::span<const std::uint8_t> bytes) {
        trace.push_back({to, {bytes.begin(), bytes.end()}});
      };
  const Endpoint peers[] = {Endpoint::loopback(1000),
                            Endpoint::loopback(2000)};
  for (int i = 0; i < frames; ++i) {
    auto frame = probe_frame(i);
    inj.process(/*now=*/TimeNs{i} * milliseconds(1), peers[i % 2], frame,
                emit);
  }
  inj.flush(kTimeNever - 1, emit);  // release everything held
  return trace;
}

TEST(FaultInjector, ScheduleIsAPureFunctionOfTheSeed) {
  FaultInjector a(FaultConfig::standard(42));
  FaultInjector b(FaultConfig::standard(42));
  FaultInjector c(FaultConfig::standard(43));
  const auto ta = run_schedule(a, 400);
  const auto tb = run_schedule(b, 400);
  const auto tc = run_schedule(c, 400);
  EXPECT_EQ(ta, tb);  // same seed: byte-identical egress trace
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_NE(ta, tc);  // different seed: different schedule

  // Every configured fate actually fired over 400 datagrams.
  const FaultCounters& n = a.counters();
  EXPECT_EQ(n.datagrams, 400u);
  EXPECT_GT(n.dropped, 0u);
  EXPECT_GT(n.duplicated, 0u);
  EXPECT_GT(n.reordered, 0u);
  EXPECT_GT(n.corrupted, 0u);
  EXPECT_GT(n.delayed, 0u);
  EXPECT_EQ(n.datagrams, n.passed + n.dropped + n.duplicated + n.reordered +
                             n.corrupted + n.delayed);
}

TEST(FaultInjector, ZeroWidthDelayWindowIsAFixedDelay) {
  // delay-min-ms == delay-max-ms is a legal window (the constructor
  // invariant is delay_max >= delay_min): every delayed frame is held
  // for exactly that long, due precisely at now + delay_min.
  FaultConfig cfg;
  cfg.seed = 11;
  cfg.delay = 0.9;
  cfg.delay_min = milliseconds(25);
  cfg.delay_max = milliseconds(25);
  FaultInjector inj(cfg);

  std::vector<Emitted> trace;
  const FaultInjector::Emit emit =
      [&trace](const Endpoint& to, std::span<const std::uint8_t> bytes) {
        trace.push_back({to, {bytes.begin(), bytes.end()}});
      };
  const Endpoint peer = Endpoint::loopback(999);
  for (int i = 0; i < 50; ++i) {
    auto frame = probe_frame(i);
    inj.process(/*now=*/0, peer, frame, emit);
  }
  const std::uint64_t held = inj.counters().delayed;
  ASSERT_GT(held, 0u);
  EXPECT_EQ(inj.next_due(), milliseconds(25));

  // One instant before the deadline nothing is released; at it,
  // everything is.
  inj.flush(milliseconds(25) - 1, emit);
  EXPECT_EQ(trace.size(), 50u - held);
  inj.flush(milliseconds(25), emit);
  EXPECT_EQ(trace.size(), 50u);
}

TEST(FaultInjector, DisarmReleasesHeldFramesAndPassesThrough) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.delay = 0.9;
  cfg.delay_min = seconds(100);  // far future: held until disarm
  cfg.delay_max = seconds(200);
  FaultInjector inj(cfg);

  std::vector<Emitted> trace;
  const FaultInjector::Emit emit =
      [&trace](const Endpoint& to, std::span<const std::uint8_t> bytes) {
        trace.push_back({to, {bytes.begin(), bytes.end()}});
      };
  const Endpoint peer = Endpoint::loopback(999);
  for (int i = 0; i < 50; ++i) {
    auto frame = probe_frame(i);
    inj.process(0, peer, frame, emit);
  }
  const std::uint64_t held = inj.counters().delayed;
  ASSERT_GT(held, 0u);
  EXPECT_EQ(trace.size(), 50u - held);
  EXPECT_NE(inj.next_due(), kTimeNever);

  inj.disarm();
  EXPECT_FALSE(inj.armed());
  inj.flush(/*now=*/0, emit);  // deadlines ignored once disarmed
  EXPECT_EQ(trace.size(), 50u);
  EXPECT_EQ(inj.next_due(), kTimeNever);

  // Disarmed: pure pass-through, counters freeze.
  const FaultCounters before = inj.counters();
  auto frame = probe_frame(99);
  inj.process(0, peer, frame, emit);
  EXPECT_EQ(trace.size(), 51u);
  EXPECT_EQ(trace.back().bytes, frame);
  EXPECT_EQ(inj.counters(), before);
}

TEST(FaultInjector, ParseRoundTripsAndRejectsNonsense) {
  std::string error;
  const auto cfg = FaultConfig::parse(
      "seed=7,drop=0.1,dup=0.05,reorder=0.02,corrupt=0.01,delay=0.04,"
      "delay-min-ms=2,delay-max-ms=9",
      &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->seed, 7u);
  EXPECT_DOUBLE_EQ(cfg->drop, 0.1);
  EXPECT_DOUBLE_EQ(cfg->delay, 0.04);
  EXPECT_EQ(cfg->delay_min, milliseconds(2));
  EXPECT_EQ(cfg->delay_max, milliseconds(9));

  // The printed form parses back to the same config.
  const auto again = FaultConfig::parse(cfg->to_string(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_DOUBLE_EQ(again->drop, cfg->drop);
  EXPECT_EQ(again->delay_max, cfg->delay_max);

  for (const char* bad :
       {"drop=1.5", "drop=0.6,dup=0.6", "nonsense=1", "drop=x",
        "delay=0.1,delay-min-ms=9,delay-max-ms=2", "drop"}) {
    EXPECT_FALSE(FaultConfig::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty());
  }
}

// ---- end-to-end: fail-fast and convergence-under-faults ----

net::Network small_net() {
  topo::CanonicalOptions opt;
  opt.router_capacity = 100.0;
  opt.access_capacity = 60.0;
  return topo::make_parking_lot(3, opt);
}

// The hung-Join regression: PR 6's client would spin forever when the
// Join datagram (or the daemon) vanished.  Now the retry budget turns a
// silent peer into a terminal, queryable failure.
TEST(ReliableClient, JoinAgainstSilentPeerFailsFastInsteadOfHanging) {
  const net::Network net = small_net();
  UdpSocket silent(0);  // bound, never read: a black hole with an address

  ClientOptions copts;
  copts.reliability.rto_initial = milliseconds(1);
  copts.reliability.rto_max = milliseconds(4);
  copts.reliability.max_retries = 3;
  copts.heartbeat_period = 0;
  SourceClient client(net, silent.local_endpoint(), copts);
  EXPECT_FALSE(client.failed());
  EXPECT_TRUE(client.failure().empty());

  const net::Path path = *net::PathFinder(net).shortest_path(
      net.hosts()[0], net.hosts()[3]);
  client.join(SessionId{0}, path, kRateInfinity);

  // The whole budget at these settings is ~25ms; 2000 bounded polls is
  // a generous ceiling that still fails the test quickly if the client
  // regresses into the old infinite retry loop.
  bool failed = false;
  for (int i = 0; i < 2000; ++i) {
    client.poll(1);
    if (client.failed()) {
      failed = true;
      break;
    }
  }
  EXPECT_TRUE(failed);
  EXPECT_FALSE(client.failure().empty());
  EXPECT_FALSE(client.sources_stable());
  // Terminal: status queries refuse to hang too.
  EXPECT_FALSE(client.query_status(50).has_value());
}

TEST(ComplianceUnderFaults, ConvergesToSolverRatesOverALossyWire) {
  check::ComplianceOptions opt;
  opt.threaded = true;
  opt.timeout_ms = 20000;
  opt.faults = transport::FaultConfig::standard(0);  // derive from seed
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const auto r = check::run_compliance_seed(seed, opt);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
    // The injector must have actually interfered.
    EXPECT_GT(r.client_faults.datagrams, 0u) << "seed " << seed;
    EXPECT_GT(r.client_faults.dropped + r.client_faults.corrupted, 0u)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace bneck::transport
