// Stress and adversarial tests for distributed B-Neck.
//
// These target the algorithm's hard cases:
//   - deep bottleneck hierarchies (the Update cascade when a bottleneck
//     is discovered out of order, paper §III-C),
//   - many links tying at exactly the same bottleneck rate (the rate_eq
//     tolerance machinery),
//   - randomized event fuzzing: arbitrary interleavings of join, leave
//     and change, including mid-probe races,
//   - numeric extremes,
//   - larger-scale smoke runs.
// Every case must end quiescent, stable (Definition 2) and exactly on
// the centralized max-min rates.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/bneck.hpp"
#include "core/maxmin.hpp"
#include "net/routing.hpp"
#include "topo/canonical.hpp"
#include "topo/transit_stub.hpp"

namespace bneck::core {
namespace {

using net::Network;
using net::PathFinder;

struct ProtoRun {
  explicit ProtoRun(const Network& network, BneckConfig cfg = {})
      : net(network), paths(network), bneck(sim, network, cfg) {}

  void join_at(TimeNs t, std::int32_t id, NodeId src, NodeId dst,
               Rate demand = kRateInfinity) {
    auto p = paths.shortest_path(src, dst);
    ASSERT_TRUE(p.has_value());
    const auto path = *p;
    sim.schedule_at(t, [this, id, path, demand] {
      bneck.join(SessionId{id}, path, demand);
    });
  }

  void finish_and_check(double tol = 1e-6) {
    sim.run_until_idle();
    ASSERT_TRUE(bneck.all_tasks_stable());
    const auto specs = bneck.active_specs();
    const auto sol = solve_waterfill(net, specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto got = bneck.notified_rate(specs[i].id);
      ASSERT_TRUE(got.has_value()) << "session " << specs[i].id;
      EXPECT_NEAR(*got, sol.rates[i], tol * std::max(1.0, sol.rates[i]))
          << "session " << specs[i].id;
    }
  }

  const Network& net;
  net::PathFinder paths;
  sim::Simulator sim;
  BneckProtocol bneck;
};

// ---- deep bottleneck hierarchies ----

// Chain of k links with geometrically decreasing capacity; one long
// session plus one short session per link.  The max-min solution has k
// distinct bottleneck levels and the long session's rate depends on the
// tightest link: discovering any level out of order forces the Update
// cascade of paper §III-C.
Network make_geometric_chain(std::int32_t k, std::vector<Rate>* caps) {
  Network n;
  std::vector<NodeId> routers;
  for (std::int32_t i = 0; i <= k; ++i) routers.push_back(n.add_router());
  for (std::int32_t i = 0; i < k; ++i) {
    const Rate cap = 400.0 / std::pow(1.5, i);  // 400, 266.7, 177.8, ...
    caps->push_back(cap);
    n.add_link_pair(routers[static_cast<std::size_t>(i)],
                    routers[static_cast<std::size_t>(i + 1)], cap,
                    microseconds(1));
  }
  // Two hosts per router: one for shorts, one potential long endpoint.
  for (const NodeId r : routers) {
    n.add_host(r, 10000.0, microseconds(1));
    n.add_host(r, 10000.0, microseconds(1));
  }
  return n;
}

TEST(BneckStress, GeometricChainDepth8) {
  std::vector<Rate> caps;
  const auto n = make_geometric_chain(8, &caps);
  ProtoRun run(n);
  // Long session router0 -> router8 (host index 2*i for router i).
  run.join_at(0, 0, n.hosts()[0], n.hosts()[16]);
  // One short per link, joining in *reverse* link order to maximize
  // out-of-order bottleneck discovery.
  for (std::int32_t i = 0; i < 8; ++i) {
    run.join_at(microseconds(i), 1 + i,
                n.hosts()[static_cast<std::size_t>(2 * (7 - i) + 1)],
                n.hosts()[static_cast<std::size_t>(2 * (8 - i))]);
  }
  run.finish_and_check();
}

TEST(BneckStress, GeometricChainSimultaneous) {
  std::vector<Rate> caps;
  const auto n = make_geometric_chain(10, &caps);
  ProtoRun run(n);
  run.join_at(0, 0, n.hosts()[0], n.hosts()[20]);
  for (std::int32_t i = 0; i < 10; ++i) {
    run.join_at(0, 1 + i, n.hosts()[static_cast<std::size_t>(2 * i + 1)],
                n.hosts()[static_cast<std::size_t>(2 * (i + 1))]);
  }
  run.finish_and_check();
}

TEST(BneckStress, AscendingCapacityChain) {
  // Tightest link first on the path: bottlenecks discovered in path
  // order; still must be exact.
  Network n;
  std::vector<NodeId> routers;
  for (int i = 0; i <= 6; ++i) routers.push_back(n.add_router());
  for (int i = 0; i < 6; ++i) {
    n.add_link_pair(routers[static_cast<std::size_t>(i)],
                    routers[static_cast<std::size_t>(i + 1)],
                    50.0 + 40.0 * i, microseconds(1));
  }
  std::vector<NodeId> hosts;
  for (const NodeId r : routers) {
    hosts.push_back(n.add_host(r, 10000.0, microseconds(1)));
    hosts.push_back(n.add_host(r, 10000.0, microseconds(1)));
  }
  ProtoRun run(n);
  run.join_at(0, 0, hosts[0], hosts[12]);
  for (int i = 0; i < 6; ++i) {
    run.join_at(0, 1 + i, hosts[static_cast<std::size_t>(2 * i + 1)],
                hosts[static_cast<std::size_t>(2 * (i + 1))]);
  }
  run.finish_and_check();
}

// ---- exact ties ----

TEST(BneckStress, ManyLinksTieAtSameBottleneckRate) {
  // Star of k spokes, every spoke link the same capacity, one session
  // per spoke pair: all spokes saturate at exactly the same rate.
  topo::CanonicalOptions opt;
  opt.router_capacity = 100.0;
  opt.access_capacity = 10000.0;
  opt.hosts_per_router = 2;
  const auto n = topo::make_star(8, opt);
  ProtoRun run(n);
  // Sessions hub-host -> leaf-host i: each crosses exactly one spoke.
  // Hosts: hub has indices 0,1; leaf i has 2+2i, 3+2i.
  for (int i = 0; i < 8; ++i) {
    run.join_at(0, i, n.hosts()[static_cast<std::size_t>(2 + 2 * i)],
                n.hosts()[static_cast<std::size_t>(3 + 2 * i)]);
  }
  run.finish_and_check();
}

TEST(BneckStress, ThirdsAndSeventhsNoExactFloats) {
  // Rates that are non-terminating binary fractions (100/3, 100/7):
  // exercises every rate_eq comparison with representative rounding.
  const auto n = topo::make_dumbbell(21, 100.0);
  ProtoRun run(n);
  for (int i = 0; i < 21; ++i) {
    run.join_at(0, i, n.hosts()[static_cast<std::size_t>(i)],
                n.hosts()[static_cast<std::size_t>(i + 21)]);
  }
  run.finish_and_check();
  for (int i = 0; i < 21; ++i) {
    EXPECT_NEAR(*run.bneck.notified_rate(SessionId{i}), 100.0 / 21.0, 1e-9);
  }
}

TEST(BneckStress, TieBetweenDemandAndLinkRate) {
  // A session's demand equals exactly the rate a link would assign: the
  // η = e vs demand-restriction distinction must not oscillate.
  const auto n = topo::make_dumbbell(2, 100.0);
  ProtoRun run(n);
  run.join_at(0, 0, n.hosts()[0], n.hosts()[2], 50.0);  // = fair share
  run.join_at(0, 1, n.hosts()[1], n.hosts()[3]);
  run.finish_and_check();
  EXPECT_NEAR(*run.bneck.notified_rate(SessionId{0}), 50.0, 1e-9);
  EXPECT_NEAR(*run.bneck.notified_rate(SessionId{1}), 50.0, 1e-9);
}

// ---- numeric extremes ----

TEST(BneckStress, TinyCapacities) {
  topo::CanonicalOptions opt;
  opt.access_capacity = 1e-3;  // 1 kbps access links
  const auto n = topo::make_dumbbell(3, 1e-3, opt);
  ProtoRun run(n);
  for (int i = 0; i < 3; ++i) {
    run.join_at(0, i, n.hosts()[static_cast<std::size_t>(i)],
                n.hosts()[static_cast<std::size_t>(i + 3)]);
  }
  run.finish_and_check();
  EXPECT_NEAR(*run.bneck.notified_rate(SessionId{0}), 1e-3 / 3, 1e-12);
}

TEST(BneckStress, HugeCapacities) {
  topo::CanonicalOptions opt;
  opt.access_capacity = 4e6;  // 4 Tbps
  const auto n = topo::make_dumbbell(3, 1e6, opt);
  ProtoRun run(n);
  for (int i = 0; i < 3; ++i) {
    run.join_at(0, i, n.hosts()[static_cast<std::size_t>(i)],
                n.hosts()[static_cast<std::size_t>(i + 3)]);
  }
  run.finish_and_check();
  EXPECT_NEAR(*run.bneck.notified_rate(SessionId{0}), 1e6 / 3, 1.0);
}

TEST(BneckStress, WildCapacitySpread) {
  // 9 orders of magnitude between the tightest and loosest link.
  Network n;
  const NodeId r0 = n.add_router();
  const NodeId r1 = n.add_router();
  const NodeId r2 = n.add_router();
  n.add_link_pair(r0, r1, 1e-2, microseconds(1));
  n.add_link_pair(r1, r2, 1e7, microseconds(1));
  const NodeId a = n.add_host(r0, 1e9, 0);
  const NodeId b = n.add_host(r1, 1e9, 0);
  const NodeId c = n.add_host(r2, 1e9, 0);
  const NodeId d = n.add_host(r2, 1e9, 0);
  ProtoRun run(n);
  run.join_at(0, 0, a, c);  // capped at 0.01 by the first link
  run.join_at(0, 1, b, d);  // gets essentially the whole 1e7
  run.finish_and_check(1e-9);
  EXPECT_NEAR(*run.bneck.notified_rate(SessionId{0}), 1e-2, 1e-9);
  EXPECT_NEAR(*run.bneck.notified_rate(SessionId{1}), 1e7 - 1e-2, 1.0);
}

// ---- randomized event fuzzing ----

struct FuzzParam {
  std::uint64_t seed;
  std::int32_t routers;
  std::int32_t hosts;
  std::int32_t events;
  bool wan;
};

class BneckFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(BneckFuzz, ArbitraryEventInterleavingsStayCorrect) {
  const auto p = GetParam();
  Rng rng(p.seed);
  topo::CanonicalOptions opt;
  if (p.wan) opt.router_delay = milliseconds(3);
  const auto n = topo::make_random(p.routers, p.routers, p.hosts, rng, opt);
  const PathFinder paths(n);

  sim::Simulator sim;
  BneckProtocol bneck(sim, n);

  // Generate a random timeline of join/leave/change events.  We track
  // which sessions exist at scheduling time conservatively: a session
  // may only be scheduled to leave/change strictly after its join, and
  // at most one leave is scheduled per session.
  struct Live {
    std::int32_t id;
    std::int32_t source;  // host index, for reuse after leave
  };
  std::vector<Live> live;            // sessions scheduled and not leaving
  std::vector<bool> host_used(static_cast<std::size_t>(p.hosts), false);
  std::int32_t next_id = 0;
  TimeNs clock = 0;

  for (std::int32_t e = 0; e < p.events; ++e) {
    clock += rng.uniform_int(0, microseconds(200));
    const double dice = rng.uniform_real(0.0, 1.0);
    if (dice < 0.55 || live.empty()) {
      // join from any free host
      std::vector<std::int32_t> free;
      for (std::int32_t hI = 0; hI < p.hosts; ++hI) {
        if (!host_used[static_cast<std::size_t>(hI)]) free.push_back(hI);
      }
      if (free.empty()) continue;
      const std::int32_t src_idx = free[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(free.size()) - 1))];
      host_used[static_cast<std::size_t>(src_idx)] = true;
      NodeId src = n.hosts()[static_cast<std::size_t>(src_idx)];
      NodeId dst = src;
      while (dst == src) {
        dst = n.hosts()[static_cast<std::size_t>(
            rng.uniform_int(0, p.hosts - 1))];
      }
      auto path = paths.shortest_path(src, dst);
      ASSERT_TRUE(path.has_value());
      const Rate demand =
          rng.chance(0.4) ? rng.uniform_real(0.5, 150.0) : kRateInfinity;
      const std::int32_t id = next_id++;
      const auto pp = *path;
      sim.schedule_at(clock, [&bneck, id, pp, demand] {
        bneck.join(SessionId{id}, pp, demand);
      });
      live.push_back({id, src_idx});
    } else if (dice < 0.8) {
      // leave a random live session
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const std::int32_t id = live[k].id;
      host_used[static_cast<std::size_t>(live[k].source)] = false;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      sim.schedule_at(clock, [&bneck, id] { bneck.leave(SessionId{id}); });
    } else {
      // change a random live session
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const std::int32_t id = live[k].id;
      const Rate demand =
          rng.chance(0.3) ? kRateInfinity : rng.uniform_real(0.5, 150.0);
      sim.schedule_at(clock, [&bneck, id, demand] {
        bneck.change(SessionId{id}, demand);
      });
    }
  }

  sim.run_until_idle();
  ASSERT_TRUE(bneck.all_tasks_stable());
  const auto specs = bneck.active_specs();
  EXPECT_EQ(specs.size(), live.size());
  const auto sol = solve_waterfill(n, specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto got = bneck.notified_rate(specs[i].id);
    ASSERT_TRUE(got.has_value()) << "session " << specs[i].id;
    EXPECT_NEAR(*got, sol.rates[i], 1e-6 * std::max(1.0, sol.rates[i]))
        << "session " << specs[i].id << " (seed " << p.seed << ")";
  }
}

std::vector<FuzzParam> fuzz_params() {
  std::vector<FuzzParam> out;
  std::uint64_t seed = 31000;
  for (const bool wan : {false, true}) {
    for (std::int32_t routers : {3, 8, 16}) {
      for (std::int32_t events : {10, 40, 120}) {
        out.push_back({seed++, routers, routers * 3, events, wan});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Timelines, BneckFuzz,
                         ::testing::ValuesIn(fuzz_params()));

// ---- mid-run interruption (pause/resume of the simulator) ----

TEST(BneckStress, SteppingTheSimulatorDoesNotChangeTheOutcome) {
  const auto n = topo::make_dumbbell(6, 100.0);
  const auto run_rates = [&n](bool stepped) {
    sim::Simulator sim;
    BneckProtocol bneck(sim, n);
    const PathFinder paths(n);
    for (int i = 0; i < 6; ++i) {
      auto path = *paths.shortest_path(
          n.hosts()[static_cast<std::size_t>(i)],
          n.hosts()[static_cast<std::size_t>(i + 6)]);
      sim.schedule_at(microseconds(i * 11), [&bneck, i, path] {
        bneck.join(SessionId{i}, path, kRateInfinity);
      });
    }
    if (stepped) {
      // Drive one event at a time, interleaving idle probes.
      while (sim.step()) {
        (void)bneck.all_tasks_stable();
      }
    } else {
      sim.run_until_idle();
    }
    std::vector<Rate> rates;
    for (int i = 0; i < 6; ++i) {
      rates.push_back(*bneck.notified_rate(SessionId{i}));
    }
    return rates;
  };
  EXPECT_EQ(run_rates(false), run_rates(true));
}

// ---- scale smoke ----

TEST(BneckStress, TwoThousandSessionsSmallLan) {
  auto params = topo::small_params();
  params.hosts = 4000;
  Rng rng(99);
  const auto n = topo::make_transit_stub(params, rng);
  const PathFinder paths(n);
  sim::Simulator sim;
  BneckProtocol bneck(sim, n);
  const auto sources = sample_distinct(rng, 4000, 2000);
  for (std::int32_t i = 0; i < 2000; ++i) {
    const NodeId src =
        n.hosts()[static_cast<std::size_t>(sources[static_cast<std::size_t>(i)])];
    NodeId dst = src;
    while (dst == src) {
      dst = n.hosts()[static_cast<std::size_t>(rng.uniform_int(0, 3999))];
    }
    auto path = *paths.shortest_path(src, dst);
    sim.schedule_at(rng.uniform_int(0, milliseconds(1)),
                    [&bneck, i, path] { bneck.join(SessionId{i}, path, kRateInfinity); });
  }
  sim.run_until_idle();
  ASSERT_TRUE(bneck.all_tasks_stable());
  const auto specs = bneck.active_specs();
  const auto sol = solve_waterfill(n, specs);
  double worst = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    worst = std::max(worst, std::fabs(*bneck.notified_rate(specs[i].id) -
                                      sol.rates[i]) /
                                std::max(1.0, sol.rates[i]));
  }
  EXPECT_LT(worst, 1e-6);
}

}  // namespace
}  // namespace bneck::core
