// Tests for the centralized max-min solvers: hand-computed allocations,
// the demand (Ds) transform, and property sweeps comparing the literal
// Figure-1 algorithm with the fast water-filling on random instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/maxmin.hpp"
#include "net/routing.hpp"
#include "topo/canonical.hpp"
#include "topo/transit_stub.hpp"

namespace bneck::core {
namespace {

using net::Network;
using net::PathFinder;
using topo::CanonicalOptions;

SessionSpec make_session(const Network& n, std::int32_t id, NodeId src,
                         NodeId dst, Rate demand = kRateInfinity) {
  const PathFinder pf(n);
  auto p = pf.shortest_path(src, dst);
  EXPECT_TRUE(p.has_value());
  return SessionSpec{SessionId{id}, std::move(*p), demand};
}

void expect_rates(const MaxMinSolution& sol, const std::vector<Rate>& want,
                  double tol = 1e-9) {
  ASSERT_EQ(sol.rates.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(sol.rates[i], want[i], tol * std::max(1.0, want[i]))
        << "session index " << i;
  }
}

// ---- hand-computed allocations ----

TEST(MaxMin, EmptyInstance) {
  const auto n = topo::make_line(2);
  const auto sol = solve_reference(n, {});
  EXPECT_TRUE(sol.rates.empty());
  EXPECT_TRUE(sol.links.empty());
}

TEST(MaxMin, SingleSessionLimitedByAccessLink) {
  // Router links are 200, access links 100: the access link binds.
  const auto n = topo::make_line(2);
  std::vector<SessionSpec> s{make_session(n, 0, n.hosts()[0], n.hosts()[1])};
  expect_rates(solve_reference(n, s), {100.0});
  expect_rates(solve_waterfill(n, s), {100.0});
}

TEST(MaxMin, EqualShareOnSharedBottleneck) {
  // 3 senders and 3 receivers across a 90 Mbps dumbbell: 30 each.
  const auto n = topo::make_dumbbell(3, 90.0);
  std::vector<SessionSpec> s;
  for (int i = 0; i < 3; ++i) {
    s.push_back(make_session(n, i, n.hosts()[static_cast<std::size_t>(i)],
                             n.hosts()[static_cast<std::size_t>(i + 3)]));
  }
  expect_rates(solve_reference(n, s), {30.0, 30.0, 30.0});
  expect_rates(solve_waterfill(n, s), {30.0, 30.0, 30.0});
}

TEST(MaxMin, DemandFreesBandwidthForOthers) {
  // Same dumbbell; one session caps itself at 10, the rest split 80.
  const auto n = topo::make_dumbbell(3, 90.0);
  std::vector<SessionSpec> s;
  for (int i = 0; i < 3; ++i) {
    s.push_back(make_session(n, i, n.hosts()[static_cast<std::size_t>(i)],
                             n.hosts()[static_cast<std::size_t>(i + 3)],
                             i == 0 ? 10.0 : kRateInfinity));
  }
  expect_rates(solve_reference(n, s), {10.0, 40.0, 40.0});
  expect_rates(solve_waterfill(n, s), {10.0, 40.0, 40.0});
}

TEST(MaxMin, TwoLevelBottleneckChain) {
  // Classic two-level example.  r0 --30--> r1 --100--> r2, fat access.
  //   s0: r0->r1 only; s1: r0->r2 (both links); s2, s3: r1->r2 only.
  // Level 1: link A (30) shared by s0,s1 -> 15 each.
  // Level 2: link B (100) has s1 frozen at 15 -> s2=s3=(100-15)/2=42.5.
  Network n;
  const NodeId r0 = n.add_router();
  const NodeId r1 = n.add_router();
  const NodeId r2 = n.add_router();
  n.add_link_pair(r0, r1, 30.0, microseconds(1));
  n.add_link_pair(r1, r2, 100.0, microseconds(1));
  const NodeId a0 = n.add_host(r0, 1000.0, 0);
  const NodeId a1 = n.add_host(r0, 1000.0, 0);
  const NodeId b0 = n.add_host(r1, 1000.0, 0);
  const NodeId b1 = n.add_host(r1, 1000.0, 0);
  const NodeId c0 = n.add_host(r2, 1000.0, 0);
  const NodeId c1 = n.add_host(r2, 1000.0, 0);
  const NodeId c2 = n.add_host(r2, 1000.0, 0);
  std::vector<SessionSpec> s{
      make_session(n, 0, a0, b0), make_session(n, 1, a1, c0),
      make_session(n, 2, b1, c1), make_session(n, 3, b1, c2)};
  expect_rates(solve_reference(n, s), {15.0, 15.0, 42.5, 42.5});
  expect_rates(solve_waterfill(n, s), {15.0, 15.0, 42.5, 42.5});
}

TEST(MaxMin, ParkingLotEqualSplit) {
  // One long session over every link, one short per link, all links
  // equal: everyone ends at C/2.
  CanonicalOptions opt;
  opt.router_capacity = 200.0;
  opt.access_capacity = 1000.0;
  const auto n = topo::make_parking_lot(3, opt);
  const auto& h = n.hosts();
  std::vector<SessionSpec> s{make_session(n, 0, h[0], h[3])};
  for (int i = 0; i < 3; ++i) {
    s.push_back(make_session(n, i + 1, h[static_cast<std::size_t>(i)],
                             h[static_cast<std::size_t>(i + 1)]));
  }
  expect_rates(solve_reference(n, s), {100.0, 100.0, 100.0, 100.0});
  expect_rates(solve_waterfill(n, s), {100.0, 100.0, 100.0, 100.0});
}

TEST(MaxMin, ParkingLotWithTightMiddleLink) {
  // Middle link at 60 caps the long session at 30; outer shorts then get
  // 200-30=170 wait -- recompute: long shares middle with its short: 30
  // each; outer links have long(30) + short -> short gets 170.
  const auto n = [] {
    Network net;
    std::vector<NodeId> r;
    for (int i = 0; i < 4; ++i) r.push_back(net.add_router());
    net.add_link_pair(r[0], r[1], 200.0, 0);
    net.add_link_pair(r[1], r[2], 60.0, 0);
    net.add_link_pair(r[2], r[3], 200.0, 0);
    for (int i = 0; i < 4; ++i) net.add_host(r[static_cast<std::size_t>(i)], 1000.0, 0);
    return net;
  }();
  const auto& h = n.hosts();
  std::vector<SessionSpec> s{
      make_session(n, 0, h[0], h[3]),   // long
      make_session(n, 1, h[0], h[1]),   // short over link 0
      make_session(n, 2, h[1], h[2]),   // short over middle link
      make_session(n, 3, h[2], h[3]),   // short over link 2
  };
  expect_rates(solve_reference(n, s), {30.0, 170.0, 30.0, 170.0});
  expect_rates(solve_waterfill(n, s), {30.0, 170.0, 30.0, 170.0});
}

TEST(MaxMin, SharedDestinationDownlink) {
  // Two sessions into the same destination host share its 100 downlink.
  Network net = topo::make_line(2);
  const NodeId extra = net.add_host(net.host_router(net.hosts()[0]), 100.0, 0);
  std::vector<SessionSpec> s{
      make_session(net, 0, net.hosts()[0], net.hosts()[1]),
      make_session(net, 1, extra, net.hosts()[1]),
  };
  expect_rates(solve_reference(net, s), {50.0, 50.0});
  expect_rates(solve_waterfill(net, s), {50.0, 50.0});
}

TEST(MaxMin, InfeasibleDemandClampsToPath) {
  const auto n = topo::make_line(2);
  std::vector<SessionSpec> s{
      make_session(n, 0, n.hosts()[0], n.hosts()[1], 1e9)};
  expect_rates(solve_reference(n, s), {100.0});
}

TEST(MaxMin, TinyDemandWins) {
  const auto n = topo::make_line(2);
  std::vector<SessionSpec> s{
      make_session(n, 0, n.hosts()[0], n.hosts()[1], 0.125)};
  expect_rates(solve_reference(n, s), {0.125});
  expect_rates(solve_waterfill(n, s), {0.125});
}

TEST(MaxMin, DemandEqualsFairShareIsNeutral) {
  // Demand exactly at the fair share must not disturb anyone.
  const auto n = topo::make_dumbbell(2, 100.0);
  std::vector<SessionSpec> s{
      make_session(n, 0, n.hosts()[0], n.hosts()[2], 50.0),
      make_session(n, 1, n.hosts()[1], n.hosts()[3]),
  };
  expect_rates(solve_reference(n, s), {50.0, 50.0});
  expect_rates(solve_waterfill(n, s), {50.0, 50.0});
}

TEST(MaxMin, LinkAnnotationOnDumbbell) {
  const auto n = topo::make_dumbbell(2, 90.0);
  std::vector<SessionSpec> s{
      make_session(n, 0, n.hosts()[0], n.hosts()[2]),
      make_session(n, 1, n.hosts()[1], n.hosts()[3]),
  };
  const auto sol = solve_reference(n, s);
  // Find the bottleneck (the router-router link): capacity 90, both
  // sessions restricted there.
  bool found = false;
  for (const auto& [e, info] : sol.links) {
    if (info.capacity == 90.0) {
      found = true;
      EXPECT_TRUE(info.saturated);
      EXPECT_EQ(info.sessions, 2);
      EXPECT_EQ(info.restricted, 2);
      EXPECT_NEAR(info.assigned, 90.0, 1e-9);
      EXPECT_NEAR(info.bottleneck_rate, 45.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
  // Access links (100) are not saturated at 45.
  for (const auto& [e, info] : sol.links) {
    if (info.capacity == 100.0) {
      EXPECT_FALSE(info.saturated);
    }
  }
}

TEST(MaxMin, InvariantCheckerAcceptsSolution) {
  const auto n = topo::make_dumbbell(3, 90.0);
  std::vector<SessionSpec> s;
  for (int i = 0; i < 3; ++i) {
    s.push_back(make_session(n, i, n.hosts()[static_cast<std::size_t>(i)],
                             n.hosts()[static_cast<std::size_t>(i + 3)]));
  }
  const auto sol = solve_reference(n, s);
  EXPECT_EQ(check_maxmin_invariants(n, s, sol.rates), "");
}

TEST(MaxMin, InvariantCheckerRejectsOverload) {
  const auto n = topo::make_dumbbell(2, 90.0);
  std::vector<SessionSpec> s{
      make_session(n, 0, n.hosts()[0], n.hosts()[2]),
      make_session(n, 1, n.hosts()[1], n.hosts()[3]),
  };
  const std::vector<Rate> bogus{60.0, 60.0};  // 120 > 90
  EXPECT_NE(check_maxmin_invariants(n, s, bogus), "");
}

TEST(MaxMin, InvariantCheckerRejectsUnderallocation) {
  const auto n = topo::make_dumbbell(2, 90.0);
  std::vector<SessionSpec> s{
      make_session(n, 0, n.hosts()[0], n.hosts()[2]),
      make_session(n, 1, n.hosts()[1], n.hosts()[3]),
  };
  const std::vector<Rate> bogus{10.0, 10.0};  // nobody is bottlenecked
  EXPECT_NE(check_maxmin_invariants(n, s, bogus), "");
}

// ---- property sweep: random instances, both solvers, all invariants ----

struct SweepParam {
  std::uint64_t seed;
  std::int32_t routers;
  std::int32_t extra_edges;
  std::int32_t hosts;
  std::int32_t sessions;
  bool with_demands;
};

class MaxMinSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MaxMinSweep, SolversAgreeAndInvariantsHold) {
  const SweepParam p = GetParam();
  Rng rng(p.seed);
  const auto n = topo::make_random(p.routers, p.extra_edges, p.hosts, rng);
  const PathFinder pf(n);

  std::vector<SessionSpec> specs;
  // One session per source host (the paper's model); destinations random.
  const auto sources = sample_distinct(rng, n.host_count(), p.sessions);
  for (std::int32_t i = 0; i < p.sessions; ++i) {
    const NodeId src = n.hosts()[static_cast<std::size_t>(sources[static_cast<std::size_t>(i)])];
    NodeId dst = src;
    while (dst == src) {
      dst = n.hosts()[static_cast<std::size_t>(
          rng.uniform_int(0, n.host_count() - 1))];
    }
    auto path = pf.shortest_path(src, dst);
    ASSERT_TRUE(path.has_value());
    const Rate demand = p.with_demands && rng.chance(0.5)
                            ? rng.uniform_real(1.0, 150.0)
                            : kRateInfinity;
    specs.push_back(SessionSpec{SessionId{i}, std::move(*path), demand});
  }

  const auto ref = solve_reference(n, specs);
  const auto fast = solve_waterfill(n, specs);
  ASSERT_EQ(ref.rates.size(), fast.rates.size());
  for (std::size_t i = 0; i < ref.rates.size(); ++i) {
    EXPECT_NEAR(ref.rates[i], fast.rates[i], 1e-6 * std::max(1.0, ref.rates[i]))
        << "solvers disagree on session " << i << " (seed " << p.seed << ")";
  }
  EXPECT_EQ(check_maxmin_invariants(n, specs, ref.rates), "");
  EXPECT_EQ(check_maxmin_invariants(n, specs, fast.rates), "");
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  std::uint64_t seed = 1000;
  for (const bool demands : {false, true}) {
    for (std::int32_t routers : {3, 10, 40}) {
      for (std::int32_t sessions : {2, 10, 60}) {
        const std::int32_t hosts = std::max(sessions + 2, routers);
        out.push_back(SweepParam{seed++, routers, routers / 2, hosts,
                                 sessions, demands});
        out.push_back(SweepParam{seed++, routers, routers, hosts, sessions,
                                 demands});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MaxMinSweep,
                         ::testing::ValuesIn(sweep_params()));

// ---- weighted max-min (extension; centralized solvers only) ----

TEST(WeightedMaxMin, WeightsSplitASingleBottleneck) {
  // Weights 1:2:3 over a 60 Mbps dumbbell: rates 10/20/30.
  const auto n = topo::make_dumbbell(3, 60.0);
  std::vector<SessionSpec> s;
  for (int i = 0; i < 3; ++i) {
    auto spec = make_session(n, i, n.hosts()[static_cast<std::size_t>(i)],
                             n.hosts()[static_cast<std::size_t>(i + 3)]);
    spec.weight = 1.0 + i;
    s.push_back(std::move(spec));
  }
  expect_rates(solve_reference(n, s), {10.0, 20.0, 30.0});
  expect_rates(solve_waterfill(n, s), {10.0, 20.0, 30.0});
}

TEST(WeightedMaxMin, LinkAnnotationUsesNormalizedLevel) {
  // Weights 1:2 over a 90 Mbps dumbbell: rates 30/60, common level
  // B*e = 30.  The annotation judges both the bottleneck level and
  // restriction on the weight-normalized level λ/w, so the saturated
  // link must report bottleneck_rate == 30 (not the raw max rate 60)
  // and count both sessions as restricted.
  const auto n = topo::make_dumbbell(2, 90.0);
  std::vector<SessionSpec> s;
  for (int i = 0; i < 2; ++i) {
    auto spec = make_session(n, i, n.hosts()[static_cast<std::size_t>(i)],
                             n.hosts()[static_cast<std::size_t>(i + 2)]);
    spec.weight = 1.0 + i;
    s.push_back(std::move(spec));
  }
  const auto sol = solve_reference(n, s);
  expect_rates(sol, {30.0, 60.0});
  bool found = false;
  for (const auto& [e, info] : sol.links) {
    if (info.capacity != 90.0) continue;
    found = true;
    EXPECT_TRUE(info.saturated);
    EXPECT_EQ(info.sessions, 2);
    EXPECT_NEAR(info.bottleneck_rate, 30.0, 1e-9);
    EXPECT_EQ(info.restricted, 2);
  }
  EXPECT_TRUE(found);
}

TEST(WeightedMaxMin, UnitWeightsMatchUnweighted) {
  const auto n = topo::make_dumbbell(4, 100.0);
  std::vector<SessionSpec> a, b;
  for (int i = 0; i < 4; ++i) {
    auto spec = make_session(n, i, n.hosts()[static_cast<std::size_t>(i)],
                             n.hosts()[static_cast<std::size_t>(i + 4)]);
    a.push_back(spec);
    spec.weight = 1.0;
    b.push_back(std::move(spec));
  }
  const auto ra = solve_reference(n, a);
  const auto rb = solve_reference(n, b);
  for (std::size_t i = 0; i < ra.rates.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.rates[i], rb.rates[i]);
  }
}

TEST(WeightedMaxMin, WeightsScaleInvariant) {
  // Multiplying every weight by a constant must not change the rates.
  const auto n = topo::make_dumbbell(3, 90.0);
  std::vector<SessionSpec> a, b;
  for (int i = 0; i < 3; ++i) {
    auto spec = make_session(n, i, n.hosts()[static_cast<std::size_t>(i)],
                             n.hosts()[static_cast<std::size_t>(i + 3)]);
    spec.weight = 1.0 + i;
    a.push_back(spec);
    spec.weight = (1.0 + i) * 7.5;
    b.push_back(std::move(spec));
  }
  const auto ra = solve_waterfill(n, a);
  const auto rb = solve_waterfill(n, b);
  for (std::size_t i = 0; i < ra.rates.size(); ++i) {
    EXPECT_NEAR(ra.rates[i], rb.rates[i], 1e-9);
  }
}

TEST(WeightedMaxMin, DemandCapsComposeWithWeights) {
  // Heavy session capped below its weighted share: the rest is
  // redistributed by weight.
  const auto n = topo::make_dumbbell(3, 60.0);
  std::vector<SessionSpec> s;
  for (int i = 0; i < 3; ++i) {
    auto spec = make_session(n, i, n.hosts()[static_cast<std::size_t>(i)],
                             n.hosts()[static_cast<std::size_t>(i + 3)]);
    spec.weight = 1.0 + i;  // shares would be 10/20/30
    s.push_back(std::move(spec));
  }
  s[2].demand = 12.0;  // capped: residual 48 split 1:2 -> 16/32
  expect_rates(solve_reference(n, s), {16.0, 32.0, 12.0});
  expect_rates(solve_waterfill(n, s), {16.0, 32.0, 12.0});
}

TEST(WeightedMaxMin, TwoLevelWeightedChain) {
  // Link A (30) shared by s0 (w=2) and s1 (w=1): levels 10 -> rates 20/10.
  // Link B (100) has s1 frozen at 10; s2 (w=1), s3 (w=2) split 90 as 30/60.
  Network n;
  const NodeId r0 = n.add_router();
  const NodeId r1 = n.add_router();
  const NodeId r2 = n.add_router();
  n.add_link_pair(r0, r1, 30.0, microseconds(1));
  n.add_link_pair(r1, r2, 100.0, microseconds(1));
  const NodeId a0 = n.add_host(r0, 1000.0, 0);
  const NodeId a1 = n.add_host(r0, 1000.0, 0);
  const NodeId b0 = n.add_host(r1, 1000.0, 0);
  const NodeId b1 = n.add_host(r1, 1000.0, 0);
  const NodeId b2 = n.add_host(r1, 1000.0, 0);
  const NodeId c0 = n.add_host(r2, 1000.0, 0);
  const NodeId c1 = n.add_host(r2, 1000.0, 0);
  std::vector<SessionSpec> s{
      make_session(n, 0, a0, b0), make_session(n, 1, a1, c0),
      make_session(n, 2, b1, c1), make_session(n, 3, b2, c1)};
  s[0].weight = 2.0;
  s[1].weight = 1.0;
  s[2].weight = 1.0;
  s[3].weight = 2.0;
  expect_rates(solve_reference(n, s), {20.0, 10.0, 30.0, 60.0});
  expect_rates(solve_waterfill(n, s), {20.0, 10.0, 30.0, 60.0});
}

TEST(WeightedMaxMin, SolversAgreeOnRandomWeightedInstances) {
  for (const std::uint64_t seed : {501u, 502u, 503u, 504u, 505u}) {
    Rng rng(seed);
    const auto n = topo::make_random(12, 8, 30, rng);
    const PathFinder pf(n);
    std::vector<SessionSpec> specs;
    const auto sources = sample_distinct(rng, 30, 20);
    for (std::int32_t i = 0; i < 20; ++i) {
      const NodeId src = n.hosts()[static_cast<std::size_t>(
          sources[static_cast<std::size_t>(i)])];
      NodeId dst = src;
      while (dst == src) {
        dst = n.hosts()[static_cast<std::size_t>(rng.uniform_int(0, 29))];
      }
      SessionSpec spec{SessionId{i}, *pf.shortest_path(src, dst),
                       rng.chance(0.3) ? rng.uniform_real(1.0, 100.0)
                                       : kRateInfinity};
      spec.weight = rng.uniform_real(0.25, 4.0);
      specs.push_back(std::move(spec));
    }
    const auto ref = solve_reference(n, specs);
    const auto fast = solve_waterfill(n, specs);
    for (std::size_t i = 0; i < ref.rates.size(); ++i) {
      EXPECT_NEAR(ref.rates[i], fast.rates[i],
                  1e-6 * std::max(1.0, ref.rates[i]))
          << "seed " << seed << " session " << i;
    }
    EXPECT_EQ(check_maxmin_invariants(n, specs, ref.rates), "")
        << "seed " << seed;
  }
}

TEST(WeightedMaxMin, NonPositiveWeightRejected) {
  const auto n = topo::make_line(2);
  auto spec = make_session(n, 0, n.hosts()[0], n.hosts()[1]);
  spec.weight = 0.0;
  std::vector<SessionSpec> s{std::move(spec)};
  EXPECT_THROW(solve_reference(n, s), InvariantError);
}

// ---- golden weighted regression: random instances, solver rates
// cross-checked against a naive reconstruction of annotate_links ----

std::vector<SessionSpec> weighted_instance(const Network& n, Rng& rng,
                                           std::int32_t count) {
  const PathFinder pf(n);
  std::vector<SessionSpec> specs;
  const auto sources = sample_distinct(rng, n.host_count(), count);
  for (std::int32_t i = 0; i < count; ++i) {
    const NodeId src = n.hosts()[static_cast<std::size_t>(
        sources[static_cast<std::size_t>(i)])];
    NodeId dst = src;
    while (dst == src) {
      dst = n.hosts()[static_cast<std::size_t>(
          rng.uniform_int(0, n.host_count() - 1))];
    }
    SessionSpec spec{SessionId{i}, *pf.shortest_path(src, dst),
                     rng.chance(0.3) ? rng.uniform_real(1.0, 100.0)
                                     : kRateInfinity};
    spec.weight = rng.uniform_real(0.25, 4.0);
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(WeightedMaxMin, RandomInstancesCrossCheckSolverAgainstAnnotation) {
  for (std::uint64_t seed = 601; seed <= 616; ++seed) {
    Rng rng(seed);
    const auto n = topo::make_random(10, 6, 24, rng);
    const auto specs = weighted_instance(n, rng, 16);

    const auto ref = solve_reference(n, specs);
    const auto fast = solve_waterfill(n, specs);
    ASSERT_EQ(ref.rates.size(), fast.rates.size());
    for (std::size_t i = 0; i < ref.rates.size(); ++i) {
      EXPECT_NEAR(ref.rates[i], fast.rates[i],
                  1e-6 * std::max(1.0, ref.rates[i]))
          << "seed " << seed << " session " << i;
    }
    EXPECT_EQ(check_maxmin_invariants(n, specs, ref.rates), "")
        << "seed " << seed;

    // Rebuild every LinkInfo field from scratch (plain loops over the
    // rate vector) and require exact agreement with annotate_links.
    const auto ann = annotate_links(n, specs, ref.rates);
    std::unordered_map<LinkId, LinkInfo> naive;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      for (const LinkId e : specs[i].path.links) {
        LinkInfo& info = naive.try_emplace(e).first->second;
        info.capacity = n.link(e).capacity;
        info.assigned += ref.rates[i];
        info.bottleneck_rate = std::max(info.bottleneck_rate,
                                        ref.rates[i] / specs[i].weight);
        ++info.sessions;
      }
    }
    ASSERT_EQ(ann.size(), naive.size()) << "seed " << seed;
    for (auto& [e, info] : naive) {
      info.saturated = rate_ge(info.assigned, info.capacity, kRateCheckEps);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const bool crosses =
            std::find(specs[i].path.links.begin(), specs[i].path.links.end(),
                      e) != specs[i].path.links.end();
        if (crosses && info.saturated &&
            rate_eq(ref.rates[i] / specs[i].weight, info.bottleneck_rate,
                    kRateCheckEps)) {
          ++info.restricted;
        }
      }
      const auto it = ann.find(e);
      ASSERT_NE(it, ann.end()) << "seed " << seed << " link " << e;
      EXPECT_DOUBLE_EQ(it->second.capacity, info.capacity);
      EXPECT_NEAR(it->second.assigned, info.assigned, 1e-9)
          << "seed " << seed << " link " << e;
      EXPECT_NEAR(it->second.bottleneck_rate, info.bottleneck_rate, 1e-9)
          << "seed " << seed << " link " << e;
      EXPECT_EQ(it->second.sessions, info.sessions)
          << "seed " << seed << " link " << e;
      EXPECT_EQ(it->second.saturated, info.saturated)
          << "seed " << seed << " link " << e;
      EXPECT_EQ(it->second.restricted, info.restricted)
          << "seed " << seed << " link " << e;
    }

    // Weighted restriction, asserted directly: every session meets its
    // demand or is maximal (λ/w) on some saturated link of its path.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (rate_eq(ref.rates[i], specs[i].demand, kRateCheckEps)) continue;
      bool restricted = false;
      for (const LinkId e : specs[i].path.links) {
        const LinkInfo& info = naive.at(e);
        if (info.saturated &&
            rate_eq(ref.rates[i] / specs[i].weight, info.bottleneck_rate,
                    kRateCheckEps)) {
          restricted = true;
          break;
        }
      }
      EXPECT_TRUE(restricted) << "seed " << seed << " session " << i;
    }
  }
}

TEST(WeightedMaxMin, GoldenRandomInstancesKeepTheirRates) {
  // Exact allocations pinned for two fixed instances: any semantic drift
  // in the weighted solvers (level ordering, demand transform, weight
  // normalization) shows up as a diff here even if both solvers drift in
  // lockstep and the property checks above still hold.
  const std::vector<std::pair<std::uint64_t, std::vector<Rate>>> golden = {
      {601,
       {74.7719580432, 69.0279161007, 21.4339875286, 25.0781396436, 100,
        95.0779020001, 100, 23.2081367708, 44.2627585494, 100, 38.0566488243,
        55.7372414506, 100, 100, 13.6570747612, 100}},
      {602,
       {34.1202756651, 65.8797243349, 18.1237117847, 83.4331518268, 100, 100,
        100, 100, 38.3297905543, 100, 100, 84.9254664986, 16.5668481732,
        38.3297905543, 95.7904851109, 100}},
  };
  for (const auto& [seed, want] : golden) {
    Rng rng(seed);
    const auto n = topo::make_random(10, 6, 24, rng);
    const auto specs = weighted_instance(n, rng, 16);
    expect_rates(solve_reference(n, specs), want, 1e-9);
    expect_rates(solve_waterfill(n, specs), want, 1e-6);
  }
}

// Water-filling on a transit-stub network (integration-sized instance).
TEST(MaxMin, TransitStubInstance) {
  auto params = topo::small_params();
  params.hosts = 200;
  Rng rng(77);
  const auto n = topo::make_transit_stub(params, rng);
  const PathFinder pf(n);
  std::vector<SessionSpec> specs;
  const auto sources = sample_distinct(rng, n.host_count(), 100);
  for (std::int32_t i = 0; i < 100; ++i) {
    const NodeId src = n.hosts()[static_cast<std::size_t>(sources[static_cast<std::size_t>(i)])];
    NodeId dst = src;
    while (dst == src) {
      dst = n.hosts()[static_cast<std::size_t>(rng.uniform_int(0, 199))];
    }
    auto path = pf.shortest_path(src, dst);
    ASSERT_TRUE(path.has_value());
    specs.push_back(SessionSpec{SessionId{i}, std::move(*path), kRateInfinity});
  }
  const auto ref = solve_reference(n, specs);
  const auto fast = solve_waterfill(n, specs);
  for (std::size_t i = 0; i < ref.rates.size(); ++i) {
    EXPECT_NEAR(ref.rates[i], fast.rates[i], 1e-6 * ref.rates[i]);
  }
  EXPECT_EQ(check_maxmin_invariants(n, specs, ref.rates), "");
}

}  // namespace
}  // namespace bneck::core
