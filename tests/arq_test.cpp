// Tests for the go-back-N reliable link layer and for B-Neck over lossy
// links (fault injection).
#include <gtest/gtest.h>

#include <vector>

#include "core/bneck.hpp"
#include "core/maxmin.hpp"
#include "net/routing.hpp"
#include "topo/canonical.hpp"
#include "transport/arq.hpp"

namespace bneck::core {
namespace {

using transport::ArqChannel;
using transport::ArqConfig;

// Unit harness: one ArqChannel over two FIFO channels with fixed delays.
struct ArqHarness {
  explicit ArqHarness(ArqConfig cfg = {}, std::uint64_t seed = 1)
      : channel(sim, data, ack, /*data_tx=*/100, /*data_prop=*/1000,
                /*ack_tx=*/100, /*ack_prop=*/1000, cfg, Rng(seed),
                [this](const Packet& p) { delivered.push_back(p.session); },
                [this](const Packet&) {
                  ++wire_sends;
                  wire_times.push_back(sim.now());
                }) {}

  Packet packet(int id) {
    Packet p;
    p.type = PacketType::Update;
    p.session = SessionId{id};
    return p;
  }

  sim::Simulator sim;
  sim::FifoChannel data, ack;
  std::vector<SessionId> delivered;
  std::uint64_t wire_sends = 0;
  std::vector<TimeNs> wire_times;
  ArqChannel channel;
};

TEST(Arq, DeliversInOrderWithoutLoss) {
  ArqHarness h;
  for (int i = 0; i < 10; ++i) h.channel.send(h.packet(i));
  h.sim.run_until_idle();
  ASSERT_EQ(h.delivered.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)], SessionId{i});
  EXPECT_EQ(h.channel.retransmissions(), 0u);
  EXPECT_TRUE(h.channel.idle());
}

TEST(Arq, NoTrafficWhenNothingToSend) {
  ArqHarness h;
  h.sim.run_until_idle();
  EXPECT_EQ(h.wire_sends, 0u);
  EXPECT_EQ(h.channel.acks_sent(), 0u);
}

TEST(Arq, WindowLimitsOutstandingData) {
  ArqConfig cfg;
  cfg.window = 4;
  ArqHarness h(cfg);
  for (int i = 0; i < 12; ++i) h.channel.send(h.packet(i));
  // Before any ack returns, only the window's worth is on the wire.
  EXPECT_EQ(h.wire_sends, 4u);
  h.sim.run_until_idle();
  EXPECT_EQ(h.delivered.size(), 12u);
}

TEST(Arq, RecoversFromHeavyDataLoss) {
  ArqConfig cfg;
  cfg.loss_probability = 0.4;
  ArqHarness h(cfg, /*seed=*/7);
  for (int i = 0; i < 50; ++i) h.channel.send(h.packet(i));
  h.sim.run_until_idle();
  ASSERT_EQ(h.delivered.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)], SessionId{i});
  EXPECT_GT(h.channel.retransmissions(), 0u);
  EXPECT_GT(h.channel.losses(), 0u);
  EXPECT_TRUE(h.channel.idle());
}

TEST(Arq, ExactlyOnceUnderLoss) {
  // Duplicates from retransmission must never reach the application.
  ArqConfig cfg;
  cfg.loss_probability = 0.3;
  cfg.window = 8;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ArqHarness h(cfg, seed);
    for (int i = 0; i < 30; ++i) h.channel.send(h.packet(i));
    h.sim.run_until_idle();
    ASSERT_EQ(h.delivered.size(), 30u) << "seed " << seed;
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)], SessionId{i})
          << "seed " << seed;
    }
  }
}

TEST(Arq, SurvivesAckLossOnly) {
  // Loss hits acks as well as data; cumulative acks repair it.
  ArqConfig cfg;
  cfg.loss_probability = 0.5;
  ArqHarness h(cfg, 99);
  for (int i = 0; i < 20; ++i) h.channel.send(h.packet(i));
  h.sim.run_until_idle();
  EXPECT_EQ(h.delivered.size(), 20u);
  EXPECT_TRUE(h.channel.idle());
}

TEST(Arq, StopAndWaitWindowOne) {
  ArqConfig cfg;
  cfg.window = 1;
  cfg.loss_probability = 0.25;
  ArqHarness h(cfg, 5);
  for (int i = 0; i < 15; ++i) h.channel.send(h.packet(i));
  h.sim.run_until_idle();
  ASSERT_EQ(h.delivered.size(), 15u);
  for (int i = 0; i < 15; ++i) EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)], SessionId{i});
}

TEST(Arq, SimultaneousDataAndAckLossRecovers) {
  // At 50% symmetric loss, rounds where the data frame AND the repair
  // ack both vanish are common; the retransmit timer must dig the
  // window out of every such double hole, for every seed.  Backoff is
  // on, so ack progress resetting the interval is exercised too.
  ArqConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.window = 2;
  cfg.backoff = 2.0;
  cfg.max_timeout = 200000;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ArqHarness h(cfg, seed);
    for (int i = 0; i < 10; ++i) h.channel.send(h.packet(i));
    h.sim.run_until_idle();
    ASSERT_EQ(h.delivered.size(), 10u) << "seed " << seed;
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)], SessionId{i})
          << "seed " << seed;
    }
    EXPECT_TRUE(h.channel.idle()) << "seed " << seed;
  }
}

TEST(Arq, RetransmitBackoffGrowsAndCaps) {
  // A black-hole wire (loss ~ 1) shows the bare timer cadence: with
  // backoff=2 the retransmit gaps must double each silent round until
  // the max_timeout ceiling.  The seeded Rng makes the trace exact.
  ArqConfig cfg;
  cfg.loss_probability = 0.999999;
  cfg.timeout = 1000;
  cfg.backoff = 2.0;
  cfg.max_timeout = 4000;
  ArqHarness h(cfg, /*seed=*/3);
  h.channel.send(h.packet(0));
  h.sim.run_until(16000);
  // Sends at t=0, 1000, 3000, 7000, 11000, ...: gaps 1, 2, 4, 4 us.
  ASSERT_GE(h.wire_times.size(), 5u);
  EXPECT_EQ(h.wire_times[1] - h.wire_times[0], 1000);
  EXPECT_EQ(h.wire_times[2] - h.wire_times[1], 2000);
  EXPECT_EQ(h.wire_times[3] - h.wire_times[2], 4000);
  EXPECT_EQ(h.wire_times[4] - h.wire_times[3], 4000);
  EXPECT_EQ(h.delivered.size(), 0u);
  EXPECT_GT(h.channel.retransmissions(), 0u);
}

TEST(Arq, BackoffedChannelStaysQuiescentWithoutLoss) {
  // Backoff must only engage on silent rounds: on a lossless wire a
  // backoffed channel behaves exactly like the fixed-interval one —
  // everything delivered first try, no retransmissions, then idle.
  ArqConfig cfg;
  cfg.backoff = 2.0;
  cfg.max_timeout = 80000;
  ArqHarness h(cfg);
  for (int i = 0; i < 3; ++i) h.channel.send(h.packet(i));
  h.sim.run_until_idle();
  ASSERT_EQ(h.delivered.size(), 3u);
  EXPECT_EQ(h.channel.retransmissions(), 0u);
  EXPECT_TRUE(h.channel.idle());
}

TEST(Arq, SequenceNumbersWrapThroughZero) {
  // A channel started near 2^64 must wrap through zero without
  // stalling, re-delivering or reordering — serial-number arithmetic
  // end to end, including under loss.
  ArqConfig cfg;
  cfg.first_seq = ~std::uint64_t{0} - 2;
  cfg.window = 4;
  ArqHarness h(cfg);
  for (int i = 0; i < 12; ++i) h.channel.send(h.packet(i));
  h.sim.run_until_idle();
  ASSERT_EQ(h.delivered.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)], SessionId{i});
  }
  EXPECT_TRUE(h.channel.idle());

  ArqConfig lossy = cfg;
  lossy.loss_probability = 0.3;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ArqHarness hl(lossy, seed);
    for (int i = 0; i < 20; ++i) hl.channel.send(hl.packet(i));
    hl.sim.run_until_idle();
    ASSERT_EQ(hl.delivered.size(), 20u) << "seed " << seed;
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(hl.delivered[static_cast<std::size_t>(i)], SessionId{i})
          << "seed " << seed;
    }
    EXPECT_TRUE(hl.channel.idle()) << "seed " << seed;
  }
}

TEST(Arq, InvalidConfigRejected) {
  ArqConfig cfg;
  cfg.window = 0;
  EXPECT_THROW(ArqHarness h(cfg), InvariantError);
  ArqConfig cfg2;
  cfg2.loss_probability = 1.0;
  EXPECT_THROW(ArqHarness h2(cfg2), InvariantError);
  ArqConfig cfg3;
  cfg3.backoff = 0.5;
  EXPECT_THROW(ArqHarness h3(cfg3), InvariantError);
}

// ---- B-Neck end-to-end over lossy links ----

void run_lossy_bneck(double loss, bool reliable, std::uint64_t seed,
                     bool expect_exact) {
  const auto n = topo::make_dumbbell(4, 100.0);
  const net::PathFinder paths(n);
  sim::Simulator sim;
  BneckConfig cfg;
  cfg.loss_probability = loss;
  cfg.reliable_links = reliable;
  cfg.loss_seed = seed;
  BneckProtocol bneck(sim, n, cfg);
  for (int i = 0; i < 4; ++i) {
    bneck.join(SessionId{i},
               *paths.shortest_path(n.hosts()[static_cast<std::size_t>(i)],
                                    n.hosts()[static_cast<std::size_t>(i + 4)]),
               kRateInfinity);
  }
  sim.run_until_idle();  // must terminate either way
  const auto specs = bneck.active_specs();
  const auto sol = solve_waterfill(n, specs);
  bool all_exact = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto got = bneck.notified_rate(specs[i].id);
    if (!got.has_value() || std::abs(*got - sol.rates[i]) > 1e-6) {
      all_exact = false;
    }
  }
  if (expect_exact) {
    EXPECT_TRUE(all_exact) << "loss=" << loss << " reliable=" << reliable
                           << " seed=" << seed;
    EXPECT_TRUE(bneck.all_tasks_stable());
  } else {
    EXPECT_FALSE(all_exact) << "expected the lossy run to break";
  }
}

TEST(BneckLossy, ReliableLinksZeroLossMatchesBaseline) {
  run_lossy_bneck(0.0, true, 1, /*expect_exact=*/true);
}

TEST(BneckLossy, ArqMasksTenPercentLoss) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_lossy_bneck(0.10, true, seed, /*expect_exact=*/true);
  }
}

TEST(BneckLossy, ArqMasksThirtyPercentLoss) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    run_lossy_bneck(0.30, true, seed, /*expect_exact=*/true);
  }
}

TEST(BneckLossy, WithoutArqLossBreaksTheProtocol) {
  // The paper's reliability assumption made concrete: with 40% loss and
  // no retransmission the computation wedges (the run still terminates —
  // nothing retransmits — but rates are missing or stale).
  run_lossy_bneck(0.40, false, 3, /*expect_exact=*/false);
}

TEST(BneckLossy, RetransmissionsAreCountedAndBounded) {
  const auto n = topo::make_dumbbell(2, 100.0);
  const net::PathFinder paths(n);
  sim::Simulator sim;
  BneckConfig cfg;
  cfg.loss_probability = 0.2;
  cfg.reliable_links = true;
  BneckProtocol bneck(sim, n, cfg);
  bneck.join(SessionId{0}, *paths.shortest_path(n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  bneck.join(SessionId{1}, *paths.shortest_path(n.hosts()[1], n.hosts()[3]),
             kRateInfinity);
  sim.run_until_idle();
  EXPECT_GT(bneck.retransmissions(), 0u);
  // Total traffic stays within a small factor of the loss-free run.
  EXPECT_LT(bneck.packets_sent(), 2000u);
  EXPECT_NEAR(*bneck.notified_rate(SessionId{0}), 50.0, 1e-6);
}

TEST(BneckLossy, QuiescentAfterArqDrains) {
  const auto n = topo::make_dumbbell(2, 100.0);
  const net::PathFinder paths(n);
  sim::Simulator sim;
  BneckConfig cfg;
  cfg.loss_probability = 0.15;
  cfg.reliable_links = true;
  BneckProtocol bneck(sim, n, cfg);
  bneck.join(SessionId{0}, *paths.shortest_path(n.hosts()[0], n.hosts()[2]),
             kRateInfinity);
  bneck.join(SessionId{1}, *paths.shortest_path(n.hosts()[1], n.hosts()[3]),
             kRateInfinity);
  sim.run_until_idle();
  const auto sent = bneck.packets_sent();
  sim.run_until(sim.now() + seconds(5));
  EXPECT_EQ(bneck.packets_sent(), sent);  // quiescent, ARQ included
  EXPECT_TRUE(sim.idle());
}

TEST(BneckLossy, DynamicsSurviveLoss) {
  const auto n = topo::make_dumbbell(6, 120.0);
  const net::PathFinder paths(n);
  sim::Simulator sim;
  BneckConfig cfg;
  cfg.loss_probability = 0.15;
  cfg.reliable_links = true;
  BneckProtocol bneck(sim, n, cfg);
  for (int i = 0; i < 6; ++i) {
    auto path = *paths.shortest_path(n.hosts()[static_cast<std::size_t>(i)],
                                     n.hosts()[static_cast<std::size_t>(i + 6)]);
    sim.schedule_at(microseconds(i * 50), [&bneck, i, path] {
      bneck.join(SessionId{i}, path, kRateInfinity);
    });
  }
  sim.schedule_at(milliseconds(2), [&bneck] { bneck.leave(SessionId{0}); });
  sim.schedule_at(milliseconds(2), [&bneck] { bneck.change(SessionId{1}, 5.0); });
  sim.run_until_idle();
  const auto specs = bneck.active_specs();
  const auto sol = solve_waterfill(n, specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_NEAR(*bneck.notified_rate(specs[i].id), sol.rates[i], 1e-6);
  }
}

}  // namespace
}  // namespace bneck::core
