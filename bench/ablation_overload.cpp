// Network friendliness — quantifies the paper's §I-B claim behind
// Fig. 7 (right): "due to these conservative transient rate assignments,
// it is expected that the network links will not suffer from packet
// overloading before convergence", versus BFYZ which overestimates and
// transiently oversubscribes bottlenecks.
//
// Both protocols run the same join burst; sessions are assumed to
// transmit at whatever rate the protocol last granted them; we integrate
// per-link assigned load over time and report peak utilization and the
// time links spent above capacity.
#include <iostream>

#include "bench_util.hpp"
#include "exp3_common.hpp"
#include "stats/table.hpp"
#include "workload/load_monitor.hpp"

using namespace bneck;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  benchutil::banner("Network friendliness (paper §I-B)",
                    "peak link utilization from assigned rates");

  const std::int32_t sessions = args.scaled(1000, 100);
  const auto setup = benchutil::make_exp3_setup(sessions, args.seed);
  const TimeNs horizon = milliseconds(60);
  std::printf("medium LAN network, %d sessions join / %zu leave in 5ms\n\n",
              sessions, setup.leavers);

  stats::Table table({"protocol", "peak utilization", "overloaded links",
                      "worst overload time"});
  for (const char* kind : {"B-Neck", "BFYZ"}) {
    sim::Simulator sim;
    auto p = benchutil::start_protocol(kind, sim, setup, args.seed);
    workload::LinkLoadMonitor monitor(setup.network);
    for (const auto& plan : setup.plans) {
      monitor.register_session(plan.id, plan.path);
    }
    // Sample assigned rates densely (50 us) and feed the monitor.
    for (TimeNs t = microseconds(50); t <= horizon; t += microseconds(50)) {
      sim.run_until(t);
      for (const auto& plan : setup.plans) {
        monitor.set_rate(plan.id, p->current_rate(plan.id), t);
      }
    }
    monitor.finalize(horizon);
    p->shutdown();
    table.add_row(
        {kind, stats::Table::num(monitor.max_utilization() * 100, 1) + "%",
         stats::Table::integer(
             static_cast<std::int64_t>(monitor.overloaded_links().size())),
         format_time(monitor.worst_overload())});
  }
  table.print(std::cout);
  std::printf(
      "\nShape check: B-Neck oversubscribes far fewer links, far less\n"
      "deeply and far more briefly than BFYZ.  Its residual overshoot\n"
      "comes from premature bottleneck certification (paper §III-C):\n"
      "a short session can be certified high before a longer session's\n"
      "Join reaches its links; the Update cascade repairs it within a\n"
      "few RTTs, whereas BFYZ's optimistic offers oversubscribe most\n"
      "bottlenecks for the whole convergence phase.\n");
  return 0;
}
