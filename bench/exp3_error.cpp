// Experiment 3 — paper Figure 7: distribution of the relative error of
// assigned rates, B-Neck vs BFYZ.
//
//   left  — error at sources:  e = 100 (a - x)/x per session
//   right — error in network links: e = 100 (Σa - Σx)/Σx per bottleneck
//
// Medium LAN network; the paper joins 100k sessions and removes 10k in
// the first 5 ms, then samples every 3 ms.  Default here is 2,000
// sessions (1/50); --scale adjusts (--scale 50 ≈ paper).
//
// Expected shape: B-Neck's percentiles stay at or below zero (it only
// assigns conservative transient rates: sessions without a confirmed
// rate score -100, never above the max-min value once joins drain),
// while BFYZ overshoots — positive 90th percentile and link-stress error
// early on — and takes longer to settle at zero.
#include <iostream>

#include "bench_util.hpp"
#include "exp3_common.hpp"
#include "stats/table.hpp"
#include "workload/parallel.hpp"

using namespace bneck;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  benchutil::banner("Figure 7", "relative rate error at sources and links");

  const std::int32_t sessions = args.full ? 100000 : args.scaled(2000, 100);
  const auto setup = benchutil::make_exp3_setup(sessions, args.seed);
  std::printf("medium LAN network, %d sessions join / %zu leave in 5ms\n\n",
              sessions, setup.leavers);

  workload::TrackedConfig tcfg;
  tcfg.horizon = milliseconds(120);
  tcfg.sample_interval = milliseconds(3);
  tcfg.tolerance_percent = 0.5;

  // Both protocol runs are independent simulations over the shared
  // read-only setup: fan out, then print per-protocol sections in fixed
  // order — output is identical to the sequential loop.
  const std::vector<std::string> kinds{"B-Neck", "BFYZ"};
  const auto results = workload::parallel_map<workload::TrackedResult>(
      kinds.size(), args.threads, [&](std::size_t i) {
        sim::Simulator sim;
        auto p = benchutil::start_protocol(kinds[i], sim, setup, args.seed);
        auto result = workload::run_tracked(sim, *p, setup.network, tcfg);
        p->shutdown();
        return result;
      });

  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const char* kind = kinds[i].c_str();
    const auto& result = results[i];

    std::printf("--- %s: error at sources (percent) ---\n", kind);
    stats::Table src({"t[ms]", "p10", "median", "avg", "p90"});
    stats::Table lnk({"t[ms]", "p10", "median", "avg", "p90"});
    for (const auto& s : result.samples) {
      src.add_row({stats::Table::num(to_millis(s.t), 0),
                   stats::Table::num(s.source_error.p10, 2),
                   stats::Table::num(s.source_error.p50, 2),
                   stats::Table::num(s.source_error.mean, 2),
                   stats::Table::num(s.source_error.p90, 2)});
      lnk.add_row({stats::Table::num(to_millis(s.t), 0),
                   stats::Table::num(s.link_error.p10, 2),
                   stats::Table::num(s.link_error.p50, 2),
                   stats::Table::num(s.link_error.mean, 2),
                   stats::Table::num(s.link_error.p90, 2)});
    }
    src.print(std::cout);
    std::printf("--- %s: error in network links (percent) ---\n", kind);
    lnk.print(std::cout);
    if (result.converged_at) {
      std::printf("%s converged (max|e| <= %.1f%%) at %s\n\n", kind,
                  tcfg.tolerance_percent,
                  format_time(*result.converged_at).c_str());
    } else {
      std::printf("%s did NOT converge within %s\n\n", kind,
                  format_time(tcfg.horizon).c_str());
    }
  }
  std::printf(
      "Shape check vs paper Fig. 7: B-Neck's p90 stays <= 0 (conservative\n"
      "transients) and reaches 0 first; BFYZ shows positive overshoot at\n"
      "sources and bottleneck links before settling.\n");
  return 0;
}
