// Experiment 2 — paper Figure 6: traffic details under a highly dynamic
// workload (packets of each type per 5 ms interval, five phases).
//
// Medium network, LAN delays.  Paper phases: 100k sessions join; 20k
// leave; 20k change rates; 20k join; 20k join + 20k leave + 20k change —
// each within the first 1 ms of its phase, with B-Neck requiescing in
// between (55/35/40/60/55 ms in the paper).  Default here is 1/10 of the
// paper's population (10k/2k join phases); --scale adjusts.
//
// --shards <k> runs the same workload on the sharded conservative
// parallel engine (core::ShardedBneck) with k worker shards.  The
// figure output on stdout is byte-identical to the classic single-thread
// path at any shard count (the determinism contract,
// docs/architecture.md); engine diagnostics go to stderr so A/B
// comparisons can diff stdout directly.
//
// Expected shape: a burst of Join/Probe/Response traffic at each phase
// start that dies out completely (quiescence) before the next phase;
// phase durations of the same order regardless of the churn type.
#include <iostream>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "stats/table.hpp"
#include "topo/transit_stub.hpp"
#include "workload/experiment.hpp"

using namespace bneck;

namespace {

struct Phase {
  const char* label;
  workload::PhaseSpec spec;
};

/// Shared figure loop: phase table + per-bin series, identical wording
/// for both engines (Runner = DynamicsRunner | ShardedDynamicsRunner).
template <class Runner>
void run_phases_and_report(Runner& runner, const std::vector<Phase>& phases) {
  stats::Table summary({"phase", "active after", "time-to-quiescence",
                        "packets", "max rel err"});
  for (const auto& ph : phases) {
    const auto r = runner.run_phase(ph.spec);
    summary.add_row(
        {ph.label,
         stats::Table::integer(static_cast<std::int64_t>(r.active_sessions)),
         format_time(r.duration()),
         stats::Table::integer(static_cast<std::int64_t>(r.packets)),
         stats::Table::num(runner.max_rate_error() * 100, 6) + "%"});
  }
  summary.print(std::cout);

  // The Figure-6 series proper: packets per type per 5 ms bin.
  const auto& bins = runner.bins();
  std::printf("\npackets per 5ms interval by type:\n");
  stats::Table series({"t[ms]", "Join", "Probe", "Response", "Update",
                       "Bottleneck", "SetBneck", "Leave", "total"});
  for (std::size_t b = 0; b < bins.bin_count(); ++b) {
    if (bins.bin_total(b) == 0) continue;  // quiescent interval
    std::vector<std::string> row{
        stats::Table::num(to_millis(bins.bin_start(b)), 0)};
    for (std::size_t c = 0; c < 7; ++c) {
      row.push_back(stats::Table::integer(
          static_cast<std::int64_t>(bins.at(b, c))));
    }
    row.push_back(stats::Table::integer(
        static_cast<std::int64_t>(bins.bin_total(b))));
    series.add_row(std::move(row));
  }
  series.print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 6: bursts at each phase start that\n"
      "drain to zero (quiescence) before the next phase; omitted rows are\n"
      "all-zero intervals — B-Neck sends nothing between phases.\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = benchutil::Args::parse(argc, argv);
  if (!args.full && args.scale == 1.0) args.scale = 0.1;  // default: 1/10 paper
  benchutil::banner("Figure 6", "per-type packet traffic across five churn phases");

  const std::int32_t base = args.full ? 100000 : args.scaled(100000, 50);
  const std::int32_t churn = base / 5;

  auto params = topo::medium_params();
  params.hosts = base + 3 * churn + 64;  // enough distinct source hosts
  Rng rng(args.seed);
  const net::Network network = topo::make_transit_stub(params, rng);
  std::printf("medium network: %d routers, %d hosts; phases sized %d/%d\n\n",
              network.router_count(), network.host_count(), base, churn);

  std::vector<Phase> phases;
  {
    workload::PhaseSpec p;
    p.joins = base;
    phases.push_back({"1: join", p});
  }
  {
    workload::PhaseSpec p;
    p.leaves = churn;
    phases.push_back({"2: leave", p});
  }
  {
    workload::PhaseSpec p;
    p.changes = churn;
    phases.push_back({"3: change", p});
  }
  {
    workload::PhaseSpec p;
    p.joins = churn;
    phases.push_back({"4: join", p});
  }
  {
    workload::PhaseSpec p;
    p.joins = churn;
    p.leaves = churn;
    p.changes = churn;
    phases.push_back({"5: mixed", p});
  }

  if (args.shards > 0) {
    core::ShardedConfig scfg;
    scfg.shards = args.shards;
    workload::ShardedDynamicsRunner runner(network, rng, scfg,
                                           milliseconds(5));
    const auto& part = runner.engine().partition();
    std::fprintf(stderr,
                 "sharded engine: %d shards, lookahead %lld ns, %zu cut "
                 "links\n",
                 runner.engine().shard_count(),
                 static_cast<long long>(part.lookahead),
                 part.cut_links.size());
    run_phases_and_report(runner, phases);
    std::fprintf(stderr,
                 "sharded engine: %llu barrier windows, %llu cross-shard "
                 "packets\n",
                 static_cast<unsigned long long>(
                     runner.engine().windows_run()),
                 static_cast<unsigned long long>(
                     runner.engine().cross_shard_packets()));
  } else {
    workload::DynamicsRunner runner(network, rng, {}, milliseconds(5));
    run_phases_and_report(runner, phases);
  }
  return 0;
}
