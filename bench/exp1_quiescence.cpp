// Experiment 1 — paper Figure 5 (left: time until quiescence; right:
// packets sent), both axes log-log in the paper.
//
// N sessions join uniformly at random in the first millisecond on the
// Small/Medium/Big transit-stub networks under LAN and WAN delay models;
// we report the time B-Neck takes to become quiescent and the total
// number of control packets sent across links.
//
// Paper scale sweeps N up to 300,000; the default here sweeps to 5,000
// (Small/Medium) and 1,000 (Big) so the whole binary runs in well under
// a minute.  --full enables the 20k/50k points, --scale multiplies N.
//
// Expected shape (paper §IV, Fig. 5): time is near-flat for small N and
// grows roughly linearly once sessions interact heavily; WAN curves are
// dominated by 40 ms average probe RTTs and sit above LAN for small N;
// packets grow roughly linearly in N with LAN slightly above WAN (more
// probe cycles complete per unit time), within one order of magnitude.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/maxmin.hpp"
#include "proto/bneck_driver.hpp"
#include "stats/table.hpp"
#include "topo/transit_stub.hpp"
#include "workload/experiment.hpp"
#include "workload/parallel.hpp"

using namespace bneck;

namespace {

struct RunResult {
  TimeNs quiescent_at = 0;
  std::uint64_t packets = 0;
  double max_error = 0;
};

RunResult run(const std::string& preset, topo::DelayModel delay,
              std::int32_t sessions, std::uint64_t seed) {
  auto params = topo::params_by_name(preset);
  params.delay_model = delay;
  params.hosts = std::max(sessions * 2, 16);
  Rng rng(seed);
  const net::Network network = topo::make_transit_stub(params, rng);
  const net::PathFinder paths(network);

  workload::WorkloadConfig wcfg;
  wcfg.sessions = sessions;
  wcfg.join_window = milliseconds(1);
  const auto plans = workload::generate_sessions(network, paths, wcfg, rng);

  sim::Simulator sim;
  proto::BneckDriver driver(sim, network);
  workload::schedule_joins(sim, driver, plans);
  RunResult r;
  r.quiescent_at = sim.run_until_idle();
  r.packets = driver.packets_sent();

  // Correctness audit (the paper validated every run against
  // Centralized B-Neck; we do the same).
  const auto specs = driver.active_specs();
  const auto sol = core::solve_waterfill(network, specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const double x = sol.rates[i];
    r.max_error = std::max(
        r.max_error, std::abs(driver.current_rate(specs[i].id) - x) / x);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  benchutil::banner("Figure 5", "time until quiescence and packets sent vs #sessions");

  struct Sweep {
    const char* preset;
    std::vector<std::int32_t> sessions;
  };
  std::vector<Sweep> sweeps{
      {"small", {10, 100, 1000, 5000}},
      {"medium", {10, 100, 1000, 5000}},
      {"big", {10, 100, 1000}},
  };
  if (args.full) {
    sweeps[0].sessions.push_back(20000);
    sweeps[1].sessions.push_back(20000);
    sweeps[1].sessions.push_back(50000);
    sweeps[2].sessions.push_back(5000);
  }

  // Every sweep point builds its own network, workload and simulator
  // from (preset, delay, N, seed) alone, so the grid fans out over the
  // thread pool; rows are merged in grid order — output is identical to
  // the sequential sweep at any --threads value.
  struct Point {
    const char* preset;
    topo::DelayModel delay;
    std::int32_t n;
  };
  std::vector<Point> points;
  for (const auto& sweep : sweeps) {
    for (const topo::DelayModel delay :
         {topo::DelayModel::Lan, topo::DelayModel::Wan}) {
      for (const std::int32_t n0 : sweep.sessions) {
        points.push_back({sweep.preset, delay, args.scaled(n0, 2)});
      }
    }
  }
  const auto results = workload::parallel_map<RunResult>(
      points.size(), args.threads, [&](std::size_t i) {
        return run(points[i].preset, points[i].delay, points[i].n, args.seed);
      });

  stats::Table table({"network", "scenario", "sessions", "quiescence",
                      "packets", "pkts/session", "max rel err"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    const RunResult& r = results[i];
    table.add_row(
        {pt.preset, pt.delay == topo::DelayModel::Lan ? "LAN" : "WAN",
         stats::Table::integer(pt.n), format_time(r.quiescent_at),
         stats::Table::integer(static_cast<std::int64_t>(r.packets)),
         stats::Table::num(static_cast<double>(r.packets) / pt.n, 1),
         stats::Table::num(r.max_error * 100, 6) + "%"});
  }
  table.print(std::cout);
  std::printf(
      "\nShape check vs paper Fig. 5: near-flat then ~linear time growth;\n"
      "WAN above LAN at small N (RTT-bound); packets ~linear in N with\n"
      "LAN >= WAN within an order of magnitude; every run max-min exact.\n");
  return 0;
}
