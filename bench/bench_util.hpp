// Shared helpers for the figure-reproduction bench binaries.
//
// Every binary runs with no arguments at a scaled-down default (so
// `for b in build/bench/*; do $b; done` finishes in minutes) and accepts
//   --scale <f>   multiply workload sizes by f (1.0 = paper scale where
//                 stated, defaults are well below 1)
//   --seed <n>    RNG seed
//   --threads <n> worker threads for independent sweep points (0 = all
//                 cores; also settable via $BNECK_THREADS).  Results are
//                 byte-identical at any thread count.
//   --shards <k>  run ONE simulation on the sharded conservative engine
//                 with k worker shards (0 = classic single-thread
//                 engine).  Only exp2_dynamics honors it today; output
//                 is byte-identical at any shard count.
// plus bench-specific flags documented in each binary's header comment.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace bneck::benchutil {

struct Args {
  double scale = 1.0;
  std::uint64_t seed = 1;
  bool full = false;
  std::size_t threads = 0;  // 0 = workload::default_parallelism()
  std::int32_t shards = 0;  // 0 = single-thread engine

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
        a.scale = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        a.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        a.threads = static_cast<std::size_t>(
            std::strtoull(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
        a.shards = static_cast<std::int32_t>(std::strtol(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--full") == 0) {
        a.full = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --scale <f> --seed <n> --threads <n> --shards <k> "
            "--full\n");
        std::exit(0);
      }
    }
    return a;
  }

  /// n scaled, at least lo.
  [[nodiscard]] std::int32_t scaled(std::int32_t n, std::int32_t lo = 1) const {
    const auto s = static_cast<std::int32_t>(static_cast<double>(n) * scale);
    return s < lo ? lo : s;
  }
};

inline void banner(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("==============================================================\n");
}

}  // namespace bneck::benchutil
