// Shared setup for the Experiment 3 benches (Figures 7 and 8 and the
// CG/RCP non-convergence observation): a Medium LAN network where N
// sessions join and N/10 of them leave within the first 5 ms.
#pragma once

#include <memory>
#include <string>

#include "proto/bfyz.hpp"
#include "proto/bneck_driver.hpp"
#include "proto/cg.hpp"
#include "proto/rcp.hpp"
#include "topo/transit_stub.hpp"
#include "workload/experiment.hpp"

namespace bneck::benchutil {

struct Exp3Setup {
  net::Network network;
  std::vector<workload::SessionPlan> plans;
  std::size_t leavers = 0;
  TimeNs churn_window = milliseconds(5);
};

inline Exp3Setup make_exp3_setup(std::int32_t sessions, std::uint64_t seed) {
  Exp3Setup setup;
  auto params = topo::medium_params();
  params.hosts = sessions * 2;
  Rng rng(seed);
  setup.network = topo::make_transit_stub(params, rng);
  const net::PathFinder paths(setup.network);
  workload::WorkloadConfig wcfg;
  wcfg.sessions = sessions;
  wcfg.join_window = setup.churn_window - microseconds(500);
  setup.plans = workload::generate_sessions(setup.network, paths, wcfg, rng);
  setup.leavers = static_cast<std::size_t>(sessions / 10);
  return setup;
}

/// Instantiates a protocol by name over a fresh simulator and schedules
/// the joins and the leaves (the last `leavers` planned sessions leave).
inline std::unique_ptr<proto::FairShareProtocol> start_protocol(
    const std::string& kind, sim::Simulator& sim, const Exp3Setup& setup,
    std::uint64_t seed, core::TraceSink* trace = nullptr) {
  std::unique_ptr<proto::FairShareProtocol> p;
  if (kind == "B-Neck") {
    p = std::make_unique<proto::BneckDriver>(sim, setup.network,
                                             core::BneckConfig{}, trace);
  } else if (kind == "BFYZ") {
    p = std::make_unique<proto::Bfyz>(sim, setup.network);
  } else if (kind == "CG") {
    p = std::make_unique<proto::CobbGouda>(sim, setup.network);
  } else {
    p = std::make_unique<proto::Rcp>(sim, setup.network);
  }
  workload::schedule_joins(sim, *p, setup.plans);
  Rng leave_rng(seed ^ 0xfeedfaceULL);
  workload::schedule_leaves(sim, *p, setup.plans,
                            setup.plans.size() - setup.leavers, setup.leavers,
                            setup.churn_window, leave_rng);
  return p;
}

}  // namespace bneck::benchutil
