// Experiment 3 — paper Figure 8: control packets transmitted per
// interval, B-Neck vs BFYZ, same workload as Figure 7.
//
// Expected shape: B-Neck's per-interval traffic peaks while rates are
// being (re)computed and drops to *zero* once every session has
// converged — it is quiescent.  BFYZ's traffic stays at a constant
// plateau forever (one RM cell per session per period, regenerated at
// every hop), because it cannot detect convergence.
#include <iostream>

#include "bench_util.hpp"
#include "exp3_common.hpp"
#include "stats/table.hpp"
#include "stats/time_series.hpp"
#include "workload/parallel.hpp"

using namespace bneck;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  benchutil::banner("Figure 8", "packets transmitted per 3ms interval");

  const std::int32_t sessions = args.full ? 100000 : args.scaled(2000, 100);
  const auto setup = benchutil::make_exp3_setup(sessions, args.seed);
  const TimeNs horizon = milliseconds(120);
  const TimeNs bin = milliseconds(3);
  std::printf("medium LAN network, %d sessions join / %zu leave in 5ms\n\n",
              sessions, setup.leavers);

  // Both protocols run on independent simulators; fan out and print in
  // fixed order afterwards, so the output matches the sequential run.
  struct ProtoRun {
    std::vector<std::uint64_t> col;
    std::uint64_t packets = 0;
  };
  const std::vector<std::string> names{"B-Neck", "BFYZ"};
  const auto runs = workload::parallel_map<ProtoRun>(
      names.size(), args.threads, [&](std::size_t i) {
        sim::Simulator sim;
        auto p = benchutil::start_protocol(names[i], sim, setup, args.seed);
        stats::BinnedCounter bins(bin, {"pkts"});
        p->set_packet_listener([&bins](TimeNs t) { bins.add(t, 0); });
        sim.run_until(horizon);
        p->shutdown();
        ProtoRun run;
        for (TimeNs t = 0; t < horizon; t += bin) {
          run.col.push_back(bins.at(static_cast<std::size_t>(t / bin), 0));
        }
        run.packets = p->packets_sent();
        return run;
      });

  std::vector<std::vector<std::uint64_t>> columns;
  for (std::size_t i = 0; i < names.size(); ++i) {
    columns.push_back(runs[i].col);
    std::printf("%s total packets in %s: %llu\n", names[i].c_str(),
                format_time(horizon).c_str(),
                static_cast<unsigned long long>(runs[i].packets));
  }

  std::printf("\n");
  stats::Table table({"t[ms]", names[0], names[1]});
  for (std::size_t b = 0; b < columns[0].size(); ++b) {
    table.add_row({stats::Table::num(static_cast<double>(b) * to_millis(bin), 0),
                   stats::Table::integer(static_cast<std::int64_t>(columns[0][b])),
                   stats::Table::integer(static_cast<std::int64_t>(columns[1][b]))});
  }
  table.print(std::cout);

  // The quiescence headline: B-Neck's last interval with any traffic.
  std::size_t last_active = 0;
  for (std::size_t b = 0; b < columns[0].size(); ++b) {
    if (columns[0][b] > 0) last_active = b;
  }
  std::printf(
      "\nB-Neck sends nothing after t=%.0fms; BFYZ keeps its plateau\n"
      "(~constant packets per interval) forever — the paper's Fig. 8.\n",
      static_cast<double>(last_active + 1) * to_millis(bin));
  return 0;
}
