// Ablation bench: design choices called out in docs/protocol.md.
//
//   (a) transmission-time modelling on/off — how much of the time to
//       quiescence is serialization on shared links vs propagation and
//       protocol logic;
//   (b) control packet size — B-Neck's convergence time as a function
//       of control overhead per packet;
//   (c) BFYZ cell period — the traffic/convergence trade-off that a
//       non-quiescent protocol is forced to make and B-Neck is not.
#include <iostream>

#include "bench_util.hpp"
#include "proto/bfyz.hpp"
#include "proto/bneck_driver.hpp"
#include "stats/table.hpp"
#include "topo/transit_stub.hpp"
#include "workload/experiment.hpp"

using namespace bneck;

namespace {

struct Setup {
  net::Network network;
  std::vector<workload::SessionPlan> plans;
};

Setup make_setup(std::int32_t sessions, std::uint64_t seed) {
  Setup s;
  auto params = topo::small_params();
  params.hosts = sessions * 2;
  Rng rng(seed);
  s.network = topo::make_transit_stub(params, rng);
  const net::PathFinder pf(s.network);
  workload::WorkloadConfig wcfg;
  wcfg.sessions = sessions;
  s.plans = workload::generate_sessions(s.network, pf, wcfg, rng);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  benchutil::banner("Ablations", "timing model, packet size, cell period");

  const std::int32_t sessions = args.scaled(1000, 50);
  const Setup setup = make_setup(sessions, args.seed);
  std::printf("small LAN network, %d sessions join within 1ms\n\n", sessions);

  // (a) + (b): B-Neck under different transport models.
  stats::Table bneck_table(
      {"variant", "time-to-quiescence", "packets", "pkts/session"});
  struct Variant {
    std::string label;
    core::BneckConfig cfg;
  };
  std::vector<Variant> variants;
  {
    core::BneckConfig c;
    c.model_transmission = false;
    variants.push_back({"propagation only (no tx time)", c});
  }
  for (const std::int64_t bits : {512, 4096, 12000}) {
    core::BneckConfig c;
    c.packet_bits = bits;
    variants.push_back({std::to_string(bits / 8) + "-byte packets", c});
  }
  for (const auto& v : variants) {
    sim::Simulator sim;
    proto::BneckDriver driver(sim, setup.network, v.cfg);
    workload::schedule_joins(sim, driver, setup.plans);
    const TimeNs t = sim.run_until_idle();
    bneck_table.add_row(
        {v.label, format_time(t),
         stats::Table::integer(static_cast<std::int64_t>(driver.packets_sent())),
         stats::Table::num(
             static_cast<double>(driver.packets_sent()) / sessions, 1)});
  }
  std::printf("(a)+(b) B-Neck transport ablation:\n");
  bneck_table.print(std::cout);

  // (c) BFYZ cell-period sweep: convergence time vs steady-state traffic.
  std::printf("\n(c) BFYZ cell period (non-quiescent trade-off):\n");
  stats::Table bfyz_table({"cell period", "converged at",
                           "packets/ms after convergence"});
  for (const std::int64_t period_us : {250, 500, 1000, 2000}) {
    sim::Simulator sim;
    proto::BfyzConfig cfg;
    cfg.cell.cell_period = microseconds(period_us);
    cfg.recompute_period = microseconds(period_us);
    proto::Bfyz bfyz(sim, setup.network, cfg);
    workload::schedule_joins(sim, bfyz, setup.plans);
    workload::TrackedConfig tcfg;
    tcfg.horizon = milliseconds(200);
    tcfg.sample_interval = microseconds(500);
    tcfg.tolerance_percent = 1.0;
    workload::ErrorSampler sampler(setup.network, bfyz);
    std::optional<TimeNs> converged;
    for (TimeNs t = tcfg.sample_interval; t <= tcfg.horizon;
         t += tcfg.sample_interval) {
      sim.run_until(t);
      const auto s = sampler.sample(t);
      if (s.sessions > 0 && s.max_abs_error <= tcfg.tolerance_percent) {
        converged = t;
        break;
      }
    }
    std::uint64_t after = 0;
    if (converged) {
      const std::uint64_t before_pkts = bfyz.packets_sent();
      sim.run_until(*converged + milliseconds(10));
      after = (bfyz.packets_sent() - before_pkts) / 10;
    }
    bfyz.shutdown();
    bfyz_table.add_row(
        {format_time(microseconds(period_us)),
         converged ? format_time(*converged) : "not in 200ms",
         converged ? stats::Table::integer(static_cast<std::int64_t>(after))
                   : "-"});
  }
  bfyz_table.print(std::cout);
  std::printf(
      "\nReading: shorter cell periods converge faster only until the\n"
      "control channel itself saturates (cells queue behind each other on\n"
      "shared links, rates go stale, convergence is lost) — and every\n"
      "period pays its traffic plateau forever.  B-Neck's steady-state\n"
      "traffic is 0 at any packet size; bigger control packets only\n"
      "stretch its convergence via serialization.\n");
  return 0;
}
