// Micro-benchmarks of the substrates (google-benchmark): event queue
// throughput, FIFO channels, link-table operations, routing and the
// centralized solvers.  These bound the simulation cost per protocol
// packet and validate that the paper-scale runs are feasible.
#include <benchmark/benchmark.h>

#include "core/link_table.hpp"
#include "core/maxmin.hpp"
#include "core/packet.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"
#include "topo/canonical.hpp"
#include "topo/transit_stub.hpp"

namespace bneck {
namespace {

// The event-queue benches are templated over the simulator's queue seam
// so the production ladder queue and the PR-2 reference heap run side by
// side in one binary — an interleaved same-host A/B (the CI smoke runs
// exactly this filter; see .github/workflows/ci.yml).  The unsuffixed
// names are the production queue, so their history stays comparable
// across BENCH_pr*.json baselines; the "...Heap" variants are the
// reference.

// Callback-kind events: the cold path (std::function, may allocate).
template <class Sim>
void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    std::int64_t sum = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.schedule_at(i % 1000, [&sum, i] { sum += i; });
    }
    sim.run_until_idle();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_TEMPLATE(BM_EventQueueScheduleRun, sim::Simulator)
    ->Name("BM_EventQueueScheduleRun")
    ->Arg(1000)
    ->Arg(100000);
BENCHMARK_TEMPLATE(BM_EventQueueScheduleRun, sim::HeapSimulator)
    ->Name("BM_EventQueueScheduleRunHeap")
    ->Arg(1000)
    ->Arg(100000);

// Delivery-kind events: the allocation-free hot path every protocol
// packet takes (a Packet payload stored inline, one handler dispatch).
struct PacketCounter final
    : sim::DeliveryHandlerOf<PacketCounter, core::Packet> {
  std::int64_t sum = 0;
  void on_delivery(const core::Packet& p) { sum += p.hop; }
};

template <class Sim>
void BM_EventQueuePacketDelivery(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    PacketCounter counter;
    core::Packet p;
    for (std::int64_t i = 0; i < n; ++i) {
      p.hop = static_cast<std::int32_t>(i);
      sim.schedule_delivery_at(i % 1000, counter, p);
    }
    sim.run_until_idle();
    benchmark::DoNotOptimize(counter.sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_TEMPLATE(BM_EventQueuePacketDelivery, sim::Simulator)
    ->Name("BM_EventQueuePacketDelivery")
    ->Arg(1000)
    ->Arg(100000);
BENCHMARK_TEMPLATE(BM_EventQueuePacketDelivery, sim::HeapSimulator)
    ->Name("BM_EventQueuePacketDeliveryHeap")
    ->Arg(1000)
    ->Arg(100000);

// Mixed schedule like a real run: mostly deliveries, some callbacks.
template <class Sim>
void BM_EventQueueMixed(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    PacketCounter counter;
    std::int64_t sum = 0;
    core::Packet p;
    for (std::int64_t i = 0; i < n; ++i) {
      if (i % 16 == 0) {
        sim.schedule_at(i % 1000, [&sum, i] { sum += i; });
      } else {
        p.hop = static_cast<std::int32_t>(i);
        sim.schedule_delivery_at(i % 1000, counter, p);
      }
    }
    sim.run_until_idle();
    benchmark::DoNotOptimize(counter.sum + sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_TEMPLATE(BM_EventQueueMixed, sim::Simulator)
    ->Name("BM_EventQueueMixed")
    ->Arg(100000);
BENCHMARK_TEMPLATE(BM_EventQueueMixed, sim::HeapSimulator)
    ->Name("BM_EventQueueMixedHeap")
    ->Arg(100000);

void BM_FifoChannelTransmit(benchmark::State& state) {
  sim::FifoChannel ch;
  TimeNs now = 0;
  for (auto _ : state) {
    now += 10;
    benchmark::DoNotOptimize(ch.transmit(now, 5, 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoChannelTransmit);

void BM_LinkTableInsertEraseCycle(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    core::LinkSessionTable t(1000.0);
    for (std::int32_t i = 0; i < n; ++i) {
      t.insert_R(SessionId{i}, 1);
      t.set_idle_with_lambda(SessionId{i}, 1000.0 / (1 + i % 10));
    }
    benchmark::DoNotOptimize(t.be());
    for (std::int32_t i = 0; i < n; ++i) t.erase(SessionId{i});
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinkTableInsertEraseCycle)->Arg(100)->Arg(10000);

void BM_LinkTableBottleneckPredicate(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  core::LinkSessionTable t(1000.0);
  for (std::int32_t i = 0; i < n; ++i) {
    t.insert_R(SessionId{i}, 1);
    t.set_idle_with_lambda(SessionId{i}, 1000.0 / n);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.all_R_idle_at_be());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkTableBottleneckPredicate)->Arg(100)->Arg(10000);

void BM_TransitStubGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto params = state.range(0) == 0 ? topo::small_params()
                                      : topo::medium_params();
    params.hosts = 1000;
    Rng rng(1);
    const auto n = topo::make_transit_stub(params, rng);
    benchmark::DoNotOptimize(n.link_count());
  }
}
BENCHMARK(BM_TransitStubGeneration)->Arg(0)->Arg(1);

void BM_ShortestPathQuery(benchmark::State& state) {
  auto params = topo::medium_params();
  params.hosts = 2000;
  Rng rng(2);
  const auto network = topo::make_transit_stub(params, rng);
  const net::PathFinder pf(network);
  std::size_t i = 0;
  for (auto _ : state) {
    const NodeId a = network.hosts()[i % 2000];
    const NodeId b = network.hosts()[(i * 7 + 1) % 2000];
    ++i;
    if (a == b) continue;
    benchmark::DoNotOptimize(pf.shortest_path(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShortestPathQuery);

// Shared across the two solver benchmarks (built once).
const net::Network* g_solver_net = nullptr;
std::vector<core::SessionSpec>* g_solver_specs = nullptr;

void solver_setup(std::int32_t sessions) {
  static std::optional<net::Network> network;
  static std::vector<core::SessionSpec> specs;
  static std::int32_t built_for = -1;
  if (built_for != sessions) {
    auto params = topo::small_params();
    params.hosts = sessions * 2;
    Rng rng(3);
    network = topo::make_transit_stub(params, rng);
    const net::PathFinder pf(*network);
    specs.clear();
    for (std::int32_t i = 0; i < sessions; ++i) {
      const NodeId a = network->hosts()[static_cast<std::size_t>(i)];
      NodeId b = a;
      while (b == a) {
        b = network->hosts()[static_cast<std::size_t>(
            rng.uniform_int(0, sessions * 2 - 1))];
      }
      specs.push_back({SessionId{i}, *pf.shortest_path(a, b), kRateInfinity});
    }
    built_for = sessions;
  }
  g_solver_net = &*network;
  g_solver_specs = &specs;
}

void BM_WaterfillSolver(benchmark::State& state) {
  solver_setup(static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_waterfill(*g_solver_net, *g_solver_specs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WaterfillSolver)->Arg(100)->Arg(2000);

void BM_ReferenceSolver(benchmark::State& state) {
  solver_setup(static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_reference(*g_solver_net, *g_solver_specs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReferenceSolver)->Arg(100)->Arg(2000);

}  // namespace
}  // namespace bneck

BENCHMARK_MAIN();
