// Experiment 3 — the paper's side observation (§IV): "the other two
// protocols [CG and RCP] did not converge to the solution in the time
// allocated when more than 500 sessions were considered."
//
// Runs all four protocols on a 600-session Medium-LAN workload and
// reports whether each reached the max-min rates (within 1%) inside the
// time budget.  Expected: B-Neck exact and quiescent quickly; BFYZ
// converges (slower); CG and RCP still far from the solution when the
// budget expires.
#include <iostream>

#include "bench_util.hpp"
#include "exp3_common.hpp"
#include "stats/table.hpp"
#include "workload/parallel.hpp"

using namespace bneck;

int main(int argc, char** argv) {
  const auto args = benchutil::Args::parse(argc, argv);
  benchutil::banner("Experiment 3 (text claim)",
                    "CG and RCP fail to converge beyond ~500 sessions");

  const std::int32_t sessions = args.scaled(600, 50);
  const auto setup = benchutil::make_exp3_setup(sessions, args.seed);
  const TimeNs budget = milliseconds(150);
  std::printf("medium LAN network, %d sessions, budget %s, tolerance 1%%\n\n",
              sessions, format_time(budget).c_str());

  workload::TrackedConfig tcfg;
  tcfg.horizon = budget;
  tcfg.sample_interval = milliseconds(1);
  tcfg.tolerance_percent = 1.0;

  // The four protocols run on independent simulators over the shared
  // (read-only) setup: fan them out and merge rows in protocol order.
  const std::vector<std::string> kinds{"B-Neck", "BFYZ", "CG", "RCP"};
  const auto results = workload::parallel_map<workload::TrackedResult>(
      kinds.size(), args.threads, [&](std::size_t i) {
        sim::Simulator sim;
        auto p = benchutil::start_protocol(kinds[i], sim, setup, args.seed);
        auto result = workload::run_tracked(sim, *p, setup.network, tcfg);
        p->shutdown();
        return result;
      });

  stats::Table table({"protocol", "converged", "at", "final max|e|",
                      "final median e", "packets"});
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const auto& result = results[i];
    const auto& last = result.samples.back();
    table.add_row(
        {kinds[i], result.converged_at ? "yes" : "NO",
         result.converged_at ? format_time(*result.converged_at) : "-",
         stats::Table::num(last.max_abs_error, 2) + "%",
         stats::Table::num(last.source_error.p50, 2) + "%",
         stats::Table::integer(static_cast<std::int64_t>(result.total_packets))});
  }
  table.print(std::cout);
  std::printf(
      "\nShape check vs paper §IV: the exact, per-session-state protocols\n"
      "(B-Neck, BFYZ) reach the solution; the constant-state estimators\n"
      "(CG, RCP) are still approximating when the budget runs out.\n");
  return 0;
}
