// Micro-benchmarks of the protocols themselves (google-benchmark):
// end-to-end B-Neck convergence runs (how many sessions per second of
// wall clock the simulator pushes to quiescence) and the per-cycle cost
// of the baselines.
#include <benchmark/benchmark.h>

#include "proto/bfyz.hpp"
#include "proto/bneck_driver.hpp"
#include "topo/transit_stub.hpp"
#include "workload/experiment.hpp"

namespace bneck {
namespace {

struct Instance {
  net::Network network;
  std::vector<workload::SessionPlan> plans;
};

const Instance& instance(std::int32_t sessions) {
  static std::map<std::int32_t, Instance> cache;
  auto it = cache.find(sessions);
  if (it == cache.end()) {
    Instance inst;
    auto params = topo::small_params();
    params.hosts = sessions * 2;
    Rng rng(7);
    inst.network = topo::make_transit_stub(params, rng);
    const net::PathFinder pf(inst.network);
    workload::WorkloadConfig wcfg;
    wcfg.sessions = sessions;
    inst.plans = workload::generate_sessions(inst.network, pf, wcfg, rng);
    it = cache.emplace(sessions, std::move(inst)).first;
  }
  return it->second;
}

void BM_BneckJoinBurstToQuiescence(benchmark::State& state) {
  const auto sessions = static_cast<std::int32_t>(state.range(0));
  const Instance& inst = instance(sessions);
  std::uint64_t packets = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    proto::BneckDriver driver(sim, inst.network);
    workload::schedule_joins(sim, driver, inst.plans);
    sim.run_until_idle();
    packets = driver.packets_sent();
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["packets"] = static_cast<double>(packets);
}
BENCHMARK(BM_BneckJoinBurstToQuiescence)->Arg(100)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_BneckSingleLeaveReconvergence(benchmark::State& state) {
  // Steady-state reactivity: one departure out of N established sessions.
  const auto sessions = static_cast<std::int32_t>(state.range(0));
  const Instance& inst = instance(sessions);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    proto::BneckDriver driver(sim, inst.network);
    workload::schedule_joins(sim, driver, inst.plans);
    sim.run_until_idle();
    state.ResumeTiming();
    driver.leave(inst.plans.front().id);
    sim.run_until_idle();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BneckSingleLeaveReconvergence)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_BfyzSimulatedMillisecond(benchmark::State& state) {
  // Cost of keeping the non-quiescent baseline alive for 1 ms of
  // simulated time at N sessions (B-Neck's cost for the same interval
  // after convergence is zero).
  const auto sessions = static_cast<std::int32_t>(state.range(0));
  const Instance& inst = instance(sessions);
  sim::Simulator sim;
  proto::Bfyz bfyz(sim, inst.network);
  for (const auto& plan : inst.plans) {
    sim.schedule_at(plan.join_at,
                    [&bfyz, plan] { bfyz.join(plan.id, plan.path, plan.demand); });
  }
  sim.run_until(milliseconds(20));  // settle
  for (auto _ : state) {
    sim.run_until(sim.now() + milliseconds(1));
  }
  bfyz.shutdown();
  state.SetItemsProcessed(state.iterations() * sessions);
}
BENCHMARK(BM_BfyzSimulatedMillisecond)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bneck

BENCHMARK_MAIN();
