// Micro-benchmarks of the protocols themselves (google-benchmark):
// end-to-end B-Neck convergence runs (how many sessions per second of
// wall clock the simulator pushes to quiescence), the per-cycle cost of
// the baselines, and isolated A/B runs of the LinkSessionTable access
// paths (id-keyed wrappers vs resolved SessionHandle) plus the
// RateIndex insert-erase churn they drive — so a table-dispatch
// regression shows up here directly, not only through exp2 wall-clock.
#include <benchmark/benchmark.h>

#include "core/link_table.hpp"
#include "core/rate_index.hpp"
#include "proto/bfyz.hpp"
#include "proto/bneck_driver.hpp"
#include "topo/transit_stub.hpp"
#include "workload/experiment.hpp"

namespace bneck {
namespace {

struct Instance {
  net::Network network;
  std::vector<workload::SessionPlan> plans;
};

const Instance& instance(std::int32_t sessions) {
  static std::map<std::int32_t, Instance> cache;
  auto it = cache.find(sessions);
  if (it == cache.end()) {
    Instance inst;
    auto params = topo::small_params();
    params.hosts = sessions * 2;
    Rng rng(7);
    inst.network = topo::make_transit_stub(params, rng);
    const net::PathFinder pf(inst.network);
    workload::WorkloadConfig wcfg;
    wcfg.sessions = sessions;
    inst.plans = workload::generate_sessions(inst.network, pf, wcfg, rng);
    it = cache.emplace(sessions, std::move(inst)).first;
  }
  return it->second;
}

void BM_BneckJoinBurstToQuiescence(benchmark::State& state) {
  const auto sessions = static_cast<std::int32_t>(state.range(0));
  const Instance& inst = instance(sessions);
  std::uint64_t packets = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    proto::BneckDriver driver(sim, inst.network);
    workload::schedule_joins(sim, driver, inst.plans);
    sim.run_until_idle();
    packets = driver.packets_sent();
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["packets"] = static_cast<double>(packets);
}
BENCHMARK(BM_BneckJoinBurstToQuiescence)->Arg(100)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_BneckSingleLeaveReconvergence(benchmark::State& state) {
  // Steady-state reactivity: one departure out of N established sessions.
  const auto sessions = static_cast<std::int32_t>(state.range(0));
  const Instance& inst = instance(sessions);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    proto::BneckDriver driver(sim, inst.network);
    workload::schedule_joins(sim, driver, inst.plans);
    sim.run_until_idle();
    state.ResumeTiming();
    driver.leave(inst.plans.front().id);
    sim.run_until_idle();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BneckSingleLeaveReconvergence)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_BfyzSimulatedMillisecond(benchmark::State& state) {
  // Cost of keeping the non-quiescent baseline alive for 1 ms of
  // simulated time at N sessions (B-Neck's cost for the same interval
  // after convergence is zero).
  const auto sessions = static_cast<std::int32_t>(state.range(0));
  const Instance& inst = instance(sessions);
  sim::Simulator sim;
  proto::Bfyz bfyz(sim, inst.network);
  for (const auto& plan : inst.plans) {
    sim.schedule_at(plan.join_at,
                    [&bfyz, plan] { bfyz.join(plan.id, plan.path, plan.demand); });
  }
  sim.run_until(milliseconds(20));  // settle
  for (auto _ : state) {
    sim.run_until(sim.now() + milliseconds(1));
  }
  bfyz.shutdown();
  state.SetItemsProcessed(state.iterations() * sessions);
}
BENCHMARK(BM_BfyzSimulatedMillisecond)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- LinkSessionTable access paths: id wrappers vs handles ----
//
// Both benchmarks run the same per-session mini-cycle a RouterLink
// performs when a Response closes a probe (state flip to WAITING_PROBE
// and back, rate acceptance, hop read for the upstream emit).  The id
// variant pays one hash probe per operation — the pre-handle dispatch
// model; the handle variant resolves once and rides the epoch check.

void table_cycle_by_id(core::LinkSessionTable& t, SessionId s, Rate lambda,
                       std::int64_t& sink) {
  t.set_mu(s, core::Mu::WaitingProbe);
  t.set_mu(s, core::Mu::WaitingResponse);
  t.set_idle_with_lambda(s, lambda);
  sink += t.hop(s) + static_cast<std::int64_t>(t.in_R(s));
}

void table_cycle_by_handle(core::LinkSessionTable& t, SessionId s, Rate lambda,
                           std::int64_t& sink) {
  core::LinkSessionTable::SessionHandle h = t.find(s);
  t.set_mu(h, core::Mu::WaitingProbe);
  t.set_mu(h, core::Mu::WaitingResponse);
  t.set_idle_with_lambda(h, lambda);
  sink += t.hop(h) + static_cast<std::int64_t>(t.in_R(h));
}

core::LinkSessionTable make_table(std::int32_t sessions) {
  core::LinkSessionTable t(1000.0);
  for (std::int32_t i = 0; i < sessions; ++i) {
    t.insert_R(SessionId{i}, i % 7);
    // Half idle at a shared level, half still probing: a realistic mix
    // of index membership.
    if (i % 2 == 0) t.set_idle_with_lambda(SessionId{i}, 1000.0 / sessions);
  }
  return t;
}

void BM_LinkTableIdOps(benchmark::State& state) {
  const auto sessions = static_cast<std::int32_t>(state.range(0));
  core::LinkSessionTable t = make_table(sessions);
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (std::int32_t i = 0; i < sessions; ++i) {
      table_cycle_by_id(t, SessionId{i}, 1000.0 / sessions, sink);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * sessions);
}
BENCHMARK(BM_LinkTableIdOps)->Arg(16)->Arg(256)->Arg(4096);

void BM_LinkTableHandleOps(benchmark::State& state) {
  const auto sessions = static_cast<std::int32_t>(state.range(0));
  core::LinkSessionTable t = make_table(sessions);
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (std::int32_t i = 0; i < sessions; ++i) {
      table_cycle_by_handle(t, SessionId{i}, 1000.0 / sessions, sink);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * sessions);
}
BENCHMARK(BM_LinkTableHandleOps)->Arg(16)->Arg(256)->Arg(4096);

// ---- RateIndex insert-erase churn ----
//
// Every set_idle_with_lambda / set_mu transition re-keys a session in
// one of the two ordered indexes: an erase at the old level and an
// insert at the new one.  The paper's convergence pattern clusters all
// Re sessions on very few distinct levels, so the index is optimized
// for few-levels/many-members; this bench pins the cost of that churn
// across level spreads (1, 8 and sessions/4 distinct levels).

void BM_RateIndexChurn(benchmark::State& state) {
  const auto sessions = static_cast<std::int32_t>(state.range(0));
  const auto levels = static_cast<std::int32_t>(state.range(1));
  core::RateIndex index;
  const auto level_of = [&](std::int32_t i, std::int32_t shift) {
    return 10.0 + static_cast<Rate>((i + shift) % levels);
  };
  for (std::int32_t i = 0; i < sessions; ++i) {
    index.insert(level_of(i, 0), SessionId{i});
  }
  std::int32_t shift = 0;
  for (auto _ : state) {
    // Move every member to the neighbouring level: erase + insert, the
    // exact op pair the table's mutations produce.
    for (std::int32_t i = 0; i < sessions; ++i) {
      index.erase(level_of(i, shift), SessionId{i});
      index.insert(level_of(i, shift + 1), SessionId{i});
    }
    ++shift;
  }
  benchmark::DoNotOptimize(index.size());
  state.SetItemsProcessed(state.iterations() * sessions);
}
BENCHMARK(BM_RateIndexChurn)
    ->Args({256, 1})
    ->Args({256, 8})
    ->Args({256, 64})
    ->Args({4096, 8});

}  // namespace
}  // namespace bneck

BENCHMARK_MAIN();
