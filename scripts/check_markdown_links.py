#!/usr/bin/env python3
"""Docs hygiene: validate intra-repo markdown links and anchors.

Scans the given markdown files (default: README.md, ROADMAP.md and
docs/*.md relative to the repo root) for inline links `[text](target)`
and checks that

  * relative file targets exist (querystring-free, repo-relative or
    file-relative);
  * `#anchor` fragments — both in-page and on a linked markdown file —
    match a heading of the target file under GitHub's slug rules;
  * absolute http(s)/mailto targets are *not* checked (offline).

Exit code 0 when every link resolves, 1 otherwise (each broken link is
reported on stderr).  `--self-test` exercises the checker against
synthetic files in a temp dir and needs no repo state.
"""

import argparse
import pathlib
import re
import sys
import tempfile

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links
    heading = heading.lower()
    heading = re.sub(r"[^\w\- ]", "", heading, flags=re.UNICODE)
    return heading.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    anchors = set()
    seen = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def links_of(path: pathlib.Path):
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(md: pathlib.Path, repo_root: pathlib.Path) -> list:
    errors = []
    for lineno, target in links_of(md):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        target, _, fragment = target.partition("#")
        if target:
            dest = (md.parent / target).resolve()
            if not dest.exists():
                dest_from_root = (repo_root / target).resolve()
                if dest_from_root.exists():
                    dest = dest_from_root
                else:
                    errors.append(f"{md}:{lineno}: broken link target "
                                  f"'{target}'")
                    continue
        else:
            dest = md
        if fragment and dest.suffix == ".md":
            if fragment not in anchors_of(dest):
                errors.append(f"{md}:{lineno}: broken anchor "
                              f"'#{fragment}' in '{dest.name}'")
    return errors


def run(files, repo_root: pathlib.Path) -> int:
    errors = []
    for f in files:
        if not f.exists():
            errors.append(f"{f}: file not found")
            continue
        errors.extend(check_file(f, repo_root))
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        print(f"checked {len(files)} markdown file(s): all links ok")
    return 1 if errors else 0


def self_test() -> int:
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        (root / "docs").mkdir()
        (root / "docs" / "a.md").write_text(
            "# Title\n\n## Weighted max-min\n\n"
            "[ok](b.md)\n[ok2](b.md#section-two)\n[self](#weighted-max-min)\n"
            "```\n[not a link in a fence](nope.md)\n```\n",
            encoding="utf-8")
        (root / "docs" / "b.md").write_text(
            "# B\n\n## Section two\n", encoding="utf-8")
        (root / "bad.md").write_text(
            "[broken](missing.md)\n[badanchor](docs/b.md#nope)\n"
            "[web](https://example.com/untouched)\n", encoding="utf-8")
        good = run([root / "docs" / "a.md"], root)
        assert good == 0, "clean file flagged"
        bad_errors = check_file(root / "bad.md", root)
        assert len(bad_errors) == 2, f"want 2 errors, got {bad_errors}"
        assert "missing.md" in bad_errors[0]
        assert "#nope" in bad_errors[1]
    print("self-test ok")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*", type=pathlib.Path,
                    help="markdown files (default: README.md, ROADMAP.md, "
                         "docs/*.md)")
    ap.add_argument("--repo-root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    files = args.files
    if not files:
        root = args.repo_root
        files = [root / "README.md", root / "ROADMAP.md"]
        files += sorted((root / "docs").glob("*.md"))
    return run(files, args.repo_root)


if __name__ == "__main__":
    sys.exit(main())
