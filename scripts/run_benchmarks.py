#!/usr/bin/env python3
"""Benchmark driver: runs the exp1-exp3, ablation and micro benchmarks and
emits a machine-readable JSON report (BENCH_seed.json by default).

The report is the perf baseline every scaling PR is measured against:

    {
      "schema": "bneck-bench/1",
      "generated_at_utc": "...",
      "host": {"machine": ..., "system": ..., "cpus": ...},
      "config": {"scale": 0.1, "seed": 1},
      "benches": [
        {"name": "exp1_quiescence", "cmd": [...], "exit_code": 0,
         "wall_seconds": 1.23, "stdout": "..."},
        ...
      ],
      "micro": [<google-benchmark JSON report per micro binary>]
    }

Usage (normally via the `run_benchmarks` CMake target):
    scripts/run_benchmarks.py --bench-dir build/bench --output build/BENCH_seed.json
"""
import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import time

FIGURE_BENCHES = [
    "exp1_quiescence",
    "exp2_dynamics",
    "exp3_error",
    "exp3_nonconvergence",
    "exp3_packets",
    "ablation_overload",
    "ablation_timing",
]
MICRO_BENCHES = ["micro_substrate", "micro_protocol"]


def run_figure_bench(path, scale, seed, timeout):
    cmd = [path, "--scale", str(scale), "--seed", str(seed)]
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
        exit_code, stdout, stderr = proc.returncode, proc.stdout, proc.stderr
    except subprocess.TimeoutExpired as exc:
        exit_code = -1
        stdout = (exc.stdout or b"").decode() if isinstance(exc.stdout, bytes) else (exc.stdout or "")
        stderr = f"timeout after {timeout}s"
    wall = time.monotonic() - start
    return {
        "name": os.path.basename(path),
        "cmd": cmd,
        "exit_code": exit_code,
        "wall_seconds": round(wall, 3),
        "stdout": stdout,
        "stderr": stderr,
    }


def run_micro_bench(path, min_time, timeout):
    cmd = [path, f"--benchmark_min_time={min_time}", "--benchmark_format=json"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
    except subprocess.TimeoutExpired:
        return {"name": os.path.basename(path), "error": f"timeout after {timeout}s"}
    if proc.returncode != 0:
        return {
            "name": os.path.basename(path),
            "error": f"exit code {proc.returncode}",
            "stderr": proc.stderr,
        }
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError:
        return {"name": os.path.basename(path), "error": "unparseable JSON output"}
    report["name"] = os.path.basename(path)
    return report


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-dir", required=True, help="directory with bench binaries")
    ap.add_argument("--output", default="BENCH_seed.json")
    ap.add_argument("--scale", type=float, default=0.1,
                    help="workload scale passed to the figure benches (default 0.1)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--micro-min-time", type=float, default=0.05,
                    help="google-benchmark --benchmark_min_time (default 0.05)")
    ap.add_argument("--timeout", type=float, default=600.0, help="per-binary timeout")
    args = ap.parse_args()

    report = {
        "schema": "bneck-bench/1",
        "generated_at_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "release": platform.release(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "micro_min_time": args.micro_min_time,
        },
        "benches": [],
        "micro": [],
    }

    failures = 0
    for name in FIGURE_BENCHES:
        path = os.path.join(args.bench_dir, name)
        if not os.path.exists(path):
            print(f"[skip] {name}: binary not built", file=sys.stderr)
            continue
        print(f"[run ] {name} --scale {args.scale} --seed {args.seed}", flush=True)
        result = run_figure_bench(path, args.scale, args.seed, args.timeout)
        report["benches"].append(result)
        if result["exit_code"] != 0:
            failures += 1
            print(f"[FAIL] {name}: exit {result['exit_code']}", file=sys.stderr)
        else:
            print(f"[ ok ] {name}: {result['wall_seconds']}s")

    for name in MICRO_BENCHES:
        path = os.path.join(args.bench_dir, name)
        if not os.path.exists(path):
            print(f"[skip] {name}: binary not built (google-benchmark missing?)",
                  file=sys.stderr)
            continue
        print(f"[run ] {name} (min_time={args.micro_min_time})", flush=True)
        result = run_micro_bench(path, args.micro_min_time, args.timeout)
        report["micro"].append(result)
        if "error" in result:
            failures += 1
            print(f"[FAIL] {name}: {result['error']}", file=sys.stderr)
        else:
            print(f"[ ok ] {name}: {len(result.get('benchmarks', []))} cases")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output} ({len(report['benches'])} figure benches, "
          f"{len(report['micro'])} micro reports)")
    if not report["benches"] and not report["micro"]:
        print(f"no bench binaries found in {args.bench_dir}", file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
