#!/usr/bin/env python3
"""Benchmark driver: runs the exp1-exp3, ablation and micro benchmarks and
emits a machine-readable JSON report (BENCH_seed.json by default).

The report is the perf baseline every scaling PR is measured against:

    {
      "schema": "bneck-bench/1",
      "generated_at_utc": "...",
      "host": {"machine": ..., "system": ..., "cpus": ...},
      "config": {"scale": 0.1, "seed": 1},
      "benches": [
        {"name": "exp1_quiescence", "cmd": [...], "exit_code": 0,
         "wall_seconds": 1.23, "stdout": "..."},
        ...
      ],
      "micro": [<google-benchmark JSON report per micro binary>]
    }

Usage (normally via the `run_benchmarks` CMake target):
    scripts/run_benchmarks.py --bench-dir build/bench --output build/BENCH_seed.json

Perf-regression gate: pass --compare <baseline.json> to diff this run
against a committed baseline.  The check fails (exit 1) when
  * a figure bench's wall-clock regresses by more than --wall-tolerance
    (default 10%), or
  * any output-shape field differs: figure-bench stdout is fully
    deterministic (simulated times, packet counts, per-type bins), so the
    whitespace-normalized stdout must match the baseline byte for byte.
Baselines recorded at a different scale/seed are rejected outright.
"""
import argparse
import datetime
import hashlib
import json
import os
import platform
import subprocess
import sys
import time

FIGURE_BENCHES = [
    "exp1_quiescence",
    "exp2_dynamics",
    "exp3_error",
    "exp3_nonconvergence",
    "exp3_packets",
    "ablation_overload",
    "ablation_timing",
]
MICRO_BENCHES = ["micro_substrate", "micro_protocol"]


def run_figure_bench(path, scale, seed, timeout):
    cmd = [path, "--scale", str(scale), "--seed", str(seed)]
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
        exit_code, stdout, stderr = proc.returncode, proc.stdout, proc.stderr
    except subprocess.TimeoutExpired as exc:
        exit_code = -1
        stdout = (exc.stdout or b"").decode() if isinstance(exc.stdout, bytes) else (exc.stdout or "")
        stderr = f"timeout after {timeout}s"
    wall = time.monotonic() - start
    return {
        "name": os.path.basename(path),
        "cmd": cmd,
        "exit_code": exit_code,
        "wall_seconds": round(wall, 3),
        "stdout": stdout,
        "stderr": stderr,
    }


def run_micro_bench(path, min_time, timeout):
    cmd = [path, f"--benchmark_min_time={min_time}", "--benchmark_format=json"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
    except subprocess.TimeoutExpired:
        return {"name": os.path.basename(path), "error": f"timeout after {timeout}s"}
    if proc.returncode != 0:
        return {
            "name": os.path.basename(path),
            "error": f"exit code {proc.returncode}",
            "stderr": proc.stderr,
        }
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError:
        return {"name": os.path.basename(path), "error": "unparseable JSON output"}
    report["name"] = os.path.basename(path)
    return report


def normalized_lines(stdout):
    """stdout as a list of whitespace-normalized non-empty lines."""
    return [" ".join(line.split()) for line in stdout.splitlines() if line.strip()]


def compare_reports(baseline, report, wall_tolerance):
    """Diffs wall-clock and output shape; returns the number of failures."""
    failures = 0
    base_cfg, new_cfg = baseline.get("config", {}), report.get("config", {})
    for key in ("scale", "seed"):
        if base_cfg.get(key) != new_cfg.get(key):
            print(f"[FAIL] compare: baseline {key}={base_cfg.get(key)} vs "
                  f"current {key}={new_cfg.get(key)}; rerun with matching config",
                  file=sys.stderr)
            return 1
    base_by_name = {b["name"]: b for b in baseline.get("benches", [])}
    print(f"\ncomparison vs baseline (wall tolerance {wall_tolerance:.0%}):")
    print(f"{'bench':<22} {'base[s]':>9} {'now[s]':>9} {'speedup':>8}  shape")
    for bench in report.get("benches", []):
        name = bench["name"]
        base = base_by_name.get(name)
        if base is None:
            print(f"{name:<22} {'-':>9} {bench['wall_seconds']:>9.3f} "
                  f"{'-':>8}  (not in baseline)")
            continue
        wall_ok = bench["wall_seconds"] <= base["wall_seconds"] * (1 + wall_tolerance)
        shape_ok = normalized_lines(bench["stdout"]) == normalized_lines(base["stdout"])
        speedup = (base["wall_seconds"] / bench["wall_seconds"]
                   if bench["wall_seconds"] > 0 else float("inf"))
        verdict = "ok" if shape_ok else "MISMATCH"
        if not wall_ok:
            verdict += " +SLOWER"
        print(f"{name:<22} {base['wall_seconds']:>9.3f} "
              f"{bench['wall_seconds']:>9.3f} {speedup:>7.2f}x  {verdict}")
        if not shape_ok:
            base_lines = normalized_lines(base["stdout"])
            new_lines = normalized_lines(bench["stdout"])
            for i, (a, b) in enumerate(zip(base_lines, new_lines)):
                if a != b:
                    print(f"[FAIL] compare: {name}: output shape mismatch, "
                          f"first differing line ({i}):", file=sys.stderr)
                    print(f"    baseline: {a}", file=sys.stderr)
                    print(f"    current : {b}", file=sys.stderr)
                    break
            else:
                print(f"[FAIL] compare: {name}: output shape mismatch, "
                      f"line count {len(base_lines)} -> {len(new_lines)}",
                      file=sys.stderr)
            failures += 1
        if not wall_ok:
            regression = (bench["wall_seconds"] / base["wall_seconds"] - 1.0
                          if base["wall_seconds"] > 0 else float("inf"))
            print(f"[FAIL] compare: {name}: wall-clock regressed "
                  f"{base['wall_seconds']:.3f}s -> {bench['wall_seconds']:.3f}s "
                  f"(+{regression:.1%}, tolerance {wall_tolerance:.0%})",
                  file=sys.stderr)
            failures += 1
    missing = sorted(set(base_by_name) -
                     {b["name"] for b in report.get("benches", [])})
    for name in missing:
        print(f"[FAIL] compare: baseline bench {name} missing from this run",
              file=sys.stderr)
        failures += 1
    return failures


def self_test():
    """Unit-tests the --compare failure paths (no binaries needed).

    Exercises exactly the cases developers hit: a wall-clock regression
    must name the offending bench and print both wall times; a shape
    mismatch must name the bench and the first differing line; missing
    benches and config mismatches must fail.  Run via
    `run_benchmarks.py --self-test` (wired into CTest).
    """
    import contextlib
    import io

    def bench(name, wall, stdout):
        return {"name": name, "wall_seconds": wall, "stdout": stdout}

    def report(*benches):
        return {"config": {"scale": 0.1, "seed": 1},
                "benches": list(benches)}

    def run_compare(baseline, current, tol=0.10):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            failures = compare_reports(baseline, current, tol)
        return failures, out.getvalue(), err.getvalue()

    checks = 0

    def expect(cond, what):
        nonlocal checks
        checks += 1
        if not cond:
            raise AssertionError(f"self-test: {what}")

    # 1. identical reports pass.
    base = report(bench("exp1", 1.0, "a 1\nb 2\n"), bench("exp2", 2.0, "x\n"))
    failures, _, err = run_compare(base, report(*base["benches"]))
    expect(failures == 0, f"identical reports flagged: {err}")

    # 2. a wall regression names the bench and both wall times.
    slow = report(bench("exp1", 1.0, "a 1\nb 2\n"), bench("exp2", 9.0, "x\n"))
    failures, _, err = run_compare(base, slow)
    expect(failures == 1, "wall regression not counted exactly once")
    expect("[FAIL] compare: exp2" in err, f"offending bench not named: {err}")
    expect("2.000s" in err and "9.000s" in err,
           f"both wall times not printed: {err}")
    expect("exp1" not in err, f"passing bench dragged into stderr: {err}")

    # 3. wall noise inside the tolerance passes.
    noisy = report(bench("exp1", 1.05, "a 1\nb 2\n"), bench("exp2", 2.0, "x\n"))
    failures, _, err = run_compare(base, noisy)
    expect(failures == 0, f"in-tolerance wall diff flagged: {err}")

    # 4. a shape mismatch names the bench and the first differing line.
    shape = report(bench("exp1", 1.0, "a 1\nb 3\n"), bench("exp2", 2.0, "x\n"))
    failures, _, err = run_compare(base, shape)
    expect(failures == 1, "shape mismatch not counted exactly once")
    expect("[FAIL] compare: exp1" in err and "b 2" in err and "b 3" in err,
           f"shape mismatch not localized: {err}")

    # 5. whitespace-only differences are normalized away.
    spaced = report(bench("exp1", 1.0, "  a   1\n\nb 2\n"),
                    bench("exp2", 2.0, "x\n"))
    failures, _, err = run_compare(base, spaced)
    expect(failures == 0, f"whitespace-normalized diff flagged: {err}")

    # 6. a bench missing from the new run fails by name.
    failures, _, err = run_compare(base, report(base["benches"][0]))
    expect(failures == 1 and "exp2" in err,
           f"missing bench not reported: {err}")

    # 7. a config mismatch refuses the comparison outright.
    other = report(bench("exp1", 1.0, "a 1\nb 2\n"))
    other["config"] = {"scale": 1.0, "seed": 1}
    failures, _, err = run_compare(base, other)
    expect(failures == 1 and "scale" in err,
           f"config mismatch not rejected: {err}")

    print(f"self-test ok ({checks} checks)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-dir",
                    help="directory with bench binaries (required unless "
                         "--self-test)")
    ap.add_argument("--output", default="BENCH_seed.json")
    ap.add_argument("--scale", type=float, default=0.1,
                    help="workload scale passed to the figure benches (default 0.1)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--micro-min-time", type=float, default=0.05,
                    help="google-benchmark --benchmark_min_time (default 0.05)")
    ap.add_argument("--timeout", type=float, default=600.0, help="per-binary timeout")
    ap.add_argument("--compare", metavar="BASELINE_JSON",
                    help="diff wall-clock and output shape against a baseline "
                         "report; exit non-zero on regression or mismatch")
    ap.add_argument("--wall-tolerance", type=float, default=0.10,
                    help="allowed fractional wall-clock regression in "
                         "--compare mode (default 0.10)")
    ap.add_argument("--wall-repeats", type=int, default=1,
                    help="run the whole figure list N times (interleaved "
                         "rounds) and record the fastest wall per bench; "
                         "use the same N when recording a baseline and when "
                         "comparing against it on a host with bursty "
                         "background load)")
    ap.add_argument("--shard-ab", metavar="K1,K2,...",
                    help="after the figure benches, run exp2_dynamics at "
                         "these shard counts plus the classic single-thread "
                         "engine (interleaved --wall-repeats rounds, fastest "
                         "wall kept) and record walls + stdout digests under "
                         "report['shard_ab']")
    ap.add_argument("--shard-ab-args", default="--full",
                    help="workload flags for the shard A/B runs (default "
                         "'--full': the paper-scale 100k-session exp2)")
    ap.add_argument("--shard-ab-repeats", type=int, default=1,
                    help="interleaved rounds for the shard A/B runs "
                         "(decoupled from --wall-repeats: the A/B workload "
                         "is minutes per run, not seconds)")
    ap.add_argument("--big-scale", type=float,
                    help="record one large exp2_dynamics run at this scale "
                         "(10 = 1.4M session events) under report['big_run']")
    ap.add_argument("--big-shards", type=int, default=4,
                    help="shard count for the --big-scale run (0 = classic "
                         "single-thread engine; default 4)")
    ap.add_argument("--self-test", action="store_true",
                    help="unit-test the --compare failure paths and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.bench_dir:
        ap.error("--bench-dir is required (unless --self-test)")

    report = {
        "schema": "bneck-bench/1",
        "generated_at_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "release": platform.release(),
            "cpus": os.cpu_count(),
            # Workers actually usable by this process (cgroup/affinity
            # aware), and the $BNECK_THREADS override the benches saw:
            # the context a reader needs to judge any parallel-speedup
            # claim in this report.
            "effective_cpus": (len(os.sched_getaffinity(0))
                               if hasattr(os, "sched_getaffinity")
                               else os.cpu_count()),
            "bneck_threads": os.environ.get("BNECK_THREADS"),
        },
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "micro_min_time": args.micro_min_time,
        },
        "benches": [],
        "micro": [],
    }

    failures = 0
    # --wall-repeats rounds over the whole figure list, keeping the
    # fastest wall per bench.  Interleaved rounds (not back-to-back
    # repeats) so a multi-second background-load burst lands on
    # different benches in different rounds; min-of-N walls make the
    # --compare gate usable on hosts with bursty neighbours.  The
    # output is deterministic, so only the wall differs between rounds.
    best = {}
    rounds = max(1, args.wall_repeats)
    for rnd in range(rounds):
        for name in FIGURE_BENCHES:
            path = os.path.join(args.bench_dir, name)
            if not os.path.exists(path):
                if rnd == 0:
                    print(f"[skip] {name}: binary not built", file=sys.stderr)
                continue
            if rnd == 0:
                print(f"[run ] {name} --scale {args.scale} --seed {args.seed}"
                      + (f" ({rounds} rounds)" if rounds > 1 else ""),
                      flush=True)
            result = run_figure_bench(path, args.scale, args.seed, args.timeout)
            if result["exit_code"] != 0:
                failures += 1
                print(f"[FAIL] {name}: exit {result['exit_code']}",
                      file=sys.stderr)
                best[name] = result
                break
            if (name not in best
                    or result["wall_seconds"] < best[name]["wall_seconds"]):
                best[name] = result
    for name in FIGURE_BENCHES:
        if name not in best:
            continue
        report["benches"].append(best[name])
        if best[name]["exit_code"] == 0:
            print(f"[ ok ] {name}: {best[name]['wall_seconds']}s")

    for name in MICRO_BENCHES:
        path = os.path.join(args.bench_dir, name)
        if not os.path.exists(path):
            print(f"[skip] {name}: binary not built (google-benchmark missing?)",
                  file=sys.stderr)
            continue
        print(f"[run ] {name} (min_time={args.micro_min_time})", flush=True)
        result = run_micro_bench(path, args.micro_min_time, args.timeout)
        report["micro"].append(result)
        if "error" in result:
            failures += 1
            print(f"[FAIL] {name}: {result['error']}", file=sys.stderr)
        else:
            print(f"[ ok ] {name}: {len(result.get('benchmarks', []))} cases")

    # Shard A/B: the same exp2 workload through the classic engine and
    # the sharded engine at each requested shard count, interleaved
    # rounds like the figure benches.  The record keeps a stdout digest
    # per variant so a reader can see exactly which shard counts
    # reproduced the classic output byte for byte on this workload
    # (one shard always must; split runs may differ only by
    # same-instant cross-shard tie order — docs/architecture.md).
    # Judge any speedup against host.effective_cpus: on a single-core
    # host the sharded runs are expected to be *slower* (barrier and
    # thread overhead with no parallel hardware under it).
    exp2 = os.path.join(args.bench_dir, "exp2_dynamics")
    if args.shard_ab:
        counts = [int(k) for k in args.shard_ab.split(",")]
        workload = args.shard_ab_args.split() + ["--seed", str(args.seed)]
        variants = [("classic", workload)] + [
            (f"shards={k}", workload + ["--shards", str(k)]) for k in counts]
        best_ab = {}
        ab_rounds = max(1, args.shard_ab_repeats)
        for rnd in range(ab_rounds):
            for label, flags in variants:
                if rnd == 0:
                    print(f"[run ] exp2_dynamics [{label}] "
                          f"{' '.join(flags)}" +
                          (f" ({ab_rounds} rounds)" if ab_rounds > 1 else ""),
                          flush=True)
                start = time.monotonic()
                proc = subprocess.run([exp2] + flags, capture_output=True,
                                      text=True, timeout=args.timeout)
                wall = round(time.monotonic() - start, 3)
                if proc.returncode != 0:
                    failures += 1
                    print(f"[FAIL] shard A/B [{label}]: exit "
                          f"{proc.returncode}", file=sys.stderr)
                prev = best_ab.get(label)
                if prev is None or wall < prev["wall_seconds"]:
                    best_ab[label] = {
                        "label": label,
                        "cmd": [exp2] + flags,
                        "exit_code": proc.returncode,
                        "wall_seconds": wall,
                        "stdout_sha256":
                            hashlib.sha256(proc.stdout.encode()).hexdigest(),
                        "stderr": proc.stderr,
                    }
        classic = best_ab.get("classic", {})
        for label, entry in best_ab.items():
            entry["identical_to_classic"] = (
                entry["stdout_sha256"] == classic.get("stdout_sha256"))
            speed = (classic.get("wall_seconds", 0) / entry["wall_seconds"]
                     if entry["wall_seconds"] > 0 else float("inf"))
            print(f"[ ok ] shard A/B [{label}]: {entry['wall_seconds']}s "
                  f"({speed:.2f}x vs classic, output "
                  f"{'identical' if entry['identical_to_classic'] else 'differs'})")
        report["shard_ab"] = {
            "workload": workload,
            "rounds": ab_rounds,
            "runs": [best_ab[label] for label, _ in variants
                     if label in best_ab],
        }

    # One large run — the scaling headline.  Recorded separately from
    # the figure benches so --compare against older baselines is
    # unaffected.
    if args.big_scale is not None:
        flags = ["--scale", str(args.big_scale), "--seed", str(args.seed)]
        if args.big_shards > 0:
            flags += ["--shards", str(args.big_shards)]
        print(f"[run ] exp2_dynamics [big] {' '.join(flags)}", flush=True)
        start = time.monotonic()
        proc = subprocess.run([exp2] + flags, capture_output=True, text=True,
                              timeout=args.timeout)
        wall = round(time.monotonic() - start, 3)
        if proc.returncode != 0:
            failures += 1
            print(f"[FAIL] big run: exit {proc.returncode}", file=sys.stderr)
        report["big_run"] = {
            "cmd": [exp2] + flags,
            "exit_code": proc.returncode,
            "wall_seconds": wall,
            "stdout": proc.stdout,
            "stderr": proc.stderr,
        }
        print(f"[ ok ] big run: {wall}s")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output} ({len(report['benches'])} figure benches, "
          f"{len(report['micro'])} micro reports)")
    if not report["benches"] and not report["micro"]:
        print(f"no bench binaries found in {args.bench_dir}", file=sys.stderr)
        return 1

    if args.compare:
        with open(args.compare) as f:
            baseline = json.load(f)
        failures += compare_reports(baseline, report, args.wall_tolerance)

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
