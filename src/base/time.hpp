// Simulated time.
//
// All simulated time is kept as integral nanoseconds (TimeNs).  Integral
// time makes event ordering exact and runs reproducible; nanosecond
// resolution is fine enough that link transmission times (fractions of a
// microsecond) do not collapse to zero.
#pragma once

#include <cstdint>
#include <string>

namespace bneck {

/// Simulated time in nanoseconds since the start of the run.
using TimeNs = std::int64_t;

constexpr TimeNs kTimeNever = INT64_MAX;

constexpr TimeNs nanoseconds(std::int64_t n) { return n; }
constexpr TimeNs microseconds(std::int64_t us) { return us * 1'000; }
constexpr TimeNs milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr TimeNs seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Converts a duration in (possibly fractional) seconds to TimeNs,
/// rounding to the nearest nanosecond.
constexpr TimeNs from_seconds(double s) {
  return static_cast<TimeNs>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_micros(TimeNs t) { return static_cast<double>(t) * 1e-3; }
constexpr double to_millis(TimeNs t) { return static_cast<double>(t) * 1e-6; }

/// Human-readable rendering with an adaptive unit, e.g. "12.5ms".
std::string format_time(TimeNs t);

}  // namespace bneck
