#include "base/rate.hpp"

#include <algorithm>
#include <cstdio>

#include "base/time.hpp"

namespace bneck {

bool rate_eq(Rate a, Rate b, double eps) {
  if (a == b) return true;  // covers equal infinities and exact hits
  if (std::isinf(a) || std::isinf(b)) return false;
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= eps * scale;
}

bool rate_lt(Rate a, Rate b, double eps) { return a < b && !rate_eq(a, b, eps); }

bool rate_gt(Rate a, Rate b, double eps) { return a > b && !rate_eq(a, b, eps); }

std::string format_rate(Rate r) {
  if (std::isinf(r)) return "inf";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f Mbps", r);
  return buf;
}

std::string format_time(TimeNs t) {
  char buf[48];
  if (t >= seconds(1)) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds(t));
  } else if (t >= milliseconds(1)) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_millis(t));
  } else if (t >= microseconds(1)) {
    std::snprintf(buf, sizeof buf, "%.3fus", to_micros(t));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace bneck
