// Open-addressing hash map keyed by a strong Id.
//
// The per-link session tables (core/link_table.hpp) do one hash lookup
// per protocol packet per hop; profiling the paper's Experiment 2 put
// ~40% of total wall-clock inside std::unordered_map::find on those
// tables (node-based buckets: one indirection per probe, poor locality).
// FlatIdMap stores {key, value} slots contiguously with linear probing
// and backward-shift deletion, so the common hit costs one multiply, one
// mask and one or two adjacent cache lines.
//
// Semantics are the subset of std::unordered_map the protocol needs:
// pointer-returning find (pointers are invalidated by rehash, i.e. by
// any insert), try_emplace, erase, size, and unordered iteration.
// Iteration order is unspecified but deterministic: it depends only on
// the sequence of inserts and erases, never on allocation addresses —
// the property every simulator-visible container here must keep.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "base/expect.hpp"
#include "base/ids.hpp"

namespace bneck {

template <class Tag, class V>
class FlatIdMap {
 public:
  using Key = Id<Tag>;

  FlatIdMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] V* find(Key k) {
    // The invalid id shares its representation (-1) with the empty-slot
    // sentinel; without this guard it would "match" any empty slot.
    if (slots_.empty() || !k.valid()) return nullptr;
    for (std::uint32_t i = ideal(k);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == k.value()) return &s.value;
      if (s.key < 0) return nullptr;
    }
  }
  [[nodiscard]] const V* find(Key k) const {
    return const_cast<FlatIdMap*>(this)->find(k);
  }
  [[nodiscard]] bool contains(Key k) const { return find(k) != nullptr; }

  /// Inserts {k, V(args...)} if k is absent.  Returns the value slot and
  /// whether an insert happened.  The pointer is stable until the next
  /// insert.
  template <class... Args>
  std::pair<V*, bool> try_emplace(Key k, Args&&... args) {
    BNECK_EXPECT(k.valid(), "invalid key");
    // Existing keys must not trigger a rehash: the documented pointer
    // stability is "until the next insert", not "until the next call".
    if (V* existing = find(k)) return {existing, false};
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) grow();
    for (std::uint32_t i = ideal(k);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key < 0) {
        s.key = k.value();
        s.value = V(std::forward<Args>(args)...);
        ++size_;
        return {&s.value, true};
      }
    }
  }

  V& operator[](Key k) { return *try_emplace(k).first; }

  /// Removes k if present; returns whether it was.  Backward-shift
  /// deletion: no tombstones, probe chains stay short forever.  Scans to
  /// the next empty slot, pulling back every element whose probe path
  /// covers the hole (just "is the neighbour displaced?" is not enough:
  /// an element two slots over may probe through the hole even when the
  /// element in between is home).
  bool erase(Key k) {
    if (slots_.empty() || !k.valid()) return false;
    std::uint32_t hole = ideal(k);
    for (;; hole = (hole + 1) & mask_) {
      if (slots_[hole].key == k.value()) break;
      if (slots_[hole].key < 0) return false;
    }
    for (std::uint32_t j = hole;;) {
      j = (j + 1) & mask_;
      const Slot& n = slots_[j];
      if (n.key < 0) break;
      // n may fill the hole iff the hole lies on n's probe path, i.e.
      // its ideal slot circularly precedes (or is) the hole.
      if (((j - ideal(Key{n.key})) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = n;
        hole = j;
      }
    }
    slots_[hole].key = -1;
    slots_[hole].value = V();
    --size_;
    return true;
  }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// fn(Key, const V&) over all entries, in slot order (deterministic,
  /// unspecified).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key >= 0) fn(Key{s.key}, s.value);
    }
  }

  /// True iff pred(Key, const V&) holds for every entry; stops at the
  /// first violation.
  template <class Pred>
  [[nodiscard]] bool all_of(Pred&& pred) const {
    for (const Slot& s : slots_) {
      if (s.key >= 0 && !pred(Key{s.key}, s.value)) return false;
    }
    return true;
  }

 private:
  struct Slot {
    std::int32_t key = -1;  // -1 = empty
    V value{};
  };

  /// Fibonacci hash of the 32-bit id: the top log2(capacity) bits of the
  /// golden-ratio product, which mix every input bit.
  [[nodiscard]] std::uint32_t ideal(Key k) const {
    return (static_cast<std::uint32_t>(k.value()) * 2654435769u) >> shift_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = static_cast<std::uint32_t>(cap - 1);
    shift_ = 32;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift_;
    size_ = 0;
    for (Slot& s : old) {
      if (s.key >= 0) try_emplace(Key{s.key}, std::move(s.value));
    }
  }

  std::vector<Slot> slots_;
  std::uint32_t mask_ = 0;
  int shift_ = 28;
  std::size_t size_ = 0;
};

}  // namespace bneck
