// Open-addressing hash map keyed by a strong Id.
//
// The per-link session tables (core/link_table.hpp) do one hash lookup
// per protocol packet per hop; profiling the paper's Experiment 2 put
// ~40% of total wall-clock inside std::unordered_map::find on those
// tables (node-based buckets: one indirection per probe, poor locality).
// FlatIdMap stores {key, value} slots contiguously with linear probing
// and backward-shift deletion, so the common hit costs one multiply, one
// mask and one or two adjacent cache lines — key and value share a line,
// which is the whole win over any two-structure (index + slab) layout:
// a lookup that misses cache pays for exactly one stream, not two.
//
// Epoch-validated slot lookup (the basis of handle-oriented dispatch,
// core/link_table.hpp): because values live inline in the probe array,
// a slot can move — try_emplace may rehash the whole array and erase
// backward-shifts neighbouring slots.  Both bump epoch(), and only
// they do.  A caller holding {V*, epoch} therefore has a self-checking
// handle: while the epoch is unchanged the pointer is exact; when it
// moved, one re-find() restores it.  Mutations that cannot move slots
// (value writes, non-growing inserts) leave the epoch alone, so a
// handle survives a whole packet-handler run of unrelated mutations at
// the cost of an equality check per access instead of a hash probe.
//
// Semantics are the subset of std::unordered_map the protocol needs:
// pointer-returning find (pointers are invalidated by epoch bumps, as
// above), try_emplace, erase, size, and unordered iteration.
// Iteration order is unspecified but deterministic: it depends only on
// the sequence of inserts and erases, never on allocation addresses —
// the property every simulator-visible container here must keep.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/expect.hpp"
#include "base/ids.hpp"

namespace bneck {

template <class Tag, class V>
class FlatIdMap {
 public:
  using Key = Id<Tag>;

  FlatIdMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Slot-stability epoch: advances exactly when existing value slots
  /// may have moved (a rehash inside try_emplace, or any erase).  A
  /// cached {find() pointer, epoch()} pair is valid iff the epoch still
  /// matches; see the header comment.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] V* find(Key k) {
    // The invalid id shares its representation (-1) with the empty-slot
    // sentinel; without this guard it would "match" any empty slot.
    if (slots_.empty() || !k.valid()) return nullptr;
    for (std::uint32_t i = ideal(k);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == k.value()) return &s.value;
      if (s.key < 0) return nullptr;
    }
  }
  [[nodiscard]] const V* find(Key k) const {
    return const_cast<FlatIdMap*>(this)->find(k);
  }
  [[nodiscard]] bool contains(Key k) const { return find(k) != nullptr; }

  /// Inserts {k, V(args...)} if k is absent.  Returns the value slot and
  /// whether an insert happened.  The pointer is stable until the next
  /// epoch bump (rehashing insert or erase).
  template <class... Args>
  std::pair<V*, bool> try_emplace(Key k, Args&&... args) {
    BNECK_EXPECT(k.valid(), "invalid key");
    // Existing keys must not trigger a rehash: the documented pointer
    // stability is tied to epoch(), not to "any call happened".
    if (V* existing = find(k)) return {existing, false};
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) grow();
    for (std::uint32_t i = ideal(k);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key < 0) {
        s.key = k.value();
        s.value = V(std::forward<Args>(args)...);
        ++size_;
        return {&s.value, true};
      }
    }
  }

  V& operator[](Key k) { return *try_emplace(k).first; }

  /// Removes k if present; returns whether it was.  Backward-shift
  /// deletion: no tombstones, probe chains stay short forever.  Scans to
  /// the next empty slot, pulling back every element whose probe path
  /// covers the hole (just "is the neighbour displaced?" is not enough:
  /// an element two slots over may probe through the hole even when the
  /// element in between is home).  Bumps epoch(): slots moved.
  bool erase(Key k) {
    if (slots_.empty() || !k.valid()) return false;
    std::uint32_t hole = ideal(k);
    for (;; hole = (hole + 1) & mask_) {
      if (slots_[hole].key == k.value()) break;
      if (slots_[hole].key < 0) return false;
    }
    for (std::uint32_t j = hole;;) {
      j = (j + 1) & mask_;
      const Slot& n = slots_[j];
      if (n.key < 0) break;
      // n may fill the hole iff the hole lies on n's probe path, i.e.
      // its ideal slot circularly precedes (or is) the hole.
      if (((j - ideal(Key{n.key})) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = n;
        hole = j;
      }
    }
    slots_[hole].key = -1;
    slots_[hole].value = V();
    --size_;
    ++epoch_;
    return true;
  }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
    ++epoch_;
  }

  /// fn(Key, const V&) over all entries, in slot order (deterministic,
  /// unspecified).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key >= 0) fn(Key{s.key}, s.value);
    }
  }

  /// True iff pred(Key, const V&) holds for every entry; stops at the
  /// first violation.
  template <class Pred>
  [[nodiscard]] bool all_of(Pred&& pred) const {
    for (const Slot& s : slots_) {
      if (s.key >= 0 && !pred(Key{s.key}, s.value)) return false;
    }
    return true;
  }

  /// Internal-consistency audit: size() matches the live slot count,
  /// and every live slot is reachable by its own probe chain (i.e.
  /// find() on its key lands on exactly that slot — backward-shift
  /// deletion must never strand an entry behind an empty slot).
  /// Returns an empty string when consistent, else a description of the
  /// first violation.  O(n); for the property harness (src/check/), not
  /// per-packet paths.
  [[nodiscard]] std::string audit() const {
    std::size_t live = 0;
    for (const Slot& s : slots_) {
      if (s.key < 0) continue;
      ++live;
      const V* via_find = find(Key{s.key});
      if (via_find == nullptr) {
        return "live slot unreachable by its probe chain";
      }
      if (via_find != &s.value) {
        return "probe chain resolves a key to a different slot";
      }
    }
    if (live != size_) return "live slot count does not match size()";
    return std::string();
  }

 private:
  struct Slot {
    std::int32_t key = -1;  // -1 = empty
    V value{};
  };

  /// Fibonacci hash of the 32-bit id: the top log2(capacity) bits of the
  /// golden-ratio product, which mix every input bit.
  [[nodiscard]] std::uint32_t ideal(Key k) const {
    return (static_cast<std::uint32_t>(k.value()) * 2654435769u) >> shift_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = static_cast<std::uint32_t>(cap - 1);
    shift_ = 32;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift_;
    size_ = 0;
    ++epoch_;
    for (Slot& s : old) {
      if (s.key >= 0) try_emplace(Key{s.key}, std::move(s.value));
    }
  }

  std::vector<Slot> slots_;
  std::uint32_t mask_ = 0;
  int shift_ = 28;
  std::size_t size_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace bneck
