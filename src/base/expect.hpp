// Internal invariant checking.
//
// BNECK_EXPECT guards preconditions and protocol invariants.  Violations
// throw bneck::InvariantError so tests can assert on them; they are never
// compiled out, because the cost is negligible next to the work they guard
// and a silently corrupted simulation is worse than a slow one.
#pragma once

#include <stdexcept>
#include <string>

namespace bneck {

class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void fail_invariant(const char* cond, const char* msg,
                                        const char* file, int line) {
  throw InvariantError(std::string(file) + ":" + std::to_string(line) +
                       ": invariant failed: " + cond + " (" + msg + ")");
}

}  // namespace bneck

#define BNECK_EXPECT(cond, msg)                                 \
  do {                                                          \
    if (!(cond)) ::bneck::fail_invariant(#cond, msg, __FILE__, __LINE__); \
  } while (false)
