// Seeded deterministic random number generator.
//
// Every stochastic component (topology generation, workload schedules,
// WAN delay assignment) draws from an explicitly seeded Rng so that runs
// are reproducible; there is no global random state.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "base/expect.hpp"

namespace bneck {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    BNECK_EXPECT(lo <= hi, "uniform_int: empty range");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).  Requires lo <= hi.
  double uniform_real(double lo, double hi) {
    BNECK_EXPECT(lo <= hi, "uniform_real: empty range");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform_real(0.0, 1.0) < p; }

  /// Exponentially distributed draw with the given mean (> 0).
  double exponential(double mean) {
    BNECK_EXPECT(mean > 0, "exponential mean must be positive");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Uniformly chosen element of a non-empty span.
  template <class T>
  const T& pick(std::span<const T> items) {
    BNECK_EXPECT(!items.empty(), "pick: empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <class T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[static_cast<std::size_t>(uniform_int(
                                  0, static_cast<std::int64_t>(i) - 1))]);
    }
  }

  /// Derives an independent child generator; used to give subsystems
  /// their own streams so adding draws in one does not perturb another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// k distinct integers sampled uniformly from [0, n).  Requires k <= n.
std::vector<std::int32_t> sample_distinct(Rng& rng, std::int32_t n,
                                          std::int32_t k);

}  // namespace bneck
