// Rates, capacities and tolerant comparison.
//
// Rates and link capacities are doubles in megabits per second (Mbps).
// The B-Neck pseudocode compares rates for *exact* equality (lambda = Be);
// with floating point, sums over session sets computed in different orders
// round differently, so every rate comparison in this code base goes
// through the tolerant helpers below (relative epsilon, default 1e-9).
// See docs/protocol.md "Deliberate divergences from the paper".
#pragma once

#include <cmath>
#include <limits>
#include <string>

namespace bneck {

/// A data rate or link capacity in Mbps.
using Rate = double;

/// Rate representing "no limit" (a session that never caps its demand).
constexpr Rate kRateInfinity = std::numeric_limits<Rate>::infinity();

/// Default relative tolerance for rate comparisons.  Max-min computations
/// on realistic capacities (1e2..1e3 Mbps) accumulate error well below
/// this, while distinct bottleneck rates generically differ by far more.
constexpr double kRateEps = 1e-9;

/// Looser tolerance for validating *measured* allocations (solution
/// annotation and the max-min invariant checker): rates observed from the
/// running protocol carry quantization and convergence error far above the
/// solver's rounding noise, so saturation/restriction checks use this.
constexpr double kRateCheckEps = 1e-6;

/// True if a and b are equal up to relative tolerance eps (absolute
/// tolerance near zero).  Handles equal infinities.
[[nodiscard]] bool rate_eq(Rate a, Rate b, double eps = kRateEps);

/// True if a < b and they are not rate_eq.
[[nodiscard]] bool rate_lt(Rate a, Rate b, double eps = kRateEps);

/// True if a > b and they are not rate_eq.
[[nodiscard]] bool rate_gt(Rate a, Rate b, double eps = kRateEps);

/// True if a < b or a ≈ b.
[[nodiscard]] inline bool rate_le(Rate a, Rate b, double eps = kRateEps) {
  return !rate_gt(a, b, eps);
}

/// True if a > b or a ≈ b.
[[nodiscard]] inline bool rate_ge(Rate a, Rate b, double eps = kRateEps) {
  return !rate_lt(a, b, eps);
}

/// Renders a rate as e.g. "12.50 Mbps" ("inf" for unlimited).
std::string format_rate(Rate r);

}  // namespace bneck
