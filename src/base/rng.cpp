#include "base/rng.hpp"

#include <unordered_set>

namespace bneck {

std::vector<std::int32_t> sample_distinct(Rng& rng, std::int32_t n,
                                          std::int32_t k) {
  BNECK_EXPECT(k >= 0 && k <= n, "sample_distinct: k out of range");
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (k > n / 3) {
    // Dense case: partial Fisher-Yates over the full range.
    std::vector<std::int32_t> all(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    for (std::int32_t i = 0; i < k; ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(i, n - 1));
      std::swap(all[static_cast<std::size_t>(i)], all[j]);
      out.push_back(all[static_cast<std::size_t>(i)]);
    }
  } else {
    // Sparse case: rejection sampling.
    std::unordered_set<std::int32_t> seen;
    while (static_cast<std::int32_t>(out.size()) < k) {
      const auto x = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
      if (seen.insert(x).second) out.push_back(x);
    }
  }
  return out;
}

}  // namespace bneck
