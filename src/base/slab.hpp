// Stable-pointer slab arena for lazily constructed task objects.
//
// BneckProtocol owns one RouterLink per directed link that carries
// sessions and one ArqChannel per lossy physical link — historically a
// std::vector<std::unique_ptr<T>> indexed by link id: one heap
// allocation per task, scattered addresses, and every full-network walk
// (stability checks, retransmission counts) touching a pointer per
// directed link whether or not the link ever carried traffic.
//
// Slab packs the objects into fixed-size chunks allocated once and
// never moved, so
//   * emplace_back() never invalidates references (RouterLink and
//     ArqChannel are non-movable by design — they hand `this` to the
//     transport/simulator);
//   * neighbours in construction order are neighbours in memory, which
//     is exactly the locality the per-packet dispatch wants (the links
//     of one session's path are constructed together at Join time);
//   * the owner can keep a *dense* index of live objects (slot order =
//     construction order) and skip the never-instantiated majority.
//
// Slab deliberately has no erase: protocol tasks live until the end of
// the run (departed sessions only empty a RouterLink's table, they do
// not destroy the task).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "base/expect.hpp"

namespace bneck {

template <class T>
class Slab {
 public:
  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;
  ~Slab() { clear(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Constructs a new object in place and returns it.  The reference is
  /// stable for the lifetime of the slab.
  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T* obj = new (address(size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *obj;
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    BNECK_EXPECT(i < size_, "slab index out of range");
    return *std::launder(address(i));
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    BNECK_EXPECT(i < size_, "slab index out of range");
    return *std::launder(const_cast<Slab*>(this)->address(i));
  }

  /// Destroys every object (reverse construction order) and releases
  /// the chunks.
  void clear() {
    for (std::size_t i = size_; i > 0; --i) {
      std::launder(address(i - 1))->~T();
    }
    size_ = 0;
    chunks_.clear();
  }

 private:
  static constexpr std::size_t kChunkSize = 64;
  struct Chunk {
    alignas(T) std::byte storage[sizeof(T) * kChunkSize];
  };

  [[nodiscard]] T* address(std::size_t i) {
    return reinterpret_cast<T*>(chunks_[i / kChunkSize]->storage) +
           i % kChunkSize;
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace bneck
