// Strongly typed integer identifiers.
//
// The simulator, the network model and the protocols all index entities
// (nodes, directed links, sessions) by dense 32-bit integers.  Using a
// distinct type per entity kind prevents accidentally passing a LinkId
// where a NodeId is expected, at zero runtime cost.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace bneck {

/// CRTP-free strong id: `Id<Tag>` wraps an int32 with equality, ordering
/// and hashing.  `Id<Tag>{}` is the invalid id (-1).
template <class Tag>
struct Id {
  std::int32_t v = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t value) : v(value) {}

  [[nodiscard]] constexpr bool valid() const { return v >= 0; }
  [[nodiscard]] constexpr std::int32_t value() const { return v; }

  friend constexpr bool operator==(Id a, Id b) { return a.v == b.v; }
  friend constexpr bool operator!=(Id a, Id b) { return a.v != b.v; }
  friend constexpr bool operator<(Id a, Id b) { return a.v < b.v; }
  friend constexpr bool operator>(Id a, Id b) { return a.v > b.v; }
  friend constexpr bool operator<=(Id a, Id b) { return a.v <= b.v; }
  friend constexpr bool operator>=(Id a, Id b) { return a.v >= b.v; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.v;
  }
};

struct NodeTag {};
struct LinkTag {};
struct SessionTag {};

/// A node of the network graph (router or host).
using NodeId = Id<NodeTag>;
/// A *directed* link of the network graph.
using LinkId = Id<LinkTag>;
/// A session (single-path source/destination flow).
using SessionId = Id<SessionTag>;

}  // namespace bneck

namespace std {
template <class Tag>
struct hash<bneck::Id<Tag>> {
  size_t operator()(bneck::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.v);
  }
};
}  // namespace std
