// Shared machinery for the non-quiescent baseline protocols.
//
// BFYZ, CG and RCP all follow the same ATM-style pattern: each source
// periodically emits a resource-management (RM) cell that travels the
// session's path, links stamp the rate they can offer, the destination
// echoes the cell, and the source adopts the stamped rate on return.
// None of them can detect convergence, so the cells keep flowing — that
// is precisely the non-quiescence B-Neck removes.
//
// Weighted max-min: the per-link offers of all three baselines are
// per-unit-weight *levels*; a session of weight w is offered w times the
// level (the on_forward hooks read session.weight).  With unit weights
// the arithmetic matches the unweighted originals exactly.
//
// CellProtocolBase owns the transport (FIFO links with transmission and
// propagation delay, identical timing to BneckProtocol), the per-session
// registry, the periodic cell clock, and packet accounting.  Subclasses
// implement the link behaviour through the three hooks.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "base/expect.hpp"
#include "base/flat_hash.hpp"
#include "net/network.hpp"
#include "proto/protocol.hpp"
#include "sim/simulator.hpp"

namespace bneck::proto {

struct CellConfig {
  /// Period between RM cells of one session.
  TimeNs cell_period = microseconds(500);
  /// Control packet size in bits (same default as B-Neck).
  std::int64_t packet_bits = 512;
};

/// The RM cell payload crossing the wire.  Trivially copyable and small
/// on purpose: each hop is scheduled as an allocation-free typed
/// simulator event (sim/event.hpp) with the cell stored inline.
struct Cell {
  Rate field = kRateInfinity;  // rate offer being collected
  Rate declared = 0;           // the source's current rate (read-only)
  SessionId s;
  std::int32_t hop = 0;
  bool forward = true;
};
static_assert(sizeof(Cell) <= sim::Event::kInlinePayloadBytes);

class CellProtocolBase
    : public FairShareProtocol,
      private sim::DeliveryHandlerOf<CellProtocolBase, Cell> {
  friend sim::DeliveryHandlerOf<CellProtocolBase, Cell>;

 public:
  CellProtocolBase(sim::Simulator& simulator, const net::Network& network,
                   CellConfig config);

  void join(SessionId s, net::Path path, Rate demand = kRateInfinity,
            double weight = 1.0) override;
  void leave(SessionId s) override;
  void change(SessionId s, Rate demand) override;
  [[nodiscard]] Rate current_rate(SessionId s) const override;
  [[nodiscard]] std::vector<core::SessionSpec> active_specs() const override;
  [[nodiscard]] std::uint64_t packets_sent() const override { return packets_; }
  void set_packet_listener(std::function<void(TimeNs)> listener) override {
    packet_listener_ = std::move(listener);
  }
  void shutdown() override { running_ = false; }

 protected:
  struct Session {
    net::Path path;
    Rate demand = kRateInfinity;
    double weight = 1.0;  // max-min weight (links offer weight x level)
    Rate rate = 0;        // currently assigned
    bool active = false;
  };

  // ---- subclass hooks ----

  /// A forward cell is about to cross `link`; stamp/record as needed.
  virtual void on_forward(LinkId link, Session& session, Cell& cell) = 0;
  /// A backward cell just crossed back over `link`'s reverse.
  virtual void on_backward(LinkId link, Session& session, Cell& cell) = 0;
  /// The echoed cell arrived back at the source; returns the rate to
  /// assign (default: the collected field, capped by the demand).
  virtual Rate on_source_return(Session& session, const Cell& cell);
  /// Session state at a link must be dropped (session left).
  virtual void on_leave_link(LinkId link, SessionId s) = 0;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const net::Network& network() const { return net_; }
  [[nodiscard]] const CellConfig& config() const { return cfg_; }
  [[nodiscard]] bool running() const { return running_; }

  /// Schedules a recurring callback every `period` while running();
  /// used by subclasses for per-link control-loop timers.
  void schedule_periodic(TimeNs period, std::function<void()> fn);

 private:
  // Mirrors the handle model of the B-Neck hot path (core/link_table):
  // deliver() resolves the cell's session exactly once and threads the
  // Session& through the forwarding helpers and subclass hooks instead
  // of re-hashing the id at every hop crossing.
  void send_cell(SessionId s, Session& sess);
  void cell_tick(SessionId s);
  void forward_cell(Session& sess, Cell cell);
  void move_backward(Session& sess, Cell cell);
  void transmit(Cell cell, LinkId physical);
  void deliver(Cell cell);
  void on_delivery(const Cell& cell) { deliver(cell); }

  sim::Simulator& sim_;
  const net::Network& net_;
  CellConfig cfg_;
  FlatIdMap<SessionTag, Session> sessions_;
  std::vector<sim::FifoChannel> channels_;
  std::vector<std::shared_ptr<std::function<void()>>> keepalive_;
  std::function<void(TimeNs)> packet_listener_;
  std::uint64_t packets_ = 0;
  bool running_ = true;
};

}  // namespace bneck::proto
