// Common interface for rate-allocation protocols under simulation.
//
// Experiment 3 of the paper compares B-Neck against three non-quiescent
// protocols (BFYZ, CG, RCP).  This interface is what the experiment
// harness drives: join/leave sessions, read the rate each protocol has
// currently assigned, and count control packets.  B-Neck itself is
// adapted to the interface by BneckDriver so all four run under the same
// harness.
//
// Unlike B-Neck, the baselines never quiesce: they keep periodic control
// loops running, so experiments advance the simulator with run_until(t)
// rather than run_until_idle() and detect convergence by polling rates
// against the centralized solution.  shutdown() stops the loops so a
// finished experiment can drain the event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/ids.hpp"
#include "base/rate.hpp"
#include "base/time.hpp"
#include "core/session.hpp"
#include "net/routing.hpp"

namespace bneck::proto {

class FairShareProtocol {
 public:
  virtual ~FairShareProtocol() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// API.Join; `weight` is the session's max-min weight (weighted
  /// max-min extension; every protocol at least records it in
  /// active_specs so runs validate against the weighted solvers).
  virtual void join(SessionId s, net::Path path, Rate demand = kRateInfinity,
                    double weight = 1.0) = 0;
  virtual void leave(SessionId s) = 0;
  /// API.Change(s, r): adjusts the maximum requested rate.
  virtual void change(SessionId s, Rate demand) = 0;

  /// Installs a per-link-crossing callback used by the harness for
  /// per-interval packet accounting (paper Figs. 6 and 8).
  virtual void set_packet_listener(std::function<void(TimeNs)> listener) = 0;

  /// The rate the protocol currently assigns to s (0 before the first
  /// assignment).  For B-Neck this is the last API.Rate notification.
  [[nodiscard]] virtual Rate current_rate(SessionId s) const = 0;

  /// Active sessions as centralized-solver input, ascending by id.
  [[nodiscard]] virtual std::vector<core::SessionSpec> active_specs()
      const = 0;

  /// Total control packets handed to links (each hop counted once).
  [[nodiscard]] virtual std::uint64_t packets_sent() const = 0;

  /// Stops periodic control loops so the event queue can drain.  No-op
  /// for quiescent protocols.
  virtual void shutdown() {}
};

}  // namespace bneck::proto
