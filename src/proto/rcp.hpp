// RCP baseline: Rate Control Protocol (Dukkipati et al., IWQoS 2005).
//
// Experiment 3 uses RCP as the representative of modern explicit
// congestion controllers that keep no per-flow state: each link
// maintains a single per-flow rate offer R, updated periodically from
// the measured aggregate arrival rate y and a (virtual) queue q using
// the published control law
//
//   R <- R * (1 + (T/d) * (alpha*(C - y) - beta*q/d) / C)
//
// Sessions pick up min(w*R) over their path via periodic control packets
// (R is a per-unit-weight offer; unit weights reproduce classic RCP).
// In steady state the offers converge towards processor-sharing rates
// (max-min); before steady state they oscillate, and the controller
// never stops sending — the non-quiescence B-Neck eliminates.
#pragma once

#include <optional>

#include "proto/cell_base.hpp"

namespace bneck::proto {

struct RcpConfig {
  CellConfig cell;
  /// Control interval T.
  TimeNs control_period = microseconds(500);
  /// Round-trip estimate d used by the control law.
  TimeNs rtt_estimate = microseconds(1000);
  double alpha = 0.4;
  double beta = 1.0;
};

class Rcp final : public CellProtocolBase {
 public:
  Rcp(sim::Simulator& simulator, const net::Network& network,
      RcpConfig config = {});

  [[nodiscard]] std::string name() const override { return "RCP"; }

  [[nodiscard]] Rate offer(LinkId e) const;

 protected:
  void on_forward(LinkId link, Session& session, Cell& cell) override;
  void on_backward(LinkId link, Session& session, Cell& cell) override;
  void on_leave_link(LinkId link, SessionId s) override;

 private:
  struct LinkState {
    Rate capacity = 0;
    Rate r = 0;         // per-unit-weight rate offer (level)
    double y_acc = 0;   // aggregate declared rate accumulated this period
    double queue = 0;   // virtual queue, megabits
    // Smallest session weight ever seen: the offer is a level, so its
    // ceiling is capacity/min_weight (the old rate-space ceiling of C
    // starves links whose total weight is < 1).  1 when unweighted.
    double min_weight = 1.0;
  };

  LinkState& state(LinkId e);
  void control_step();

  RcpConfig cfg2_;
  std::vector<std::optional<LinkState>> links_;
  bool timer_started_ = false;
};

}  // namespace bneck::proto
