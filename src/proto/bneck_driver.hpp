// Adapter: the (quiescent) B-Neck protocol behind the common
// FairShareProtocol interface, so Experiment 3 drives all four protocols
// through identical harness code.
#pragma once

#include <memory>

#include "core/bneck.hpp"
#include "proto/protocol.hpp"

namespace bneck::proto {

class BneckDriver final : public FairShareProtocol {
 public:
  /// `trace` (optional) additionally receives every protocol event, e.g.
  /// a PacketBinner for the per-type accounting of Fig. 6.
  BneckDriver(sim::Simulator& simulator, const net::Network& network,
              core::BneckConfig config = {}, core::TraceSink* trace = nullptr)
      : fan_(std::make_unique<FanoutSink>()),
        bneck_(simulator, network, config, fan_.get()) {
    fan_->inner = trace;
  }

  [[nodiscard]] std::string name() const override { return "B-Neck"; }

  void join(SessionId s, net::Path path, Rate demand = kRateInfinity,
            double weight = 1.0) override {
    bneck_.join(s, std::move(path), demand, weight);
  }
  void leave(SessionId s) override { bneck_.leave(s); }
  void change(SessionId s, Rate demand) override { bneck_.change(s, demand); }

  [[nodiscard]] Rate current_rate(SessionId s) const override {
    return bneck_.notified_rate(s).value_or(0.0);
  }
  [[nodiscard]] std::vector<core::SessionSpec> active_specs() const override {
    return bneck_.active_specs();
  }
  [[nodiscard]] std::uint64_t packets_sent() const override {
    return bneck_.packets_sent();
  }
  void set_packet_listener(std::function<void(TimeNs)> listener) override {
    fan_->listener = std::move(listener);
  }

  [[nodiscard]] core::BneckProtocol& protocol() { return bneck_; }
  [[nodiscard]] const core::BneckProtocol& protocol() const { return bneck_; }

 private:
  struct FanoutSink : core::TraceSink {
    core::TraceSink* inner = nullptr;
    std::function<void(TimeNs)> listener;
    void on_packet_sent(TimeNs t, const core::Packet& p,
                        LinkId physical) override {
      if (inner != nullptr) inner->on_packet_sent(t, p, physical);
      if (listener) listener(t);
    }
    void on_rate_notified(TimeNs t, SessionId s, Rate r) override {
      if (inner != nullptr) inner->on_rate_notified(t, s, r);
    }
  };

  std::unique_ptr<FanoutSink> fan_;  // must outlive bneck_
  core::BneckProtocol bneck_;
};

}  // namespace bneck::proto
