#include "proto/bfyz.hpp"

#include <algorithm>
#include <vector>

namespace bneck::proto {

Bfyz::Bfyz(sim::Simulator& simulator, const net::Network& network,
           BfyzConfig config)
    : CellProtocolBase(simulator, network, config.cell),
      cfg2_(config),
      links_(static_cast<std::size_t>(network.link_count())) {}

Bfyz::LinkState& Bfyz::state(LinkId e) {
  auto& slot = links_[static_cast<std::size_t>(e.value())];
  if (!slot.has_value()) {
    slot.emplace();
    slot->capacity = network().link(e).capacity;
    slot->advertised = slot->capacity;  // optimistic start: overshoots
  }
  if (!timer_started_) {
    timer_started_ = true;
    schedule_periodic(cfg2_.recompute_period, [this] { recompute_all(); });
  }
  return *slot;
}

Rate Bfyz::advertised(LinkId e) const {
  const auto& slot = links_[static_cast<std::size_t>(e.value())];
  return slot.has_value() ? slot->advertised : network().link(e).capacity;
}

void Bfyz::on_forward(LinkId link, Session&, Cell& cell) {
  LinkState& st = state(link);
  st.recorded.try_emplace(cell.s);  // unknown sessions count as unmarked
  cell.field = std::min(cell.field, st.advertised);
}

void Bfyz::on_backward(LinkId link, Session&, Cell& cell) {
  LinkState& st = state(link);
  const auto it = st.recorded.find(cell.s);
  if (it == st.recorded.end()) return;  // left in the meantime
  it->second = cell.field;
  st.dirty = true;
}

void Bfyz::on_leave_link(LinkId link, SessionId s) {
  auto& slot = links_[static_cast<std::size_t>(link.value())];
  if (!slot.has_value()) return;
  slot->recorded.erase(s);
  slot->dirty = true;
}

void Bfyz::recompute(LinkState& st) const {
  // Consistent marking over the recorded rates.  Sessions whose rate is
  // still unknown are treated as unrestricted (rate +inf): they stay
  // unmarked and share the residual equally.
  const std::size_t n = st.recorded.size();
  if (n == 0) {
    st.advertised = st.capacity;
    return;
  }
  std::vector<double> rates;
  rates.reserve(n);
  for (const auto& [s, r] : st.recorded) {
    rates.push_back(r.value_or(kRateInfinity));
  }
  std::sort(rates.begin(), rates.end());
  // Scan k = number of marked (restricted-elsewhere) sessions, smallest
  // first: A_k = (C - prefix_k)/(n - k); grow k while the next rate is
  // still below its offer.
  double prefix = 0;
  double a = st.capacity / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    a = (st.capacity - prefix) / static_cast<double>(n - k);
    if (!rate_lt(rates[k], a)) break;  // rates[k] gets the full offer
    prefix += rates[k];
    if (k + 1 == n) {
      // Everyone marked: offer the residual to whoever asks next.
      a = st.capacity - prefix + rates[n - 1];
    }
  }
  st.advertised = std::max(a, 0.0);
}

void Bfyz::recompute_all() {
  for (auto& slot : links_) {
    if (slot.has_value() && slot->dirty) {
      recompute(*slot);
      slot->dirty = false;
    }
  }
}

}  // namespace bneck::proto
