#include "proto/bfyz.hpp"

#include <algorithm>
#include <vector>

namespace bneck::proto {

Bfyz::Bfyz(sim::Simulator& simulator, const net::Network& network,
           BfyzConfig config)
    : CellProtocolBase(simulator, network, config.cell),
      cfg2_(config),
      links_(static_cast<std::size_t>(network.link_count())) {}

Bfyz::LinkState& Bfyz::state(LinkId e) {
  auto& slot = links_[static_cast<std::size_t>(e.value())];
  if (!slot.has_value()) {
    slot.emplace();
    slot->capacity = network().link(e).capacity;
    slot->advertised = slot->capacity;  // optimistic start: overshoots
  }
  if (!timer_started_) {
    timer_started_ = true;
    schedule_periodic(cfg2_.recompute_period, [this] { recompute_all(); });
  }
  return *slot;
}

Rate Bfyz::advertised(LinkId e) const {
  const auto& slot = links_[static_cast<std::size_t>(e.value())];
  return slot.has_value() ? slot->advertised : network().link(e).capacity;
}

void Bfyz::on_forward(LinkId link, Session& session, Cell& cell) {
  LinkState& st = state(link);
  // Unknown sessions count as unmarked; the offer is weight x the
  // per-unit-weight advertised share.
  st.recorded.try_emplace(cell.s, Recorded{std::nullopt, session.weight});
  cell.field = std::min(cell.field, session.weight * st.advertised);
}

void Bfyz::on_backward(LinkId link, Session& session, Cell& cell) {
  LinkState& st = state(link);
  Recorded* rec = st.recorded.find(cell.s);
  if (rec == nullptr) return;  // left in the meantime
  *rec = Recorded{cell.field, session.weight};
  st.dirty = true;
}

void Bfyz::on_leave_link(LinkId link, SessionId s) {
  auto& slot = links_[static_cast<std::size_t>(link.value())];
  if (!slot.has_value()) return;
  slot->recorded.erase(s);
  slot->dirty = true;
}

void Bfyz::recompute(LinkState& st) const {
  // Weighted consistent marking over the recorded rates, in level space
  // (level = rate / weight).  Sessions whose rate is still unknown are
  // treated as unrestricted (level +inf): they stay unmarked and share
  // the residual by weight.  Unit weights reduce every line to the
  // classic per-flow scan.
  const std::size_t n = st.recorded.size();
  if (n == 0) {
    st.advertised = st.capacity;
    return;
  }
  struct Entry {
    double level;   // rate / weight (+inf when unmarked)
    double rate;
    double weight;
  };
  std::vector<Entry> entries;
  entries.reserve(n);
  st.recorded.for_each([&entries](SessionId, const Recorded& r) {
    const double rate = r.rate.value_or(kRateInfinity);
    entries.push_back(Entry{rate / r.weight, rate, r.weight});
  });
  // Full-tuple sort: entries with equal levels but different (rate,
  // weight) must still be scanned in a deterministic order regardless of
  // the map's iteration order.  The weight sum is accumulated *after*
  // the sort for the same reason: its floating-point rounding must not
  // depend on container iteration order either.
  std::sort(entries.begin(), entries.end(), [](const Entry& x, const Entry& y) {
    if (x.level != y.level) return x.level < y.level;
    if (x.rate != y.rate) return x.rate < y.rate;
    return x.weight < y.weight;
  });
  double weight_total = 0;
  for (const Entry& e : entries) weight_total += e.weight;
  // Scan k = number of marked (restricted-elsewhere) sessions, smallest
  // level first: A_k = (C - prefix_k) / w_suffix_k; grow k while the next
  // session's level is still below its offer.
  double prefix = 0;
  double wsuffix = weight_total;
  double a = st.capacity / weight_total;
  for (std::size_t k = 0; k < n; ++k) {
    a = (st.capacity - prefix) / wsuffix;
    if (!rate_lt(entries[k].level, a)) break;  // entry k gets the full offer
    prefix += entries[k].rate;
    wsuffix -= entries[k].weight;
    if (k + 1 == n) {
      // Everyone marked: offer the residual on top of the largest
      // recorded level to whoever asks next.
      a = (st.capacity - prefix + entries[n - 1].rate) / entries[n - 1].weight;
    }
  }
  st.advertised = std::max(a, 0.0);
}

void Bfyz::recompute_all() {
  for (auto& slot : links_) {
    if (slot.has_value() && slot->dirty) {
      recompute(*slot);
      slot->dirty = false;
    }
  }
}

}  // namespace bneck::proto
