// BFYZ baseline: a per-session-state, non-quiescent max-min protocol.
//
// The paper's Experiment 3 uses BFYZ (Bartal, Farach-Colton, Yooseph,
// Zhang, "Fast, fair and frugal bandwidth allocation in ATM networks") as
// the representative of distributed algorithms that keep per-session
// state at every router and rely on a continuous flow of RM cells.  The
// original paper is not available in this offline environment, so this
// module reconstructs the *family*: Charny-style consistent marking
// (Charny, Clark, Jain 1995), the canonical member, which exhibits every
// property Experiment 3 measures: per-session state at links, permanent
// periodic control traffic (non-quiescence), transient overshoot of the
// max-min rates (links start by advertising their full capacity), and
// eventual convergence to the exact max-min allocation.
// See docs/protocol.md "Deliberate divergences from the paper".
//
// Operation: each link records the last rate granted to every session
// crossing it and periodically recomputes its advertised per-unit-weight
// share by consistent marking — the largest A with
// A = (C - Σ_{r_i < w_i·A} r_i) / Σ_{r_i >= w_i·A} w_i.
// RM cells collect min(w·advertised) over the path; the source adopts
// the echoed value; links record it on the way back.  Unit weights
// reduce A to the classic per-flow consistent-marking rate.
#pragma once

#include <optional>

#include "base/flat_hash.hpp"
#include "proto/cell_base.hpp"

namespace bneck::proto {

struct BfyzConfig {
  CellConfig cell;
  /// Period of the per-link advertised-rate recomputation.
  TimeNs recompute_period = microseconds(500);
};

class Bfyz final : public CellProtocolBase {
 public:
  Bfyz(sim::Simulator& simulator, const net::Network& network,
       BfyzConfig config = {});

  [[nodiscard]] std::string name() const override { return "BFYZ"; }

  /// Advertised rate of a link (for tests); capacity if never used.
  [[nodiscard]] Rate advertised(LinkId e) const;

 protected:
  void on_forward(LinkId link, Session& session, Cell& cell) override;
  void on_backward(LinkId link, Session& session, Cell& cell) override;
  void on_leave_link(LinkId link, SessionId s) override;

 private:
  struct Recorded {
    std::optional<Rate> rate;  // last granted rate; nullopt until echoed
    double weight = 1.0;
  };
  struct LinkState {
    Rate capacity = 0;
    Rate advertised = 0;  // per-unit-weight share (level)
    FlatIdMap<SessionTag, Recorded> recorded;
    bool dirty = false;
  };

  LinkState& state(LinkId e);
  void recompute(LinkState& st) const;
  void recompute_all();

  BfyzConfig cfg2_;
  std::vector<std::optional<LinkState>> links_;
  bool timer_started_ = false;
};

}  // namespace bneck::proto
