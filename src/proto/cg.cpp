#include "proto/cg.hpp"

#include <algorithm>

namespace bneck::proto {

CobbGouda::CobbGouda(sim::Simulator& simulator, const net::Network& network,
                     CgConfig config)
    : CellProtocolBase(simulator, network, config.cell),
      cfg2_(config),
      links_(static_cast<std::size_t>(network.link_count())) {}

CobbGouda::LinkState& CobbGouda::state(LinkId e) {
  auto& slot = links_[static_cast<std::size_t>(e.value())];
  if (!slot.has_value()) {
    slot.emplace();
    slot->capacity = network().link(e).capacity;
    slot->advertised = slot->capacity;
  }
  if (!timer_started_) {
    timer_started_ = true;
    schedule_periodic(cfg2_.round_period, [this] { end_round(); });
  }
  return *slot;
}

Rate CobbGouda::advertised(LinkId e) const {
  const auto& slot = links_[static_cast<std::size_t>(e.value())];
  return slot.has_value() ? slot->advertised : network().link(e).capacity;
}

void CobbGouda::on_forward(LinkId link, Session& session, Cell& cell) {
  LinkState& st = state(link);
  // Constant-size accounting: the aggregate declared load and the total
  // probe weight this round.  Nothing is keyed by session — that is CG's
  // defining property.  The advertised share is per unit weight, so a
  // weighted session collects weight x A.
  st.weight_total += session.weight;
  st.sum_declared += session.rate;
  st.min_weight = std::min(st.min_weight, session.weight);
  cell.field = std::min(cell.field, session.weight * st.advertised);
}

void CobbGouda::on_backward(LinkId, Session&, Cell&) {
  // Constant state: nothing to record on the return pass.
}

void CobbGouda::on_leave_link(LinkId, SessionId) {
  // No per-session state to clean up; the next round re-counts.
}

void CobbGouda::end_round() {
  for (auto& slot : links_) {
    if (!slot.has_value()) continue;
    LinkState& st = *slot;
    if (st.weight_total > 0) {
      // Integrate towards the water level where the aggregate declared
      // load matches the capacity: Σ_i min(w_i·A, r_i) = C is exactly the
      // weighted max-min fixpoint of a saturated link.  The per-weight
      // step (C - y)/Σw shrinks with the population, which is why
      // CG-style constant-state schemes converge slowly for many
      // sessions.  (Unit weights make Σw the probe count, as in CG.)
      const double delta =
          (st.capacity - st.sum_declared) / st.weight_total;
      st.advertised = std::clamp(st.advertised + 0.5 * delta, 1e-6,
                                 st.capacity / st.min_weight);
    } else {
      st.advertised = st.capacity;
    }
    st.sum_declared = 0;
    st.weight_total = 0;
  }
}

}  // namespace bneck::proto
