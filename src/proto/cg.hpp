// CG baseline: constant-state-per-router max-min estimation.
//
// Experiment 3 uses CG (Cobb & Gouda, "Stabilization of max-min fair
// networks without per-flow state", SSS 2008) as the representative of
// algorithms that keep only O(1) state per link.  The original paper is
// not available offline; this reconstruction keeps the defining
// constraints — no per-session data at links, periodic probe rounds,
// self-stabilizing fair-share refinement — and the resulting behaviour
// the paper reports: convergence is round-by-round and becomes very slow
// as the session count grows (it fails to reach the solution within the
// allotted time beyond a few hundred sessions).
// See docs/protocol.md "Deliberate divergences from the paper".
//
// Operation: each link keeps one advertised share A and two round
// accumulators (probe count and aggregate declared load y).  Probes
// collect min(A) over the path; at each round boundary the link
// integrates A towards the water level where the declared load matches
// the capacity — A += κ(C − y)/n — whose fixpoint Σ min(A, r_i) = C is
// the max-min rate of a saturated link.
#pragma once

#include <optional>

#include "proto/cell_base.hpp"

namespace bneck::proto {

struct CgConfig {
  CellConfig cell;
  /// Round length: accumulators are folded into A at this period.
  TimeNs round_period = microseconds(500);
};

class CobbGouda final : public CellProtocolBase {
 public:
  CobbGouda(sim::Simulator& simulator, const net::Network& network,
            CgConfig config = {});

  [[nodiscard]] std::string name() const override { return "CG"; }

  [[nodiscard]] Rate advertised(LinkId e) const;

 protected:
  void on_forward(LinkId link, Session& session, Cell& cell) override;
  void on_backward(LinkId link, Session& session, Cell& cell) override;
  void on_leave_link(LinkId link, SessionId s) override;

 private:
  // Constant-size state: this is the whole point of CG.
  struct LinkState {
    Rate capacity = 0;
    Rate advertised = 0;       // per-unit-weight share (level)
    double sum_declared = 0;   // aggregate declared load this round
    double weight_total = 0;   // total weight of probes seen this round
    // Smallest session weight ever probed: bounds the advertised *level*
    // at capacity/min_weight (a level ceiling; the old rate-space ceiling
    // of C starves links whose total weight is < 1).  1 when unweighted,
    // making the ceiling exactly the classic capacity clamp.
    double min_weight = 1.0;
  };

  LinkState& state(LinkId e);
  void end_round();

  CgConfig cfg2_;
  std::vector<std::optional<LinkState>> links_;
  bool timer_started_ = false;
};

}  // namespace bneck::proto
