#include "proto/rcp.hpp"

#include <algorithm>

namespace bneck::proto {

Rcp::Rcp(sim::Simulator& simulator, const net::Network& network,
         RcpConfig config)
    : CellProtocolBase(simulator, network, config.cell),
      cfg2_(config),
      links_(static_cast<std::size_t>(network.link_count())) {}

Rcp::LinkState& Rcp::state(LinkId e) {
  auto& slot = links_[static_cast<std::size_t>(e.value())];
  if (!slot.has_value()) {
    slot.emplace();
    slot->capacity = network().link(e).capacity;
    slot->r = slot->capacity;  // RCP starts at line rate: overshoots
  }
  if (!timer_started_) {
    timer_started_ = true;
    schedule_periodic(cfg2_.control_period, [this] { control_step(); });
  }
  return *slot;
}

Rate Rcp::offer(LinkId e) const {
  const auto& slot = links_[static_cast<std::size_t>(e.value())];
  return slot.has_value() ? slot->r : network().link(e).capacity;
}

void Rcp::on_forward(LinkId link, Session& session, Cell& cell) {
  LinkState& st = state(link);
  // One cell per session per period: accumulating declared rates over the
  // period approximates the measured aggregate input rate y.  The offer R
  // is per unit weight; a weighted session is offered weight x R.
  st.y_acc += session.rate;
  st.min_weight = std::min(st.min_weight, session.weight);
  cell.field = std::min(cell.field, session.weight * st.r);
}

void Rcp::on_backward(LinkId, Session&, Cell&) {}

void Rcp::on_leave_link(LinkId, SessionId) {}

void Rcp::control_step() {
  const double t_sec = to_seconds(cfg2_.control_period);
  const double d_sec = to_seconds(cfg2_.rtt_estimate);
  for (auto& slot : links_) {
    if (!slot.has_value()) continue;
    LinkState& st = *slot;
    const double y = st.y_acc * to_seconds(cfg2_.cell.cell_period) / t_sec;
    st.y_acc = 0;
    // Virtual queue in megabits: grows while the offers oversubscribe.
    st.queue = std::max(0.0, st.queue + (y - st.capacity) * t_sec);
    const double spare = cfg2_.alpha * (st.capacity - y) -
                         cfg2_.beta * st.queue / d_sec;
    st.r = st.r * (1.0 + (t_sec / d_sec) * spare / st.capacity);
    st.r = std::clamp(st.r, 1e-6, st.capacity / st.min_weight);
  }
}

}  // namespace bneck::proto
