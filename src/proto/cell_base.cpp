#include "proto/cell_base.hpp"

#include <algorithm>
#include <cmath>

namespace bneck::proto {

CellProtocolBase::CellProtocolBase(sim::Simulator& simulator,
                                   const net::Network& network,
                                   CellConfig config)
    : sim_(simulator),
      net_(network),
      cfg_(config),
      channels_(static_cast<std::size_t>(network.link_count())) {
  BNECK_EXPECT(cfg_.cell_period > 0, "cell period must be positive");
  BNECK_EXPECT(cfg_.packet_bits > 0, "packet size must be positive");
}

void CellProtocolBase::join(SessionId s, net::Path path, Rate demand,
                            double weight) {
  BNECK_EXPECT(!sessions_.contains(s), "session ids are single-use");
  BNECK_EXPECT(weight > 0 && std::isfinite(weight),
               "session weight must be positive and finite");
  BNECK_EXPECT(path.links.size() >= 2, "path needs access links at both ends");
  Session& sess = sessions_[s];
  sess.path = std::move(path);
  sess.demand = demand;
  sess.weight = weight;
  sess.rate = 0;
  sess.active = true;
  send_cell(s, sess);
  cell_tick(s);
}

void CellProtocolBase::leave(SessionId s) {
  Session* sess = sessions_.find(s);
  BNECK_EXPECT(sess != nullptr && sess->active, "leave of inactive session");
  sess->active = false;
  sess->rate = 0;
  for (const LinkId e : sess->path.links) on_leave_link(e, s);
}

void CellProtocolBase::change(SessionId s, Rate demand) {
  Session* sess = sessions_.find(s);
  BNECK_EXPECT(sess != nullptr && sess->active, "change of inactive session");
  sess->demand = demand;  // next cells carry the new request
}

Rate CellProtocolBase::current_rate(SessionId s) const {
  const Session* sess = sessions_.find(s);
  return sess != nullptr && sess->active ? sess->rate : 0.0;
}

std::vector<core::SessionSpec> CellProtocolBase::active_specs() const {
  std::vector<core::SessionSpec> specs;
  sessions_.for_each([&specs](SessionId s, const Session& sess) {
    if (sess.active) specs.push_back({s, sess.path, sess.demand, sess.weight});
  });
  std::sort(specs.begin(), specs.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  return specs;
}

Rate CellProtocolBase::on_source_return(Session& session, const Cell& cell) {
  return std::min(cell.field, session.demand);
}

void CellProtocolBase::schedule_periodic(TimeNs period,
                                         std::function<void()> fn) {
  BNECK_EXPECT(period > 0, "periodic interval must be positive");
  // Self-rescheduling chain that stops when the protocol shuts down.
  auto loop = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = loop;
  *loop = [this, period, fn = std::move(fn), weak] {
    if (!running_) return;
    fn();
    if (const auto self = weak.lock()) sim_.schedule_in(period, *self);
  };
  sim_.schedule_in(period, *loop);
  keepalive_.push_back(std::move(loop));
}

void CellProtocolBase::cell_tick(SessionId s) {
  // Per-session periodic cell clock; dies with the session or shutdown.
  sim_.schedule_in(cfg_.cell_period, [this, s] {
    if (!running_) return;
    Session* sess = sessions_.find(s);
    if (sess == nullptr || !sess->active) return;
    send_cell(s, *sess);
    cell_tick(s);
  });
}

void CellProtocolBase::send_cell(SessionId s, Session& sess) {
  Cell cell;
  cell.s = s;
  cell.field = sess.demand;
  cell.declared = sess.rate;
  cell.hop = 0;
  cell.forward = true;
  forward_cell(sess, std::move(cell));
}

void CellProtocolBase::forward_cell(Session& sess, Cell cell) {
  on_forward(sess.path.links[static_cast<std::size_t>(cell.hop)], sess, cell);
  const LinkId physical =
      sess.path.links[static_cast<std::size_t>(cell.hop)];
  ++cell.hop;
  transmit(std::move(cell), physical);
}

void CellProtocolBase::transmit(Cell cell, LinkId physical) {
  const net::Link& l = net_.link(physical);
  const TimeNs tx = static_cast<TimeNs>(
      static_cast<double>(cfg_.packet_bits) * 1000.0 / l.capacity + 0.5);
  const TimeNs arrival =
      channels_[static_cast<std::size_t>(physical.value())].transmit(
          sim_.now(), tx, l.prop_delay);
  ++packets_;
  if (packet_listener_) packet_listener_(sim_.now());
  sim_.schedule_delivery_at(arrival, *this, cell);
}

void CellProtocolBase::move_backward(Session& sess, Cell cell) {
  // From node position `hop` to position hop-1, crossing the reverse of
  // the forward link between them.
  const LinkId fwd_link =
      sess.path.links[static_cast<std::size_t>(cell.hop - 1)];
  --cell.hop;
  transmit(std::move(cell), net_.link(fwd_link).reverse);
}

void CellProtocolBase::deliver(Cell cell) {
  // Resolve once; the helpers below all work on the resolved reference
  // (safe across the whole delivery: this protocol never erases session
  // records — departed sessions stay as inactive tombstones).
  Session* found = sessions_.find(cell.s);
  if (found == nullptr || !found->active) return;  // session left
  Session& sess = *found;
  const auto path_len = static_cast<std::int32_t>(sess.path.links.size());

  if (cell.forward) {
    if (cell.hop < path_len) {
      forward_cell(sess, std::move(cell));
      return;
    }
    // Destination: echo the cell back.
    cell.forward = false;
    move_backward(sess, std::move(cell));
    return;
  }
  // Backward cell just crossed the reverse of path link `hop`.
  on_backward(sess.path.links[static_cast<std::size_t>(cell.hop)], sess, cell);
  if (cell.hop == 0) {
    sess.rate = on_source_return(sess, cell);
    return;
  }
  move_backward(sess, std::move(cell));
}

}  // namespace bneck::proto
