#include "net/partition.hpp"

#include <algorithm>
#include <numeric>

#include "base/expect.hpp"

namespace bneck::net {

namespace {

/// Plain union-find with path halving; union by size with smallest-root
/// tie-breaking keeps the structure deterministic.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::int32_t find(std::int32_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      auto& p = parent_[static_cast<std::size_t>(x)];
      p = parent_[static_cast<std::size_t>(p)];
      x = p;
    }
    return x;
  }

  [[nodiscard]] std::int32_t size(std::int32_t root) {
    return size_[static_cast<std::size_t>(find(root))];
  }

  /// Merges the components of a and b; the smaller root id survives.
  void unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
  }

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> size_;
};

}  // namespace

std::vector<std::int32_t> NetPartition::routers_per_shard(
    const Network& net) const {
  std::vector<std::int32_t> counts(static_cast<std::size_t>(shard_count), 0);
  for (std::int32_t n = 0; n < net.node_count(); ++n) {
    if (net.kind(NodeId{n}) == NodeKind::Router) {
      ++counts[static_cast<std::size_t>(node_shard[static_cast<std::size_t>(n)])];
    }
  }
  return counts;
}

NetPartition partition_network(const Network& net,
                               const PartitionConfig& cfg) {
  BNECK_EXPECT(cfg.shards >= 1, "shard count must be positive");
  BNECK_EXPECT(cfg.balance_slack >= 1.0, "balance_slack below 1");
  const std::int32_t routers = net.router_count();
  const std::int32_t shards =
      std::max<std::int32_t>(1, std::min(cfg.shards, routers));

  NetPartition out;
  out.shard_count = shards;
  out.node_shard.assign(static_cast<std::size_t>(net.node_count()), 0);
  if (shards == 1) return out;

  // Component growth cap: ceil(slack * routers / shards), at least 1.
  const auto cap = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(cfg.balance_slack *
                                       static_cast<double>(routers) /
                                       static_cast<double>(shards) +
                                   0.999999));

  // Router-router links, one per physical pair (the twin has the same
  // delay), in ascending (prop_delay, link id) order.
  std::vector<LinkId> edges;
  for (std::int32_t e = 0; e < net.link_count(); ++e) {
    const Link& l = net.link(LinkId{e});
    if (net.is_host(l.src) || net.is_host(l.dst)) continue;
    if (l.reverse.value() < e) continue;  // keep the lower-id direction
    edges.push_back(LinkId{e});
  }
  std::sort(edges.begin(), edges.end(), [&net](LinkId a, LinkId b) {
    const TimeNs da = net.link(a).prop_delay;
    const TimeNs db = net.link(b).prop_delay;
    return da != db ? da < db : a < b;
  });

  // Single-linkage merge pass: absorb the fastest edges inside components
  // so the eventual cut only contains slow ones.  Stop-at-cap rather than
  // stop-at-K: a capped merge is skipped, not retried, which bounds every
  // component and still leaves the fast edges interior wherever possible.
  UnionFind uf(static_cast<std::size_t>(net.node_count()));
  for (const LinkId e : edges) {
    const Link& l = net.link(e);
    const std::int32_t a = uf.find(l.src.value());
    const std::int32_t b = uf.find(l.dst.value());
    if (a == b) continue;
    if (uf.size(a) + uf.size(b) > cap) continue;
    uf.unite(a, b);
  }

  // Collect components in ascending root id (deterministic), then
  // bin-pack by descending size (ascending root id tie-break) onto the
  // least-loaded shard (lowest index tie-break).
  std::vector<std::int32_t> comp_of(static_cast<std::size_t>(net.node_count()),
                                    -1);
  struct Component {
    std::int32_t id;
    std::int32_t routers;
  };
  std::vector<Component> comps;
  for (std::int32_t n = 0; n < net.node_count(); ++n) {
    if (net.is_host(NodeId{n})) continue;
    const std::int32_t root = uf.find(n);
    if (comp_of[static_cast<std::size_t>(root)] < 0) {
      comp_of[static_cast<std::size_t>(root)] =
          static_cast<std::int32_t>(comps.size());
      comps.push_back({static_cast<std::int32_t>(comps.size()), 0});
    }
    ++comps[static_cast<std::size_t>(
                comp_of[static_cast<std::size_t>(root)])]
          .routers;
  }
  std::vector<std::int32_t> order(comps.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&comps](std::int32_t x,
                                                 std::int32_t y) {
    const auto& a = comps[static_cast<std::size_t>(x)];
    const auto& b = comps[static_cast<std::size_t>(y)];
    return a.routers != b.routers ? a.routers > b.routers : a.id < b.id;
  });
  std::vector<std::int64_t> load(static_cast<std::size_t>(shards), 0);
  std::vector<std::int32_t> comp_shard(comps.size(), 0);
  for (const std::int32_t c : order) {
    std::int32_t best = 0;
    for (std::int32_t s = 1; s < shards; ++s) {
      if (load[static_cast<std::size_t>(s)] <
          load[static_cast<std::size_t>(best)]) {
        best = s;
      }
    }
    comp_shard[static_cast<std::size_t>(c)] = best;
    load[static_cast<std::size_t>(best)] +=
        comps[static_cast<std::size_t>(c)].routers;
  }

  // Routers take their component's shard; hosts take their router's.
  for (std::int32_t n = 0; n < net.node_count(); ++n) {
    if (net.is_host(NodeId{n})) continue;
    out.node_shard[static_cast<std::size_t>(n)] = comp_shard[
        static_cast<std::size_t>(comp_of[static_cast<std::size_t>(
            uf.find(n))])];
  }
  for (const NodeId h : net.hosts()) {
    out.node_shard[static_cast<std::size_t>(h.value())] =
        out.shard_of(net.host_router(h));
  }

  // Derive the lookahead from the actual cut.
  for (std::int32_t e = 0; e < net.link_count(); ++e) {
    const Link& l = net.link(LinkId{e});
    if (!out.crosses(l)) continue;
    BNECK_EXPECT(!net.is_host(l.src) && !net.is_host(l.dst),
                 "host access link crosses shards");
    BNECK_EXPECT(l.prop_delay > 0, "zero-delay cross-shard link");
    out.cut_links.push_back(LinkId{e});
    out.lookahead = std::min(out.lookahead, l.prop_delay);
  }
  return out;
}

}  // namespace bneck::net
