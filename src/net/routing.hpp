// Shortest-path routing between hosts.
//
// Session paths are shortest paths from the source host to the
// destination host (§IV of the paper).  The default metric is hop count
// over the router subgraph with deterministic tie-breaking (BFS visiting
// links in creation order); a Dijkstra-by-delay variant is provided as a
// reference and for delay-sensitive experiments.
//
// BFS deliberately runs on the router subgraph only: hosts are leaves, so
// excluding them keeps per-query cost independent of the (possibly huge)
// host population.
#pragma once

#include <optional>
#include <vector>

#include "net/network.hpp"

namespace bneck::net {

/// A session path: the ordered directed links from the source host to the
/// destination host.  links.front() is the source access link, and
/// links.back() is the destination access link (router -> host).
struct Path {
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hop_count() const { return links.size(); }
};

class PathFinder {
 public:
  /// Captures the router-subgraph adjacency of `network`.  The network
  /// must outlive the PathFinder; links/routers added afterwards are not
  /// seen (hosts may be added freely, they do not affect router routing).
  explicit PathFinder(const Network& network);

  /// Shortest path (hop count over routers, deterministic tie-break) from
  /// one host to a different host.  nullopt when no route exists.
  [[nodiscard]] std::optional<Path> shortest_path(NodeId src_host,
                                                  NodeId dst_host) const;

  /// Minimum propagation-delay path (Dijkstra, deterministic tie-break).
  [[nodiscard]] std::optional<Path> min_delay_path(NodeId src_host,
                                                   NodeId dst_host) const;

  /// Total propagation delay along a path.
  [[nodiscard]] TimeNs path_delay(const Path& path) const;

 private:
  std::optional<Path> assemble(NodeId src_host, NodeId dst_host,
                               const std::vector<LinkId>& parent_link) const;

  const Network& net_;
  // Router-to-router links only, grouped by source router.
  std::vector<std::vector<LinkId>> router_adj_;  // indexed by node id
};

}  // namespace bneck::net
