#include "net/routing.hpp"

#include <algorithm>
#include <deque>
#include <queue>

namespace bneck::net {

PathFinder::PathFinder(const Network& network)
    : net_(network),
      router_adj_(static_cast<std::size_t>(network.node_count())) {
  for (std::int32_t n = 0; n < network.node_count(); ++n) {
    const NodeId node{n};
    if (network.is_host(node)) continue;
    auto& adj = router_adj_[static_cast<std::size_t>(n)];
    for (const LinkId e : network.links_from(node)) {
      if (!network.is_host(network.link(e).dst)) adj.push_back(e);
    }
  }
}

std::optional<Path> PathFinder::assemble(
    NodeId src_host, NodeId dst_host,
    const std::vector<LinkId>& parent_link) const {
  const NodeId src_router = net_.host_router(src_host);
  const NodeId dst_router = net_.host_router(dst_host);
  std::vector<LinkId> router_links;
  NodeId at = dst_router;
  while (at != src_router) {
    const LinkId pe = parent_link[static_cast<std::size_t>(at.value())];
    if (!pe.valid()) return std::nullopt;  // unreachable
    router_links.push_back(pe);
    at = net_.link(pe).src;
  }
  Path path;
  path.links.reserve(router_links.size() + 2);
  path.links.push_back(net_.host_uplink(src_host));
  path.links.insert(path.links.end(), router_links.rbegin(),
                    router_links.rend());
  path.links.push_back(net_.host_downlink(dst_host));
  return path;
}

std::optional<Path> PathFinder::shortest_path(NodeId src_host,
                                              NodeId dst_host) const {
  BNECK_EXPECT(net_.is_host(src_host) && net_.is_host(dst_host),
               "endpoints must be hosts");
  BNECK_EXPECT(src_host != dst_host, "source equals destination");
  const NodeId src_router = net_.host_router(src_host);
  const NodeId dst_router = net_.host_router(dst_host);

  std::vector<LinkId> parent(static_cast<std::size_t>(net_.node_count()),
                             LinkId{});
  if (src_router != dst_router) {
    std::vector<bool> seen(static_cast<std::size_t>(net_.node_count()), false);
    seen[static_cast<std::size_t>(src_router.value())] = true;
    std::deque<NodeId> frontier{src_router};
    bool found = false;
    while (!frontier.empty() && !found) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const LinkId e : router_adj_[static_cast<std::size_t>(u.value())]) {
        const NodeId v = net_.link(e).dst;
        auto s = seen[static_cast<std::size_t>(v.value())];
        if (s) continue;
        s = true;
        parent[static_cast<std::size_t>(v.value())] = e;
        if (v == dst_router) {
          found = true;
          break;
        }
        frontier.push_back(v);
      }
    }
    if (!found) return std::nullopt;
  }
  return assemble(src_host, dst_host, parent);
}

std::optional<Path> PathFinder::min_delay_path(NodeId src_host,
                                               NodeId dst_host) const {
  BNECK_EXPECT(net_.is_host(src_host) && net_.is_host(dst_host),
               "endpoints must be hosts");
  BNECK_EXPECT(src_host != dst_host, "source equals destination");
  const NodeId src_router = net_.host_router(src_host);
  const NodeId dst_router = net_.host_router(dst_host);

  const auto n = static_cast<std::size_t>(net_.node_count());
  std::vector<TimeNs> dist(n, kTimeNever);
  std::vector<LinkId> parent(n, LinkId{});
  using Item = std::pair<TimeNs, NodeId>;
  const auto later = [](const Item& a, const Item& b) {
    return a.first != b.first ? a.first > b.first : a.second.value() > b.second.value();
  };
  std::priority_queue<Item, std::vector<Item>, decltype(later)> pq(later);
  dist[static_cast<std::size_t>(src_router.value())] = 0;
  pq.push({0, src_router});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[static_cast<std::size_t>(u.value())]) continue;
    if (u == dst_router) break;
    for (const LinkId e : router_adj_[static_cast<std::size_t>(u.value())]) {
      const Link& l = net_.link(e);
      const TimeNs nd = d + l.prop_delay;
      auto& dv = dist[static_cast<std::size_t>(l.dst.value())];
      if (nd < dv) {
        dv = nd;
        parent[static_cast<std::size_t>(l.dst.value())] = e;
        pq.push({nd, l.dst});
      }
    }
  }
  if (src_router != dst_router &&
      dist[static_cast<std::size_t>(dst_router.value())] == kTimeNever) {
    return std::nullopt;
  }
  return assemble(src_host, dst_host, parent);
}

TimeNs PathFinder::path_delay(const Path& path) const {
  TimeNs total = 0;
  for (const LinkId e : path.links) total += net_.link(e).prop_delay;
  return total;
}

}  // namespace bneck::net
