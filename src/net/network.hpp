// Network model.
//
// A network is a simple directed graph of routers and hosts connected by
// directed links with a capacity (Mbps) and a propagation delay.  As in
// the paper's model (§II), connected nodes have links in both directions
// (links are created in pairs), and each host is connected to exactly one
// router through a dedicated access-link pair.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/expect.hpp"
#include "base/ids.hpp"
#include "base/rate.hpp"
#include "base/time.hpp"

namespace bneck::net {

enum class NodeKind : std::uint8_t { Router, Host };

/// A directed link.  Created only in pairs; `reverse` is the opposite
/// direction of the same physical connection.
struct Link {
  NodeId src;
  NodeId dst;
  Rate capacity = 0;       // Mbps available to data traffic
  TimeNs prop_delay = 0;   // propagation delay
  LinkId reverse;          // the (dst -> src) twin
};

class Network {
 public:
  /// Adds an isolated router.
  NodeId add_router();

  /// Adds a host attached to `router` via a dedicated symmetric link pair.
  NodeId add_host(NodeId router, Rate access_capacity, TimeNs access_delay);

  /// Adds a symmetric link pair between two routers.  Returns the u -> v
  /// direction; the twin is link(returned).reverse.
  LinkId add_link_pair(NodeId u, NodeId v, Rate capacity, TimeNs prop_delay);

  /// Adds an asymmetric link pair (distinct capacities per direction,
  /// same propagation delay).  Returns the u -> v direction.
  LinkId add_link_pair(NodeId u, NodeId v, Rate cap_uv, Rate cap_vu,
                       TimeNs prop_delay);

  [[nodiscard]] std::int32_t node_count() const {
    return static_cast<std::int32_t>(kinds_.size());
  }
  [[nodiscard]] std::int32_t link_count() const {
    return static_cast<std::int32_t>(links_.size());
  }
  [[nodiscard]] std::int32_t router_count() const { return router_count_; }
  [[nodiscard]] std::int32_t host_count() const {
    return static_cast<std::int32_t>(hosts_.size());
  }

  [[nodiscard]] NodeKind kind(NodeId n) const {
    return kinds_[checked_index(n)];
  }
  [[nodiscard]] bool is_host(NodeId n) const {
    return kind(n) == NodeKind::Host;
  }

  [[nodiscard]] const Link& link(LinkId e) const {
    BNECK_EXPECT(e.valid() && e.value() < link_count(), "bad link id");
    return links_[static_cast<std::size_t>(e.value())];
  }

  /// Outgoing links of a node, in creation order (deterministic).
  [[nodiscard]] std::span<const LinkId> links_from(NodeId n) const {
    return out_links_[checked_index(n)];
  }

  /// All hosts, in creation order.
  [[nodiscard]] const std::vector<NodeId>& hosts() const { return hosts_; }

  /// The router a host is attached to.
  [[nodiscard]] NodeId host_router(NodeId host) const;
  /// The host -> router access link.
  [[nodiscard]] LinkId host_uplink(NodeId host) const;
  /// The router -> host access link.
  [[nodiscard]] LinkId host_downlink(NodeId host) const {
    return link(host_uplink(host)).reverse;
  }

  /// Structural sanity check: link pairs are mutual twins, hosts have
  /// exactly one neighbor, no self-loops.  Throws InvariantError.
  void validate() const;

 private:
  std::size_t checked_index(NodeId n) const {
    BNECK_EXPECT(n.valid() && n.value() < node_count(), "bad node id");
    return static_cast<std::size_t>(n.value());
  }
  NodeId add_node(NodeKind kind);
  LinkId push_link(NodeId src, NodeId dst, Rate cap, TimeNs delay);

  std::vector<NodeKind> kinds_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<NodeId> hosts_;
  std::vector<LinkId> host_uplinks_;  // parallel to hosts_, indexed by host order
  std::vector<std::int32_t> host_index_;  // node id -> index into hosts_ (-1)
  std::int32_t router_count_ = 0;
};

}  // namespace bneck::net
