// Topology partitioning for the sharded parallel engine.
//
// The conservative PDES scheme (sim/sharded.hpp) advances every shard in
// lock-step time windows whose width is the *minimum propagation delay of
// any cross-shard link* — the lookahead.  The partitioner's whole job is
// therefore to cut the router graph so that the cheapest cut edge is as
// slow as possible: wide lookahead means wide windows, few barriers, and
// little cross-shard traffic.  On the transit-stub WANs this repo
// simulates, that cut falls naturally between stub domains (1 µs LAN
// links inside, 1–10 ms WAN links between), exactly the structure the
// delay-based clustering below recovers.
//
// Algorithm: single-linkage clustering over the router subgraph — the
// exact max-spacing k-clustering method.  Merge router-router edges in
// ascending (prop_delay, link id) order, skipping merges that would grow
// a component past a balance cap; the surviving inter-component edges are
// then the slowest possible, and components are bin-packed (largest
// first, smallest router id breaking ties) onto K shards.  Every step
// iterates ids in ascending order, so the partition is a pure function of
// (network, K, balance) — determinism the byte-identical A/B gate relies
// on.
//
// Hosts are not partitioned independently: a host always lives on its
// router's shard, which keeps the dedicated access-link pair intra-shard
// by construction.  Only router-router links can ever cross shards.
#pragma once

#include <cstdint>
#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "net/network.hpp"

namespace bneck::net {

/// A deterministic assignment of every node to one of `shard_count`
/// shards, with the derived conservative lookahead.
struct NetPartition {
  std::int32_t shard_count = 1;
  /// Per node id: owning shard in [0, shard_count).
  std::vector<std::int32_t> node_shard;
  /// Minimum prop_delay over links whose endpoints live on different
  /// shards; kTimeNever when no link crosses (every window then runs to
  /// local idle).  Strictly positive otherwise — zero-delay cross links
  /// would make conservative windows empty, and the builder rejects them.
  TimeNs lookahead = kTimeNever;
  /// Cross-shard directed links, ascending id (introspection/tests).
  std::vector<LinkId> cut_links;

  [[nodiscard]] std::int32_t shard_of(NodeId n) const {
    return node_shard[static_cast<std::size_t>(n.value())];
  }
  /// True when src and dst of `l` live on different shards.
  [[nodiscard]] bool crosses(const Link& l) const {
    return shard_of(l.src) != shard_of(l.dst);
  }
  /// Routers per shard (introspection/tests).
  [[nodiscard]] std::vector<std::int32_t> routers_per_shard(
      const Network& net) const;
};

struct PartitionConfig {
  /// Requested shard count; the effective count is
  /// min(shards, router_count) and at least 1.
  std::int32_t shards = 1;
  /// A component may grow to at most balance_slack * routers / shards
  /// routers during clustering (>= 1.0).  Larger values favor lookahead
  /// over balance.
  double balance_slack = 1.25;
};

/// Partitions `net` deterministically.  Requires every router-router link
/// to have prop_delay > 0 when it could end up cross-shard (enforced on
/// the actual cut).
NetPartition partition_network(const Network& net, const PartitionConfig& cfg);

}  // namespace bneck::net
