#include "net/network.hpp"

namespace bneck::net {

NodeId Network::add_node(NodeKind kind) {
  const NodeId id{node_count()};
  kinds_.push_back(kind);
  out_links_.emplace_back();
  host_index_.push_back(-1);
  return id;
}

NodeId Network::add_router() {
  ++router_count_;
  return add_node(NodeKind::Router);
}

LinkId Network::push_link(NodeId src, NodeId dst, Rate cap, TimeNs delay) {
  BNECK_EXPECT(src != dst, "self-loop");
  BNECK_EXPECT(cap > 0, "non-positive capacity");
  BNECK_EXPECT(delay >= 0, "negative delay");
  const LinkId id{link_count()};
  links_.push_back(Link{src, dst, cap, delay, LinkId{}});
  out_links_[checked_index(src)].push_back(id);
  return id;
}

LinkId Network::add_link_pair(NodeId u, NodeId v, Rate capacity,
                              TimeNs prop_delay) {
  return add_link_pair(u, v, capacity, capacity, prop_delay);
}

LinkId Network::add_link_pair(NodeId u, NodeId v, Rate cap_uv, Rate cap_vu,
                              TimeNs prop_delay) {
  const LinkId fwd = push_link(u, v, cap_uv, prop_delay);
  const LinkId rev = push_link(v, u, cap_vu, prop_delay);
  links_[static_cast<std::size_t>(fwd.value())].reverse = rev;
  links_[static_cast<std::size_t>(rev.value())].reverse = fwd;
  return fwd;
}

NodeId Network::add_host(NodeId router, Rate access_capacity,
                         TimeNs access_delay) {
  BNECK_EXPECT(kind(router) == NodeKind::Router,
               "hosts attach to routers only");
  const NodeId host = add_node(NodeKind::Host);
  const LinkId up = add_link_pair(host, router, access_capacity, access_delay);
  host_index_[checked_index(host)] = static_cast<std::int32_t>(hosts_.size());
  hosts_.push_back(host);
  host_uplinks_.push_back(up);
  return host;
}

NodeId Network::host_router(NodeId host) const {
  return link(host_uplink(host)).dst;
}

LinkId Network::host_uplink(NodeId host) const {
  const auto idx = host_index_[checked_index(host)];
  BNECK_EXPECT(idx >= 0, "node is not a host");
  return host_uplinks_[static_cast<std::size_t>(idx)];
}

void Network::validate() const {
  for (std::int32_t i = 0; i < link_count(); ++i) {
    const Link& l = link(LinkId{i});
    BNECK_EXPECT(l.reverse.valid(), "link without twin");
    const Link& r = link(l.reverse);
    BNECK_EXPECT(r.reverse == LinkId{i}, "twin mismatch");
    BNECK_EXPECT(r.src == l.dst && r.dst == l.src, "twin endpoints mismatch");
    BNECK_EXPECT(r.prop_delay == l.prop_delay, "twin delay mismatch");
  }
  for (const NodeId h : hosts_) {
    BNECK_EXPECT(kind(h) == NodeKind::Host, "host list corrupt");
    BNECK_EXPECT(links_from(h).size() == 1, "host must have one uplink");
    BNECK_EXPECT(kind(link(host_uplink(h)).dst) == NodeKind::Router,
                 "host attached to non-router");
  }
}

}  // namespace bneck::net
