// 64-bit FNV-1a state fingerprinting for the explicit-state model
// checker (src/mc/world.hpp builds World fingerprints with it).
//
// The hasher feeds fixed-width little-endian encodings of each field, so
// a fingerprint is a pure function of the *semantic* values hashed — it
// never touches struct padding or in-memory layout, which is what makes
// two states reached along different interleavings hash equal exactly
// when their canonicalized state (world.cpp documents the
// canonicalization) is equal.
#pragma once

#include <cstdint>
#include <cstring>

namespace bneck::mc {

class Fnv64 {
 public:
  void u8(std::uint8_t v) {
    h_ ^= v;
    h_ *= kPrime;
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// Hashes the bit pattern of a double (all values the simulation
  /// produces are totally determined, so bit equality is the right
  /// notion of "same rate").
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  static constexpr std::uint64_t kOffset = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h_ = kOffset;
};

}  // namespace bneck::mc
