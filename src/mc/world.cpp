#include "mc/world.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

#include "base/expect.hpp"
#include "check/runner.hpp"
#include "mc/fingerprint.hpp"

namespace bneck::mc {

namespace {

core::Packet packet_of(const sim::Event& ev) {
  core::Packet p;
  std::memcpy(&p, ev.delivery_payload(), sizeof p);
  return p;
}

std::uint64_t dbl_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

/// Total-order key over the packet's semantic fields (never raw struct
/// bytes — padding is indeterminate).
std::array<std::uint64_t, 8> packet_key(const core::Packet& p) {
  return {static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              p.session.value())),
          static_cast<std::uint64_t>(p.type),
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.hop)),
          dbl_bits(p.lambda),
          dbl_bits(p.weight),
          static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(p.eta.value())),
          static_cast<std::uint64_t>(p.tag),
          p.beta ? 1ULL : 0ULL};
}

void hash_packet(Fnv64& h, const core::Packet& p) {
  for (const std::uint64_t k : packet_key(p)) h.u64(k);
}

/// Hashes a long double aggregate as its double value plus the residual
/// precision — restore() keeps aggregates bit-exact, so equal states
/// have equal residuals.
void hash_longdouble(Fnv64& h, long double v) {
  const auto head = static_cast<double>(v);
  h.f64(head);
  h.f64(static_cast<double>(v - static_cast<long double>(head)));
}

core::BneckConfig world_config(const check::Scenario& sc,
                               const WorldOptions& opt) {
  BNECK_EXPECT(sc.loss_probability == 0.0,
               "model checking requires loss-free wires");
  BNECK_EXPECT(!sc.shared_access,
               "model checking requires dedicated access links");
  core::BneckConfig cfg;
  cfg.fault_single_kick = opt.fault_single_kick;
  return cfg;
}

check::CheckOptions world_check_options(const WorldOptions& opt) {
  check::CheckOptions co;
  co.max_events = opt.max_events;
  // Audit on every step: exhaustive exploration wants maximal checking
  // power, and a deterministic audit point per transition keeps the
  // excluded-from-fingerprint stride counter irrelevant.
  co.audit_stride = 1;
  // Both calibrated budgets OFF: the model checker derives the *exact*
  // bounds these budgets approximate, and disarming them is what makes
  // excluding the checker's phase bookkeeping from the fingerprint
  // sound (no budget state can influence a verdict).
  co.quiescence_slack = 0.0;
  co.packet_slack = 0.0;
  co.fault_single_kick = opt.fault_single_kick;
  return co;
}

}  // namespace

bool same_action(const Candidate& a, const Candidate& b) {
  return a.node == b.node && packet_key(a.packet) == packet_key(b.packet);
}

World::World(const check::Scenario& sc, const WorldOptions& opt)
    : scenario_(sc),
      opt_(opt),
      net_(check::build_network(scenario_.topo)),
      paths_(net_),
      chk_(net_, world_config(sc, opt), world_check_options(opt)),
      bneck_(sim_, net_, world_config(sc, opt), &chk_) {
  check::normalize(scenario_);
  sim_.set_max_events(opt_.max_events);
  chk_.attach(bneck_);
}

World::Phase World::prep() {
  if (violation_.empty() && !chk_.ok()) violation_ = chk_.first_violation();
  if (!violation_.empty()) return Phase::Violation;
  try {
    while (true) {
      const TimeNs burst_t = next_event_ < scenario_.events.size()
                                 ? scenario_.events[next_event_].at
                                 : kTimeNever;
      const TimeNs t_min = sim_.next_event_time();
      // Deliveries at the burst instant fire before the burst
      // (run_scenario's step_to horizon is inclusive).
      if (!sim_.idle() && t_min <= burst_t) return Phase::Deliver;
      if (sim_.idle() && pending_validation_) {
        chk_.on_quiescent(sim_.last_event_time());
        pending_validation_ = false;
        if (!chk_.ok()) break;
      }
      if (next_event_ >= scenario_.events.size()) return Phase::Terminal;
      sim_.run_until(burst_t);
      while (next_event_ < scenario_.events.size() &&
             scenario_.events[next_event_].at == burst_t) {
        check::apply_schedule_event(net_, paths_, chk_, bneck_,
                                    scenario_.events[next_event_]);
        ++next_event_;
      }
      chk_.on_burst(burst_t);
      pending_validation_ = true;
      if (!chk_.ok()) break;
    }
    violation_ = chk_.first_violation();
  } catch (const InvariantError& e) {
    violation_ = e.what();
  }
  return Phase::Violation;
}

std::int32_t World::node_of(const core::Packet& p) const {
  const net::Path* path = bneck_.session_path(p.session);
  BNECK_EXPECT(path != nullptr && !path->links.empty(),
               "pending delivery for a session never joined");
  const auto len = static_cast<std::int32_t>(path->links.size());
  if (p.hop <= 0) return net_.link(path->links.front()).src.value();
  if (p.hop >= len) return net_.link(path->links.back()).dst.value();
  return net_.link(path->links[static_cast<std::size_t>(p.hop)]).src.value();
}

std::vector<Candidate> World::candidates() const {
  const TimeNs t_min = sim_.next_event_time();
  std::vector<Candidate> out;
  sim_.for_each_pending(
      [&](TimeNs t, std::uint64_t seq, const sim::Event& ev) {
        if (t != t_min) return;
        BNECK_EXPECT(ev.is_delivery(),
                     "model checker schedules are delivery-only");
        Candidate c;
        c.seq = seq;
        c.t = t;
        c.packet = packet_of(ev);
        c.node = node_of(c.packet);
        out.push_back(c);
      });
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.node != b.node) return a.node < b.node;
    const auto ka = packet_key(a.packet);
    const auto kb = packet_key(b.packet);
    if (ka != kb) return ka < kb;
    return a.seq < b.seq;
  });
  // Fold byte-identical twins: firing either yields fingerprint-equal
  // successors, so one representative (the smallest seq — the one the
  // production schedule would fire first) suffices.
  std::vector<Candidate> folded;
  for (Candidate& c : out) {
    if (!folded.empty() && same_action(folded.back(), c)) {
      ++folded.back().multiplicity;
    } else {
      folded.push_back(c);
    }
  }
  return folded;
}

WorldSnapshot World::save() const {
  return WorldSnapshot{sim_.snapshot(), bneck_.snapshot(),
                       chk_.snapshot_state(), next_event_,
                       pending_validation_};
}

void World::load(const WorldSnapshot& snap, std::uint64_t skip_seq) {
  sim_.restore(snap.sim, skip_seq);
  bneck_.restore(snap.bneck);
  chk_.restore_state(snap.checker);
  next_event_ = snap.next_event;
  pending_validation_ = snap.pending_validation;
  violation_.clear();
}

void World::fire(const WorldSnapshot& at, const Candidate& c) {
  load(at, c.seq);
  const auto it = std::lower_bound(
      at.sim.entries.begin(), at.sim.entries.end(), c,
      [](const sim::SimSnapshot::Entry& e, const Candidate& cand) {
        return e.t != cand.t ? e.t < cand.t : e.seq < cand.seq;
      });
  BNECK_EXPECT(it != at.sim.entries.end() && it->t == c.t && it->seq == c.seq,
               "candidate is not a pending entry of the snapshot");
  try {
    sim_.fire_now(c.t, it->ev.clone());
    chk_.on_step(sim_.now());
  } catch (const InvariantError& e) {
    violation_ = e.what();
  }
}

void World::fire_inline(const Candidate& c) {
  const TimeNs t_min = sim_.next_event_time();
  std::uint64_t min_seq = UINT64_MAX;
  sim_.for_each_pending([&](TimeNs t, std::uint64_t seq, const sim::Event&) {
    if (t == t_min && seq < min_seq) min_seq = seq;
  });
  if (c.seq == min_seq) {
    step_canonical();
    return;
  }
  const WorldSnapshot snap = save();
  fire(snap, c);
}

void World::step_canonical() {
  try {
    sim_.step();
    chk_.on_step(sim_.now());
  } catch (const InvariantError& e) {
    violation_ = e.what();
  }
}

std::uint64_t World::fingerprint() const {
  Fnv64 h;
  h.u64(next_event_);
  h.b(pending_validation_);
  h.i64(sim_.now());

  // Pending deliveries, canonically ordered by (time, packet fields) —
  // seq excluded (see header).
  std::vector<std::pair<TimeNs, core::Packet>> pending;
  sim_.for_each_pending(
      [&](TimeNs t, std::uint64_t /*seq*/, const sim::Event& ev) {
        BNECK_EXPECT(ev.is_delivery(),
                     "model checker schedules are delivery-only");
        pending.emplace_back(t, packet_of(ev));
      });
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return packet_key(a.second) < packet_key(b.second);
            });
  h.u64(pending.size());
  for (const auto& [t, p] : pending) {
    h.i64(t);
    hash_packet(h, p);
  }

  const core::BneckProtocol::Snapshot snap = bneck_.snapshot();

  // Per-slot session state.  Slots are assigned in join order, which is
  // burst-deterministic, so slot indices align across interleavings.
  // probe_cycles and the global packet counters are monotone statistics,
  // not semantic state.
  h.u64(snap.sessions.size());
  for (const auto& s : snap.sessions) {
    h.f64(s.demand);
    h.f64(s.weight);
    h.b(s.notified.has_value());
    h.f64(s.notified.value_or(0.0));
    h.b(s.active);
    if (s.active) {
      h.f64(s.source.weight);
      h.f64(s.source.ds);
      h.u8(static_cast<std::uint8_t>(s.source.mu));
      h.f64(s.source.lambda);
      h.b(s.source.in_f);
      h.b(s.source.upd_rcv);
      h.b(s.source.bneck_rcv);
    }
  }
  h.u64(snap.active_count);
  for (const std::int32_t v : snap.sources_in_use) h.i32(v);

  // RouterLink tables, keyed and sorted by link id: active_links() is
  // first-use order, which varies across interleavings.  A table with
  // no rows and zero aggregates hashes like a never-instantiated link.
  const std::vector<LinkId>& links = bneck_.active_links();
  BNECK_EXPECT(links.size() == snap.tables.size(),
               "table snapshot out of sync with active links");
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const core::LinkSessionTable::Snapshot& tb = snap.tables[i];
    if (tb.rows.empty() && tb.r_count == 0 && tb.r_weight == 0 &&
        tb.f_sum == 0) {
      continue;
    }
    order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return links[a].value() < links[b].value();
  });
  h.u64(order.size());
  for (const std::size_t i : order) {
    const core::LinkSessionTable::Snapshot& tb = snap.tables[i];
    h.i32(links[i].value());
    h.u64(tb.rows.size());
    for (const auto& r : tb.rows) {
      h.i32(r.s.value());
      h.u8(static_cast<std::uint8_t>(r.mu));
      h.f64(r.lambda);
      h.f64(r.weight);
      h.b(r.in_r);
      h.i32(r.hop);
    }
    h.u64(tb.r_count);
    hash_longdouble(h, tb.r_weight);
    hash_longdouble(h, tb.f_sum);
  }

  // FIFO clocks relative to now(): an exhausted busy horizon is
  // behaviorally identical to a free channel.
  const TimeNs now = sim_.now();
  for (std::size_t i = 0; i < snap.channel_busy.size(); ++i) {
    const TimeNs rel = snap.channel_busy[i] - now;
    if (rel > 0) {
      h.u64(i);
      h.i64(rel);
    }
  }
  return h.value();
}

std::string World::describe(const Candidate& c) const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "t=%lldns node=%d %s s=%d hop=%d lambda=%g x%d",
                static_cast<long long>(c.t), c.node,
                core::packet_type_name(c.packet.type),
                c.packet.session.value(), c.packet.hop, c.packet.lambda,
                c.multiplicity);
  return std::string(buf);
}

}  // namespace bneck::mc
