// The model checker's execution world: one Scenario bound to a
// snapshot/restorable Simulator + BneckProtocol + InvariantChecker.
//
// A World replays exactly the run_scenario(check/runner.hpp) semantics —
// API bursts are applied through the shared apply_schedule_event, every
// delivery is followed by the checker's on_step hook, and every drained
// queue validates the full quiescent-phase property set — but hands the
// *choice* of which same-instant delivery fires next to an external
// driver:
//
//   prep()        advances the deterministic part (bursts, intermediate
//                 quiescence validation) until the next delivery window,
//                 the end of the schedule, or a violation;
//   candidates()  enumerates the deliveries racing at the window — the
//                 pending events at the minimum timestamp, deduplicated
//                 (byte-identical packets to the same handler produce
//                 fingerprint-identical successors) and canonically
//                 ordered;
//   save()/fire() snapshot the whole world and execute one candidate
//                 from a snapshot (the queue is rebuilt without the
//                 chosen entry, which then fires via fire_now);
//   fingerprint() hashes the canonicalized semantic state, the
//                 explorer's visited-set key.
//
// The canonicalization behind fingerprint():
//
//   * pending deliveries are decoded to core::Packet and sorted by
//     (time, packet fields) — the queue's insertion sequence numbers are
//     *excluded*, because the explorer branches on every order of
//     same-instant deliveries anyway, so two states differing only in
//     seq assignment have identical successor sets;
//   * RouterLink tables are keyed by link id and sorted (the protocol
//     instantiates tasks lazily in first-use order, which varies across
//     interleavings); a table with no rows and zero aggregates hashes
//     like a never-instantiated link;
//   * FIFO channel clocks are hashed relative to now() (a stale busy
//     horizon is behaviorally identical to a free channel);
//   * monotone statistics (packets_sent, probe cycles, events processed)
//     and the checker's slack bookkeeping are excluded.  Excluding the
//     checker is sound because the World forces both slack multipliers
//     to zero, which disarms every budget side effect; the remaining
//     checker state is a deterministic function of the burst index,
//     which *is* hashed.
//
// Worlds only support the configurations the snapshot seam supports:
// loss-free non-ARQ wires and dedicated access links (the
// generate_small_scenario family).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/invariants.hpp"
#include "check/scenario.hpp"
#include "core/bneck.hpp"
#include "core/packet.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"

namespace bneck::mc {

struct WorldOptions {
  /// Per-schedule simulator event budget (the explorer restores the
  /// processed-event counter with each snapshot, so this bounds one
  /// schedule, not the whole exploration).
  std::uint64_t max_events = 2'000'000;
  /// Arms BneckConfig::fault_single_kick (harness-validation mutant).
  bool fault_single_kick = false;
};

/// The checker's private snapshot value, named via decltype (access
/// control applies to names, not types).
using CheckerState = decltype(std::declval<const check::InvariantChecker&>()
                                  .snapshot_state());

/// A resumable copy of the whole world.  Move-only (simulator events are
/// not copyable); stays valid across any number of loads.
struct WorldSnapshot {
  sim::SimSnapshot sim;
  core::BneckProtocol::Snapshot bneck;
  CheckerState checker;
  std::size_t next_event = 0;
  bool pending_validation = false;
};

/// One racing delivery at a branch point.
struct Candidate {
  std::uint64_t seq = 0;  // queue sequence of the representative entry
  TimeNs t = 0;
  core::Packet packet;
  std::int32_t node = -1;  // node whose task processes the delivery
  int multiplicity = 1;    // byte-identical twins folded into this one
};

/// Same action: identical receiving node and packet fields (the
/// candidate identity used by sleep sets across states).
[[nodiscard]] bool same_action(const Candidate& a, const Candidate& b);

/// Mazurkiewicz independence: two same-instant deliveries commute iff
/// their receiving nodes differ.  A delivery to node n mutates only
/// state anchored at n — the SourceNode / RouterLink / destination task
/// and the FIFO clocks of links leaving n (every emission of a task at n
/// transmits on an out-link of n) — so deliveries at distinct nodes
/// touch disjoint state and yield fingerprint-equal states in either
/// order.  Node granularity (not link granularity) is deliberate: two
/// RouterLink tasks at one router can emit onto the same out-link
/// channel, so per-link independence would be unsound.
[[nodiscard]] inline bool independent(const Candidate& a, const Candidate& b) {
  return a.node != b.node;
}

class World {
 public:
  enum class Phase : std::uint8_t { Deliver, Terminal, Violation };

  /// Normalizes `sc` and builds the full stack.  Requires a loss-free,
  /// dedicated-access scenario.
  World(const check::Scenario& sc, const WorldOptions& opt = {});

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Advances the deterministic part of the run: applies due API bursts
  /// (deliveries at the burst instant fire *before* the burst, exactly
  /// as run_scenario's step_to horizon), validates intermediate
  /// quiescence when the queue drains between bursts, and runs the final
  /// quiescent validation at the end of the schedule.  Idempotent at a
  /// delivery window.
  Phase prep();

  /// The racing deliveries at the current window (Phase::Deliver only):
  /// pending events at the minimum timestamp, deduplicated by (node,
  /// packet) with the smallest seq as representative, sorted
  /// canonically.
  [[nodiscard]] std::vector<Candidate> candidates() const;

  [[nodiscard]] WorldSnapshot save() const;
  /// Rewinds to `snap`; an entry whose seq equals skip_seq is left out
  /// of the rebuilt queue.
  void load(const WorldSnapshot& snap,
            std::uint64_t skip_seq = sim::SimSnapshot::kKeepAll);
  /// load(at, c.seq) + fire the candidate's event at its timestamp +
  /// checker on_step.
  void fire(const WorldSnapshot& at, const Candidate& c);
  /// Fires candidate `c` from the *current* state: a plain simulator
  /// step when c is the (time, seq)-minimal entry, else via an internal
  /// snapshot.  The chained fast path of the explorer.
  void fire_inline(const Candidate& c);
  /// Fires the (time, seq)-minimal pending event — the schedule the
  /// production simulator executes.  Cross-validation hook.
  void step_canonical();

  /// FNV-1a fingerprint of the canonicalized world state (see header
  /// comment).
  [[nodiscard]] std::uint64_t fingerprint() const;

  [[nodiscard]] const std::string& violation() const { return violation_; }
  [[nodiscard]] std::uint64_t packets_sent() const {
    return bneck_.packets_sent();
  }
  [[nodiscard]] TimeNs last_event_time() const {
    return sim_.last_event_time();
  }
  [[nodiscard]] int quiescent_phases() const {
    return chk_.quiescent_phases();
  }
  [[nodiscard]] const net::Network& network() const { return net_; }
  [[nodiscard]] const check::Scenario& scenario() const { return scenario_; }

  /// One-line description of a candidate (witness reporting).
  [[nodiscard]] std::string describe(const Candidate& c) const;

 private:
  [[nodiscard]] std::int32_t node_of(const core::Packet& p) const;

  check::Scenario scenario_;  // normalized
  WorldOptions opt_;
  net::Network net_;
  net::PathFinder paths_;
  sim::Simulator sim_;
  check::InvariantChecker chk_;
  core::BneckProtocol bneck_;

  std::size_t next_event_ = 0;       // index into scenario_.events
  bool pending_validation_ = false;  // a burst's quiescence is unvalidated
  std::string violation_;
};

}  // namespace bneck::mc
