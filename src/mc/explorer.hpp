// Exhaustive explorer over delivery interleavings of one small scenario.
//
// explore() runs a depth-first search over the World's state graph
// (mc/world.hpp): the deterministic parts of a run — API bursts,
// intermediate quiescence validation — are chained, and wherever two or
// more deliveries race at the same instant the explorer snapshots the
// world and executes every choice.  Three reductions keep the search
// finite and small, each sound on its own:
//
//   * visited set — states are keyed by World::fingerprint(); a state
//     already explored is not re-expanded.  Per state the explorer
//     memoizes the exact maxima of the completions below it
//     (quiescence time, packets to terminal), so merged states still
//     contribute exact bounds;
//   * twin folding — byte-identical racing packets collapse to one
//     representative inside World::candidates();
//   * sleep sets (opt.dpor) — Godefroid's sleep-set DPOR over the
//     independence relation of mc/world.hpp (deliveries to distinct
//     nodes commute): after exploring candidate c, its Mazurkiewicz-
//     equivalent reorderings under later independent candidates are
//     pruned.  A visited state is re-entered only when the incoming
//     sleep set is not a superset of a recorded one (the covering
//     condition), so the reduction composes with state merging.
//
// Every quiescent state reached runs the full check::invariants
// quiescent-phase validation (solver agreement, stability, feasibility),
// and every transition runs the per-step audits — the fuzzer's property
// set, applied to *every* schedule instead of a sampled one.
//
// The exact enumerated maxima (max_quiescence_time, max_total_packets)
// replace the calibrated slack envelope of check/bounds.hpp on these
// instances; DPOR-off runs are authoritative for the maxima, DPOR-on
// runs are asserted to agree (trace-equivalent schedules have identical
// timestamps and packet counts, so per-class invariance makes the
// agreement exact — tests/mc_test.cpp pins it).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/scenario.hpp"
#include "mc/world.hpp"

namespace bneck::mc {

struct McOptions {
  /// Sleep-set partial-order reduction on/off.
  bool dpor = true;
  /// Visited-set state merging: skip re-expanding a fingerprint already
  /// explored (with DPOR: unless the covering condition requires a
  /// re-visit).  Off = raw schedule enumeration, the baseline the
  /// reduction ratio is measured against — every fingerprint is still
  /// *recorded*, so cross-validation and the quiescent-state summary
  /// work in every mode.
  bool state_merge = true;
  /// Hunt the shortest violating schedule: re-explore visited states
  /// reached at a strictly smaller depth and branch-and-bound on the
  /// best witness.  Off by default (it defeats part of the state
  /// merging); the fault-injection tests turn it on.
  bool minimal_witness = false;
  /// Record every visited fingerprint in McResult::visited (the
  /// fuzzer cross-validation hook).
  bool record_visited = false;
  /// Exploration caps; exceeding one clears McResult::complete.
  std::uint64_t max_states = 2'000'000;
  std::uint64_t max_transitions = 50'000'000;
  std::size_t max_depth = 100'000;
  WorldOptions world;
};

struct McResult {
  /// False when some schedule violates an invariant (or a cap was hit
  /// while a violation was already recorded).
  bool ok = true;
  std::string message;  // first (minimal_witness: shortest) violation
  /// The violating schedule: one World::describe line per branch-point
  /// choice on the path (chained forced steps included).
  std::vector<std::string> witness;
  /// Deliveries fired from the initial state to the violation.
  std::size_t witness_len = 0;

  /// True iff the exploration finished without hitting a cap — only
  /// then are the maxima exact and the verdict exhaustive.
  bool complete = true;

  std::uint64_t states = 0;        // states expanded (tree nodes; with
                                   // state_merge ≈ distinct fingerprints)
  std::uint64_t transitions = 0;   // deliveries fired
  std::uint64_t branch_points = 0; // states with >= 2 explored choices
  std::uint64_t executions = 0;    // schedules run to quiescence
  std::uint64_t sleep_skips = 0;   // candidates pruned by sleep sets
  std::uint64_t visited_skips = 0; // arrivals cut by the visited set

  /// Exact maxima over every explored schedule (exhaustive when
  /// `complete` and no violation).
  TimeNs max_quiescence_time = -1;
  std::uint64_t max_total_packets = 0;

  /// Fingerprint summary of the reachable terminal (quiescent) states —
  /// the DPOR on/off agreement basis: both modes must reach the same
  /// set.
  std::uint64_t quiescent_states = 0;
  std::uint64_t quiescent_fp_xor = 0;

  /// Populated when McOptions::record_visited: every state fingerprint
  /// the exploration recorded (delivery windows and terminals).
  std::unordered_set<std::uint64_t> visited;
};

/// Exhaustively explores every delivery interleaving of `sc`.
[[nodiscard]] McResult explore(const check::Scenario& sc,
                               const McOptions& opt = {});

/// The production schedule, replayed through the World with a state
/// fingerprint recorded at every delivery window and at the terminal —
/// by construction a path in the model checker's state graph, so every
/// fingerprint must be in the DPOR-off visited set (tests cross-validate
/// exactly that), and the final stats must match check::run_scenario.
struct CanonicalRun {
  bool ok = true;
  std::string message;
  std::vector<std::uint64_t> fingerprints;
  std::uint64_t transitions = 0;
  std::uint64_t packets_sent = 0;
  TimeNs quiesced_at = 0;
  int quiescent_phases = 0;
};

[[nodiscard]] CanonicalRun canonical_run(const check::Scenario& sc,
                                         const WorldOptions& opt = {});

}  // namespace bneck::mc
