#include "mc/explorer.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "base/expect.hpp"

namespace bneck::mc {

namespace {

using SleepSet = std::vector<Candidate>;

bool in_sleep(const SleepSet& z, const Candidate& c) {
  for (const Candidate& s : z) {
    if (same_action(s, c)) return true;
  }
  return false;
}

/// a ⊆ b under same_action identity.
bool sleep_subset(const SleepSet& a, const SleepSet& b) {
  for (const Candidate& x : a) {
    if (!in_sleep(b, x)) return false;
  }
  return true;
}

/// Aggregated result of the completions below a point of the search.
/// max_packets_abs is the absolute packets_sent counter at terminal —
/// meaningful within one path (counters rewind with every restore), and
/// converted to a state-relative delta before memoization.
struct Outcome {
  bool any = false;
  TimeNs max_final = -1;
  std::uint64_t max_packets_abs = 0;

  void merge(const Outcome& o) {
    if (!o.any) return;
    any = true;
    max_final = std::max(max_final, o.max_final);
    max_packets_abs = std::max(max_packets_abs, o.max_packets_abs);
  }
};

struct VisitRecord {
  std::size_t min_depth = 0;
  bool on_stack = false;
  // Exact maxima of the completions explored below this state (valid
  // once `any`): absolute final time, packets relative to this state.
  bool any = false;
  TimeNs max_final = -1;
  std::uint64_t max_future = 0;
  /// Sleep sets (with arrival depths) this state has been explored
  /// under; an arrival whose sleep set is a superset of a recorded one
  /// is fully covered (Godefroid's covering condition).
  std::vector<std::pair<SleepSet, std::size_t>> covers;
};

class Explorer {
 public:
  Explorer(const check::Scenario& sc, const McOptions& opt)
      : opt_(opt), world_(sc, opt.world) {}

  McResult run() {
    const Outcome root = dfs({}, 0);
    if (root.any) {
      res_.max_quiescence_time = root.max_final;
      res_.max_total_packets = root.max_packets_abs;
    }
    res_.quiescent_states = quiescent_fps_.size();
    return std::move(res_);
  }

 private:
  void record_fp(std::uint64_t fp) {
    if (opt_.record_visited) res_.visited.insert(fp);
  }

  void record_violation(const std::string& message, std::size_t depth) {
    if (res_.ok || depth < res_.witness_len) {
      res_.ok = false;
      res_.message = message;
      res_.witness = path_;
      res_.witness_len = depth;
    }
    // One violating schedule answers the verdict; only a minimal-witness
    // hunt keeps searching for a shorter one.
    if (!opt_.minimal_witness) stopped_ = true;
  }

  [[nodiscard]] bool covered(const VisitRecord& rec, const SleepSet& z,
                             std::size_t depth) const {
    if (opt_.minimal_witness && depth < rec.min_depth) return false;
    if (!opt_.dpor) return true;
    for (const auto& [zz, d] : rec.covers) {
      if (opt_.minimal_witness && d > depth) continue;
      if (sleep_subset(zz, z)) return true;
    }
    return false;
  }

  Outcome dfs(SleepSet z, std::size_t depth) {
    Outcome out;
    // States chained through in this frame, for DP backfill.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> trail;
    const std::size_t path_mark = path_.size();
    const auto finish = [&]() -> Outcome {
      for (const auto& [fp, pk] : trail) {
        VisitRecord& rec = visited_[fp];
        rec.on_stack = false;
        if (out.any) {
          rec.any = true;
          rec.max_final = std::max(rec.max_final, out.max_final);
          rec.max_future =
              std::max(rec.max_future, out.max_packets_abs - pk);
        }
      }
      path_.resize(path_mark);
      return out;
    };

    while (true) {
      if (stopped_) return finish();
      const World::Phase ph = world_.prep();
      if (ph == World::Phase::Violation) {
        record_violation(world_.violation(), depth);
        return finish();
      }
      if (ph == World::Phase::Terminal) {
        ++res_.executions;
        ++res_.states;
        const std::uint64_t fp = world_.fingerprint();
        if (quiescent_fps_.insert(fp).second) res_.quiescent_fp_xor ^= fp;
        record_fp(fp);
        out.any = true;
        out.max_final = std::max(out.max_final, world_.last_event_time());
        out.max_packets_abs =
            std::max(out.max_packets_abs, world_.packets_sent());
        return finish();
      }

      // A delivery window.
      if (depth >= opt_.max_depth) {
        res_.complete = false;
        return finish();
      }
      if (!res_.ok && opt_.minimal_witness && depth >= res_.witness_len) {
        return finish();  // branch-and-bound: cannot beat the best witness
      }
      const std::uint64_t fp = world_.fingerprint();
      const std::uint64_t pk = world_.packets_sent();
      const auto [it, inserted] = visited_.try_emplace(fp);
      VisitRecord& rec = it->second;
      if (inserted) record_fp(fp);
      if (res_.states > opt_.max_states ||
          res_.transitions > opt_.max_transitions) {
        res_.complete = false;
        stopped_ = true;
        return finish();
      }
      if (!opt_.state_merge) {
        // Raw enumeration: fingerprints are still recorded (above) so
        // cross-validation works, but arrivals are never skipped and the
        // DP trail is not maintained — every node of the schedule tree
        // is expanded.
      } else if (!inserted) {
        if (covered(rec, z, depth)) {
          ++res_.visited_skips;
          if (rec.on_stack) {
            // A cycle at one instant — a quiescent protocol cannot do
            // this; report instead of mis-memoizing.
            record_violation("instantaneous delivery cycle (livelock)",
                             depth);
            return finish();
          }
          if (rec.any) {
            Outcome cached;
            cached.any = true;
            cached.max_final = rec.max_final;
            cached.max_packets_abs = pk + rec.max_future;
            out.merge(cached);
          }
          return finish();
        }
        // Re-exploration (shallower arrival or uncovered sleep set).
        rec.min_depth = std::min(rec.min_depth, depth);
        if (opt_.dpor) rec.covers.emplace_back(z, depth);
        trail.emplace_back(fp, pk);
      } else {
        rec.min_depth = depth;
        rec.on_stack = true;
        if (opt_.dpor) rec.covers.emplace_back(z, depth);
        trail.emplace_back(fp, pk);
      }
      ++res_.states;  // this arrival is expanded, not skipped

      std::vector<Candidate> cands = world_.candidates();
      BNECK_EXPECT(!cands.empty(), "delivery window without candidates");
      std::vector<Candidate> enabled;
      enabled.reserve(cands.size());
      for (const Candidate& c : cands) {
        if (opt_.dpor && in_sleep(z, c)) {
          ++res_.sleep_skips;
          continue;
        }
        enabled.push_back(c);
      }
      if (enabled.empty()) {
        // Every choice is asleep: all schedules from here are explored
        // from an equivalent state elsewhere.
        return finish();
      }

      if (enabled.size() == 1) {
        // Forced step: chain without a snapshot.
        const Candidate c = enabled.front();
        if (opt_.dpor) {
          SleepSet nz;
          for (const Candidate& s : z) {
            if (independent(s, c)) nz.push_back(s);
          }
          z = std::move(nz);
        }
        path_.push_back(world_.describe(c));
        world_.fire_inline(c);
        ++res_.transitions;
        ++depth;
        continue;
      }

      // Branch point: snapshot once, execute every choice.
      ++res_.branch_points;
      const WorldSnapshot snap = world_.save();
      std::vector<Candidate> done;
      for (const Candidate& c : enabled) {
        if (stopped_) break;
        if (!res_.ok && opt_.minimal_witness &&
            depth + 1 >= res_.witness_len) {
          break;
        }
        world_.fire(snap, c);
        ++res_.transitions;
        SleepSet child;
        if (opt_.dpor) {
          for (const Candidate& s : z) {
            if (independent(s, c)) child.push_back(s);
          }
          for (const Candidate& s : done) {
            if (independent(s, c)) child.push_back(s);
          }
        }
        path_.push_back(world_.describe(c));
        out.merge(dfs(std::move(child), depth + 1));
        path_.pop_back();
        if (opt_.dpor) done.push_back(c);
      }
      return finish();
    }
  }

  McOptions opt_;
  World world_;
  McResult res_;
  std::unordered_map<std::uint64_t, VisitRecord> visited_;
  std::unordered_set<std::uint64_t> quiescent_fps_;
  std::vector<std::string> path_;
  bool stopped_ = false;
};

}  // namespace

McResult explore(const check::Scenario& sc, const McOptions& opt) {
  Explorer ex(sc, opt);
  return ex.run();
}

CanonicalRun canonical_run(const check::Scenario& sc,
                           const WorldOptions& opt) {
  World w(sc, opt);
  CanonicalRun out;
  while (true) {
    const World::Phase ph = w.prep();
    if (ph == World::Phase::Violation) {
      out.ok = false;
      out.message = w.violation();
      break;
    }
    out.fingerprints.push_back(w.fingerprint());
    if (ph == World::Phase::Terminal) break;
    w.step_canonical();
    ++out.transitions;
  }
  out.packets_sent = w.packets_sent();
  out.quiesced_at = w.last_event_time();
  out.quiescent_phases = w.quiescent_phases();
  return out;
}

}  // namespace bneck::mc
