// Live-network compliance: scenario replay over the wire.
//
// The property harness (check/runner.hpp) validates the protocol inside
// the simulator, where it can see every task's internal state.  The
// compliance mode validates the *deployed* shape instead, treating it as
// a black box the way "Towards Model Checking Real-World Software-
// Defined Networks" treats controller software: a real bneckd process
// (transport/daemon.hpp) serves the router plane on 127.0.0.1, a
// SourceClient replays a scenario's API timeline over the wire codec,
// and the converged rates reported by API.Rate are compared against the
// centralized max-min solver (core/maxmin.hpp) within kRateCheckEps.
//
// Scenarios are forced into the daemon's deployment envelope first:
// dedicated access mode (clients own their access links) and, by
// default, a lossless wire.  Compliance-under-faults (`--compliance
// --faults`) instead interposes a deterministic transport::
// FaultInjector on BOTH egress paths — client and daemon — so every
// frame family crosses a network that drops, duplicates, reorders,
// delays and bit-corrupts datagrams, and the converged rates must
// still match the centralized solver: the reliability sublayer
// (transport/reliable.hpp) is what is actually under test.  Fault
// schedules are pure functions of the scenario seed, so a failure
// replays exactly.  The client's injector is disarmed before the
// Shutdown handshake — teardown is not part of the experiment.
//
// Two isolation levels: fork mode spawns the daemon as a child process
// (true multi-process, the CI smoke) and thread mode runs its serve
// loop on a std::thread in-process (so the ASan cell sees both sides'
// fds and memory on shutdown).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/scenario.hpp"
#include "transport/fault.hpp"

namespace bneck::check {

struct ComplianceOptions {
  /// Wall-clock budget for convergence after the last API event.
  int timeout_ms = 5000;
  /// Run the daemon on a thread instead of a forked child.
  bool threaded = false;
  /// Stall-recovery re-probes before giving up.
  int max_nudges = 3;
  /// Fault schedule for both egress paths; seed 0 means "derive from
  /// the scenario seed".  Disabled when absent or all-zero.
  std::optional<transport::FaultConfig> faults;
};

struct ComplianceResult {
  bool ok = false;
  std::string failure;  // empty when ok
  std::uint64_t seed = 0;
  std::uint32_t sessions_checked = 0;  // live sessions compared to solver
  std::uint64_t wire_frames = 0;       // datagrams the client exchanged
  std::uint64_t retransmissions = 0;   // client-side reliable re-sends
  int nudges = 0;
  /// What the client-side injector did (zeroes when faults are off;
  /// the daemon side keeps its own schedule and counters).
  transport::FaultCounters client_faults;

  [[nodiscard]] explicit operator bool() const { return ok; }
};

/// Replays `sc` (normalized into the deployment envelope) against a
/// live daemon and checks the converged rates.  Never throws; failures
/// (including a daemon child dying) come back in the result.
[[nodiscard]] ComplianceResult run_compliance_scenario(
    const Scenario& sc, const ComplianceOptions& opt);

/// generate_scenario(seed) + run_compliance_scenario.
[[nodiscard]] ComplianceResult run_compliance_seed(
    std::uint64_t seed, const ComplianceOptions& opt);

}  // namespace bneck::check
