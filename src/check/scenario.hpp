// Randomized protocol scenarios for the property harness.
//
// A Scenario is a fully explicit, replayable description of one
// simulator run: a parameterized topology plus a timeline of API events
// (join / leave / change).  Scenarios come from three places:
//
//   * generate_scenario(seed) — the fuzzer: one uint64 seed determines
//     the topology family (line, star, dumbbell, parking-lot,
//     multi-bottleneck tree, random graph, cell-backhaul), every
//     capacity/delay knob, the loss configuration, the session weights
//     (about a third of the scenarios exercise non-uniform max-min
//     weights, including mid-run weight changes) and the whole event
//     timeline, via base/rng.hpp.  Same seed, same scenario, byte for
//     byte.
//   * parse_spec(text) — replay of a spec emitted by format_spec, e.g.
//     the minimal reproducer printed by the shrinker
//     (`bneck_check --replay "<spec>"`).
//   * hand construction in tests.
//
// normalize() makes *any* event list valid by dropping events that
// violate the API preconditions; this is what lets the shrinker delete
// arbitrary event subsets and still obtain a runnable scenario.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/rate.hpp"
#include "base/time.hpp"
#include "net/network.hpp"

namespace bneck::check {

enum class TopoKind : std::uint8_t {
  Line,        // router chain, hpr hosts per router
  Star,        // hub + a leaves, hpr hosts per router
  Dumbbell,    // a pairs across one bottleneck of router_capacity
  ParkingLot,  // a-link chain, one host per router (multi-bottleneck)
  Tree,        // binary tree of depth a, hpr hosts per leaf
  Random,      // connected random graph: a routers, b chords, `hosts` hosts
  Backhaul,    // cell-backhaul: aggregation chain, b cells per stage
};

[[nodiscard]] const char* topo_kind_name(TopoKind k);

struct TopoSpec {
  TopoKind kind = TopoKind::Dumbbell;
  std::int32_t a = 3;   // routers / leaves / pairs / links / depth / stages
  std::int32_t b = 0;   // Random: extra chords; Backhaul: cells per stage
  std::int32_t hpr = 1;         // hosts per router (where applicable)
  std::int32_t hosts = 6;       // Random only: total hosts
  std::uint64_t seed = 0;       // Random wiring seed
  Rate router_capacity = 200.0;  // router-router links (Dumbbell: bottleneck)
  Rate access_capacity = 100.0;  // host-router links
  bool wan = false;              // 3 ms router delays instead of 1 us
};

/// Builds the (validated) network a TopoSpec describes.  Deterministic.
[[nodiscard]] net::Network build_network(const TopoSpec& t);

enum class EventKind : std::uint8_t { Join, Leave, Change };

struct ScheduleEvent {
  TimeNs at = 0;
  EventKind kind = EventKind::Join;
  std::int32_t session = 0;     // scenario-local session id
  std::int32_t src_host = -1;   // Join: index into Network::hosts()
  std::int32_t dst_host = -1;   // Join: index into Network::hosts()
  Rate demand = kRateInfinity;  // Join / Change
  /// Join: the session's max-min weight; Change: the weight after the
  /// change (the generator carries the current weight forward on changes
  /// that only touch the demand).  Specs omit the field when it is 1.
  double weight = 1.0;

  friend bool operator==(const ScheduleEvent&, const ScheduleEvent&) = default;
};

struct Scenario {
  /// Generator seed, recorded for reporting; 0 for hand-built or shrunk
  /// scenarios (the event list, not the seed, is authoritative).
  std::uint64_t seed = 0;
  TopoSpec topo;
  /// Wire loss probability; > 0 implies go-back-N ARQ links
  /// (BneckConfig::reliable_links), as lossy runs would otherwise
  /// deadlock by design.
  double loss_probability = 0.0;
  /// Runs the protocol with BneckConfig::shared_access_links: any number
  /// of sessions may share a source host (the access link is arbitrated
  /// by a RouterLink task at the host).  The generator arms it on about
  /// a third of the seeds; normalize() then permits concurrent sessions
  /// on one source.  Specs carry it as `shared=1` (omitted when false).
  bool shared_access = false;
  std::vector<ScheduleEvent> events;
};

/// The fuzzer: expands one seed into a scenario.  Pure function of seed.
[[nodiscard]] Scenario generate_scenario(std::uint64_t seed);

/// Size knobs for generate_small_scenario.  The defaults describe the
/// canonical model-checking instance: a 2-router line with 2 sessions
/// and a couple of post-join events.
struct SmallModelParams {
  std::int32_t routers = 2;      // line length, 1..3
  std::int32_t sessions = 2;     // sessions in the opening join burst, 1..4
  std::int32_t extra_events = 2; // leaves/changes/rejoins after the burst
};

/// Small-model sibling of generate_scenario for the explicit-state model
/// checker (src/mc/): tiny line topologies, LAN delays (so deliveries
/// tie and interleavings exist), loss-free wires, dedicated access links
/// — exactly the configurations the checker's snapshot seam supports —
/// and a bursty clock (~half the events land on an already-used
/// instant).  Pure function of (seed, params).
[[nodiscard]] Scenario generate_small_scenario(std::uint64_t seed,
                                               const SmallModelParams& p = {});

/// Makes the event list valid: stable-sorts by time, then drops events
/// that violate the API preconditions (join of an already-used session
/// id or busy/out-of-range/self-paired host, leave/change of a session
/// not live, non-positive demand, non-positive/non-finite weight).
/// Deterministic.  Returns the number of events dropped.
std::size_t normalize(Scenario& sc);

/// One-line textual spec round-trippable through parse_spec.
[[nodiscard]] std::string format_spec(const Scenario& sc);

/// Parses a format_spec string.  Throws InvariantError on malformed
/// input.
[[nodiscard]] Scenario parse_spec(const std::string& spec);

/// A self-contained C++ (gtest) reproducer for the scenario.
/// `fault_single_kick` arms the documented harness-validation mutation
/// in the emitted CheckOptions, so injected-fault repros stay failing.
[[nodiscard]] std::string cpp_snippet(const Scenario& sc,
                                      const std::string& test_name,
                                      bool fault_single_kick = false);

}  // namespace bneck::check
