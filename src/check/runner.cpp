#include "check/runner.hpp"

#include "base/expect.hpp"
#include "net/routing.hpp"
#include "workload/parallel.hpp"

namespace bneck::check {

namespace {

/// Steps every pending event with timestamp <= horizon, invoking the
/// checker after each; stops early once a violation is recorded.
void step_to(sim::Simulator& sim, InvariantChecker& chk, TimeNs horizon) {
  while (chk.ok() && sim.next_event_time() <= horizon) {
    sim.step();
    chk.on_step(sim.now());
  }
}

}  // namespace

void apply_schedule_event(const net::Network& net,
                          const net::PathFinder& paths,
                          InvariantChecker& chk, core::BneckProtocol& bneck,
                          const ScheduleEvent& ev) {
  const SessionId s{ev.session};
  switch (ev.kind) {
    case EventKind::Join: {
      const auto path = paths.shortest_path(
          net.hosts()[static_cast<std::size_t>(ev.src_host)],
          net.hosts()[static_cast<std::size_t>(ev.dst_host)]);
      BNECK_EXPECT(path.has_value(), "no route between scenario hosts");
      chk.on_join(s, *path, ev.demand, ev.weight);
      bneck.join(s, *path, ev.demand, ev.weight);
      break;
    }
    case EventKind::Leave:
      chk.on_leave(s);
      bneck.leave(s);
      break;
    case EventKind::Change:
      chk.on_change(s, ev.demand, ev.weight);
      bneck.change(s, ev.demand, ev.weight);
      break;
  }
}

CheckResult run_scenario(const Scenario& sc, const CheckOptions& opt) {
  CheckResult out;
  out.seed = sc.seed;

  Scenario run = sc;
  normalize(run);
  out.schedule_events = run.events.size();

  const net::Network net = build_network(run.topo);
  const net::PathFinder paths(net);
  sim::Simulator sim;
  sim.set_max_events(opt.max_events);

  core::BneckConfig cfg;
  cfg.loss_probability = run.loss_probability;
  cfg.reliable_links = run.loss_probability > 0;
  cfg.shared_access_links = run.shared_access;
  cfg.fault_single_kick = opt.fault_single_kick;

  InvariantChecker chk(net, cfg, opt);
  core::BneckProtocol bneck(sim, net, cfg, &chk);
  chk.attach(bneck);

  // Whether a burst has been applied whose quiescence has not been
  // validated yet (guards against double-validating one drained queue).
  bool pending_validation = false;
  try {
    std::size_t i = 0;
    while (i < run.events.size() && chk.ok()) {
      const TimeNs t = run.events[i].at;
      step_to(sim, chk, t);
      if (!chk.ok()) break;
      if (pending_validation && sim.idle()) {
        // The network went fully quiescent in the gap before this burst.
        chk.on_quiescent(sim.last_event_time());
        pending_validation = false;
        if (!chk.ok()) break;
      }
      sim.run_until(t);  // no events <= t remain; advances now() to t
      for (; i < run.events.size() && run.events[i].at == t; ++i) {
        apply_schedule_event(net, paths, chk, bneck, run.events[i]);
      }
      chk.on_burst(t);
      pending_validation = true;
    }
    // Final drain to full quiescence.
    while (chk.ok() && sim.step()) {
      chk.on_step(sim.now());
    }
    if (chk.ok() && pending_validation) {
      chk.on_quiescent(sim.last_event_time());
    }
  } catch (const InvariantError& e) {
    out.ok = false;
    out.message = e.what();
  }

  if (out.ok && !chk.ok()) {
    out.ok = false;
    out.message = chk.first_violation();
  }
  out.events_processed = sim.events_processed();
  out.packets_sent = bneck.packets_sent();
  out.quiescent_phases = chk.quiescent_phases();
  out.quiesced_at = sim.last_event_time();
  return out;
}

CheckResult run_seed(std::uint64_t seed, const CheckOptions& opt) {
  CheckResult result = run_scenario(generate_scenario(seed), opt);
  result.seed = seed;
  return result;
}

CampaignResult run_seed_range(std::uint64_t first, std::uint64_t last,
                              std::size_t threads, const CheckOptions& opt) {
  BNECK_EXPECT(first <= last, "seed range must satisfy first <= last");
  const auto count = static_cast<std::size_t>(last - first + 1);
  const auto results = workload::parallel_map<CheckResult>(
      count, threads,
      [&](std::size_t i) { return run_seed(first + i, opt); });
  CampaignResult out;
  out.seeds_run = count;
  for (const CheckResult& r : results) {
    out.events_processed += r.events_processed;
    out.packets_sent += r.packets_sent;
    out.quiescent_phases += static_cast<std::uint64_t>(r.quiescent_phases);
    if (!r.ok) out.failures.push_back(r);
  }
  return out;
}

}  // namespace bneck::check
