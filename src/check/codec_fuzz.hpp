// Wire-codec fuzzing: free packet-serialization coverage for
// `bneck_check --codec-seeds`.
//
// Each seed drives one deterministic campaign against src/wire:
//
//   * round-trips — random well-formed frames of every kind (all seven
//     packet types, Join path suffixes, control frames) must decode
//     back field-for-field, and re-encoding the decoded frame must
//     reproduce the original bytes (canonical encoding);
//   * mutations — truncations, extensions and byte flips of valid
//     frames must either be rejected with a decode error or decode to
//     a frame that itself round-trips (no half-validated state);
//   * garbage — random buffers must never crash the decoder.
//
// Like the protocol fuzzer, the campaign is a pure function of the
// seed, so a failing seed is its own reproducer.
#pragma once

#include <cstdint>
#include <string>

namespace bneck::check {

struct CodecFuzzResult {
  std::uint64_t seed = 0;
  std::uint64_t frames = 0;     // well-formed frames round-tripped
  std::uint64_t mutations = 0;  // mutated / garbage buffers decoded
  std::uint64_t rejected = 0;   // of those, rejected with an error
  std::string failure;          // empty when the seed passed

  [[nodiscard]] bool ok() const { return failure.empty(); }
};

/// Runs one seeded codec campaign (~hundreds of frames); never throws.
[[nodiscard]] CodecFuzzResult run_codec_seed(std::uint64_t seed);

}  // namespace bneck::check
