// Online protocol-invariant checker for B-Neck scenario runs.
//
// The checker rides a scenario run (check/runner.hpp) through three hook
// surfaces and records the *first* violated property:
//
//   * TraceSink — every wire transmission and every API.Rate
//     notification.  Online checks: notified rates are non-negative,
//     never exceed the session's current demand or the tightest capacity
//     on its path; per-phase control traffic stays within a structural
//     budget (B-Neck's in-flight updates are bounded, so a phase's packet
//     count is O(levels x Σ path lengths) — a runaway Update storm trips
//     this long before the simulator's event budget).
//   * on_step — after every simulator event; every `audit_stride` steps
//     it audits each instantiated RouterLink table against a naive
//     reconstruction (LinkSessionTable::audit) and checks that every
//     table entry belongs to a known session at the right hop/link.
//   * on_quiescent — whenever the event queue drains: full network
//     stability (paper Definition 2), exact agreement of the notified
//     rates with the centralized *weighted* max-min solver on the active
//     sessions (within kRateCheckEps; the solver is the protocol's
//     ground truth for non-uniform weights too), feasibility +
//     per-session restriction (core::check_maxmin_invariants), per-link
//     recorded rates (weight x recorded level) equal to the sessions'
//     allocated rates, and — on reliable links — the quiescence-time
//     bound after the phase's last API change.
//
// Properties that only hold at fixpoints (solver agreement, stability,
// feasibility of rate *sums*) are checked at quiescent instants;
// transient overshoot during reconvergence is expected and not flagged.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/bounds.hpp"
#include "core/bneck.hpp"
#include "core/trace.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"

namespace bneck::check {

struct CheckOptions {
  /// Simulator event budget per scenario; exceeding it is reported as a
  /// non-quiescence failure.
  std::uint64_t max_events = 20'000'000;
  /// Audit every N-th simulator event (0 = only at quiescent instants).
  std::size_t audit_stride = 256;
  /// Multiplier on the structural quiescence-time bound; <= 0 disables.
  /// Only enforced on reliable links (ARQ retransmission timers under
  /// loss add stochastic delay the paper's bound does not model).
  /// The calibrated value lives in check/bounds.hpp (one place).
  double quiescence_slack = kQuiescenceSlack;
  /// Multiplier on the per-phase control-packet budget; <= 0 disables.
  /// Only enforced on loss-free links (retransmissions inflate counts).
  double packet_slack = kPacketSlack;
  /// Arms the documented harness-validation mutation
  /// (BneckConfig::fault_single_kick).
  bool fault_single_kick = false;
};

struct CheckResult {
  bool ok = true;
  std::string message;  // first violation, with timestamp context
  std::uint64_t seed = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t packets_sent = 0;
  std::size_t schedule_events = 0;
  int quiescent_phases = 0;
  TimeNs quiesced_at = 0;
};

class InvariantChecker final : public core::TraceSink {
 public:
  InvariantChecker(const net::Network& net, const core::BneckConfig& cfg,
                   const CheckOptions& opt);

  /// Must be called once, before the run, with the protocol under test.
  void attach(core::BneckProtocol& bneck);

  // ---- schedule bookkeeping (runner calls these at API time) ----
  void on_join(SessionId s, const net::Path& path, Rate demand,
               double weight = 1.0);
  void on_leave(SessionId s);
  /// `weight` is deliberately not defaulted: BneckProtocol::change(s, r)
  /// *preserves* the session's weight, so a demand-only change must pass
  /// the current weight explicitly or the checker's ground truth drifts.
  void on_change(SessionId s, Rate demand, double weight);
  /// Called after a burst of same-timestamp API calls has been applied:
  /// recomputes the phase budgets (packet and quiescence-time bounds).
  void on_burst(TimeNs t);

  // ---- run hooks ----
  /// After every simulator event (stride-sampled table audits).
  void on_step(TimeNs now);
  /// The event queue drained at `quiesced_at`.
  void on_quiescent(TimeNs quiesced_at);

  // ---- core::TraceSink ----
  void on_packet_sent(TimeNs t, const core::Packet& p,
                      LinkId physical_link) override;
  void on_rate_notified(TimeNs t, SessionId s, Rate r) override;

  [[nodiscard]] bool ok() const { return violation_.empty(); }
  [[nodiscard]] const std::string& first_violation() const {
    return violation_;
  }
  [[nodiscard]] int quiescent_phases() const { return quiescent_phases_; }

  // ---- snapshot/restore (model-checker seam, src/mc/) ----
  // State is an opaque value capture of every mutable field (the net/cfg
  // references and the attached protocol pointer are identity, not
  // state).  It is a private type returned through public methods: hold
  // it with auto — the model checker only ever round-trips it.
  [[nodiscard]] auto snapshot_state() const {
    return State{violation_,     sessions_,
                 active_count_,  last_change_at_,
                 phase_packets_, phase_packet_budget_,
                 phase_quiescence_bound_, phase_dirty_,
                 draining_hops_, steps_since_audit_,
                 quiescent_phases_};
  }
  template <class St>
  void restore_state(const St& st) {
    violation_ = st.violation;
    sessions_ = st.sessions;
    active_count_ = st.active_count;
    last_change_at_ = st.last_change_at;
    phase_packets_ = st.phase_packets;
    phase_packet_budget_ = st.phase_packet_budget;
    phase_quiescence_bound_ = st.phase_quiescence_bound;
    phase_dirty_ = st.phase_dirty;
    draining_hops_ = st.draining_hops;
    steps_since_audit_ = st.steps_since_audit;
    quiescent_phases_ = st.quiescent_phases;
  }

 private:
  struct SessionInfo {
    net::Path path;
    Rate demand = kRateInfinity;
    double weight = 1.0;                // max-min weight
    Rate min_capacity = kRateInfinity;  // tightest link on the path
    bool active = false;
  };

  /// The value behind snapshot_state()/restore_state(): every mutable
  /// field, copyable.  Kept private (with SessionInfo) — callers hold it
  /// through auto.
  struct State {
    std::string violation;
    std::unordered_map<SessionId, SessionInfo> sessions;
    std::size_t active_count;
    TimeNs last_change_at;
    std::uint64_t phase_packets;
    std::uint64_t phase_packet_budget;
    TimeNs phase_quiescence_bound;
    bool phase_dirty;
    std::size_t draining_hops;
    std::uint64_t steps_since_audit;
    int quiescent_phases;
  };

  void fail(TimeNs t, const std::string& what);
  /// `quiescent`: additionally require that no departed session lingers
  /// in any table (their Leave packets must have drained).
  void audit_tables(TimeNs t, bool quiescent = false);
  [[nodiscard]] TimeNs tx_time(const net::Link& l) const;

  const net::Network& net_;
  core::BneckConfig cfg_;
  CheckOptions opt_;
  core::BneckProtocol* bneck_ = nullptr;

  std::string violation_;
  std::unordered_map<SessionId, SessionInfo> sessions_;
  std::size_t active_count_ = 0;

  // Phase state (recomputed by on_burst, validated and reset by
  // on_quiescent).
  TimeNs last_change_at_ = 0;
  std::uint64_t phase_packets_ = 0;
  std::uint64_t phase_packet_budget_ = 0;  // 0 = unarmed
  TimeNs phase_quiescence_bound_ = kTimeNever;
  bool phase_dirty_ = false;  // an API change happened since last quiescence
  std::size_t draining_hops_ = 0;  // path hops of sessions leaving this phase

  std::uint64_t steps_since_audit_ = 0;
  int quiescent_phases_ = 0;
};

}  // namespace bneck::check
