#include "check/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "base/expect.hpp"
#include "base/rng.hpp"
#include "topo/canonical.hpp"

namespace bneck::check {

const char* topo_kind_name(TopoKind k) {
  switch (k) {
    case TopoKind::Line: return "line";
    case TopoKind::Star: return "star";
    case TopoKind::Dumbbell: return "dumbbell";
    case TopoKind::ParkingLot: return "parking_lot";
    case TopoKind::Tree: return "tree";
    case TopoKind::Random: return "random";
    case TopoKind::Backhaul: return "backhaul";
  }
  return "?";
}

namespace {

TopoKind topo_kind_from_name(const std::string& name) {
  for (const TopoKind k :
       {TopoKind::Line, TopoKind::Star, TopoKind::Dumbbell,
        TopoKind::ParkingLot, TopoKind::Tree, TopoKind::Random,
        TopoKind::Backhaul}) {
    if (name == topo_kind_name(k)) return k;
  }
  fail_invariant("known topology kind", name.c_str(), __FILE__, __LINE__);
}

/// Cell-backhaul: a chain of aggregation routers toward a gateway; each
/// stage hangs `cells` cell routers whose uplinks share the stage's
/// backhaul, so capacity tightens toward the gateway — a natural
/// multi-level bottleneck hierarchy.  Hosts: `hpr` per cell router, in
/// stage-major order, then max(2, cells) gateway-side hosts.
net::Network make_backhaul(const TopoSpec& t) {
  net::Network n;
  const std::int32_t stages = std::max<std::int32_t>(1, t.a);
  const std::int32_t cells = std::max<std::int32_t>(1, t.b);
  const TimeNs delay = t.wan ? milliseconds(3) : microseconds(1);
  std::vector<NodeId> agg;
  for (std::int32_t i = 0; i < stages; ++i) agg.push_back(n.add_router());
  for (std::int32_t i = 0; i + 1 < stages; ++i) {
    // Backhaul chain: capacity shrinks toward the gateway (stage 0).
    n.add_link_pair(agg[static_cast<std::size_t>(i)],
                    agg[static_cast<std::size_t>(i + 1)],
                    t.router_capacity / static_cast<Rate>(i + 1), delay);
  }
  for (std::int32_t i = 0; i < stages; ++i) {
    for (std::int32_t c = 0; c < cells; ++c) {
      const NodeId cell = n.add_router();
      // Cell uplinks share the stage: each gets 1/cells of the backhaul.
      n.add_link_pair(agg[static_cast<std::size_t>(i)], cell,
                      t.router_capacity / static_cast<Rate>(cells),
                      microseconds(1));
      for (std::int32_t h = 0; h < t.hpr; ++h) {
        n.add_host(cell, t.access_capacity, microseconds(1));
      }
    }
  }
  for (std::int32_t h = 0; h < std::max<std::int32_t>(2, cells); ++h) {
    n.add_host(agg[0], t.access_capacity, microseconds(1));
  }
  return n;
}

}  // namespace

net::Network build_network(const TopoSpec& t) {
  topo::CanonicalOptions opt;
  opt.router_capacity = t.router_capacity;
  opt.access_capacity = t.access_capacity;
  opt.hosts_per_router = t.hpr;
  if (t.wan) opt.router_delay = milliseconds(3);
  net::Network n;
  switch (t.kind) {
    case TopoKind::Line:
      n = topo::make_line(t.a, opt);
      break;
    case TopoKind::Star:
      n = topo::make_star(t.a, opt);
      break;
    case TopoKind::Dumbbell:
      n = topo::make_dumbbell(t.a, t.router_capacity, opt);
      break;
    case TopoKind::ParkingLot:
      n = topo::make_parking_lot(t.a, opt);
      break;
    case TopoKind::Tree:
      n = topo::make_tree(t.a, opt);
      break;
    case TopoKind::Random: {
      Rng rng(t.seed);
      n = topo::make_random(t.a, t.b, t.hosts, rng, opt);
      break;
    }
    case TopoKind::Backhaul:
      n = make_backhaul(t);
      break;
  }
  n.validate();
  BNECK_EXPECT(n.host_count() >= 2, "scenario topology needs >= 2 hosts");
  return n;
}

Scenario generate_scenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario sc;
  sc.seed = seed;

  // ---- topology ----
  TopoSpec& t = sc.topo;
  t.kind = static_cast<TopoKind>(rng.uniform_int(0, 6));
  t.router_capacity = rng.pick(std::vector<Rate>{50.0, 100.0, 200.0, 400.0});
  t.access_capacity = rng.pick(std::vector<Rate>{20.0, 100.0, 1000.0});
  t.wan = rng.chance(0.25);
  switch (t.kind) {
    case TopoKind::Line:
      t.a = static_cast<std::int32_t>(rng.uniform_int(2, 6));
      t.hpr = static_cast<std::int32_t>(rng.uniform_int(1, 3));
      break;
    case TopoKind::Star:
      t.a = static_cast<std::int32_t>(rng.uniform_int(2, 6));
      t.hpr = static_cast<std::int32_t>(rng.uniform_int(1, 2));
      break;
    case TopoKind::Dumbbell:
      t.a = static_cast<std::int32_t>(rng.uniform_int(2, 8));
      t.hpr = 1;
      break;
    case TopoKind::ParkingLot:
      t.a = static_cast<std::int32_t>(rng.uniform_int(2, 6));
      t.hpr = 1;
      break;
    case TopoKind::Tree:
      t.a = static_cast<std::int32_t>(rng.uniform_int(1, 3));
      t.hpr = static_cast<std::int32_t>(rng.uniform_int(1, 2));
      break;
    case TopoKind::Random:
      t.a = static_cast<std::int32_t>(rng.uniform_int(3, 12));
      t.b = static_cast<std::int32_t>(rng.uniform_int(0, t.a));
      t.hosts = static_cast<std::int32_t>(rng.uniform_int(2 * t.a, 3 * t.a));
      t.seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
      break;
    case TopoKind::Backhaul:
      t.a = static_cast<std::int32_t>(rng.uniform_int(2, 4));
      t.b = static_cast<std::int32_t>(rng.uniform_int(1, 3));
      t.hpr = static_cast<std::int32_t>(rng.uniform_int(1, 2));
      break;
  }

  // ---- fault model ----
  if (rng.chance(0.2)) {
    sc.loss_probability = rng.uniform_real(0.01, 0.12);
  }

  // ---- weighted max-min ----
  // A third of the scenarios exercise non-uniform weights: joins sample
  // w from [0.25, 4] and some changes retune the weight mid-run, so the
  // weighted protocol paths (weight-normalized levels, Probe re-announce)
  // are fuzzed against the weighted centralized solver.
  const bool weighted = rng.chance(0.35);

  // ---- shared access links ----
  // About a third of the scenarios lift the paper's one-session-per-
  // source-host simplification (BneckConfig::shared_access_links): joins
  // may then reuse busy source hosts and the access link is arbitrated
  // by a regular RouterLink task at the host.
  sc.shared_access = rng.chance(1.0 / 3);

  // ---- event timeline (join / leave / change / burstiness) ----
  const std::int32_t host_count = build_network(t).host_count();
  const std::int32_t n_events = static_cast<std::int32_t>(rng.uniform_int(3, 60));
  struct Live {
    std::int32_t id;
    std::int32_t src;
    double weight;
  };
  std::vector<Live> live;
  std::vector<bool> host_used(static_cast<std::size_t>(host_count), false);
  std::int32_t next_id = 0;
  TimeNs clock = 0;
  const Rate demand_hi = 1.5 * t.router_capacity;
  for (std::int32_t e = 0; e < n_events; ++e) {
    // Bursts of simultaneous events are the interesting schedules: only
    // advance the clock between events with probability 0.7.
    if (rng.chance(0.7)) clock += rng.uniform_int(0, microseconds(200));
    const double dice = rng.uniform_real(0.0, 1.0);
    if (dice < 0.55 || live.empty()) {
      // Dedicated mode: sources come from the free hosts only.  Shared
      // mode: any host may source any number of sessions, which is
      // exactly the contention the mode exists to exercise.
      std::int32_t src = -1;
      if (sc.shared_access) {
        src = static_cast<std::int32_t>(rng.uniform_int(0, host_count - 1));
      } else {
        std::vector<std::int32_t> free;
        for (std::int32_t h = 0; h < host_count; ++h) {
          if (!host_used[static_cast<std::size_t>(h)]) free.push_back(h);
        }
        if (free.empty()) continue;
        src = free[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(free.size()) - 1))];
      }
      std::int32_t dst = src;
      while (dst == src) {
        dst = static_cast<std::int32_t>(rng.uniform_int(0, host_count - 1));
      }
      host_used[static_cast<std::size_t>(src)] = true;
      ScheduleEvent ev;
      ev.at = clock;
      ev.kind = EventKind::Join;
      ev.session = next_id++;
      ev.src_host = src;
      ev.dst_host = dst;
      ev.demand =
          rng.chance(0.4) ? rng.uniform_real(0.5, demand_hi) : kRateInfinity;
      if (weighted && rng.chance(0.75)) {
        ev.weight = rng.uniform_real(0.25, 4.0);
      }
      sc.events.push_back(ev);
      live.push_back({ev.session, src, ev.weight});
    } else if (dice < 0.8) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      ScheduleEvent ev;
      ev.at = clock;
      ev.kind = EventKind::Leave;
      ev.session = live[k].id;
      sc.events.push_back(ev);
      host_used[static_cast<std::size_t>(live[k].src)] = false;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      ScheduleEvent ev;
      ev.at = clock;
      ev.kind = EventKind::Change;
      ev.session = live[k].id;
      ev.demand =
          rng.chance(0.3) ? kRateInfinity : rng.uniform_real(0.5, demand_hi);
      // A change carries the session's weight: usually unchanged, but
      // weighted scenarios sometimes retune it (the API.Change(s, r, w)
      // path: the links learn the new weight from the next Probe).
      if (weighted && rng.chance(0.3)) {
        live[k].weight = rng.uniform_real(0.25, 4.0);
      }
      ev.weight = live[k].weight;
      sc.events.push_back(ev);
    }
  }
  return sc;
}

Scenario generate_small_scenario(std::uint64_t seed,
                                 const SmallModelParams& p) {
  BNECK_EXPECT(p.routers >= 1 && p.routers <= 3,
               "small-model instances have 1..3 routers");
  BNECK_EXPECT(p.sessions >= 1 && p.sessions <= 4,
               "small-model instances have 1..4 sessions");
  BNECK_EXPECT(p.extra_events >= 0, "extra_events must be non-negative");
  // Decorrelate from generate_scenario's stream so seed k names a
  // different instance in each family.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x536d616c6cull);
  Scenario sc;
  sc.seed = seed;

  TopoSpec& t = sc.topo;
  t.kind = TopoKind::Line;
  t.a = p.routers;
  // Enough hosts that every burst session gets its own source (the model
  // checker runs dedicated access links) plus one spare destination.
  t.hpr = (p.sessions + p.routers) / p.routers;
  t.router_capacity = rng.pick(std::vector<Rate>{100.0, 200.0});
  t.access_capacity = rng.pick(std::vector<Rate>{50.0, 100.0});
  t.wan = false;  // LAN delays: 1 us hops, so deliveries tie and race
  sc.loss_probability = 0.0;
  sc.shared_access = false;

  const std::int32_t host_count = build_network(t).host_count();
  const Rate demand_hi = 1.5 * t.router_capacity;
  std::vector<bool> host_used(static_cast<std::size_t>(host_count), false);
  struct Live {
    std::int32_t id;
    std::int32_t src;
    double weight;
  };
  std::vector<Live> live;
  std::int32_t next_id = 0;
  TimeNs clock = 0;

  const auto join = [&](TimeNs at) {
    std::vector<std::int32_t> free;
    for (std::int32_t h = 0; h < host_count; ++h) {
      if (!host_used[static_cast<std::size_t>(h)]) free.push_back(h);
    }
    if (free.empty()) return;
    const std::int32_t src = free[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(free.size()) - 1))];
    std::int32_t dst = src;
    while (dst == src) {
      dst = static_cast<std::int32_t>(rng.uniform_int(0, host_count - 1));
    }
    host_used[static_cast<std::size_t>(src)] = true;
    ScheduleEvent ev;
    ev.at = at;
    ev.kind = EventKind::Join;
    ev.session = next_id++;
    ev.src_host = src;
    ev.dst_host = dst;
    ev.demand =
        rng.chance(0.5) ? rng.uniform_real(10.0, demand_hi) : kRateInfinity;
    if (rng.chance(0.3)) ev.weight = rng.uniform_real(0.5, 2.0);
    sc.events.push_back(ev);
    live.push_back({ev.session, src, ev.weight});
  };

  // Opening burst: all sessions join, about half on coincident instants
  // so same-window delivery races exist from the first transition.
  for (std::int32_t s = 0; s < p.sessions; ++s) {
    if (s > 0 && rng.chance(0.5)) clock += rng.uniform_int(1, microseconds(20));
    join(clock);
  }

  for (std::int32_t e = 0; e < p.extra_events; ++e) {
    if (rng.chance(0.5)) clock += rng.uniform_int(1, microseconds(50));
    const double dice = rng.uniform_real(0.0, 1.0);
    if (live.empty() || dice < 0.25) {
      join(clock);
    } else if (dice < 0.65) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      ScheduleEvent ev;
      ev.at = clock;
      ev.kind = EventKind::Leave;
      ev.session = live[k].id;
      sc.events.push_back(ev);
      host_used[static_cast<std::size_t>(live[k].src)] = false;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      ScheduleEvent ev;
      ev.at = clock;
      ev.kind = EventKind::Change;
      ev.session = live[k].id;
      ev.demand =
          rng.chance(0.3) ? kRateInfinity : rng.uniform_real(10.0, demand_hi);
      ev.weight = live[k].weight;
      sc.events.push_back(ev);
    }
  }
  return sc;
}

std::size_t normalize(Scenario& sc) {
  std::stable_sort(
      sc.events.begin(), sc.events.end(),
      [](const ScheduleEvent& a, const ScheduleEvent& b) { return a.at < b.at; });
  const std::int32_t host_count = build_network(sc.topo).host_count();

  std::vector<ScheduleEvent> kept;
  kept.reserve(sc.events.size());
  std::unordered_set<std::int32_t> ever_joined;
  std::unordered_map<std::int32_t, std::int32_t> live_src;  // session -> host
  std::vector<bool> host_used(static_cast<std::size_t>(host_count), false);
  for (const ScheduleEvent& ev : sc.events) {
    switch (ev.kind) {
      case EventKind::Join: {
        if (ev.at < 0 || ev.session < 0 || ev.src_host < 0 ||
            ev.src_host >= host_count || ev.dst_host < 0 ||
            ev.dst_host >= host_count || ev.src_host == ev.dst_host ||
            !(ev.demand > 0) || !(ev.weight > 0) ||
            !std::isfinite(ev.weight) || ever_joined.contains(ev.session) ||
            (!sc.shared_access &&
             host_used[static_cast<std::size_t>(ev.src_host)])) {
          continue;
        }
        ever_joined.insert(ev.session);
        live_src.emplace(ev.session, ev.src_host);
        host_used[static_cast<std::size_t>(ev.src_host)] = true;
        break;
      }
      case EventKind::Leave: {
        const auto it = live_src.find(ev.session);
        if (ev.at < 0 || it == live_src.end()) continue;
        // In shared mode several live sessions may use the host; only
        // the dedicated mode's one-per-host bookkeeping needs clearing.
        host_used[static_cast<std::size_t>(it->second)] = false;
        live_src.erase(it);
        break;
      }
      case EventKind::Change: {
        if (ev.at < 0 || !(ev.demand > 0) || !(ev.weight > 0) ||
            !std::isfinite(ev.weight) || !live_src.contains(ev.session)) {
          continue;
        }
        break;
      }
    }
    kept.push_back(ev);
  }
  const std::size_t dropped = sc.events.size() - kept.size();
  sc.events = std::move(kept);
  return dropped;
}

namespace {

std::string rate_str(Rate r) {
  if (std::isinf(r)) return "inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", r);
  return buf;
}

Rate rate_from(const std::string& s) {
  if (s == "inf") return kRateInfinity;
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    BNECK_EXPECT(used == s.size(), "malformed rate in scenario spec");
    return v;
  } catch (const InvariantError&) {
    throw;
  } catch (const std::exception&) {  // stod: invalid_argument/out_of_range
    fail_invariant("parseable rate", s.c_str(), __FILE__, __LINE__);
  }
}

std::int64_t int_from(const std::string& s) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(s, &used);
    BNECK_EXPECT(used == s.size(), "malformed integer in scenario spec");
    return v;
  } catch (const InvariantError&) {
    throw;
  } catch (const std::exception&) {  // stoll: invalid_argument/out_of_range
    fail_invariant("parseable integer", s.c_str(), __FILE__, __LINE__);
  }
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

std::string format_spec(const Scenario& sc) {
  std::ostringstream os;
  os << "v1 topo=" << topo_kind_name(sc.topo.kind) << " a=" << sc.topo.a
     << " b=" << sc.topo.b << " hpr=" << sc.topo.hpr
     << " hosts=" << sc.topo.hosts << " tseed=" << sc.topo.seed
     << " rcap=" << rate_str(sc.topo.router_capacity)
     << " acap=" << rate_str(sc.topo.access_capacity)
     << " wan=" << (sc.topo.wan ? 1 : 0) << " loss=" << rate_str(sc.loss_probability)
     << " seed=" << sc.seed;
  // Omitted when false so pre-shared-mode specs round-trip unchanged.
  if (sc.shared_access) os << " shared=1";
  os << " ev=";
  bool first = true;
  for (const ScheduleEvent& ev : sc.events) {
    if (!first) os << ';';
    first = false;
    switch (ev.kind) {
      case EventKind::Join:
        os << "j@" << ev.at << ":s" << ev.session << ":h" << ev.src_host
           << ">h" << ev.dst_host << ":d" << rate_str(ev.demand);
        if (ev.weight != 1.0) os << ":w" << rate_str(ev.weight);
        break;
      case EventKind::Leave:
        os << "l@" << ev.at << ":s" << ev.session;
        break;
      case EventKind::Change:
        os << "c@" << ev.at << ":s" << ev.session << ":d" << rate_str(ev.demand);
        if (ev.weight != 1.0) os << ":w" << rate_str(ev.weight);
        break;
    }
  }
  return os.str();
}

Scenario parse_spec(const std::string& spec) {
  std::istringstream is(spec);
  std::string token;
  is >> token;
  BNECK_EXPECT(token == "v1", "scenario spec must start with v1");
  Scenario sc;
  while (is >> token) {
    const auto eq = token.find('=');
    BNECK_EXPECT(eq != std::string::npos, "scenario spec token without '='");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "topo") {
      sc.topo.kind = topo_kind_from_name(value);
    } else if (key == "a") {
      sc.topo.a = static_cast<std::int32_t>(int_from(value));
    } else if (key == "b") {
      sc.topo.b = static_cast<std::int32_t>(int_from(value));
    } else if (key == "hpr") {
      sc.topo.hpr = static_cast<std::int32_t>(int_from(value));
    } else if (key == "hosts") {
      sc.topo.hosts = static_cast<std::int32_t>(int_from(value));
    } else if (key == "tseed") {
      sc.topo.seed = static_cast<std::uint64_t>(int_from(value));
    } else if (key == "rcap") {
      sc.topo.router_capacity = rate_from(value);
    } else if (key == "acap") {
      sc.topo.access_capacity = rate_from(value);
    } else if (key == "wan") {
      sc.topo.wan = int_from(value) != 0;
    } else if (key == "loss") {
      sc.loss_probability = rate_from(value);
    } else if (key == "seed") {
      sc.seed = static_cast<std::uint64_t>(int_from(value));
    } else if (key == "shared") {
      sc.shared_access = int_from(value) != 0;
    } else if (key == "ev") {
      for (const std::string& item : split(value, ';')) {
        BNECK_EXPECT(item.size() >= 3 && item[1] == '@',
                     "malformed event in scenario spec");
        const auto fields = split(item.substr(2), ':');
        BNECK_EXPECT(!fields.empty(), "malformed event in scenario spec");
        ScheduleEvent ev;
        ev.at = int_from(fields[0]);
        const auto session_field = [&fields](std::size_t i) {
          BNECK_EXPECT(fields.size() > i && fields[i].size() > 1 &&
                           fields[i][0] == 's',
                       "malformed session field in scenario spec");
          return static_cast<std::int32_t>(int_from(fields[i].substr(1)));
        };
        const auto demand_field = [&fields](std::size_t i) {
          BNECK_EXPECT(fields.size() > i && fields[i].size() > 1 &&
                           fields[i][0] == 'd',
                       "malformed demand field in scenario spec");
          return rate_from(fields[i].substr(1));
        };
        // Optional trailing weight field (absent in pre-weight specs and
        // whenever the weight is 1).
        const auto weight_field = [&fields](std::size_t i) {
          if (fields.size() <= i) return 1.0;
          BNECK_EXPECT(fields[i].size() > 1 && fields[i][0] == 'w',
                       "malformed weight field in scenario spec");
          return rate_from(fields[i].substr(1));
        };
        switch (item[0]) {
          case 'j': {
            BNECK_EXPECT(fields.size() == 4 || fields.size() == 5,
                         "join event needs 4 or 5 fields");
            ev.kind = EventKind::Join;
            ev.session = session_field(1);
            const auto hosts = split(fields[2], '>');
            BNECK_EXPECT(hosts.size() == 2 && hosts[0].size() > 1 &&
                             hosts[0][0] == 'h' && hosts[1].size() > 1 &&
                             hosts[1][0] == 'h',
                         "malformed host pair in scenario spec");
            ev.src_host = static_cast<std::int32_t>(int_from(hosts[0].substr(1)));
            ev.dst_host = static_cast<std::int32_t>(int_from(hosts[1].substr(1)));
            ev.demand = demand_field(3);
            ev.weight = weight_field(4);
            break;
          }
          case 'l':
            BNECK_EXPECT(fields.size() == 2, "leave event needs 2 fields");
            ev.kind = EventKind::Leave;
            ev.session = session_field(1);
            break;
          case 'c':
            BNECK_EXPECT(fields.size() == 3 || fields.size() == 4,
                         "change event needs 3 or 4 fields");
            ev.kind = EventKind::Change;
            ev.session = session_field(1);
            ev.demand = demand_field(2);
            ev.weight = weight_field(3);
            break;
          default:
            BNECK_EXPECT(false, "unknown event kind in scenario spec");
        }
        sc.events.push_back(ev);
      }
    } else {
      BNECK_EXPECT(false, "unknown key in scenario spec");
    }
  }
  return sc;
}

std::string cpp_snippet(const Scenario& sc, const std::string& test_name,
                        bool fault_single_kick) {
  std::ostringstream os;
  os << "// Auto-generated minimal reproducer (" << sc.events.size()
     << " events).\n"
     << "// Replay: bneck_check --replay \"" << format_spec(sc) << "\"\n"
     << "TEST(BneckCheckRepro, " << test_name << ") {\n"
     << "  using bneck::check::EventKind;\n"
     << "  bneck::check::Scenario sc;\n"
     << "  sc.topo.kind = bneck::check::TopoKind::";
  switch (sc.topo.kind) {
    case TopoKind::Line: os << "Line"; break;
    case TopoKind::Star: os << "Star"; break;
    case TopoKind::Dumbbell: os << "Dumbbell"; break;
    case TopoKind::ParkingLot: os << "ParkingLot"; break;
    case TopoKind::Tree: os << "Tree"; break;
    case TopoKind::Random: os << "Random"; break;
    case TopoKind::Backhaul: os << "Backhaul"; break;
  }
  os << ";\n"
     << "  sc.topo.a = " << sc.topo.a << ";\n"
     << "  sc.topo.b = " << sc.topo.b << ";\n"
     << "  sc.topo.hpr = " << sc.topo.hpr << ";\n"
     << "  sc.topo.hosts = " << sc.topo.hosts << ";\n"
     << "  sc.topo.seed = " << sc.topo.seed << "u;\n"
     << "  sc.topo.router_capacity = " << rate_str(sc.topo.router_capacity)
     << ";\n"
     << "  sc.topo.access_capacity = " << rate_str(sc.topo.access_capacity)
     << ";\n"
     << "  sc.topo.wan = " << (sc.topo.wan ? "true" : "false") << ";\n"
     << "  sc.loss_probability = " << rate_str(sc.loss_probability) << ";\n";
  if (sc.shared_access) os << "  sc.shared_access = true;\n";
  os << "  sc.events = {\n";
  for (const ScheduleEvent& ev : sc.events) {
    os << "      {" << ev.at << ", EventKind::";
    switch (ev.kind) {
      case EventKind::Join: os << "Join"; break;
      case EventKind::Leave: os << "Leave"; break;
      case EventKind::Change: os << "Change"; break;
    }
    os << ", " << ev.session << ", " << ev.src_host << ", " << ev.dst_host
       << ", ";
    if (std::isinf(ev.demand)) {
      os << "bneck::kRateInfinity";
    } else {
      os << rate_str(ev.demand);
    }
    os << ", " << rate_str(ev.weight) << "},\n";
  }
  os << "  };\n"
     << "  bneck::check::CheckOptions opt;\n";
  if (fault_single_kick) {
    os << "  opt.fault_single_kick = true;\n";
  }
  os << "  const auto r = bneck::check::run_scenario(sc, opt);\n"
     << "  EXPECT_TRUE(r.ok) << r.message;\n"
     << "}\n";
  return os.str();
}

}  // namespace bneck::check
