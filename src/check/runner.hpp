// Scenario execution and parallel seed campaigns.
//
// run_scenario drives one Scenario through a fresh Simulator +
// BneckProtocol with an InvariantChecker attached: API bursts are
// applied in timeline order, the event queue is stepped one event at a
// time (so the checker can audit mid-flight), and every time the queue
// drains the full quiescent-phase property set is validated.  A thrown
// InvariantError (from the protocol or the simulator's event budget) is
// converted into a failure, so a deadlocked or corrupted run reports
// instead of aborting the campaign.
//
// run_seed_range fans a block of seeds over the workload thread pool
// (workload/parallel.hpp): every seed builds its own network, simulator
// and RNG, so campaigns scale linearly and the set of failing seeds is
// independent of the worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "check/invariants.hpp"
#include "check/scenario.hpp"

namespace bneck::check {

/// Runs one scenario under the invariant checker.  The scenario is
/// normalized first; `result.seed` echoes sc.seed.
[[nodiscard]] CheckResult run_scenario(const Scenario& sc,
                                       const CheckOptions& opt);

/// Applies one schedule event to checker + protocol — the single
/// definition of "what a ScheduleEvent means", shared by run_scenario
/// and the model checker's world (src/mc/world.cpp) so the two drivers
/// cannot drift.  Joins resolve their path through `paths`.
void apply_schedule_event(const net::Network& net,
                          const net::PathFinder& paths,
                          InvariantChecker& chk, core::BneckProtocol& bneck,
                          const ScheduleEvent& ev);

/// generate_scenario(seed) + run_scenario.
[[nodiscard]] CheckResult run_seed(std::uint64_t seed,
                                   const CheckOptions& opt);

struct CampaignResult {
  std::uint64_t seeds_run = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t quiescent_phases = 0;
  /// Failing runs, in seed order (message of the first violation each).
  std::vector<CheckResult> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs seeds [first, last] on up to `threads` workers (0 = all cores).
CampaignResult run_seed_range(std::uint64_t first, std::uint64_t last,
                              std::size_t threads, const CheckOptions& opt);

}  // namespace bneck::check
