#include "check/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "base/expect.hpp"
#include "check/runner.hpp"

namespace bneck::check {

namespace {

class Shrinker {
 public:
  Shrinker(Scenario best, std::string failure, const ShrinkOptions& opt)
      : best_(std::move(best)), failure_(std::move(failure)), opt_(opt) {}

  void run() {
    bool progress = true;
    while (progress && !exhausted()) {
      progress = false;
      progress |= shrink_sessions();
      progress |= shrink_events();
      progress |= shrink_topology();
      progress |= shrink_time();
      progress |= shrink_demands();
      progress |= shrink_weights();
    }
  }

  [[nodiscard]] const Scenario& best() const { return best_; }
  [[nodiscard]] const std::string& failure() const { return failure_; }
  [[nodiscard]] std::size_t runs() const { return runs_; }

 private:
  [[nodiscard]] bool exhausted() const { return runs_ >= opt_.max_runs; }

  /// Re-runs a candidate; adopts it as the new best when it still fails.
  bool try_accept(Scenario cand) {
    if (exhausted()) return false;
    try {
      normalize(cand);
      if (cand.events.empty()) return false;
      ++runs_;
      const CheckResult r = run_scenario(cand, opt_.check);
      if (r.ok) return false;
      best_ = std::move(cand);
      failure_ = r.message;
      return true;
    } catch (const InvariantError&) {
      // Candidate describes an unbuildable topology/scenario; reject.
      return false;
    }
  }

  /// Pass 1: drop whole sessions (normalize removes the dangling
  /// leave/change events of a dropped join).
  bool shrink_sessions() {
    bool any = false;
    bool progress = true;
    while (progress && !exhausted()) {
      progress = false;
      std::set<std::int32_t> ids;
      for (const ScheduleEvent& ev : best_.events) ids.insert(ev.session);
      if (ids.size() <= 1) break;
      // Later sessions first: they are most often incidental.
      for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
        Scenario cand = best_;
        std::erase_if(cand.events, [&](const ScheduleEvent& ev) {
          return ev.session == *it;
        });
        if (try_accept(std::move(cand))) {
          progress = any = true;
          break;
        }
      }
    }
    return any;
  }

  /// Pass 2: ddmin over the event list.
  bool shrink_events() {
    bool any = false;
    std::size_t n = 2;
    while (best_.events.size() >= 2 && n <= best_.events.size() &&
           !exhausted()) {
      const std::size_t size = best_.events.size();
      const std::size_t chunk = (size + n - 1) / n;
      bool reduced = false;
      for (std::size_t start = 0; start < size && !exhausted();
           start += chunk) {
        Scenario cand = best_;
        const auto b = cand.events.begin();
        cand.events.erase(
            b + static_cast<std::ptrdiff_t>(start),
            b + static_cast<std::ptrdiff_t>(std::min(start + chunk, size)));
        if (try_accept(std::move(cand))) {
          reduced = any = true;
          break;
        }
      }
      if (reduced) {
        n = std::max<std::size_t>(2, n / 2);  // retry coarser on success
      } else if (chunk == 1) {
        break;  // finest granularity, nothing removable
      } else {
        n = std::min(n * 2, best_.events.size());
      }
    }
    return any;
  }

  /// Pass 3: shrink the topology knobs and the fault model one notch at
  /// a time (normalize drops events whose hosts vanish).
  bool shrink_topology() {
    bool any = false;
    bool progress = true;
    while (progress && !exhausted()) {
      progress = false;
      std::vector<Scenario> cands;
      const auto with = [this](auto&& mutate) {
        Scenario c = best_;
        mutate(c);
        return c;
      };
      if (best_.loss_probability > 0) {
        cands.push_back(with([](Scenario& c) { c.loss_probability = 0; }));
      }
      if (best_.shared_access) {
        // Mode -> default pass: most failures that reproduce in shared-
        // access mode also do in the paper's dedicated mode (normalize
        // then drops joins that would share a source).
        cands.push_back(with([](Scenario& c) { c.shared_access = false; }));
      }
      if (best_.topo.wan) {
        cands.push_back(with([](Scenario& c) { c.topo.wan = false; }));
      }
      if (best_.topo.hpr > 1) {
        cands.push_back(with([](Scenario& c) { --c.topo.hpr; }));
      }
      if (best_.topo.a > 1) {
        cands.push_back(with([](Scenario& c) { --c.topo.a; }));
      }
      if (best_.topo.b > 0) {
        cands.push_back(with([](Scenario& c) { --c.topo.b; }));
      }
      if (best_.topo.kind == TopoKind::Random && best_.topo.hosts > 2) {
        cands.push_back(with([](Scenario& c) { --c.topo.hosts; }));
      }
      for (Scenario& cand : cands) {
        if (try_accept(std::move(cand))) {
          progress = any = true;
          break;
        }
      }
    }
    return any;
  }

  /// Pass 4: collapse the timeline (single burst), else shrink gaps.
  bool shrink_time() {
    bool any = false;
    {
      Scenario cand = best_;
      for (ScheduleEvent& ev : cand.events) ev.at = 0;
      if (cand.events != best_.events && try_accept(std::move(cand))) {
        any = true;
      }
    }
    for (const TimeNs div : {TimeNs{1000}, TimeNs{16}, TimeNs{2}}) {
      if (exhausted()) break;
      Scenario cand = best_;
      for (ScheduleEvent& ev : cand.events) ev.at /= div;
      if (cand.events != best_.events && try_accept(std::move(cand))) {
        any = true;
      }
    }
    return any;
  }

  /// Pass 5: replace finite demands with "unlimited".
  bool shrink_demands() {
    bool any = false;
    for (std::size_t i = 0; i < best_.events.size() && !exhausted(); ++i) {
      if (std::isinf(best_.events[i].demand)) continue;
      Scenario cand = best_;
      cand.events[i].demand = kRateInfinity;
      if (try_accept(std::move(cand))) any = true;
    }
    return any;
  }

  /// Pass 6: replace non-unit weights with 1 — first all at once (a
  /// failure that survives is not weight-related at all), then one
  /// event at a time.
  bool shrink_weights() {
    bool any = false;
    {
      Scenario cand = best_;
      for (ScheduleEvent& ev : cand.events) ev.weight = 1.0;
      if (cand.events != best_.events && try_accept(std::move(cand))) {
        any = true;
      }
    }
    for (std::size_t i = 0; i < best_.events.size() && !exhausted(); ++i) {
      if (best_.events[i].weight == 1.0) continue;
      Scenario cand = best_;
      cand.events[i].weight = 1.0;
      if (try_accept(std::move(cand))) any = true;
    }
    return any;
  }

  Scenario best_;
  std::string failure_;
  ShrinkOptions opt_;
  std::size_t runs_ = 0;
};

}  // namespace

ShrinkResult shrink(const Scenario& failing, const ShrinkOptions& opt) {
  Scenario start = failing;
  normalize(start);

  ShrinkResult out;
  out.original_events = start.events.size();

  const CheckResult first = run_scenario(start, opt.check);
  BNECK_EXPECT(!first.ok, "shrink() requires a failing scenario");

  Shrinker sh(std::move(start), first.message, opt);
  sh.run();

  out.minimal = sh.best();
  out.failure = sh.failure();
  out.runs = sh.runs() + 1;
  out.minimal_events = out.minimal.events.size();
  return out;
}

}  // namespace bneck::check
