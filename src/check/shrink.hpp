// Delta-debugging shrinker for failing scenarios.
//
// Given a scenario whose run violates an invariant, shrink() searches
// for a minimal scenario that still fails, using the classic
// delta-debugging loop over progressively finer granularities plus
// domain-specific reduction passes:
//
//   1. whole sessions  — drop a session and (via normalize) every event
//                        that referenced it;
//   2. event chunks    — ddmin over the event list (halves, quarters, …,
//                        single events), each candidate re-normalized;
//   3. topology        — shrink the parameter knobs (size, hosts per
//                        router, WAN delays, loss) one notch at a time;
//   4. schedule time   — collapse the timeline into one burst, then
//                        shrink inter-event gaps;
//   5. demands         — replace finite demands with "unlimited";
//   6. weights         — replace non-unit max-min weights with 1 (all at
//                        once, then per event).
//
// The passes repeat in that order until a whole round makes no progress
// (or the run budget is exhausted), so later passes do re-enable earlier
// ones.
//
// Every candidate is a full deterministic re-run, so the result is an
// exact reproducer: the emitted spec replays with
// `bneck_check --replay "<spec>"` and the emitted C++ snippet compiles
// against check/runner.hpp as a standalone regression test.
#pragma once

#include <cstddef>
#include <string>

#include "check/invariants.hpp"
#include "check/scenario.hpp"

namespace bneck::check {

struct ShrinkOptions {
  /// Budget of candidate re-executions.
  std::size_t max_runs = 4000;
  /// Options for candidate runs (fault flags, bounds, event budget).
  CheckOptions check;
};

struct ShrinkResult {
  Scenario minimal;
  /// Violation message of the minimal reproducer.
  std::string failure;
  std::size_t runs = 0;             // candidate executions performed
  std::size_t original_events = 0;  // normalized event count before
  std::size_t minimal_events = 0;   // ... and after shrinking
};

/// Shrinks a failing scenario to a minimal failing one.  Precondition:
/// run_scenario(failing, opt.check) fails; throws InvariantError
/// otherwise (a shrink of a passing scenario is meaningless).
[[nodiscard]] ShrinkResult shrink(const Scenario& failing,
                                  const ShrinkOptions& opt);

}  // namespace bneck::check
