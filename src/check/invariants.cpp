#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/expect.hpp"
#include "core/maxmin.hpp"

namespace bneck::check {

InvariantChecker::InvariantChecker(const net::Network& net,
                                   const core::BneckConfig& cfg,
                                   const CheckOptions& opt)
    : net_(net), cfg_(cfg), opt_(opt) {}

void InvariantChecker::attach(core::BneckProtocol& bneck) {
  BNECK_EXPECT(bneck_ == nullptr, "checker already attached");
  bneck_ = &bneck;
}

void InvariantChecker::fail(TimeNs t, const std::string& what) {
  if (!violation_.empty()) return;
  std::ostringstream os;
  os << "t=" << format_time(t) << ": " << what;
  violation_ = os.str();
}

TimeNs InvariantChecker::tx_time(const net::Link& l) const {
  return cfg_.control_tx_time(l);
}

void InvariantChecker::on_join(SessionId s, const net::Path& path,
                               Rate demand, double weight) {
  SessionInfo info;
  info.path = path;
  info.demand = demand;
  info.weight = weight;
  info.active = true;
  for (const LinkId e : path.links) {
    info.min_capacity = std::min(info.min_capacity, net_.link(e).capacity);
  }
  const bool inserted = sessions_.emplace(s, std::move(info)).second;
  BNECK_EXPECT(inserted, "checker: duplicate join (unnormalized scenario?)");
  ++active_count_;
}

void InvariantChecker::on_leave(SessionId s) {
  const auto it = sessions_.find(s);
  BNECK_EXPECT(it != sessions_.end() && it->second.active,
               "checker: leave of inactive session (unnormalized scenario?)");
  it->second.active = false;
  --active_count_;
  draining_hops_ += it->second.path.links.size();
}

void InvariantChecker::on_change(SessionId s, Rate demand, double weight) {
  const auto it = sessions_.find(s);
  BNECK_EXPECT(it != sessions_.end() && it->second.active,
               "checker: change of inactive session (unnormalized scenario?)");
  it->second.demand = demand;
  it->second.weight = weight;
}

void InvariantChecker::on_burst(TimeNs t) {
  last_change_at_ = t;
  phase_dirty_ = true;
  phase_packet_budget_ = 0;
  phase_quiescence_bound_ = kTimeNever;
  if (cfg_.loss_probability > 0) return;  // bounds assume reliable wires

  // Structural inputs for the phase bounds: the number of bottleneck
  // levels the centralized solver predicts for the new session set, the
  // worst per-session round trip and the total hop count in play.
  std::vector<core::SessionSpec> specs;
  specs.reserve(active_count_);
  std::size_t hops = draining_hops_;
  TimeNs max_rtt = 0;
  TimeNs max_tx = 0;
  for (const auto& [s, info] : sessions_) {
    TimeNs rtt = 0;
    for (const LinkId e : info.path.links) {
      const net::Link& l = net_.link(e);
      rtt += l.prop_delay + tx_time(l);
      const net::Link& rev = net_.link(l.reverse);
      rtt += rev.prop_delay + tx_time(rev);
      max_tx = std::max({max_tx, tx_time(l), tx_time(rev)});
    }
    max_rtt = std::max(max_rtt, rtt);
    if (!info.active) continue;
    hops += info.path.links.size();
    specs.push_back(core::SessionSpec{s, info.path, info.demand, info.weight});
  }
  std::sort(specs.begin(), specs.end(),
            [](const core::SessionSpec& a, const core::SessionSpec& b) {
              return a.id < b.id;
            });
  std::size_t levels = 0;
  if (!specs.empty()) {
    auto rates = core::solve_waterfill(net_, specs).rates;
    std::sort(rates.begin(), rates.end());
    for (std::size_t i = 0; i < rates.size(); ++i) {
      if (i == 0 || !rate_eq(rates[i], rates[i - 1], kRateCheckEps)) ++levels;
    }
  }

  if (opt_.packet_slack > 0) {
    phase_packet_budget_ = static_cast<std::uint64_t>(
        opt_.packet_slack * static_cast<double>(levels + 2) *
        static_cast<double>(std::max<std::size_t>(hops, 8)));
  }
  if (opt_.quiescence_slack > 0) {
    const double span =
        opt_.quiescence_slack * static_cast<double>(levels + 2) *
        (static_cast<double>(max_rtt) +
         static_cast<double>(hops) * static_cast<double>(max_tx));
    phase_quiescence_bound_ =
        last_change_at_ + static_cast<TimeNs>(span) + microseconds(10);
  }
}

void InvariantChecker::on_packet_sent(TimeNs t, const core::Packet& p,
                                      LinkId /*physical_link*/) {
  if (!violation_.empty()) return;
  ++phase_packets_;
  const auto it = sessions_.find(p.session);
  if (it == sessions_.end()) {
    std::ostringstream os;
    os << "packet " << core::packet_type_name(p.type)
       << " for a session the schedule never joined (" << p.session << ")";
    fail(t, os.str());
    return;
  }
  if (phase_dirty_ && phase_packet_budget_ > 0 &&
      phase_packets_ > phase_packet_budget_) {
    std::ostringstream os;
    os << "control-packet budget exceeded: " << phase_packets_
       << " packets this phase (budget " << phase_packet_budget_
       << ") — in-flight updates are not bounded";
    fail(t, os.str());
    return;
  }
  if (phase_dirty_ && phase_quiescence_bound_ != kTimeNever &&
      t > phase_quiescence_bound_) {
    std::ostringstream os;
    os << "still transmitting at " << format_time(t)
       << ", past the quiescence bound " << format_time(phase_quiescence_bound_)
       << " (last change at " << format_time(last_change_at_) << ")";
    fail(t, os.str());
  }
}

void InvariantChecker::on_rate_notified(TimeNs t, SessionId s, Rate r) {
  if (!violation_.empty()) return;
  const auto it = sessions_.find(s);
  if (it == sessions_.end() || !it->second.active) {
    fail(t, "API.Rate for a session that is not active");
    return;
  }
  const SessionInfo& info = it->second;
  std::ostringstream os;
  if (std::isnan(r) || r < -kRateCheckEps) {
    os << "API.Rate(" << s << ", " << r << "): negative/NaN rate";
    fail(t, os.str());
  } else if (!rate_le(r, info.demand, kRateCheckEps)) {
    os << "API.Rate(" << s << ", " << format_rate(r)
       << ") exceeds the session's demand " << format_rate(info.demand);
    fail(t, os.str());
  } else if (!rate_le(r, info.min_capacity, kRateCheckEps)) {
    os << "API.Rate(" << s << ", " << format_rate(r)
       << ") exceeds the tightest link capacity on its path "
       << format_rate(info.min_capacity);
    fail(t, os.str());
  }
}

void InvariantChecker::on_step(TimeNs now) {
  if (!violation_.empty() || opt_.audit_stride == 0) return;
  if (++steps_since_audit_ < opt_.audit_stride) return;
  steps_since_audit_ = 0;
  audit_tables(now);
}

void InvariantChecker::audit_tables(TimeNs t, bool quiescent) {
  if (!violation_.empty()) return;
  BNECK_EXPECT(bneck_ != nullptr, "checker not attached");
  // The dense active-link index skips the (typically large) majority of
  // directed links that never instantiated a RouterLink.
  for (const LinkId e : bneck_->active_links()) {
    const core::RouterLink* rl = bneck_->router_link(e);
    BNECK_EXPECT(rl != nullptr, "active link without a RouterLink task");
    if (const std::string err = rl->table().audit(); !err.empty()) {
      std::ostringstream os;
      os << "link " << e << " table inconsistent with naive model: " << err;
      fail(t, os.str());
      return;
    }
    bool bad = false;
    std::ostringstream os;
    rl->table().for_each([&](SessionId s, bool in_r, core::Mu mu, Rate lam) {
      if (bad || !violation_.empty()) return;
      const auto it = sessions_.find(s);
      if (it == sessions_.end()) {
        os << "link " << e << " tracks session " << s
           << " the schedule never joined";
        bad = true;
        return;
      }
      if (quiescent && !it->second.active) {
        os << "departed session " << s << " still recorded at link " << e
           << " at quiescence";
        bad = true;
        return;
      }
      // Cross-validate the handle path (what the packet hot path uses)
      // against the id-keyed wrappers and the iterated record: all
      // three must tell the same story for every field.
      core::LinkSessionTable::SessionHandle h = rl->table().find(s);
      if (!h.valid()) {
        os << "link " << e << " iterates session " << s
           << " that find() cannot resolve to a handle";
        bad = true;
        return;
      }
      if (const std::string err = rl->table().audit_handle(h); !err.empty()) {
        os << "link " << e << ": " << err;
        bad = true;
        return;
      }
      if (rl->table().mu(h) != mu || rl->table().in_R(h) != in_r ||
          rl->table().lambda(h) != lam ||
          rl->table().mu(h) != rl->table().mu(s) ||
          rl->table().in_R(h) != rl->table().in_R(s) ||
          rl->table().lambda(h) != rl->table().lambda(s) ||
          rl->table().weight(h) != rl->table().weight(s) ||
          rl->table().hop(h) != rl->table().hop(s)) {
        os << "link " << e << " session " << s
           << ": handle-path reads disagree with the id-path reads";
        bad = true;
        return;
      }
      const std::int32_t hop = rl->table().hop(h);
      const auto& links = it->second.path.links;
      if (hop < 0 || hop >= static_cast<std::int32_t>(links.size()) ||
          links[static_cast<std::size_t>(hop)] != e) {
        os << "link " << e << " records hop " << hop << " for session " << s
           << ", which does not match the session's path";
        bad = true;
      }
    });
    if (bad) {
      fail(t, os.str());
      return;
    }
  }
}

void InvariantChecker::on_quiescent(TimeNs quiesced_at) {
  if (!violation_.empty()) return;
  BNECK_EXPECT(bneck_ != nullptr, "checker not attached");
  ++quiescent_phases_;

  // Quiescence-time bound (armed only on reliable loss-free wires).
  if (phase_dirty_ && phase_quiescence_bound_ != kTimeNever &&
      quiesced_at > phase_quiescence_bound_) {
    std::ostringstream os;
    os << "quiesced at " << format_time(quiesced_at)
       << ", past the structural bound "
       << format_time(phase_quiescence_bound_) << " (last change at "
       << format_time(last_change_at_) << ")";
    fail(quiesced_at, os.str());
    return;
  }

  // Full network stability (paper Definition 2).
  if (!bneck_->all_tasks_stable()) {
    fail(quiesced_at, "event queue drained but the network is not stable");
    return;
  }

  const auto specs = bneck_->active_specs();
  if (specs.size() != active_count_) {
    std::ostringstream os;
    os << "protocol reports " << specs.size() << " active sessions, schedule "
       << "has " << active_count_;
    fail(quiesced_at, os.str());
    return;
  }

  // Every active session has been notified; rates match the centralized
  // solver exactly (within the measurement tolerance).
  std::vector<Rate> notified;
  notified.reserve(specs.size());
  for (const auto& spec : specs) {
    const auto got = bneck_->notified_rate(spec.id);
    if (!got.has_value()) {
      std::ostringstream os;
      os << "session " << spec.id << " active at quiescence but never "
         << "received API.Rate";
      fail(quiesced_at, os.str());
      return;
    }
    notified.push_back(*got);
  }
  const auto sol = core::solve_waterfill(net_, specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const double tol = kRateCheckEps * std::max(1.0, sol.rates[i]);
    if (std::fabs(notified[i] - sol.rates[i]) > tol) {
      std::ostringstream os;
      os << "session " << specs[i].id << " notified "
         << format_rate(notified[i]) << " but the max-min allocation is "
         << format_rate(sol.rates[i]);
      fail(quiesced_at, os.str());
      return;
    }
  }

  // Feasibility and per-session restriction of the notified vector.
  if (const std::string err =
          core::check_maxmin_invariants(net_, specs, notified);
      !err.empty()) {
    fail(quiesced_at, "max-min invariants violated: " + err);
    return;
  }

  // Per-link recorded state agrees with the allocation: every active
  // session is present at every router hop of its path with its recorded
  // rate (weight x recorded level) equal to its allocated rate and with
  // the weight the schedule last announced.  Hop 0 is the dedicated
  // access link managed by the SourceNode itself (paper Figure 3) except
  // in shared-access mode, where it runs a regular RouterLink too.
  const std::size_t first_router_hop = cfg_.shared_access_links ? 0 : 1;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& links = specs[i].path.links;
    for (std::size_t h = first_router_hop; h < links.size(); ++h) {
      const core::RouterLink* rl = bneck_->router_link(links[h]);
      if (rl == nullptr || !rl->table().contains(specs[i].id)) {
        std::ostringstream os;
        os << "session " << specs[i].id << " missing from link " << links[h]
           << " (hop " << h << ") at quiescence";
        fail(quiesced_at, os.str());
        return;
      }
      const double weight = rl->table().weight(specs[i].id);
      if (weight != specs[i].weight) {
        std::ostringstream os;
        os << "link " << links[h] << " records weight " << weight
           << " for session " << specs[i].id << ", schedule announced "
           << specs[i].weight;
        fail(quiesced_at, os.str());
        return;
      }
      const Rate rate = rl->table().rate_of(specs[i].id);
      if (std::fabs(rate - notified[i]) >
          kRateCheckEps * std::max(1.0, notified[i])) {
        std::ostringstream os;
        os << "link " << links[h] << " records w·λ=" << format_rate(rate)
           << " for session " << specs[i].id << ", allocated "
           << format_rate(notified[i]);
        fail(quiesced_at, os.str());
        return;
      }
    }
  }

  audit_tables(quiesced_at, /*quiescent=*/true);

  // Reset the phase window.
  phase_packets_ = 0;
  draining_hops_ = 0;
  phase_dirty_ = false;
}

}  // namespace bneck::check
