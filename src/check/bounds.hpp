// The calibrated slack multipliers of the invariant checker's structural
// bounds — named in ONE place.
//
// The checker derives two structural per-phase bounds from the timing
// model (invariants.cpp, on_burst):
//
//   packet budget      <= packet_slack * (levels + 2) * max(hops, 8)
//   quiescence bound   <= last_change + quiescence_slack * (levels + 2)
//                         * (max_rtt + hops * max_tx) + 10us
//
// The multipliers below were *calibrated* against fuzz campaigns, not
// derived: they are loose enough that no correct run has ever tripped
// them, tight enough that runaway Update storms and non-quiescing
// mutants trip them quickly.  Everything that mentions the calibration —
// the CheckOptions defaults, the stress/fuzz tests, and the model
// checker's comparison of exact enumerated maxima against the
// calibrated envelope (tests/mc_test.cpp) — references these constants,
// so a recalibration happens in a single edit.
//
// On small instances the calibration is now *checked*: the explicit-
// state model checker (src/mc/) enumerates every delivery schedule and
// reports the exact maxima, which the mc tests pin as regression values
// and verify sit inside this calibrated envelope (docs/model_checking.md
// documents the derivation).
#pragma once

namespace bneck::check {

/// Multiplier on the structural quiescence-time bound (CheckOptions
/// default; <= 0 disables the check).
inline constexpr double kQuiescenceSlack = 32.0;

/// Multiplier on the per-phase control-packet budget (CheckOptions
/// default; <= 0 disables the check).
inline constexpr double kPacketSlack = 64.0;

}  // namespace bneck::check
