#include "check/compliance.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/maxmin.hpp"
#include "core/session.hpp"
#include "net/routing.hpp"
#include "transport/client.hpp"
#include "transport/daemon.hpp"

namespace bneck::check {
namespace {

using transport::Daemon;
using transport::Endpoint;
using transport::SourceClient;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string fmt(const char* f, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, f, args...);
  return buf;
}

/// Applies the scenario timeline through a fresh SourceClient, waits
/// for convergence, compares rates against the solver, and always asks
/// the daemon to shut down before returning.  Empty string on success.
std::string run_client(const net::Network& net, const Scenario& sc,
                       Endpoint daemon_ep, const ComplianceOptions& opt,
                       std::optional<transport::FaultConfig> faults,
                       ComplianceResult& res) {
  SourceClient client(net, daemon_ep);
  std::optional<transport::FaultInjector> injector;
  if (faults && faults->any()) {
    injector.emplace(*faults);
    client.transport().set_fault_injector(&*injector);
  }
  const net::PathFinder pf(net);
  // Scenario-local session id -> the solver-facing spec of the live
  // session (demand/weight tracked through Change events).
  std::map<std::int32_t, core::SessionSpec> live;
  std::string failure;

  for (const ScheduleEvent& ev : sc.events) {
    const SessionId sid{ev.session};
    switch (ev.kind) {
      case EventKind::Join: {
        const NodeId src = net.hosts()[static_cast<std::size_t>(ev.src_host)];
        const NodeId dst = net.hosts()[static_cast<std::size_t>(ev.dst_host)];
        auto path = pf.shortest_path(src, dst);
        if (!path) {
          failure = fmt("no route for session %d", ev.session);
          break;
        }
        core::SessionSpec spec;
        spec.id = sid;
        spec.path = *path;
        spec.demand = ev.demand;
        spec.weight = ev.weight;
        client.join(sid, spec.path, ev.demand, ev.weight);
        live.emplace(ev.session, std::move(spec));
        break;
      }
      case EventKind::Change: {
        client.change(sid, ev.demand, ev.weight);
        core::SessionSpec& spec = live.at(ev.session);
        spec.demand = ev.demand;
        spec.weight = ev.weight;
        break;
      }
      case EventKind::Leave:
        client.leave(sid);
        live.erase(ev.session);
        break;
    }
    if (!failure.empty()) break;
    client.poll(0);  // keep the pipe drained between API bursts
  }

  // Converge: the client's sources must be stable with certified rates,
  // and the daemon's router plane must report stable twice in a row
  // with no frames accepted in between (nothing in flight either way).
  if (failure.empty()) {
    const std::int64_t deadline = now_ms() + opt.timeout_ms;
    std::int64_t last_progress = now_ms();
    std::uint64_t last_rx = client.packets_received();
    std::uint64_t last_seen = ~std::uint64_t{0};
    int stable_polls = 0;
    bool converged = false;
    while (now_ms() < deadline) {
      client.poll(1);
      if (client.failed()) {
        failure = client.failure();
        break;
      }
      if (client.packets_received() != last_rx) {
        last_rx = client.packets_received();
        last_progress = now_ms();
      }
      if (!client.sources_stable()) {
        stable_polls = 0;
        // Stall: a dropped datagram wedged a probe cycle.  Restart it.
        if (now_ms() - last_progress > 250 && res.nudges < opt.max_nudges) {
          client.nudge();
          ++res.nudges;
          last_progress = now_ms();
        }
        continue;
      }
      const auto st = client.query_status(100);
      if (!st) continue;
      if (st->stable && st->active_sessions == client.live_sessions() &&
          st->packets_seen == last_seen) {
        if (++stable_polls >= 2) {
          converged = true;
          break;
        }
      } else {
        stable_polls = 0;
        last_seen = st->packets_seen;
      }
    }
    if (!converged && failure.empty()) {
      failure = fmt("no convergence within %d ms (%u live sessions)",
                    opt.timeout_ms, client.live_sessions());
    }
  }

  if (failure.empty() && !live.empty()) {
    std::vector<core::SessionSpec> specs;
    specs.reserve(live.size());
    for (const auto& [id, spec] : live) specs.push_back(spec);
    const core::MaxMinSolution sol = core::solve_reference(net, specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const Rate got = client.rate_of(specs[i].id);
      const Rate want = sol.rates[i];
      const double tol = kRateCheckEps * std::max(1.0, want);
      if (std::isnan(got) || std::abs(got - want) > tol) {
        failure = fmt("session %d converged to %.9g, solver says %.9g",
                      specs[i].id.value(), got, want);
        break;
      }
    }
    res.sessions_checked = static_cast<std::uint32_t>(specs.size());
  }

  if (injector) {
    // Teardown is not part of the experiment: release everything held
    // and stop faulting so the Shutdown frame actually lands.
    injector->disarm();
    res.client_faults = injector->counters();
  }
  client.poll(0);  // flush frames the disarmed injector released
  client.shutdown_daemon();
  res.wire_frames =
      client.transport().datagrams_sent() + client.transport().datagrams_received();
  res.retransmissions = client.transport().retransmissions();
  return failure;
}

/// Bounded reap of the daemon child: it must exit 0 on its own once the
/// Shutdown frame lands.
std::string reap_daemon(pid_t pid) {
  int status = 0;
  for (int i = 0; i < 400; ++i) {
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return {};
      return fmt("daemon exited abnormally (status 0x%x)", status);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, &status, 0);
  return "daemon did not exit on Shutdown";
}

void append_failure(std::string& failure, std::string more) {
  if (more.empty()) return;
  if (!failure.empty()) failure += "; ";
  failure += more;
}

}  // namespace

ComplianceResult run_compliance_scenario(const Scenario& sc_in,
                                         const ComplianceOptions& opt) {
  ComplianceResult res;
  res.seed = sc_in.seed;
  // Force the scenario into the deployment envelope: dedicated access
  // (the daemon hosts no source tasks) over a lossless loopback wire.
  Scenario sc = sc_in;
  sc.shared_access = false;
  sc.loss_probability = 0.0;
  normalize(sc);

  // Both sides fault on their own deterministic schedules, derived
  // from the scenario seed when the config leaves seed = 0.
  std::optional<transport::FaultConfig> client_faults;
  std::optional<transport::FaultConfig> daemon_faults;
  if (opt.faults && opt.faults->any()) {
    client_faults = *opt.faults;
    daemon_faults = *opt.faults;
    if (opt.faults->seed == 0) {
      client_faults->seed = sc.seed * 0x9e3779b97f4a7c15ull + 1;
      daemon_faults->seed = sc.seed * 0x9e3779b97f4a7c15ull + 2;
    } else {
      daemon_faults->seed = opt.faults->seed + 1;
    }
  }

  std::string failure;
  try {
    const net::Network net = build_network(sc.topo);
    transport::DaemonOptions dopt;
    dopt.faults = daemon_faults;
    auto daemon = std::make_unique<Daemon>(net, dopt);
    const Endpoint ep = daemon->endpoint();

    if (opt.threaded) {
      std::thread server([&daemon] { daemon->serve(); });
      failure = run_client(net, sc, ep, opt, client_faults, res);
      daemon->request_stop();  // backstop if the Shutdown frame was lost
      server.join();
    } else {
      const pid_t pid = ::fork();
      if (pid < 0) {
        failure = "fork failed";
      } else if (pid == 0) {
        // Daemon child: serve until Shutdown, report violations via the
        // exit code (a throwing serve loop would mean a protocol bug
        // escaped the no-abort ingress).
        int code = 0;
        try {
          daemon->serve();
        } catch (...) {
          code = 2;
        }
        ::_exit(code);
      } else {
        daemon.reset();  // close the parent's copy of the daemon socket
        failure = run_client(net, sc, ep, opt, client_faults, res);
        append_failure(failure, reap_daemon(pid));
      }
    }
  } catch (const std::exception& e) {
    append_failure(failure, e.what());
  }

  res.ok = failure.empty();
  res.failure = std::move(failure);
  return res;
}

ComplianceResult run_compliance_seed(std::uint64_t seed,
                                     const ComplianceOptions& opt) {
  return run_compliance_scenario(generate_scenario(seed), opt);
}

}  // namespace bneck::check
