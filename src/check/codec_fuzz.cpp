#include "check/codec_fuzz.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

#include "base/rng.hpp"
#include "core/packet.hpp"
#include "wire/codec.hpp"

namespace bneck::check {
namespace {

using core::Packet;
using core::PacketType;
using core::ResponseTag;

std::string fmt(const char* f, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, f, args...);
  return buf;
}

Packet random_packet(Rng& rng) {
  Packet p;
  p.type = static_cast<PacketType>(
      rng.uniform_int(0, core::kPacketTypeCount - 1));
  p.tag = static_cast<ResponseTag>(rng.uniform_int(0, 2));
  p.beta = rng.chance(0.5);
  p.session = SessionId{
      static_cast<std::int32_t>(rng.uniform_int(0, 1 << 30))};
  p.eta = LinkId{static_cast<std::int32_t>(rng.uniform_int(-1, 1'000'000))};
  p.hop = static_cast<std::int32_t>(rng.uniform_int(-1, wire::kMaxHop));
  p.lambda = rng.chance(0.05) ? kRateInfinity : rng.uniform_real(0.0, 1e9);
  p.weight = rng.uniform_real(1e-2, 1e2);
  return p;
}

std::vector<LinkId> random_path(Rng& rng) {
  std::vector<LinkId> path(
      static_cast<std::size_t>(rng.uniform_int(2, 8)));
  for (LinkId& e : path) {
    e = LinkId{static_cast<std::int32_t>(rng.uniform_int(0, 9999))};
  }
  return path;
}

bool same_packet(const Packet& a, const Packet& b) {
  return a.type == b.type && a.tag == b.tag && a.beta == b.beta &&
         a.session == b.session && a.eta == b.eta && a.hop == b.hop &&
         a.lambda == b.lambda && a.weight == b.weight;
}

/// Re-encodes a decoded frame; canonical encoding means the bytes must
/// reproduce whatever decoded to it.
void reencode(const wire::Frame& f, std::vector<std::uint8_t>& out) {
  out.clear();
  switch (f.kind) {
    case wire::FrameKind::Packet:
      wire::encode_packet(f.packet, f.path, out);
      return;
    case wire::FrameKind::StatusRequest:
      wire::encode_status_request(out);
      return;
    case wire::FrameKind::StatusReply:
      wire::encode_status_reply(f.status, out);
      return;
    case wire::FrameKind::Shutdown:
      wire::encode_shutdown(out);
      return;
    case wire::FrameKind::Data: {
      std::vector<std::uint8_t> inner;
      wire::encode_packet(f.packet, f.path, inner);
      wire::encode_data(f.seq, inner, out);
      return;
    }
    case wire::FrameKind::Ack:
      wire::encode_ack(f.seq, out);
      return;
    case wire::FrameKind::Heartbeat:
      wire::encode_heartbeat(f.heartbeat_sessions, out);
      return;
  }
}

std::uint64_t random_u64(Rng& rng) {
  return static_cast<std::uint64_t>(rng.uniform_int(0, 0xffffffff)) << 32 |
         static_cast<std::uint64_t>(rng.uniform_int(0, 0xffffffff));
}

}  // namespace

CodecFuzzResult run_codec_seed(std::uint64_t seed) {
  CodecFuzzResult res;
  res.seed = seed;
  Rng rng(seed);
  std::vector<std::uint8_t> buf, rebuf;
  std::vector<std::vector<std::uint8_t>> corpus;

  try {
    // Round-trips: well-formed frames of every kind.
    for (int i = 0; i < 64 && res.ok(); ++i) {
      buf.clear();
      Packet p = random_packet(rng);
      std::vector<LinkId> path;
      if (p.type == PacketType::Join) {
        path = random_path(rng);
        p.hop = 1;  // the only hop a Join enters a daemon at
      }
      // Half the packets ride the reliability sublayer: wrapped in a
      // sequenced Data frame, as every reliable peer sends them.
      const bool wrapped = rng.chance(0.5);
      const std::uint64_t seq = random_u64(rng);
      if (wrapped) {
        std::vector<std::uint8_t> inner;
        wire::encode_packet(p, path, inner);
        wire::encode_data(seq, inner, buf);
      } else {
        wire::encode_packet(p, path, buf);
      }
      const wire::DecodeResult r = wire::decode(buf);
      ++res.frames;
      if (!r.ok()) {
        res.failure = fmt("frame %d: valid %s rejected: %s", i,
                          core::packet_type_name(p.type), r.error);
        break;
      }
      if (!same_packet(r.frame.packet, p) || r.frame.path != path) {
        res.failure =
            fmt("frame %d: %s did not round-trip", i,
                core::packet_type_name(p.type));
        break;
      }
      if (wrapped &&
          (r.frame.kind != wire::FrameKind::Data || r.frame.seq != seq)) {
        res.failure = fmt("frame %d: data wrapper did not round-trip", i);
        break;
      }
      reencode(r.frame, rebuf);
      if (rebuf != buf) {
        res.failure = fmt("frame %d: re-encode diverged", i);
        break;
      }
      corpus.push_back(buf);
    }
    if (res.ok()) {
      for (int i = 0; i < 5; ++i) {
        buf.clear();
        if (i == 0) {
          wire::encode_status_request(buf);
        } else if (i == 1) {
          wire::StatusReply s;
          s.stable = rng.chance(0.5);
          s.active_sessions =
              static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
          s.packets_seen = static_cast<std::uint64_t>(
              rng.uniform_int(0, std::int64_t{1} << 40));
          s.retransmissions = static_cast<std::uint64_t>(
              rng.uniform_int(0, std::int64_t{1} << 40));
          s.expired_sessions =
              static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
          for (std::uint32_t& c : s.rejects) {
            c = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
          }
          wire::encode_status_reply(s, buf);
        } else if (i == 2) {
          wire::encode_shutdown(buf);
        } else if (i == 3) {
          wire::encode_ack(random_u64(rng), buf);
        } else {
          wire::encode_heartbeat(
              static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20)), buf);
        }
        const wire::DecodeResult r = wire::decode(buf);
        ++res.frames;
        if (!r.ok()) {
          res.failure = fmt("control frame %d rejected: %s", i, r.error);
          break;
        }
        reencode(r.frame, rebuf);
        if (rebuf != buf) {
          res.failure = fmt("control frame %d: re-encode diverged", i);
          break;
        }
        corpus.push_back(buf);
      }
    }

    // Mutations of valid frames: truncate, extend, flip.  Every outcome
    // must be an explicit rejection or a frame that round-trips itself.
    for (int i = 0; i < 256 && res.ok(); ++i) {
      buf = corpus[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corpus.size()) - 1))];
      const int op = static_cast<int>(rng.uniform_int(0, 2));
      if (op == 0 && !buf.empty()) {
        buf.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1)));
      } else if (op == 1) {
        const auto extra = rng.uniform_int(1, 8);
        for (std::int64_t k = 0; k < extra; ++k) {
          buf.push_back(
              static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
        }
      } else if (!buf.empty()) {
        const auto flips = rng.uniform_int(1, 4);
        for (std::int64_t k = 0; k < flips; ++k) {
          buf[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(buf.size()) - 1))] ^=
              static_cast<std::uint8_t>(rng.uniform_int(1, 255));
        }
      }
      const wire::DecodeResult r = wire::decode(buf);
      ++res.mutations;
      if (!r.ok()) {
        ++res.rejected;
        continue;
      }
      reencode(r.frame, rebuf);
      const wire::DecodeResult r2 = wire::decode(rebuf);
      if (!r2.ok()) {
        res.failure = fmt("mutation %d: accepted frame failed to re-decode: %s",
                          i, r2.error);
      }
    }

    // Garbage: the decoder must survive arbitrary bytes.
    for (int i = 0; i < 128 && res.ok(); ++i) {
      buf.resize(static_cast<std::size_t>(rng.uniform_int(0, 100)));
      for (std::uint8_t& b : buf) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      const wire::DecodeResult r = wire::decode(buf);
      ++res.mutations;
      if (!r.ok()) ++res.rejected;
    }
  } catch (const std::exception& e) {
    res.failure = fmt("decode threw: %s", e.what());
  }
  return res;
}

}  // namespace bneck::check
