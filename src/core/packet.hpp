// B-Neck protocol packets (paper §III-B).
//
//   Join(s, λ, η, w)        downstream   session arrival + first probe
//   Probe(s, λ, η, w)       downstream   rate recomputation cycle
//   Response(s, τ, λ, η)    upstream     closes a probe cycle
//   Update(s)               upstream     a new probe cycle is required
//   Bottleneck(s)           upstream     current rate is the max-min rate
//   SetBottleneck(s, β)     downstream   freeze the rate along the path
//   Leave(s)                downstream   session departure
//
// λ is the estimated bottleneck *level* — the weight-normalized rate
// λ_s/w_s; a session's actual rate is always w_s times the λ carried on
// its packets, and with unit weights (the paper's protocol) level and
// rate coincide.  η is the link imposing the strongest restriction so
// far, τ the action the source must take next, β whether some link on
// the path confirmed itself as the bottleneck, and w the session's
// max-min weight (weighted extension; Join teaches it to every link on
// the path, Probe re-announces it so API.Change can retune it).
//
// Packets additionally carry `hop`, the index into the session's path of
// the link whose task processes the packet next (0 = source node,
// path-length = destination node); see docs/protocol.md.
#pragma once

#include <cstdint>

#include "base/ids.hpp"
#include "base/rate.hpp"

namespace bneck::core {

enum class PacketType : std::uint8_t {
  Join,
  Probe,
  Response,
  Update,
  Bottleneck,
  SetBottleneck,
  Leave,
};

constexpr int kPacketTypeCount = 7;

/// τ of a Response packet.
enum class ResponseTag : std::uint8_t { Response, Update, Bottleneck };

// Field order packs the struct into 32 bytes (the two 8-byte doubles
// first, then the 32-bit ids, then the flag bytes) so a packet fits a
// typed simulator event's inline buffer (sim/event.hpp) alongside the
// ARQ framing — every wire crossing is one allocation-free event.
struct Packet {
  Rate lambda = 0;                          // Join / Probe / Response (level)
  double weight = 1.0;                      // Join / Probe
  SessionId session;
  LinkId eta;                               // Join / Probe / Response
  std::int32_t hop = 0;                     // next processing hop
  PacketType type = PacketType::Join;
  ResponseTag tag = ResponseTag::Response;  // Response only
  bool beta = false;                        // SetBottleneck only
};
static_assert(sizeof(Packet) == 32, "keep Packet one inline event payload");

/// True for packet types that travel from source towards destination.
constexpr bool is_downstream(PacketType t) {
  return t == PacketType::Join || t == PacketType::Probe ||
         t == PacketType::SetBottleneck || t == PacketType::Leave;
}

constexpr const char* packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::Join: return "Join";
    case PacketType::Probe: return "Probe";
    case PacketType::Response: return "Response";
    case PacketType::Update: return "Update";
    case PacketType::Bottleneck: return "Bottleneck";
    case PacketType::SetBottleneck: return "SetBottleneck";
    case PacketType::Leave: return "Leave";
  }
  return "?";
}

}  // namespace bneck::core
