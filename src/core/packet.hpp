// B-Neck protocol packets (paper §III-B).
//
//   Join(s, λ, η)           downstream   session arrival + first probe
//   Probe(s, λ, η)          downstream   rate recomputation cycle
//   Response(s, τ, λ, η)    upstream     closes a probe cycle
//   Update(s)               upstream     a new probe cycle is required
//   Bottleneck(s)           upstream     current rate is the max-min rate
//   SetBottleneck(s, β)     downstream   freeze the rate along the path
//   Leave(s)                downstream   session departure
//
// λ is the estimated bottleneck rate, η the link imposing the strongest
// restriction so far, τ the action the source must take next, and β
// whether some link on the path confirmed itself as the bottleneck.
//
// Packets additionally carry `hop`, the index into the session's path of
// the link whose task processes the packet next (0 = source node,
// path-length = destination node); see DESIGN.md §3 "Packet routing".
#pragma once

#include <cstdint>

#include "base/ids.hpp"
#include "base/rate.hpp"

namespace bneck::core {

enum class PacketType : std::uint8_t {
  Join,
  Probe,
  Response,
  Update,
  Bottleneck,
  SetBottleneck,
  Leave,
};

constexpr int kPacketTypeCount = 7;

/// τ of a Response packet.
enum class ResponseTag : std::uint8_t { Response, Update, Bottleneck };

// Field order packs the struct into 24 bytes (8-byte rate first, then
// the 32-bit ids, then the flag bytes) so a packet fits a typed
// simulator event's inline buffer (sim/event.hpp) alongside the ARQ
// framing — every wire crossing is one allocation-free event.
struct Packet {
  Rate lambda = 0;                          // Join / Probe / Response
  SessionId session;
  LinkId eta;                               // Join / Probe / Response
  std::int32_t hop = 0;                     // next processing hop
  PacketType type = PacketType::Join;
  ResponseTag tag = ResponseTag::Response;  // Response only
  bool beta = false;                        // SetBottleneck only
};
static_assert(sizeof(Packet) == 24, "keep Packet one inline event payload");

/// True for packet types that travel from source towards destination.
constexpr bool is_downstream(PacketType t) {
  return t == PacketType::Join || t == PacketType::Probe ||
         t == PacketType::SetBottleneck || t == PacketType::Leave;
}

constexpr const char* packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::Join: return "Join";
    case PacketType::Probe: return "Probe";
    case PacketType::Response: return "Response";
    case PacketType::Update: return "Update";
    case PacketType::Bottleneck: return "Bottleneck";
    case PacketType::SetBottleneck: return "SetBottleneck";
    case PacketType::Leave: return "Leave";
  }
  return "?";
}

}  // namespace bneck::core
