// Centralized max-min fair solvers.
//
// Two independent implementations of the max-min fair allocation:
//
//  * solve_reference — a literal transcription of the paper's Figure 1
//    ("Centralized B-Neck"), iterating global bottleneck discovery in
//    increasing rate order.  O(iterations x (links + path lengths)).
//
//  * solve_waterfill — priority-queue water-filling exploiting that link
//    fill levels only rise as sessions freeze; O((S·hops + E) log E).
//
// Both support per-session maximum-rate requests by modelling each finite
// demand as a virtual single-session link (exactly the paper's
// Ds = min(Ce, rs) transformation, §II).  They are cross-validated in the
// test suite and the distributed protocol is validated against them.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "core/session.hpp"
#include "net/network.hpp"

namespace bneck::core {

/// Post-hoc per-link annotation of a max-min solution.
struct LinkInfo {
  Rate capacity = 0;
  Rate assigned = 0;        // sum of rates of sessions crossing the link
  // Max weight-normalized level λ/w on the link (B*e when saturated); with
  // unit weights this is the max session rate.
  Rate bottleneck_rate = 0;
  std::int32_t sessions = 0;
  std::int32_t restricted = 0;  // |R*e|: sessions for which this link is a bottleneck
  bool saturated = false;       // assigned ≈ capacity
};

struct MaxMinSolution {
  /// Rates parallel to the input session span.
  std::vector<Rate> rates;

  /// Info for every link crossed by at least one session.
  std::unordered_map<LinkId, LinkInfo> links;

  [[nodiscard]] Rate rate_of(std::size_t session_index) const {
    return rates[session_index];
  }
};

/// Literal Figure-1 algorithm.
MaxMinSolution solve_reference(const net::Network& net,
                               std::span<const SessionSpec> sessions);

/// Fast water-filling.
MaxMinSolution solve_waterfill(const net::Network& net,
                               std::span<const SessionSpec> sessions);

/// Recomputes LinkInfo from an arbitrary rate vector (used by both
/// solvers and by validation of the distributed protocol).  Saturation
/// and restriction use tolerant rate comparison.
std::unordered_map<LinkId, LinkInfo> annotate_links(
    const net::Network& net, std::span<const SessionSpec> sessions,
    std::span<const Rate> rates);

/// Validates the max-min invariants of a rate vector:
///  (1) feasibility: every link's assigned sum <= capacity (+eps),
///  (2) demand ceiling: rate_s <= demand_s,
///  (3) every session is restricted: it either hits its demand or has a
///      saturated link on its path where its rate is maximal.
/// Returns an empty string when valid, else a description of the first
/// violation.
std::string check_maxmin_invariants(const net::Network& net,
                                    std::span<const SessionSpec> sessions,
                                    std::span<const Rate> rates);

}  // namespace bneck::core
