#include "core/bneck.hpp"

#include <algorithm>
#include <cmath>

namespace bneck::core {

BneckProtocol::BneckProtocol(sim::Simulator& simulator,
                             const net::Network& network, BneckConfig config,
                             TraceSink* trace)
    : net_(network),
      cfg_(config),
      trace_(trace),
      owned_transport_(std::make_unique<transport::SimTransport>(
          simulator, network, config.wire())),
      transport_(owned_transport_.get()),
      link_slot_(static_cast<std::size_t>(network.link_count()), -1),
      sources_in_use_(static_cast<std::size_t>(network.node_count()), 0) {
  transport_->bind(*this);
}

BneckProtocol::BneckProtocol(transport::LinkTransport& transport,
                             const net::Network& network, BneckConfig config,
                             TraceSink* trace)
    : net_(network),
      cfg_(config),
      trace_(trace),
      transport_(&transport),
      link_slot_(static_cast<std::size_t>(network.link_count()), -1),
      sources_in_use_(static_cast<std::size_t>(network.node_count()), 0) {
  transport_->bind(*this);
}

std::int32_t BneckProtocol::register_session(SessionId s) {
  BNECK_EXPECT(s.valid(), "invalid session id");
  BNECK_EXPECT(slot_of(s) < 0, "session ids are single-use (no re-join)");
  const auto slot = static_cast<std::int32_t>(sessions_.size());
  const auto v = static_cast<std::uint32_t>(s.value());
  if (v < kDenseIdLimit) {
    if (v >= id_to_slot_.size()) id_to_slot_.resize(v + 1, -1);
    id_to_slot_[v] = slot;
  } else {
    sparse_ids_.try_emplace(s, slot);
  }
  sessions_.emplace_back();
  sessions_.back().id = s;
  return slot;
}

BneckProtocol::SessionRt& BneckProtocol::runtime(SessionId s) {
  const std::int32_t slot = slot_of(s);
  BNECK_EXPECT(slot >= 0, "unknown session");
  return sessions_[static_cast<std::size_t>(slot)];
}

RouterLink& BneckProtocol::router_link_at(LinkId e) {
  std::int32_t& slot = link_slot_[static_cast<std::size_t>(e.value())];
  if (slot < 0) {
    slot = static_cast<std::int32_t>(link_arena_.size());
    link_arena_.emplace_back(e, net_.link(e).capacity, *this,
                             cfg_.fault_single_kick);
    active_links_.push_back(e);
  }
  return link_arena_[static_cast<std::size_t>(slot)];
}

const RouterLink* BneckProtocol::router_link(LinkId e) const {
  BNECK_EXPECT(e.valid() && e.value() < net_.link_count(), "bad link id");
  const std::int32_t slot = link_slot_[static_cast<std::size_t>(e.value())];
  return slot < 0 ? nullptr : &link_arena_[static_cast<std::size_t>(slot)];
}

const net::Path* BneckProtocol::session_path(SessionId s) const {
  const std::int32_t slot = slot_of(s);
  if (slot < 0) return nullptr;
  return &sessions_[static_cast<std::size_t>(slot)].path;
}

void BneckProtocol::on_rate(SessionId s, Rate r) {
  runtime(s).notified = r;
  const TimeNs now = wire_now();
  if (trace_ != nullptr) trace_->on_rate_notified(now, s, r);
  if (rate_cb_) rate_cb_(s, r, now);
}

void BneckProtocol::join(SessionId s, net::Path path, Rate demand,
                         double weight) {
  BNECK_EXPECT(s.valid() && slot_of(s) < 0,
               "session ids are single-use (no re-join)");
  BNECK_EXPECT(weight > 0 && std::isfinite(weight),
               "session weight must be positive and finite");
  BNECK_EXPECT(path.links.size() >= 2, "path needs access links at both ends");
  const net::Link& first = net_.link(path.links.front());
  const net::Link& last = net_.link(path.links.back());
  BNECK_EXPECT(net_.is_host(first.src), "path must start at a host");
  BNECK_EXPECT(net_.is_host(last.dst), "path must end at a host");
  auto& in_use = sources_in_use_[static_cast<std::size_t>(first.src.value())];
  BNECK_EXPECT(cfg_.shared_access_links || in_use == 0,
               "one session per source host (set shared_access_links to "
               "lift the paper's simplification)");
  ++in_use;

  const std::int32_t slot = register_session(s);
  SessionRt& rt = sessions_[static_cast<std::size_t>(slot)];
  rt.path = std::move(path);
  rt.demand = demand;
  rt.weight = weight;
  rt.source = make_source(rt);
  ++active_count_;
  rt.source->api_join(demand);
}

void BneckProtocol::register_remote(SessionId s, net::Path path) {
  BNECK_EXPECT(path.links.size() >= 2, "path needs access links at both ends");
  const std::int32_t slot = register_session(s);
  SessionRt& rt = sessions_[static_cast<std::size_t>(slot)];
  rt.path = std::move(path);
  // No source, no active count: deliver() routes RouterLink/destination
  // hops through the path and drops source-hop packets, the tombstone
  // behavior leave() relies on already.
}

std::unique_ptr<SourceNode> BneckProtocol::make_source(const SessionRt& rt) {
  if (cfg_.shared_access_links) {
    // Extension: the access link is arbitrated by a RouterLink at the
    // host; the source starts the probe with its bare request (η
    // invalid: the initial restriction is the demand, not a link).
    return std::make_unique<SourceNode>(
        rt.id, LinkId{}, kRateInfinity, /*emit_hop=*/-1, *this,
        [this](SessionId sid, Rate r) { on_rate(sid, r); }, rt.weight);
  }
  // Paper Figure 3: the source manages its dedicated access link and
  // applies the Ds = min(r, Ce)/w transform itself.
  const net::Link& first = net_.link(rt.path.links.front());
  return std::make_unique<SourceNode>(
      rt.id, rt.path.links.front(), first.capacity, /*emit_hop=*/0, *this,
      [this](SessionId sid, Rate r) { on_rate(sid, r); }, rt.weight);
}

void BneckProtocol::leave(SessionId s) {
  SessionRt& rt = runtime(s);
  BNECK_EXPECT(rt.source != nullptr, "leave of inactive session");
  rt.source->api_leave();
  // The task is retired immediately: any packet still in flight for this
  // session is dropped on delivery.  The path is kept as a tombstone so
  // those packets can still be routed hop by hop until they drain.
  rt.source.reset();
  rt.notified.reset();
  --active_count_;
  const NodeId src = net_.link(rt.path.links.front()).src;
  --sources_in_use_[static_cast<std::size_t>(src.value())];
}

void BneckProtocol::change(SessionId s, Rate demand) {
  SessionRt& rt = runtime(s);
  BNECK_EXPECT(rt.source != nullptr, "change of inactive session");
  rt.demand = demand;
  rt.source->api_change(demand);
}

void BneckProtocol::change(SessionId s, Rate demand, double weight) {
  SessionRt& rt = runtime(s);
  BNECK_EXPECT(rt.source != nullptr, "change of inactive session");
  BNECK_EXPECT(weight > 0 && std::isfinite(weight),
               "session weight must be positive and finite");
  rt.demand = demand;
  rt.weight = weight;
  rt.source->api_change(demand, weight);
}

bool BneckProtocol::is_active(SessionId s) const {
  const std::int32_t slot = slot_of(s);
  return slot >= 0 &&
         sessions_[static_cast<std::size_t>(slot)].source != nullptr;
}

std::optional<Rate> BneckProtocol::notified_rate(SessionId s) const {
  const std::int32_t slot = slot_of(s);
  if (slot < 0) return std::nullopt;
  return sessions_[static_cast<std::size_t>(slot)].notified;
}

std::vector<SessionSpec> BneckProtocol::active_specs() const {
  std::vector<SessionSpec> specs;
  specs.reserve(active_count_);
  for (const SessionRt& rt : sessions_) {
    if (rt.source == nullptr) continue;
    specs.push_back(SessionSpec{rt.id, rt.path, rt.demand, rt.weight});
  }
  std::sort(specs.begin(), specs.end(),
            [](const SessionSpec& a, const SessionSpec& b) { return a.id < b.id; });
  return specs;
}

bool BneckProtocol::all_tasks_stable() const {
  for (std::size_t i = 0; i < link_arena_.size(); ++i) {
    if (!link_arena_[i].stable()) return false;
  }
  for (const SessionRt& rt : sessions_) {
    if (rt.source && !rt.source->stable()) return false;
  }
  return true;
}

void BneckProtocol::on_wire(const Packet& p, LinkId physical) {
  ++packets_sent_;
  last_packet_time_ = wire_now();
  if (trace_ != nullptr) trace_->on_packet_sent(last_packet_time_, p, physical);
}

void BneckProtocol::transmit(Packet p, LinkId physical, std::int32_t to_hop) {
  p.hop = to_hop;
  ++packets_by_type_[static_cast<std::size_t>(p.type)];
  wire_send(physical, p);
}

std::uint64_t BneckProtocol::probe_cycles(SessionId s) const {
  const std::int32_t slot = slot_of(s);
  return slot >= 0 ? sessions_[static_cast<std::size_t>(slot)].probe_cycles
                   : 0;
}

BneckProtocol::SessionRt& BneckProtocol::runtime_for_send(SessionId s) {
  if (s == delivering_id_ && delivering_slot_ >= 0) {
    return sessions_[static_cast<std::size_t>(delivering_slot_)];
  }
  return runtime(s);
}

void BneckProtocol::send_downstream(Packet p, std::int32_t from_hop) {
  SessionRt& rt = runtime_for_send(p.session);
  const std::int32_t source_emit = cfg_.shared_access_links ? -1 : 0;
  if (from_hop == source_emit &&
      (p.type == PacketType::Join || p.type == PacketType::Probe)) {
    ++rt.probe_cycles;
    ++total_probe_cycles_;
  }
  BNECK_EXPECT(is_downstream(p.type), "upstream packet sent downstream");
  BNECK_EXPECT(from_hop >= -1 &&
                   from_hop < static_cast<std::int32_t>(rt.path.links.size()),
               "bad downstream hop");
  if (from_hop == -1) {
    // Shared-access extension: host-internal handoff from the source
    // task to the access link's RouterLink — no physical crossing.
    p.hop = 0;
    wire_local(p);
    return;
  }
  transmit(p, rt.path.links[static_cast<std::size_t>(from_hop)], from_hop + 1);
}

void BneckProtocol::send_upstream(Packet p, std::int32_t from_hop) {
  const SessionRt& rt = runtime_for_send(p.session);
  BNECK_EXPECT(!is_downstream(p.type), "downstream packet sent upstream");
  BNECK_EXPECT(from_hop >= 0 &&
                   from_hop <= static_cast<std::int32_t>(rt.path.links.size()),
               "bad upstream hop");
  if (from_hop == 0) {
    // Shared-access extension: the first RouterLink hands the packet to
    // the co-located source task directly.
    BNECK_EXPECT(cfg_.shared_access_links, "upstream from hop 0");
    p.hop = -1;
    wire_local(p);
    return;
  }
  const std::int32_t to_hop = from_hop - 1;
  const LinkId physical =
      net_.link(rt.path.links[static_cast<std::size_t>(to_hop)]).reverse;
  transmit(p, physical, to_hop);
}

BneckProtocol::Snapshot BneckProtocol::snapshot() const {
  BNECK_EXPECT(owned_transport_ != nullptr && owned_transport_->lossless(),
               "protocol snapshots require the owned loss-free "
               "SimTransport binding");
  Snapshot snap;
  snap.sessions.reserve(sessions_.size());
  for (const SessionRt& rt : sessions_) {
    Snapshot::SessionState st;
    st.demand = rt.demand;
    st.weight = rt.weight;
    st.notified = rt.notified;
    st.probe_cycles = rt.probe_cycles;
    st.active = rt.source != nullptr;
    if (st.active) st.source = rt.source->state();
    snap.sessions.push_back(st);
  }
  snap.tables.reserve(active_links_.size());
  for (const LinkId e : active_links_) {
    snap.tables.push_back(router_link(e)->table().snapshot());
  }
  snap.sources_in_use = sources_in_use_;
  snap.active_count = active_count_;
  snap.packets_sent = packets_sent_;
  snap.last_packet_time = last_packet_time_;
  snap.packets_by_type = packets_by_type_;
  snap.total_probe_cycles = total_probe_cycles_;
  snap.channel_busy = owned_transport_->channel_busy_snapshot();
  return snap;
}

void BneckProtocol::restore(const Snapshot& snap) {
  BNECK_EXPECT(owned_transport_ != nullptr && owned_transport_->lossless(),
               "protocol snapshots require the owned loss-free "
               "SimTransport binding");
  BNECK_EXPECT(snap.sessions.size() <= sessions_.size() &&
                   snap.tables.size() <= active_links_.size(),
               "restore into a protocol that is not a descendant of the "
               "snapshot");
  // Sessions registered after the capture: unregister their ids and pop
  // the slots (slots are append-only, so the snapshot's sessions are
  // exactly the prefix).
  while (sessions_.size() > snap.sessions.size()) {
    const SessionId s = sessions_.back().id;
    const auto v = static_cast<std::uint32_t>(s.value());
    if (v < kDenseIdLimit) {
      id_to_slot_[v] = -1;
    } else {
      sparse_ids_.erase(s);
    }
    sessions_.pop_back();
  }
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    SessionRt& rt = sessions_[i];
    const Snapshot::SessionState& st = snap.sessions[i];
    rt.demand = st.demand;
    rt.weight = st.weight;
    rt.notified = st.notified;
    rt.probe_cycles = st.probe_cycles;
    if (st.active) {
      // A departed (or never-yet-joined-back) task rolls back to life:
      // rebuild it exactly as join() would, then overwrite its scalars.
      if (rt.source == nullptr) rt.source = make_source(rt);
      rt.source->restore_state(st.source);
    } else {
      rt.source.reset();
    }
  }
  // RouterLink tasks are arena-allocated and never destroyed; a link
  // instantiated after the capture is reset to an *empty* table, which
  // is behaviorally identical to the task never having existed (every
  // handler begins by resolving the packet's session in the table).
  static const LinkSessionTable::Snapshot kEmptyTable{};
  for (std::size_t i = 0; i < active_links_.size(); ++i) {
    RouterLink& link = router_link_at(active_links_[i]);
    link.restore_table(i < snap.tables.size() ? snap.tables[i] : kEmptyTable);
  }
  sources_in_use_ = snap.sources_in_use;
  active_count_ = snap.active_count;
  packets_sent_ = snap.packets_sent;
  last_packet_time_ = snap.last_packet_time;
  packets_by_type_ = snap.packets_by_type;
  total_probe_cycles_ = snap.total_probe_cycles;
  owned_transport_->restore_channel_busy(snap.channel_busy);
  delivering_id_ = SessionId{};
  delivering_slot_ = -1;
}

void BneckProtocol::deliver(const Packet& p) {
  // Resolve the session once; the (id, slot) pair is published for
  // runtime_for_send so the sends this delivery triggers skip the
  // lookup, and the task handlers below receive the already-resolved
  // hop.  Each RouterLink handler in turn resolves its table record
  // once into a SessionHandle (router_link.hpp).
  const std::int32_t slot = slot_of(p.session);
  BNECK_EXPECT(slot >= 0, "unknown session");
  delivering_id_ = p.session;
  delivering_slot_ = slot;
  const SessionRt& rt = sessions_[static_cast<std::size_t>(slot)];
  const auto path_len = static_cast<std::int32_t>(rt.path.links.size());

  // The source task sits at hop -1 in shared-access mode (every path
  // link has a RouterLink) and at hop 0 in dedicated mode (it manages
  // the access link itself, Figure 3).
  const std::int32_t source_hop = cfg_.shared_access_links ? -1 : 0;
  if (p.hop == source_hop) {
    // Source node.  Packets for departed sessions are dropped.
    SourceNode* src = rt.source.get();
    if (src == nullptr) return;
    switch (p.type) {
      case PacketType::Response: src->on_response(p); return;
      case PacketType::Update: src->on_update(p); return;
      case PacketType::Bottleneck: src->on_bottleneck(p); return;
      default: BNECK_EXPECT(false, "downstream packet at source");
    }
  }

  if (p.hop == path_len) {
    // Destination node (paper Figure 4): stateless echo.
    switch (p.type) {
      case PacketType::Join:
      case PacketType::Probe: {
        Packet r;
        r.type = PacketType::Response;
        r.session = p.session;
        r.tag = ResponseTag::Response;
        r.lambda = p.lambda;
        r.eta = p.eta;
        send_upstream(r, path_len);
        return;
      }
      case PacketType::SetBottleneck:
        if (!p.beta) {
          // No link certified a bottleneck: the network changed while the
          // certification travelled; trigger a fresh probe cycle.
          Packet u;
          u.type = PacketType::Update;
          u.session = p.session;
          send_upstream(u, path_len);
        }
        return;
      case PacketType::Leave:
        return;  // path fully cleaned up
      default:
        BNECK_EXPECT(false, "upstream packet at destination");
    }
  }

  RouterLink& link =
      router_link_at(rt.path.links[static_cast<std::size_t>(p.hop)]);
  switch (p.type) {
    case PacketType::Join: link.on_join(p, p.hop); return;
    case PacketType::Probe: link.on_probe(p, p.hop); return;
    case PacketType::Response: link.on_response(p, p.hop); return;
    case PacketType::Update: link.on_update(p, p.hop); return;
    case PacketType::Bottleneck: link.on_bottleneck(p, p.hop); return;
    case PacketType::SetBottleneck: link.on_set_bottleneck(p, p.hop); return;
    case PacketType::Leave: link.on_leave(p, p.hop); return;
  }
}

}  // namespace bneck::core
