// Ordered (rate, session) index of the per-link session table.
//
// Replaces std::multiset<std::pair<Rate, SessionId>> on the packet hot
// path.  The key observation: a link's sessions cluster on very few
// distinct rate values (every Re session converges to the same Be, Fe
// sessions to the Be of their own bottlenecks), so the index is two
// small sorted vectors instead of a red-black tree — a `levels` vector
// ordered by rate, each level holding its member sessions ordered by id.
// Lookups bsearch the level array (a cache line or two), mutations
// memmove within one contiguous bucket, and iteration is linear scans —
// no pointer chasing, no node allocation.
//
// Contract:
//   * Keys are raw doubles compared exactly — callers own any tolerance
//     (LinkSessionTable windows rate_eq candidates around a key).  Under
//     the weighted protocol the keys are weight-normalized levels λ/w;
//     the clustering observation holds unchanged because Re sessions
//     share a *level* at a bottleneck.
//   * erase() requires the exact (key, session) pair inserted.
//   * Iteration visits (key ascending, session id ascending within a
//     key): exactly the order std::multiset<pair> gave, which the
//     protocol's packet-emission order — and therefore the simulation's
//     determinism contract — depends on.
#pragma once

#include <algorithm>
#include <vector>

#include "base/expect.hpp"
#include "base/ids.hpp"
#include "base/rate.hpp"

namespace bneck::core {

class RateIndex {
 public:
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Smallest / largest rate present.  Require !empty().
  [[nodiscard]] Rate min_rate() const {
    BNECK_EXPECT(!levels_.empty(), "min of empty index");
    return levels_.front().rate;
  }
  [[nodiscard]] Rate max_rate() const {
    BNECK_EXPECT(!levels_.empty(), "max of empty index");
    return levels_.back().rate;
  }

  void insert(Rate rate, SessionId s) {
    auto lv = level_lower_bound(rate);
    if (lv == levels_.end() || lv->rate != rate) {
      lv = levels_.insert(lv, Level{rate, take_spare()});
    }
    auto& m = lv->members;
    m.insert(std::lower_bound(m.begin(), m.end(), s), s);
    ++size_;
  }

  /// Removes an entry that must be present (mirrors the old index_remove
  /// invariant).
  void erase(Rate rate, SessionId s) {
    const auto lv = level_lower_bound(rate);
    BNECK_EXPECT(lv != levels_.end() && lv->rate == rate,
                 "index entry missing");
    auto& m = lv->members;
    const auto it = std::lower_bound(m.begin(), m.end(), s);
    BNECK_EXPECT(it != m.end() && *it == s, "index entry missing");
    m.erase(it);
    --size_;
    if (m.empty()) {
      give_spare(std::move(m));
      levels_.erase(lv);
    }
  }

  /// fn(rate, session) over every entry, in (rate, session) order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Level& lv : levels_) {
      for (const SessionId s : lv.members) fn(lv.rate, s);
    }
  }

  /// for_each restricted to levels with rate in [lo, hi].
  template <class Fn>
  void for_window(Rate lo, Rate hi, Fn&& fn) const {
    for (auto lv = level_lower_bound(lo); lv != levels_.end() && lv->rate <= hi;
         ++lv) {
      for (const SessionId s : lv->members) fn(lv->rate, s);
    }
  }

  /// for_each restricted to levels with rate >= lo.
  template <class Fn>
  void for_from(Rate lo, Fn&& fn) const {
    for (auto lv = level_lower_bound(lo); lv != levels_.end(); ++lv) {
      for (const SessionId s : lv->members) fn(lv->rate, s);
    }
  }

 private:
  struct Level {
    Rate rate;
    std::vector<SessionId> members;  // ascending id
  };

  [[nodiscard]] std::vector<Level>::iterator level_lower_bound(Rate rate) {
    return std::lower_bound(
        levels_.begin(), levels_.end(), rate,
        [](const Level& lv, Rate r) { return lv.rate < r; });
  }
  [[nodiscard]] std::vector<Level>::const_iterator level_lower_bound(
      Rate rate) const {
    return std::lower_bound(
        levels_.begin(), levels_.end(), rate,
        [](const Level& lv, Rate r) { return lv.rate < r; });
  }

  std::vector<SessionId> take_spare() {
    if (spare_.empty()) return {};
    std::vector<SessionId> v = std::move(spare_.back());
    spare_.pop_back();
    return v;
  }
  void give_spare(std::vector<SessionId> v) {
    if (spare_.size() < 4) spare_.push_back(std::move(v));  // keep capacity
  }

  std::vector<Level> levels_;           // ascending rate
  std::vector<std::vector<SessionId>> spare_;  // recycled member buffers
  std::size_t size_ = 0;
};

}  // namespace bneck::core
