// ShardedBneck: one B-Neck simulation partitioned across worker shards.
//
// The single-thread engine runs one Simulator + one BneckProtocol; this
// engine runs K of each.  net::partition_network assigns every router
// (and its hosts) to a shard; each shard owns a private
// LadderQueue-backed simulator, a ShardTransport and a full
// BneckProtocol instance, so *no mutable state is shared between threads
// at all* — session tables, RouterLink arenas and counters are all
// shard-private, and the only cross-thread traffic is packet batches
// exchanged at the conservative window barriers of
// sim::ShardedScheduler.
//
// Session ownership: a session's *home* shard is the shard of its source
// host's router.  join/leave/change execute there (SourceNode, demand,
// API.Rate); every other shard its path crosses gets a register_remote
// routing stub, so the packets the home shard emits are processed by
// RouterLink tasks local to whichever shard owns each hop.  A directed
// link's FIFO channel lives with the shard that owns the link's source
// node — exactly the shard every send for that link originates from —
// which keeps the per-link serialization clock single-writer.
//
// The public surface mirrors what the experiment harnesses consume from
// BneckProtocol, with counters aggregated across shards (sums for the
// packet counters, max for timestamps, id-sorted concatenation for
// active_specs).  API calls are *scheduled*, not immediate: the driver
// stages joins/leaves/changes between runs, then run_until_idle()
// advances all shards to global quiescence.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/bneck.hpp"
#include "core/session.hpp"
#include "core/trace.hpp"
#include "net/network.hpp"
#include "net/partition.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "transport/shard_transport.hpp"

namespace bneck::core {

struct ShardedConfig {
  /// Requested worker shards; effective count is capped by the router
  /// count (net::partition_network).
  std::int32_t shards = 2;
  /// Protocol knobs.  Must describe the loss-free wire (no loss, no
  /// ARQ); the single-thread engine remains the backend for fault
  /// studies.
  BneckConfig protocol;
  /// Partitioner balance cap (net::PartitionConfig).
  double balance_slack = 1.25;
};

class ShardedBneck {
 public:
  /// `traces`: either empty or one sink per *effective* shard — shard k's
  /// protocol reports its wire crossings to traces[k], from shard k's
  /// worker thread (sinks must be shard-private or thread-safe).  Pass
  /// per-shard sinks and merge after the run, as
  /// workload::ShardedDynamicsRunner does.
  ShardedBneck(const net::Network& network, ShardedConfig config,
               std::vector<TraceSink*> traces = {});

  ShardedBneck(const ShardedBneck&) = delete;
  ShardedBneck& operator=(const ShardedBneck&) = delete;

  // ---- staged API (call between runs, never from a worker) ----

  void schedule_join(TimeNs at, SessionId s, net::Path path,
                     Rate demand = kRateInfinity, double weight = 1.0);
  void schedule_leave(TimeNs at, SessionId s);
  void schedule_change(TimeNs at, SessionId s, Rate demand);

  /// Advances every shard to global quiescence (sim::ShardedScheduler
  /// barrier loop) and returns the quiescence instant: the timestamp of
  /// the globally last processed event, byte-identical to what the
  /// single-thread engine's run_until_idle() reports.
  TimeNs run_until_idle();

  /// Timestamp of the globally last processed event.
  [[nodiscard]] TimeNs now() const;

  // ---- aggregated introspection (between runs) ----

  [[nodiscard]] std::size_t active_sessions() const;
  [[nodiscard]] std::uint64_t packets_sent() const;
  [[nodiscard]] TimeNs last_packet_time() const;
  [[nodiscard]] std::array<std::uint64_t, kPacketTypeCount> packets_by_type()
      const;
  [[nodiscard]] std::uint64_t total_probe_cycles() const;
  [[nodiscard]] std::optional<Rate> notified_rate(SessionId s) const;
  /// Active sessions as solver input, ascending id (across all shards).
  [[nodiscard]] std::vector<SessionSpec> active_specs() const;
  [[nodiscard]] bool all_tasks_stable() const;

  [[nodiscard]] const net::NetPartition& partition() const {
    return partition_;
  }
  [[nodiscard]] std::int32_t shard_count() const {
    return partition_.shard_count;
  }
  /// Shard a session's API state lives on (-1 for unknown ids).
  [[nodiscard]] std::int32_t home_shard(SessionId s) const;
  /// Barrier windows executed so far (0 on the 1-shard fast path).
  [[nodiscard]] std::uint64_t windows_run() const {
    return scheduler_->windows_run();
  }
  /// Packets that crossed shards since construction.
  [[nodiscard]] std::uint64_t cross_shard_packets() const {
    return scheduler_->messages_posted();
  }
  /// Shard k's protocol instance (tests/debugging).
  [[nodiscard]] const BneckProtocol& shard_protocol(std::int32_t k) const {
    return *protocols_[static_cast<std::size_t>(k)];
  }

 private:
  /// Shards owning at least one task of `path` (RouterLink per hop, the
  /// destination echo), ascending, excluding none.
  [[nodiscard]] std::vector<std::int32_t> involved_shards(
      const net::Path& path) const;

  const net::Network& net_;
  ShardedConfig cfg_;
  net::NetPartition partition_;
  std::vector<std::unique_ptr<sim::Simulator>> sims_;
  std::unique_ptr<sim::ShardedScheduler<Packet>> scheduler_;
  std::vector<std::unique_ptr<transport::ShardTransport>> transports_;
  std::vector<std::unique_ptr<BneckProtocol>> protocols_;
  // Session id -> home shard.  Ids are dense in every harness (they are
  // allocated sequentially); the engine enforces the same dense-id limit
  // the protocol's slot table uses.
  std::vector<std::int32_t> id_home_;
};

}  // namespace bneck::core
