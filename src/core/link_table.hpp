// Per-link session table of the RouterLink task.
//
// Holds, for every session crossing the link, the paper's per-session
// state: the partition flag (restricted here, Re, vs restricted
// elsewhere, Fe), the state machine value
// µ ∈ {IDLE, WAITING_PROBE, WAITING_RESPONSE} and the recorded rate λes.
//
// The pseudocode's predicates are set-level quantifications; this table
// maintains two ordered indexes — (λ, s) over *idle Re* sessions and over
// *Fe* sessions — plus running aggregates (Σ_{Fe} λ, |Re|), so each
// predicate is answered in O(log n):
//   Be              = (Ce − Σ_{Fe} λ) / |Re|        (+inf when Re = ∅)
//   all_R_idle_at_be: ∀r∈Re, λ = Be ∧ µ = IDLE      (bottleneck detection)
//   exists F λ ≥ Be, max/argmax over Fe             (ProcessNewRestricted)
//   {r∈Re : IDLE ∧ λ > x} / {r∈Re : IDLE ∧ λ ≈ x}   (Update triggers)
//
// λes is only meaningful while s ∈ Fe, or s ∈ Re with µ = IDLE — exactly
// the states in which the indexes track it.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/expect.hpp"
#include "base/ids.hpp"
#include "base/rate.hpp"

namespace bneck::core {

enum class Mu : std::uint8_t { Idle, WaitingProbe, WaitingResponse };

constexpr const char* mu_name(Mu m) {
  switch (m) {
    case Mu::Idle: return "IDLE";
    case Mu::WaitingProbe: return "WAITING_PROBE";
    case Mu::WaitingResponse: return "WAITING_RESPONSE";
  }
  return "?";
}

class LinkSessionTable {
 public:
  explicit LinkSessionTable(Rate capacity);

  [[nodiscard]] Rate capacity() const { return capacity_; }
  [[nodiscard]] bool contains(SessionId s) const { return recs_.count(s) > 0; }
  [[nodiscard]] bool in_R(SessionId s) const { return rec(s).in_r; }
  [[nodiscard]] Mu mu(SessionId s) const { return rec(s).mu; }
  [[nodiscard]] Rate lambda(SessionId s) const { return rec(s).lambda; }
  /// Hop index of this link in the session's path (recorded on insert so
  /// the link can originate upstream packets for the session).
  [[nodiscard]] std::int32_t hop(SessionId s) const { return rec(s).hop; }

  [[nodiscard]] std::size_t size() const { return recs_.size(); }
  [[nodiscard]] std::size_t r_size() const { return r_count_; }
  [[nodiscard]] std::size_t f_size() const { return f_.size(); }

  /// Bottleneck rate estimate Be = (Ce − Σ_{Fe} λ)/|Re|; +inf when Re=∅.
  /// May transiently be negative inside ProcessNewRestricted loops.
  [[nodiscard]] Rate be() const;

  // ---- mutations (all keep the indexes consistent) ----

  /// Join: Re ← Re ∪ {s} with µ = WAITING_RESPONSE.
  void insert_R(SessionId s, std::int32_t hop);

  /// Leave: removes s from whichever set holds it.
  void erase(SessionId s);

  /// Fe → Re, preserving µ and λ.  No-op precondition: s ∈ Fe.
  void move_to_R(SessionId s);

  /// Re → Fe, preserving µ and λ.  Requires s ∈ Re.
  void move_to_F(SessionId s);

  void set_mu(SessionId s, Mu m);

  /// Response accepted: λes ← λ and µ ← IDLE in one step.
  void set_idle_with_lambda(SessionId s, Rate lambda);

  // ---- protocol predicates ----

  /// ∀r ∈ Re : µ = IDLE ∧ λ = Be, with Re ≠ ∅ (bottleneck condition).
  [[nodiscard]] bool all_R_idle_at_be() const;

  /// ∃s ∈ Fe : λ ≥ Be (drives the ProcessNewRestricted loop).
  [[nodiscard]] bool exists_F_ge_be() const;

  /// max λ over Fe.  Requires Fe ≠ ∅.
  [[nodiscard]] Rate max_F_lambda() const;

  /// {s ∈ Fe : λ ≈ value}.
  [[nodiscard]] std::vector<SessionId> F_at(Rate value) const;

  /// {s ∈ Re : µ = IDLE ∧ λ > threshold} (strictly, beyond tolerance).
  [[nodiscard]] std::vector<SessionId> idle_R_above(Rate threshold) const;

  /// {s ∈ Re \ {exclude} : µ = IDLE ∧ λ ≈ value}.
  [[nodiscard]] std::vector<SessionId> idle_R_at(
      Rate value, SessionId exclude = SessionId{}) const;

  /// All sessions of Re except `exclude`.  Intended for the bottleneck
  /// broadcast, where all of Re is idle; returns them in rate order.
  [[nodiscard]] std::vector<SessionId> idle_R_all(
      SessionId exclude = SessionId{}) const;

  /// Link stability (paper Definition 2, per-link part): every session
  /// idle; every Re rate equals Be; if Re ≠ ∅, every Fe rate < Be.
  [[nodiscard]] bool stable() const;

  /// Iterates (session, in_r, mu, lambda) for diagnostics/tests.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [s, r] : recs_) fn(s, r.in_r, r.mu, r.lambda);
  }

 private:
  struct Rec {
    Mu mu = Mu::WaitingResponse;
    Rate lambda = 0;
    bool in_r = true;
    std::int32_t hop = 0;
  };
  using Index = std::multiset<std::pair<Rate, SessionId>>;

  const Rec& rec(SessionId s) const;
  Rec& rec(SessionId s);
  void index_remove(Index& idx, Rate lambda, SessionId s);
  // Adds/removes s from idle_r_ according to its current state.
  void sync_idle_index(SessionId s, const Rec& r, bool present);

  Rate capacity_;
  std::unordered_map<SessionId, Rec> recs_;
  Index idle_r_;  // (λ, s) for s ∈ Re with µ = IDLE
  Index f_;       // (λ, s) for s ∈ Fe
  std::size_t r_count_ = 0;
  long double f_sum_ = 0;  // Σ_{Fe} λ; recomputed periodically to kill drift
  std::uint64_t f_mutations_ = 0;
};

}  // namespace bneck::core
