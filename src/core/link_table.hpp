// Per-link session table of the RouterLink task.
//
// Holds, for every session crossing the link, the paper's per-session
// state: the partition flag (restricted here, Re, vs restricted
// elsewhere, Fe), the state machine value
// µ ∈ {IDLE, WAITING_PROBE, WAITING_RESPONSE}, the session's max-min
// weight w_s (weighted extension) and the recorded *level* λes — the
// weight-normalized rate.  A session's actual rate is w_s · λes
// (rate_of()); with unit weights level and rate coincide and every
// formula below reduces to the paper's unweighted pseudocode, bit for
// bit.
//
// Access model (contract): the packet hot path is *handle-oriented*.  A
// RouterLink handler resolves the packet's session exactly once —
// find(s) -> SessionHandle — and every subsequent read (mu, lambda,
// weight, hop, in_R, rate_of) and mutation (set_mu, set_weight,
// set_idle_with_lambda, move_to_R/F, erase) takes the handle, costing
// an epoch compare plus a direct record access instead of a repeated
// hash probe.  A handle survives *any* table mutation that does not
// erase its own session — including insert_R and erase of other
// sessions: the record map (base/flat_hash.hpp) keeps values inline in
// its probe array for single-cache-line lookups, advances an epoch
// whenever slots may have moved, and every handle access revalidates
// against that epoch, re-resolving (one probe) only when it actually
// did.  The id-keyed methods remain as thin wrappers over the handle
// path for tests, audits and cold callers; audit() cross-validates the
// two paths.
//
// The pseudocode's predicates are set-level quantifications; this table
// maintains two ordered indexes — (λ, s) over *idle Re* sessions and over
// *Fe* sessions (core/rate_index.hpp, keyed by level) — plus running
// aggregates (Σ_{Fe} w·λ, |Re|, Σ_{Re} w), so each predicate is answered
// in O(log n):
//   Be               = (Ce − Σ_{Fe} w·λ) / Σ_{Re} w  (+inf when Re = ∅;
//                      the common *level* of the Re sessions — session s
//                      of Re receives rate w_s · Be)
//   all_R_idle_at_be: ∀r∈Re, λ = Be ∧ µ = IDLE       (bottleneck detection)
//   exists F λ ≥ Be, max/argmax over Fe              (ProcessNewRestricted)
//   {r∈Re : IDLE ∧ λ > x} / {r∈Re : IDLE ∧ λ ≈ x}    (Update triggers)
// The set-valued queries resolve their results into handles, so a
// RouterLink kick batch mutates its victims without a single re-lookup.
//
// λes is only meaningful while s ∈ Fe, or s ∈ Re with µ = IDLE — exactly
// the states in which the indexes track it.
//
// Units and invariants (contract):
//   * capacity() is in Mbps (like net::Link::capacity); λ keys and be()
//     are levels in Mbps-per-unit-weight; weights are dimensionless > 0.
//   * The aggregates and both indexes are kept exactly consistent with
//     the record map by every mutation (audit() cross-checks this
//     against a naive reconstruction, plus the map's own index<->slab
//     audit and handle-vs-id read agreement).
//   * Iteration order of the set-valued queries is (level ascending,
//     session id ascending) — the simulation's determinism contract
//     depends on it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/expect.hpp"
#include "base/flat_hash.hpp"
#include "base/ids.hpp"
#include "base/rate.hpp"
#include "core/rate_index.hpp"

namespace bneck::core {

enum class Mu : std::uint8_t { Idle, WaitingProbe, WaitingResponse };

constexpr const char* mu_name(Mu m) {
  switch (m) {
    case Mu::Idle: return "IDLE";
    case Mu::WaitingProbe: return "WAITING_PROBE";
    case Mu::WaitingResponse: return "WAITING_RESPONSE";
  }
  return "?";
}

class LinkSessionTable {
 private:
  struct Rec {
    Mu mu = Mu::WaitingResponse;
    Rate lambda = 0;       // level (rate / weight)
    double weight = 1.0;   // max-min weight, > 0
    bool in_r = true;
    std::int32_t hop = 0;
  };

 public:
  /// A resolved session record: {record pointer, map epoch, session
  /// id}.  Obtained from find()/insert_R(); accessors take it by
  /// *reference* because access may refresh it: while the record map's
  /// epoch is unchanged the cached pointer is exact and an access costs
  /// one compare, and when slots moved (a rehash or an erase of any
  /// session) the next access transparently re-resolves with a single
  /// probe.  A handle therefore stays usable until *its own* session is
  /// erased; using it past that point trips the revalidation EXPECT.
  /// A null handle (find() miss) is valid()==false; passing one to any
  /// accessor is a contract violation.
  class SessionHandle {
   public:
    SessionHandle() = default;
    [[nodiscard]] bool valid() const { return rec_ != nullptr; }
    explicit operator bool() const { return valid(); }
    [[nodiscard]] SessionId id() const { return s_; }
    // No operator==: pointer equality would depend on revalidation
    // history; compare id()s instead.

   private:
    friend class LinkSessionTable;
    SessionHandle(Rec* rec, std::uint64_t epoch, SessionId s)
        : rec_(rec), epoch_(epoch), s_(s) {}
    Rec* rec_ = nullptr;
    std::uint64_t epoch_ = 0;
    SessionId s_;
  };

  explicit LinkSessionTable(Rate capacity);

  [[nodiscard]] Rate capacity() const { return capacity_; }

  /// THE hot-path lookup: resolves s to a handle (null if unknown).
  /// One hash probe; everything else on the packet path reads and
  /// mutates through the result.
  [[nodiscard]] SessionHandle find(SessionId s) const {
    auto& recs = const_cast<FlatIdMap<SessionTag, Rec>&>(recs_);
    return SessionHandle{recs.find(s), recs_.epoch(), s};
  }

  // ---- handle-keyed reads (the packet path) ----

  [[nodiscard]] bool in_R(SessionHandle& h) const { return rec(h).in_r; }
  [[nodiscard]] Mu mu(SessionHandle& h) const { return rec(h).mu; }
  /// Recorded level λes (weight-normalized rate) at this link.
  [[nodiscard]] Rate lambda(SessionHandle& h) const { return rec(h).lambda; }
  /// Max-min weight as last announced by the session's Join/Probe.
  [[nodiscard]] double weight(SessionHandle& h) const { return rec(h).weight; }
  /// Actual recorded rate: w_s · λes.
  [[nodiscard]] Rate rate_of(SessionHandle& h) const {
    const Rec& r = rec(h);
    return r.weight * r.lambda;
  }
  /// Hop index of this link in the session's path (recorded on insert so
  /// the link can originate upstream packets for the session).
  [[nodiscard]] std::int32_t hop(SessionHandle& h) const { return rec(h).hop; }

  // ---- id-keyed reads (thin wrappers for tests/audit/cold paths) ----

  [[nodiscard]] bool contains(SessionId s) const { return recs_.contains(s); }
  [[nodiscard]] bool in_R(SessionId s) const {
    SessionHandle h = checked(s);
    return in_R(h);
  }
  [[nodiscard]] Mu mu(SessionId s) const {
    SessionHandle h = checked(s);
    return mu(h);
  }
  [[nodiscard]] Rate lambda(SessionId s) const {
    SessionHandle h = checked(s);
    return lambda(h);
  }
  [[nodiscard]] double weight(SessionId s) const {
    SessionHandle h = checked(s);
    return weight(h);
  }
  [[nodiscard]] Rate rate_of(SessionId s) const {
    SessionHandle h = checked(s);
    return rate_of(h);
  }
  [[nodiscard]] std::int32_t hop(SessionId s) const {
    SessionHandle h = checked(s);
    return hop(h);
  }

  [[nodiscard]] std::size_t size() const { return recs_.size(); }
  [[nodiscard]] std::size_t r_size() const { return r_count_; }
  [[nodiscard]] std::size_t f_size() const { return f_.size(); }

  /// Bottleneck *level* estimate Be = (Ce − Σ_{Fe} w·λ)/Σ_{Re} w; +inf
  /// when Re=∅.  Session s of Re saturates the link at rate w_s·Be.  May
  /// transiently be negative inside ProcessNewRestricted loops.
  [[nodiscard]] Rate be() const {
    if (r_count_ == 0) return kRateInfinity;
    return (capacity_ - static_cast<Rate>(f_sum_)) /
           static_cast<Rate>(r_weight_);
  }

  // ---- mutations (all keep the indexes and aggregates consistent) ----
  // The handle overloads are the implementations; the id overloads
  // resolve once and forward.

  /// Join: Re ← Re ∪ {s} with µ = WAITING_RESPONSE and weight w.
  /// Returns the new session's handle.
  SessionHandle insert_R(SessionId s, std::int32_t hop, double weight = 1.0);

  /// Re-announced weight from a Probe (API.Change may retune it).  No-op
  /// when unchanged; otherwise adjusts the aggregates (the λ key — a
  /// level — is untouched: the in-flight probe cycle re-establishes it).
  void set_weight(SessionHandle& h, double weight);
  void set_weight(SessionId s, double weight) {
    SessionHandle h = checked(s);
    set_weight(h, weight);
  }

  /// Leave: removes the session from whichever set holds it.  The
  /// handle (and any copy of it) is dead afterwards.
  void erase(SessionHandle& h);
  void erase(SessionId s) {
    SessionHandle h = checked(s);
    erase(h);
  }

  /// Fe → Re, preserving µ and λ.  Requires s ∈ Fe.
  void move_to_R(SessionHandle& h);
  void move_to_R(SessionId s) {
    SessionHandle h = checked(s);
    move_to_R(h);
  }

  /// Re → Fe, preserving µ and λ.  Requires s ∈ Re.
  void move_to_F(SessionHandle& h);
  void move_to_F(SessionId s) {
    SessionHandle h = checked(s);
    move_to_F(h);
  }

  void set_mu(SessionHandle& h, Mu m);
  void set_mu(SessionId s, Mu m) {
    SessionHandle h = checked(s);
    set_mu(h, m);
  }

  /// Response accepted: λes ← λ (a level) and µ ← IDLE in one step.
  void set_idle_with_lambda(SessionHandle& h, Rate lambda);
  void set_idle_with_lambda(SessionId s, Rate lambda) {
    SessionHandle h = checked(s);
    set_idle_with_lambda(h, lambda);
  }

  // ---- protocol predicates ----

  /// ∀r ∈ Re : µ = IDLE ∧ λ = Be, with Re ≠ ∅ (bottleneck condition).
  [[nodiscard]] bool all_R_idle_at_be() const;

  /// ∃s ∈ Fe : λ ≥ Be (drives the ProcessNewRestricted loop).
  [[nodiscard]] bool exists_F_ge_be() const;

  /// max λ over Fe.  Requires Fe ≠ ∅.
  [[nodiscard]] Rate max_F_lambda() const;

  // The set-valued queries fill a caller-provided vector (cleared first)
  // so per-packet callers can reuse one scratch buffer instead of
  // allocating a result vector per packet.  The handle-filling overloads
  // are the hot path (each result is resolved exactly once, inside the
  // query); the id overloads are conveniences for tests and cold paths.

  /// {s ∈ Fe : λ ≈ value}.
  void F_at(Rate value, std::vector<SessionHandle>& out) const;
  void F_at(Rate value, std::vector<SessionId>& out) const;
  [[nodiscard]] std::vector<SessionId> F_at(Rate value) const {
    std::vector<SessionId> out;
    F_at(value, out);
    return out;
  }

  /// {s ∈ Re : µ = IDLE ∧ λ > threshold} (strictly, beyond tolerance).
  void idle_R_above(Rate threshold, std::vector<SessionHandle>& out) const;
  void idle_R_above(Rate threshold, std::vector<SessionId>& out) const;
  [[nodiscard]] std::vector<SessionId> idle_R_above(Rate threshold) const {
    std::vector<SessionId> out;
    idle_R_above(threshold, out);
    return out;
  }

  /// {s ∈ Re \ {exclude} : µ = IDLE ∧ λ ≈ value}.
  void idle_R_at(Rate value, SessionId exclude,
                 std::vector<SessionHandle>& out) const;
  void idle_R_at(Rate value, SessionId exclude,
                 std::vector<SessionId>& out) const;
  [[nodiscard]] std::vector<SessionId> idle_R_at(
      Rate value, SessionId exclude = SessionId{}) const {
    std::vector<SessionId> out;
    idle_R_at(value, exclude, out);
    return out;
  }

  /// All sessions of Re except `exclude`.  Intended for the bottleneck
  /// broadcast, where all of Re is idle; returns them in rate order.
  void idle_R_all(SessionId exclude, std::vector<SessionHandle>& out) const;
  void idle_R_all(SessionId exclude, std::vector<SessionId>& out) const;
  [[nodiscard]] std::vector<SessionId> idle_R_all(
      SessionId exclude = SessionId{}) const {
    std::vector<SessionId> out;
    idle_R_all(exclude, out);
    return out;
  }

  /// Link stability (paper Definition 2, per-link part): every session
  /// idle; every Re rate equals Be; if Re ≠ ∅, every Fe rate < Be.
  [[nodiscard]] bool stable() const;

  /// Full internal-consistency audit against a naive reconstruction from
  /// the record map: the |Re|, Σ_{Re} w and Σ_{Fe} w·λ aggregates, weight
  /// validity, membership and λ keys of both ordered indexes (idle-Re and
  /// Fe), index ordering, be(), the record map's own probe-chain
  /// reachability audit, and agreement of the handle path with the id
  /// path (a fresh find() must resolve every iterated record to itself).
  /// Returns an empty string when consistent, else a description of the
  /// first violation.  O(n log n); intended for the property harness
  /// (src/check/), not for per-packet paths.
  [[nodiscard]] std::string audit() const;

  // ---- snapshot/restore (model-checker seam, src/mc/) ----

  /// A copyable value capture of the whole table: every record row plus
  /// the running aggregates VERBATIM (bit for bit — restoring via
  /// recompute would drift from the incremental arithmetic the live
  /// table would have carried, and be() comparisons are exact).  Rows
  /// are sorted by session id, so equal logical states produce equal
  /// snapshots regardless of map iteration order.
  struct Snapshot {
    struct Row {
      SessionId s;
      Mu mu;
      Rate lambda;
      double weight;
      bool in_r;
      std::int32_t hop;
    };
    std::vector<Row> rows;
    std::size_t r_count = 0;
    long double r_weight = 0;
    long double f_sum = 0;
    std::uint64_t f_mutations = 0;
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Rewinds the table to a snapshot: records and both ordered indexes
  /// are rebuilt from the rows (membership rule: idle-Re index iff
  /// in_r ∧ µ=IDLE, Fe index iff ¬in_r), aggregates are set verbatim.
  void restore(const Snapshot& snap);

  /// Validates one outstanding handle against a fresh id-path lookup:
  /// empty when the handle still resolves to the same record, else a
  /// description (null handle, unknown session, or a desynced pointer —
  /// e.g. a handle held across the erase of its session).
  [[nodiscard]] std::string audit_handle(SessionHandle h) const;

  /// Iterates (session, in_r, mu, lambda-level) for diagnostics/tests.
  template <class Fn>
  void for_each(Fn&& fn) const {
    recs_.for_each(
        [&fn](SessionId s, const Rec& r) { fn(s, r.in_r, r.mu, r.lambda); });
  }

 private:
  using Index = RateIndex;

  /// Handle deref: while the record map's epoch is unchanged the cached
  /// pointer is exact (one compare); when slots moved, re-resolve with
  /// one probe and refresh the caller's handle in place.  The EXPECT
  /// catches both a find() miss used as a handle and a handle used past
  /// the erase of its own session.  A null handle is never revalidated:
  /// it must throw even if its session id was inserted in the meantime.
  const Rec& rec(SessionHandle& h) const {
    if (h.rec_ != nullptr && h.epoch_ != recs_.epoch()) {
      auto& recs = const_cast<FlatIdMap<SessionTag, Rec>&>(recs_);
      h.rec_ = recs.find(h.s_);
      h.epoch_ = recs_.epoch();
    }
    BNECK_EXPECT(h.rec_ != nullptr, "null or stale session handle");
    return *h.rec_;
  }
  Rec& rec_mut(SessionHandle& h) { return const_cast<Rec&>(rec(h)); }

  // Shared bodies of the set-valued queries: `Out` is either a
  // SessionId vector (tests/audit) or a SessionHandle vector (packet
  // path) — emit() resolves in the handle case, so the two public
  // overload families cannot drift apart.
  void emit(SessionId s, std::vector<SessionId>& out) const {
    out.push_back(s);
  }
  void emit(SessionId s, std::vector<SessionHandle>& out) const {
    out.push_back(checked(s));
  }
  template <class Out>
  void F_at_impl(Rate value, Out& out) const;
  template <class Out>
  void idle_R_above_impl(Rate threshold, Out& out) const;
  template <class Out>
  void idle_R_at_impl(Rate value, SessionId exclude, Out& out) const;
  template <class Out>
  void idle_R_all_impl(SessionId exclude, Out& out) const;

  /// Id-path resolution for the wrapper methods: one probe, must hit.
  [[nodiscard]] SessionHandle checked(SessionId s) const {
    SessionHandle h = find(s);
    BNECK_EXPECT(h.valid(), "unknown session at link");
    return h;
  }

  Rate capacity_;
  // One lookup per packet per hop resolves into a handle; subsequent
  // accesses ride the epoch check.  The open-addressing map is the hot
  // container of the whole simulation (see base/flat_hash.hpp).
  FlatIdMap<SessionTag, Rec> recs_;
  Index idle_r_;  // (λ, s) for s ∈ Re with µ = IDLE (λ is a level)
  Index f_;       // (λ, s) for s ∈ Fe (λ is a level)
  std::size_t r_count_ = 0;
  // Σ_{Re} w.  With unit weights every add/subtract of 1.0 is exact, so
  // this equals r_count_ bit for bit and be() reproduces the unweighted
  // protocol's arithmetic unchanged.
  long double r_weight_ = 0;
  long double f_sum_ = 0;  // Σ_{Fe} w·λ; recomputed periodically to kill drift
  std::uint64_t f_mutations_ = 0;
};

}  // namespace bneck::core
