// Per-link session table of the RouterLink task.
//
// Holds, for every session crossing the link, the paper's per-session
// state: the partition flag (restricted here, Re, vs restricted
// elsewhere, Fe), the state machine value
// µ ∈ {IDLE, WAITING_PROBE, WAITING_RESPONSE}, the session's max-min
// weight w_s (weighted extension) and the recorded *level* λes — the
// weight-normalized rate.  A session's actual rate is w_s · λes
// (rate_of()); with unit weights level and rate coincide and every
// formula below reduces to the paper's unweighted pseudocode, bit for
// bit.
//
// The pseudocode's predicates are set-level quantifications; this table
// maintains two ordered indexes — (λ, s) over *idle Re* sessions and over
// *Fe* sessions (core/rate_index.hpp, keyed by level) — plus running
// aggregates (Σ_{Fe} w·λ, |Re|, Σ_{Re} w), so each predicate is answered
// in O(log n):
//   Be               = (Ce − Σ_{Fe} w·λ) / Σ_{Re} w  (+inf when Re = ∅;
//                      the common *level* of the Re sessions — session s
//                      of Re receives rate w_s · Be)
//   all_R_idle_at_be: ∀r∈Re, λ = Be ∧ µ = IDLE       (bottleneck detection)
//   exists F λ ≥ Be, max/argmax over Fe              (ProcessNewRestricted)
//   {r∈Re : IDLE ∧ λ > x} / {r∈Re : IDLE ∧ λ ≈ x}    (Update triggers)
//
// λes is only meaningful while s ∈ Fe, or s ∈ Re with µ = IDLE — exactly
// the states in which the indexes track it.
//
// Units and invariants (contract):
//   * capacity() is in Mbps (like net::Link::capacity); λ keys and be()
//     are levels in Mbps-per-unit-weight; weights are dimensionless > 0.
//   * The aggregates and both indexes are kept exactly consistent with
//     the record map by every mutation (audit() cross-checks this
//     against a naive reconstruction).
//   * Iteration order of the set-valued queries is (level ascending,
//     session id ascending) — the simulation's determinism contract
//     depends on it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/expect.hpp"
#include "base/flat_hash.hpp"
#include "base/ids.hpp"
#include "base/rate.hpp"
#include "core/rate_index.hpp"

namespace bneck::core {

enum class Mu : std::uint8_t { Idle, WaitingProbe, WaitingResponse };

constexpr const char* mu_name(Mu m) {
  switch (m) {
    case Mu::Idle: return "IDLE";
    case Mu::WaitingProbe: return "WAITING_PROBE";
    case Mu::WaitingResponse: return "WAITING_RESPONSE";
  }
  return "?";
}

class LinkSessionTable {
 public:
  explicit LinkSessionTable(Rate capacity);

  [[nodiscard]] Rate capacity() const { return capacity_; }
  [[nodiscard]] bool contains(SessionId s) const { return recs_.contains(s); }
  [[nodiscard]] bool in_R(SessionId s) const { return rec(s).in_r; }
  [[nodiscard]] Mu mu(SessionId s) const { return rec(s).mu; }
  /// Recorded level λes (weight-normalized rate) of s at this link.
  [[nodiscard]] Rate lambda(SessionId s) const { return rec(s).lambda; }
  /// Max-min weight of s as last announced by its Join/Probe packets.
  [[nodiscard]] double weight(SessionId s) const { return rec(s).weight; }
  /// Actual recorded rate of s: w_s · λes.
  [[nodiscard]] Rate rate_of(SessionId s) const {
    const Rec& r = rec(s);
    return r.weight * r.lambda;
  }
  /// Hop index of this link in the session's path (recorded on insert so
  /// the link can originate upstream packets for the session).
  [[nodiscard]] std::int32_t hop(SessionId s) const { return rec(s).hop; }

  [[nodiscard]] std::size_t size() const { return recs_.size(); }
  [[nodiscard]] std::size_t r_size() const { return r_count_; }
  [[nodiscard]] std::size_t f_size() const { return f_.size(); }

  /// Bottleneck *level* estimate Be = (Ce − Σ_{Fe} w·λ)/Σ_{Re} w; +inf
  /// when Re=∅.  Session s of Re saturates the link at rate w_s·Be.  May
  /// transiently be negative inside ProcessNewRestricted loops.
  [[nodiscard]] Rate be() const {
    if (r_count_ == 0) return kRateInfinity;
    return (capacity_ - static_cast<Rate>(f_sum_)) /
           static_cast<Rate>(r_weight_);
  }

  // ---- mutations (all keep the indexes and aggregates consistent) ----

  /// Join: Re ← Re ∪ {s} with µ = WAITING_RESPONSE and weight w.
  void insert_R(SessionId s, std::int32_t hop, double weight = 1.0);

  /// Re-announced weight from a Probe (API.Change may retune it).  No-op
  /// when unchanged; otherwise adjusts the aggregates (the λ key — a
  /// level — is untouched: the in-flight probe cycle re-establishes it).
  void set_weight(SessionId s, double weight);

  /// Leave: removes s from whichever set holds it.
  void erase(SessionId s);

  /// Fe → Re, preserving µ and λ.  No-op precondition: s ∈ Fe.
  void move_to_R(SessionId s);

  /// Re → Fe, preserving µ and λ.  Requires s ∈ Re.
  void move_to_F(SessionId s);

  void set_mu(SessionId s, Mu m);

  /// Response accepted: λes ← λ (a level) and µ ← IDLE in one step.
  void set_idle_with_lambda(SessionId s, Rate lambda);

  // ---- protocol predicates ----

  /// ∀r ∈ Re : µ = IDLE ∧ λ = Be, with Re ≠ ∅ (bottleneck condition).
  [[nodiscard]] bool all_R_idle_at_be() const;

  /// ∃s ∈ Fe : λ ≥ Be (drives the ProcessNewRestricted loop).
  [[nodiscard]] bool exists_F_ge_be() const;

  /// max λ over Fe.  Requires Fe ≠ ∅.
  [[nodiscard]] Rate max_F_lambda() const;

  // The set-valued queries fill a caller-provided vector (cleared first)
  // so per-packet callers can reuse one scratch buffer instead of
  // allocating a result vector per packet; the returning overloads are
  // conveniences for tests and cold paths.

  /// {s ∈ Fe : λ ≈ value}.
  void F_at(Rate value, std::vector<SessionId>& out) const;
  [[nodiscard]] std::vector<SessionId> F_at(Rate value) const {
    std::vector<SessionId> out;
    F_at(value, out);
    return out;
  }

  /// {s ∈ Re : µ = IDLE ∧ λ > threshold} (strictly, beyond tolerance).
  void idle_R_above(Rate threshold, std::vector<SessionId>& out) const;
  [[nodiscard]] std::vector<SessionId> idle_R_above(Rate threshold) const {
    std::vector<SessionId> out;
    idle_R_above(threshold, out);
    return out;
  }

  /// {s ∈ Re \ {exclude} : µ = IDLE ∧ λ ≈ value}.
  void idle_R_at(Rate value, SessionId exclude,
                 std::vector<SessionId>& out) const;
  [[nodiscard]] std::vector<SessionId> idle_R_at(
      Rate value, SessionId exclude = SessionId{}) const {
    std::vector<SessionId> out;
    idle_R_at(value, exclude, out);
    return out;
  }

  /// All sessions of Re except `exclude`.  Intended for the bottleneck
  /// broadcast, where all of Re is idle; returns them in rate order.
  void idle_R_all(SessionId exclude, std::vector<SessionId>& out) const;
  [[nodiscard]] std::vector<SessionId> idle_R_all(
      SessionId exclude = SessionId{}) const {
    std::vector<SessionId> out;
    idle_R_all(exclude, out);
    return out;
  }

  /// Link stability (paper Definition 2, per-link part): every session
  /// idle; every Re rate equals Be; if Re ≠ ∅, every Fe rate < Be.
  [[nodiscard]] bool stable() const;

  /// Full internal-consistency audit against a naive reconstruction from
  /// the record map: the |Re|, Σ_{Re} w and Σ_{Fe} w·λ aggregates, weight
  /// validity, membership and λ keys of both ordered indexes (idle-Re and
  /// Fe), index ordering, and be().
  /// Returns an empty string when consistent, else a description of the
  /// first violation.  O(n log n); intended for the property harness
  /// (src/check/), not for per-packet paths.
  [[nodiscard]] std::string audit() const;

  /// Iterates (session, in_r, mu, lambda-level) for diagnostics/tests.
  template <class Fn>
  void for_each(Fn&& fn) const {
    recs_.for_each(
        [&fn](SessionId s, const Rec& r) { fn(s, r.in_r, r.mu, r.lambda); });
  }

 private:
  struct Rec {
    Mu mu = Mu::WaitingResponse;
    Rate lambda = 0;       // level (rate / weight)
    double weight = 1.0;   // max-min weight, > 0
    bool in_r = true;
    std::int32_t hop = 0;
  };
  using Index = RateIndex;

  // Hot per-packet accessors, inline on purpose.
  const Rec& rec(SessionId s) const {
    const Rec* r = recs_.find(s);
    BNECK_EXPECT(r != nullptr, "unknown session at link");
    return *r;
  }
  Rec& rec(SessionId s) {
    Rec* r = recs_.find(s);
    BNECK_EXPECT(r != nullptr, "unknown session at link");
    return *r;
  }

  Rate capacity_;
  // One lookup per packet per hop: the open-addressing map is the hot
  // container of the whole simulation (see base/flat_hash.hpp).
  FlatIdMap<SessionTag, Rec> recs_;
  Index idle_r_;  // (λ, s) for s ∈ Re with µ = IDLE (λ is a level)
  Index f_;       // (λ, s) for s ∈ Fe (λ is a level)
  std::size_t r_count_ = 0;
  // Σ_{Re} w.  With unit weights every add/subtract of 1.0 is exact, so
  // this equals r_count_ bit for bit and be() reproduces the unweighted
  // protocol's arithmetic unchanged.
  long double r_weight_ = 0;
  long double f_sum_ = 0;  // Σ_{Fe} w·λ; recomputed periodically to kill drift
  std::uint64_t f_mutations_ = 0;
};

}  // namespace bneck::core
