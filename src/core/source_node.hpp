// SourceNode task (paper Figure 3, generalized to per-session weights).
//
// One instance per active session, running at the session's source host.
// The source manages the session's first link e0 (its dedicated access
// link): it computes Ds = min(r, C_{e0})/w — the paper's modified-system
// transformation of the requested maximum rate, expressed as a *level*
// (rate per unit weight; see link_table.hpp) — starts Join/Probe cycles,
// deduplicates re-probe triggers (upd_rcv), recognizes stabilization
// (bneck_rcv), invokes API.Rate with the actual rate w·λ and launches
// SetBottleneck certification passes.  With w = 1 the level arithmetic
// is bit-identical to the paper's unweighted rates.
#pragma once

#include <functional>

#include "core/packet.hpp"
#include "core/router_link.hpp"

namespace bneck::core {

class SourceNode {
 public:
  /// rate_cb is API.Rate: invoked with the session's rate whenever the
  /// protocol (re)confirms it.
  using RateCallback = std::function<void(SessionId, Rate)>;

  /// Dedicated-access mode (paper Figure 3): `eta0` is the session's
  /// access link and `first_link_capacity` its bandwidth; `emit_hop` is
  /// 0 (the source transmits across the access link itself).
  ///
  /// Shared-access mode (extension): `eta0` is the invalid link (the
  /// initial restriction is the session's own request, not a link),
  /// capacity is infinite and `emit_hop` is -1 (the access link runs a
  /// RouterLink task; handoff to it is host-internal).
  /// `weight` is the session's max-min weight (> 0, finite); it rides on
  /// every Join/Probe the source emits.
  SourceNode(SessionId s, LinkId eta0, Rate first_link_capacity,
             std::int32_t emit_hop, Transport& transport,
             RateCallback rate_cb, double weight = 1.0)
      : s_(s),
        e0_(eta0),
        ce_(first_link_capacity),
        emit_hop_(emit_hop),
        weight_(weight),
        transport_(transport),
        rate_cb_(std::move(rate_cb)) {}

  SourceNode(const SourceNode&) = delete;
  SourceNode& operator=(const SourceNode&) = delete;

  // -- API primitives --
  void api_join(Rate requested);
  void api_leave();
  /// API.Change: new maximum-rate request; optionally also retunes the
  /// session's weight (announced to the links by the next Probe).
  void api_change(Rate requested);
  void api_change(Rate requested, double weight);

  // -- packet handlers (hop 0) --
  void on_update(const Packet& p);
  void on_bottleneck(const Packet& p);
  void on_response(const Packet& p);

  [[nodiscard]] SessionId session() const { return s_; }
  /// The modified-system restriction Ds — a level: min(requested, Ce)/w.
  [[nodiscard]] Rate ds() const { return ds_; }
  [[nodiscard]] Mu mu() const { return mu_; }
  /// Last accepted level λ^{e0}_s; the session's rate is weight()·lambda().
  [[nodiscard]] Rate lambda() const { return lambda_; }
  [[nodiscard]] double weight() const { return weight_; }
  [[nodiscard]] bool bottleneck_received() const { return bneck_rcv_; }
  /// Source-side stability: no probe cycle running or pending.
  [[nodiscard]] bool stable() const { return mu_ == Mu::Idle && !upd_rcv_; }

  /// The task's mutable scalars, as a copyable value (model-checker
  /// snapshot seam; the ctor-fixed identity — session, access link,
  /// capacity, emit hop — is re-supplied by whoever reconstructs the
  /// task).
  struct State {
    double weight;
    Rate ds;
    Mu mu;
    Rate lambda;
    bool in_f;
    bool upd_rcv;
    bool bneck_rcv;
  };
  [[nodiscard]] State state() const {
    return State{weight_, ds_, mu_, lambda_, in_f_, upd_rcv_, bneck_rcv_};
  }
  void restore_state(const State& st) {
    weight_ = st.weight;
    ds_ = st.ds;
    mu_ = st.mu;
    lambda_ = st.lambda;
    in_f_ = st.in_f;
    upd_rcv_ = st.upd_rcv;
    bneck_rcv_ = st.bneck_rcv;
  }

 private:
  void send_probe();
  void notify_and_certify();
  void start_change(Rate requested);

  SessionId s_;
  LinkId e0_;
  Rate ce_;
  std::int32_t emit_hop_ = 0;
  double weight_ = 1.0;         // max-min weight w_s

  Rate ds_ = 0;                 // min(requested, C_{e0}) / w  (a level)
  Mu mu_ = Mu::Idle;            // state of s at its first link
  Rate lambda_ = 0;             // λ^{e0}_s, last accepted level
  bool in_f_ = false;           // Fe = {s}?  (else Re = {s} while active)
  bool upd_rcv_ = false;        // re-probe required after current cycle
  bool bneck_rcv_ = false;      // rate already confirmed and certified

  Transport& transport_;
  RateCallback rate_cb_;
};

}  // namespace bneck::core
