// SourceNode task (paper Figure 3).
//
// One instance per active session, running at the session's source host.
// The source manages the session's first link e0 (its dedicated access
// link): it computes Ds = min(r, C_{e0}) — the paper's modified-system
// transformation of the requested maximum rate — starts Join/Probe
// cycles, deduplicates re-probe triggers (upd_rcv), recognizes
// stabilization (bneck_rcv), invokes API.Rate and launches SetBottleneck
// certification passes.
#pragma once

#include <functional>

#include "core/packet.hpp"
#include "core/router_link.hpp"

namespace bneck::core {

class SourceNode {
 public:
  /// rate_cb is API.Rate: invoked with the session's rate whenever the
  /// protocol (re)confirms it.
  using RateCallback = std::function<void(SessionId, Rate)>;

  /// Dedicated-access mode (paper Figure 3): `eta0` is the session's
  /// access link and `first_link_capacity` its bandwidth; `emit_hop` is
  /// 0 (the source transmits across the access link itself).
  ///
  /// Shared-access mode (extension): `eta0` is the invalid link (the
  /// initial restriction is the session's own request, not a link),
  /// capacity is infinite and `emit_hop` is -1 (the access link runs a
  /// RouterLink task; handoff to it is host-internal).
  SourceNode(SessionId s, LinkId eta0, Rate first_link_capacity,
             std::int32_t emit_hop, Transport& transport,
             RateCallback rate_cb)
      : s_(s),
        e0_(eta0),
        ce_(first_link_capacity),
        emit_hop_(emit_hop),
        transport_(transport),
        rate_cb_(std::move(rate_cb)) {}

  SourceNode(const SourceNode&) = delete;
  SourceNode& operator=(const SourceNode&) = delete;

  // -- API primitives --
  void api_join(Rate requested);
  void api_leave();
  void api_change(Rate requested);

  // -- packet handlers (hop 0) --
  void on_update(const Packet& p);
  void on_bottleneck(const Packet& p);
  void on_response(const Packet& p);

  [[nodiscard]] SessionId session() const { return s_; }
  [[nodiscard]] Rate ds() const { return ds_; }
  [[nodiscard]] Mu mu() const { return mu_; }
  [[nodiscard]] Rate lambda() const { return lambda_; }
  [[nodiscard]] bool bottleneck_received() const { return bneck_rcv_; }
  /// Source-side stability: no probe cycle running or pending.
  [[nodiscard]] bool stable() const { return mu_ == Mu::Idle && !upd_rcv_; }

 private:
  void send_probe();
  void notify_and_certify();

  SessionId s_;
  LinkId e0_;
  Rate ce_;
  std::int32_t emit_hop_ = 0;

  Rate ds_ = 0;                 // min(requested, C_{e0})
  Mu mu_ = Mu::Idle;            // state of s at its first link
  Rate lambda_ = 0;             // λ^{e0}_s, last accepted rate
  bool in_f_ = false;           // Fe = {s}?  (else Re = {s} while active)
  bool upd_rcv_ = false;        // re-probe required after current cycle
  bool bneck_rcv_ = false;      // rate already confirmed and certified

  Transport& transport_;
  RateCallback rate_cb_;
};

}  // namespace bneck::core
