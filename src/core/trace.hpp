// Observation hooks for experiments.
//
// The harness counts "every packet sent across a link" (paper Fig. 5
// right / Fig. 6 / Fig. 8) and samples rate notifications (Fig. 7), so
// the protocol reports both through this interface.  The default no-op
// implementations make partial observers cheap.
#pragma once

#include "base/ids.hpp"
#include "base/rate.hpp"
#include "base/time.hpp"
#include "core/packet.hpp"

namespace bneck::core {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A protocol packet was handed to a directed physical link.
  virtual void on_packet_sent(TimeNs /*t*/, const Packet& /*p*/,
                              LinkId /*physical_link*/) {}

  /// API.Rate(s, λ) was invoked.
  virtual void on_rate_notified(TimeNs /*t*/, SessionId /*s*/, Rate /*r*/) {}
};

}  // namespace bneck::core
