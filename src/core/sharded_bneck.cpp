#include "core/sharded_bneck.hpp"

#include <algorithm>

#include "base/expect.hpp"

namespace bneck::core {

namespace {
// Same dense-id discipline as BneckProtocol's slot table.
constexpr std::uint32_t kDenseIdLimit = 1u << 22;
}  // namespace

ShardedBneck::ShardedBneck(const net::Network& network, ShardedConfig config,
                           std::vector<TraceSink*> traces)
    : net_(network),
      cfg_(config),
      partition_(net::partition_network(
          network, {config.shards, config.balance_slack})) {
  BNECK_EXPECT(!cfg_.protocol.reliable_links &&
                   cfg_.protocol.loss_probability == 0.0,
               "sharded engine requires the loss-free wire");
  const auto shards = static_cast<std::size_t>(partition_.shard_count);
  BNECK_EXPECT(traces.empty() || traces.size() == shards,
               "need one trace sink per effective shard (or none)");

  sims_.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    sims_.push_back(std::make_unique<sim::Simulator>());
  }
  std::vector<sim::Simulator*> sim_ptrs;
  for (const auto& s : sims_) sim_ptrs.push_back(s.get());
  scheduler_ = std::make_unique<sim::ShardedScheduler<Packet>>(
      std::move(sim_ptrs),
      partition_.lookahead == kTimeNever ? kTimeNever : partition_.lookahead,
      [this](std::int32_t dst, TimeNs t, const Packet& p) {
        transports_[static_cast<std::size_t>(dst)]->deliver_inbound(t, p);
      });

  transports_.reserve(shards);
  protocols_.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    const auto shard = static_cast<std::int32_t>(k);
    transports_.push_back(std::make_unique<transport::ShardTransport>(
        *sims_[k], net_, partition_, shard, cfg_.protocol.wire(),
        [this, shard](std::int32_t dst, TimeNs t, const Packet& p) {
          scheduler_->post(shard, dst, t, p);
        }));
    protocols_.push_back(std::make_unique<BneckProtocol>(
        *transports_[k], net_, cfg_.protocol,
        traces.empty() ? nullptr : traces[k]));
  }
}

std::vector<std::int32_t> ShardedBneck::involved_shards(
    const net::Path& path) const {
  std::vector<std::int32_t> shards;
  for (const LinkId e : path.links) {
    shards.push_back(partition_.shard_of(net_.link(e).src));
  }
  shards.push_back(partition_.shard_of(net_.link(path.links.back()).dst));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

void ShardedBneck::schedule_join(TimeNs at, SessionId s, net::Path path,
                                 Rate demand, double weight) {
  BNECK_EXPECT(s.valid() &&
                   static_cast<std::uint32_t>(s.value()) < kDenseIdLimit,
               "sharded engine requires dense session ids");
  BNECK_EXPECT(path.links.size() >= 2, "path needs access links at both ends");
  const auto v = static_cast<std::size_t>(s.value());
  if (v >= id_home_.size()) id_home_.resize(v + 1, -1);
  BNECK_EXPECT(id_home_[v] < 0, "session ids are single-use (no re-join)");

  const std::int32_t home =
      partition_.shard_of(net_.link(path.links.front()).src);
  id_home_[v] = home;
  for (const std::int32_t k : involved_shards(path)) {
    if (k == home) continue;
    BneckProtocol* proto = protocols_[static_cast<std::size_t>(k)].get();
    sims_[static_cast<std::size_t>(k)]->schedule_at(
        at, [proto, s, path] { proto->register_remote(s, path); });
  }
  BneckProtocol* proto = protocols_[static_cast<std::size_t>(home)].get();
  sims_[static_cast<std::size_t>(home)]->schedule_at(
      at, [proto, s, path = std::move(path), demand, weight] {
        proto->join(s, path, demand, weight);
      });
}

void ShardedBneck::schedule_leave(TimeNs at, SessionId s) {
  const std::int32_t home = home_shard(s);
  BNECK_EXPECT(home >= 0, "leave of unknown session");
  BneckProtocol* proto = protocols_[static_cast<std::size_t>(home)].get();
  sims_[static_cast<std::size_t>(home)]->schedule_at(
      at, [proto, s] { proto->leave(s); });
}

void ShardedBneck::schedule_change(TimeNs at, SessionId s, Rate demand) {
  const std::int32_t home = home_shard(s);
  BNECK_EXPECT(home >= 0, "change of unknown session");
  BneckProtocol* proto = protocols_[static_cast<std::size_t>(home)].get();
  sims_[static_cast<std::size_t>(home)]->schedule_at(
      at, [proto, s, demand] { proto->change(s, demand); });
}

TimeNs ShardedBneck::run_until_idle() {
  scheduler_->run_until_idle();
  return now();
}

TimeNs ShardedBneck::now() const {
  TimeNs t = 0;
  for (const auto& s : sims_) t = std::max(t, s->now());
  return t;
}

std::int32_t ShardedBneck::home_shard(SessionId s) const {
  if (!s.valid()) return -1;
  const auto v = static_cast<std::size_t>(s.value());
  return v < id_home_.size() ? id_home_[v] : -1;
}

std::size_t ShardedBneck::active_sessions() const {
  std::size_t n = 0;
  for (const auto& p : protocols_) n += p->active_sessions();
  return n;
}

std::uint64_t ShardedBneck::packets_sent() const {
  std::uint64_t n = 0;
  for (const auto& p : protocols_) n += p->packets_sent();
  return n;
}

TimeNs ShardedBneck::last_packet_time() const {
  TimeNs t = 0;
  for (const auto& p : protocols_) t = std::max(t, p->last_packet_time());
  return t;
}

std::array<std::uint64_t, kPacketTypeCount> ShardedBneck::packets_by_type()
    const {
  std::array<std::uint64_t, kPacketTypeCount> total{};
  for (const auto& p : protocols_) {
    const auto& by_type = p->packets_by_type();
    for (std::size_t i = 0; i < by_type.size(); ++i) total[i] += by_type[i];
  }
  return total;
}

std::uint64_t ShardedBneck::total_probe_cycles() const {
  std::uint64_t n = 0;
  for (const auto& p : protocols_) n += p->total_probe_cycles();
  return n;
}

std::optional<Rate> ShardedBneck::notified_rate(SessionId s) const {
  const std::int32_t home = home_shard(s);
  if (home < 0) return std::nullopt;
  return protocols_[static_cast<std::size_t>(home)]->notified_rate(s);
}

std::vector<SessionSpec> ShardedBneck::active_specs() const {
  std::vector<SessionSpec> specs;
  for (const auto& p : protocols_) {
    const auto shard_specs = p->active_specs();
    specs.insert(specs.end(), shard_specs.begin(), shard_specs.end());
  }
  std::sort(specs.begin(), specs.end(),
            [](const SessionSpec& a, const SessionSpec& b) {
              return a.id < b.id;
            });
  return specs;
}

bool ShardedBneck::all_tasks_stable() const {
  for (const auto& p : protocols_) {
    if (!p->all_tasks_stable()) return false;
  }
  return true;
}

}  // namespace bneck::core
