#include "core/link_table.hpp"

#include <algorithm>
#include <limits>

namespace bneck::core {

namespace {
// Window for locating rate_eq-equal keys inside the ordered indexes.  It
// is slightly wider than kRateEps; candidates are then filtered with
// rate_eq itself, so the window only has to be a superset.
constexpr double kIndexWindow = 1e-7;

std::pair<Rate, Rate> window(Rate value) {
  const double pad = kIndexWindow * std::max(std::abs(value), 1.0);
  return {value - pad, value + pad};
}
}  // namespace

LinkSessionTable::LinkSessionTable(Rate capacity) : capacity_(capacity) {
  BNECK_EXPECT(capacity > 0, "link capacity must be positive");
}

const LinkSessionTable::Rec& LinkSessionTable::rec(SessionId s) const {
  const auto it = recs_.find(s);
  BNECK_EXPECT(it != recs_.end(), "unknown session at link");
  return it->second;
}

LinkSessionTable::Rec& LinkSessionTable::rec(SessionId s) {
  const auto it = recs_.find(s);
  BNECK_EXPECT(it != recs_.end(), "unknown session at link");
  return it->second;
}

Rate LinkSessionTable::be() const {
  if (r_count_ == 0) return kRateInfinity;
  return (capacity_ - static_cast<Rate>(f_sum_)) /
         static_cast<Rate>(r_count_);
}

void LinkSessionTable::index_remove(Index& idx, Rate lambda, SessionId s) {
  const auto it = idx.find({lambda, s});
  BNECK_EXPECT(it != idx.end(), "index entry missing");
  idx.erase(it);
}

void LinkSessionTable::insert_R(SessionId s, std::int32_t hop) {
  const bool inserted =
      recs_.try_emplace(s, Rec{Mu::WaitingResponse, 0, true, hop}).second;
  BNECK_EXPECT(inserted, "duplicate Join at link");
  ++r_count_;
}

void LinkSessionTable::erase(SessionId s) {
  const auto it = recs_.find(s);
  BNECK_EXPECT(it != recs_.end(), "erase of unknown session");
  const Rec& r = it->second;
  if (r.in_r) {
    if (r.mu == Mu::Idle) index_remove(idle_r_, r.lambda, s);
    --r_count_;
  } else {
    index_remove(f_, r.lambda, s);
    f_sum_ -= r.lambda;
    ++f_mutations_;
  }
  recs_.erase(it);
  // Long runs of joins/leaves accumulate floating drift in the running
  // Fe sum; rebuild it exactly every so often.
  if (f_.empty()) {
    f_sum_ = 0;
  } else if (f_mutations_ >= 65536) {
    f_mutations_ = 0;
    long double sum = 0;
    for (const auto& [lambda, sid] : f_) sum += lambda;
    f_sum_ = sum;
  }
}

void LinkSessionTable::move_to_R(SessionId s) {
  Rec& r = rec(s);
  BNECK_EXPECT(!r.in_r, "move_to_R: already in Re");
  index_remove(f_, r.lambda, s);
  f_sum_ -= r.lambda;
  ++f_mutations_;
  if (f_.empty()) f_sum_ = 0;
  r.in_r = true;
  ++r_count_;
  if (r.mu == Mu::Idle) idle_r_.insert({r.lambda, s});
}

void LinkSessionTable::move_to_F(SessionId s) {
  Rec& r = rec(s);
  BNECK_EXPECT(r.in_r, "move_to_F: not in Re");
  if (r.mu == Mu::Idle) index_remove(idle_r_, r.lambda, s);
  r.in_r = false;
  --r_count_;
  f_.insert({r.lambda, s});
  f_sum_ += r.lambda;
  ++f_mutations_;
}

void LinkSessionTable::set_mu(SessionId s, Mu m) {
  Rec& r = rec(s);
  if (r.mu == m) return;
  if (r.in_r && r.mu == Mu::Idle) index_remove(idle_r_, r.lambda, s);
  r.mu = m;
  if (r.in_r && r.mu == Mu::Idle) idle_r_.insert({r.lambda, s});
}

void LinkSessionTable::set_idle_with_lambda(SessionId s, Rate lambda) {
  Rec& r = rec(s);
  if (r.in_r && r.mu == Mu::Idle) index_remove(idle_r_, r.lambda, s);
  const bool was_f = !r.in_r;
  if (was_f) {
    index_remove(f_, r.lambda, s);
    f_sum_ -= r.lambda;
    ++f_mutations_;
  }
  r.lambda = lambda;
  r.mu = Mu::Idle;
  if (r.in_r) {
    idle_r_.insert({lambda, s});
  } else {
    f_.insert({lambda, s});
    f_sum_ += lambda;
  }
}

bool LinkSessionTable::all_R_idle_at_be() const {
  if (r_count_ == 0 || idle_r_.size() != r_count_) return false;
  const Rate b = be();
  return rate_eq(idle_r_.begin()->first, b) &&
         rate_eq(idle_r_.rbegin()->first, b);
}

bool LinkSessionTable::exists_F_ge_be() const {
  return !f_.empty() && rate_ge(f_.rbegin()->first, be());
}

Rate LinkSessionTable::max_F_lambda() const {
  BNECK_EXPECT(!f_.empty(), "max over empty Fe");
  return f_.rbegin()->first;
}

std::vector<SessionId> LinkSessionTable::F_at(Rate value) const {
  std::vector<SessionId> out;
  const auto [lo, hi] = window(value);
  for (auto it = f_.lower_bound({lo, SessionId{}});
       it != f_.end() && it->first <= hi; ++it) {
    if (rate_eq(it->first, value)) out.push_back(it->second);
  }
  return out;
}

std::vector<SessionId> LinkSessionTable::idle_R_above(Rate threshold) const {
  std::vector<SessionId> out;
  const auto [lo, hi] = window(threshold);
  (void)hi;
  for (auto it = idle_r_.lower_bound({lo, SessionId{}}); it != idle_r_.end();
       ++it) {
    if (rate_gt(it->first, threshold)) out.push_back(it->second);
  }
  return out;
}

std::vector<SessionId> LinkSessionTable::idle_R_at(Rate value,
                                                   SessionId exclude) const {
  std::vector<SessionId> out;
  if (r_count_ == 0) return out;
  const auto [lo, hi] = window(value);
  for (auto it = idle_r_.lower_bound({lo, SessionId{}});
       it != idle_r_.end() && it->first <= hi; ++it) {
    if (it->second != exclude && rate_eq(it->first, value)) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::vector<SessionId> LinkSessionTable::idle_R_all(SessionId exclude) const {
  std::vector<SessionId> out;
  out.reserve(idle_r_.size());
  for (const auto& [lambda, s] : idle_r_) {
    if (s != exclude) out.push_back(s);
  }
  return out;
}

bool LinkSessionTable::stable() const {
  const Rate b = be();
  for (const auto& [s, r] : recs_) {
    if (r.mu != Mu::Idle) return false;
    if (r.in_r && !rate_eq(r.lambda, b)) return false;
    if (!r.in_r && r_count_ > 0 && !rate_lt(r.lambda, b)) return false;
  }
  return true;
}

}  // namespace bneck::core
