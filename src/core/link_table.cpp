#include "core/link_table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace bneck::core {

namespace {
// Window for locating rate_eq-equal keys inside the ordered indexes.  It
// is slightly wider than kRateEps; candidates are then filtered with
// rate_eq itself, so the window only has to be a superset.
constexpr double kIndexWindow = 1e-7;

std::pair<Rate, Rate> window(Rate value) {
  const double pad = kIndexWindow * std::max(std::abs(value), 1.0);
  return {value - pad, value + pad};
}
}  // namespace

LinkSessionTable::LinkSessionTable(Rate capacity) : capacity_(capacity) {
  BNECK_EXPECT(capacity > 0, "link capacity must be positive");
}

LinkSessionTable::SessionHandle LinkSessionTable::insert_R(SessionId s,
                                                           std::int32_t hop,
                                                           double weight) {
  BNECK_EXPECT(weight > 0 && std::isfinite(weight),
               "session weight must be positive and finite");
  const auto [slot, inserted] =
      recs_.try_emplace(s, Rec{Mu::WaitingResponse, 0, weight, true, hop});
  BNECK_EXPECT(inserted, "duplicate Join at link");
  ++r_count_;
  r_weight_ += weight;
  // Epoch read after the insert: a rehash inside try_emplace bumps it.
  return SessionHandle{slot, recs_.epoch(), s};
}

void LinkSessionTable::set_weight(SessionHandle& h, double weight) {
  Rec& r = rec_mut(h);
  if (r.weight == weight) return;
  BNECK_EXPECT(weight > 0 && std::isfinite(weight),
               "session weight must be positive and finite");
  if (r.in_r) {
    r_weight_ -= r.weight;
    r_weight_ += weight;
  } else {
    f_sum_ -= r.weight * r.lambda;
    f_sum_ += weight * r.lambda;
    ++f_mutations_;
  }
  r.weight = weight;
}

void LinkSessionTable::erase(SessionHandle& h) {
  const Rec r = rec(h);  // copy: recs_.erase below moves slots
  const SessionId s = h.id();
  if (r.in_r) {
    if (r.mu == Mu::Idle) idle_r_.erase(r.lambda, s);
    --r_count_;
    r_weight_ -= r.weight;
    if (r_count_ == 0) r_weight_ = 0;
  } else {
    f_.erase(r.lambda, s);
    f_sum_ -= r.weight * r.lambda;
    ++f_mutations_;
  }
  recs_.erase(s);  // frees the slab slot; h and its copies are dead now
  // Long runs of joins/leaves accumulate floating drift in the running
  // Fe sum; rebuild it exactly every so often.  (The λ keys in f_ are
  // levels, so the exact sum needs each member's weight back.)
  if (f_.empty()) {
    f_sum_ = 0;
  } else if (f_mutations_ >= 65536) {
    f_mutations_ = 0;
    long double sum = 0;
    f_.for_each([this, &sum](Rate lambda, SessionId member) {
      SessionHandle m = checked(member);
      sum += rec(m).weight * lambda;
    });
    f_sum_ = sum;
  }
}

void LinkSessionTable::move_to_R(SessionHandle& h) {
  Rec& r = rec_mut(h);
  BNECK_EXPECT(!r.in_r, "move_to_R: already in Re");
  f_.erase(r.lambda, h.id());
  f_sum_ -= r.weight * r.lambda;
  ++f_mutations_;
  if (f_.empty()) f_sum_ = 0;
  r.in_r = true;
  ++r_count_;
  r_weight_ += r.weight;
  if (r.mu == Mu::Idle) idle_r_.insert(r.lambda, h.id());
}

void LinkSessionTable::move_to_F(SessionHandle& h) {
  Rec& r = rec_mut(h);
  BNECK_EXPECT(r.in_r, "move_to_F: not in Re");
  if (r.mu == Mu::Idle) idle_r_.erase(r.lambda, h.id());
  r.in_r = false;
  --r_count_;
  r_weight_ -= r.weight;
  if (r_count_ == 0) r_weight_ = 0;
  f_.insert(r.lambda, h.id());
  f_sum_ += r.weight * r.lambda;
  ++f_mutations_;
}

void LinkSessionTable::set_mu(SessionHandle& h, Mu m) {
  Rec& r = rec_mut(h);
  if (r.mu == m) return;
  if (r.in_r && r.mu == Mu::Idle) idle_r_.erase(r.lambda, h.id());
  r.mu = m;
  if (r.in_r && r.mu == Mu::Idle) idle_r_.insert(r.lambda, h.id());
}

void LinkSessionTable::set_idle_with_lambda(SessionHandle& h, Rate lambda) {
  Rec& r = rec_mut(h);
  if (r.in_r && r.mu == Mu::Idle) idle_r_.erase(r.lambda, h.id());
  const bool was_f = !r.in_r;
  if (was_f) {
    f_.erase(r.lambda, h.id());
    f_sum_ -= r.weight * r.lambda;
    ++f_mutations_;
  }
  r.lambda = lambda;
  r.mu = Mu::Idle;
  if (r.in_r) {
    idle_r_.insert(lambda, h.id());
  } else {
    f_.insert(lambda, h.id());
    f_sum_ += r.weight * lambda;
  }
}

bool LinkSessionTable::all_R_idle_at_be() const {
  if (r_count_ == 0 || idle_r_.size() != r_count_) return false;
  const Rate b = be();
  return rate_eq(idle_r_.min_rate(), b) && rate_eq(idle_r_.max_rate(), b);
}

bool LinkSessionTable::exists_F_ge_be() const {
  return !f_.empty() && rate_ge(f_.max_rate(), be());
}

Rate LinkSessionTable::max_F_lambda() const {
  BNECK_EXPECT(!f_.empty(), "max over empty Fe");
  return f_.max_rate();
}

template <class Out>
void LinkSessionTable::F_at_impl(Rate value, Out& out) const {
  out.clear();
  const auto [lo, hi] = window(value);
  f_.for_window(lo, hi, [&](Rate r, SessionId s) {
    if (rate_eq(r, value)) emit(s, out);
  });
}

template <class Out>
void LinkSessionTable::idle_R_above_impl(Rate threshold, Out& out) const {
  out.clear();
  const auto [lo, hi] = window(threshold);
  (void)hi;
  idle_r_.for_from(lo, [&](Rate r, SessionId s) {
    if (rate_gt(r, threshold)) emit(s, out);
  });
}

template <class Out>
void LinkSessionTable::idle_R_at_impl(Rate value, SessionId exclude,
                                      Out& out) const {
  out.clear();
  if (r_count_ == 0) return;
  const auto [lo, hi] = window(value);
  idle_r_.for_window(lo, hi, [&](Rate r, SessionId s) {
    if (s != exclude && rate_eq(r, value)) emit(s, out);
  });
}

template <class Out>
void LinkSessionTable::idle_R_all_impl(SessionId exclude, Out& out) const {
  out.clear();
  out.reserve(idle_r_.size());
  idle_r_.for_each([&](Rate, SessionId s) {
    if (s != exclude) emit(s, out);
  });
}

void LinkSessionTable::F_at(Rate value,
                            std::vector<SessionHandle>& out) const {
  F_at_impl(value, out);
}

void LinkSessionTable::F_at(Rate value, std::vector<SessionId>& out) const {
  F_at_impl(value, out);
}

void LinkSessionTable::idle_R_above(Rate threshold,
                                    std::vector<SessionHandle>& out) const {
  idle_R_above_impl(threshold, out);
}

void LinkSessionTable::idle_R_above(Rate threshold,
                                    std::vector<SessionId>& out) const {
  idle_R_above_impl(threshold, out);
}

void LinkSessionTable::idle_R_at(Rate value, SessionId exclude,
                                 std::vector<SessionHandle>& out) const {
  idle_R_at_impl(value, exclude, out);
}

void LinkSessionTable::idle_R_at(Rate value, SessionId exclude,
                                 std::vector<SessionId>& out) const {
  idle_R_at_impl(value, exclude, out);
}

void LinkSessionTable::idle_R_all(SessionId exclude,
                                  std::vector<SessionHandle>& out) const {
  idle_R_all_impl(exclude, out);
}

void LinkSessionTable::idle_R_all(SessionId exclude,
                                  std::vector<SessionId>& out) const {
  idle_R_all_impl(exclude, out);
}

std::string LinkSessionTable::audit() const {
  std::ostringstream err;
  const auto fail = [&err](auto&&... parts) {
    ((err << parts), ...);
    return err.str();
  };

  // The record map's own probe-chain reachability must be intact before
  // anything built on top of find() can be trusted.
  if (const std::string e = recs_.audit(); !e.empty()) {
    return fail("record map: ", e);
  }

  // Naive reconstruction of every aggregate and index from recs_ alone.
  // Along the way, cross-validate the handle path against the id path:
  // a fresh find() must resolve every iterated record to itself.
  std::size_t naive_r = 0;
  long double naive_r_weight = 0;
  long double naive_f_sum = 0;
  std::vector<std::pair<Rate, SessionId>> naive_idle_r;
  std::vector<std::pair<Rate, SessionId>> naive_f;
  bool bad_rec = false;
  std::ostringstream bad_rec_what;
  recs_.for_each([&](SessionId s, const Rec& r) {
    if (r.in_r) {
      ++naive_r;
      naive_r_weight += r.weight;
      if (r.mu == Mu::Idle) naive_idle_r.emplace_back(r.lambda, s);
    } else {
      naive_f_sum += r.weight * r.lambda;
      naive_f.emplace_back(r.lambda, s);
    }
    if (std::isnan(r.lambda) || r.lambda < 0) {
      bad_rec = true;
      bad_rec_what << "session " << s << " has invalid lambda " << r.lambda;
    }
    if (!(r.weight > 0) || !std::isfinite(r.weight)) {
      bad_rec = true;
      bad_rec_what << "session " << s << " has invalid weight " << r.weight;
    }
    if (const SessionHandle h = find(s); h.rec_ != &r) {
      bad_rec = true;
      bad_rec_what << "handle path for session " << s
                   << " resolves to a different record than the id path";
    }
  });
  if (bad_rec) return fail("record: ", bad_rec_what.str());
  if (naive_r != r_count_) {
    return fail("|Re| aggregate ", r_count_, " != naive count ", naive_r);
  }
  const auto naive_rw = static_cast<Rate>(naive_r_weight);
  const Rate w_tol = 1e-9 * std::max(1.0, std::fabs(naive_rw));
  if (std::fabs(static_cast<Rate>(r_weight_) - naive_rw) > w_tol) {
    return fail("sum_R weight aggregate ", static_cast<Rate>(r_weight_),
                " != naive sum ", naive_rw);
  }
  const auto naive_sum = static_cast<Rate>(naive_f_sum);
  const Rate tol =
      1e-6 * std::max({1.0, std::fabs(naive_sum), std::fabs(capacity_)});
  if (std::fabs(static_cast<Rate>(f_sum_) - naive_sum) > tol) {
    return fail("sum_F aggregate ", static_cast<Rate>(f_sum_),
                " != naive sum ", naive_sum);
  }

  // Each ordered index must hold exactly the naive (λ, s) multiset, with
  // exact (not tolerant) λ keys, in (rate, id) iteration order.
  const auto check_index = [&](const Index& index, const char* name,
                               std::vector<std::pair<Rate, SessionId>> want)
      -> std::string {
    std::sort(want.begin(), want.end());
    std::vector<std::pair<Rate, SessionId>> got;
    got.reserve(index.size());
    index.for_each([&got](Rate l, SessionId s) { got.emplace_back(l, s); });
    if (got.size() != index.size()) {
      return fail(name, ": size() ", index.size(), " != iterated ",
                  got.size());
    }
    if (!std::is_sorted(got.begin(), got.end())) {
      return fail(name, ": iteration out of (rate, id) order");
    }
    if (got != want) {
      return fail(name, ": holds ", got.size(), " entries, naive model has ",
                  want.size(), got != want && got.size() == want.size()
                                   ? " (same size, different content)"
                                   : "");
    }
    return std::string();
  };
  if (auto e = check_index(idle_r_, "idle-Re index", std::move(naive_idle_r));
      !e.empty()) {
    return e;
  }
  if (auto e = check_index(f_, "Fe index", std::move(naive_f)); !e.empty()) {
    return e;
  }

  // be() must match the naive formula on the audited aggregates.
  const Rate naive_be =
      naive_r == 0 ? kRateInfinity : (capacity_ - naive_sum) / naive_rw;
  if (std::isinf(naive_be) != std::isinf(be()) ||
      (!std::isinf(naive_be) &&
       std::fabs(be() - naive_be) >
           1e-9 * std::max(1.0, std::fabs(naive_be)))) {
    return fail("be() ", be(), " != naive ", naive_be);
  }
  return std::string();
}

LinkSessionTable::Snapshot LinkSessionTable::snapshot() const {
  Snapshot snap;
  snap.rows.reserve(recs_.size());
  recs_.for_each([&snap](SessionId s, const Rec& r) {
    snap.rows.push_back(
        Snapshot::Row{s, r.mu, r.lambda, r.weight, r.in_r, r.hop});
  });
  std::sort(snap.rows.begin(), snap.rows.end(),
            [](const Snapshot::Row& a, const Snapshot::Row& b) {
              return a.s.value() < b.s.value();
            });
  snap.r_count = r_count_;
  snap.r_weight = r_weight_;
  snap.f_sum = f_sum_;
  snap.f_mutations = f_mutations_;
  return snap;
}

void LinkSessionTable::restore(const Snapshot& snap) {
  recs_.clear();
  idle_r_ = Index();
  f_ = Index();
  for (const Snapshot::Row& row : snap.rows) {
    const auto [slot, inserted] = recs_.try_emplace(
        row.s, Rec{row.mu, row.lambda, row.weight, row.in_r, row.hop});
    (void)slot;
    BNECK_EXPECT(inserted, "duplicate session in table snapshot");
    if (row.in_r) {
      if (row.mu == Mu::Idle) idle_r_.insert(row.lambda, row.s);
    } else {
      f_.insert(row.lambda, row.s);
    }
  }
  // Aggregates verbatim, NOT recomputed: the live table carries them
  // incrementally, and a restored run must continue with bit-identical
  // arithmetic (be() comparisons are exact).
  r_count_ = snap.r_count;
  r_weight_ = snap.r_weight;
  f_sum_ = snap.f_sum;
  f_mutations_ = snap.f_mutations;
}

std::string LinkSessionTable::audit_handle(SessionHandle h) const {
  if (!h.valid()) return "null handle";
  std::ostringstream err;
  const SessionHandle fresh = find(h.id());
  if (!fresh.valid()) {
    err << "handle for session " << h.id()
        << " which the table no longer contains";
    return err.str();
  }
  if (h.epoch_ == recs_.epoch() && fresh.rec_ != h.rec_) {
    // Same epoch means no slot can have moved, so a pointer mismatch is
    // real desynchronization, not a pending (legal) revalidation.
    err << "handle for session " << h.id()
        << " desynced: same epoch but a fresh lookup resolves to a "
        << "different record";
    return err.str();
  }
  return std::string();
}

bool LinkSessionTable::stable() const {
  const Rate b = be();
  return recs_.all_of([&](SessionId, const Rec& r) {
    if (r.mu != Mu::Idle) return false;
    if (r.in_r && !rate_eq(r.lambda, b)) return false;
    if (!r.in_r && r_count_ > 0 && !rate_lt(r.lambda, b)) return false;
    return true;
  });
}

}  // namespace bneck::core
