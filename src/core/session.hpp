// Session model.
//
// A session is a single-path flow from a source host to a destination
// host with an optional maximum requested rate (its *demand*, the r in
// API.Join(s, r)); demand defaults to unlimited.  Paths are fixed at join
// time, as in the paper (§II).
#pragma once

#include "base/ids.hpp"
#include "base/rate.hpp"
#include "net/routing.hpp"

namespace bneck::core {

struct SessionSpec {
  SessionId id;
  net::Path path;                 // source access link ... destination access link
  Rate demand = kRateInfinity;    // maximum requested rate r_s

  /// Weighted max-min extension (Hou et al. [12] direction; centralized
  /// solvers only — the distributed protocol implements the paper's
  /// unweighted criterion).  A session with weight w receives w times
  /// the share of an equal competitor at every common bottleneck.
  double weight = 1.0;

  [[nodiscard]] LinkId first_link() const { return path.links.front(); }
};

}  // namespace bneck::core
