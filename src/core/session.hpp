// Session model.
//
// A session is a single-path flow from a source host to a destination
// host with an optional maximum requested rate (its *demand*, the r in
// API.Join(s, r)) and a max-min weight; demand defaults to unlimited and
// weight to 1.  Paths are fixed at join time, as in the paper (§II).
//
// SessionSpec doubles as the input record of the centralized solvers
// (core/maxmin.hpp) and as the snapshot the protocols return from
// active_specs() — the two must agree field for field so protocol runs
// can be validated against the solvers.
//
// Units: demand in Mbps (net::Link capacity units); weight is a
// dimensionless positive finite factor.
#pragma once

#include "base/ids.hpp"
#include "base/rate.hpp"
#include "net/routing.hpp"

namespace bneck::core {

struct SessionSpec {
  SessionId id;
  net::Path path;                 // source access link ... destination access link
  Rate demand = kRateInfinity;    // maximum requested rate r_s

  /// Weighted max-min extension (Hou et al. [12] direction), honored by
  /// the centralized solvers AND the distributed B-Neck protocol.  A
  /// session with weight w receives w times the share of an equal
  /// competitor at every common bottleneck.  Must be > 0 and finite.
  double weight = 1.0;

  [[nodiscard]] LinkId first_link() const { return path.links.front(); }
};

}  // namespace bneck::core
