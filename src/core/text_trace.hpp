// Human-readable protocol trace.
//
// A TraceSink that renders every packet crossing and every API.Rate
// notification as one line on an ostream — the tool to reach for when a
// convergence looks wrong:
//
//   12.340us  Join        s=3  link=17  lambda=100.00 eta=2
//   24.680us  Response    s=3  link=16  tau=BOTTLENECK lambda=33.33 eta=9
//   24.680us  API.Rate    s=3  rate=33.33
//
// Optionally filtered to one session.  Intended for small scenarios
// (every crossing is a line); combine with PacketBinner for statistics.
#pragma once

#include <ostream>

#include "core/trace.hpp"

namespace bneck::core {

class TextTracer final : public TraceSink {
 public:
  /// Traces everything, or only `only` when it is a valid id.
  explicit TextTracer(std::ostream& os, SessionId only = SessionId{})
      : os_(os), only_(only) {}

  void on_packet_sent(TimeNs t, const Packet& p, LinkId physical) override {
    if (only_.valid() && p.session != only_) return;
    os_ << format_time(t) << "  " << packet_type_name(p.type)
        << "  s=" << p.session << "  link=" << physical
        << "  hop=" << p.hop;
    switch (p.type) {
      case PacketType::Join:
      case PacketType::Probe:
        os_ << "  lambda=" << format_rate(p.lambda) << "  eta=" << p.eta;
        break;
      case PacketType::Response:
        os_ << "  tau="
            << (p.tag == ResponseTag::Response     ? "RESPONSE"
                : p.tag == ResponseTag::Update     ? "UPDATE"
                                                   : "BOTTLENECK")
            << "  lambda=" << format_rate(p.lambda) << "  eta=" << p.eta;
        break;
      case PacketType::SetBottleneck:
        os_ << "  beta=" << (p.beta ? "true" : "false");
        break;
      default:
        break;
    }
    os_ << '\n';
    ++lines_;
  }

  void on_rate_notified(TimeNs t, SessionId s, Rate r) override {
    if (only_.valid() && s != only_) return;
    os_ << format_time(t) << "  API.Rate  s=" << s
        << "  rate=" << format_rate(r) << '\n';
    ++lines_;
  }

  [[nodiscard]] std::uint64_t lines() const { return lines_; }

 private:
  std::ostream& os_;
  SessionId only_;
  std::uint64_t lines_ = 0;
};

}  // namespace bneck::core
