// RouterLink task (paper Figure 2, generalized to per-session weights).
//
// One instance runs per directed link that carries at least one session,
// at the link's tail router.  It reacts to the seven protocol packets,
// maintains the per-link session table, detects the bottleneck condition
// (all Re sessions idle at level Be) and originates Update/Bottleneck
// packets when convergence conditions change.
//
// All rate arithmetic happens in weight-normalized *level* space (λ/w;
// see link_table.hpp): the handlers below are literally the paper's
// pseudocode with "rate" read as "level", and with unit weights the two
// coincide.  The only weight-aware steps are learning w from Join,
// refreshing it from Probe, and the table's Be denominator.
//
// The task is transport-agnostic: it emits packets through the Transport
// interface, which the protocol binding (bneck.hpp) implements on top of
// the discrete-event simulator.
#pragma once

#include <vector>

#include "core/link_table.hpp"
#include "core/packet.hpp"

namespace bneck::core {

/// How tasks hand packets to the network.  `from_hop` is the hop index of
/// the emitting task in the packet's session path; the transport computes
/// the physical link, its delay, and the receiving task.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send_downstream(Packet p, std::int32_t from_hop) = 0;
  virtual void send_upstream(Packet p, std::int32_t from_hop) = 0;
};

class RouterLink {
 public:
  /// `fault_single_kick` enables the documented harness-validation
  /// mutation (BneckConfig::fault_single_kick): kick batches re-probe
  /// only their first session.
  RouterLink(LinkId id, Rate capacity, Transport& transport,
             bool fault_single_kick = false)
      : id_(id),
        table_(capacity),
        transport_(transport),
        fault_single_kick_(fault_single_kick) {}

  RouterLink(const RouterLink&) = delete;
  RouterLink& operator=(const RouterLink&) = delete;

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] const LinkSessionTable& table() const { return table_; }
  [[nodiscard]] bool stable() const { return table_.stable(); }

  // Packet handlers; `hop` is this link's hop index in p.session's path.
  void on_join(const Packet& p, std::int32_t hop);
  void on_probe(const Packet& p, std::int32_t hop);
  void on_response(const Packet& p, std::int32_t hop);
  void on_update(const Packet& p, std::int32_t hop);
  void on_bottleneck(const Packet& p, std::int32_t hop);
  void on_set_bottleneck(const Packet& p, std::int32_t hop);
  void on_leave(const Packet& p, std::int32_t hop);

 private:
  /// Figure 2 lines 4-10: pull sessions whose recorded rate reached Be
  /// back from Fe into Re, then trigger a re-probe (Update) for every
  /// idle Re session whose rate now exceeds Be.
  void process_new_restricted();

  /// Emits Update(s) upstream from this link and marks s WAITING_PROBE.
  void kick(SessionId s);

  /// kick() for every session in `batch` — or only the first when the
  /// fault_single_kick mutation is armed.
  void kick_batch(const std::vector<SessionId>& batch);

  LinkId id_;
  LinkSessionTable table_;
  Transport& transport_;
  bool fault_single_kick_;
  // Reused buffer for the table's set-valued queries; the handlers never
  // overlap two live query results, and packet handling is synchronous
  // (emitted packets are delivered by later simulator events), so one
  // buffer per link suffices and saves an allocation per query.
  std::vector<SessionId> scratch_;
};

}  // namespace bneck::core
