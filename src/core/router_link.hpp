// RouterLink task (paper Figure 2, generalized to per-session weights).
//
// One instance runs per directed link that carries at least one session,
// at the link's tail router.  It reacts to the seven protocol packets,
// maintains the per-link session table, detects the bottleneck condition
// (all Re sessions idle at level Be) and originates Update/Bottleneck
// packets when convergence conditions change.
//
// Dispatch contract (handle-oriented): each handler resolves the
// packet's session in its link table exactly once —
// LinkSessionTable::find() — and threads the resulting SessionHandle
// through every predicate, mutation and helper (ProcessNewRestricted,
// kick batches).  The set-valued table queries return handles too, so a
// kick batch re-probes its victims without further hash lookups (after
// an erase, at most one re-probe per handle: handles revalidate against
// the record map's epoch).  Handles stay usable for the whole handler
// run; the only mutation that kills one is the erase of its own session
// (on_leave).
//
// All rate arithmetic happens in weight-normalized *level* space (λ/w;
// see link_table.hpp): the handlers below are literally the paper's
// pseudocode with "rate" read as "level", and with unit weights the two
// coincide.  The only weight-aware steps are learning w from Join,
// refreshing it from Probe, and the table's Be denominator.
//
// The task is transport-agnostic: it emits packets through the Transport
// interface, which the protocol binding (bneck.hpp) implements on top of
// the discrete-event simulator.  Tasks are arena-allocated by the
// protocol (base/slab.hpp) and must stay address-stable: RouterLink is
// deliberately non-copyable and non-movable.
#pragma once

#include <vector>

#include "core/link_table.hpp"
#include "core/packet.hpp"

namespace bneck::core {

/// How tasks hand packets to the network.  `from_hop` is the hop index of
/// the emitting task in the packet's session path; the transport computes
/// the physical link, its delay, and the receiving task.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send_downstream(Packet p, std::int32_t from_hop) = 0;
  virtual void send_upstream(Packet p, std::int32_t from_hop) = 0;
};

class RouterLink {
 public:
  using SessionHandle = LinkSessionTable::SessionHandle;

  /// `fault_single_kick` enables the documented harness-validation
  /// mutation (BneckConfig::fault_single_kick): kick batches re-probe
  /// only their first session.
  RouterLink(LinkId id, Rate capacity, Transport& transport,
             bool fault_single_kick = false)
      : id_(id),
        table_(capacity),
        transport_(transport),
        fault_single_kick_(fault_single_kick) {}

  RouterLink(const RouterLink&) = delete;
  RouterLink& operator=(const RouterLink&) = delete;

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] const LinkSessionTable& table() const { return table_; }
  [[nodiscard]] bool stable() const { return table_.stable(); }

  /// Rewinds the session table to a snapshot (model-checker restore
  /// seam; the scratch buffer is transient between handler runs and
  /// needs no capture).
  void restore_table(const LinkSessionTable::Snapshot& snap) {
    table_.restore(snap);
  }

  // Packet handlers; `hop` is this link's hop index in p.session's path.
  // Each resolves p.session to a handle once, up front.
  void on_join(const Packet& p, std::int32_t hop);
  void on_probe(const Packet& p, std::int32_t hop);
  void on_response(const Packet& p, std::int32_t hop);
  void on_update(const Packet& p, std::int32_t hop);
  void on_bottleneck(const Packet& p, std::int32_t hop);
  void on_set_bottleneck(const Packet& p, std::int32_t hop);
  void on_leave(const Packet& p, std::int32_t hop);

 private:
  /// Figure 2 lines 4-10: pull sessions whose recorded rate reached Be
  /// back from Fe into Re, then trigger a re-probe (Update) for every
  /// idle Re session whose rate now exceeds Be.
  void process_new_restricted();

  /// Emits Update upstream from this link and marks the session
  /// WAITING_PROBE — all through the already-resolved handle.
  void kick(SessionHandle& h);

  /// kick() for every session in `batch` — or only the first when the
  /// fault_single_kick mutation is armed.
  void kick_batch(std::vector<SessionHandle>& batch);

  LinkId id_;
  LinkSessionTable table_;
  Transport& transport_;
  bool fault_single_kick_;
  // Reused buffer for the table's set-valued queries (pre-resolved
  // handles); the handlers never overlap two live query results, and
  // packet handling is synchronous (emitted packets are delivered by
  // later simulator events), so one buffer per link suffices and saves
  // an allocation per query.
  std::vector<SessionHandle> scratch_;
};

}  // namespace bneck::core
