#include "core/router_link.hpp"

namespace bneck::core {

void RouterLink::kick(SessionHandle& h) {
  table_.set_mu(h, Mu::WaitingProbe);
  Packet u;
  u.type = PacketType::Update;
  u.session = h.id();
  transport_.send_upstream(u, table_.hop(h));
}

void RouterLink::kick_batch(std::vector<SessionHandle>& batch) {
  for (SessionHandle& h : batch) {
    kick(h);
    if (fault_single_kick_) break;  // harness-validation mutation
  }
}

void RouterLink::process_new_restricted() {
  // while ∃s ∈ Fe : λes ≥ Be — move the maximal-rate Fe sessions to Re.
  while (table_.f_size() > 0 && table_.exists_F_ge_be()) {
    table_.F_at(table_.max_F_lambda(), scratch_);
    for (SessionHandle& r : scratch_) {
      table_.move_to_R(r);
    }
  }
  // foreach s ∈ Re : µ = IDLE ∧ λes > Be — their rate must shrink.
  table_.idle_R_above(table_.be(), scratch_);
  kick_batch(scratch_);
}

void RouterLink::on_join(const Packet& p, std::int32_t hop) {
  table_.insert_R(p.session, hop, p.weight);
  process_new_restricted();
  Packet q = p;
  const Rate be = table_.be();
  if (rate_gt(q.lambda, be)) {
    q.lambda = be;
    q.eta = id_;
  }
  transport_.send_downstream(q, hop);
}

void RouterLink::on_probe(const Packet& p, std::int32_t hop) {
  // A Probe can only follow the session's Join on the same FIFO path, so
  // the session is known here — `h` is live for the whole handler.  The
  // probe re-announces the weight; API.Change may have retuned it, which
  // moves this link's Be — a case the paper's pseudocode (fixed weights)
  // never faces.  Handle it like the other Be shifts: sessions idle at
  // the pre-change Be may deserve more if Be rises (cf. Leave), and
  // ProcessNewRestricted below re-probes whoever sits above the
  // post-change Be if it falls.
  SessionHandle h = table_.find(p.session);
  const bool reweighted = table_.weight(h) != p.weight;
  if (reweighted) {
    table_.idle_R_at(table_.be(), p.session, scratch_);
    table_.set_weight(h, p.weight);
    kick_batch(scratch_);
  }
  table_.set_mu(h, Mu::WaitingResponse);
  if (!table_.in_R(h)) {
    table_.move_to_R(h);
    process_new_restricted();
  } else if (reweighted) {
    process_new_restricted();
  }
  Packet q = p;
  const Rate be = table_.be();
  if (rate_gt(q.lambda, be)) {
    q.lambda = be;
    q.eta = id_;
  }
  transport_.send_downstream(q, hop);
}

void RouterLink::on_response(const Packet& p, std::int32_t hop) {
  SessionHandle h = table_.find(p.session);
  if (!h.valid()) return;  // session left; Leave overtook us
  Packet q = p;
  if (q.tag == ResponseTag::Update) {
    table_.set_mu(h, Mu::WaitingProbe);
  } else {
    const Rate be = table_.be();
    const bool restricting_here = q.eta == id_;
    if ((restricting_here && rate_eq(q.lambda, be)) ||
        (!restricting_here && rate_le(q.lambda, be))) {
      table_.set_idle_with_lambda(h, q.lambda);
    } else {
      // (η = e ∧ λ < Be) ∨ (λ > Be): the link's conditions moved while
      // the probe was in flight; the cycle's result is stale.
      q.tag = ResponseTag::Update;
      table_.set_mu(h, Mu::WaitingProbe);
    }
    if (table_.all_R_idle_at_be()) {
      q.tag = ResponseTag::Bottleneck;
      q.eta = id_;
      table_.idle_R_all(q.session, scratch_);
      for (SessionHandle& r : scratch_) {
        Packet b;
        b.type = PacketType::Bottleneck;
        b.session = r.id();
        transport_.send_upstream(b, table_.hop(r));
      }
    }
  }
  transport_.send_upstream(q, hop);
}

void RouterLink::on_update(const Packet& p, std::int32_t hop) {
  SessionHandle h = table_.find(p.session);
  if (!h.valid()) return;
  if (table_.mu(h) == Mu::Idle) {
    table_.set_mu(h, Mu::WaitingProbe);
    transport_.send_upstream(p, hop);
  }
}

void RouterLink::on_bottleneck(const Packet& p, std::int32_t hop) {
  SessionHandle h = table_.find(p.session);
  if (!h.valid()) return;
  if (table_.mu(h) == Mu::Idle && table_.in_R(h)) {
    transport_.send_upstream(p, hop);
  }
}

void RouterLink::on_set_bottleneck(const Packet& p, std::int32_t hop) {
  SessionHandle h = table_.find(p.session);
  if (!h.valid()) return;
  const Rate be = table_.be();
  if (table_.all_R_idle_at_be()) {
    // This link is itself a (stable) bottleneck: certify the path.
    Packet q = p;
    q.beta = true;
    transport_.send_downstream(q, hop);
  } else if (table_.mu(h) == Mu::Idle && rate_lt(table_.lambda(h), be)) {
    // The session is restricted elsewhere: move it to Fe.  Idle sessions
    // pinned at the current Be gain headroom from the move, so re-probe
    // them (computed before the move, as in the pseudocode).
    table_.idle_R_at(be, p.session, scratch_);
    kick_batch(scratch_);
    table_.move_to_F(h);
    transport_.send_downstream(p, hop);
  } else if (table_.mu(h) == Mu::Idle && rate_eq(table_.lambda(h), be)) {
    transport_.send_downstream(p, hop);
  }
  // Otherwise the packet is absorbed: the session is already marked for a
  // new probe cycle, which will re-establish its rate.
}

void RouterLink::on_leave(const Packet& p, std::int32_t hop) {
  // R' is computed against Be *before* the departure; the departure can
  // only raise Be, so these sessions may deserve more bandwidth.  The
  // erase kills only the leaver's handle — the batch handles survive it
  // (they revalidate against the record map's epoch on next use).
  SessionHandle h = table_.find(p.session);
  table_.idle_R_at(table_.be(), p.session, scratch_);
  table_.erase(h);
  kick_batch(scratch_);
  transport_.send_downstream(p, hop);
}

}  // namespace bneck::core
