#include "core/source_node.hpp"

#include <algorithm>
#include <cmath>

namespace bneck::core {

void SourceNode::send_probe() {
  mu_ = Mu::WaitingResponse;
  Packet p;
  p.type = PacketType::Probe;
  p.session = s_;
  p.lambda = ds_;
  p.weight = weight_;
  p.eta = e0_;
  transport_.send_downstream(p, emit_hop_);
}

void SourceNode::api_join(Rate requested) {
  BNECK_EXPECT(requested > 0, "requested rate must be positive");
  BNECK_EXPECT(weight_ > 0 && std::isfinite(weight_),
               "session weight must be positive and finite");
  in_f_ = false;  // Re ← {s}
  ds_ = std::min(requested, ce_) / weight_;
  mu_ = Mu::WaitingResponse;
  upd_rcv_ = false;
  bneck_rcv_ = false;
  Packet p;
  p.type = PacketType::Join;
  p.session = s_;
  p.lambda = ds_;
  p.weight = weight_;
  p.eta = e0_;
  transport_.send_downstream(p, emit_hop_);
}

void SourceNode::api_leave() {
  in_f_ = false;
  Packet p;
  p.type = PacketType::Leave;
  p.session = s_;
  transport_.send_downstream(p, emit_hop_);
}

void SourceNode::api_change(Rate requested) {
  BNECK_EXPECT(requested > 0, "requested rate must be positive");
  start_change(requested);
}

void SourceNode::api_change(Rate requested, double weight) {
  BNECK_EXPECT(requested > 0, "requested rate must be positive");
  BNECK_EXPECT(weight > 0 && std::isfinite(weight),
               "session weight must be positive and finite");
  weight_ = weight;
  start_change(requested);
}

void SourceNode::start_change(Rate requested) {
  ds_ = std::min(requested, ce_) / weight_;
  if (mu_ == Mu::Idle) {
    in_f_ = false;  // back to Re = {s}
    upd_rcv_ = false;
    bneck_rcv_ = false;
    send_probe();
  } else {
    upd_rcv_ = true;
  }
}

void SourceNode::on_update(const Packet&) {
  if (mu_ == Mu::Idle) {
    in_f_ = false;
    bneck_rcv_ = false;
    send_probe();
  } else {
    upd_rcv_ = true;
  }
}

void SourceNode::notify_and_certify() {
  bneck_rcv_ = true;
  rate_cb_(s_, weight_ * lambda_);  // API.Rate carries the actual rate w·λ
  const bool restricted_here = !rate_gt(ds_, lambda_);  // Ds = λs
  if (!restricted_here) in_f_ = true;  // Fe ← {s}
  Packet p;
  p.type = PacketType::SetBottleneck;
  p.session = s_;
  p.beta = restricted_here;
  transport_.send_downstream(p, emit_hop_);
}

void SourceNode::on_bottleneck(const Packet&) {
  if (mu_ == Mu::Idle && !bneck_rcv_) {
    notify_and_certify();
  }
}

void SourceNode::on_response(const Packet& p) {
  if (p.tag == ResponseTag::Update || upd_rcv_) {
    upd_rcv_ = false;
    bneck_rcv_ = false;
    send_probe();
  } else if (p.tag == ResponseTag::Bottleneck) {
    lambda_ = p.lambda;
    mu_ = Mu::Idle;
    notify_and_certify();
  } else {  // τ = RESPONSE
    lambda_ = p.lambda;
    mu_ = Mu::Idle;
    if (rate_eq(ds_, lambda_)) {
      // The session is restricted by its own request (or access link):
      // its rate is final without any router declaring a bottleneck.
      notify_and_certify();
    }
  }
}

}  // namespace bneck::core
