#include "core/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "base/expect.hpp"

namespace bneck::core {

namespace {

// Both solvers run on "computational links": every real link crossed by a
// session, plus one virtual single-session link per finite demand (the
// paper's Ds = min(Ce, rs) transformation generalized to any session mix).
struct CompLink {
  Rate capacity = 0;
  std::vector<std::int32_t> sessions;  // indices into the session span
};

struct CompGraph {
  std::vector<CompLink> links;
  std::vector<std::vector<std::int32_t>> session_links;  // session -> comp links
};

CompGraph build_comp_graph(const net::Network& net,
                           std::span<const SessionSpec> sessions) {
  CompGraph g;
  g.session_links.resize(sessions.size());
  std::unordered_map<LinkId, std::int32_t> index;
  for (std::size_t si = 0; si < sessions.size(); ++si) {
    const auto s = static_cast<std::int32_t>(si);
    BNECK_EXPECT(!sessions[si].path.links.empty(), "session with empty path");
    for (const LinkId e : sessions[si].path.links) {
      auto [it, inserted] =
          index.try_emplace(e, static_cast<std::int32_t>(g.links.size()));
      if (inserted) {
        g.links.push_back(CompLink{net.link(e).capacity, {}});
      }
      g.links[static_cast<std::size_t>(it->second)].sessions.push_back(s);
      g.session_links[si].push_back(it->second);
    }
    BNECK_EXPECT(sessions[si].weight > 0, "non-positive weight");
    if (!std::isinf(sessions[si].demand)) {
      BNECK_EXPECT(sessions[si].demand > 0, "non-positive demand");
      const auto vl = static_cast<std::int32_t>(g.links.size());
      g.links.push_back(CompLink{sessions[si].demand, {s}});
      g.session_links[si].push_back(vl);
    }
  }
  return g;
}

}  // namespace

MaxMinSolution solve_reference(const net::Network& net,
                               std::span<const SessionSpec> sessions) {
  MaxMinSolution out;
  out.rates.assign(sessions.size(), 0.0);
  if (sessions.empty()) return out;

  CompGraph g = build_comp_graph(net, sessions);
  const std::size_t nl = g.links.size();

  // Per-link mutable state: the active set Re (as a vector we compact in
  // place), its weight sum, and the frozen-rate sum over Fe.  With unit
  // weights the "fill level" b is the bottleneck rate Be of Figure 1;
  // with weights, session s receives weight_s * b.
  std::vector<std::vector<std::int32_t>> re(nl);
  std::vector<Rate> fsum(nl, 0.0);
  std::vector<double> wsum(nl, 0.0);
  std::vector<std::size_t> live;  // L: links with Re nonempty
  for (std::size_t e = 0; e < nl; ++e) {
    re[e] = g.links[e].sessions;
    for (const std::int32_t s : re[e]) {
      wsum[e] += sessions[static_cast<std::size_t>(s)].weight;
    }
    if (!re[e].empty()) live.push_back(e);
  }

  std::vector<char> in_x(sessions.size(), 0);
  std::size_t remaining = sessions.size();

  while (!live.empty()) {
    BNECK_EXPECT(remaining > 0, "live links but all sessions assigned");
    // b <- min fill level over live links.
    Rate b = kRateInfinity;
    for (const std::size_t e : live) {
      const Rate be = (g.links[e].capacity - fsum[e]) / wsum[e];
      b = std::min(b, be);
    }
    // L' and X.
    std::vector<std::int32_t> x;
    std::vector<char> is_min(nl, 0);
    for (const std::size_t e : live) {
      const Rate be = (g.links[e].capacity - fsum[e]) / wsum[e];
      if (!rate_eq(be, b)) continue;
      is_min[e] = 1;
      for (const std::int32_t s : re[e]) {
        if (!in_x[static_cast<std::size_t>(s)]) {
          in_x[static_cast<std::size_t>(s)] = 1;
          x.push_back(s);
        }
      }
    }
    BNECK_EXPECT(!x.empty(), "bottleneck with no sessions");
    for (const std::int32_t s : x) {
      out.rates[static_cast<std::size_t>(s)] =
          b * sessions[static_cast<std::size_t>(s)].weight;
      --remaining;
    }
    // Move X to Fe on surviving links; drop exhausted/min links from L.
    std::vector<std::size_t> next_live;
    for (const std::size_t e : live) {
      if (is_min[e]) continue;
      auto& r = re[e];
      std::size_t w = 0;
      for (std::size_t i = 0; i < r.size(); ++i) {
        if (in_x[static_cast<std::size_t>(r[i])]) {
          const double sw = sessions[static_cast<std::size_t>(r[i])].weight;
          fsum[e] += b * sw;
          wsum[e] -= sw;
        } else {
          r[w++] = r[i];
        }
      }
      r.resize(w);
      if (!r.empty()) next_live.push_back(e);
    }
    for (const std::int32_t s : x) in_x[static_cast<std::size_t>(s)] = 0;
    live = std::move(next_live);
  }
  BNECK_EXPECT(remaining == 0, "sessions left unassigned");

  out.links = annotate_links(net, sessions, out.rates);
  return out;
}

MaxMinSolution solve_waterfill(const net::Network& net,
                               std::span<const SessionSpec> sessions) {
  MaxMinSolution out;
  out.rates.assign(sessions.size(), 0.0);
  if (sessions.empty()) return out;

  CompGraph g = build_comp_graph(net, sessions);
  const std::size_t nl = g.links.size();

  std::vector<Rate> cap(nl);        // residual capacity (Ce - sum of frozen)
  std::vector<std::int32_t> n(nl);  // active session count
  std::vector<double> wsum(nl, 0);  // active weight sum
  std::vector<std::uint32_t> version(nl, 0);
  for (std::size_t e = 0; e < nl; ++e) {
    cap[e] = g.links[e].capacity;
    n[e] = static_cast<std::int32_t>(g.links[e].sessions.size());
    for (const std::int32_t s : g.links[e].sessions) {
      wsum[e] += sessions[static_cast<std::size_t>(s)].weight;
    }
  }

  struct Entry {
    Rate be;  // fill level at which the link saturates
    std::size_t link;
    std::uint32_t version;
  };
  const auto later = [](const Entry& a, const Entry& b) {
    return a.be != b.be ? a.be > b.be : a.link > b.link;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(later)> pq(later);
  for (std::size_t e = 0; e < nl; ++e) {
    if (n[e] > 0) pq.push({cap[e] / wsum[e], e, 0});
  }

  std::vector<char> frozen(sessions.size(), 0);
  while (!pq.empty()) {
    const Entry top = pq.top();
    pq.pop();
    const std::size_t e = top.link;
    if (top.version != version[e] || n[e] == 0) continue;  // stale
    const Rate b = cap[e] / wsum[e];
    // Freeze every still-active session of this link at level b (rate
    // b * weight), and relax the other links they cross (fill levels
    // only rise, so the lazy priority queue stays consistent).
    for (const std::int32_t s : g.links[e].sessions) {
      const auto si = static_cast<std::size_t>(s);
      if (frozen[si]) continue;
      frozen[si] = 1;
      const double sw = sessions[si].weight;
      out.rates[si] = b * sw;
      for (const std::int32_t other : g.session_links[si]) {
        const auto oe = static_cast<std::size_t>(other);
        if (oe == e) continue;
        cap[oe] -= b * sw;
        --n[oe];
        wsum[oe] -= sw;
        ++version[oe];
        if (n[oe] > 0) pq.push({cap[oe] / wsum[oe], oe, version[oe]});
      }
    }
    n[e] = 0;
    ++version[e];
  }
  for (std::size_t si = 0; si < sessions.size(); ++si) {
    BNECK_EXPECT(frozen[si], "session left unfrozen");
  }

  out.links = annotate_links(net, sessions, out.rates);
  return out;
}

std::unordered_map<LinkId, LinkInfo> annotate_links(
    const net::Network& net, std::span<const SessionSpec> sessions,
    std::span<const Rate> rates) {
  BNECK_EXPECT(sessions.size() == rates.size(), "rate vector size mismatch");
  std::unordered_map<LinkId, LinkInfo> out;
  // Both the bottleneck level and restriction are judged on the
  // weight-normalized level λ/w, so the annotation stays correct for the
  // weighted extension (with unit weights this is the paper's λ = B*e
  // condition).
  for (std::size_t si = 0; si < sessions.size(); ++si) {
    for (const LinkId e : sessions[si].path.links) {
      LinkInfo& info = out.try_emplace(e).first->second;
      info.capacity = net.link(e).capacity;
      info.assigned += rates[si];
      info.bottleneck_rate =
          std::max(info.bottleneck_rate, rates[si] / sessions[si].weight);
      ++info.sessions;
    }
  }
  for (auto& [e, info] : out) {
    info.saturated = rate_ge(info.assigned, info.capacity, kRateCheckEps);
  }
  for (std::size_t si = 0; si < sessions.size(); ++si) {
    for (const LinkId e : sessions[si].path.links) {
      LinkInfo& info = out.at(e);
      if (info.saturated &&
          rate_eq(rates[si] / sessions[si].weight, info.bottleneck_rate,
                  kRateCheckEps)) {
        ++info.restricted;
      }
    }
  }
  return out;
}

std::string check_maxmin_invariants(const net::Network& net,
                                    std::span<const SessionSpec> sessions,
                                    std::span<const Rate> rates) {
  const auto links = annotate_links(net, sessions, rates);
  for (const auto& [e, info] : links) {
    if (rate_gt(info.assigned, info.capacity, kRateCheckEps)) {
      return "link " + std::to_string(e.value()) + " overloaded: " +
             format_rate(info.assigned) + " > " + format_rate(info.capacity);
    }
  }
  for (std::size_t si = 0; si < sessions.size(); ++si) {
    const auto& s = sessions[si];
    if (rates[si] <= 0) {
      return "session " + std::to_string(s.id.value()) + " has rate " +
             format_rate(rates[si]);
    }
    if (rate_gt(rates[si], s.demand, kRateCheckEps)) {
      return "session " + std::to_string(s.id.value()) +
             " exceeds its demand";
    }
    if (rate_eq(rates[si], s.demand, kRateCheckEps)) continue;  // restricted by demand
    bool has_bottleneck = false;
    for (const LinkId e : s.path.links) {
      const LinkInfo& info = links.at(e);
      // Restricted at e: e is saturated and s is among its restricted
      // sessions (maximal weight-normalized level); with unit weights
      // this is the paper's Definition 1.
      if (!info.saturated) continue;
      if (rate_ge(rates[si] / s.weight, info.bottleneck_rate, kRateCheckEps)) {
        has_bottleneck = true;
        break;
      }
    }
    if (!has_bottleneck) {
      return "session " + std::to_string(s.id.value()) +
             " has no bottleneck and is below its demand";
    }
  }
  return "";
}

}  // namespace bneck::core
