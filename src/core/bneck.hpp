// BneckProtocol: the distributed B-Neck algorithm bound to the simulator.
//
// This is the library's main entry point.  It owns one RouterLink task
// per directed link that carries sessions, one SourceNode per active
// session, the (stateless) DestinationNode behaviour, and the hop
// routing: a task's emit resolves to a physical directed link, crosses
// the wire through the transport seam (src/transport/ — the simulator
// backend by default), and is dispatched to the task at the next hop.
//
// Typical use:
//
//   sim::Simulator sim;
//   core::BneckProtocol bneck(sim, network);
//   bneck.set_rate_callback([](SessionId s, Rate r, TimeNs t) { ... });
//   bneck.join(SessionId{0}, path, /*demand=*/kRateInfinity);
//   bneck.join(SessionId{1}, path2, kRateInfinity, /*weight=*/3.0);
//   TimeNs quiescent_at = sim.run_until_idle();   // B-Neck is quiescent!
//
// After run_until_idle() returns, every active session has been notified
// of its max-min fair rate and zero protocol packets remain (Theorem 1).
//
// Weighted max-min (extension beyond the paper, Hou et al. direction):
// sessions carry a weight w > 0, and the protocol converges to the
// *weighted* max-min allocation — the unique vector where session s gets
// w_s times the level of an equal competitor at every common bottleneck,
// exactly what the centralized solvers in core/maxmin.hpp compute.
// Internally every task operates on weight-normalized levels λ/w
// (link_table.hpp documents the algebra); API.Rate always reports actual
// rates.  With all weights 1 (the default) the protocol's arithmetic,
// packet schedule and traces are bit-identical to the unweighted paper
// protocol.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "base/flat_hash.hpp"
#include "base/slab.hpp"

#include "core/packet.hpp"
#include "core/router_link.hpp"
#include "core/session.hpp"
#include "core/source_node.hpp"
#include "core/trace.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/sim_transport.hpp"
#include "transport/transport.hpp"

namespace bneck::core {

struct BneckConfig {
  /// Control packet size in bits; determines per-hop transmission time
  /// (the paper models transmission and propagation times, §IV).
  std::int64_t packet_bits = 512;
  /// When false, packets only incur propagation delay (useful to study
  /// the algorithm free of serialization effects).
  bool model_transmission = true;
  /// Extension (lifts the paper's "each host can only be the source node
  /// of one session" simplification, §II): when true, any number of
  /// sessions may share a source host.  The access link is then
  /// arbitrated by a regular RouterLink task at the host, and the
  /// session's maximum-rate request rides as a virtual restriction in
  /// the Join/Probe packets (η starts invalid instead of naming the
  /// access link).  When false (default, paper-faithful), the SourceNode
  /// manages its dedicated access link exactly as in Figure 3 and a
  /// second session on the same source host is rejected.
  bool shared_access_links = false;

  /// Fault injection: probability that a wire transmission is lost.
  /// Without reliable_links, a lost packet deadlocks the affected
  /// sessions (the paper assumes reliable links); combine with
  /// reliable_links to run B-Neck over lossy networks.
  double loss_probability = 0.0;
  /// Runs every link through a go-back-N ARQ layer (transport/arq.hpp):
  /// exactly-once in-order delivery over lossy links, still quiescent
  /// (no unacked data -> no timers, no traffic).
  bool reliable_links = false;
  /// Seed for the loss process (deterministic fault injection).
  std::uint64_t loss_seed = 0x10552024;

  /// The wire-level slice of this config, in the shape the transport
  /// backend consumes (transport::SimTransport).
  [[nodiscard]] transport::WireConfig wire() const {
    transport::WireConfig w;
    w.packet_bits = packet_bits;
    w.model_transmission = model_transmission;
    w.reliable_links = reliable_links;
    w.loss_probability = loss_probability;
    w.loss_seed = loss_seed;
    return w;
  }

  /// Transmission time of one control packet on `l` under this config —
  /// THE definition of the simulation's store-and-forward timing, shared
  /// with external observers (the src/check/ harness derives quiescence
  /// bounds from it; a private copy there would silently drift).  The
  /// formula itself lives in transport::WireConfig.
  [[nodiscard]] TimeNs control_tx_time(const net::Link& l) const {
    return wire().control_tx_time(l);
  }

  /// Protocol-level mutation for validating the property harness
  /// (src/check/ and the `bneck_check` CLI): when true, every RouterLink
  /// re-probes only the *first* session of each kick batch.  The batches
  /// in ProcessNewRestricted (Figure 2 lines 8-10), SetBottleneck and
  /// Leave handling collect every idle session whose recorded rate must
  /// be revisited; dropping all but one is a realistic "forgot the loop"
  /// rate-update bug that leaves stale allocations behind.  The invariant
  /// checker must catch it and the shrinker must minimize it; never set
  /// outside harness validation.
  bool fault_single_kick = false;
};

class BneckProtocol final : public Transport,
                            public transport::TransportSink {
 public:
  /// The simulator binding: constructs an owned transport::SimTransport
  /// on `simulator` from the wire slice of `config` — the reference
  /// configuration every test, bench and example uses.
  BneckProtocol(sim::Simulator& simulator, const net::Network& network,
                BneckConfig config = {}, TraceSink* trace = nullptr);

  /// Seam binding: runs the control plane over an externally owned
  /// transport backend (which must outlive the protocol and not yet be
  /// bound).  The wire-level fields of `config` (packet_bits, loss,
  /// reliable_links) are ignored — they belong to the backend.
  BneckProtocol(transport::LinkTransport& transport,
                const net::Network& network, BneckConfig config = {},
                TraceSink* trace = nullptr);

  // ---- API primitives (paper §II; weight is the weighted extension) ----

  /// API.Join(s, r [, w]): s must be new; the path must start at a host
  /// uplink; the weight must be positive and finite.
  void join(SessionId s, net::Path path, Rate demand = kRateInfinity,
            double weight = 1.0);
  /// API.Leave(s): s must be active.
  void leave(SessionId s);
  /// API.Change(s, r): s must be active.  The 3-argument form also
  /// retunes the session's weight; the links pick it up with the re-probe
  /// the change triggers.
  void change(SessionId s, Rate demand);
  void change(SessionId s, Rate demand, double weight);

  /// Sharded-engine seam (core/sharded_bneck.hpp): registers the routing
  /// state of a session whose source host lives on ANOTHER shard.  This
  /// shard's protocol instance then routes the session's in-flight
  /// packets through its local RouterLinks exactly as for an active
  /// session, but owns no SourceNode, no demand bookkeeping and no
  /// API.Rate delivery — behaviorally a pre-made tombstone, identical to
  /// a session that joined here and left.  join/leave/change for the
  /// session stay with its home shard.
  void register_remote(SessionId s, net::Path path);

  /// API.Rate(s, λ) is delivered through this callback.
  using RateCallback = std::function<void(SessionId, Rate, TimeNs)>;
  void set_rate_callback(RateCallback cb) { rate_cb_ = std::move(cb); }

  // ---- introspection ----

  [[nodiscard]] bool is_active(SessionId s) const;
  [[nodiscard]] std::size_t active_sessions() const { return active_count_; }

  /// Last rate notified via API.Rate; nullopt before the first
  /// notification (or after leave).
  [[nodiscard]] std::optional<Rate> notified_rate(SessionId s) const;

  /// Active sessions as solver input (for validation against the
  /// centralized solvers), in ascending session id order; demands and
  /// weights reflect the latest join/change values.
  [[nodiscard]] std::vector<SessionSpec> active_specs() const;

  /// The RouterLink task of a directed link; nullptr if the link never
  /// carried a session.
  [[nodiscard]] const RouterLink* router_link(LinkId e) const;

  /// The routed path of a session id — active or departed (tombstones
  /// keep their path so in-flight packets still route); nullptr for ids
  /// never joined.  The model checker (src/mc/) uses this to map a
  /// pending delivery to the node whose task will process it.
  [[nodiscard]] const net::Path* session_path(SessionId s) const;

  /// Directed links that have an instantiated RouterLink task, in
  /// construction order (deterministic).  Full-network walks — the
  /// property harness's per-link table audits in particular — iterate
  /// this dense index instead of probing every directed link id.
  [[nodiscard]] const std::vector<LinkId>& active_links() const {
    return active_links_;
  }

  /// Paper Definition 2, state part: every router link and source is
  /// stable.  Combined with the simulator being idle this is full
  /// network stability.
  [[nodiscard]] bool all_tasks_stable() const;

  /// Total protocol packets handed to links (each hop counted once;
  /// includes ARQ retransmissions when reliable_links is on).
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }

  /// Timestamp of the last wire transmission (the quiescence instant
  /// when ARQ timers pad the event queue).
  [[nodiscard]] TimeNs last_packet_time() const { return last_packet_time_; }

  /// ARQ retransmissions performed (0 unless reliable_links and loss).
  [[nodiscard]] std::uint64_t retransmissions() const {
    return transport_->retransmissions();
  }

  /// Wire transmissions by packet type (indexed by core::PacketType).
  [[nodiscard]] const std::array<std::uint64_t, kPacketTypeCount>&
  packets_by_type() const {
    return packets_by_type_;
  }

  /// Probe cycles started by a session (its Join plus every re-probe);
  /// the paper's per-session control-cost metric.  0 for unknown ids.
  [[nodiscard]] std::uint64_t probe_cycles(SessionId s) const;

  /// Total probe cycles across all sessions, including departed ones.
  [[nodiscard]] std::uint64_t total_probe_cycles() const {
    return total_probe_cycles_;
  }

  // ---- snapshot/restore (model-checker seam, src/mc/) ----

  /// A copyable value capture of the protocol's whole mutable state:
  /// per-slot session runtime (demand/weight/notified/probe counters +
  /// the SourceNode scalars), every instantiated RouterLink's session
  /// table, the transport's per-link FIFO clocks and the global
  /// counters.  Only supported on the owned-SimTransport binding with a
  /// loss-free wire (ARQ state is not captured).  Identity that cannot
  /// roll backwards — a session's path, the arena of RouterLink tasks,
  /// active_links() — is NOT part of the snapshot: sessions/links that
  /// appear after the capture are truncated/emptied on restore instead
  /// (an empty table is behaviorally identical to a never-instantiated
  /// link).
  struct Snapshot {
    struct SessionState {
      Rate demand;
      double weight;
      std::optional<Rate> notified;
      std::uint64_t probe_cycles;
      bool active = false;                  // source task present
      SourceNode::State source{};           // valid when active
    };
    std::vector<SessionState> sessions;     // slot order
    std::vector<LinkSessionTable::Snapshot> tables;  // active_links_ order
    std::vector<std::int32_t> sources_in_use;
    std::size_t active_count = 0;
    std::uint64_t packets_sent = 0;
    TimeNs last_packet_time = 0;
    std::array<std::uint64_t, kPacketTypeCount> packets_by_type{};
    std::uint64_t total_probe_cycles = 0;
    std::vector<TimeNs> channel_busy;       // SimTransport FIFO clocks
  };

  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  // ---- Transport (used by the tasks; not part of the public API) ----
  void send_downstream(Packet p, std::int32_t from_hop) override;
  void send_upstream(Packet p, std::int32_t from_hop) override;

  // ---- transport::TransportSink (driven by the wire backend) ----
  void on_wire(const Packet& p, LinkId physical) override;
  void on_packet(const Packet& p) override { deliver(p); }

 private:
  struct SessionRt {
    SessionId id;
    net::Path path;
    Rate demand = kRateInfinity;         // requested maximum rate r_s
    double weight = 1.0;                 // max-min weight w_s
    std::unique_ptr<SourceNode> source;  // null once the session left
    std::optional<Rate> notified;
    std::uint64_t probe_cycles = 0;      // Join + re-probes emitted
  };

  /// Slot of a session in sessions_, or -1 if the id was never joined.
  /// One array index for dense ids (the experiment harnesses allocate
  /// them sequentially); arbitrary sparse ids fall back to a flat map.
  [[nodiscard]] std::int32_t slot_of(SessionId s) const {
    const auto v = static_cast<std::uint32_t>(s.value());
    if (v < id_to_slot_.size()) return id_to_slot_[v];
    if (v < kDenseIdLimit) return -1;
    const std::int32_t* slot = sparse_ids_.find(s);
    return slot != nullptr ? *slot : -1;
  }
  std::int32_t register_session(SessionId s);  // new slot; rejects reuse

  SessionRt& runtime(SessionId s);
  /// Builds the SourceNode task for a session (the mode-dependent half
  /// of join(); restore() re-runs it when rolling a departed session
  /// back to life).
  [[nodiscard]] std::unique_ptr<SourceNode> make_source(const SessionRt& rt);
  /// Like runtime(), but reuses the slot deliver() already resolved when
  /// the send is for the packet being delivered — the common case for
  /// every forwarding hop, so the per-hop send costs no id lookup.
  SessionRt& runtime_for_send(SessionId s);
  RouterLink& router_link_at(LinkId e);
  void transmit(Packet p, LinkId physical, std::int32_t to_hop);
  void deliver(const Packet& p);
  void on_rate(SessionId s, Rate r);

  // Devirtualized fast path for the per-packet transport calls:
  // owned_transport_ is non-null exactly when the simulator ctor ran,
  // and SimTransport is final, so these branches resolve to direct
  // (LTO-inlinable) calls on the benches' hot path — the seam costs
  // the simulator backend nothing.
  void wire_send(LinkId physical, const Packet& p) {
    if (owned_transport_ != nullptr) {
      owned_transport_->send(physical, p);
    } else {
      transport_->send(physical, p);
    }
  }
  void wire_local(const Packet& p) {
    if (owned_transport_ != nullptr) {
      owned_transport_->local(p);
    } else {
      transport_->local(p);
    }
  }
  [[nodiscard]] TimeNs wire_now() const {
    return owned_transport_ != nullptr ? owned_transport_->now()
                                       : transport_->now();
  }

  const net::Network& net_;
  BneckConfig cfg_;
  TraceSink* trace_;
  RateCallback rate_cb_;

  // The wire backend.  The simulator ctor owns a SimTransport here; the
  // seam ctor leaves it null and points transport_ at the caller's.
  std::unique_ptr<transport::SimTransport> owned_transport_;
  transport::LinkTransport* transport_;

  // Task storage: RouterLink objects live in a stable-address slab
  // arena (base/slab.hpp), constructed lazily in first-use order.  A
  // per-directed-link slot vector maps link id -> arena slot (-1 =
  // never instantiated); in-process walks (stability checks) iterate
  // the dense arena directly, and active_links_ gives external
  // observers (active_links()) the same dense view with the link ids
  // attached.
  Slab<RouterLink> link_arena_;
  std::vector<std::int32_t> link_slot_;     // per directed link, -1 = none
  std::vector<LinkId> active_links_;        // construction order

  // Dense session table: session runtime state lives in a slot-indexed
  // vector; ids resolve to slots through a flat vector, so the two
  // per-packet lookups that used to hash into unordered_map are now
  // plain array reads.  Departed sessions keep their slot as a tombstone
  // (path retained to route in-flight packets) which also rejects id
  // reuse, as before.  join() may reallocate the vector, so API calls
  // must not be made re-entrantly from a rate callback (schedule them on
  // the simulator instead — every harness in this repo already does).
  static constexpr std::uint32_t kDenseIdLimit = 1u << 22;
  std::vector<SessionRt> sessions_;
  std::vector<std::int32_t> id_to_slot_;            // ids < kDenseIdLimit
  FlatIdMap<SessionTag, std::int32_t> sparse_ids_;  // the rest
  // deliver()'s resolved (id, slot), reused by runtime_for_send() for
  // the sends the handler emits for that same session.  A slot is
  // stable for the session's lifetime (tombstoned, never reused), so
  // the cache can never go stale — at worst it misses.
  SessionId delivering_id_;
  std::int32_t delivering_slot_ = -1;
  // Active sessions per source host node id; enforces the paper's one-
  // session-per-host model unless shared_access_links is set.
  std::vector<std::int32_t> sources_in_use_;
  std::size_t active_count_ = 0;
  std::uint64_t packets_sent_ = 0;
  TimeNs last_packet_time_ = 0;
  std::array<std::uint64_t, kPacketTypeCount> packets_by_type_{};
  std::uint64_t total_probe_cycles_ = 0;
};

}  // namespace bneck::core
