// Discrete-event simulator.
//
// A deterministic event queue: events fire in (time, insertion-sequence)
// order, so two events scheduled for the same instant run in the order
// they were scheduled and every run with the same inputs is identical.
// This contract is what makes every figure of the paper reproducible
// bit-for-bit from a seed — nothing in the simulator (or in the typed
// event representation below) may reorder same-timestamp events.
//
// Events are typed (sim/event.hpp): the dominant kind — delivery of a
// small trivially-copyable payload to a long-lived handler — is stored
// inline in the queue entry and never heap-allocates; arbitrary
// std::function callbacks remain available for cold-path events.  The
// queue itself is an owned 4-ary min-heap split into parallel arrays
// moved in lockstep: sift comparisons scan only the packed 16-byte
// {time, seq} keys (all four children of a node share one cache line),
// while the 48-byte event bodies are moved at most once per level.
// Compared with std::priority_queue's binary heap of fat entries this
// halves the levels per sift and cuts the lines touched per comparison.
// Owning the heap also lets step() move entries out legally (no
// const_cast of top()) and lets run_until() peek at the head timestamp.
//
// The B-Neck evaluation relies on `run_until_idle()` — B-Neck is
// quiescent, so after a burst of session changes the queue *drains*, and
// the timestamp of the last processed event is the paper's "time to
// quiescence".  A configurable max_events bound turns a non-terminating
// protocol bug into an exception instead of a hang.
#pragma once

#include <cstdint>
#include <vector>

#include "base/expect.hpp"
#include "base/time.hpp"
#include "sim/event.hpp"

namespace bneck::sim {

class Simulator {
 public:

  /// Schedules fn at absolute time t.  Requires t >= now().
  void schedule_at(TimeNs t, EventFn fn) {
    BNECK_EXPECT(fn != nullptr, "null event");
    push(t, Event(std::move(fn)));
  }

  /// Schedules fn `delay` after the current time.  Requires delay >= 0.
  void schedule_in(TimeNs delay, EventFn fn) {
    schedule_at(now() + delay, std::move(fn));
  }

  /// Schedules delivery of `payload` to `handler` at absolute time t —
  /// the allocation-free fast path for per-packet events.  The payload
  /// is copied inline into the queue entry; the handler must outlive the
  /// event.  Requires t >= now().
  template <class Derived, class T>
  void schedule_delivery_at(TimeNs t, DeliveryHandlerOf<Derived, T>& handler,
                            const T& payload) {
    push(t, Event(handler, payload));
  }

  /// Delivery `delay` after the current time.  Requires delay >= 0.
  template <class Derived, class T>
  void schedule_delivery_in(TimeNs delay, DeliveryHandlerOf<Derived, T>& handler,
                            const T& payload) {
    schedule_delivery_at(now() + delay, handler, payload);
  }

  /// Current simulated time: the timestamp of the event being processed,
  /// or of the last processed event when between events.
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Runs until the queue drains.  Returns the timestamp of the last
  /// processed event (now() if no event ran).  Throws InvariantError if
  /// max_events() is exceeded.
  TimeNs run_until_idle();

  /// Processes every event with timestamp <= t, then advances now() to t.
  /// Events scheduled during processing are honored if they fall within t.
  void run_until(TimeNs t);

  /// Processes exactly one event if available; returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const { return keys_.empty(); }
  [[nodiscard]] std::size_t pending() const { return keys_.size(); }

  /// Timestamp of the earliest pending event; kTimeNever when idle.
  /// Checker hook: lets an external driver process events one step at a
  /// time up to a horizon (with per-step inspection) without consuming
  /// events beyond it.
  [[nodiscard]] TimeNs next_event_time() const {
    return keys_.empty() ? kTimeNever : keys_.front().t;
  }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] TimeNs last_event_time() const { return last_event_time_; }

  /// Safety bound on total processed events (default 4e9).
  void set_max_events(std::uint64_t m) { max_events_ = m; }

 private:
  struct Key {
    TimeNs t;
    std::uint64_t seq;
  };

  /// Heap order: earlier time first, ties by insertion sequence — the
  /// determinism contract.
  static bool before(const Key& a, const Key& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  void push(TimeNs t, Event ev);
  void check_budget() const;

  // 4-ary min-heap: children of i are 4i+1 .. 4i+4, split into parallel
  // arrays moved in lockstep.  Sift comparisons scan only the packed
  // 16-byte keys (all four children of a node share one cache line);
  // the 48-byte event bodies are touched once per level at most.  An
  // out-of-line event store with per-slot indices was tried and measured
  // slower — the indirection on every fire outweighs the cheaper moves.
  std::vector<Key> keys_;
  std::vector<Event> evs_;
  TimeNs now_ = 0;
  TimeNs last_event_time_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t max_events_ = 4'000'000'000ULL;
};

/// Per-directed-link FIFO transmission clock.
///
/// Control packets crossing the same directed link serialize: a packet
/// handed to the link at `now` starts transmitting when the link is free,
/// occupies it for `tx`, then propagates for `prop`.  This both models
/// store-and-forward timing and guarantees the per-link FIFO delivery the
/// B-Neck correctness argument assumes (docs/protocol.md).
class FifoChannel {
 public:
  /// Returns the arrival time at the far end and advances the busy horizon.
  TimeNs transmit(TimeNs now, TimeNs tx, TimeNs prop) {
    BNECK_EXPECT(tx >= 0 && prop >= 0, "negative link delay");
    const TimeNs start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + tx;
    return busy_until_ + prop;
  }

  [[nodiscard]] TimeNs busy_until() const { return busy_until_; }
  void reset() { busy_until_ = 0; }

 private:
  TimeNs busy_until_ = 0;
};

}  // namespace bneck::sim
