// Discrete-event simulator.
//
// A deterministic event queue: events fire in (time, insertion-sequence)
// order, so two events scheduled for the same instant run in the order
// they were scheduled and every run with the same inputs is identical.
//
// The B-Neck evaluation relies on `run_until_idle()` — B-Neck is
// quiescent, so after a burst of session changes the queue *drains*, and
// the timestamp of the last processed event is the paper's "time to
// quiescence".  A configurable max_events bound turns a non-terminating
// protocol bug into an exception instead of a hang.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/expect.hpp"
#include "base/time.hpp"

namespace bneck::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  /// Schedules fn at absolute time t.  Requires t >= now().
  void schedule_at(TimeNs t, EventFn fn);

  /// Schedules fn `delay` after the current time.  Requires delay >= 0.
  void schedule_in(TimeNs delay, EventFn fn) {
    schedule_at(now() + delay, std::move(fn));
  }

  /// Current simulated time: the timestamp of the event being processed,
  /// or of the last processed event when between events.
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Runs until the queue drains.  Returns the timestamp of the last
  /// processed event (now() if no event ran).  Throws InvariantError if
  /// max_events() is exceeded.
  TimeNs run_until_idle();

  /// Processes every event with timestamp <= t, then advances now() to t.
  /// Events scheduled during processing are honored if they fall within t.
  void run_until(TimeNs t);

  /// Processes exactly one event if available; returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] TimeNs last_event_time() const { return last_event_time_; }

  /// Safety bound on total processed events (default 4e9).
  void set_max_events(std::uint64_t m) { max_events_ = m; }

 private:
  struct Entry {
    TimeNs t;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void check_budget() const;

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  TimeNs now_ = 0;
  TimeNs last_event_time_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t max_events_ = 4'000'000'000ULL;
};

/// Per-directed-link FIFO transmission clock.
///
/// Control packets crossing the same directed link serialize: a packet
/// handed to the link at `now` starts transmitting when the link is free,
/// occupies it for `tx`, then propagates for `prop`.  This both models
/// store-and-forward timing and guarantees the per-link FIFO delivery the
/// B-Neck correctness argument assumes (DESIGN.md §3).
class FifoChannel {
 public:
  /// Returns the arrival time at the far end and advances the busy horizon.
  TimeNs transmit(TimeNs now, TimeNs tx, TimeNs prop) {
    BNECK_EXPECT(tx >= 0 && prop >= 0, "negative link delay");
    const TimeNs start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + tx;
    return busy_until_ + prop;
  }

  [[nodiscard]] TimeNs busy_until() const { return busy_until_; }
  void reset() { busy_until_ = 0; }

 private:
  TimeNs busy_until_ = 0;
};

}  // namespace bneck::sim
