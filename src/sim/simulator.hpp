// Discrete-event simulator.
//
// A deterministic event queue: events fire in (time, insertion-sequence)
// order, so two events scheduled for the same instant run in the order
// they were scheduled and every run with the same inputs is identical.
// This contract is what makes every figure of the paper reproducible
// bit-for-bit from a seed — nothing in the simulator (or in the typed
// event representation below) may reorder same-timestamp events.
//
// Events are typed (sim/event.hpp): the dominant kind — delivery of a
// small trivially-copyable payload to a long-lived handler — is stored
// inline in the queue entry and never heap-allocates; arbitrary
// std::function callbacks remain available for cold-path events.
//
// The queue itself sits behind a policy seam: BasicSimulator<Queue>
// takes any queue ordering events by (time, insertion-seq).  Two
// implementations exist —
//
//   sim::LadderQueue (ladder_queue.hpp)  the production queue: a
//       calendar/ladder structure whose sorted bottom run makes pop an
//       index increment, drains same-timestamp bursts (protocol kicks)
//       without any re-sorting, and keeps min_time() O(1) for horizon
//       peeks;
//   sim::HeapQueue (heap_queue.hpp)  the PR-2 owned 4-ary min-heap,
//       kept as the reference for the A/B fire-order gate in
//       tests/sim_test.cpp and the side-by-side micro benches.
//
// `Simulator` is the production alias; everything in the tree runs on
// it.  `HeapSimulator` exists for tests and benches only.
//
// The B-Neck evaluation relies on `run_until_idle()` — B-Neck is
// quiescent, so after a burst of session changes the queue *drains*, and
// the timestamp of the last processed event is the paper's "time to
// quiescence".  A configurable max_events bound turns a non-terminating
// protocol bug into an exception instead of a hang.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/expect.hpp"
#include "base/time.hpp"
#include "sim/event.hpp"
#include "sim/heap_queue.hpp"
#include "sim/ladder_queue.hpp"

namespace bneck::sim {

/// A resumable copy of a simulator's state: the clock/counter scalars
/// plus every pending queue entry serialized as a (time, seq, payload)
/// triple, sorted by (time, seq).  Produced by
/// BasicSimulator::snapshot(), consumed by restore() — the model
/// checker's seam for exploring alternative delivery interleavings
/// (src/mc/).  Entries hold cloned Events, so a snapshot stays valid
/// across any number of restores.
struct SimSnapshot {
  struct Entry {
    TimeNs t;
    std::uint64_t seq;
    Event ev;
    Entry(TimeNs t_, std::uint64_t seq_, Event&& ev_)
        : t(t_), seq(seq_), ev(std::move(ev_)) {}
    Entry(Entry&&) noexcept = default;
    Entry& operator=(Entry&&) noexcept = default;
  };

  TimeNs now = 0;
  TimeNs last_event_time = 0;
  std::uint64_t seq = 0;
  std::uint64_t processed = 0;
  std::vector<Entry> entries;  // sorted by (t, seq)

  /// Sentinel for restore()'s skip_seq: restore everything.
  static constexpr std::uint64_t kKeepAll = UINT64_MAX;
};

template <class Queue>
class BasicSimulator {
 public:

  /// Schedules fn at absolute time t.  Requires t >= now().
  void schedule_at(TimeNs t, EventFn fn) {
    BNECK_EXPECT(fn != nullptr, "null event");
    push(t, Event(std::move(fn)));
  }

  /// Schedules fn `delay` after the current time.  Requires delay >= 0.
  void schedule_in(TimeNs delay, EventFn fn) {
    schedule_at(now() + delay, std::move(fn));
  }

  /// Schedules delivery of `payload` to `handler` at absolute time t —
  /// the allocation-free fast path for per-packet events.  The payload
  /// is copied inline into the queue entry; the handler must outlive the
  /// event.  Requires t >= now().
  template <class Derived, class T>
  void schedule_delivery_at(TimeNs t, DeliveryHandlerOf<Derived, T>& handler,
                            const T& payload) {
    push(t, Event(handler, payload));
  }

  /// Delivery `delay` after the current time.  Requires delay >= 0.
  template <class Derived, class T>
  void schedule_delivery_in(TimeNs delay, DeliveryHandlerOf<Derived, T>& handler,
                            const T& payload) {
    schedule_delivery_at(now() + delay, handler, payload);
  }

  /// Current simulated time: the timestamp of the event being processed,
  /// or of the last processed event when between events.
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Runs until the queue drains.  Returns the timestamp of the last
  /// processed event (now() if no event ran — in particular, after a
  /// trailing run_until(t) left the queue idle this returns t, not the
  /// stale pre-run_until last_event_time()).  Throws InvariantError if
  /// max_events() is exceeded.
  TimeNs run_until_idle() {
    while (step()) {
    }
    // step() keeps now_ == last_event_time_ whenever an event ran, and
    // now_ is the documented answer when none did.
    return now_;
  }

  /// Processes every event with timestamp <= t, then advances now() to t.
  /// Events scheduled during processing are honored if they fall within t.
  void run_until(TimeNs t) {
    BNECK_EXPECT(t >= now_, "run_until into the past");
    while (!queue_.empty() && queue_.min_time() <= t) {
      step();
    }
    now_ = t;
  }

  /// Processes every event with timestamp strictly below `horizon`
  /// WITHOUT advancing now() past the last fired event — the sharded
  /// engine's window primitive (sim/sharded.hpp).  Unlike run_until(t),
  /// the clock is left at the last processed event (or wherever it was,
  /// if nothing fired), so after the final window a shard's now() equals
  /// what a single-thread run would report and the quiescence instant is
  /// byte-identical across shard counts.  The O(1) min_time() peek is
  /// what makes polling the horizon free.
  void run_before(TimeNs horizon) {
    while (!queue_.empty() && queue_.min_time() < horizon) {
      step();
    }
  }

  /// Processes exactly one event if available; returns false when idle.
  bool step() {
    if (queue_.empty()) return false;
    TimeNs t;
    Event ev = queue_.pop(&t);
    now_ = t;
    last_event_time_ = t;
    ++processed_;
    check_budget();
    ev.fire();
    // Post-fire housekeeping: the ladder queue defers its bottom refill
    // to here so events the handler just scheduled near now() are
    // bucketed arithmetically instead of spliced into the next run.
    queue_.prepare();
    return true;
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Timestamp of the earliest pending event; kTimeNever when idle.
  /// Checker hook: lets an external driver process events one step at a
  /// time up to a horizon (with per-step inspection) without consuming
  /// events beyond it.  O(1) on both queue backends.
  [[nodiscard]] TimeNs next_event_time() const { return queue_.min_time(); }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] TimeNs last_event_time() const { return last_event_time_; }

  /// Safety bound on total processed events (default 4e9).
  void set_max_events(std::uint64_t m) { max_events_ = m; }

  /// Visits every pending queue entry as fn(t, seq, const Event&), in
  /// unspecified order.  Model-checker hook for enumerating same-window
  /// delivery candidates without consuming them.
  template <class Fn>
  void for_each_pending(Fn&& fn) const {
    queue_.for_each(std::forward<Fn>(fn));
  }

  /// Captures the complete simulator state — clock, counters and every
  /// pending event — as a restorable value.  Entries are cloned and
  /// sorted by (time, seq).
  [[nodiscard]] SimSnapshot snapshot() const {
    SimSnapshot s;
    s.now = now_;
    s.last_event_time = last_event_time_;
    s.seq = seq_;
    s.processed = processed_;
    s.entries.reserve(queue_.size());
    queue_.for_each([&s](TimeNs t, std::uint64_t seq, const Event& ev) {
      s.entries.emplace_back(t, seq, ev.clone());
    });
    std::sort(s.entries.begin(), s.entries.end(),
              [](const SimSnapshot::Entry& a, const SimSnapshot::Entry& b) {
                return a.t != b.t ? a.t < b.t : a.seq < b.seq;
              });
    return s;
  }

  /// Rewinds the simulator to a snapshot: the queue is rebuilt from the
  /// snapshot's entries (cloned — the snapshot stays reusable) with
  /// their ORIGINAL sequence numbers, so a restored run replays the
  /// exact (time, seq) fire order it would have had.  An entry whose seq
  /// equals skip_seq is left out — the model checker uses this to pull
  /// one chosen candidate out of the queue and fire it via fire_now().
  /// Re-pushing in (time, seq) order keeps the ladder queue's in-bucket
  /// insertion-order contract intact.
  void restore(const SimSnapshot& snap,
               std::uint64_t skip_seq = SimSnapshot::kKeepAll) {
    queue_.clear();
    now_ = snap.now;
    last_event_time_ = snap.last_event_time;
    seq_ = snap.seq;
    processed_ = snap.processed;
    for (const SimSnapshot::Entry& e : snap.entries) {
      if (e.seq == skip_seq) continue;
      queue_.push(e.t, e.seq, e.ev.clone());
    }
    queue_.prepare();
  }

  /// Fires one event at absolute time t as if it had just been popped:
  /// advances the clock, charges the event budget, runs the handler and
  /// the queue's post-fire housekeeping.  The model checker pairs this
  /// with restore(snap, chosen_seq) to execute a candidate other than
  /// the (time, seq) minimum.  Requires t >= now().
  void fire_now(TimeNs t, Event ev) {
    BNECK_EXPECT(t >= now_, "cannot fire into the past");
    now_ = t;
    last_event_time_ = t;
    ++processed_;
    check_budget();
    ev.fire();
    queue_.prepare();
  }

 private:
  void push(TimeNs t, Event ev) {
    BNECK_EXPECT(t >= now_, "cannot schedule into the past");
    queue_.push(t, seq_++, std::move(ev));
  }

  void check_budget() const {
    BNECK_EXPECT(processed_ <= max_events_,
                 "event budget exceeded: protocol is not quiescing");
  }

  Queue queue_;
  TimeNs now_ = 0;
  TimeNs last_event_time_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t max_events_ = 4'000'000'000ULL;
};

/// The production simulator: calendar/ladder queue with same-timestamp
/// batch draining.
using Simulator = BasicSimulator<LadderQueue>;

/// The reference simulator on the PR-2 4-ary heap — the other side of
/// the queue seam, for A/B fire-order tests and micro benches only.
using HeapSimulator = BasicSimulator<HeapQueue>;

extern template class BasicSimulator<LadderQueue>;
extern template class BasicSimulator<HeapQueue>;

/// Per-directed-link FIFO transmission clock.
///
/// Control packets crossing the same directed link serialize: a packet
/// handed to the link at `now` starts transmitting when the link is free,
/// occupies it for `tx`, then propagates for `prop`.  This both models
/// store-and-forward timing and guarantees the per-link FIFO delivery the
/// B-Neck correctness argument assumes (docs/protocol.md).
class FifoChannel {
 public:
  /// Returns the arrival time at the far end and advances the busy horizon.
  TimeNs transmit(TimeNs now, TimeNs tx, TimeNs prop) {
    BNECK_EXPECT(tx >= 0 && prop >= 0, "negative link delay");
    const TimeNs start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + tx;
    return busy_until_ + prop;
  }

  [[nodiscard]] TimeNs busy_until() const { return busy_until_; }
  void reset() { busy_until_ = 0; }

  /// Rewinds the busy horizon to a snapshotted value (model-checker
  /// restore seam — never used by the forward-running simulation).
  void restore_busy_until(TimeNs t) { busy_until_ = t; }

 private:
  TimeNs busy_until_ = 0;
};

}  // namespace bneck::sim
