#include "sim/simulator.hpp"

#include <utility>

namespace bneck::sim {

void Simulator::schedule_at(TimeNs t, EventFn fn) {
  BNECK_EXPECT(t >= now_, "cannot schedule into the past");
  BNECK_EXPECT(fn != nullptr, "null event");
  queue_.push(Entry{t, seq_++, std::move(fn)});
}

void Simulator::check_budget() const {
  BNECK_EXPECT(processed_ <= max_events_,
               "event budget exceeded: protocol is not quiescing");
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the handle is moved out before pop.
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = e.t;
  last_event_time_ = e.t;
  ++processed_;
  check_budget();
  e.fn();
  return true;
}

TimeNs Simulator::run_until_idle() {
  while (step()) {
  }
  return last_event_time_;
}

void Simulator::run_until(TimeNs t) {
  BNECK_EXPECT(t >= now_, "run_until into the past");
  while (!queue_.empty() && queue_.top().t <= t) {
    step();
  }
  now_ = t;
}

}  // namespace bneck::sim
