#include "sim/simulator.hpp"

#include <utility>

namespace bneck::sim {

void Simulator::push(TimeNs t, Event ev) {
  BNECK_EXPECT(t >= now_, "cannot schedule into the past");
  // Grow both arrays before mutating either: once capacity is secured
  // the push_backs cannot throw (Event's move constructor is noexcept),
  // so a bad_alloc can never leave keys_ and evs_ desynchronized.
  if (keys_.size() == keys_.capacity() || evs_.size() == evs_.capacity()) {
    const std::size_t want = keys_.size() < 32 ? 64 : keys_.size() * 2;
    keys_.reserve(want);
    evs_.reserve(want);
  }
  const Key k{t, seq_++};
  keys_.push_back(k);
  evs_.push_back(std::move(ev));
  // Sift the new leaf up (hole technique: one move per level).
  std::size_t i = keys_.size() - 1;
  if (i > 0 && before(k, keys_[(i - 1) >> 2])) {
    Event e = std::move(evs_[i]);
    do {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(k, keys_[parent])) break;
      keys_[i] = keys_[parent];
      evs_[i] = std::move(evs_[parent]);
      i = parent;
    } while (i > 0);
    keys_[i] = k;
    evs_[i] = std::move(e);
  }
}

void Simulator::check_budget() const {
  BNECK_EXPECT(processed_ <= max_events_,
               "event budget exceeded: protocol is not quiescing");
}

bool Simulator::step() {
  if (keys_.empty()) return false;
  now_ = keys_.front().t;
  last_event_time_ = now_;
  ++processed_;
  check_budget();
  Event ev = std::move(evs_.front());

  // Remove the root: move the last entry in and sift it down.
  const Key last_k = keys_.back();
  keys_.pop_back();
  const std::size_t n = keys_.size();
  if (n > 0) {
    Event last_e = std::move(evs_.back());
    evs_.pop_back();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(keys_[c], keys_[best])) best = c;
      }
      if (!before(keys_[best], last_k)) break;
      keys_[i] = keys_[best];
      evs_[i] = std::move(evs_[best]);
      i = best;
    }
    keys_[i] = last_k;
    evs_[i] = std::move(last_e);
  } else {
    evs_.pop_back();
  }

  ev.fire();
  return true;
}

TimeNs Simulator::run_until_idle() {
  while (step()) {
  }
  return last_event_time_;
}

void Simulator::run_until(TimeNs t) {
  BNECK_EXPECT(t >= now_, "run_until into the past");
  while (!keys_.empty() && keys_.front().t <= t) {
    step();
  }
  now_ = t;
}

}  // namespace bneck::sim
