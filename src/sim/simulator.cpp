#include "sim/simulator.hpp"

namespace bneck::sim {

// Both sides of the queue seam are instantiated here so the library
// always carries a compiled reference simulator for the A/B fire-order
// gate, whatever the test configuration.
template class BasicSimulator<LadderQueue>;
template class BasicSimulator<HeapQueue>;

}  // namespace bneck::sim
