// Calendar/ladder event queue with same-timestamp batch draining.
//
// The production event queue behind the simulator's queue seam
// (simulator.hpp).  Post-PR5 profiles named the 4-ary heap pop
// (heap_queue.hpp) the dominant single cost in the simulation hot path:
// every pop pays O(log n) key comparisons even when — as in B-Neck's
// kick bursts — thousands of events share one timestamp and their
// relative order is already fixed by insertion sequence.  A bucketed
// queue drains such runs for free.
//
// Structure (a ladder queue in the Tang/Goh/Thng mold, simplified to
// this simulator's needs):
//
//   bottom   a sorted run of the globally-earliest events, covering the
//            contiguous time range [., bot_limit_).  pop() is an index
//            increment: no comparisons, no sifting.  This is where the
//            batch-drain fast path lives — an all-equal-timestamp
//            bucket enters bottom *without sorting*, because events are
//            appended to buckets in insertion order, which for equal
//            timestamps IS the (time, seq) contract order.
//   rungs    up to kMaxRungs tiers of kBuckets time buckets each, finest
//            tier last.  A rung partitions its coverage [start, end)
//            into fixed-width buckets; events land in bucket
//            (t - start) / width by pure arithmetic.  When the next
//            non-empty bucket of the finest rung is small or all-equal
//            it is sorted (or moved verbatim) into bottom; an oversized
//            mixed bucket is instead *demoted lazily* — spread across a
//            new, finer rung whose buckets subdivide the parent bucket's
//            range — so sorting effort is only ever spent on the events
//            that are about to fire.
//   top      an unsorted overflow list for events beyond every rung's
//            coverage.  When bottom and all rungs drain, top is swept
//            into a fresh rung 0 sized to its [min, max] span.
//
// Determinism: buckets partition disjoint time ranges, bottom always
// holds the earliest remaining range, in-bucket order is established by
// an explicit (time, seq) sort (or inherited from insertion order when
// all timestamps are equal), and an insert landing inside bottom's range
// splices at its (time, seq) position — its seq is by construction the
// largest yet, so it lands after every queued event of the same
// timestamp.  The global pop order is therefore exactly the
// (time, insertion-seq) total order the heap produced;
// tests/sim_test.cpp pins both queues against each other on randomized
// schedules, and the golden protocol traces pin the end-to-end contract.
//
// Two refinements keep the hot paths free of large memmoves:
//
//   * refill is deferred: when a pop drains bottom the next run is NOT
//     pulled in immediately — the simulator calls prepare() after the
//     popped event's handler fires, so anything the handler schedules at
//     or just after its own instant lands in the (empty) bottom or a
//     rung bucket by arithmetic instead of splicing in front of an
//     already-materialized run;
//   * a splice that would shift more than kBottomThreshold entries
//     (bulk scheduling in arbitrary time order — e.g. a driver starting
//     hundreds of sessions between run_until() phases — turning bottom
//     into a de-facto sorted working set) instead spills bottom's
//     pending run into a fresh finest rung, so later inserts in that
//     range are bucketed by arithmetic and sorted once, when they are
//     about to fire.
//
// min_time() is O(1) on a prepared queue — the head of the front run
// (or of bottom) is the global minimum.  The checker driver
// (src/check/runner.cpp) and the future per-shard horizon barriers
// (ROADMAP item 1) lean on this being cheap.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "base/expect.hpp"
#include "base/time.hpp"
#include "sim/event.hpp"

namespace bneck::sim {

#ifdef BNECK_LADDER_STATS
struct LadderStats {
  unsigned long long pops = 0, pushes = 0, refills = 0, spawns = 0,
                     spawn_entries = 0, demotes = 0, demote_entries = 0,
                     splices = 0, splice_moved = 0, sorted_entries = 0,
                     batch_entries = 0, bucket_scans = 0, rung_inserts = 0,
                     top_inserts = 0, bottom_runs = 0, run_len_sum = 0,
                     spills = 0, spill_entries = 0;
  ~LadderStats();
};
inline LadderStats g_ladder_stats;
#endif

class LadderQueue {
 public:
  /// Buckets per rung.  Each lazy demotion refines bucket width by this
  /// factor, so kMaxRungs rungs resolve a span of kBuckets^kMaxRungs ns
  /// (~5e14 s) down to single-nanosecond buckets — far beyond any run.
  static constexpr std::size_t kBuckets = 128;
  /// A mixed-timestamp bucket at most this large is sorted straight
  /// into bottom; larger ones spawn a finer rung instead.  Sized so the
  /// one-off sort is cheap while bottom runs stay long enough to
  /// amortize refill bookkeeping.
  static constexpr std::size_t kBottomThreshold = 512;
  /// A splice into bottom may shift at most this many entries; deeper
  /// inserts spill bottom's pending run into a finer rung instead
  /// (quadratic-insert guard — see bottom_insert()).
  static constexpr std::size_t kSpliceDepth = 64;
  static constexpr std::size_t kMaxRungs = 8;

  void push(TimeNs t, std::uint64_t seq, Event&& ev) {
    if (size_ == 0) {
      // Fresh queue: this event IS bottom, and its timestamp anchors
      // the bottom coverage window.
      size_ = 1;
      bottom_.emplace_back(t, seq, std::move(ev));
      bot_limit_ = t + 1;
      return;
    }
    ++size_;
    if (t < bot_limit_) {
      bottom_insert(t, seq, std::move(ev));
      return;
    }
#ifdef BNECK_LADDER_STATS
    ++g_ladder_stats.pushes;
#endif
    // Finest rung first: a finer rung's coverage is carved out of its
    // parent's current bucket, so the first rung (from the inside out)
    // whose end exceeds t is the one that owns t's range.
    for (std::size_t i = nrungs_; i-- > 0;) {
      Rung& r = rungs_[i];
      if (t < r.end) {
        const std::size_t idx =
            static_cast<std::size_t>((t - r.start) / r.width);
        r.buckets[idx].emplace_back(t, seq, std::move(ev));
        ++r.count;
#ifdef BNECK_LADDER_STATS
        ++g_ladder_stats.rung_inserts;
#endif
        return;
      }
    }
#ifdef BNECK_LADDER_STATS
    ++g_ladder_stats.top_inserts;
#endif
    top_.emplace_back(t, seq, std::move(ev));
    if (t < top_min_) top_min_ = t;
    if (t > top_max_) top_max_ = t;
  }

  /// Removes and returns the earliest event; *t_out receives its
  /// timestamp.  Requires !empty() and a prepared queue (see prepare()).
  Event pop(TimeNs* t_out) {
#ifdef BNECK_LADDER_STATS
    ++g_ladder_stats.pops;
#endif
    Entry& e = bottom_[bot_head_];
    *t_out = e.t;
    Event ev = std::move(e.ev);
    ++bot_head_;
    --size_;
    if (bot_head_ == bottom_.size()) {
      bottom_.clear();
      bot_head_ = 0;
      // Refill is deferred to prepare(): the event just popped is about
      // to fire, and anything it schedules "soon" (at or just after its
      // own timestamp) must not find the *next* run already sitting in
      // bottom — a run at T > now would turn every such insert into a
      // splice in front of it, an O(run) memmove.  With the refill
      // deferred, those inserts land in the empty bottom (same instant)
      // or a rung bucket (later) by arithmetic.
      if (size_ == 0) {
        // Fully drained: drop exhausted rungs (their buckets are already
        // empty) so a later push can re-anchor bot_limit_ without a
        // stale rung capturing inserts behind its drain cursor.
        nrungs_ = 0;
      }
    }
    return ev;
  }

  /// Re-establishes the invariant that bottom holds the globally
  /// earliest events.  The simulator calls this after firing each event
  /// (and the accessors assume it): between a pop that drained bottom
  /// and this call, min_time() is not meaningful.  O(1) when bottom is
  /// already non-empty.
  void prepare() {
    if (size_ > 0 && bottom_.empty()) refill_bottom();
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Timestamp of the earliest pending event; kTimeNever when empty.
  /// O(1) on a prepared queue: bottom's head is the global min.
  [[nodiscard]] TimeNs min_time() const {
    return size_ == 0 ? kTimeNever : bottom_[bot_head_].t;
  }

  /// Visits every pending entry as fn(t, seq, const Event&), in
  /// unspecified order (structure order here: bottom, rung buckets,
  /// top).  Snapshot hook for the model checker — callers needing
  /// (time, seq) order sort the result.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = bot_head_; i < bottom_.size(); ++i) {
      fn(bottom_[i].t, bottom_[i].seq, bottom_[i].ev);
    }
    for (std::size_t r = 0; r < nrungs_; ++r) {
      for (const std::vector<Entry>& bucket : rungs_[r].buckets) {
        for (const Entry& e : bucket) fn(e.t, e.seq, e.ev);
      }
    }
    for (const Entry& e : top_) fn(e.t, e.seq, e.ev);
  }

  /// Discards every pending entry and resets the ladder to its
  /// freshly-constructed state (restore hook — the caller re-pushes a
  /// snapshot afterwards, in (time, seq) order so in-bucket insertion
  /// order keeps matching the determinism contract).
  void clear() {
    bottom_.clear();
    bot_head_ = 0;
    bot_limit_ = 0;
    for (Rung& r : rungs_) {
      for (std::vector<Entry>& bucket : r.buckets) bucket.clear();
      r.start = 0;
      r.width = 1;
      r.end = 0;
      r.cur = 0;
      r.count = 0;
    }
    nrungs_ = 0;
    top_.clear();
    top_min_ = kTimeNever;
    top_max_ = -1;
    size_ = 0;
  }

 private:
  struct Entry {
    TimeNs t;
    std::uint64_t seq;
    Event ev;
    Entry(TimeNs t_, std::uint64_t seq_, Event&& ev_)
        : t(t_), seq(seq_), ev(std::move(ev_)) {}
    Entry(Entry&&) noexcept = default;
    Entry& operator=(Entry&&) noexcept = default;
  };

  struct Rung {
    TimeNs start = 0;  // time of bucket 0
    TimeNs width = 1;  // bucket width, >= 1
    TimeNs end = 0;    // coverage end (clamped to the range demoted here)
    std::size_t cur = 0;    // next bucket to drain
    std::size_t count = 0;  // entries remaining across buckets
    std::array<std::vector<Entry>, kBuckets> buckets;
  };

  static bool entry_before(const Entry& a, const Entry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  /// Inserts an event whose time falls inside bottom's coverage.  seq is
  /// the largest in the queue, so its (time, seq) slot is after every
  /// entry with timestamp <= t — for the common schedule-during-fire
  /// case (t at or near the instant being drained, bottom holding one
  /// same-timestamp run) that is the tail, and the splice is a plain
  /// append.  A deep splice — more than kBottomThreshold entries to
  /// shift — means bottom has become a de-facto sorted working set
  /// (bulk scheduling in arbitrary time order, e.g. a driver starting
  /// hundreds of sessions between run_until() phases); repeated sorted
  /// inserts there are quadratic, so past kSpliceDepth the pending run
  /// and the newcomer spill into a fresh finest rung covering
  /// [min(t, head), bot_limit_): later inserts in that range then land
  /// in buckets by O(1) arithmetic, and sorting happens once per bucket
  /// when it is about to fire.
  void bottom_insert(TimeNs t, std::uint64_t seq, Event&& ev) {
    const auto it = std::upper_bound(
        bottom_.begin() + static_cast<std::ptrdiff_t>(bot_head_),
        bottom_.end(), t,
        [](TimeNs x, const Entry& e) { return x < e.t; });
    if (static_cast<std::size_t>(bottom_.end() - it) > kSpliceDepth &&
        nrungs_ < kMaxRungs) {
      spill_bottom(t, seq, std::move(ev));
      return;
    }
#ifdef BNECK_LADDER_STATS
    ++g_ladder_stats.splices;
    g_ladder_stats.splice_moved +=
        static_cast<unsigned long long>(bottom_.end() - it);
#endif
    bottom_.emplace(it, t, seq, std::move(ev));
  }

  /// Demotes bottom's pending entries plus one newcomer into a fresh
  /// finest rung covering [min(t, pending head), bot_limit_), then
  /// refills bottom from it.  The new rung's coverage ends exactly where
  /// the previous bottom coverage did, so the rung tiling stays
  /// disjoint, and within each bucket entries arrive in (time, seq)
  /// order for equal timestamps (bottom was sorted; the newcomer's seq
  /// is the global max and lands last), preserving the batch-drain
  /// contract.
  void spill_bottom(TimeNs t, std::uint64_t seq, Event&& ev) {
#ifdef BNECK_LADDER_STATS
    ++g_ladder_stats.spills;
    g_ladder_stats.spill_entries += bottom_.size() - bot_head_ + 1;
#endif
    Rung& c = rungs_[nrungs_++];
    c.start = std::min(t, bottom_[bot_head_].t);
    const TimeNs span = bot_limit_ - c.start;
    c.width = (span + static_cast<TimeNs>(kBuckets) - 1) /
              static_cast<TimeNs>(kBuckets);
    c.end = bot_limit_;
    c.cur = 0;
    c.count = bottom_.size() - bot_head_ + 1;
    for (std::size_t i = bot_head_; i < bottom_.size(); ++i) {
      Entry& e = bottom_[i];
      c.buckets[static_cast<std::size_t>((e.t - c.start) / c.width)]
          .push_back(std::move(e));
    }
    c.buckets[static_cast<std::size_t>((t - c.start) / c.width)]
        .emplace_back(t, seq, std::move(ev));
    bottom_.clear();
    bot_head_ = 0;
    refill_bottom();
  }

  /// Establishes the next bottom run.  Requires size_ > 0 and bottom
  /// empty.  Walks the finest rung to its next non-empty bucket,
  /// demoting oversized mixed buckets into finer rungs, and sweeping
  /// top into a fresh rung 0 when every rung has drained.
  void refill_bottom() {
#ifdef BNECK_LADDER_STATS
    ++g_ladder_stats.refills;
#endif
    for (;;) {
      if (nrungs_ == 0) {
        demote_top();
        continue;
      }
      Rung& r = rungs_[nrungs_ - 1];
      if (r.count == 0) {
        --nrungs_;  // exhausted; parent's scan skips its emptied bucket
        continue;
      }
      while (r.buckets[r.cur].empty()) {
        ++r.cur;
#ifdef BNECK_LADDER_STATS
        ++g_ladder_stats.bucket_scans;
#endif
        BNECK_EXPECT(r.cur < kBuckets, "ladder rung count desynchronized");
      }
      std::vector<Entry>& bucket = r.buckets[r.cur];
      const TimeNs bucket_start = r.start + static_cast<TimeNs>(r.cur) * r.width;
      const TimeNs bucket_end = std::min(bucket_start + r.width, r.end);

      // The batch-drain fast path: equal timestamps are already in seq
      // order (appended in insertion order), so the whole run moves to
      // bottom with zero comparisons and fires back to back.
      bool all_equal = true;
      for (const Entry& e : bucket) {
        if (e.t != bucket[0].t) {
          all_equal = false;
          break;
        }
      }
      if (all_equal || bucket.size() <= kBottomThreshold ||
          nrungs_ == kMaxRungs) {
        // Move the bucket into bottom — verbatim for a same-timestamp
        // run (insertion order IS (time, seq) order: the batch-drain
        // fast path), sorted otherwise.  Bottom then owns time only up
        // to its own last entry; the tail of the bucket's range stays
        // with the rung, whose cursor is NOT advanced, so the (now
        // empty, still current) bucket keeps catching inserts there by
        // arithmetic.  This keeps bottom's coverage tight: follow-up
        // events that a firing batch schedules a little ahead land in
        // the bucket instead of splicing one by one into a sorted
        // vector — an insert splices only when it lands at or before
        // bottom's last timestamp, and a same-instant insert appends at
        // the tail for free.
        r.count -= bucket.size();
        bottom_.swap(bucket);  // bucket inherits bottom's spent capacity
        if (!all_equal) {
          std::sort(bottom_.begin(), bottom_.end(), entry_before);
        }
#ifdef BNECK_LADDER_STATS
        ++g_ladder_stats.bottom_runs;
        g_ladder_stats.run_len_sum += bottom_.size();
        (all_equal ? g_ladder_stats.batch_entries
                   : g_ladder_stats.sorted_entries) += bottom_.size();
#endif
        bot_limit_ = bottom_.back().t + 1;
        return;
      }

      // Lazy demotion: spread the oversized bucket across a finer rung
      // covering exactly this bucket's range, and keep draining there.
#ifdef BNECK_LADDER_STATS
      ++g_ladder_stats.spawns;
      g_ladder_stats.spawn_entries += bucket.size();
#endif
      Rung& c = rungs_[nrungs_++];
      c.start = bucket_start;
      c.width = (r.width + static_cast<TimeNs>(kBuckets) - 1) /
                static_cast<TimeNs>(kBuckets);
      c.end = bucket_end;
      c.cur = 0;
      c.count = bucket.size();
      for (Entry& e : bucket) {
        c.buckets[static_cast<std::size_t>((e.t - c.start) / c.width)]
            .push_back(std::move(e));
      }
      r.count -= bucket.size();
      bucket.clear();  // parent's scan must see this bucket empty
    }
  }

  /// Sweeps top into a fresh rung 0 sized to its [min, max] span.
  void demote_top() {
#ifdef BNECK_LADDER_STATS
    ++g_ladder_stats.demotes;
    g_ladder_stats.demote_entries += top_.size();
#endif
    BNECK_EXPECT(!top_.empty(), "ladder refill with nothing pending");
    Rung& r = rungs_[0];
    nrungs_ = 1;
    r.start = top_min_;
    const TimeNs span = top_max_ - top_min_ + 1;
    r.width = (span + static_cast<TimeNs>(kBuckets) - 1) /
              static_cast<TimeNs>(kBuckets);
    r.end = r.start + r.width * static_cast<TimeNs>(kBuckets);
    r.cur = 0;
    r.count = top_.size();
    for (Entry& e : top_) {
      r.buckets[static_cast<std::size_t>((e.t - r.start) / r.width)]
          .push_back(std::move(e));
    }
    top_.clear();
    top_min_ = kTimeNever;
    top_max_ = -1;
  }

  std::vector<Entry> bottom_;
  std::size_t bot_head_ = 0;
  /// Bottom owns the time range below this; every pending event at a
  /// time < bot_limit_ lives in (and every such insert splices into)
  /// bottom.  Equals the finest rung's next-bucket start.
  TimeNs bot_limit_ = 0;

  std::array<Rung, kMaxRungs> rungs_;
  std::size_t nrungs_ = 0;

  std::vector<Entry> top_;
  TimeNs top_min_ = kTimeNever;
  TimeNs top_max_ = -1;

  std::size_t size_ = 0;
};

#ifdef BNECK_LADDER_STATS
inline LadderStats::~LadderStats() {
  std::fprintf(stderr,
               "[ladder] pops=%llu pushes(non-bottom)=%llu splices=%llu "
               "splice_moved=%llu spills=%llu spill_entries=%llu "
               "rung_inserts=%llu top_inserts=%llu\n"
               "[ladder] refills=%llu bottom_runs=%llu run_len_sum=%llu "
               "bucket_scans=%llu\n"
               "[ladder] spawns=%llu spawn_entries=%llu demotes=%llu "
               "demote_entries=%llu sorted=%llu batch=%llu\n",
               pops, pushes, splices, splice_moved, spills, spill_entries,
               rung_inserts, top_inserts,
               refills, bottom_runs, run_len_sum, bucket_scans, spawns,
               spawn_entries, demotes, demote_entries, sorted_entries,
               batch_entries);
}
#endif

}  // namespace bneck::sim
