// Conservative parallel-discrete-event scheduling across shards.
//
// ShardedScheduler<Payload> advances K privately-owned simulators in
// barrier-synchronized time windows.  The conservative invariant comes
// from the network model: a message sent from one shard during a window
// arrives at least `lookahead` later (lookahead = minimum propagation
// delay of any cross-shard link, net/partition.hpp), so a window of that
// width can run with no incoming surprises.  Windows are not fixed-width
// on the timeline, though: after every exchange the next horizon is
//
//     H = (min over shards of the shard's next event time) + lookahead
//
// which jumps straight over quiescent gaps — essential here, where LAN
// lookahead is 1 µs but B-Neck's inter-phase silences span tens of ms.
//
// Each round has two barriers:
//   run barrier    — every shard has processed its events below H
//                    (Simulator::run_before, min_time()'s O(1) peek is
//                    the polling primitive) and finished writing its
//                    outboxes;
//   sync barrier   — every shard has drained the outboxes addressed to
//                    it into its own event queue and published its local
//                    minimum; the barrier's completion step computes the
//                    next horizon (or termination) before anyone resumes.
// All cross-thread data (outboxes, horizon) is handed over at these
// barriers only — no locks, no atomics in the window hot path, and the
// happens-before edges the barriers provide are exactly what TSan
// verifies in the build-tsan CI cell.
//
// Determinism: every cross-shard message carries (arrival time, source
// shard, per-source sequence).  Each exchange round sorts its batch on
// exactly that key before scheduling, and a batch is scheduled at the
// first barrier after its sends (the conservative invariant puts every
// arrival at or beyond the next horizon, so the future-dated insert is
// always legal).  Fixed the shard count, the destination queue therefore
// receives cross-shard deliveries in identical (time, shard, seq) order
// on every run — the sharded half of the determinism contract
// (docs/architecture.md).  Scheduling at the send-adjacent barrier (not
// the arrival window) also keeps a delivery's insertion sequence aligned
// with its *send* time, matching the single-thread engine's (time,
// insertion-seq) order everywhere except for sends that race within one
// window on different shards — the irreducible ambiguity of parallel
// execution.
#pragma once

#include <algorithm>
#include <barrier>
#include <cstdint>
#include <exception>
#include <functional>
#include <iterator>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "base/expect.hpp"
#include "base/time.hpp"
#include "sim/simulator.hpp"

namespace bneck::sim {

template <class Payload>
class ShardedScheduler {
 public:
  /// Runs on the destination shard's worker thread at the exchange
  /// barrier; must schedule `payload` into that shard's simulator at
  /// absolute (future) time t.
  using Deliver =
      std::function<void(std::int32_t dst_shard, TimeNs t, const Payload&)>;

  /// `sims[k]` is shard k's private simulator; all must outlive the
  /// scheduler.  `lookahead` is the partition's cross-shard minimum
  /// delay (kTimeNever when nothing can cross).
  ShardedScheduler(std::vector<Simulator*> sims, TimeNs lookahead,
                   Deliver deliver)
      : sims_(std::move(sims)),
        lookahead_(lookahead),
        deliver_(std::move(deliver)),
        outbox_(sims_.size() * sims_.size()),
        post_seq_(sims_.size(), 0),
        posted_(sims_.size(), 0),
        local_min_(sims_.size(), kTimeNever),
        sync_barrier_(static_cast<std::ptrdiff_t>(sims_.size()),
                      SyncCompletion{this}),
        run_barrier_(static_cast<std::ptrdiff_t>(sims_.size())) {
    BNECK_EXPECT(!sims_.empty(), "sharded scheduler needs shards");
    BNECK_EXPECT(lookahead_ > 0, "non-positive lookahead");
  }

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  [[nodiscard]] std::int32_t shard_count() const {
    return static_cast<std::int32_t>(sims_.size());
  }

  /// Queues `payload` for arrival on shard `dst` at absolute time t.
  /// Must be called from shard `src`'s worker during a window (the
  /// transport's cross-shard send path); t must respect the lookahead,
  /// i.e. not fall inside the current window.
  void post(std::int32_t src, std::int32_t dst, TimeNs t,
            const Payload& payload) {
    BNECK_EXPECT(t >= horizon_, "cross-shard message inside the window");
    auto& box = outbox_[static_cast<std::size_t>(src) * sims_.size() +
                        static_cast<std::size_t>(dst)];
    box.push_back(Msg{t, src, post_seq_[static_cast<std::size_t>(src)]++,
                      payload});
    ++posted_[static_cast<std::size_t>(src)];
  }

  /// Runs every shard to global quiescence: all simulators idle and no
  /// staged or in-flight cross-shard messages.  Spawns shard_count - 1
  /// worker threads (the calling thread drives shard 0); reusable —
  /// schedule more work and call again, as the phased experiments do.
  void run_until_idle() {
    if (sims_.size() == 1) {
      sims_[0]->run_until_idle();
      return;
    }
    if (lookahead_ == kTimeNever) {
      // No link crosses shards: nothing can ever be posted, every shard
      // just runs to idle independently.
      run_detached_until_idle();
      return;
    }
    done_ = false;
    for (std::size_t k = 0; k < sims_.size(); ++k) {
      local_min_[k] = sims_[k]->next_event_time();
    }
    recompute_horizon();
    if (done_) return;  // globally idle already, nothing to run
    std::vector<std::thread> pool;
    pool.reserve(sims_.size() - 1);
    for (std::size_t k = 1; k < sims_.size(); ++k) {
      pool.emplace_back([this, k] { worker(static_cast<std::int32_t>(k)); });
    }
    worker(0);
    for (std::thread& t : pool) t.join();
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

  /// Barrier rounds executed since construction (cumulative over runs).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }
  /// Cross-shard messages posted since construction.
  [[nodiscard]] std::uint64_t messages_posted() const {
    std::uint64_t total = 0;
    for (const std::uint64_t n : posted_) total += n;
    return total;
  }
  [[nodiscard]] TimeNs lookahead() const { return lookahead_; }

 private:
  struct Msg {
    TimeNs t;
    std::int32_t src;
    std::uint64_t seq;
    Payload payload;
  };
  struct SyncCompletion {
    ShardedScheduler* self;
    void operator()() noexcept { self->recompute_horizon(); }
  };

  /// Runs as the sync barrier's completion step — all workers are parked,
  /// so it reads/writes the shared round state race-free.
  void recompute_horizon() {
    TimeNs g = kTimeNever;
    for (const TimeNs m : local_min_) g = std::min(g, m);
    if (g == kTimeNever || g > kTimeNever - lookahead_) {
      done_ = true;
      return;
    }
    horizon_ = g + lookahead_;
    ++windows_;
  }

  void worker(std::int32_t k) {
    const auto i = static_cast<std::size_t>(k);
    std::vector<Msg> batch;
    bool failed = false;
    while (!done_) {
      if (!failed) {
        try {
          sims_[i]->run_before(horizon_);
        } catch (...) {
          failed = true;
          const std::lock_guard<std::mutex> lock(error_mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
      }
      run_barrier_.arrive_and_wait();
      // Every outbox is final for this round; collect what is mine and
      // schedule it right away, in (time, shard, seq) order.  Every
      // arrival lies at or beyond the next horizon (conservative
      // invariant), so the future-dated insert is always legal, and
      // scheduling at the send-adjacent barrier keeps insertion order
      // close to the single-thread engine's.
      batch.clear();
      for (std::size_t src = 0; src < sims_.size(); ++src) {
        auto& box = outbox_[src * sims_.size() + i];
        batch.insert(batch.end(), std::make_move_iterator(box.begin()),
                     std::make_move_iterator(box.end()));
        box.clear();
      }
      if (!failed) {
        std::sort(batch.begin(), batch.end(), [](const Msg& a, const Msg& b) {
          if (a.t != b.t) return a.t < b.t;
          if (a.src != b.src) return a.src < b.src;
          return a.seq < b.seq;
        });
        for (const Msg& m : batch) deliver_(k, m.t, m.payload);
      }
      // A failed shard stops contributing work so the healthy shards
      // can still drain to quiescence before the error is rethrown.
      local_min_[i] = failed ? kTimeNever : sims_[i]->next_event_time();
      sync_barrier_.arrive_and_wait();
    }
  }

  /// The no-cross-links fast path: independent runs, one thread each.
  void run_detached_until_idle() {
    std::vector<std::thread> pool;
    pool.reserve(sims_.size() - 1);
    for (std::size_t k = 1; k < sims_.size(); ++k) {
      pool.emplace_back([this, k] {
        try {
          sims_[k]->run_until_idle();
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
      });
    }
    try {
      sims_[0]->run_until_idle();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    for (std::thread& t : pool) t.join();
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

  std::vector<Simulator*> sims_;
  TimeNs lookahead_;
  Deliver deliver_;

  // outbox_[src * K + dst]: written by shard src during a window,
  // drained into shard dst's simulator between the two barriers.
  std::vector<std::vector<Msg>> outbox_;
  std::vector<std::uint64_t> post_seq_;  // per-source message sequence
  std::vector<std::uint64_t> posted_;
  std::vector<TimeNs> local_min_;      // published at the sync barrier

  // Round state: written only by the sync barrier's completion step (all
  // workers parked), read by workers after release — the barrier is the
  // synchronization.
  TimeNs horizon_ = 0;
  bool done_ = false;
  std::uint64_t windows_ = 0;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;

  std::barrier<SyncCompletion> sync_barrier_;
  std::barrier<> run_barrier_;
};

}  // namespace bneck::sim
