// Typed simulator events.
//
// The simulator's hot path is dominated by one event kind: "deliver this
// small packet to that long-lived protocol object".  Wrapping every such
// delivery in a std::function forces a heap allocation per packet (the
// capture — a handler pointer plus a ~32-byte packet — exceeds the
// 16-byte small-object buffer of common std::function implementations),
// which at paper scale means tens of millions of allocations per run.
//
// Event is a tagged union of the two kinds the simulator needs:
//
//   Delivery — a trivially-copyable payload of at most kInlinePayloadBytes
//              stored inline in the event plus the DeliveryHandler that
//              receives it.  Never heap-allocates; moving the event is a
//              plain byte copy.
//   Callback — an arbitrary std::function<void()> for the rare cold-path
//              events (API joins/leaves/changes, periodic timers).  May
//              allocate, exactly as before.
//
// Handlers subclass DeliveryHandlerOf<T> for their payload type T; the
// byte-level type erasure stays inside this header.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace bneck::sim {

using EventFn = std::function<void()>;

/// Type-erased receiver of Delivery events.  Protocol objects outlive
/// every event addressed to them (they own the Simulator's workload), so
/// handlers are stored as plain pointers.
class DeliveryHandler {
 public:
  virtual void on_delivery_bytes(const void* payload) = 0;

 protected:
  ~DeliveryHandler() = default;
};

/// Typed delivery receiver (CRTP): Derived implements
/// on_delivery(const T&), which this base invokes directly from the one
/// virtual hop — no second dispatch per event.  Declare the base a
/// friend when on_delivery is private.  T must be trivially copyable and
/// fit the inline event buffer.
template <class Derived, class T>
class DeliveryHandlerOf : public DeliveryHandler {
 private:
  void on_delivery_bytes(const void* payload) final {
    static_cast<Derived*>(this)->on_delivery(
        *static_cast<const T*>(payload));
  }
};

class Event {
 public:
  /// Sized for the largest hot payload (core::Packet, proto::Cell, the
  /// ARQ wire frame); a static_assert at the schedule site keeps payloads
  /// honest.  40 bytes fits the 32-byte weighted Packet plus the ARQ
  /// sequence number.
  static constexpr std::size_t kInlinePayloadBytes = 40;
  /// Payloads are 8-byte-aligned (doubles/pointers), not max_align_t:
  /// the weaker alignment keeps Delivery at 48 bytes and sizeof(Event)
  /// one byte past it — growing the payload buffer must not balloon the
  /// event heap, whose footprint dominates the simulator's memory
  /// traffic.
  static constexpr std::size_t kPayloadAlign = alignof(double);

  explicit Event(EventFn fn) : kind_(Kind::Callback) {
    new (&fn_) EventFn(std::move(fn));
  }

  template <class Derived, class T>
  Event(DeliveryHandlerOf<Derived, T>& handler, const T& payload)
      : kind_(Kind::Delivery) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "delivery payloads are stored as raw bytes");
    static_assert(sizeof(T) <= kInlinePayloadBytes,
                  "payload exceeds the inline event buffer; grow "
                  "kInlinePayloadBytes or shrink the payload");
    static_assert(alignof(T) <= kPayloadAlign);
    delivery_.handler = &handler;
    std::memcpy(delivery_.bytes, &payload, sizeof(T));
  }

  Event(Event&& other) noexcept { adopt(std::move(other)); }
  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      destroy();
      adopt(std::move(other));
    }
    return *this;
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event() { destroy(); }

  void fire() {
    if (kind_ == Kind::Delivery) {
      delivery_.handler->on_delivery_bytes(delivery_.bytes);
    } else {
      fn_();
    }
  }

  [[nodiscard]] bool is_delivery() const { return kind_ == Kind::Delivery; }

  /// Deep copy, for the model checker's snapshot/restore seam
  /// (src/mc/): a Delivery is a plain byte copy, a Callback copies the
  /// std::function (which may allocate — acceptable off the hot path).
  [[nodiscard]] Event clone() const {
    if (kind_ == Kind::Delivery) return Event(delivery_);
    return Event(fn_);
  }

  /// Raw payload bytes of a Delivery event (for state fingerprinting and
  /// candidate enumeration).  Requires is_delivery().
  [[nodiscard]] const void* delivery_payload() const {
    return delivery_.bytes;
  }

  /// The handler a Delivery event is addressed to.  Requires
  /// is_delivery().
  [[nodiscard]] DeliveryHandler* delivery_handler() const {
    return delivery_.handler;
  }

 private:
  enum class Kind : unsigned char { Callback, Delivery };

  struct Delivery {
    DeliveryHandler* handler;
    alignas(kPayloadAlign) unsigned char bytes[kInlinePayloadBytes];
  };
  static_assert(sizeof(Delivery) == 8 + kInlinePayloadBytes,
                "payload buffer must start right after the handler");

  explicit Event(const Delivery& d) : kind_(Kind::Delivery) {
    delivery_ = d;
  }

  void adopt(Event&& other) noexcept {
    kind_ = other.kind_;
    if (kind_ == Kind::Callback) {
      new (&fn_) EventFn(std::move(other.fn_));
    } else {
      delivery_ = other.delivery_;
    }
  }

  void destroy() noexcept {
    if (kind_ == Kind::Callback) fn_.~EventFn();
  }

  union {
    EventFn fn_;
    Delivery delivery_;
  };
  Kind kind_;
};

}  // namespace bneck::sim
