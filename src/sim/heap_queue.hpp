// The owned 4-ary min-heap event queue (the PR-2 design, kept as the
// reference implementation behind the simulator's queue seam).
//
// BasicSimulator<HeapQueue> is the old simulator, byte for byte: the
// heap orders events by the packed 16-byte (time, insertion-sequence)
// key, children of node i are 4i+1..4i+4 so all four share one cache
// line, and the key/event arrays move in lockstep (the 56-byte event
// bodies are touched at most once per sift level).  It exists for two
// reasons:
//
//   * the A/B determinism gate: tests/sim_test.cpp runs randomized
//     schedules (including schedule-during-fire) through both this heap
//     and the production LadderQueue and asserts identical fire order —
//     any reordering bug in a new queue design fails against this
//     reference before it can touch a golden trace;
//   * the perf seam: bench/micro_substrate.cpp benches both queues side
//     by side, so queue experiments are one typedef away from an
//     interleaved same-binary comparison.
//
// The interface is the simulator's queue policy (see simulator.hpp):
// push(t, seq, Event), pop(&t), min_time(), empty(), size().  The
// caller owns the sequence counter; the queue only orders by it.
#pragma once

#include <cstdint>
#include <vector>

#include "base/time.hpp"
#include "sim/event.hpp"

namespace bneck::sim {

class HeapQueue {
 public:
  void push(TimeNs t, std::uint64_t seq, Event&& ev) {
    // Grow both arrays before mutating either: once capacity is secured
    // the push_backs cannot throw (Event's move constructor is
    // noexcept), so a bad_alloc can never leave keys_ and evs_
    // desynchronized.
    if (keys_.size() == keys_.capacity() || evs_.size() == evs_.capacity()) {
      const std::size_t want = keys_.size() < 32 ? 64 : keys_.size() * 2;
      keys_.reserve(want);
      evs_.reserve(want);
    }
    const Key k{t, seq};
    keys_.push_back(k);
    evs_.push_back(std::move(ev));
    // Sift the new leaf up (hole technique: one move per level).
    std::size_t i = keys_.size() - 1;
    if (i > 0 && before(k, keys_[(i - 1) >> 2])) {
      Event e = std::move(evs_[i]);
      do {
        const std::size_t parent = (i - 1) >> 2;
        if (!before(k, keys_[parent])) break;
        keys_[i] = keys_[parent];
        evs_[i] = std::move(evs_[parent]);
        i = parent;
      } while (i > 0);
      keys_[i] = k;
      evs_[i] = std::move(e);
    }
  }

  /// Removes and returns the earliest event; *t_out receives its
  /// timestamp.  Requires !empty().
  Event pop(TimeNs* t_out) {
    *t_out = keys_.front().t;
    Event ev = std::move(evs_.front());

    // Remove the root: move the last entry in and sift it down.
    const Key last_k = keys_.back();
    keys_.pop_back();
    const std::size_t n = keys_.size();
    if (n > 0) {
      Event last_e = std::move(evs_.back());
      evs_.pop_back();
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (before(keys_[c], keys_[best])) best = c;
        }
        if (!before(keys_[best], last_k)) break;
        keys_[i] = keys_[best];
        evs_[i] = std::move(evs_[best]);
        i = best;
      }
      keys_[i] = last_k;
      evs_[i] = std::move(last_e);
    } else {
      evs_.pop_back();
    }
    return ev;
  }

  /// Queue-policy hook for deferred housekeeping after an event fires;
  /// the heap keeps itself ordered on every push/pop, so this is a
  /// no-op.
  void prepare() {}

  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  /// Timestamp of the earliest pending event; kTimeNever when empty.
  [[nodiscard]] TimeNs min_time() const {
    return keys_.empty() ? kTimeNever : keys_.front().t;
  }

  /// Visits every pending entry as fn(t, seq, const Event&), in
  /// unspecified order (heap order here).  Snapshot hook for the model
  /// checker — callers needing (time, seq) order sort the result.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      fn(keys_[i].t, keys_[i].seq, evs_[i]);
    }
  }

  /// Discards every pending entry (restore hook — the caller re-pushes
  /// a snapshot afterwards).
  void clear() {
    keys_.clear();
    evs_.clear();
  }

 private:
  struct Key {
    TimeNs t;
    std::uint64_t seq;
  };

  /// Heap order: earlier time first, ties by insertion sequence — the
  /// determinism contract.
  static bool before(const Key& a, const Key& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  std::vector<Key> keys_;
  std::vector<Event> evs_;
};

}  // namespace bneck::sim
