#include "wire/codec.hpp"

#include <bit>
#include <cmath>

namespace bneck::wire {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         static_cast<std::uint32_t>(b[off + 1]) << 8 |
         static_cast<std::uint32_t>(b[off + 2]) << 16 |
         static_cast<std::uint32_t>(b[off + 3]) << 24;
}

std::int32_t get_i32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::int32_t>(get_u32(b, off));
}

std::uint64_t get_u64(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint64_t>(get_u32(b, off)) |
         static_cast<std::uint64_t>(get_u32(b, off + 4)) << 32;
}

double get_f64(std::span<const std::uint8_t> b, std::size_t off) {
  return std::bit_cast<double>(get_u64(b, off));
}

void put_header(std::vector<std::uint8_t>& out, FrameKind kind) {
  put_u8(out, kMagic0);
  put_u8(out, kMagic1);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(kind));
}

std::uint32_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

// Appends the trailing checksum over everything the encoder wrote for
// this frame (out[start..end)).
void seal(std::vector<std::uint8_t>& out, std::size_t start) {
  put_u32(out, fnv1a({out.data() + start, out.size() - start}));
}

DecodeResult err(const char* what) {
  DecodeResult r;
  r.error = what;
  return r;
}

}  // namespace

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::DecodeError: return "decode-error";
    case RejectReason::UpstreamType: return "upstream-type";
    case RejectReason::BadEta: return "bad-eta";
    case RejectReason::BadJoinHop: return "bad-join-hop";
    case RejectReason::BadJoinPath: return "bad-join-path";
    case RejectReason::ReJoin: return "re-join";
    case RejectReason::UnknownSession: return "unknown-session";
    case RejectReason::DepartedSession: return "departed-session";
    case RejectReason::BadHop: return "bad-hop";
    case RejectReason::InvariantTrip: return "invariant-trip";
    case RejectReason::TooManyPeers: return "too-many-peers";
    case RejectReason::StaleFrame: return "stale-frame";
  }
  return "?";
}

void encode_packet(const core::Packet& p, std::span<const LinkId> path,
                   std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + kPacketFrameBytes + 4 * path.size());
  put_header(out, FrameKind::Packet);
  put_u8(out, static_cast<std::uint8_t>(p.type));
  put_u8(out, static_cast<std::uint8_t>(p.tag));
  put_u8(out, p.beta ? 1 : 0);
  put_u8(out, 0);  // reserved
  put_i32(out, p.session.value());
  put_i32(out, p.eta.value());
  put_i32(out, p.hop);
  put_u32(out, static_cast<std::uint32_t>(path.size()));
  put_f64(out, p.lambda);
  put_f64(out, p.weight);
  for (const LinkId e : path) put_i32(out, e.value());
}

void encode_data(std::uint64_t seq, std::span<const std::uint8_t> inner,
                 std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  out.reserve(start + kDataPrefixBytes + inner.size() + kChecksumBytes);
  put_header(out, FrameKind::Data);
  put_u64(out, seq);
  out.insert(out.end(), inner.begin(), inner.end());
  seal(out, start);
}

void encode_ack(std::uint64_t cumulative, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  put_header(out, FrameKind::Ack);
  put_u64(out, cumulative);
  seal(out, start);
}

void encode_heartbeat(std::uint32_t live_sessions,
                      std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  put_header(out, FrameKind::Heartbeat);
  put_u32(out, live_sessions);
  seal(out, start);
}

void encode_status_request(std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  put_header(out, FrameKind::StatusRequest);
  seal(out, start);
}

void encode_status_reply(const StatusReply& status,
                         std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  put_header(out, FrameKind::StatusReply);
  put_u8(out, status.stable ? 1 : 0);
  put_u8(out, 0);
  put_u8(out, 0);
  put_u8(out, 0);
  put_u32(out, status.active_sessions);
  put_u64(out, status.packets_seen);
  put_u64(out, status.retransmissions);
  put_u32(out, status.expired_sessions);
  for (const std::uint32_t c : status.rejects) put_u32(out, c);
  seal(out, start);
}

void encode_shutdown(std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  put_header(out, FrameKind::Shutdown);
  seal(out, start);
}

DecodeResult decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) return err("frame shorter than header");
  if (bytes[0] != kMagic0 || bytes[1] != kMagic1) return err("bad magic");
  if (bytes[2] != kWireVersion) return err("unsupported wire version");
  if (bytes[3] >= static_cast<std::uint8_t>(kFrameKindCount)) {
    return err("unknown frame kind");
  }
  DecodeResult r;
  r.frame.kind = static_cast<FrameKind>(bytes[3]);

  // Every non-Packet frame ends with a checksum over the rest; verify
  // it before trusting any field.
  if (r.frame.kind != FrameKind::Packet) {
    if (bytes.size() < kHeaderBytes + kChecksumBytes) {
      return err("frame shorter than checksum trailer");
    }
    const std::size_t body = bytes.size() - kChecksumBytes;
    if (fnv1a(bytes.first(body)) != get_u32(bytes, body)) {
      return err("frame checksum mismatch");
    }
  }

  switch (r.frame.kind) {
    case FrameKind::StatusRequest:
    case FrameKind::Shutdown:
      if (bytes.size() != kControlFrameBytes) return err("trailing bytes");
      return r;

    case FrameKind::StatusReply: {
      if (bytes.size() != kStatusReplyBytes) {
        return err("bad status-reply length");
      }
      if (bytes[4] > 1) return err("bad stable flag");
      if (bytes[5] != 0 || bytes[6] != 0 || bytes[7] != 0) {
        return err("nonzero reserved bytes");
      }
      r.frame.status.stable = bytes[4] == 1;
      r.frame.status.active_sessions = get_u32(bytes, 8);
      r.frame.status.packets_seen = get_u64(bytes, 12);
      r.frame.status.retransmissions = get_u64(bytes, 20);
      r.frame.status.expired_sessions = get_u32(bytes, 28);
      for (int i = 0; i < kRejectReasonCount; ++i) {
        r.frame.status.rejects[static_cast<std::size_t>(i)] =
            get_u32(bytes, 32 + 4 * static_cast<std::size_t>(i));
      }
      return r;
    }

    case FrameKind::Ack:
      if (bytes.size() != kAckFrameBytes) return err("bad ack length");
      r.frame.seq = get_u64(bytes, 4);
      return r;

    case FrameKind::Heartbeat:
      if (bytes.size() != kHeartbeatFrameBytes) {
        return err("bad heartbeat length");
      }
      r.frame.heartbeat_sessions = get_u32(bytes, 4);
      return r;

    case FrameKind::Data: {
      if (bytes.size() <
          kDataPrefixBytes + kPacketFrameBytes + kChecksumBytes) {
        return err("truncated data frame");
      }
      const std::uint64_t seq = get_u64(bytes, 4);
      // The wrapped frame must be exactly one Packet frame — no nested
      // reliability, no control frames riding the sequenced stream.
      DecodeResult inner = decode(bytes.subspan(
          kDataPrefixBytes,
          bytes.size() - kDataPrefixBytes - kChecksumBytes));
      if (!inner.ok()) return inner;
      if (inner.frame.kind != FrameKind::Packet) {
        return err("data frame wraps a non-packet frame");
      }
      r.frame = std::move(inner.frame);
      r.frame.kind = FrameKind::Data;
      r.frame.seq = seq;
      return r;
    }

    case FrameKind::Packet:
      break;
  }

  if (bytes.size() < kPacketFrameBytes) return err("truncated packet frame");
  if (bytes[4] >= static_cast<std::uint8_t>(core::kPacketTypeCount)) {
    return err("packet type out of range");
  }
  if (bytes[5] > static_cast<std::uint8_t>(core::ResponseTag::Bottleneck)) {
    return err("response tag out of range");
  }
  if ((bytes[6] & ~std::uint8_t{1}) != 0) return err("unknown flag bits");
  if (bytes[7] != 0) return err("nonzero reserved byte");

  core::Packet& p = r.frame.packet;
  p.type = static_cast<core::PacketType>(bytes[4]);
  p.tag = static_cast<core::ResponseTag>(bytes[5]);
  p.beta = bytes[6] == 1;
  p.session = SessionId{get_i32(bytes, 8)};
  p.eta = LinkId{get_i32(bytes, 12)};
  p.hop = get_i32(bytes, 16);
  const std::uint32_t path_len = get_u32(bytes, 20);
  p.lambda = get_f64(bytes, 24);
  p.weight = get_f64(bytes, 32);

  if (!p.session.valid()) return err("invalid session id");
  if (p.eta.value() < -1) return err("invalid eta link id");
  if (p.hop < -1 || p.hop > kMaxHop) return err("hop out of bounds");
  if (std::isnan(p.lambda) || p.lambda < 0) return err("bad lambda");
  if (!std::isfinite(p.weight) || p.weight <= 0) return err("bad weight");

  if (path_len > 0 && p.type != core::PacketType::Join) {
    return err("path suffix on a non-Join packet");
  }
  // A session path has at least the two access links (net::Path).
  if (p.type == core::PacketType::Join && path_len < 2) {
    return err("Join without a session path");
  }
  if (path_len > kMaxPathLinks) return err("path suffix too long");
  if (bytes.size() != kPacketFrameBytes + 4 * std::size_t{path_len}) {
    return err("frame length does not match path length");
  }
  r.frame.path.reserve(path_len);
  for (std::uint32_t i = 0; i < path_len; ++i) {
    const std::int32_t link = get_i32(bytes, kPacketFrameBytes + 4 * i);
    if (link < 0) return err("invalid path link id");
    r.frame.path.push_back(LinkId{link});
  }
  return r;
}

}  // namespace bneck::wire
