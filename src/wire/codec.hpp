// Wire format for B-Neck control packets.
//
// The simulator moves core::Packet structs between tasks by value; real
// processes need an explicit byte layout.  This module is that layout:
// a little-endian, versioned frame codec with pure encode/decode
// functions — no sockets, no peer, unit-testable in isolation (and
// fuzzable: `bneck_check --codec-seeds` round-trips and mutates frames
// through it).
//
// Every frame starts with a 4-byte header:
//
//   offset  size  field
//   0       1     magic 'B' (0x42)
//   1       1     magic 'N' (0x4E)
//   2       1     version (kWireVersion)
//   3       1     frame kind (FrameKind)
//
// A Packet frame (kind 0) continues with a fixed 36-byte body, then an
// optional path suffix (Join only — see docs/wire_format.md for why the
// wire Join carries the session path, a deliberate divergence from the
// paper's abstract messages):
//
//   4       1     packet type (core::PacketType, 0..6)
//   5       1     response tag (core::ResponseTag, 0..2)
//   6       1     flags (bit 0 = beta; other bits must be zero)
//   7       1     reserved (must be zero)
//   8       4     session id (int32)
//   12      4     eta link id (int32, -1 = no restricting link)
//   16      4     hop (int32)
//   20      4     path length (uint32; >= 2 on Join, 0 otherwise)
//   24      8     lambda (IEEE-754 double bits)
//   32      8     weight (IEEE-754 double bits)
//   40      4*n   path link ids (int32 each, Join only)
//
// StatusRequest (1) and Shutdown (3) frames are header-only; a
// StatusReply (2) frame carries the daemon's convergence snapshot.
//
// decode() trusts nothing: magic, version, kind, enum ranges, hop and
// id bounds, flag/reserved bytes, float sanity and exact frame length
// are all validated, and violations come back as an expect-style error
// string instead of an exception or abort — a hostile or corrupted
// datagram must never take the daemon down.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/ids.hpp"
#include "core/packet.hpp"

namespace bneck::wire {

inline constexpr std::uint8_t kMagic0 = 0x42;  // 'B'
inline constexpr std::uint8_t kMagic1 = 0x4E;  // 'N'
inline constexpr std::uint8_t kWireVersion = 1;

inline constexpr std::size_t kHeaderBytes = 4;
inline constexpr std::size_t kPacketFrameBytes = 40;
// Header + stable flag + 3 reserved + active sessions + packets seen.
inline constexpr std::size_t kStatusReplyBytes = 20;

/// Ingress sanity bound on the hop index; real paths are far shorter,
/// and the daemon re-checks against the session's actual path length.
inline constexpr std::int32_t kMaxHop = 4096;
/// Ingress sanity bound on the Join path suffix.
inline constexpr std::size_t kMaxPathLinks = 4096;

enum class FrameKind : std::uint8_t {
  Packet = 0,
  StatusRequest = 1,
  StatusReply = 2,
  Shutdown = 3,
};
inline constexpr int kFrameKindCount = 4;

/// Daemon convergence snapshot (StatusReply body).
struct StatusReply {
  bool stable = false;             // every router-link task stable
  std::uint32_t active_sessions = 0;
  std::uint64_t packets_seen = 0;  // wire frames accepted since start

  friend bool operator==(const StatusReply&, const StatusReply&) = default;
};

/// A decoded frame.  `packet`/`path` are meaningful for kind Packet
/// (path nonempty only for Join), `status` for kind StatusReply.
struct Frame {
  FrameKind kind = FrameKind::Packet;
  core::Packet packet;
  std::vector<LinkId> path;
  StatusReply status;
};

/// Expect-style decode outcome: `error` is nullptr on success, else a
/// static description of the first violated rule.  Never throws.
struct DecodeResult {
  Frame frame;
  const char* error = nullptr;

  [[nodiscard]] bool ok() const { return error == nullptr; }
};

// ---- encoders (append to `out`; pure functions of their arguments) ----

/// Encodes a packet frame.  `path` must be empty unless p is a Join.
void encode_packet(const core::Packet& p, std::span<const LinkId> path,
                   std::vector<std::uint8_t>& out);
inline void encode_packet(const core::Packet& p,
                          std::vector<std::uint8_t>& out) {
  encode_packet(p, {}, out);
}

void encode_status_request(std::vector<std::uint8_t>& out);
void encode_status_reply(const StatusReply& status,
                         std::vector<std::uint8_t>& out);
void encode_shutdown(std::vector<std::uint8_t>& out);

// ---- decoder ----

/// Decodes one datagram.  Validates framing, enum ranges, hop/id bounds
/// and float sanity; accepts exactly one frame per buffer (trailing
/// bytes are an error).  decode(encode(f)) reproduces f for every frame
/// the protocol emits.
[[nodiscard]] DecodeResult decode(std::span<const std::uint8_t> bytes);

}  // namespace bneck::wire
