// Wire format for B-Neck control packets.
//
// The simulator moves core::Packet structs between tasks by value; real
// processes need an explicit byte layout.  This module is that layout:
// a little-endian, versioned frame codec with pure encode/decode
// functions — no sockets, no peer, unit-testable in isolation (and
// fuzzable: `bneck_check --codec-seeds` round-trips and mutates frames
// through it).
//
// Every frame starts with a 4-byte header:
//
//   offset  size  field
//   0       1     magic 'B' (0x42)
//   1       1     magic 'N' (0x4E)
//   2       1     version (kWireVersion)
//   3       1     frame kind (FrameKind)
//
// A Packet frame (kind 0) continues with a fixed 36-byte body, then an
// optional path suffix (Join only — see docs/wire_format.md for why the
// wire Join carries the session path, a deliberate divergence from the
// paper's abstract messages):
//
//   4       1     packet type (core::PacketType, 0..6)
//   5       1     response tag (core::ResponseTag, 0..2)
//   6       1     flags (bit 0 = beta; other bits must be zero)
//   7       1     reserved (must be zero)
//   8       4     session id (int32)
//   12      4     eta link id (int32, -1 = no restricting link)
//   16      4     hop (int32)
//   20      4     path length (uint32; >= 2 on Join, 0 otherwise)
//   24      8     lambda (IEEE-754 double bits)
//   32      8     weight (IEEE-754 double bits)
//   40      4*n   path link ids (int32 each, Join only)
//
// The reliability sublayer (transport/reliable.hpp) adds three frames:
// Data (4) wraps one complete Packet frame with a 64-bit sequence
// number, Ack (5) carries the receiver's cumulative acknowledgement,
// and Heartbeat (6) is the client liveness beacon.  A StatusReply (2)
// frame carries the daemon's convergence snapshot plus its ingress
// drop counters, broken down by rejection reason.
//
// Every non-Packet frame ends with a 32-bit FNV-1a checksum over the
// rest of the frame.  UDP's 16-bit checksum is weak and optional, and a
// flipped bit in a cumulative ack silently slides the go-back-N window
// past undelivered frames, while a flipped kind bit turns a
// StatusRequest (1) into a Shutdown (3); the trailing checksum turns
// both into counted decode errors the retransmit timer repairs.  Bare
// Packet frames keep the v1 shape (no checksum): the reliable path
// wraps them in checksummed Data frames, and the bare form exists for
// hostile-ingress tests where mangled-but-plausible input is the point.
//
// decode() trusts nothing: magic, version, kind, enum ranges, hop and
// id bounds, flag/reserved bytes, float sanity and exact frame length
// are all validated, and violations come back as an expect-style error
// string instead of an exception or abort — a hostile or corrupted
// datagram must never take the daemon down.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "base/ids.hpp"
#include "core/packet.hpp"

namespace bneck::wire {

inline constexpr std::uint8_t kMagic0 = 0x42;  // 'B'
inline constexpr std::uint8_t kMagic1 = 0x4E;  // 'N'
// v2: reliability sublayer (Data/Ack/Heartbeat) + StatusReply drop
// counters.  Bumped from v1 (PR 6); no negotiation, both sides upgrade
// together (docs/wire_format.md#versioning).
inline constexpr std::uint8_t kWireVersion = 2;

inline constexpr std::size_t kHeaderBytes = 4;
inline constexpr std::size_t kPacketFrameBytes = 40;
/// Trailing FNV-1a checksum carried by every non-Packet frame.
inline constexpr std::size_t kChecksumBytes = 4;
/// Data frame prefix: header + 64-bit sequence number; the wrapped
/// Packet frame follows verbatim, then the trailing checksum.
inline constexpr std::size_t kDataPrefixBytes = 12;
inline constexpr std::size_t kAckFrameBytes = 16;
inline constexpr std::size_t kHeartbeatFrameBytes = 12;
/// Header-only control frames (StatusRequest, Shutdown) + checksum.
inline constexpr std::size_t kControlFrameBytes =
    kHeaderBytes + kChecksumBytes;

/// Ingress sanity bound on the hop index; real paths are far shorter,
/// and the daemon re-checks against the session's actual path length.
inline constexpr std::int32_t kMaxHop = 4096;
/// Ingress sanity bound on the Join path suffix.
inline constexpr std::size_t kMaxPathLinks = 4096;

enum class FrameKind : std::uint8_t {
  Packet = 0,
  StatusRequest = 1,
  StatusReply = 2,
  Shutdown = 3,
  Data = 4,       // reliability: seq-wrapped Packet frame
  Ack = 5,        // reliability: cumulative acknowledgement
  Heartbeat = 6,  // client liveness beacon
};
inline constexpr int kFrameKindCount = 7;

/// Why the daemon dropped an ingress frame.  The counters cross the
/// wire in StatusReply, so the enum lives here; the daemon's ingress
/// (transport/daemon.cpp) is the writer.
enum class RejectReason : std::uint8_t {
  DecodeError = 0,      // datagram failed wire::decode
  UpstreamType = 1,     // upstream packet type from a peer
  BadEta = 2,           // eta references an unknown link
  BadJoinHop = 3,       // Join entering at a hop other than 1
  BadJoinPath = 4,      // invalid / non-contiguous / host-crossing path
  ReJoin = 5,           // session id reuse
  UnknownSession = 6,   // packet for a session never joined
  DepartedSession = 7,  // packet for a tombstoned session
  BadHop = 8,           // hop outside the session's path
  InvariantTrip = 9,    // InvariantError caught in a protocol handler
  TooManyPeers = 10,    // reliability peer table full
  StaleFrame = 11,      // duplicate / out-of-window reliable data
};
inline constexpr int kRejectReasonCount = 12;

[[nodiscard]] const char* reject_reason_name(RejectReason r);

// Header + stable flag + 3 reserved + active sessions + packets seen +
// retransmissions + expired sessions + per-reason reject counters +
// trailing checksum.
inline constexpr std::size_t kStatusReplyBytes =
    kHeaderBytes + 4 + 4 + 8 + 8 + 4 + 4 * kRejectReasonCount +
    kChecksumBytes;

/// Daemon convergence snapshot (StatusReply body).
struct StatusReply {
  bool stable = false;  // every router-link task stable
  std::uint32_t active_sessions = 0;
  std::uint64_t packets_seen = 0;       // wire frames accepted since start
  std::uint64_t retransmissions = 0;    // reliable frames re-sent by the daemon
  std::uint32_t expired_sessions = 0;   // sessions reaped by liveness expiry
  /// Ingress drops, indexed by RejectReason.
  std::array<std::uint32_t, kRejectReasonCount> rejects{};

  [[nodiscard]] std::uint64_t total_rejects() const {
    std::uint64_t n = 0;
    for (const std::uint32_t c : rejects) n += c;
    return n;
  }

  friend bool operator==(const StatusReply&, const StatusReply&) = default;
};

/// A decoded frame.  `packet`/`path` are meaningful for kinds Packet
/// and Data (path nonempty only for Join), `seq` for Data (sequence
/// number) and Ack (cumulative acknowledgement), `heartbeat_sessions`
/// for Heartbeat, `status` for kind StatusReply.
struct Frame {
  FrameKind kind = FrameKind::Packet;
  core::Packet packet;
  std::vector<LinkId> path;
  StatusReply status;
  std::uint64_t seq = 0;
  std::uint32_t heartbeat_sessions = 0;
};

/// Expect-style decode outcome: `error` is nullptr on success, else a
/// static description of the first violated rule.  Never throws.
struct DecodeResult {
  Frame frame;
  const char* error = nullptr;

  [[nodiscard]] bool ok() const { return error == nullptr; }
};

// ---- encoders (append to `out`; pure functions of their arguments) ----

/// Encodes a packet frame.  `path` must be empty unless p is a Join.
void encode_packet(const core::Packet& p, std::span<const LinkId> path,
                   std::vector<std::uint8_t>& out);
inline void encode_packet(const core::Packet& p,
                          std::vector<std::uint8_t>& out) {
  encode_packet(p, {}, out);
}

/// Wraps an already-encoded Packet frame (`inner`, produced by
/// encode_packet) in a reliability Data frame carrying `seq`.
void encode_data(std::uint64_t seq, std::span<const std::uint8_t> inner,
                 std::vector<std::uint8_t>& out);

void encode_ack(std::uint64_t cumulative, std::vector<std::uint8_t>& out);
void encode_heartbeat(std::uint32_t live_sessions,
                      std::vector<std::uint8_t>& out);

void encode_status_request(std::vector<std::uint8_t>& out);
void encode_status_reply(const StatusReply& status,
                         std::vector<std::uint8_t>& out);
void encode_shutdown(std::vector<std::uint8_t>& out);

// ---- decoder ----

/// Decodes one datagram.  Validates framing, enum ranges, hop/id bounds
/// and float sanity; accepts exactly one frame per buffer (trailing
/// bytes are an error).  A Data frame's wrapped Packet frame is decoded
/// and validated recursively (it must itself be a Packet frame — no
/// nesting).  decode(encode(f)) reproduces f for every frame the
/// protocol emits.
[[nodiscard]] DecodeResult decode(std::span<const std::uint8_t> bytes);

}  // namespace bneck::wire
