#include "transport/daemon.hpp"

#include <cstdio>

#include "base/expect.hpp"

namespace bneck::transport {

using core::Packet;
using core::PacketType;
using core::ResponseTag;
using core::RouterLink;
using wire::RejectReason;

Daemon::Daemon(const net::Network& net, const DaemonOptions& opts)
    : net_(net),
      opts_(opts),
      transport_(opts.port),
      link_slot_(static_cast<std::size_t>(net.link_count()), -1) {
  transport_.bind(*this);
  transport_.enable_reliability(opts_.reliability);
  if (opts_.faults && opts_.faults->any()) {
    fault_.emplace(*opts_.faults);
    transport_.set_fault_injector(&*fault_);
  }
  transport_.set_peer_resolver([this](const Packet& p) -> const Endpoint* {
    const auto it = sessions_.find(p.session);
    return it == sessions_.end() ? nullptr : &it->second.client;
  });
  transport_.set_frame_handler(
      [this](const wire::Frame& f, const Endpoint& from) {
        on_frame(f, from);
      });
}

void Daemon::serve() {
  while (step(50)) {
  }
}

bool Daemon::step(int timeout_ms) {
  if (!running_) return false;
  transport_.pump(timeout_ms);
  const TimeNs t = transport_.now();
  if (opts_.session_expiry > 0) sweep_liveness(t);
  if (opts_.summary_period > 0) maybe_summary(t);
  return running_;
}

bool Daemon::stable() const {
  for (std::size_t i = 0; i < link_arena_.size(); ++i) {
    if (!link_arena_[i].stable()) return false;
  }
  return true;
}

wire::StatusReply Daemon::status_reply() const {
  wire::StatusReply s;
  s.stable = stable();
  s.active_sessions = live_;
  s.packets_seen = stats_.frames_accepted;
  s.retransmissions = transport_.retransmissions();
  s.expired_sessions = stats_.expired_sessions;
  s.rejects = stats_.rejects;
  // Transport-level drops are counted where they happen; merge them
  // into the wire snapshot so one reply shows the whole ingress story.
  const auto reason_slot = [&s](RejectReason r) -> std::uint32_t& {
    return s.rejects[static_cast<std::size_t>(r)];
  };
  reason_slot(RejectReason::DecodeError) +=
      static_cast<std::uint32_t>(transport_.decode_errors());
  reason_slot(RejectReason::StaleFrame) +=
      static_cast<std::uint32_t>(transport_.duplicates_dropped());
  reason_slot(RejectReason::TooManyPeers) +=
      static_cast<std::uint32_t>(transport_.too_many_peers());
  return s;
}

void Daemon::sweep_liveness(TimeNs t) {
  if (t < next_sweep_) return;
  // Sweeping at a quarter of the expiry keeps the overdue window small
  // without scanning every step.
  next_sweep_ = t + opts_.session_expiry / 4 + 1;
  for (auto it = last_seen_.begin(); it != last_seen_.end();) {
    if (t - it->second < opts_.session_expiry) {
      ++it;
      continue;
    }
    const Endpoint gone = it->first;
    it = last_seen_.erase(it);
    // Reap every live session this client owned by synthesizing the
    // Leave its source task would have sent, so the router plane
    // releases capacity through the ordinary protocol path.
    for (auto& [sid, rec] : sessions_) {
      if (!rec.live || !(rec.client == gone)) continue;
      rec.live = false;
      --live_;
      ++stats_.expired_sessions;
      Packet leave;
      leave.type = PacketType::Leave;
      leave.session = sid;
      leave.hop = 1;
      try {
        deliver(leave);
      } catch (const InvariantError& e) {
        ++stats_.invariant_trips;
        count_reject({RejectReason::InvariantTrip, e.what()});
      }
    }
  }
}

void Daemon::maybe_summary(TimeNs t) {
  if (t < next_summary_) return;
  next_summary_ = t + opts_.summary_period;
  std::string rejects;
  for (int i = 0; i < wire::kRejectReasonCount; ++i) {
    const std::uint32_t n = stats_.rejects[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    rejects += ' ';
    rejects += wire::reject_reason_name(static_cast<RejectReason>(i));
    rejects += '=';
    rejects += std::to_string(n);
  }
  std::fprintf(stderr,
               "bneckd: sessions=%u accepted=%llu rejected=%llu "
               "retx=%llu expired=%u%s\n",
               live_,
               static_cast<unsigned long long>(stats_.frames_accepted),
               static_cast<unsigned long long>(stats_.frames_rejected),
               static_cast<unsigned long long>(transport_.retransmissions()),
               stats_.expired_sessions,
               rejects.empty() ? " rejects=none" : rejects.c_str());
}

RouterLink& Daemon::router_link_at(LinkId e) {
  std::int32_t& slot = link_slot_[static_cast<std::size_t>(e.value())];
  if (slot < 0) {
    slot = static_cast<std::int32_t>(link_arena_.size());
    link_arena_.emplace_back(e, net_.link(e).capacity, *this);
  }
  return link_arena_[static_cast<std::size_t>(slot)];
}

const char* Daemon::validate_join_path(const std::vector<LinkId>& path) const {
  if (path.size() < 2) return "join path too short";
  for (const LinkId e : path) {
    if (!e.valid() || e.value() >= net_.link_count()) {
      return "join path references unknown link";
    }
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (net_.link(path[i]).dst != net_.link(path[i + 1]).src) {
      return "join path is not contiguous";
    }
  }
  if (!net_.is_host(net_.link(path.front()).src) ||
      !net_.is_host(net_.link(path.back()).dst)) {
    return "join path must run host to host";
  }
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const net::Link& l = net_.link(path[i]);
    if (net_.is_host(l.src) || net_.is_host(l.dst)) {
      return "join path crosses a host mid-way";
    }
  }
  return nullptr;
}

std::optional<Daemon::Reject> Daemon::ingress(const wire::Frame& f,
                                              const Endpoint& from) {
  const Packet& p = f.packet;
  if (!core::is_downstream(p.type)) {
    return Reject{RejectReason::UpstreamType,
                  "upstream packet type from a peer"};
  }
  if (p.eta.valid() && p.eta.value() >= net_.link_count()) {
    return Reject{RejectReason::BadEta, "eta references unknown link"};
  }
  if (p.type == PacketType::Join) {
    if (p.hop != 1) {
      return Reject{RejectReason::BadJoinHop, "join must enter at hop 1"};
    }
    if (const char* err = validate_join_path(f.path)) {
      return Reject{RejectReason::BadJoinPath, err};
    }
    if (sessions_.contains(p.session)) {
      return Reject{RejectReason::ReJoin,
                    "session ids are single-use (no re-join)"};
    }
    SessionRec rec;
    rec.path.links = f.path;
    rec.client = from;
    sessions_.emplace(p.session, std::move(rec));
    ++live_;
  } else {
    const auto it = sessions_.find(p.session);
    if (it == sessions_.end()) {
      return Reject{RejectReason::UnknownSession,
                    "packet for unknown session"};
    }
    if (!it->second.live) {
      return Reject{RejectReason::DepartedSession,
                    "packet for departed session"};
    }
    const auto len = static_cast<std::int32_t>(it->second.path.links.size());
    if (p.hop < 1 || p.hop > len) {
      return Reject{RejectReason::BadHop, "hop outside session path"};
    }
    if (p.type == PacketType::Leave) {
      it->second.live = false;
      --live_;
    }
  }
  deliver(p);
  return std::nullopt;
}

void Daemon::count_reject(const Reject& r) {
  ++stats_.frames_rejected;
  ++stats_.rejects[static_cast<std::size_t>(r.reason)];
  last_reject_ = r.what;
}

void Daemon::on_frame(const wire::Frame& f, const Endpoint& from) {
  last_seen_[from] = transport_.now();
  switch (f.kind) {
    case wire::FrameKind::Packet: {
      std::optional<Reject> rej;
      try {
        rej = ingress(f, from);
      } catch (const InvariantError& e) {
        ++stats_.invariant_trips;
        count_reject({RejectReason::InvariantTrip, e.what()});
        return;
      }
      if (rej) {
        count_reject(*rej);
      } else {
        ++stats_.frames_accepted;
      }
      return;
    }
    case wire::FrameKind::Heartbeat:
      ++stats_.heartbeats;  // liveness refresh already recorded above
      return;
    case wire::FrameKind::StatusRequest: {
      ++stats_.status_requests;
      std::vector<std::uint8_t> buf;
      wire::encode_status_reply(status_reply(), buf);
      transport_.send_frame(from, buf);
      return;
    }
    case wire::FrameKind::StatusReply:
      return;  // daemons answer status, they do not consume it
    case wire::FrameKind::Shutdown:
      running_ = false;
      return;
    case wire::FrameKind::Data:
    case wire::FrameKind::Ack:
      return;  // consumed inside UdpTransport, never surfaced here
  }
}

void Daemon::on_packet(const Packet& p) {
  try {
    deliver(p);
  } catch (const InvariantError& e) {
    ++stats_.invariant_trips;
    count_reject({RejectReason::InvariantTrip, e.what()});
  }
}

void Daemon::deliver(const Packet& p) {
  const auto it = sessions_.find(p.session);
  BNECK_EXPECT(it != sessions_.end(), "unknown session");
  const net::Path& path = it->second.path;
  const auto len = static_cast<std::int32_t>(path.links.size());
  BNECK_EXPECT(p.hop >= 1 && p.hop <= len, "hop outside session path");

  if (p.hop == len) {
    // Destination node (paper Figure 4): stateless echo, same as the
    // simulator binding (core/bneck.cpp).
    switch (p.type) {
      case PacketType::Join:
      case PacketType::Probe: {
        Packet r;
        r.type = PacketType::Response;
        r.session = p.session;
        r.tag = ResponseTag::Response;
        r.lambda = p.lambda;
        r.eta = p.eta;
        send_upstream(r, len);
        return;
      }
      case PacketType::SetBottleneck:
        if (!p.beta) {
          Packet u;
          u.type = PacketType::Update;
          u.session = p.session;
          send_upstream(u, len);
        }
        return;
      case PacketType::Leave:
        return;  // path fully cleaned up
      default:
        BNECK_EXPECT(false, "upstream packet at destination");
    }
  }

  RouterLink& link = router_link_at(path.links[static_cast<std::size_t>(p.hop)]);
  switch (p.type) {
    case PacketType::Join: link.on_join(p, p.hop); return;
    case PacketType::Probe: link.on_probe(p, p.hop); return;
    case PacketType::Response: link.on_response(p, p.hop); return;
    case PacketType::Update: link.on_update(p, p.hop); return;
    case PacketType::Bottleneck: link.on_bottleneck(p, p.hop); return;
    case PacketType::SetBottleneck: link.on_set_bottleneck(p, p.hop); return;
    case PacketType::Leave: link.on_leave(p, p.hop); return;
  }
}

void Daemon::send_downstream(Packet p, std::int32_t from_hop) {
  const auto it = sessions_.find(p.session);
  BNECK_EXPECT(it != sessions_.end(), "unknown session");
  const auto len = static_cast<std::int32_t>(it->second.path.links.size());
  BNECK_EXPECT(core::is_downstream(p.type), "upstream packet sent downstream");
  BNECK_EXPECT(from_hop >= 1 && from_hop < len, "bad downstream hop");
  p.hop = from_hop + 1;
  transport_.local(p);
}

void Daemon::send_upstream(Packet p, std::int32_t from_hop) {
  const auto it = sessions_.find(p.session);
  BNECK_EXPECT(it != sessions_.end(), "unknown session");
  const net::Path& path = it->second.path;
  const auto len = static_cast<std::int32_t>(path.links.size());
  BNECK_EXPECT(!core::is_downstream(p.type), "downstream packet sent upstream");
  BNECK_EXPECT(from_hop >= 1 && from_hop <= len, "bad upstream hop");
  p.hop = from_hop - 1;
  if (p.hop == 0) {
    // Crossing to the source task: out over the socket, addressed by
    // the session registry (reverse of the access link).
    transport_.send(net_.link(path.links.front()).reverse, p);
    return;
  }
  transport_.local(p);
}

}  // namespace bneck::transport
