// Source-node client library for bneckd.
//
// A SourceClient hosts the paper's Figure-3 source tasks (dedicated
// access mode: each live session owns its access link, emit hop 0) and
// speaks the src/wire format with one bneckd daemon over UDP loopback.
// Downstream emissions (Join / Probe / SetBottleneck / Leave) are
// encoded and sent to the daemon — the Join frame carries the session's
// full link path so the daemon can admit and route it — and upstream
// arrivals (Response / Update / Bottleneck, hop 0) are dispatched to
// the owning SourceNode.
//
// The client is single-threaded and pull-driven: nothing happens
// outside poll()/query_status().  Convergence is observed from both
// sides: converged() requires every live source stable with its rate
// certified (bneck_rcv) AND the daemon's StatusReply to report a stable
// router plane.
//
// Since PR 7 every packet rides a reliable channel (transport/
// reliable.hpp): a dropped Join or Probe is retransmitted with
// exponential backoff instead of stalling the protocol, and a daemon
// that stays silent through the retry budget surfaces as failed() — a
// terminal, queryable error in place of the old hung-Join hang.
// nudge() remains as a belt-and-braces restart of every live session's
// probe cycle.  poll() also emits periodic Heartbeat beacons so the
// daemon's liveness sweep (DaemonOptions::session_expiry) can tell a
// quiet-but-alive client from a crashed one.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "base/slab.hpp"
#include "core/source_node.hpp"
#include "net/routing.hpp"
#include "transport/udp.hpp"

namespace bneck::transport {

struct ClientOptions {
  /// Retransmit tuning for the reliable channel to the daemon.
  ReliableConfig reliability;
  /// Liveness beacon period (sent from poll()); 0 disables beacons.
  TimeNs heartbeat_period = milliseconds(50);
};

class SourceClient final : public core::Transport, public TransportSink {
 public:
  /// The network is the client's copy of the topology (for access-link
  /// capacities); it must outlive the client.
  SourceClient(const net::Network& net, Endpoint daemon,
               const ClientOptions& opts = {});

  SourceClient(const SourceClient&) = delete;
  SourceClient& operator=(const SourceClient&) = delete;

  // -- session API (paper §III, API.*) --
  void join(SessionId s, net::Path path, Rate demand, double weight = 1.0);
  void change(SessionId s, Rate demand);
  void change(SessionId s, Rate demand, double weight);
  void leave(SessionId s);

  /// Drains inbound frames (waiting up to timeout_ms when idle);
  /// returns the number processed.
  std::size_t poll(int timeout_ms);

  /// Sends a StatusRequest and waits up to `timeout_ms` for the reply
  /// (packet frames arriving meanwhile are dispatched normally).
  std::optional<wire::StatusReply> query_status(int timeout_ms);

  /// Restarts the probe cycle of every live session — the stall
  /// recovery for lost datagrams.
  void nudge();

  /// Asks the daemon to exit its serve loop.
  bool shutdown_daemon();

  /// Terminal transport failure: the daemon stayed silent through the
  /// whole retransmission budget.  Once set it never clears; callers
  /// should stop polling and surface failure() instead of hanging.
  [[nodiscard]] bool failed() const { return transport_.peer_failed(); }
  /// Human-readable description of the terminal failure ("" if none).
  [[nodiscard]] std::string failure() const;

  /// Every live source is stable and has its rate certified.
  [[nodiscard]] bool sources_stable() const;
  /// Last rate the protocol notified for `s` (API.Rate), 0 before the
  /// first notification.  Valid for departed sessions too (their final
  /// rate).
  [[nodiscard]] Rate rate_of(SessionId s) const;
  [[nodiscard]] std::uint32_t live_sessions() const { return live_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t packets_received() const {
    return packets_received_;
  }
  [[nodiscard]] UdpTransport& transport() { return transport_; }

  // -- core::Transport (SourceNode emissions; hop 0 only) --
  void send_downstream(core::Packet p, std::int32_t from_hop) override;
  void send_upstream(core::Packet p, std::int32_t from_hop) override;

  // -- TransportSink --
  void on_wire(const core::Packet&, LinkId) override { ++packets_sent_; }
  void on_packet(const core::Packet& p) override;

 private:
  struct SessionRec {
    std::int32_t slot = -1;  // index into source arena
    net::Path path;
    Rate demand = kRateInfinity;
    double weight = 1.0;
    Rate rate = 0;  // last API.Rate notification
    bool live = true;
  };

  SessionRec& rec_of(SessionId s);
  /// Emits a Heartbeat beacon when one is due.
  void tick();

  const net::Network& net_;
  ClientOptions opts_;
  UdpTransport transport_;
  Endpoint daemon_;
  TimeNs next_heartbeat_ = 0;

  Slab<core::SourceNode> sources_;
  std::unordered_map<SessionId, SessionRec> sessions_;
  std::uint32_t live_ = 0;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t stray_packets_ = 0;  // for unknown/departed sessions
  std::uint64_t status_replies_ = 0;
  wire::StatusReply last_status_;
};

}  // namespace bneck::transport
