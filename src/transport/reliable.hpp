// Reliable framing over real (lossy) sockets.
//
// PR 6's socket path assumed the kernel loopback never drops a
// datagram: one lost Join or Probe and a session silently never
// converges.  ReliableChannel is the repair layer a deployment puts
// underneath the wire codec: the go-back-N state machine of
// transport::ArqChannel, but driven by wall-clock deadlines instead of
// simulator events, and carrying *encoded wire frames* instead of
// core::Packet structs.
//
// One ReliableChannel manages one direction pair with one peer: the
// sender window of encoded Data frames awaiting acknowledgement plus
// the receiver's dedup/reorder suppression state (cumulative expected
// sequence number; out-of-order and duplicate data is dropped and
// re-acked, go-back-N style).  The channel owns no socket — the owner
// (transport::UdpTransport) supplies a raw byte-send callback, calls
// on_data/on_ack as frames arrive, and pumps poll(now) so retransmit
// timers fire.  Retransmission uses exponential backoff with seeded
// jitter (deterministic per ReliableConfig::seed); a peer that stays
// silent through max_retries rounds marks the channel failed, which the
// owner surfaces as a terminal error instead of retrying forever — the
// client-side fix for the hung-Join failure mode.
//
// Quiescence is preserved: when nothing is unacked there is no timer
// and no traffic (heartbeats are the owner's concern, not the
// channel's).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "base/rng.hpp"
#include "base/time.hpp"
#include "transport/seqnum.hpp"

namespace bneck::transport {

struct ReliableConfig {
  /// Go-back-N sender window (max unacked Data frames in flight).
  std::int32_t window = 64;
  /// First retransmission fires this long after the original send.
  TimeNs rto_initial = milliseconds(20);
  /// Backoff ceiling.
  TimeNs rto_max = milliseconds(640);
  /// RTO multiplier per silent retransmission round.
  double backoff = 2.0;
  /// Deadline jitter: each RTO is scaled by 1 ± jitter uniformly, so
  /// retransmit storms from many channels decorrelate.
  double jitter = 0.1;
  /// Retransmission rounds with no ack progress before the channel is
  /// declared failed (the peer is gone).
  std::int32_t max_retries = 10;
  /// Seed for the jitter stream; schedules are deterministic per seed.
  std::uint64_t seed = 1;
  /// Initial sequence number (wraparound tests start near 2^64).
  std::uint64_t first_seq = 0;
};

class ReliableChannel {
 public:
  /// Sends raw bytes to the peer; returns false when the kernel (or the
  /// fault injector) refused the datagram, which the channel treats as
  /// wire loss.
  using RawSend = std::function<bool(std::span<const std::uint8_t>)>;

  ReliableChannel(const ReliableConfig& cfg, RawSend raw);

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;
  ReliableChannel(ReliableChannel&&) = default;

  /// Queues one encoded Packet frame for reliable in-order delivery,
  /// wrapping it in a Data frame with the next sequence number.
  /// Returns false once the channel has failed (frames are dropped).
  bool send(std::span<const std::uint8_t> packet_frame, TimeNs now);

  /// Receiver side: a Data frame with sequence `seq` arrived.  Returns
  /// true when it is the next in-order frame (deliver it); false for
  /// duplicates and out-of-order arrivals (drop it, the ack repairs the
  /// sender).  The owner must send an Ack carrying expected() to the
  /// peer after every call, fresh or stale.
  [[nodiscard]] bool on_data(std::uint64_t seq);

  /// Sender side: a cumulative acknowledgement arrived.
  void on_ack(std::uint64_t cumulative, TimeNs now);

  /// Fires the retransmit timer if due; returns the number of frames
  /// re-sent.  Call from the owner's pump loop.
  std::size_t poll(TimeNs now);

  /// Earliest instant poll() has work to do, kTimeNever when idle.
  [[nodiscard]] TimeNs next_deadline() const {
    return window_.empty() || failed_ ? kTimeNever : deadline_;
  }

  /// Cumulative receive progress: the next in-order sequence number,
  /// i.e. everything before it has been delivered exactly once.
  [[nodiscard]] std::uint64_t expected() const { return expected_; }

  /// max_retries rounds elapsed with no ack progress; the peer is
  /// treated as unreachable and send() turns into a drop.
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] bool idle() const { return window_.empty(); }

  [[nodiscard]] std::uint64_t data_sends() const { return data_sends_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retx_; }
  [[nodiscard]] std::uint64_t duplicates_dropped() const { return dups_; }

 private:
  struct InFlight {
    std::uint64_t seq;
    std::vector<std::uint8_t> frame;  // complete encoded Data frame
    bool on_wire = false;             // transmitted at least once
  };

  void wire_send(InFlight& entry);
  void arm(TimeNs now);

  ReliableConfig cfg_;
  RawSend raw_;
  Rng rng_;

  std::deque<InFlight> window_;  // unacked + queued, seq order
  std::uint64_t next_seq_;       // next sequence number to assign
  std::uint64_t send_base_;      // lowest unacked sequence number
  std::uint64_t expected_;       // receiver: next in-order sequence
  TimeNs rto_;                   // current (backed-off) timeout
  TimeNs deadline_ = kTimeNever;
  std::int32_t silent_rounds_ = 0;
  bool failed_ = false;

  std::uint64_t data_sends_ = 0;
  std::uint64_t retx_ = 0;
  std::uint64_t dups_ = 0;
};

}  // namespace bneck::transport
