// The shard-local wire backend of the transport seam.
//
// ShardTransport is SimTransport's sibling for the sharded parallel
// engine (core/sharded_bneck.hpp): one instance per shard, bound to that
// shard's private simulator and protocol.  Links whose destination node
// lives on the same shard behave exactly like SimTransport — FIFO
// serialization, transmission + propagation delay, one allocation-free
// typed delivery event.  Links whose destination lives elsewhere still
// serialize on the local FIFO channel (the sending side of a directed
// link always belongs to the shard that owns its source node), but the
// arrival is handed to a cross-shard post function instead of the local
// event queue; the sharded scheduler schedules it into the destination
// shard's simulator at the next exchange barrier (the arrival time is
// always beyond the next horizon, so the insert is future-dated).
//
// Only the paper's reliable loss-free wire is supported — the lossy/ARQ
// modes keep per-link state that the shard ownership argument does not
// cover, and the single-thread engine remains the backend for those.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "base/expect.hpp"
#include "net/network.hpp"
#include "net/partition.hpp"
#include "sim/simulator.hpp"
#include "transport/sim_transport.hpp"
#include "transport/transport.hpp"

namespace bneck::transport {

class ShardTransport final
    : public LinkTransport,
      public sim::DeliveryHandlerOf<ShardTransport, core::Packet> {
  friend sim::DeliveryHandlerOf<ShardTransport, core::Packet>;

 public:
  /// Hands a packet that arrives at time t on a link owned by shard
  /// `dst_shard` to the cross-shard mailboxes.
  using PostFn = std::function<void(std::int32_t dst_shard, TimeNs arrival,
                                    const core::Packet& p)>;

  ShardTransport(sim::Simulator& sim, const net::Network& net,
                 const net::NetPartition& part, std::int32_t shard,
                 WireConfig cfg, PostFn post)
      : sim_(sim),
        net_(net),
        part_(part),
        shard_(shard),
        cfg_(cfg),
        post_(std::move(post)),
        channels_(static_cast<std::size_t>(net.link_count())) {
    BNECK_EXPECT(!cfg_.reliable_links && cfg_.loss_probability == 0.0,
                 "sharded engine requires the loss-free wire");
  }

  ShardTransport(const ShardTransport&) = delete;
  ShardTransport& operator=(const ShardTransport&) = delete;

  void bind(TransportSink& sink) override {
    BNECK_EXPECT(sink_ == nullptr, "transport already bound");
    sink_ = &sink;
  }

  void send(LinkId physical, const core::Packet& p) override {
    const net::Link& l = net_.link(physical);
    BNECK_EXPECT(part_.shard_of(l.src) == shard_,
                 "send from a link not owned by this shard");
    const TimeNs arrival = channels_[static_cast<std::size_t>(
                                         physical.value())]
                               .transmit(sim_.now(), cfg_.control_tx_time(l),
                                         l.prop_delay);
    sink_->on_wire(p, physical);
    const std::int32_t dst_shard = part_.shard_of(l.dst);
    if (dst_shard == shard_) {
      sim_.schedule_delivery_at(arrival, *this, p);
    } else {
      post_(dst_shard, arrival, p);
    }
  }

  void local(const core::Packet& p) override {
    sim_.schedule_delivery_in(0, *this, p);
  }

  [[nodiscard]] TimeNs now() const override { return sim_.now(); }

  /// Entry point for the sharded scheduler's barrier exchange: a packet
  /// another shard posted, arriving here at absolute (future) time t.
  void deliver_inbound(TimeNs t, const core::Packet& p) {
    sim_.schedule_delivery_at(t, *this, p);
  }

 private:
  void on_delivery(const core::Packet& p) { sink_->on_packet(p); }

  sim::Simulator& sim_;
  const net::Network& net_;
  const net::NetPartition& part_;
  std::int32_t shard_;
  WireConfig cfg_;
  PostFn post_;
  TransportSink* sink_ = nullptr;
  std::vector<sim::FifoChannel> channels_;  // per directed link
};

}  // namespace bneck::transport
