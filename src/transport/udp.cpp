#include "transport/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "base/expect.hpp"

namespace bneck::transport {

namespace {

sockaddr_in to_sockaddr(const Endpoint& e) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(e.addr);
  sa.sin_port = htons(e.port);
  return sa;
}

Endpoint from_sockaddr(const sockaddr_in& sa) {
  Endpoint e;
  e.addr = ntohl(sa.sin_addr.s_addr);
  e.port = ntohs(sa.sin_port);
  return e;
}

int open_udp_socket() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          IPPROTO_UDP);
  BNECK_EXPECT(fd >= 0, "socket(AF_INET, SOCK_DGRAM) failed");
  return fd;
}

TimeNs monotonic_now() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<TimeNs>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

// One wire frame per datagram; the largest legal frame is a Join with
// kMaxPathLinks path entries wrapped in a checksummed Data frame.
constexpr std::size_t kMaxDatagram =
    wire::kDataPrefixBytes + wire::kPacketFrameBytes +
    4 * wire::kMaxPathLinks + wire::kChecksumBytes;

}  // namespace

Endpoint Endpoint::loopback(std::uint16_t port) {
  return Endpoint{INADDR_LOOPBACK, port};
}

std::string Endpoint::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff, port);
  return buf;
}

UdpSocket::UdpSocket() : fd_(open_udp_socket()) {}

UdpSocket::UdpSocket(std::uint16_t port) : fd_(open_udp_socket()) {
  const sockaddr_in sa = to_sockaddr(Endpoint::loopback(port));
  const int rc =
      ::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  BNECK_EXPECT(rc == 0, "bind(127.0.0.1) failed");
}

UdpSocket::~UdpSocket() { close(); }

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Endpoint UdpSocket::local_endpoint() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  const int rc = ::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len);
  BNECK_EXPECT(rc == 0, "getsockname failed");
  return from_sockaddr(sa);
}

bool UdpSocket::send_to(const Endpoint& to,
                        std::span<const std::uint8_t> bytes) {
  const sockaddr_in sa = to_sockaddr(to);
  for (;;) {
    const auto n =
        ::sendto(fd_, bytes.data(), bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    if (n >= 0) return n == static_cast<std::ptrdiff_t>(bytes.size());
    if (errno == EINTR) continue;
    // EAGAIN (full buffer) and ECONNREFUSED (queued ICMP from a peer
    // that went away) are wire loss, not process errors.
    return false;
  }
}

std::ptrdiff_t UdpSocket::recv_from(std::span<std::uint8_t> buf,
                                    Endpoint& from) {
  for (;;) {
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    const auto n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                              reinterpret_cast<sockaddr*>(&sa), &len);
    if (n >= 0) {
      from = from_sockaddr(sa);
      return n;
    }
    if (errno == EINTR) continue;
    // A queued ICMP error consumes one recvfrom; retry for real data
    // (the kernel error queue is finite, so this terminates).
    if (errno == ECONNREFUSED) continue;
    return -1;  // EAGAIN and friends: nothing queued
  }
}

bool UdpSocket::wait_readable(int timeout_ms) {
  const TimeNs deadline =
      timeout_ms < 0 ? kTimeNever
                     : monotonic_now() + milliseconds(timeout_ms);
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    int remaining = -1;
    if (deadline != kTimeNever) {
      const TimeNs left = deadline - monotonic_now();
      if (left <= 0) return false;
      remaining = static_cast<int>((left + 999'999) / 1'000'000);
    }
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc > 0) return (pfd.revents & POLLIN) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
    // EINTR: re-derive the remaining budget from the monotonic
    // deadline instead of restarting the full timeout.
  }
}

UdpTransport::UdpTransport(std::uint16_t port) : socket_(port) {}

void UdpTransport::bind(TransportSink& sink) {
  BNECK_EXPECT(sink_ == nullptr, "transport already bound");
  sink_ = &sink;
}

TimeNs UdpTransport::now() const { return monotonic_now(); }

void UdpTransport::enable_reliability(const ReliableConfig& cfg) {
  BNECK_EXPECT(channels_.empty(), "enable_reliability after traffic");
  reliable_ = true;
  reliable_cfg_ = cfg;
}

ReliableChannel* UdpTransport::channel_for(const Endpoint& ep) {
  const auto it = channels_.find(ep);
  if (it != channels_.end()) return &it->second;
  if (channels_.size() >= kMaxPeers) {
    ++too_many_peers_;
    return nullptr;
  }
  ReliableConfig cfg = reliable_cfg_;
  cfg.seed = reliable_cfg_.seed ^ EndpointHash{}(ep);  // decorrelate jitter
  const auto [pos, inserted] = channels_.try_emplace(
      ep, cfg, [this, ep](std::span<const std::uint8_t> bytes) {
        raw_send(ep, bytes);
        return true;  // a refused datagram is wire loss; timers repair it
      });
  return &pos->second;
}

void UdpTransport::raw_send(const Endpoint& to,
                            std::span<const std::uint8_t> bytes) {
  if (fault_ != nullptr) {
    fault_->process(now(), to, bytes,
                    [this](const Endpoint& t,
                           std::span<const std::uint8_t> b) {
                      if (socket_.send_to(t, b)) ++datagrams_sent_;
                    });
    return;
  }
  if (socket_.send_to(to, bytes)) ++datagrams_sent_;
}

void UdpTransport::send(LinkId physical, const core::Packet& p) {
  BNECK_EXPECT(sink_ != nullptr, "transport not bound");
  const Endpoint* to = &peer_;
  if (peer_resolver_) {
    to = peer_resolver_(p);
    if (to == nullptr) {
      ++unroutable_;
      return;
    }
  }
  encode_buf_.clear();
  if (p.type == core::PacketType::Join && join_path_) {
    wire::encode_packet(p, join_path_(p.session), encode_buf_);
  } else {
    wire::encode_packet(p, encode_buf_);
  }
  sink_->on_wire(p, physical);
  if (reliable_) {
    ReliableChannel* ch = channel_for(*to);
    if (ch != nullptr) ch->send(encode_buf_, now());
    return;
  }
  raw_send(*to, encode_buf_);
}

void UdpTransport::local(const core::Packet& p) {
  BNECK_EXPECT(sink_ != nullptr, "transport not bound");
  pending_.push_back(p);
}

bool UdpTransport::send_frame(const Endpoint& to,
                              std::span<const std::uint8_t> bytes) {
  raw_send(to, bytes);
  return true;
}

void UdpTransport::drain_local() {
  while (!pending_.empty()) {
    const core::Packet p = pending_.front();
    pending_.pop_front();
    sink_->on_packet(p);
  }
}

std::size_t UdpTransport::drain_socket() {
  std::array<std::uint8_t, kMaxDatagram + 1> buf;
  std::size_t processed = 0;
  Endpoint from;
  std::ptrdiff_t n;
  while ((n = socket_.recv_from(buf, from)) >= 0) {
    ++datagrams_received_;
    wire::DecodeResult r =
        wire::decode({buf.data(), static_cast<std::size_t>(n)});
    if (!r.ok()) {
      ++decode_errors_;
      last_decode_error_ = r.error;
      continue;
    }
    if (r.frame.kind == wire::FrameKind::Ack) {
      // Bookkeeping only: advance the sender window of an existing
      // channel.  An ack from a stranger allocates nothing.
      const auto it = channels_.find(from);
      if (it != channels_.end()) it->second.on_ack(r.frame.seq, now());
      continue;
    }
    if (r.frame.kind == wire::FrameKind::Data) {
      ReliableChannel* ch = channel_for(from);
      if (ch == nullptr) continue;  // peer table full, counted
      const bool fresh = ch->on_data(r.frame.seq);
      // Ack every arrival — fresh or stale — so a lost ack is repaired
      // by the retransmission it provokes.
      ack_buf_.clear();
      wire::encode_ack(ch->expected(), ack_buf_);
      raw_send(from, ack_buf_);
      ++acks_sent_;
      if (!fresh) continue;  // duplicate/out-of-order: channel counted it
      r.frame.kind = wire::FrameKind::Packet;  // deliver the inner packet
    }
    ++processed;
    if (frame_handler_) {
      frame_handler_(r.frame, from);
    } else if (r.frame.kind == wire::FrameKind::Packet) {
      sink_->on_packet(r.frame.packet);
    }
    drain_local();  // handoffs triggered by this frame, FIFO
  }
  return processed;
}

std::size_t UdpTransport::service_timers(TimeNs t) {
  std::size_t fired = 0;
  for (auto& [ep, ch] : channels_) fired += ch.poll(t);
  if (fault_ != nullptr) {
    fault_->flush(t, [this](const Endpoint& to,
                            std::span<const std::uint8_t> b) {
      if (socket_.send_to(to, b)) ++datagrams_sent_;
    });
  }
  return fired;
}

TimeNs UdpTransport::next_timer_deadline() const {
  TimeNs due = kTimeNever;
  for (const auto& [ep, ch] : channels_) {
    due = std::min(due, ch.next_deadline());
  }
  if (fault_ != nullptr) due = std::min(due, fault_->next_due());
  return due;
}

std::size_t UdpTransport::pump(int timeout_ms) {
  BNECK_EXPECT(sink_ != nullptr, "transport not bound");
  std::size_t processed = pending_.size();
  drain_local();
  processed += drain_socket();
  service_timers(now());
  if (processed == 0 && timeout_ms > 0) {
    int wait_ms = timeout_ms;
    const TimeNs due = next_timer_deadline();
    if (due != kTimeNever) {
      const TimeNs left = due - now();
      // Wake for the earliest retransmit/flush deadline, at least 1ms
      // so a hot loop still yields the CPU.
      wait_ms = std::clamp(
          static_cast<int>((left + 999'999) / 1'000'000), 1, timeout_ms);
    }
    if (socket_.wait_readable(wait_ms)) processed += drain_socket();
    service_timers(now());
  }
  return processed;
}

std::uint64_t UdpTransport::retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& [ep, ch] : channels_) n += ch.retransmissions();
  return n;
}

std::uint64_t UdpTransport::duplicates_dropped() const {
  std::uint64_t n = 0;
  for (const auto& [ep, ch] : channels_) n += ch.duplicates_dropped();
  return n;
}

bool UdpTransport::peer_failed() const {
  for (const auto& [ep, ch] : channels_) {
    if (ch.failed()) return true;
  }
  return false;
}

}  // namespace bneck::transport
