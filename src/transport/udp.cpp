#include "transport/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "base/expect.hpp"

namespace bneck::transport {

namespace {

sockaddr_in to_sockaddr(const Endpoint& e) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(e.addr);
  sa.sin_port = htons(e.port);
  return sa;
}

Endpoint from_sockaddr(const sockaddr_in& sa) {
  Endpoint e;
  e.addr = ntohl(sa.sin_addr.s_addr);
  e.port = ntohs(sa.sin_port);
  return e;
}

int open_udp_socket() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          IPPROTO_UDP);
  BNECK_EXPECT(fd >= 0, "socket(AF_INET, SOCK_DGRAM) failed");
  return fd;
}

// One wire frame per datagram; the largest legal frame is a Join with
// kMaxPathLinks path entries.
constexpr std::size_t kMaxDatagram =
    wire::kPacketFrameBytes + 4 * wire::kMaxPathLinks;

}  // namespace

Endpoint Endpoint::loopback(std::uint16_t port) {
  return Endpoint{INADDR_LOOPBACK, port};
}

std::string Endpoint::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff, port);
  return buf;
}

UdpSocket::UdpSocket() : fd_(open_udp_socket()) {}

UdpSocket::UdpSocket(std::uint16_t port) : fd_(open_udp_socket()) {
  const sockaddr_in sa = to_sockaddr(Endpoint::loopback(port));
  const int rc =
      ::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  BNECK_EXPECT(rc == 0, "bind(127.0.0.1) failed");
}

UdpSocket::~UdpSocket() { close(); }

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Endpoint UdpSocket::local_endpoint() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  const int rc = ::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len);
  BNECK_EXPECT(rc == 0, "getsockname failed");
  return from_sockaddr(sa);
}

bool UdpSocket::send_to(const Endpoint& to,
                        std::span<const std::uint8_t> bytes) {
  const sockaddr_in sa = to_sockaddr(to);
  const auto n = ::sendto(fd_, bytes.data(), bytes.size(), 0,
                          reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  return n == static_cast<std::ptrdiff_t>(bytes.size());
}

std::ptrdiff_t UdpSocket::recv_from(std::span<std::uint8_t> buf,
                                    Endpoint& from) {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  const auto n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                            reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) return -1;  // EAGAIN and friends: nothing queued
  from = from_sockaddr(sa);
  return n;
}

bool UdpSocket::wait_readable(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0 && (pfd.revents & POLLIN) != 0;
}

UdpTransport::UdpTransport(std::uint16_t port) : socket_(port) {}

void UdpTransport::bind(TransportSink& sink) {
  BNECK_EXPECT(sink_ == nullptr, "transport already bound");
  sink_ = &sink;
}

TimeNs UdpTransport::now() const {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<TimeNs>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

void UdpTransport::send(LinkId physical, const core::Packet& p) {
  BNECK_EXPECT(sink_ != nullptr, "transport not bound");
  const Endpoint* to = &peer_;
  if (peer_resolver_) {
    to = peer_resolver_(p);
    if (to == nullptr) {
      ++unroutable_;
      return;
    }
  }
  encode_buf_.clear();
  if (p.type == core::PacketType::Join && join_path_) {
    wire::encode_packet(p, join_path_(p.session), encode_buf_);
  } else {
    wire::encode_packet(p, encode_buf_);
  }
  sink_->on_wire(p, physical);
  if (socket_.send_to(*to, encode_buf_)) ++datagrams_sent_;
}

void UdpTransport::local(const core::Packet& p) {
  BNECK_EXPECT(sink_ != nullptr, "transport not bound");
  pending_.push_back(p);
}

bool UdpTransport::send_frame(const Endpoint& to,
                              std::span<const std::uint8_t> bytes) {
  const bool ok = socket_.send_to(to, bytes);
  if (ok) ++datagrams_sent_;
  return ok;
}

void UdpTransport::drain_local() {
  while (!pending_.empty()) {
    const core::Packet p = pending_.front();
    pending_.pop_front();
    sink_->on_packet(p);
  }
}

std::size_t UdpTransport::drain_socket() {
  std::array<std::uint8_t, kMaxDatagram + 1> buf;
  std::size_t processed = 0;
  Endpoint from;
  std::ptrdiff_t n;
  while ((n = socket_.recv_from(buf, from)) >= 0) {
    ++datagrams_received_;
    const wire::DecodeResult r =
        wire::decode({buf.data(), static_cast<std::size_t>(n)});
    if (!r.ok()) {
      ++decode_errors_;
      last_decode_error_ = r.error;
      continue;
    }
    ++processed;
    if (frame_handler_) {
      frame_handler_(r.frame, from);
    } else if (r.frame.kind == wire::FrameKind::Packet) {
      sink_->on_packet(r.frame.packet);
    }
    drain_local();  // handoffs triggered by this frame, FIFO
  }
  return processed;
}

std::size_t UdpTransport::pump(int timeout_ms) {
  BNECK_EXPECT(sink_ != nullptr, "transport not bound");
  std::size_t processed = pending_.size();
  drain_local();
  processed += drain_socket();
  if (processed == 0 && timeout_ms > 0 && socket_.wait_readable(timeout_ms)) {
    processed += drain_socket();
  }
  return processed;
}

}  // namespace bneck::transport
