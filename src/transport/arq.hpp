// Reliable in-order link transport (go-back-N ARQ) with loss injection.
//
// The B-Neck correctness argument assumes links deliver protocol packets
// reliably and in FIFO order (docs/protocol.md).  Real networks drop
// packets, and a lost Update or Response deadlocks the protocol: nothing
// retransmits, so the event queue drains with sessions stuck in
// WAITING_* states.  This module supplies what a deployment would put
// underneath B-Neck: per-directed-link go-back-N with cumulative
// acknowledgements, giving exactly-once in-order delivery over lossy
// links while preserving quiescence (when there is nothing unacked,
// there are no timers and no traffic).
//
// One ArqChannel instance manages one directed link: the sender state of
// that direction plus the receiver state (expected sequence number) and
// the acks that flow back over the reverse link.  Loss is injected on
// the wire in both directions with the configured probability.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "base/rng.hpp"
#include "core/packet.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace bneck::transport {

using core::Packet;

struct ArqConfig {
  /// Probability that any wire transmission (data or ack) is lost.
  double loss_probability = 0.0;
  /// Go-back-N sender window.
  std::int32_t window = 32;
  /// Retransmission timeout; 0 = derive 4x RTT from the link parameters.
  TimeNs timeout = 0;
  /// Timeout multiplier per silent retransmission round; 1 keeps the
  /// classic fixed-interval behavior.  Any ack progress resets to the
  /// base timeout.
  double backoff = 1.0;
  /// Backoff ceiling; 0 = uncapped.
  TimeNs max_timeout = 0;
  /// Initial sequence number.  Comparisons use serial-number arithmetic
  /// (transport/seqnum.hpp), so a channel started near 2^64 wraps
  /// through zero without stalling or re-delivering.
  std::uint64_t first_seq = 0;
};

class ArqChannel {
 public:
  /// Delivery callback: invoked exactly once, in order, per send().
  using DeliverFn = std::function<void(const Packet&)>;
  /// Wire callback: invoked for every *data* transmission (first try and
  /// retransmissions) so the owner can count control traffic.
  using WireFn = std::function<void(const Packet&)>;

  /// `data_tx`/`data_prop` are the transmission and propagation times of
  /// the forward link, `ack_tx`/`ack_prop` of the reverse link carrying
  /// the acknowledgements.
  ArqChannel(sim::Simulator& sim, sim::FifoChannel& data_channel,
             sim::FifoChannel& ack_channel, TimeNs data_tx, TimeNs data_prop,
             TimeNs ack_tx, TimeNs ack_prop, ArqConfig config, Rng rng,
             DeliverFn deliver, WireFn on_wire);

  ArqChannel(const ArqChannel&) = delete;
  ArqChannel& operator=(const ArqChannel&) = delete;

  /// Queues a packet for reliable in-order delivery at the far end.
  void send(Packet p);

  [[nodiscard]] std::uint64_t data_sends() const { return data_sends_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retx_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t losses() const { return losses_; }
  [[nodiscard]] bool idle() const { return window_.empty(); }

 private:
  struct InFlight {
    std::uint64_t seq;
    Packet packet;
    bool on_wire = false;  // sent at least once since the last timeout
  };

  // Wire frames cross the simulator as typed events (sim/event.hpp):
  // data frames carry {packet, seq}, ack frames the cumulative sequence
  // number — no allocation per transmission.
  struct DataFrame {
    Packet packet;
    std::uint64_t seq;
  };
  struct AckFrame {
    std::uint64_t cumulative;
  };
  static_assert(sizeof(DataFrame) <= sim::Event::kInlinePayloadBytes);
  struct DataRx final : sim::DeliveryHandlerOf<DataRx, DataFrame> {
    ArqChannel* self = nullptr;
    void on_delivery(const DataFrame& f) { self->on_data(f.seq, f.packet); }
  };
  struct AckRx final : sim::DeliveryHandlerOf<AckRx, AckFrame> {
    ArqChannel* self = nullptr;
    void on_delivery(const AckFrame& f) { self->on_ack(f.cumulative); }
  };

  void wire_send_data(InFlight& entry);
  void on_data(std::uint64_t seq, const Packet& p);
  void send_ack();
  void on_ack(std::uint64_t cumulative);
  void arm_timer();
  void on_timeout(std::uint64_t generation);

  sim::Simulator& sim_;
  sim::FifoChannel& data_channel_;
  sim::FifoChannel& ack_channel_;
  TimeNs data_tx_, data_prop_, ack_tx_, ack_prop_;
  ArqConfig cfg_;
  Rng rng_;
  DeliverFn deliver_;
  WireFn on_wire_;

  std::deque<InFlight> window_;   // unacked + queued, seq order
  std::uint64_t next_seq_ = 0;    // next sequence number to assign
  std::uint64_t send_base_ = 0;   // lowest unacked sequence number
  std::uint64_t expected_ = 0;    // receiver: next in-order sequence
  std::uint64_t timer_generation_ = 0;
  TimeNs rto_ = 0;                // current (possibly backed-off) timeout
  bool timer_armed_ = false;

  DataRx data_rx_;
  AckRx ack_rx_;

  std::uint64_t data_sends_ = 0;
  std::uint64_t retx_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t losses_ = 0;
};

}  // namespace bneck::transport
