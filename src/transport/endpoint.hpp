// An IPv4/UDP address in host byte order.
//
// Split out of transport/udp.hpp so datagram-level helpers that name
// destinations without owning sockets (transport/fault.hpp) need no
// socket header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace bneck::transport {

struct Endpoint {
  std::uint32_t addr = 0;
  std::uint16_t port = 0;

  [[nodiscard]] static Endpoint loopback(std::uint16_t port);
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

struct EndpointHash {
  [[nodiscard]] std::size_t operator()(const Endpoint& e) const {
    // splitmix-style scramble of the 48 meaningful bits.
    std::uint64_t x =
        (static_cast<std::uint64_t>(e.addr) << 16) | e.port;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    return static_cast<std::size_t>(x * 0x94d049bb133111ebull);
  }
};

}  // namespace bneck::transport
