#include "transport/reliable.hpp"

#include <algorithm>

#include "base/expect.hpp"
#include "wire/codec.hpp"

namespace bneck::transport {

ReliableChannel::ReliableChannel(const ReliableConfig& cfg, RawSend raw)
    : cfg_(cfg),
      raw_(std::move(raw)),
      rng_(cfg.seed),
      next_seq_(cfg.first_seq),
      send_base_(cfg.first_seq),
      expected_(cfg.first_seq),
      rto_(cfg.rto_initial) {
  BNECK_EXPECT(cfg_.window >= 1, "reliable window must be positive");
  BNECK_EXPECT(cfg_.rto_initial > 0, "rto must be positive");
  BNECK_EXPECT(cfg_.backoff >= 1.0, "backoff must be >= 1");
  BNECK_EXPECT(cfg_.jitter >= 0.0 && cfg_.jitter < 1.0,
               "jitter must be in [0,1)");
  BNECK_EXPECT(cfg_.max_retries >= 1, "max_retries must be positive");
  if (cfg_.rto_max < cfg_.rto_initial) cfg_.rto_max = cfg_.rto_initial;
}

bool ReliableChannel::send(std::span<const std::uint8_t> packet_frame,
                           TimeNs now) {
  if (failed_) return false;
  InFlight entry;
  entry.seq = next_seq_++;
  wire::encode_data(entry.seq, packet_frame, entry.frame);
  window_.push_back(std::move(entry));
  if (seq_lt(window_.back().seq,
             send_base_ + static_cast<std::uint64_t>(cfg_.window))) {
    wire_send(window_.back());
  }
  if (deadline_ == kTimeNever) arm(now);
  return true;
}

void ReliableChannel::wire_send(InFlight& entry) {
  ++data_sends_;
  if (entry.on_wire) ++retx_;
  entry.on_wire = true;
  raw_(entry.frame);  // a refused datagram is wire loss; the timer repairs it
}

bool ReliableChannel::on_data(std::uint64_t seq) {
  if (seq != expected_) {
    ++dups_;  // duplicate or out-of-order: suppressed, ack re-sent by owner
    return false;
  }
  ++expected_;
  return true;
}

void ReliableChannel::on_ack(std::uint64_t cumulative, TimeNs now) {
  if (seq_le(cumulative, send_base_)) return;  // stale
  if (seq_lt(next_seq_, cumulative)) return;   // hostile: acks the future
  while (!window_.empty() && seq_lt(window_.front().seq, cumulative)) {
    window_.pop_front();
  }
  send_base_ = cumulative;
  // Progress: reset the backoff and the failure countdown.
  rto_ = cfg_.rto_initial;
  silent_rounds_ = 0;
  // Window slid forward: transmit newly admitted frames.
  for (auto& entry : window_) {
    if (!seq_lt(entry.seq,
                send_base_ + static_cast<std::uint64_t>(cfg_.window))) {
      break;
    }
    if (!entry.on_wire) wire_send(entry);
  }
  deadline_ = kTimeNever;
  if (!window_.empty()) arm(now);
}

std::size_t ReliableChannel::poll(TimeNs now) {
  if (failed_ || window_.empty() || now < deadline_) return 0;
  if (++silent_rounds_ > cfg_.max_retries) {
    failed_ = true;
    deadline_ = kTimeNever;
    return 0;
  }
  std::size_t sent = 0;
  for (auto& entry : window_) {
    if (!seq_lt(entry.seq,
                send_base_ + static_cast<std::uint64_t>(cfg_.window))) {
      break;
    }
    wire_send(entry);
    ++sent;
  }
  rto_ = std::min<TimeNs>(
      static_cast<TimeNs>(static_cast<double>(rto_) * cfg_.backoff),
      cfg_.rto_max);
  arm(now);
  return sent;
}

void ReliableChannel::arm(TimeNs now) {
  const double scale =
      1.0 + (cfg_.jitter > 0 ? rng_.uniform_real(-cfg_.jitter, cfg_.jitter)
                             : 0.0);
  deadline_ = now + static_cast<TimeNs>(static_cast<double>(rto_) * scale);
}

}  // namespace bneck::transport
